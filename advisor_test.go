package thermctl

import (
	"testing"
	"time"
)

func TestRecommendPpFindsCostEfficientPolicy(t *testing.T) {
	cfg := DefaultNodeConfig("advise", 101)
	// cpu-burn with a full fan: achievable targets lie roughly between
	// 50 °C (Pp=1, fan pegged) and 56 °C (Pp=100, lazy fan).
	pp, meets, err := RecommendPp(cfg, CPUBurn(3), 100, 52.5)
	if err != nil {
		t.Fatal(err)
	}
	if !meets {
		t.Fatal("52.5 °C should be reachable with a full fan")
	}
	if pp < 1 || pp > 100 {
		t.Fatalf("pp = %d out of range", pp)
	}
	// A looser target must never recommend a more aggressive policy.
	ppLoose, meetsLoose, err := RecommendPp(cfg, CPUBurn(3), 100, 55)
	if err != nil {
		t.Fatal(err)
	}
	if !meetsLoose {
		t.Fatal("55 °C should be reachable")
	}
	if ppLoose < pp {
		t.Errorf("looser target got more aggressive policy: %d vs %d", ppLoose, pp)
	}
}

func TestRecommendPpUnreachableTarget(t *testing.T) {
	cfg := DefaultNodeConfig("advise2", 103)
	// A 30% duty cap cannot hold cpu-burn at 45 °C no matter the policy.
	pp, meets, err := RecommendPp(cfg, CPUBurn(5), 30, 45)
	if err != nil {
		t.Fatal(err)
	}
	if meets {
		t.Error("45 °C reported reachable with a 30% fan cap")
	}
	if pp != PpMin {
		t.Errorf("unreachable target should return PpMin, got %d", pp)
	}
}

func TestRecommendPpTrivialTarget(t *testing.T) {
	cfg := DefaultNodeConfig("advise3", 107)
	// A 70 °C target is met even by the laziest policy.
	pp, meets, err := RecommendPp(cfg, CPUBurn(7), 100, 70)
	if err != nil {
		t.Fatal(err)
	}
	if !meets || pp != PpMax {
		t.Errorf("trivial target: pp=%d meets=%v, want PpMax/true", pp, meets)
	}
}

func TestRecommendPpValidation(t *testing.T) {
	cfg := DefaultNodeConfig("advise4", 109)
	if _, _, err := RecommendPp(cfg, nil, 100, 50); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestControllerStatus(t *testing.T) {
	n, err := NewNode("status", 113)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	ctl, err := NewDynamicFanControl(n, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(CPUBurn(1))
	for i := 0; i < 400; i++ {
		n.Step(250 * time.Millisecond)
		ctl.OnStep(n.Elapsed())
	}
	st := ctl.Status()
	if st.Pp != 50 {
		t.Errorf("status Pp = %d", st.Pp)
	}
	if st.AvgC < 35 || st.AvgC > 65 {
		t.Errorf("status AvgC = %.1f", st.AvgC)
	}
	if len(st.Actuators) != 1 || st.Actuators[0].Name != "fan" {
		t.Errorf("actuators: %+v", st.Actuators)
	}
	if st.Actuators[0].Moves == 0 {
		t.Error("no moves recorded under cpu-burn")
	}
	if st.String() == "" {
		t.Error("empty status line")
	}
}
