package thermctl

import (
	"testing"
	"time"
)

// The root-package tests exercise the public facade end to end, the way
// a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	n, err := NewNode("n0", 1)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	ctl, err := NewDynamicFanControl(n, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(CPUBurn(2))
	for i := 0; i < 1200; i++ {
		n.Step(250 * time.Millisecond)
		ctl.OnStep(n.Elapsed())
	}
	if n.TrueDieC() > 58 {
		t.Errorf("controlled cpu-burn die = %.1f °C, want < 58", n.TrueDieC())
	}
	if n.Fan.Duty() < 20 {
		t.Errorf("fan duty = %.0f%%, controller never engaged", n.Fan.Duty())
	}
}

func TestUnifiedControllerOnWeakFan(t *testing.T) {
	n, err := NewNode("n1", 3)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	u, err := NewUnified(n, 50, 25) // weak fan: DVFS must engage
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(CPUBurn(4))
	for i := 0; i < 2400; i++ {
		n.Step(250 * time.Millisecond)
		u.OnStep(n.Elapsed())
	}
	if !u.DVFS.Engaged() {
		t.Error("unified controller never engaged DVFS despite the 25% fan cap")
	}
	if n.TrueDieC() > 58 {
		t.Errorf("die = %.1f °C, not stabilized", n.TrueDieC())
	}
}

func TestClusterProgramRun(t *testing.T) {
	c, err := NewCluster(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	res := c.RunProgram(BTB4(), 0)
	if res.TimedOut {
		t.Fatal("BT.B.4 timed out")
	}
	got := res.ExecTime.Seconds()
	if got < 210 || got > 230 {
		t.Errorf("BT.B.4 at nominal frequency ran %.1f s, want ≈219", got)
	}
}

func TestBaselinesConstruct(t *testing.T) {
	n, err := NewNode("n2", 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStaticFanControl(n, 75); err != nil {
		t.Error(err)
	}
	if _, err := NewCPUSpeed(n); err != nil {
		t.Error(err)
	}
	if _, err := NewTDVFS(n, 50); err != nil {
		t.Error(err)
	}
}

func TestPolicyBounds(t *testing.T) {
	if PpMin != 1 || PpMax != 100 {
		t.Errorf("policy bounds %d..%d, want 1..100", PpMin, PpMax)
	}
	n, _ := NewNode("n3", 11)
	if _, err := NewDynamicFanControl(n, 0, 100); err == nil {
		t.Error("Pp=0 accepted")
	}
	if _, err := NewDynamicFanControl(n, 101, 100); err == nil {
		t.Error("Pp=101 accepted")
	}
}

func TestProgramAccessors(t *testing.T) {
	p := BTB4()
	if p.Name != "BT.B.4" || len(p.Iters) != 200 {
		t.Errorf("BTB4: %s with %d iterations", p.Name, len(p.Iters))
	}
	if LUB4().Name != "LU.B.4" {
		t.Error("LUB4 name")
	}
}

func TestNewNodeWithConfig(t *testing.T) {
	cfg := DefaultNodeConfig("custom", 77)
	cfg.AmbientOffsetC = 4
	cfg.InitialDuty = 30
	n, err := NewNodeWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "custom" {
		t.Errorf("name %q", n.Name)
	}
	base, err := NewNode("base", 77)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	base.Settle(0)
	if d := n.TrueDieC() - base.TrueDieC(); d < 2 {
		t.Errorf("ambient offset moved idle temp by only %.1f °C", d)
	}
}

func TestNodePowerBreakdown(t *testing.T) {
	n, err := NewNode("pb", 81)
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(1)
	b := n.Power()
	if b.Base <= 0 || b.CPU <= 0 || b.Fan < 0 {
		t.Errorf("breakdown: %+v", b)
	}
	if b.Total() != b.Base+b.CPU+b.Fan {
		t.Error("Total not the sum of parts")
	}
	if b.Total() < 90 || b.Total() > 130 {
		t.Errorf("busy total %.1f W outside plausible range", b.Total())
	}
}

func TestVersionAndSeed(t *testing.T) {
	if Version == "" {
		t.Error("empty Version")
	}
	if ExperimentSeed == 0 {
		t.Error("zero ExperimentSeed")
	}
}
