module thermctl

go 1.22
