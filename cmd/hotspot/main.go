// Command hotspot attributes thermal behaviour to labelled program
// phases from an exported temperature trace — the offline companion of
// the Tempest-style profiler in internal/hotspot.
//
// Usage:
//
//	hotspot -trace run.csv [-series temp] phase:start:end ...
//
// The trace is a CSV in the cmd/experiments -csv format (a "time_s"
// column plus named series). Each positional argument labels a span:
// "compute:30:90" attributes the samples between 30 s and 90 s to the
// phase "compute". Labels may repeat.
//
// Example against a generated figure:
//
//	go run ./cmd/experiments -only fig2 -csv /tmp/out
//	go run ./cmd/hotspot -trace /tmp/out/fig2.csv \
//	    idle:0:30 onset:30:90 jitter:90:150 ramp:150:270 cooldown:270:300
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"thermctl/internal/hotspot"
	"thermctl/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "CSV trace file (required)")
	seriesName := flag.String("series", "temp", "name of the temperature column")
	flag.Parse()
	if *tracePath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hotspot -trace run.csv [-series temp] label:start_s:end_s ...")
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		fatal(err)
	}
	series := rec.Series(*seriesName)
	if series == nil {
		fatal(fmt.Errorf("series %q not in trace (have: %s)",
			*seriesName, strings.Join(rec.Names(), ", ")))
	}

	var spans []hotspot.Span
	for _, arg := range flag.Args() {
		sp, err := parseSpan(arg)
		if err != nil {
			fatal(err)
		}
		spans = append(spans, sp)
	}

	rep, err := hotspot.Analyze(series, spans)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
}

func parseSpan(arg string) (hotspot.Span, error) {
	parts := strings.Split(arg, ":")
	if len(parts) != 3 {
		return hotspot.Span{}, fmt.Errorf("bad span %q, want label:start_s:end_s", arg)
	}
	start, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return hotspot.Span{}, fmt.Errorf("bad span start in %q", arg)
	}
	end, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return hotspot.Span{}, fmt.Errorf("bad span end in %q", arg)
	}
	return hotspot.Span{
		Label: parts[0],
		Start: time.Duration(start * float64(time.Second)),
		End:   time.Duration(end * float64(time.Second)),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotspot:", err)
	os.Exit(1)
}
