// Command fanctl runs the paper's history-based dynamic fan controller
// against a simulated node and prints the temperature/duty trajectory —
// the single-node equivalent of the paper's §4.2 study.
//
// Usage:
//
//	fanctl [-pp 50] [-max-duty 100] [-workload burn|fig2|idle]
//	       [-duration 5m] [-method dynamic|static|constant] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"thermctl"
	"thermctl/internal/workload"
)

// stepper is the common OnStep surface of all controllers.
type stepper interface{ OnStep(now time.Duration) }

func main() {
	pp := flag.Int("pp", 50, "policy parameter Pp in [1,100]; small = aggressive cooling")
	maxDuty := flag.Float64("max-duty", 100, "maximum PWM duty cycle, percent")
	wl := flag.String("workload", "burn", "workload: burn, fig2 or idle")
	duration := flag.Duration("duration", 5*time.Minute, "simulated run time")
	method := flag.String("method", "dynamic", "fan method: dynamic, static or constant")
	seed := flag.Uint64("seed", 1, "simulation seed")
	every := flag.Duration("report", 10*time.Second, "reporting interval")
	flag.Parse()

	n, err := thermctl.NewNode("fanctl", *seed)
	if err != nil {
		fatal(err)
	}
	n.Settle(0)

	var ctl stepper
	switch *method {
	case "dynamic":
		c, err := thermctl.NewDynamicFanControl(n, *pp, *maxDuty)
		if err != nil {
			fatal(err)
		}
		ctl = c
	case "static":
		c, err := thermctl.NewStaticFanControl(n, *maxDuty)
		if err != nil {
			fatal(err)
		}
		ctl = c
	case "constant":
		// Pin once through the sysfs port and idle the control loop.
		c, err := thermctl.NewStaticFanControl(n, *maxDuty)
		if err != nil {
			fatal(err)
		}
		_ = c
		if err := n.FS.WriteInt(n.Hwmon.PWMEnable, 1); err != nil {
			fatal(err)
		}
		if err := n.FS.WriteInt(n.Hwmon.PWM, int64(*maxDuty*255/100)); err != nil {
			fatal(err)
		}
		ctl = nopStepper{}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	switch *wl {
	case "burn":
		n.SetGenerator(thermctl.CPUBurn(*seed + 1))
	case "fig2":
		n.SetGenerator(workload.Fig2Profile())
	case "idle":
		n.SetGenerator(workload.Constant(0.03))
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	fmt.Printf("fanctl: %s fan control, Pp=%d, max duty %.0f%%, workload %s, %s\n",
		*method, *pp, *maxDuty, *wl, *duration)
	fmt.Printf("%8s %10s %10s %10s %10s\n", "time", "temp degC", "duty %", "fan RPM", "power W")

	dt := 250 * time.Millisecond
	next := time.Duration(0)
	for n.Elapsed() < *duration {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
		if n.Elapsed() >= next {
			next += *every
			fmt.Printf("%8s %10.2f %10.1f %10.0f %10.1f\n",
				n.Elapsed().Truncate(time.Second), n.Sensor.Read(),
				n.Fan.Duty(), n.Fan.TachRPM(), n.Power().Total())
		}
	}
	fmt.Printf("\nfinal: die %.2f degC, duty %.1f%%, average power %.2f W over %s\n",
		n.TrueDieC(), n.Fan.Duty(), n.Meter.AverageW(), n.Meter.Elapsed().Truncate(time.Second))
}

type nopStepper struct{}

func (nopStepper) OnStep(time.Duration) {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fanctl:", err)
	os.Exit(1)
}
