package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startDaemon boots run() on an ephemeral port and returns the base
// URL plus a stop function that waits for a clean exit.
func startDaemon(t *testing.T, o options) (string, func() *bytes.Buffer) {
	t.Helper()
	stop := make(chan struct{})
	addrCh := make(chan string, 1)
	o.listen = "127.0.0.1:0"
	if o.dir == "" {
		o.dir = t.TempDir()
	}
	if o.drain == 0 {
		o.drain = 10 * time.Second
	}
	o.stop = stop
	o.onListen = func(a string) { addrCh <- a }

	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run(o, &out) }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never listened")
	}
	stopped := false
	stopFn := func() *bytes.Buffer {
		if !stopped {
			stopped = true
			close(stop)
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("daemon exit: %v\n%s", err, out.String())
				}
			case <-time.After(30 * time.Second):
				t.Fatal("daemon did not stop")
			}
		}
		return &out
	}
	t.Cleanup(func() { stopFn() })
	return "http://" + addr, stopFn
}

func TestServeSubmitAndShutdown(t *testing.T) {
	base, stop := startDaemon(t, options{workers: 2, queue: 8, sample: time.Second, genHorizon: 10 * time.Second})

	// Liveness and observability surfaces are mounted.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// Submit a campaign over the wire and follow it to done.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"nodes": 2, "program": "bt"}`))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for v.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", v.State)
		}
		time.Sleep(10 * time.Millisecond)
		r2, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r2.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
	}

	// The server's own instruments show up on /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "thermsrv_jobs_submitted_total 1") {
		t.Fatalf("metrics missing submission count:\n%s", body)
	}

	out := stop()
	if !strings.Contains(out.String(), "thermsrv: done") {
		t.Fatalf("missing shutdown banner:\n%s", out.String())
	}
}

func TestShutdownRacesInFlightJob(t *testing.T) {
	// Stop the daemon while a long campaign runs: the drain window
	// forces cancellation and the process still exits cleanly.
	base, stop := startDaemon(t, options{workers: 1, queue: 8, sample: time.Second,
		genHorizon: 1000 * time.Hour, drain: 100 * time.Millisecond})

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"nodes": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	out := stop()
	if !strings.Contains(out.String(), "thermsrv: done") {
		t.Fatalf("daemon did not exit cleanly:\n%s", out.String())
	}
}
