// Command thermsrv is the multi-tenant campaign server: thermal
// control as a service. Clients POST config.Scenario documents — the
// same JSON that clustersim -scenario and the experiment harness read —
// and the server runs each as a simulated campaign on a bounded worker
// pool, streams live telemetry over Server-Sent Events, and keeps the
// .tct trace and JSON report per job in a disk store.
//
// Usage:
//
//	thermsrv [-listen 127.0.0.1:9600] [-dir thermsrv-data]
//	         [-workers 4] [-queue 64] [-sample 1s] [-gen-horizon 60s]
//	         [-scenarios dir] [-drain 30s]
//
// API (see DESIGN.md §13 and cmd/thermq for a client):
//
//	POST   /v1/jobs             submit a scenario; 202 with the job,
//	                            400 invalid, 429 queue full, 503 draining
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        one job's state
//	DELETE /v1/jobs/{id}        cancel (409 once terminal)
//	GET    /v1/jobs/{id}/stream live SSE telemetry: state, sample,
//	                            failsafe and fault events
//	GET    /v1/jobs/{id}/trace  the .tct artifact (thermtrace reads it)
//	GET    /v1/jobs/{id}/report the JSON campaign summary
//	GET    /metrics             Prometheus text, thermsrv_* instruments
//	GET    /healthz             liveness
//
// Quick start:
//
//	thermsrv &
//	curl -d @examples/cluster-sleep.json http://127.0.0.1:9600/v1/jobs
//
// On SIGINT/SIGTERM the server stops intake (new submissions get 503),
// drains running campaigns up to -drain, cancels whatever remains, and
// exits once every job is terminal.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/server"
)

// options holds the parsed command line plus the test hooks, so the
// server loop is runnable (and stoppable) from a test without flag
// registration or os.Exit.
type options struct {
	listen     string
	dir        string
	workers    int
	queue      int
	sample     time.Duration
	genHorizon time.Duration
	scenarios  string
	drain      time.Duration

	// stop, when non-nil, triggers shutdown from another goroutine the
	// way a signal would.
	stop <-chan struct{}
	// onListen, when non-nil, receives the bound address once the HTTP
	// server is up (tests listen on :0 and need the port).
	onListen func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:9600", "HTTP address to serve the API on")
	flag.StringVar(&o.dir, "dir", "thermsrv-data", "artifact store root (one directory per job)")
	flag.IntVar(&o.workers, "workers", 4, "concurrent campaigns")
	flag.IntVar(&o.queue, "queue", 64, "queued submissions beyond the running jobs before 429")
	flag.DurationVar(&o.sample, "sample", time.Second, "trace and stream cadence in simulated time")
	flag.DurationVar(&o.genHorizon, "gen-horizon", 60*time.Second, "simulated run length for generator-driven (programless) jobs without a chaos horizon")
	flag.StringVar(&o.scenarios, "scenarios", "", "scenario library directory that submitted specs may \"extends\" from (empty refuses extends)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "how long shutdown waits for running campaigns before canceling them")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "thermsrv:", err)
		os.Exit(1)
	}
}

// run assembles and serves the campaign service until a signal (or the
// test stop channel) asks for shutdown.
func run(o options, out io.Writer) error {
	reg := metrics.NewRegistry()
	srv, err := server.New(server.Config{
		Workers:          o.workers,
		QueueDepth:       o.queue,
		Dir:              o.dir,
		Registry:         reg,
		SampleEvery:      o.sample,
		GeneratorHorizon: o.genHorizon,
		ScenarioDir:      o.scenarios,
	})
	if err != nil {
		return err
	}

	// One mux: the campaign API plus the standard observability
	// endpoints (/metrics, /debug/pprof) every daemon in this repo
	// exposes.
	mux := metrics.NewServeMux(reg)
	api := srv.Handler()
	mux.Handle("/v1/", api)
	mux.Handle("/healthz", api)

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", o.listen, err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns http.ErrServerClosed once Shutdown tears the
		// listener down; there is no caller left to report it to.
		_ = hs.Serve(ln)
	}()
	fmt.Fprintf(out, "thermsrv: %d workers, queue %d, artifacts in %s\n", o.workers, o.queue, o.dir)
	fmt.Fprintf(out, "thermsrv: serving on http://%s/v1/jobs\n", ln.Addr())
	if o.onListen != nil {
		o.onListen(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(out, "thermsrv: %v, shutting down\n", s)
	case <-o.stop:
		fmt.Fprintln(out, "thermsrv: stop requested, shutting down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	// Campaigns first: once every job is terminal the SSE handlers have
	// sent their final state records, and the HTTP drain below is
	// quick.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(out, "thermsrv:", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		// The drain budget is spent; cut the stragglers off.
		hs.Close()
	}
	fmt.Fprintln(out, "thermsrv: done")
	return nil
}
