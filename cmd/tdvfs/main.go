// Command tdvfs runs the temperature-aware DVFS daemon against a
// simulated node whose fan is pinned weak, demonstrating the paper's
// §4.3: frequency scales down only when the average temperature is
// consistently above the threshold and restores when consistently
// below.
//
// Usage:
//
//	tdvfs [-pp 50] [-threshold 51] [-fan-duty 25] [-duration 10m] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"thermctl"
	"thermctl/internal/core"
)

func main() {
	pp := flag.Int("pp", 50, "policy parameter Pp in [1,100]")
	threshold := flag.Float64("threshold", 51, "trigger temperature, degC")
	fanDuty := flag.Float64("fan-duty", 25, "pinned fan duty, percent (weak fan forces DVFS to act)")
	duration := flag.Duration("duration", 10*time.Minute, "simulated run time")
	seed := flag.Uint64("seed", 1, "simulation seed")
	every := flag.Duration("report", 15*time.Second, "reporting interval")
	flag.Parse()

	n, err := thermctl.NewNode("tdvfs", *seed)
	if err != nil {
		fatal(err)
	}
	n.Settle(0)

	// Pin the fan through sysfs, as a weak or failed cooling stage.
	if err := n.FS.WriteInt(n.Hwmon.PWMEnable, 1); err != nil {
		fatal(err)
	}
	if err := n.FS.WriteInt(n.Hwmon.PWM, int64(*fanDuty*255/100)); err != nil {
		fatal(err)
	}

	cfg := core.DefaultTDVFSConfig(*pp)
	cfg.ThresholdC = *threshold
	act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		fatal(err)
	}
	d, err := core.NewTDVFS(cfg, core.SysfsTemp(n.FS, n.Hwmon.TempInput), act)
	if err != nil {
		fatal(err)
	}

	n.SetGenerator(thermctl.CPUBurn(*seed + 1))
	fmt.Printf("tdvfs: Pp=%d, threshold %.0f degC, fan pinned at %.0f%%, cpu-burn for %s\n",
		*pp, *threshold, *fanDuty, *duration)
	fmt.Printf("%8s %10s %9s %7s %7s %12s\n", "time", "temp degC", "freq GHz", "downs", "ups", "transitions")

	dt := 250 * time.Millisecond
	next := time.Duration(0)
	lastFreq := n.CPU.FreqGHz()
	for n.Elapsed() < *duration {
		n.Step(dt)
		d.OnStep(n.Elapsed())
		if f := n.CPU.FreqGHz(); f != lastFreq {
			fmt.Printf("%8s  >> frequency change: %.1f -> %.1f GHz\n",
				n.Elapsed().Truncate(time.Second), lastFreq, f)
			lastFreq = f
		}
		if n.Elapsed() >= next {
			next += *every
			fmt.Printf("%8s %10.2f %9.1f %7d %7d %12d\n",
				n.Elapsed().Truncate(time.Second), n.Sensor.Read(), n.CPU.FreqGHz(),
				d.Downscales(), d.Upscales(), n.CPU.Transitions())
		}
	}
	fmt.Printf("\nfinal: die %.2f degC at %.1f GHz; %d transitions total\n",
		n.TrueDieC(), n.CPU.FreqGHz(), n.CPU.Transitions())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdvfs:", err)
	os.Exit(1)
}
