package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermctl/internal/tracefile"
)

// writeTrace records a small two-series campaign to a temp .tct file
// and returns its path.
func writeTrace(t *testing.T, mutate func(i int, v float64) float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.tct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := tracefile.NewWriter(f, []tracefile.SeriesDef{
		{Name: "n0_temp", Unit: "degC"},
		{Name: "n0_fan", Unit: "percent"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ts := time.Duration(i) * time.Second
		w.Append(0, ts, mutate(i, 40+float64(i%7)))
		w.Append(1, ts, 30)
	}
	w.Event(0, "campaign start")
	w.Event(99*time.Second, "campaign end")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func ident(_ int, v float64) float64 { return v }

func TestInfo(t *testing.T) {
	path := writeTrace(t, ident)
	var out, errb bytes.Buffer
	if code := run([]string{"info", path}, &out, &errb); code != 0 {
		t.Fatalf("info exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"n0_temp", "degC", "samples: 200", "events: 2", "time range: 0s .. 1m39s"} {
		if !strings.Contains(s, want) {
			t.Errorf("info output missing %q:\n%s", want, s)
		}
	}
}

func TestCatCSVAndWindow(t *testing.T) {
	path := writeTrace(t, ident)
	var out, errb bytes.Buffer
	if code := run([]string{"cat", "-series", "n0_temp", "-from", "10s", "-to", "12s", path}, &out, &errb); code != 0 {
		t.Fatalf("cat exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "time_s,n0_temp" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // 10s, 11s, 12s
		t.Fatalf("got %d rows, want 3:\n%s", len(lines)-1, out.String())
	}
	if !strings.HasPrefix(lines[1], "10.000,") {
		t.Fatalf("first row = %q", lines[1])
	}

	out.Reset()
	if code := run([]string{"cat", "-events", path}, &out, &errb); code != 0 {
		t.Fatalf("cat -events exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "campaign start") || !strings.Contains(out.String(), "campaign end") {
		t.Fatalf("events output:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"cat", "-series", "nope", path}, &out, &errb); code != 2 {
		t.Fatalf("unknown series exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "not in the file's schema") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestDiff(t *testing.T) {
	a := writeTrace(t, ident)
	b := writeTrace(t, ident)
	changed := writeTrace(t, func(i int, v float64) float64 {
		if i == 42 {
			return v + 0.25
		}
		return v
	})

	var out, errb bytes.Buffer
	if code := run([]string{"diff", a, b}, &out, &errb); code != 0 {
		t.Fatalf("identical diff exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "byte-identical") {
		t.Fatalf("diff output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"diff", a, changed}, &out, &errb); code != 1 {
		t.Fatalf("diverging diff exit %d, want 1 (%s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "DIFFER") || !strings.Contains(out.String(), "n0_temp") {
		t.Fatalf("diff output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"diff", "-tolerance", "0.5", a, changed}, &out, &errb); code != 0 {
		t.Fatalf("tolerant diff exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bogus exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"help"}, &out, &errb); code != 0 || !strings.Contains(out.String(), "usage:") {
		t.Fatalf("help exit %d:\n%s", code, out.String())
	}
	errb.Reset()
	if code := run([]string{"info", filepath.Join(t.TempDir(), "missing.tct")}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit %d, want 2", code)
	}
}
