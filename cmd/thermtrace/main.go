// Command thermtrace inspects .tct trace files (see internal/tracefile
// and DESIGN.md §12): the offline half of the out-of-core trace
// pipeline that -trace on clustersim and thermctld records.
//
// Usage:
//
//	thermtrace info run.tct
//	thermtrace cat [-series n0_temp,n0_fan] [-from 30s] [-to 2m] [-events] run.tct
//	thermtrace diff [-tolerance 0.001] a.tct b.tct
//
// info prints the schema and a streaming per-series digest (count,
// min, mean, max, last) plus the reader's recovery report when the
// file is truncated. cat slices by series and time window and emits
// CSV (or, with -events, the raw event lines). diff compares two
// traces byte for byte and then value by value within a tolerance,
// exiting 1 on divergence — the primitive trace-based golden tests are
// built on.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"thermctl/internal/report"
	"thermctl/internal/trace"
	"thermctl/internal/tracefile"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "info":
		err = infoCmd(args[1:], stdout)
	case "cat":
		err = catCmd(args[1:], stdout)
	case "diff":
		var same bool
		same, err = diffCmd(args[1:], stdout)
		if err == nil && !same {
			return 1
		}
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "thermtrace: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "thermtrace:", err)
		return 2
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  thermtrace info <file.tct>
  thermtrace cat [-series a,b] [-from dur] [-to dur] [-events] <file.tct>
  thermtrace diff [-tolerance f] <a.tct> <b.tct>
`)
}

func infoCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info wants exactly one trace file")
	}
	path := fs.Arg(0)
	sum, err := report.SummarizeTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\n", path)
	return sum.WriteText(stdout)
}

// window parses -from/-to into the reader's Window.
func window(from, to string) (tracefile.Window, error) {
	var win tracefile.Window
	if from != "" {
		d, err := time.ParseDuration(from)
		if err != nil {
			return win, fmt.Errorf("bad -from: %w", err)
		}
		win.From = d
	}
	if to != "" {
		d, err := time.ParseDuration(to)
		if err != nil {
			return win, fmt.Errorf("bad -to: %w", err)
		}
		win.To = d
	}
	return win, nil
}

func catCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cat", flag.ContinueOnError)
	series := fs.String("series", "", "comma-separated series names to include (default all)")
	from := fs.String("from", "", "window start (Go duration, e.g. 30s)")
	to := fs.String("to", "", "window end (Go duration)")
	events := fs.Bool("events", false, "emit the event lines instead of sample CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cat wants exactly one trace file")
	}
	win, err := window(*from, *to)
	if err != nil {
		return err
	}
	r, closer, err := tracefile.OpenFile(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closer.Close()

	if *events {
		return r.Events(win, func(e tracefile.Event) error {
			_, err := fmt.Fprintf(stdout, "%s\t%s\n", e.T, e.Text)
			return err
		})
	}

	keep := map[string]bool{}
	if *series != "" {
		for _, n := range strings.Split(*series, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		for n := range keep {
			found := false
			for _, d := range r.Schema() {
				if d.Name == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("series %q is not in the file's schema", n)
			}
		}
	}
	// CSV joins rows on timestamps, so the slice is assembled in a
	// recorder; filter first to keep only the requested columns
	// resident.
	rec := trace.NewRecorder()
	schema := r.Schema()
	err = r.Samples(win, func(s tracefile.Sample) error {
		name := schema[s.Series].Name
		if len(keep) > 0 && !keep[name] {
			return nil
		}
		rec.Record(name, s.T, s.V)
		return nil
	})
	if err != nil {
		return err
	}
	return rec.WriteCSV(stdout)
}

func diffCmd(args []string, stdout io.Writer) (bool, error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	tol := fs.Float64("tolerance", 0, "max absolute per-sample value difference")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("diff wants exactly two trace files")
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)

	// Byte level first: identical files need no decoding at all.
	ba, err := os.ReadFile(pathA)
	if err != nil {
		return false, err
	}
	bb, err := os.ReadFile(pathB)
	if err != nil {
		return false, err
	}
	if bytes.Equal(ba, bb) {
		fmt.Fprintf(stdout, "byte-identical (%d bytes)\n", len(ba))
		return true, nil
	}

	ra, err := tracefile.NewBytesReader(ba)
	if err != nil {
		return false, fmt.Errorf("%s: %w", pathA, err)
	}
	rb, err := tracefile.NewBytesReader(bb)
	if err != nil {
		return false, fmt.Errorf("%s: %w", pathB, err)
	}
	res, err := tracefile.Diff(ra, rb, *tol)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(stdout, "bytes differ; samples %d/%d, events %d/%d, max value delta %g\n",
		res.SamplesA, res.SamplesB, res.EventsA, res.EventsB, res.MaxDelta)
	if res.Equal() {
		fmt.Fprintf(stdout, "values equal within tolerance %g\n", *tol)
		return true, nil
	}
	fmt.Fprintf(stdout, "DIFFER: %s\n", res.First)
	return false, nil
}
