// Command ipmitool is the management-station client for this
// repository's IPMI dialect: it connects to a BMC served over TCP
// (e.g. by `thermctld -ipmi 127.0.0.1:9623`) and reads sensors or
// commands the fan — the out-of-band path, exercised from a separate
// process exactly as a real operations console would.
//
// Usage:
//
//	ipmitool -H 127.0.0.1:9623 sensor list
//	ipmitool -H 127.0.0.1:9623 sensor read 1
//	ipmitool -H 127.0.0.1:9623 fan status
//	ipmitool -H 127.0.0.1:9623 fan manual 80
//	ipmitool -H 127.0.0.1:9623 fan auto
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"thermctl/internal/ipmi"
)

func main() {
	host := flag.String("H", "127.0.0.1:9623", "BMC address (host:port)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}

	conn, err := ipmi.Dial(*host)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	c := ipmi.NewClient(conn)

	switch args[0] + " " + args[1] {
	case "sensor list":
		sensors, err := c.ListSensors()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-4s %-16s %-12s %s\n", "num", "name", "unit", "reading")
		for _, s := range sensors {
			v, err := c.ReadSensor(s.Number)
			reading := "n/a"
			if err == nil {
				reading = fmt.Sprintf("%.2f", v)
			}
			fmt.Printf("%-4d %-16s %-12s %s\n", s.Number, s.Name, s.Unit, reading)
		}
	case "sensor read":
		if len(args) < 3 {
			usage()
		}
		num, err := strconv.Atoi(args[2])
		if err != nil || num < 0 || num > 255 {
			fatal(fmt.Errorf("bad sensor number %q", args[2]))
		}
		v, err := c.ReadSensor(uint8(num))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.2f\n", v)
	case "fan status":
		manual, err := c.FanManual()
		if err != nil {
			fatal(err)
		}
		duty, err := c.FanDuty()
		if err != nil {
			fatal(err)
		}
		mode := "auto"
		if manual {
			mode = "manual"
		}
		fmt.Printf("mode: %s, duty: %.0f%%\n", mode, duty)
	case "fan manual":
		if len(args) < 3 {
			usage()
		}
		duty, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			fatal(fmt.Errorf("bad duty %q", args[2]))
		}
		if err := c.SetFanManual(true); err != nil {
			fatal(err)
		}
		if err := c.SetFanDuty(duty); err != nil {
			fatal(err)
		}
		fmt.Printf("fan set to manual, %.0f%% duty\n", duty)
	case "fan auto":
		if err := c.SetFanManual(false); err != nil {
			fatal(err)
		}
		fmt.Println("fan returned to automatic (chip curve) control")
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ipmitool -H host:port <command>
commands:
  sensor list            list the BMC's sensor repository with readings
  sensor read <num>      read one sensor
  fan status             show fan mode and duty
  fan manual <duty>      take manual control at the given duty percent
  fan auto               return the fan to the chip's automatic curve`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipmitool:", err)
	os.Exit(1)
}
