// Command thermctld is the unified thermal control daemon: it runs a
// simulated node under the paper's coordinated fan+DVFS controller and
// optionally exposes the node's BMC over TCP so external tools can read
// sensors and command the fan out-of-band while the daemon runs.
//
// Usage:
//
//	thermctld [-pp 50] [-max-duty 50] [-duration 10m]
//	          [-ipmi 127.0.0.1:9623] [-seed 1] [-config thermctl.json]
//
// A JSON config file (see internal/config) overrides the flag defaults:
//
//	{"pp": 25, "max_fan_duty": 60, "threshold_c": 55}
//
// With -ipmi, connect with any client speaking this repository's IPMI
// framing, e.g.:
//
//	c, _ := ipmi.Dial("127.0.0.1:9623")
//	t, _ := ipmi.NewClient(c).ReadSensor(1) // CPU temperature
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"thermctl"
	"thermctl/internal/config"
	"thermctl/internal/core"
	"thermctl/internal/ipmi"
)

func main() {
	pp := flag.Int("pp", 50, "policy parameter Pp in [1,100] for both knobs")
	maxDuty := flag.Float64("max-duty", 50, "maximum PWM duty, percent")
	duration := flag.Duration("duration", 10*time.Minute, "simulated run time")
	ipmiAddr := flag.String("ipmi", "", "optional TCP address to serve the node's BMC on")
	seed := flag.Uint64("seed", 1, "simulation seed")
	every := flag.Duration("report", 15*time.Second, "reporting interval")
	verbose := flag.Bool("verbose", false, "print the controller's internal status with each report")
	pace := flag.Float64("pace", 0, "simulated seconds per wall second (0 = run flat out); use e.g. 10 when driving the BMC interactively with ipmitool")
	cfgPath := flag.String("config", "", "JSON configuration file; overrides -pp/-max-duty")
	flag.Parse()

	cfg := config.Default()
	cfg.Pp = *pp
	cfg.MaxFanDuty = *maxDuty
	if *cfgPath != "" {
		loaded, err := config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	n, err := thermctl.NewNode("thermctld", *seed)
	if err != nil {
		fatal(err)
	}
	n.Settle(0)

	read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
	fan, err := core.NewController(cfg.ControllerConfig(), read,
		core.ActuatorBinding{Actuator: core.NewFanActuator(
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, cfg.MaxFanDuty)})
	if err != nil {
		fatal(err)
	}
	act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		fatal(err)
	}
	dvfs, err := core.NewTDVFS(cfg.TDVFSConfig(), read, act)
	if err != nil {
		fatal(err)
	}
	u := core.NewHybrid(fan, dvfs)

	if *ipmiAddr != "" {
		srv, err := ipmi.ListenAndServe(*ipmiAddr, n.BMC)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("thermctld: BMC serving IPMI on %s\n", srv.Addr())
	}

	n.SetGenerator(thermctl.CPUBurn(*seed + 1))
	fmt.Printf("thermctld: unified control, Pp=%d, max duty %.0f%%, threshold %.0f degC, %s\n",
		cfg.Pp, cfg.MaxFanDuty, cfg.ThresholdC, *duration)
	fmt.Printf("%8s %10s %8s %9s %8s %10s\n",
		"time", "temp degC", "duty %", "freq GHz", "dvfs", "power W")

	dt := 250 * time.Millisecond
	next := time.Duration(0)
	for n.Elapsed() < *duration {
		if *pace > 0 {
			time.Sleep(time.Duration(float64(dt) / *pace))
		}
		n.Step(dt)
		u.OnStep(n.Elapsed())
		if n.Elapsed() >= next {
			next += *every
			engaged := "idle"
			if u.DVFS.Engaged() {
				engaged = "engaged"
			}
			fmt.Printf("%8s %10.2f %8.1f %9.1f %8s %10.1f\n",
				n.Elapsed().Truncate(time.Second), n.Sensor.Read(), n.Fan.Duty(),
				n.CPU.FreqGHz(), engaged, n.Power().Total())
			if *verbose {
				fmt.Printf("          %s\n", fan.Status())
			}
		}
	}
	fmt.Printf("\nfinal: die %.2f degC, duty %.1f%%, %.1f GHz; avg power %.2f W; %d freq transitions\n",
		n.TrueDieC(), n.Fan.Duty(), n.CPU.FreqGHz(), n.Meter.AverageW(), n.CPU.Transitions())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermctld:", err)
	os.Exit(1)
}
