// Command thermctld is the unified thermal control daemon: it runs a
// simulated node under the paper's coordinated fan+DVFS controller and
// optionally exposes the node's BMC over TCP so external tools can read
// sensors and command the fan out-of-band while the daemon runs.
//
// Usage:
//
//	thermctld [-pp 50] [-max-duty 50] [-duration 10m]
//	          [-fan dynamic|static|constant|auto] [-dvfs none|tdvfs|cpuspeed]
//	          [-sleep none|ctlarray] [-ipmi 127.0.0.1:9623] [-seed 1]
//	          [-config thermctl.json] [-scenario run.json]
//	          [-listen 127.0.0.1:9090] [-faults plan.json] [-trace run.tct]
//
// A JSON config file (see internal/config) overrides the flag defaults:
//
//	{"pp": 25, "max_fan_duty": 60, "threshold_c": 55}
//
// A scenario file (-scenario) goes further: its control section selects
// the techniques and the tuning for this daemon exactly as it does for
// clustersim and the experiment harness — one document, three
// consumers. The daemon runs one node, so the scenario's topology
// fields (nodes, workers, program, chaos) are ignored here.
//
// With -sleep ctlarray, the processor sleep-state actuator rides the
// same thermal control array as the fan (a second binding on the
// dynamic controller, or a standalone array when the fan is not under
// dynamic control).
//
// With -faults, the daemon replays a fault plan (see internal/faults)
// against its own devices; every schedule in the plan must target this
// node, "thermctld". Actuator writes run under the retry policy and the
// controllers degrade to fail-safe when errors persist, so a fault plan
// is a live resilience drill:
//
//	{"name": "drill", "schedules": [{"target": "thermctld",
//	  "episodes": [{"kind": "sensor-dropout", "start": "30s", "for": "20s"}]}]}
//
// With -ipmi, connect with any client speaking this repository's IPMI
// framing, e.g.:
//
//	c, _ := ipmi.Dial("127.0.0.1:9623")
//	t, _ := ipmi.NewClient(c).ReadSensor(1) // CPU temperature
//
// With -listen, the daemon serves Prometheus-text metrics on /metrics
// and the standard pprof profiling endpoints under /debug/pprof/:
//
//	curl http://127.0.0.1:9090/metrics
//
// With -trace, the node's temperature, fan duty, frequency and power
// are streamed every control step to a binary .tct trace file
// (internal/tracefile, DESIGN.md §12); slice and diff it afterwards
// with cmd/thermtrace. The writer is bounded-memory, so a multi-day
// -duration records fine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"thermctl"
	"thermctl/internal/config"
	"thermctl/internal/faults"
	"thermctl/internal/ipmi"
	"thermctl/internal/metrics"
	"thermctl/internal/rng"
	"thermctl/internal/tracefile"
)

// rng stream indices for the daemon's fault-plane draws, disjoint from
// the node model's own streams (which are derived from the seed with
// small indices).
const (
	faultStream = 0xfa170000
	retryStream = 0xfa170001
)

// options holds the parsed command line plus the test hooks, so the
// daemon loop is runnable (and stoppable) from a test without flag
// registration or os.Exit.
type options struct {
	pp       int
	maxDuty  float64
	duration time.Duration
	ipmiAddr string
	listen   string
	seed     uint64
	every    time.Duration
	verbose  bool
	pace     float64
	cfgPath  string
	scenario string
	fan      string
	dvfs     string
	sleep    string
	faults   string
	trace    string

	// stop, when non-nil, ends the run early from another goroutine.
	stop <-chan struct{}
	// onListen, when non-nil, receives the bound metrics address once
	// the HTTP server is up (tests listen on :0 and need the port).
	onListen func(addr string)
}

func main() {
	var o options
	flag.IntVar(&o.pp, "pp", 50, "policy parameter Pp in [1,100] for both knobs")
	flag.Float64Var(&o.maxDuty, "max-duty", 50, "maximum PWM duty, percent")
	flag.DurationVar(&o.duration, "duration", 10*time.Minute, "simulated run time")
	flag.StringVar(&o.fan, "fan", "dynamic", "fan control: dynamic, static, constant or auto (chip firmware)")
	flag.StringVar(&o.dvfs, "dvfs", "tdvfs", "DVFS daemon: none, tdvfs or cpuspeed")
	flag.StringVar(&o.sleep, "sleep", "none", "sleep-state control: none, or ctlarray to drive C-states through the thermal control array")
	flag.StringVar(&o.ipmiAddr, "ipmi", "", "optional TCP address to serve the node's BMC on")
	flag.StringVar(&o.listen, "listen", "", "optional HTTP address for /metrics and /debug/pprof")
	flag.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	flag.DurationVar(&o.every, "report", 15*time.Second, "reporting interval")
	flag.BoolVar(&o.verbose, "verbose", false, "print the controller's internal status with each report")
	flag.Float64Var(&o.pace, "pace", 0, "simulated seconds per wall second (0 = run flat out); use e.g. 10 when driving the BMC interactively with ipmitool")
	flag.StringVar(&o.cfgPath, "config", "", "JSON configuration file; overrides -pp/-max-duty")
	flag.StringVar(&o.scenario, "scenario", "", "JSON scenario file; its control section overrides the technique and tuning flags")
	flag.StringVar(&o.faults, "faults", "", "JSON fault plan replayed against this node's devices (resilience drill)")
	flag.StringVar(&o.trace, "trace", "", "record the node's series to this binary trace file (inspect with thermtrace)")
	flag.Parse()

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "thermctld:", err)
		os.Exit(1)
	}
}

// spec resolves the daemon's control specification from the flags and
// the optional config / scenario files.
func spec(o options) (config.ControlSpec, error) {
	cfg := config.Default()
	cfg.Pp = o.pp
	cfg.MaxFanDuty = o.maxDuty
	if o.cfgPath != "" {
		loaded, err := config.Load(o.cfgPath)
		if err != nil {
			return config.ControlSpec{}, err
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		return config.ControlSpec{}, err
	}
	cs := config.ControlSpec{Fan: o.fan, DVFS: o.dvfs, Sleep: o.sleep, Tuning: cfg}
	if o.scenario != "" {
		s, err := config.LoadScenario(o.scenario)
		if err != nil {
			return config.ControlSpec{}, err
		}
		cs = s.Control
	}
	// Reuse the scenario validation for the technique names; the
	// single-node daemon ignores the topology fields.
	probe := config.Scenario{Nodes: 1, Control: cs}
	probe.Normalize()
	if err := probe.Validate(); err != nil {
		return config.ControlSpec{}, err
	}
	return probe.Control, nil
}

// run assembles the simulated stack and executes the control loop. All
// metric registration happens here, before the first step — the
// metricsafe analyzer holds the module to that split.
func run(o options, out io.Writer) error {
	cs, err := spec(o)
	if err != nil {
		return err
	}

	n, err := thermctl.NewNode("thermctld", o.seed)
	if err != nil {
		return err
	}
	n.Settle(0)

	// Optional fault plan: replayed by a plane stepped in lockstep with
	// the control loop, exactly like the cluster's serial fault phase.
	var plane *faults.Plane
	if o.faults != "" {
		plan, err := faults.LoadPlan(o.faults)
		if err != nil {
			return err
		}
		for _, sch := range plan.Schedules {
			if sch.Target != n.Name {
				return fmt.Errorf("fault plan %q targets %q; this daemon's node is %q",
					plan.Name, sch.Target, n.Name)
			}
		}
		plane, err = faults.NewPlane(plan)
		if err != nil {
			return err
		}
		n.AttachFaults(plane.Injector(n.Name), rng.New(rng.Mix(o.seed, faultStream)))
	}

	// Every actuator write runs under the bounded-retry policy, so a
	// transient bus fault is absorbed before the controller counts an
	// error; persistent failure still escalates to fail-safe. The nil
	// sleep hook keeps OnStep off the wall clock.
	retrier := faults.NewRetrier(faults.DefaultRetryPolicy(),
		rng.New(rng.Mix(o.seed, retryStream)), nil)

	// Wire the whole stack to one registry: controllers, device models,
	// BMC, and the daemon's own loop timing. The scenario layer builds
	// (and instruments) the controller set — the same wiring clustersim
	// and the experiment harness use.
	reg := metrics.NewRegistry()
	nc, err := cs.BuildNode(n, config.NodeOptions{Retrier: retrier, Registry: reg})
	if err != nil {
		return err
	}
	n.Fan.InstrumentMetrics(reg)
	n.Chip.InstrumentMetrics(reg)
	n.BMC.InstrumentMetrics(reg)
	retrier.InstrumentMetrics(reg)
	if plane != nil {
		plane.InstrumentMetrics(reg)
	}
	stepSeconds := reg.NewHistogram("thermctl_daemon_step_seconds",
		"wall-clock latency of one daemon control-loop step", nil)
	steps := reg.NewCounter("thermctl_daemon_steps_total",
		"daemon control-loop steps executed")

	// Optional binary trace of the run, one record set per control
	// step. The schema matches a one-node cluster trace, so the same
	// thermtrace invocations work on daemon and clustersim output.
	var tw *tracefile.Writer
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if tw, err = tracefile.NewWriter(f, config.ClusterTraceSchema(1), nil); err != nil {
			return err
		}
	}
	closeTrace := func() error {
		if tw == nil {
			return nil
		}
		if err := tw.Close(); err != nil {
			return fmt.Errorf("writing trace %s: %w", o.trace, err)
		}
		fmt.Fprintf(out, "trace: %s; inspect with `go run ./cmd/thermtrace info %s`\n", o.trace, o.trace)
		return nil
	}

	if o.listen != "" {
		srv, err := metrics.Serve(o.listen, reg)
		if err != nil {
			return err
		}
		// Drain in-flight scrapes on exit rather than cutting them off.
		defer func() {
			if err := srv.ShutdownTimeout(2 * time.Second); err != nil {
				fmt.Fprintln(out, "thermctld: metrics shutdown:", err)
			}
		}()
		fmt.Fprintf(out, "thermctld: metrics and pprof on http://%s/metrics\n", srv.Addr())
		if o.onListen != nil {
			o.onListen(srv.Addr())
		}
	}

	if o.ipmiAddr != "" {
		srv, err := ipmi.ListenAndServe(o.ipmiAddr, n.BMC)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "thermctld: BMC serving IPMI on %s\n", srv.Addr())
	}

	tune := cs.Tuning
	n.SetGenerator(thermctl.CPUBurn(o.seed + 1))
	fmt.Fprintf(out, "thermctld: fan=%s dvfs=%s sleep=%s, Pp=%d, max duty %.0f%%, threshold %.0f degC, %s\n",
		cs.Fan, cs.DVFS, cs.Sleep, tune.Pp, tune.MaxFanDuty, tune.ThresholdC, o.duration)
	fmt.Fprintf(out, "%8s %10s %8s %9s %8s %10s\n",
		"time", "temp degC", "duty %", "freq GHz", "dvfs", "power W")

	dt := 250 * time.Millisecond
	next := time.Duration(0)
	for n.Elapsed() < o.duration {
		if o.stop != nil {
			select {
			case <-o.stop:
				fmt.Fprintf(out, "\nstopped at %s\n", n.Elapsed().Truncate(time.Second))
				return closeTrace()
			default:
			}
		}
		if o.pace > 0 {
			time.Sleep(time.Duration(float64(dt) / o.pace))
		}
		begin := metrics.Now()
		n.Step(dt)
		if plane != nil {
			plane.OnStep(n.Elapsed())
		}
		for _, ctl := range nc.Controllers {
			ctl.OnStep(n.Elapsed())
		}
		stepSeconds.ObserveSince(begin)
		steps.Inc()
		if tw != nil {
			now := n.Elapsed()
			tw.Append(0, now, n.Sensor.Read())
			tw.Append(1, now, n.Fan.Duty())
			tw.Append(2, now, n.CPU.FreqGHz())
			tw.Append(3, now, n.Power().Total())
		}
		if n.Elapsed() >= next {
			next += o.every
			engaged := "-"
			if nc.TDVFS != nil {
				engaged = "idle"
				if nc.TDVFS.Engaged() {
					engaged = "engaged"
				}
			}
			fmt.Fprintf(out, "%8s %10.2f %8.1f %9.1f %8s %10.1f\n",
				n.Elapsed().Truncate(time.Second), n.Sensor.Read(), n.Fan.Duty(),
				n.CPU.FreqGHz(), engaged, n.Power().Total())
			if o.verbose {
				switch {
				case nc.Fan != nil:
					fmt.Fprintf(out, "          %s\n", nc.Fan.Status())
				case nc.Sleep != nil:
					fmt.Fprintf(out, "          %s\n", nc.Sleep.Status())
				}
			}
		}
	}
	if err := closeTrace(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfinal: die %.2f degC, duty %.1f%%, %.1f GHz; avg power %.2f W; %d freq transitions\n",
		n.TrueDieC(), n.Fan.Duty(), n.CPU.FreqGHz(), n.Meter.AverageW(), n.CPU.Transitions())
	if cs.Sleep == "ctlarray" {
		ctl, slot := nc.Sleep, 0
		if ctl == nil && nc.Fan != nil {
			ctl, slot = nc.Fan, 1 // second binding on the dynamic controller
		}
		if ctl != nil {
			fmt.Fprintf(out, "sleep-state array: mode C%d, %d moves\n",
				ctl.Policy().Mode(slot), ctl.Binding().Moves(slot))
		}
	}
	if plane != nil {
		fmt.Fprintf(out, "fault timeline:\n%s", plane.Timeline())
		// The hybrid's aggregated surface covers both lanes; other
		// configurations report per-controller.
		if h := nc.Hybrid; h != nil {
			var fanEdges, dvfsEdges int
			for _, ev := range h.FailSafeEvents() {
				switch ev.Lane {
				case "fan":
					fanEdges++
				case "dvfs":
					dvfsEdges++
				}
			}
			fmt.Fprintf(out, "controller errors: %d; fail-safe: fan %d, dvfs %d edges\n",
				h.Errors(), fanEdges, dvfsEdges)
		} else {
			var errs uint64
			var edges int
			if nc.Fan != nil {
				errs += nc.Fan.Errors()
				edges += len(nc.Fan.FailSafeEvents())
			}
			if nc.TDVFS != nil {
				errs += nc.TDVFS.Errors()
				edges += len(nc.TDVFS.FailSafeEvents())
			}
			if nc.Sleep != nil {
				errs += nc.Sleep.Errors()
				edges += len(nc.Sleep.FailSafeEvents())
			}
			fmt.Fprintf(out, "controller errors: %d; fail-safe: %d edges\n", errs, edges)
		}
	}
	return nil
}
