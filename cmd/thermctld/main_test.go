package main

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"thermctl/internal/tracefile"
)

// scrape fetches the /metrics endpoint and returns the body.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("scrape: content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return string(body)
}

// sampleValue extracts the value of an unlabeled sample line
// ("name 42") from an exposition body.
func sampleValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("sample %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("sample %q not found in scrape", name)
	return 0
}

// TestDaemonServesMetrics starts the daemon on the simulated stack with
// -listen, scrapes /metrics while it runs, and checks that the core
// series are present and monotone between scrapes.
func TestDaemonServesMetrics(t *testing.T) {
	stop := make(chan struct{})
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	o := options{
		pp:      50,
		maxDuty: 30, // weak cap: mode transitions happen quickly
		// Effectively unbounded: the stop channel, not the simulated
		// duration, ends this run (the loop covers hours of simulated
		// time per wall second).
		duration: 100000 * time.Hour,
		listen:   "127.0.0.1:0",
		seed:     1,
		every:    time.Hour,
		stop:     stop,
		onListen: func(a string) { addrCh <- a },
	}
	var out bytes.Buffer
	go func() { done <- run(o, &out) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening within 10s")
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("run: %v", err)
		}
	}()

	first := scrape(t, addr)
	for _, want := range []string{
		"# TYPE thermctl_controller_mode_transitions_total counter",
		"# TYPE thermctl_daemon_step_seconds histogram",
		"thermctl_daemon_step_seconds_bucket{le=\"+Inf\"}",
		"thermctl_controller_rounds_total",
		"thermctl_tdvfs_rounds_total",
		"thermctl_fan_duty_transitions_total",
		"thermctl_adt7467_register_writes_total",
		"thermctl_daemon_steps_total",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The loop runs flat out, so a short wall wait advances it by many
	// steps; the counters must be monotone non-decreasing and the step
	// counter strictly increasing.
	steps1 := sampleValue(t, first, "thermctl_daemon_steps_total")
	rounds1 := sampleValue(t, first, "thermctl_controller_rounds_total")
	deadline := time.Now().Add(10 * time.Second)
	for {
		second := scrape(t, addr)
		steps2 := sampleValue(t, second, "thermctl_daemon_steps_total")
		rounds2 := sampleValue(t, second, "thermctl_controller_rounds_total")
		if steps2 < steps1 || rounds2 < rounds1 {
			t.Fatalf("counters went backwards: steps %v→%v, rounds %v→%v",
				steps1, steps2, rounds1, rounds2)
		}
		if steps2 > steps1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("step counter did not advance within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunRejectsBadConfig exercises the error path without os.Exit.
func TestRunRejectsBadConfig(t *testing.T) {
	o := options{pp: 0, maxDuty: 50, duration: time.Second}
	if err := run(o, io.Discard); err == nil {
		t.Fatal("pp=0 accepted")
	}
}

// TestRunCompletes runs a short daemon lifetime end-to-end, without a
// listener, and checks the final report is written.
func TestRunCompletes(t *testing.T) {
	var out bytes.Buffer
	o := options{pp: 50, maxDuty: 50, duration: 30 * time.Second, seed: 1, every: time.Minute}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final: die") {
		t.Errorf("missing final report in output:\n%s", out.String())
	}
}

// TestRunWritesTrace checks the -trace wiring end to end: the daemon
// records a complete, readable .tct file whose sample count matches
// the step count.
func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.tct")
	var out bytes.Buffer
	o := options{pp: 50, maxDuty: 50, duration: 10 * time.Second, seed: 1,
		every: time.Minute, trace: path}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace: "+path) {
		t.Errorf("missing trace report in output:\n%s", out.String())
	}
	r, closer, err := tracefile.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if err := r.Incomplete(); err != nil {
		t.Fatalf("Incomplete: %v", err)
	}
	// 10s at 250ms steps = 40 step records of 4 series each.
	if ns, _ := r.Counts(); ns != 160 {
		t.Fatalf("trace holds %d samples, want 160", ns)
	}
	if got := r.Schema()[0].Name; got != "n0_temp" {
		t.Fatalf("first series = %q", got)
	}
}
