// Command benchjson converts `go test -bench` output into the
// repository's benchmark-trajectory JSON (BENCH_cluster.json). It reads
// the benchmark text from stdin and writes one JSON document to stdout:
// the host header (goos/goarch/cpu/gomaxprocs), every benchmark result with its
// parsed nodes=/workers= parameters and reported metrics, and — for
// every (benchmark, nodes) group that includes a workers=1 run — the
// parallel speedup of each worker count over serial.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkClusterStep ./internal/cluster | go run ./cmd/benchjson > BENCH_cluster.json
//
// scripts/bench.sh (make bench) wraps exactly that pipeline.
//
// With -compare, benchjson instead diffs two of those documents and
// exits non-zero when any benchmark present in both regressed in ns/op
// by more than the tolerance percentage (default 25):
//
//	benchjson -compare old.json new.json -tolerance 25
//
// CI uses this to gate pull requests against the committed
// BENCH_cluster.json trajectory.
//
// With -within, benchjson gates one benchmark against another inside a
// single document, matching results by their nodes=/workers= shape —
// the control-cost bound for the engine benchmark:
//
//	benchjson -within ClusterStep EngineStep -tolerance 25 BENCH_cluster.json
//
// exits non-zero when EngineStep is more than 25% slower than
// ClusterStep at any shape both report.
//
// With -parallel, benchjson gates the derived speedups section of a
// document: every speedup of the named benchmark at or above the node
// floor must be at least 1 - slack/100 — parallel stepping must beat
// (or, on a single-CPU host, tie) serial wherever the cluster is large
// enough to amortize dispatch:
//
//	benchjson -parallel ClusterStep -min-nodes 64 -slack 5 BENCH_cluster.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark name as printed, including the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Benchmark is the name with the "Benchmark" prefix, sub-benchmark
	// parameters and -procs suffix stripped: "ClusterStep".
	Benchmark string `json:"benchmark"`
	// Nodes and Workers are parsed from nodes=/workers= path elements;
	// zero when absent.
	Nodes      int     `json:"nodes,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds any extra `value unit` pairs (b.ReportMetric and
	// -benchmem output), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup is serial ns/op over parallel ns/op within one
// (benchmark, nodes) group.
type Speedup struct {
	Benchmark string  `json:"benchmark"`
	Nodes     int     `json:"nodes"`
	Workers   int     `json:"workers"`
	VsSerial  float64 `json:"speedup_vs_serial"`
}

// Report is the emitted document.
type Report struct {
	Suite   string            `json:"suite"`
	Host    map[string]string `json:"host,omitempty"`
	Results []Result          `json:"results"`
	// Speedups is derived, not measured: within each (benchmark, nodes)
	// group, ns/op(workers=1) / ns/op(workers=W).
	Speedups []Speedup `json:"speedups,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		compareMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-within" {
		withinMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-parallel" {
		parallelMain(os.Args[2:])
		return
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` text output.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Suite: "cluster-step", Host: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, res)
		default:
			// Header lines: "goos: linux", "cpu: ...", "pkg: ...".
			if k, v, ok := strings.Cut(line, ":"); ok {
				rep.Host[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Results) > 0 {
		// The -GOMAXPROCS name suffix (absent when 1) is the only place
		// go test reports the runner's parallelism; surface it so the
		// committed speedup numbers are interpretable.
		procs := 1
		for _, r := range rep.Results {
			if p := procsSuffix(r.Name); p > procs {
				procs = p
			}
		}
		rep.Host["gomaxprocs"] = strconv.Itoa(procs)
	}
	rep.Results = bestOf(rep.Results)
	rep.Speedups = speedups(rep.Results)
	return rep, nil
}

// bestOf folds repeated runs of the same benchmark (`go test -count N`)
// down to the fastest one, preserving first-appearance order. The
// minimum is the least-noise estimate of a benchmark's true cost: on a
// shared machine, interference only ever adds time, and a single pass
// can drift by more than the deltas the committed trajectory is meant
// to resolve (the StepMetrics/StepFaults overhead bars).
func bestOf(results []Result) []Result {
	idx := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		if i, ok := idx[r.Name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// procsSuffix extracts the trailing -GOMAXPROCS from a benchmark name,
// defaulting to 1 when absent.
func procsSuffix(name string) int {
	parts := strings.Split(name, "/")
	last := parts[len(parts)-1]
	if i := strings.LastIndex(last, "-"); i >= 0 {
		if p, err := strconv.Atoi(last[i+1:]); err == nil && p > 0 {
			return p
		}
	}
	return 1
}

// parseBenchLine splits one result line:
//
//	BenchmarkClusterStep/nodes=64/workers=4-8   100   25564 ns/op   2503501 node-steps/s
func parseBenchLine(line string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	res := Result{Name: f[0], Metrics: map[string]float64{}}
	res.Benchmark, res.Nodes, res.Workers = splitName(f[0])
	var err error
	if res.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return Result{}, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value in %q: %w", line, err)
		}
		if f[i+1] == "ns/op" {
			res.NsPerOp = v
		} else {
			res.Metrics[f[i+1]] = v
		}
	}
	if res.NsPerOp == 0 {
		return Result{}, fmt.Errorf("no ns/op in %q", line)
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, nil
}

// splitName decomposes "BenchmarkClusterStep/nodes=64/workers=4-8".
func splitName(name string) (benchmark string, nodes, workers int) {
	parts := strings.Split(name, "/")
	benchmark = strings.TrimPrefix(parts[0], "Benchmark")
	// The last element carries the -GOMAXPROCS suffix.
	if n := len(parts); n > 1 {
		if base, _, ok := strings.Cut(parts[n-1], "-"); ok {
			parts[n-1] = base
		}
	}
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			continue
		}
		if i, err := strconv.Atoi(v); err == nil {
			switch k {
			case "nodes":
				nodes = i
			case "workers":
				workers = i
			}
		}
	}
	return benchmark, nodes, workers
}

// speedups derives, per (benchmark, nodes) group, the serial-over-
// parallel ns/op ratio for every non-serial worker count. Groups
// without a workers=1 baseline produce nothing.
func speedups(results []Result) []Speedup {
	type key struct {
		bench string
		nodes int
	}
	serial := map[key]float64{}
	for _, r := range results {
		if r.Workers == 1 && r.Nodes > 0 {
			serial[key{r.Benchmark, r.Nodes}] = r.NsPerOp
		}
	}
	var out []Speedup
	for _, r := range results {
		if r.Workers <= 1 || r.Nodes == 0 {
			continue
		}
		base, ok := serial[key{r.Benchmark, r.Nodes}]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		out = append(out, Speedup{
			Benchmark: r.Benchmark,
			Nodes:     r.Nodes,
			Workers:   r.Workers,
			VsSerial:  base / r.NsPerOp,
		})
	}
	return out
}
