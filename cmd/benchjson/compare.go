package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// compareMain implements `benchjson -compare old.json new.json
// [-tolerance pct]`: it loads two benchmark-trajectory documents and
// exits non-zero when any benchmark present in both regressed in ns/op
// by more than the tolerance. Benchmarks present in only one document
// are reported informationally and never fail the comparison — the
// suite is allowed to grow and shrink.
func compareMain(args []string) {
	tolerance := 25.0
	var files []string
	for i := 0; i < len(args); i++ {
		// Accept -tolerance interleaved with the file operands, so both
		// `-compare -tolerance 25 old new` and `-compare old new
		// -tolerance 25` work.
		if args[i] == "-tolerance" || args[i] == "--tolerance" {
			if i+1 >= len(args) {
				fatalf("-tolerance needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				fatalf("-tolerance %q: want a non-negative percentage", args[i+1])
			}
			tolerance = v
			i++
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		fatalf("-compare wants exactly two files (old.json new.json), got %d", len(files))
	}
	oldRep, err := loadReport(files[0])
	if err != nil {
		fatalf("%v", err)
	}
	newRep, err := loadReport(files[1])
	if err != nil {
		fatalf("%v", err)
	}
	regressions := compare(oldRep, newRep, tolerance, os.Stdout)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n",
			regressions, tolerance)
		os.Exit(1)
	}
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

// compare prints a per-benchmark delta table and returns how many
// benchmarks regressed beyond tolerancePct. Under GitHub Actions each
// regression additionally emits a ::warning:: annotation so it surfaces
// on the workflow summary even when the step is configured warn-only.
func compare(oldRep, newRep *Report, tolerancePct float64, out io.Writer) int {
	oldByName := map[string]Result{}
	for _, r := range oldRep.Results {
		oldByName[r.Name] = r
	}
	newNames := map[string]bool{}
	regressions := 0
	fmt.Fprintf(out, "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nr := range newRep.Results {
		newNames[nr.Name] = true
		or, ok := oldByName[nr.Name]
		if !ok {
			fmt.Fprintf(out, "%-55s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		if or.NsPerOp <= 0 {
			continue
		}
		deltaPct := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		mark := ""
		if deltaPct > tolerancePct {
			mark = "  REGRESSION"
			regressions++
			if os.Getenv("GITHUB_ACTIONS") == "true" {
				fmt.Fprintf(out, "::warning::benchmark %s regressed %.1f%% (%.0f → %.0f ns/op, tolerance %.0f%%)\n",
					nr.Name, deltaPct, or.NsPerOp, nr.NsPerOp, tolerancePct)
			}
		}
		fmt.Fprintf(out, "%-55s %14.0f %14.0f %+8.1f%%%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, deltaPct, mark)
	}
	for _, or := range oldRep.Results {
		if !newNames[or.Name] {
			fmt.Fprintf(out, "%-55s %14.0f %14s %9s\n", or.Name, or.NsPerOp, "-", "gone")
		}
	}
	return regressions
}

// withinMain implements `benchjson -within base subject file.json
// [-tolerance pct]`: a cross-name gate inside ONE trajectory document.
// Every result of the subject benchmark is matched to the base
// benchmark's result at the same nodes=/workers= shape, and the run
// fails when any matched pair shows the subject slower than the base
// by more than the tolerance percentage. Zero matched pairs is an
// error, not a pass — a renamed benchmark must not disable the gate.
//
// scripts/bench.sh uses this to bound the full-control cost:
//
//	benchjson -within ClusterStep EngineStep -tolerance 25 BENCH_cluster.json
func withinMain(args []string) {
	tolerance := 25.0
	var operands []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-tolerance" || args[i] == "--tolerance" {
			if i+1 >= len(args) {
				fatalf("-tolerance needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 {
				fatalf("-tolerance %q: want a non-negative percentage", args[i+1])
			}
			tolerance = v
			i++
			continue
		}
		operands = append(operands, args[i])
	}
	if len(operands) != 3 {
		fatalf("-within wants base subject file.json, got %d operand(s)", len(operands))
	}
	base, subject, file := operands[0], operands[1], operands[2]
	rep, err := loadReport(file)
	if err != nil {
		fatalf("%v", err)
	}
	checked, breaches := within(rep, base, subject, tolerance, os.Stdout)
	if checked == 0 {
		fatalf("no (nodes, workers) shape has both %s and %s in %s", base, subject, file)
	}
	if breaches > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s exceeds %s by more than %.0f%% at %d shape(s)\n",
			subject, base, tolerance, breaches)
		os.Exit(1)
	}
}

// within prints a per-shape delta table of subject over base and
// returns how many shapes were checked and how many breached
// tolerancePct.
func within(rep *Report, base, subject string, tolerancePct float64, out io.Writer) (checked, breaches int) {
	type shape struct{ nodes, workers int }
	baseByShape := map[shape]Result{}
	for _, r := range rep.Results {
		if r.Benchmark == base {
			baseByShape[shape{r.Nodes, r.Workers}] = r
		}
	}
	fmt.Fprintf(out, "%-55s %14s %14s %9s\n",
		subject+" vs "+base, base+" ns/op", "ns/op", "delta")
	for _, sr := range rep.Results {
		if sr.Benchmark != subject {
			continue
		}
		br, ok := baseByShape[shape{sr.Nodes, sr.Workers}]
		if !ok || br.NsPerOp <= 0 {
			fmt.Fprintf(out, "%-55s %14s %14.0f %9s\n", sr.Name, "-", sr.NsPerOp, "no base")
			continue
		}
		checked++
		deltaPct := (sr.NsPerOp - br.NsPerOp) / br.NsPerOp * 100
		mark := ""
		if deltaPct > tolerancePct {
			mark = "  BREACH"
			breaches++
			if os.Getenv("GITHUB_ACTIONS") == "true" {
				fmt.Fprintf(out, "::warning::%s is %.1f%% over %s (%.0f → %.0f ns/op, tolerance %.0f%%)\n",
					sr.Name, deltaPct, br.Name, br.NsPerOp, sr.NsPerOp, tolerancePct)
			}
		}
		fmt.Fprintf(out, "%-55s %14.0f %14.0f %+8.1f%%%s\n",
			sr.Name, br.NsPerOp, sr.NsPerOp, deltaPct, mark)
	}
	return checked, breaches
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(2)
}
