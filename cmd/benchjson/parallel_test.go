package main

import (
	"bytes"
	"strings"
	"testing"
)

func speedupRep(speedups ...Speedup) *Report {
	return &Report{Suite: "cluster-step", Speedups: speedups}
}

func TestParallelGateFailsOnLoss(t *testing.T) {
	r := speedupRep(
		// 1.8x at scale: fine.
		Speedup{Benchmark: "ClusterStep", Nodes: 256, Workers: 4, VsSerial: 1.8},
		// 0.70x at scale: parallel lost to serial, beyond 5% slack.
		Speedup{Benchmark: "ClusterStep", Nodes: 64, Workers: 4, VsSerial: 0.70},
	)
	var out bytes.Buffer
	checked, losses := parallelGate(r, "ClusterStep", 64, 5, &out)
	if checked != 2 || losses != 1 {
		t.Fatalf("checked, losses = %d, %d, want 2, 1\noutput:\n%s",
			checked, losses, out.String())
	}
	if !strings.Contains(out.String(), "LOSS") {
		t.Errorf("output missing LOSS marker:\n%s", out.String())
	}
}

func TestParallelGateSlackTolerance(t *testing.T) {
	// 0.97x — a tie within noise on a single-CPU recording host.
	r := speedupRep(Speedup{Benchmark: "ClusterStep", Nodes: 64, Workers: 4, VsSerial: 0.97})
	var out bytes.Buffer
	if _, losses := parallelGate(r, "ClusterStep", 64, 5, &out); losses != 0 {
		t.Fatalf("losses = %d at 0.97x under 5%% slack, want 0", losses)
	}
	// The same ratio fails with the slack tightened to zero.
	if _, losses := parallelGate(r, "ClusterStep", 64, 0, &out); losses != 1 {
		t.Fatalf("losses = %d at 0.97x under 0%% slack, want 1", losses)
	}
}

func TestParallelGateSmallClustersExempt(t *testing.T) {
	// Dispatch cost is amortized only at scale: a 4-node cluster may
	// lose to serial without failing the gate, and is not counted as
	// checked (so it alone cannot satisfy the zero-matches guard).
	r := speedupRep(
		Speedup{Benchmark: "ClusterStep", Nodes: 4, Workers: 4, VsSerial: 0.4},
		Speedup{Benchmark: "ClusterStep", Nodes: 128, Workers: 4, VsSerial: 1.2},
	)
	var out bytes.Buffer
	checked, losses := parallelGate(r, "ClusterStep", 64, 5, &out)
	if checked != 1 || losses != 0 {
		t.Fatalf("checked, losses = %d, %d, want 1, 0\noutput:\n%s",
			checked, losses, out.String())
	}
	if !strings.Contains(out.String(), "exempt") {
		t.Errorf("output missing exempt marker:\n%s", out.String())
	}
}

func TestParallelGateZeroMatchesIsDetectable(t *testing.T) {
	// A renamed benchmark or a dropped serial baseline (no speedups
	// derived at all) must surface as checked == 0 — parallelMain turns
	// that into a hard error, never a silent pass.
	r := speedupRep(Speedup{Benchmark: "EngineStep", Nodes: 256, Workers: 4, VsSerial: 2})
	var out bytes.Buffer
	if checked, _ := parallelGate(r, "ClusterStep", 64, 5, &out); checked != 0 {
		t.Fatalf("checked = %d for a benchmark with no speedup entries, want 0", checked)
	}
}
