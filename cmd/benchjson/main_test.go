package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: thermctl/internal/cluster
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClusterStep/nodes=64/workers=1-8         	     100	     60000 ns/op	   1064332 node-steps/s
BenchmarkClusterStep/nodes=64/workers=4-8         	     100	     15000 ns/op	   2503501 node-steps/s
BenchmarkClusterStep/nodes=256/workers=1-8        	      50	     76227 ns/op	   3358403 node-steps/s
BenchmarkClusterStepRack/nodes=64/workers=4-8     	      20	     96024.5 ns/op
PASS
ok  	thermctl/internal/cluster	0.039s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(rep.Results))
	}
	if rep.Host["goos"] != "linux" || rep.Host["cpu"] == "" {
		t.Errorf("host header not captured: %v", rep.Host)
	}
	if rep.Host["gomaxprocs"] != "8" {
		t.Errorf("gomaxprocs = %q, want 8 (from the -8 name suffix)", rep.Host["gomaxprocs"])
	}

	r := rep.Results[0]
	if r.Benchmark != "ClusterStep" || r.Nodes != 64 || r.Workers != 1 {
		t.Errorf("name decomposition: %+v", r)
	}
	if r.Iterations != 100 || r.NsPerOp != 60000 {
		t.Errorf("numbers: %+v", r)
	}
	if r.Metrics["node-steps/s"] != 1064332 {
		t.Errorf("extra metric lost: %v", r.Metrics)
	}
	if frac := rep.Results[3].NsPerOp; frac != 96024.5 {
		t.Errorf("fractional ns/op parsed as %v", frac)
	}
	if rep.Results[3].Benchmark != "ClusterStepRack" {
		t.Errorf("rack benchmark name: %q", rep.Results[3].Benchmark)
	}
}

func TestSpeedups(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Only ClusterStep/nodes=64 has both a serial baseline and a
	// parallel run; ClusterStepRack has no workers=1 line and
	// nodes=256 has no parallel line.
	if len(rep.Speedups) != 1 {
		t.Fatalf("speedups: %+v", rep.Speedups)
	}
	s := rep.Speedups[0]
	if s.Benchmark != "ClusterStep" || s.Nodes != 64 || s.Workers != 4 {
		t.Errorf("speedup keyed wrong: %+v", s)
	}
	if math.Abs(s.VsSerial-4.0) > 1e-9 {
		t.Errorf("speedup = %v, want 4.0", s.VsSerial)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 12", // too few fields
		"BenchmarkX abc 100 ns/op",
		"BenchmarkX 10 100 widgets", // no ns/op
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("malformed line accepted: %q", bad)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("results from empty input: %+v", rep.Results)
	}
}

func TestBestOfFoldsRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkClusterStep/nodes=64/workers=1-8    100    60000 ns/op    1000000 node-steps/s
BenchmarkClusterStep/nodes=64/workers=1-8    100    45000 ns/op    1400000 node-steps/s
BenchmarkClusterStep/nodes=64/workers=1-8    100    52000 ns/op    1200000 node-steps/s
BenchmarkClusterStep/nodes=64/workers=4-8    100    30000 ns/op    2000000 node-steps/s
PASS
`
	rep, err := parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("parsed %d results after best-of fold, want 2", len(rep.Results))
	}
	best := rep.Results[0]
	if best.NsPerOp != 45000 {
		t.Errorf("kept %v ns/op, want the 45000 minimum", best.NsPerOp)
	}
	if best.Metrics["node-steps/s"] != 1400000 {
		t.Errorf("metrics not taken from the fastest run: %v", best.Metrics)
	}
	if rep.Results[1].Workers != 4 {
		t.Errorf("fold broke ordering: %+v", rep.Results[1])
	}
}
