package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
)

// parallelMain implements `benchjson -parallel bench file.json
// [-min-nodes n] [-slack pct]`: the sharded-stepping payoff gate. It
// reads the derived speedups section of one trajectory document and
// fails when any speedup entry of the named benchmark at or above the
// node floor falls below 1 - slack/100 — that is, when parallel
// stepping lost to serial at a scale where it is required to win (or,
// on a single-CPU recording host where dispatch degrades to the inline
// serial loop, to tie within the noise slack). Zero matching entries is
// an error, not a pass: a renamed benchmark, a dropped workers=1
// baseline or a shrunken node matrix must not disable the gate.
//
// scripts/bench.sh runs this after refreshing BENCH_cluster.json, and
// CI runs it against the committed trajectory:
//
//	benchjson -parallel ClusterStep -min-nodes 64 -slack 5 BENCH_cluster.json
func parallelMain(args []string) {
	minNodes := 64
	slack := 5.0
	var operands []string
	for i := 0; i < len(args); i++ {
		// Flags accepted interleaved with the operands, like -compare
		// and -within.
		switch args[i] {
		case "-min-nodes", "--min-nodes":
			if i+1 >= len(args) {
				fatalf("-min-nodes needs a value")
			}
			v, err := strconv.Atoi(args[i+1])
			if err != nil || v < 1 {
				fatalf("-min-nodes %q: want a positive node count", args[i+1])
			}
			minNodes = v
			i++
		case "-slack", "--slack":
			if i+1 >= len(args) {
				fatalf("-slack needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil || v < 0 || v >= 100 {
				fatalf("-slack %q: want a percentage in [0, 100)", args[i+1])
			}
			slack = v
			i++
		default:
			operands = append(operands, args[i])
		}
	}
	if len(operands) != 2 {
		fatalf("-parallel wants bench file.json, got %d operand(s)", len(operands))
	}
	bench, file := operands[0], operands[1]
	rep, err := loadReport(file)
	if err != nil {
		fatalf("%v", err)
	}
	checked, losses := parallelGate(rep, bench, minNodes, slack, os.Stdout)
	if checked == 0 {
		fatalf("no %s speedup entry at nodes >= %d in %s (need a workers=1 baseline and at least one parallel run)",
			bench, minNodes, file)
	}
	if losses > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: parallel %s loses to serial beyond %.0f%% slack at %d shape(s) with nodes >= %d\n",
			bench, slack, losses, minNodes)
		os.Exit(1)
	}
}

// parallelGate prints a per-shape speedup table for bench at or above
// minNodes and returns how many shapes were checked and how many fell
// below the 1 - slackPct/100 floor. Shapes below minNodes are reported
// informationally — small clusters are allowed to lose to serial, the
// per-step dispatch cost is amortized only at scale.
func parallelGate(rep *Report, bench string, minNodes int, slackPct float64, out io.Writer) (checked, losses int) {
	floor := 1 - slackPct/100
	fmt.Fprintf(out, "%-40s %9s %9s\n", bench+" parallel vs serial", "speedup", "floor")
	for _, s := range rep.Speedups {
		if s.Benchmark != bench {
			continue
		}
		shape := fmt.Sprintf("nodes=%d/workers=%d", s.Nodes, s.Workers)
		if s.Nodes < minNodes {
			fmt.Fprintf(out, "%-40s %8.2fx %9s\n", shape, s.VsSerial, "exempt")
			continue
		}
		checked++
		mark := ""
		if s.VsSerial < floor {
			mark = "  LOSS"
			losses++
			if os.Getenv("GITHUB_ACTIONS") == "true" {
				fmt.Fprintf(out, "::warning::%s %s speedup %.2fx is below the %.2fx floor (parallel loses to serial)\n",
					bench, shape, s.VsSerial, floor)
			}
		}
		fmt.Fprintf(out, "%-40s %8.2fx %8.2fx%s\n", shape, s.VsSerial, floor, mark)
	}
	return checked, losses
}
