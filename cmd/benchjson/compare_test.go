package main

import (
	"bytes"
	"strings"
	"testing"
)

func rep(results ...Result) *Report {
	return &Report{Suite: "cluster-step", Results: results}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldRep := rep(
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=4-8", NsPerOp: 1000},
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=1-8", NsPerOp: 4000},
	)
	newRep := rep(
		// 60% slower: beyond a 25% tolerance.
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=4-8", NsPerOp: 1600},
		// 5% slower: within tolerance.
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=1-8", NsPerOp: 4200},
	)
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 25, &out); got != 1 {
		t.Fatalf("regressions = %d, want 1\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION marker:\n%s", out.String())
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	oldRep := rep(Result{Name: "B/a", NsPerOp: 1000})
	newRep := rep(Result{Name: "B/a", NsPerOp: 1200})
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 25, &out); got != 0 {
		t.Fatalf("regressions = %d, want 0 at 20%% delta / 25%% tolerance", got)
	}
	// The same delta fails a tighter tolerance.
	if got := compare(oldRep, newRep, 10, &out); got != 1 {
		t.Fatalf("regressions = %d, want 1 at 20%% delta / 10%% tolerance", got)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	oldRep := rep(Result{Name: "B/a", NsPerOp: 2000})
	newRep := rep(Result{Name: "B/a", NsPerOp: 10})
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 0, &out); got != 0 {
		t.Fatalf("regressions = %d for a speedup, want 0", got)
	}
}

func TestCompareNewAndGoneAreInformational(t *testing.T) {
	oldRep := rep(
		Result{Name: "B/stays", NsPerOp: 100},
		Result{Name: "B/removed", NsPerOp: 100},
	)
	newRep := rep(
		Result{Name: "B/stays", NsPerOp: 100},
		Result{Name: "B/added", NsPerOp: 9e9},
	)
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 25, &out); got != 0 {
		t.Fatalf("regressions = %d, want 0 (membership changes are informational)", got)
	}
	for _, want := range []string{"new", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q marker:\n%s", want, out.String())
		}
	}
}
