package main

import (
	"bytes"
	"strings"
	"testing"
)

func rep(results ...Result) *Report {
	return &Report{Suite: "cluster-step", Results: results}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldRep := rep(
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=4-8", NsPerOp: 1000},
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=1-8", NsPerOp: 4000},
	)
	newRep := rep(
		// 60% slower: beyond a 25% tolerance.
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=4-8", NsPerOp: 1600},
		// 5% slower: within tolerance.
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=1-8", NsPerOp: 4200},
	)
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 25, &out); got != 1 {
		t.Fatalf("regressions = %d, want 1\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION marker:\n%s", out.String())
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	oldRep := rep(Result{Name: "B/a", NsPerOp: 1000})
	newRep := rep(Result{Name: "B/a", NsPerOp: 1200})
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 25, &out); got != 0 {
		t.Fatalf("regressions = %d, want 0 at 20%% delta / 25%% tolerance", got)
	}
	// The same delta fails a tighter tolerance.
	if got := compare(oldRep, newRep, 10, &out); got != 1 {
		t.Fatalf("regressions = %d, want 1 at 20%% delta / 10%% tolerance", got)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	oldRep := rep(Result{Name: "B/a", NsPerOp: 2000})
	newRep := rep(Result{Name: "B/a", NsPerOp: 10})
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 0, &out); got != 0 {
		t.Fatalf("regressions = %d for a speedup, want 0", got)
	}
}

func TestWithinMatchesByShape(t *testing.T) {
	r := rep(
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=1-8",
			Benchmark: "ClusterStep", Nodes: 64, Workers: 1, NsPerOp: 1000},
		Result{Name: "BenchmarkClusterStep/nodes=64/workers=4-8",
			Benchmark: "ClusterStep", Nodes: 64, Workers: 4, NsPerOp: 400},
		// 20% over base: within a 25% bound.
		Result{Name: "BenchmarkEngineStep/nodes=64/workers=1-8",
			Benchmark: "EngineStep", Nodes: 64, Workers: 1, NsPerOp: 1200},
		// 50% over base: a breach.
		Result{Name: "BenchmarkEngineStep/nodes=64/workers=4-8",
			Benchmark: "EngineStep", Nodes: 64, Workers: 4, NsPerOp: 600},
	)
	var out bytes.Buffer
	checked, breaches := within(r, "ClusterStep", "EngineStep", 25, &out)
	if checked != 2 || breaches != 1 {
		t.Fatalf("checked, breaches = %d, %d, want 2, 1\noutput:\n%s",
			checked, breaches, out.String())
	}
	if !strings.Contains(out.String(), "BREACH") {
		t.Errorf("output missing BREACH marker:\n%s", out.String())
	}
}

func TestWithinUnmatchedShapeIsInformational(t *testing.T) {
	// The subject runs a shape the base never measured: reported as
	// "no base", neither checked nor breached — but a shape that IS
	// shared still gates.
	r := rep(
		Result{Name: "BenchmarkClusterStep/nodes=4/workers=1-8",
			Benchmark: "ClusterStep", Nodes: 4, Workers: 1, NsPerOp: 1000},
		Result{Name: "BenchmarkEngineStep/nodes=4/workers=1-8",
			Benchmark: "EngineStep", Nodes: 4, Workers: 1, NsPerOp: 1010},
		Result{Name: "BenchmarkEngineStep/nodes=256/workers=1-8",
			Benchmark: "EngineStep", Nodes: 256, Workers: 1, NsPerOp: 9e9},
	)
	var out bytes.Buffer
	checked, breaches := within(r, "ClusterStep", "EngineStep", 25, &out)
	if checked != 1 || breaches != 0 {
		t.Fatalf("checked, breaches = %d, %d, want 1, 0\noutput:\n%s",
			checked, breaches, out.String())
	}
	if !strings.Contains(out.String(), "no base") {
		t.Errorf("output missing \"no base\" marker:\n%s", out.String())
	}
}

func TestWithinZeroMatchesIsDetectable(t *testing.T) {
	// A renamed base must surface as checked == 0 (withinMain turns
	// that into a hard error), never as a silent pass.
	r := rep(
		Result{Name: "BenchmarkEngineStep/nodes=64/workers=1-8",
			Benchmark: "EngineStep", Nodes: 64, Workers: 1, NsPerOp: 1000},
	)
	var out bytes.Buffer
	checked, breaches := within(r, "ClusterStep", "EngineStep", 25, &out)
	if checked != 0 || breaches != 0 {
		t.Fatalf("checked, breaches = %d, %d, want 0, 0", checked, breaches)
	}
}

func TestCompareNewAndGoneAreInformational(t *testing.T) {
	oldRep := rep(
		Result{Name: "B/stays", NsPerOp: 100},
		Result{Name: "B/removed", NsPerOp: 100},
	)
	newRep := rep(
		Result{Name: "B/stays", NsPerOp: 100},
		Result{Name: "B/added", NsPerOp: 9e9},
	)
	var out bytes.Buffer
	if got := compare(oldRep, newRep, 25, &out); got != 0 {
		t.Fatalf("regressions = %d, want 0 (membership changes are informational)", got)
	}
	for _, want := range []string{"new", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q marker:\n%s", want, out.String())
		}
	}
}
