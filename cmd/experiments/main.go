// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated cluster and prints them in the paper's
// layout.
//
// Usage:
//
//	experiments [-only fig5,table1] [-seed N] [-csv dir]
//
// With -csv, the temperature/duty/frequency time series behind each
// figure are written as CSV files into the given directory, ready for
// plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"thermctl/internal/experiment"
	"thermctl/internal/report"
	"thermctl/internal/trace"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: fig2,fig5,fig6,fig7,fig8,fig9,table1,fig10,fanfailure,scaling,rack,workloads,ablation,sleepstates,loadshapes,metrics,chaos")
	seed := flag.Uint64("seed", experiment.Seed, "simulation seed")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV series into")
	markdown := flag.Bool("markdown", false, "emit the full generated reproduction report as markdown and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines stepping each cluster (results are identical for any value)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -workers %d: need at least one worker\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	experiment.Workers = *workers

	if *markdown {
		all, err := report.Collect(*seed)
		if err != nil {
			fatal(err)
		}
		if err := all.Markdown(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if run("fig2") {
		r, err := experiment.Fig2(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		writeSeries(*csvDir, "fig2.csv", map[string]*trace.Series{"temp": r.Temp})
	}
	if run("fig5") {
		r, err := experiment.Fig5(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		series := map[string]*trace.Series{}
		for _, row := range r.Rows {
			series[fmt.Sprintf("temp_pp%d", row.Pp)] = row.Temp
			series[fmt.Sprintf("duty_pp%d", row.Pp)] = row.Duty
		}
		writeSeries(*csvDir, "fig5.csv", series)
	}
	if run("fig6") {
		r, err := experiment.Fig6(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		series := map[string]*trace.Series{}
		for _, row := range r.Rows {
			series["temp_"+row.Method.String()] = row.Temp
			series["duty_"+row.Method.String()] = row.Duty
		}
		writeSeries(*csvDir, "fig6.csv", series)
	}
	if run("fig7") {
		r, err := experiment.Fig7(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		series := map[string]*trace.Series{}
		for _, row := range r.Rows {
			series[fmt.Sprintf("temp_cap%.0f", row.MaxDuty)] = row.Temp
			series[fmt.Sprintf("duty_cap%.0f", row.MaxDuty)] = row.Duty
		}
		writeSeries(*csvDir, "fig7.csv", series)
	}
	if run("fig8") {
		r, err := experiment.Fig8(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		writeSeries(*csvDir, "fig8.csv", map[string]*trace.Series{
			"temp": r.Temp, "freq": r.Freq,
		})
	}
	if run("fig9") {
		r, err := experiment.Fig9(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		series := map[string]*trace.Series{}
		for _, row := range r.Rows {
			series["temp_"+row.Daemon] = row.Temp
			series["freq_"+row.Daemon] = row.Freq
		}
		writeSeries(*csvDir, "fig9.csv", series)
	}
	if run("table1") {
		r, err := experiment.Table1(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("fanfailure") {
		r, err := experiment.FanFailure(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("rack") {
		r, err := experiment.RackStudy(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("workloads") {
		r, err := experiment.WorkloadStudy(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("ablation") {
		r, err := experiment.Ablation(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("scaling") {
		r, err := experiment.Scaling(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("fig10") {
		r, err := experiment.Fig10(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
		series := map[string]*trace.Series{}
		for _, row := range r.Rows {
			series[fmt.Sprintf("temp_pp%d", row.Pp)] = row.Temp
			series[fmt.Sprintf("freq_pp%d", row.Pp)] = row.Freq
		}
		writeSeries(*csvDir, "fig10.csv", series)
	}
	if run("sleepstates") {
		r, err := experiment.SleepStates(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("loadshapes") {
		r, err := experiment.LoadShapes(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("chaos") {
		r, err := experiment.Chaos(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r)
	}
	if run("metrics") {
		samples, err := report.CollectMetrics(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("observability metrics (10-minute instrumented unified-control run):")
		for _, s := range samples {
			fmt.Printf("  %-45s %g\n", s.Name, s.Value)
		}
	}
}

func writeSeries(dir, name string, series map[string]*trace.Series) {
	if dir == "" {
		return
	}
	rec := trace.NewRecorder()
	// Record in sorted label order: the recorder's first-recorded order
	// determines the CSV column order, which must not vary run to run.
	labels := make([]string, 0, len(series))
	for label := range series {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		s := series[label]
		if s == nil {
			continue
		}
		for _, p := range s.Points {
			rec.Record(label, p.T, p.V)
		}
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rec.WriteCSV(f); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n", filepath.Join(dir, name))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
