package main

import (
	"strings"
	"testing"

	"thermctl/internal/config"
)

// clustersim's flag validation is the scenario layer's Validate; these
// tests pin that the command rejects what it used to reject by hand.

func validScenario() config.Scenario {
	s := config.DefaultScenario()
	s.Workers = 1
	s.Normalize()
	return s
}

func TestValidateAcceptsDefaults(t *testing.T) {
	s := validScenario()
	if err := s.Validate(); err != nil {
		t.Fatalf("default scenario rejected: %v", err)
	}
}

func TestValidateRejectsOutOfRangeFlags(t *testing.T) {
	cases := []struct {
		field  string // must appear in the error, naming the offender
		mutate func(*config.Scenario)
	}{
		{"nodes", func(s *config.Scenario) { s.Nodes = -3 }},
		{"program", func(s *config.Scenario) { s.Program = "cg" }},
		{"fan", func(s *config.Scenario) { s.Control.Fan = "turbo" }},
		{"dvfs", func(s *config.Scenario) { s.Control.DVFS = "ondemand" }},
		{"sleep", func(s *config.Scenario) { s.Control.Sleep = "deep" }},
		{"pp", func(s *config.Scenario) { s.Control.Tuning.Pp = 101 }},
		{"max_fan_duty", func(s *config.Scenario) { s.Control.Tuning.MaxFanDuty = 150 }},
		{"workers", func(s *config.Scenario) { s.Workers = -1 }},
	}
	for _, tc := range cases {
		s := validScenario()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: invalid value accepted (%+v)", tc.field, s)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("error %q does not name the offending field %s", err, tc.field)
		}
	}
}

func TestValidateAcceptsEveryKnownMode(t *testing.T) {
	for _, fan := range []string{"dynamic", "static", "constant", "auto"} {
		for _, dvfs := range []string{"none", "tdvfs", "cpuspeed"} {
			for _, sleep := range []string{"none", "ctlarray"} {
				for _, prog := range []string{"bt", "lu"} {
					s := validScenario()
					s.Control.Fan, s.Control.DVFS, s.Control.Sleep = fan, dvfs, sleep
					s.Program = prog
					if err := s.Validate(); err != nil {
						t.Errorf("fan=%s dvfs=%s sleep=%s program=%s rejected: %v",
							fan, dvfs, sleep, prog, err)
					}
				}
			}
		}
	}
}
