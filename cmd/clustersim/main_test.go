package main

import (
	"strings"
	"testing"
)

func validOptions() options {
	return options{
		nodes: 4, program: "bt", fanMethod: "dynamic", dvfs: "tdvfs",
		pp: 50, maxDuty: 50, workers: 1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validOptions().validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestValidateRejectsOutOfRangeFlags(t *testing.T) {
	cases := []struct {
		flag   string // must appear in the error, naming the offender
		mutate func(*options)
	}{
		{"-nodes", func(o *options) { o.nodes = 0 }},
		{"-nodes", func(o *options) { o.nodes = -3 }},
		{"-program", func(o *options) { o.program = "cg" }},
		{"-fan", func(o *options) { o.fanMethod = "turbo" }},
		{"-dvfs", func(o *options) { o.dvfs = "ondemand" }},
		{"-pp", func(o *options) { o.pp = 0 }},
		{"-pp", func(o *options) { o.pp = 101 }},
		{"-max-duty", func(o *options) { o.maxDuty = 0 }},
		{"-max-duty", func(o *options) { o.maxDuty = 150 }},
		{"-workers", func(o *options) { o.workers = 0 }},
	}
	for _, tc := range cases {
		o := validOptions()
		tc.mutate(&o)
		err := o.validate()
		if err == nil {
			t.Errorf("%s: invalid value accepted (%+v)", tc.flag, o)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("error %q does not name the offending flag %s", err, tc.flag)
		}
	}
}

func TestValidateAcceptsEveryKnownMode(t *testing.T) {
	for _, fan := range []string{"dynamic", "static", "constant", "auto"} {
		for _, dvfs := range []string{"none", "tdvfs", "cpuspeed"} {
			for _, prog := range []string{"bt", "lu"} {
				o := validOptions()
				o.fanMethod, o.dvfs, o.program = fan, dvfs, prog
				if err := o.validate(); err != nil {
					t.Errorf("fan=%s dvfs=%s program=%s rejected: %v", fan, dvfs, prog, err)
				}
			}
		}
	}
}
