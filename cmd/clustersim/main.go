// Command clustersim executes an NPB-like parallel program on a
// simulated cluster under a chosen thermal-control configuration and
// reports execution time, power and thermal statistics per node — the
// workhorse behind the paper's §4.3/§4.4 comparisons.
//
// Usage:
//
//	clustersim [-nodes 4] [-program bt|lu] [-fan dynamic|static|constant|auto]
//	           [-dvfs none|tdvfs|cpuspeed] [-pp 50] [-max-duty 50] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"thermctl/internal/baseline"
	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster size")
	program := flag.String("program", "bt", "program: bt or lu")
	fanMethod := flag.String("fan", "dynamic", "fan control: dynamic, static, constant or auto (chip firmware)")
	dvfs := flag.String("dvfs", "tdvfs", "DVFS daemon: none, tdvfs or cpuspeed")
	pp := flag.Int("pp", 50, "policy parameter Pp in [1,100]")
	maxDuty := flag.Float64("max-duty", 50, "maximum PWM duty, percent")
	seed := flag.Uint64("seed", 20100131, "simulation seed")
	flag.Parse()

	c, err := cluster.New(*nodes, cluster.DefaultDt, *seed)
	if err != nil {
		fatal(err)
	}
	c.Settle(0)

	// Per-node controllers, exactly as daemons run per machine.
	for _, n := range c.Nodes {
		read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
		fanPort := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		freqPort := &core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq}

		var fanCtl *core.Controller
		switch *fanMethod {
		case "dynamic":
			fanCtl, err = core.NewController(core.DefaultConfig(*pp), read,
				core.ActuatorBinding{Actuator: core.NewFanActuator(fanPort, *maxDuty)})
			if err != nil {
				fatal(err)
			}
		case "static":
			s, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(*maxDuty), read, fanPort)
			if err != nil {
				fatal(err)
			}
			c.AddController(s)
		case "constant":
			c.AddController(baseline.NewConstantFan(*maxDuty, fanPort))
		case "auto":
			// chip firmware curve; nothing to attach
		default:
			fatal(fmt.Errorf("unknown fan method %q", *fanMethod))
		}

		switch *dvfs {
		case "tdvfs":
			act, err := core.NewDVFSActuator(freqPort)
			if err != nil {
				fatal(err)
			}
			d, err := core.NewTDVFS(core.DefaultTDVFSConfig(*pp), read, act)
			if err != nil {
				fatal(err)
			}
			if fanCtl != nil {
				c.AddController(core.NewHybrid(fanCtl, d))
				fanCtl = nil
			} else {
				c.AddController(d)
			}
		case "cpuspeed":
			cs, err := baseline.NewCPUSpeed(baseline.DefaultCPUSpeedConfig(), n.FS, freqPort)
			if err != nil {
				fatal(err)
			}
			c.AddController(cs)
		case "none":
		default:
			fatal(fmt.Errorf("unknown dvfs daemon %q", *dvfs))
		}
		if fanCtl != nil {
			c.AddController(fanCtl)
		}
	}

	var prog workload.Program
	switch *program {
	case "bt":
		prog = workload.BTB4()
	case "lu":
		prog = workload.LUB4()
	default:
		fatal(fmt.Errorf("unknown program %q", *program))
	}

	fmt.Printf("clustersim: %s on %d nodes, fan=%s dvfs=%s Pp=%d max-duty=%.0f%%\n",
		prog, *nodes, *fanMethod, *dvfs, *pp, *maxDuty)
	res := c.RunProgram(prog, 0)
	if res.TimedOut {
		fmt.Println("WARNING: run hit the simulation time limit")
	}

	fmt.Printf("\nexecution time: %.1f s (ideal at 2.4 GHz: %.1f s)\n",
		res.ExecTime.Seconds(), prog.IdealSeconds(2.4))
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n",
		"node", "avg W", "peak W", "die degC", "fan duty %", "freq chgs")
	var totalW float64
	for _, n := range c.Nodes {
		fmt.Printf("%-8s %10.2f %10.1f %10.2f %12.1f %12d\n",
			n.Name, n.Meter.AverageW(), n.Meter.PeakW(), n.TrueDieC(),
			n.Fan.Duty(), n.CPU.Transitions())
		totalW += n.Meter.AverageW()
	}
	fmt.Printf("\ncluster average power: %.2f W; power-delay product: %.0f W*s/node\n",
		totalW, totalW/float64(len(c.Nodes))*res.ExecTime.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
