// Command clustersim executes an NPB-like parallel program on a
// simulated cluster under a chosen thermal-control configuration and
// reports execution time, power and thermal statistics per node — the
// workhorse behind the paper's §4.3/§4.4 comparisons.
//
// Usage:
//
//	clustersim [-nodes 4] [-program bt|lu] [-fan dynamic|static|constant|auto]
//	           [-dvfs none|tdvfs|cpuspeed] [-pp 50] [-max-duty 50] [-seed N]
//	           [-workers GOMAXPROCS] [-listen 127.0.0.1:9090] [-chaos-seed N]
//
// With -listen, the run serves Prometheus-text metrics on /metrics
// (cluster step latency, per-worker shard timing, barrier wait, and
// per-node controller series labeled node="...") plus the standard
// pprof endpoints under /debug/pprof/.
//
// With -chaos-seed, a deterministic fault campaign (internal/faults) is
// generated for every node and replayed during the run: sensors drop
// out, buses NAK, fans degrade, and the controllers must ride it out on
// retry and fail-safe degradation. The fault timeline is printed after
// the run; the same seed yields a byte-identical campaign for any
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"thermctl/internal/baseline"
	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/faults"
	"thermctl/internal/metrics"
	"thermctl/internal/workload"
)

// options holds the parsed command line, so validation is testable
// apart from flag registration and os.Exit.
type options struct {
	nodes     int
	program   string
	fanMethod string
	dvfs      string
	pp        int
	maxDuty   float64
	workers   int
	listen    string
	chaosSeed uint64
}

// validate rejects out-of-range or unknown values with an error naming
// the offending flag, before any construction starts — a bad value must
// fail at the command line, not panic (or silently misbehave) deep in
// cluster setup.
func (o options) validate() error {
	if o.nodes < 1 {
		return fmt.Errorf("-nodes %d: cluster needs at least one node", o.nodes)
	}
	switch o.program {
	case "bt", "lu":
	default:
		return fmt.Errorf("-program %q: unknown program (want bt or lu)", o.program)
	}
	switch o.fanMethod {
	case "dynamic", "static", "constant", "auto":
	default:
		return fmt.Errorf("-fan %q: unknown fan method (want dynamic, static, constant or auto)", o.fanMethod)
	}
	switch o.dvfs {
	case "none", "tdvfs", "cpuspeed":
	default:
		return fmt.Errorf("-dvfs %q: unknown DVFS daemon (want none, tdvfs or cpuspeed)", o.dvfs)
	}
	if o.pp < 1 || o.pp > 100 {
		return fmt.Errorf("-pp %d: policy parameter outside [1,100]", o.pp)
	}
	if o.maxDuty <= 0 || o.maxDuty > 100 {
		return fmt.Errorf("-max-duty %g: duty cap outside (0,100]", o.maxDuty)
	}
	if o.workers < 1 {
		return fmt.Errorf("-workers %d: need at least one worker", o.workers)
	}
	if o.chaosSeed != 0 && o.fanMethod == "auto" && o.dvfs == "none" {
		return fmt.Errorf("-chaos-seed %d: chaos needs a software controller to exercise (use -fan dynamic/static/constant or -dvfs tdvfs/cpuspeed)", o.chaosSeed)
	}
	return nil
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 4, "cluster size")
	flag.StringVar(&o.program, "program", "bt", "program: bt or lu")
	flag.StringVar(&o.fanMethod, "fan", "dynamic", "fan control: dynamic, static, constant or auto (chip firmware)")
	flag.StringVar(&o.dvfs, "dvfs", "tdvfs", "DVFS daemon: none, tdvfs or cpuspeed")
	flag.IntVar(&o.pp, "pp", 50, "policy parameter Pp in [1,100]")
	flag.Float64Var(&o.maxDuty, "max-duty", 50, "maximum PWM duty, percent")
	seed := flag.Uint64("seed", 20100131, "simulation seed")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0),
		"worker goroutines stepping the nodes (results are identical for any value)")
	flag.StringVar(&o.listen, "listen", "", "optional HTTP address for /metrics and /debug/pprof")
	flag.Uint64Var(&o.chaosSeed, "chaos-seed", 0,
		"generate and replay a deterministic fault campaign with this seed (0 = no faults)")
	flag.Parse()
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		flag.Usage()
		os.Exit(2)
	}

	var prog workload.Program
	switch o.program {
	case "bt":
		prog = workload.BTB4()
	case "lu":
		prog = workload.LUB4()
	}

	c, err := cluster.New(o.nodes, cluster.DefaultDt, *seed)
	if err != nil {
		fatal(err)
	}
	c.SetWorkers(o.workers)
	c.Settle(0)

	// Wiring-time metric registration: the registry exists only when a
	// scrape endpoint was requested, and every instrumentation call
	// happens before the first step.
	var reg *metrics.Registry
	if o.listen != "" {
		reg = metrics.NewRegistry()
		c.InstrumentMetrics(reg)
	}

	// Chaos campaign: a generated fault plan across every node, replayed
	// by the plane in the serial controller phase so the timeline is
	// byte-identical for any -workers value. The horizon stretches past
	// the ideal execution time because faults slow the program down.
	var plane *faults.Plane
	if o.chaosSeed != 0 {
		names := make([]string, len(c.Nodes))
		for i, n := range c.Nodes {
			names[i] = n.Name
		}
		horizon := time.Duration(1.5 * prog.IdealSeconds(2.4) * float64(time.Second))
		plan := faults.Generate(o.chaosSeed, names, horizon)
		plane, err = c.ApplyFaults(plan, *seed)
		if err != nil {
			fatal(err)
		}
		if reg != nil {
			plane.InstrumentMetrics(reg)
		}
		episodes := 0
		for _, sch := range plan.Schedules {
			episodes += len(sch.Episodes)
		}
		fmt.Printf("clustersim: chaos seed %d: %d fault episodes across %d nodes over %s\n",
			o.chaosSeed, episodes, len(plan.Schedules), horizon)
	}

	// Per-node controllers, exactly as daemons run per machine.
	for _, n := range c.Nodes {
		read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
		fanPort := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		freqPort := &core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq}

		var fanCtl *core.Controller
		switch o.fanMethod {
		case "dynamic":
			fanCtl, err = core.NewController(core.DefaultConfig(o.pp), read,
				core.ActuatorBinding{Actuator: core.NewFanActuator(fanPort, o.maxDuty)})
			if err != nil {
				fatal(err)
			}
		case "static":
			s, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(o.maxDuty), read, fanPort)
			if err != nil {
				fatal(err)
			}
			c.AddController(s)
		case "constant":
			c.AddController(baseline.NewConstantFan(o.maxDuty, fanPort))
		case "auto":
			// chip firmware curve; nothing to attach
		}

		switch o.dvfs {
		case "tdvfs":
			act, err := core.NewDVFSActuator(freqPort)
			if err != nil {
				fatal(err)
			}
			d, err := core.NewTDVFS(core.DefaultTDVFSConfig(o.pp), read, act)
			if err != nil {
				fatal(err)
			}
			if fanCtl != nil {
				h := core.NewHybrid(fanCtl, d)
				if reg != nil {
					h.InstrumentMetrics(reg, metrics.L("node", n.Name))
				}
				c.AddController(h)
				fanCtl = nil
			} else {
				if reg != nil {
					d.InstrumentMetrics(reg, metrics.L("node", n.Name))
				}
				c.AddController(d)
			}
		case "cpuspeed":
			cs, err := baseline.NewCPUSpeed(baseline.DefaultCPUSpeedConfig(), n.FS, freqPort)
			if err != nil {
				fatal(err)
			}
			c.AddController(cs)
		case "none":
		}
		if fanCtl != nil {
			if reg != nil {
				fanCtl.InstrumentMetrics(reg, metrics.L("node", n.Name))
			}
			c.AddController(fanCtl)
		}
	}

	if o.listen != "" {
		srv, err := metrics.Serve(o.listen, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("clustersim: metrics and pprof on http://%s/metrics\n", srv.Addr())
	}

	fmt.Printf("clustersim: %s on %d nodes (%d workers), fan=%s dvfs=%s Pp=%d max-duty=%.0f%%\n",
		prog, o.nodes, c.Workers(), o.fanMethod, o.dvfs, o.pp, o.maxDuty)
	res := c.RunProgram(prog, 0)
	if res.TimedOut {
		fmt.Println("WARNING: run hit the simulation time limit")
	}

	fmt.Printf("\nexecution time: %.1f s (ideal at 2.4 GHz: %.1f s)\n",
		res.ExecTime.Seconds(), prog.IdealSeconds(2.4))
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n",
		"node", "avg W", "peak W", "die degC", "fan duty %", "freq chgs")
	var totalW float64
	for _, n := range c.Nodes {
		fmt.Printf("%-8s %10.2f %10.1f %10.2f %12.1f %12d\n",
			n.Name, n.Meter.AverageW(), n.Meter.PeakW(), n.TrueDieC(),
			n.Fan.Duty(), n.CPU.Transitions())
		totalW += n.Meter.AverageW()
	}
	fmt.Printf("\ncluster average power: %.2f W; power-delay product: %.0f W*s/node\n",
		totalW, totalW/float64(len(c.Nodes))*res.ExecTime.Seconds())

	if plane != nil {
		var emergencies uint64
		for _, n := range c.Nodes {
			emergencies += n.Emergencies()
		}
		fmt.Printf("\nchaos: %d episode transitions, %d hardware emergencies\n",
			len(plane.Events()), emergencies)
		fmt.Print(plane.Timeline())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
