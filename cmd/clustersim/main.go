// Command clustersim executes an NPB-like parallel program — or a
// declarative open-loop workload — on a simulated cluster under a
// chosen thermal-control configuration and reports execution time,
// power and thermal statistics per node — the workhorse behind the
// paper's §4.3/§4.4 comparisons.
//
// Usage:
//
//	clustersim [-nodes 4] [-program bt|lu] [-fan dynamic|static|constant|auto]
//	           [-dvfs none|tdvfs|cpuspeed] [-sleep none|ctlarray] [-pp 50]
//	           [-max-duty 50] [-seed N] [-workers GOMAXPROCS]
//	           [-listen 127.0.0.1:9090] [-chaos-seed N] [-scenario run.json]
//	           [-trace run.tct] [-for 60s]
//
// The flags are shorthand for a scenario document (see internal/config):
// -scenario loads the same description from JSON and takes precedence
// over the topology and control flags, so a fleet configuration checked
// into version control drives clustersim, thermctld and the experiment
// harness identically. A scenario that declares a workload block (or
// per-group workloads) instead of a program runs its per-node seeded
// generators for -for simulated time (the chaos horizon wins when the
// scenario replays a fault campaign); see examples/README.md for the
// scenario gallery.
//
// With -sleep ctlarray, the processor sleep-state actuator
// (cstates.Actuator) is driven through the same thermal control array
// as the fan — the paper's "any actuator" claim made concrete — either
// as a second binding on the dynamic fan controller or standalone.
//
// With -listen, the run serves Prometheus-text metrics on /metrics
// (cluster step latency, per-worker shard timing, barrier wait, and
// per-node controller series labeled node="...") plus the standard
// pprof endpoints under /debug/pprof/.
//
// With -chaos-seed, a deterministic fault campaign (internal/faults) is
// generated for every node and replayed during the run: sensors drop
// out, buses NAK, fans degrade, and the controllers must ride it out on
// retry and fail-safe degradation. The fault timeline is printed after
// the run; the same seed yields a byte-identical campaign for any
// worker count.
//
// With -trace, every node's temperature, fan duty, frequency and power
// are streamed once per simulated second to a binary .tct trace file
// (internal/tracefile, DESIGN.md §12) sized for campaigns longer than
// RAM. Inspect, slice and compare the file with cmd/thermtrace; the
// bytes are identical for any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/config"
	"thermctl/internal/metrics"
)

// traceEvery is the -trace sampling cadence. One simulated second
// keeps the writer's share of the step budget within the 5% bench gate
// (BenchmarkClusterStepTrace) while still resolving every controller
// decision window (the fastest loop reconsiders at 1 s).
const traceEvery = time.Second

func main() {
	s := config.DefaultScenario()
	scenarioPath := flag.String("scenario", "", "JSON scenario file; overrides the topology and control flags")
	flag.IntVar(&s.Nodes, "nodes", 4, "cluster size")
	flag.StringVar(&s.Program, "program", "bt", "program: bt or lu")
	flag.StringVar(&s.Control.Fan, "fan", "dynamic", "fan control: dynamic, static, constant or auto (chip firmware)")
	flag.StringVar(&s.Control.DVFS, "dvfs", "tdvfs", "DVFS daemon: none, tdvfs or cpuspeed")
	flag.StringVar(&s.Control.Sleep, "sleep", "none", "sleep-state control: none, or ctlarray to drive C-states through the thermal control array")
	flag.IntVar(&s.Control.Tuning.Pp, "pp", 50, "policy parameter Pp in [1,100]")
	flag.Float64Var(&s.Control.Tuning.MaxFanDuty, "max-duty", 50, "maximum PWM duty, percent")
	flag.Uint64Var(&s.Seed, "seed", 20100131, "simulation seed")
	flag.IntVar(&s.Workers, "workers", runtime.GOMAXPROCS(0),
		"worker goroutines stepping the nodes (results are identical for any value)")
	listen := flag.String("listen", "", "optional HTTP address for /metrics and /debug/pprof")
	flag.Uint64Var(&s.Chaos.Seed, "chaos-seed", 0,
		"generate and replay a deterministic fault campaign with this seed (0 = no faults)")
	tracePath := flag.String("trace", "", "record per-node series to this binary trace file (inspect with thermtrace)")
	runFor := flag.Duration("for", 60*time.Second,
		"simulated duration of workload (generator-driven) scenarios; programs run to completion")
	flag.Parse()

	if *scenarioPath != "" {
		loaded, err := config.LoadScenario(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		s = loaded
	}
	s.Metrics.Enabled = s.Metrics.Enabled || *listen != ""
	if s.Program == "" && !s.HasWorkload() {
		s.Program = "bt" // bare topology flags mean the classic program run
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		flag.Usage()
		os.Exit(2)
	}

	// The scenario layer owns what used to be this command's wiring
	// loop: cluster construction, the fault campaign, per-node
	// controllers and metric registration.
	rig, err := s.Build()
	if err != nil {
		fatal(err)
	}
	c := rig.Cluster

	if rig.Plane != nil {
		episodes := 0
		for _, sch := range rig.Plane.Plan().Schedules {
			episodes += len(sch.Episodes)
		}
		fmt.Printf("clustersim: chaos seed %d: %d fault episodes across %d nodes\n",
			s.Chaos.Seed, episodes, len(c.Nodes))
	}

	if *listen != "" {
		srv, err := metrics.Serve(*listen, rig.Registry)
		if err != nil {
			fatal(err)
		}
		// Drain in-flight scrapes on exit rather than cutting them off.
		defer func() {
			if err := srv.ShutdownTimeout(2 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "clustersim: metrics shutdown:", err)
			}
		}()
		fmt.Printf("clustersim: metrics and pprof on http://%s/metrics\n", srv.Addr())
	}

	closeTrace := func() {}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		tw, err := config.AttachTraceProbe(c, f, traceEvery)
		if err != nil {
			fatal(err)
		}
		closeTrace = func() {
			if err := tw.Close(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			st, err := os.Stat(*tracePath)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\ntrace: %s (%d bytes); inspect with `go run ./cmd/thermtrace info %s`\n",
				*tracePath, st.Size(), *tracePath)
		}
	}

	load := "workload " + s.Workload.String()
	if rig.Program != nil {
		load = rig.Program.String()
	} else if s.Workload == nil {
		load = "per-group workloads"
	}
	fmt.Printf("clustersim: %s on %d nodes (%d workers), fan=%s dvfs=%s sleep=%s Pp=%d max-duty=%.0f%%\n",
		load, s.Nodes, c.Workers(), s.Control.Fan, s.Control.DVFS, s.Control.Sleep,
		s.Control.Tuning.Pp, s.Control.Tuning.MaxFanDuty)
	var res cluster.RunResult
	if rig.Program != nil {
		res = c.RunProgram(*rig.Program, 0)
	} else {
		horizon := rig.ChaosHorizon
		if horizon <= 0 {
			horizon = *runFor
		}
		res = c.RunGenerators(rig.Generators, horizon)
		if res.Err != nil {
			fatal(res.Err)
		}
	}
	closeTrace()
	if res.TimedOut {
		fmt.Println("WARNING: run hit the simulation time limit")
	}

	if rig.Program != nil {
		fmt.Printf("\nexecution time: %.1f s (ideal at 2.4 GHz: %.1f s)\n",
			res.ExecTime.Seconds(), rig.Program.IdealSeconds(2.4))
	} else {
		fmt.Printf("\nsimulated time: %.1f s\n", res.ExecTime.Seconds())
	}
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n",
		"node", "avg W", "peak W", "die degC", "fan duty %", "freq chgs")
	var totalW float64
	for _, n := range c.Nodes {
		fmt.Printf("%-8s %10.2f %10.1f %10.2f %12.1f %12d\n",
			n.Name, n.Meter.AverageW(), n.Meter.PeakW(), n.TrueDieC(),
			n.Fan.Duty(), n.CPU.Transitions())
		totalW += n.Meter.AverageW()
	}
	fmt.Printf("\ncluster average power: %.2f W; power-delay product: %.0f W*s/node\n",
		totalW, totalW/float64(len(c.Nodes))*res.ExecTime.Seconds())

	if s.Control.Sleep == "ctlarray" {
		fmt.Printf("\nsleep-state array (cstates through ctlarray):\n")
		for i, nc := range rig.Nodes {
			ctl := nc.Fan
			slot := 1 // second binding on the dynamic fan controller
			if ctl == nil {
				ctl, slot = nc.Sleep, 0
			}
			if ctl == nil {
				continue
			}
			fmt.Printf("%-8s mode C%d (%d moves)\n",
				c.Nodes[i].Name, ctl.Policy().Mode(slot), ctl.Binding().Moves(slot))
		}
	}

	if rig.Plane != nil {
		var emergencies uint64
		for _, n := range c.Nodes {
			emergencies += n.Emergencies()
		}
		fmt.Printf("\nchaos: %d episode transitions, %d hardware emergencies\n",
			len(rig.Plane.Events()), emergencies)
		fmt.Print(rig.Plane.Timeline())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
