// Command thermq is the CLI client for thermsrv, the campaign server:
// submit scenarios, follow their state, stream live telemetry, and
// fetch the trace and report artifacts.
//
// Usage:
//
//	thermq submit [-addr url] [-wait] <scenario.json>
//	thermq list   [-addr url]
//	thermq status [-addr url] <job-id>
//	thermq cancel [-addr url] <job-id>
//	thermq watch  [-addr url] <job-id>
//	thermq trace  [-addr url] <job-id> <out.tct>
//	thermq report [-addr url] <job-id>
//
// The default address is http://127.0.0.1:9600, thermsrv's default
// listen address. watch prints the job's SSE stream one event per
// line until the job reaches a terminal state; trace downloads the
// .tct artifact for thermtrace to slice.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"thermctl/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "submit":
		err = submitCmd(args[1:], stdout)
	case "list":
		err = listCmd(args[1:], stdout)
	case "status":
		err = statusCmd(args[1:], stdout)
	case "cancel":
		err = cancelCmd(args[1:], stdout)
	case "watch":
		err = watchCmd(args[1:], stdout)
	case "trace":
		err = traceCmd(args[1:], stdout)
	case "report":
		err = reportCmd(args[1:], stdout)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "thermq: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "thermq:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  thermq submit [-addr url] [-wait] <scenario.json>
  thermq list   [-addr url]
  thermq status [-addr url] <job-id>
  thermq cancel [-addr url] <job-id>
  thermq watch  [-addr url] <job-id>
  thermq trace  [-addr url] <job-id> <out.tct>
  thermq report [-addr url] <job-id>
`)
}

const defaultAddr = "http://127.0.0.1:9600"

// addrFlag registers the shared -addr flag on a subcommand flag set.
func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", defaultAddr, "thermsrv base URL")
}

// apiError decodes the server's JSON error envelope into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// getJSON fetches url and decodes the response into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// printView renders one job line.
func printView(w io.Writer, v server.View) {
	prog := v.Program
	if prog == "" {
		prog = "generator"
	}
	line := fmt.Sprintf("%-18s %-9s %-10s nodes=%d", v.ID, v.State, prog, v.Nodes)
	if v.ExecTimeMS > 0 {
		line += fmt.Sprintf(" sim=%s", time.Duration(v.ExecTimeMS)*time.Millisecond)
	}
	if v.Error != "" {
		line += " error=" + v.Error
	}
	fmt.Fprintln(w, line)
}

func submitCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := addrFlag(fs)
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("submit wants one scenario file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	resp, err := http.Post(*addr+"/v1/jobs", "application/json", f)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var v server.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	printView(stdout, v)
	if !*wait {
		return nil
	}
	for !v.State.Terminal() {
		time.Sleep(100 * time.Millisecond)
		if err := getJSON(*addr+"/v1/jobs/"+v.ID, &v); err != nil {
			return err
		}
	}
	printView(stdout, v)
	if v.State == server.StateFailed {
		return fmt.Errorf("job %s failed: %s", v.ID, v.Error)
	}
	return nil
}

func listCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var body struct {
		Jobs []server.View `json:"jobs"`
	}
	if err := getJSON(*addr+"/v1/jobs", &body); err != nil {
		return err
	}
	for _, v := range body.Jobs {
		printView(stdout, v)
	}
	fmt.Fprintf(stdout, "%d job(s)\n", len(body.Jobs))
	return nil
}

// oneIDCmd parses the shared "[-addr] <job-id>" shape.
func oneIDCmd(name string, args []string) (addr, id string, err error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	a := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return "", "", err
	}
	if fs.NArg() != 1 {
		return "", "", fmt.Errorf("%s wants one job id", name)
	}
	return *a, fs.Arg(0), nil
}

func statusCmd(args []string, stdout io.Writer) error {
	addr, id, err := oneIDCmd("status", args)
	if err != nil {
		return err
	}
	var v server.View
	if err := getJSON(addr+"/v1/jobs/"+id, &v); err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cancelCmd(args []string, stdout io.Writer) error {
	addr, id, err := oneIDCmd("cancel", args)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, addr+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var v server.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	printView(stdout, v)
	return nil
}

func watchCmd(args []string, stdout io.Writer) error {
	addr, id, err := oneIDCmd("watch", args)
	if err != nil {
		return err
	}
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	// SSE framing: "event: kind" then "data: {...}" then a blank line.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	kind := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Fprintf(stdout, "%-9s %s\n", kind, strings.TrimPrefix(line, "data: "))
		}
	}
	return sc.Err()
}

func traceCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("trace wants a job id and an output path")
	}
	id, out := fs.Arg(0), fs.Arg(1)
	resp, err := http.Get(*addr + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d bytes); inspect with `go run ./cmd/thermtrace info %s`\n", out, n, out)
	return nil
}

func reportCmd(args []string, stdout io.Writer) error {
	addr, id, err := oneIDCmd("report", args)
	if err != nil {
		return err
	}
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/report")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	_, err = io.Copy(stdout, resp.Body)
	return err
}
