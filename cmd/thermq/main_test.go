package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermctl/internal/server"
	"thermctl/internal/tracefile"
)

// startAPI serves a campaign server over httptest for the client to
// talk to.
func startAPI(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts
}

// thermq invokes the CLI and returns its exit code and output.
func thermq(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeSpec drops a scenario file into a temp dir.
func writeSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSubmitWaitAndArtifacts(t *testing.T) {
	ts := startAPI(t)
	spec := writeSpec(t, `{"nodes": 2, "program": "bt"}`)

	code, out, errOut := thermq(t, "submit", "-addr", ts.URL, "-wait", spec)
	if code != 0 {
		t.Fatalf("submit -wait: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "done") {
		t.Fatalf("submit -wait output lacks terminal state:\n%s", out)
	}
	// First line: "<id> <state> ..."
	id := strings.Fields(out)[0]

	code, out, errOut = thermq(t, "status", "-addr", ts.URL, id)
	if code != 0 || !strings.Contains(out, `"state": "done"`) {
		t.Fatalf("status: exit %d out %q err %q", code, out, errOut)
	}

	code, out, _ = thermq(t, "list", "-addr", ts.URL)
	if code != 0 || !strings.Contains(out, "1 job(s)") || !strings.Contains(out, id) {
		t.Fatalf("list: exit %d out:\n%s", code, out)
	}

	code, out, errOut = thermq(t, "report", "-addr", ts.URL, id)
	if code != 0 || !strings.Contains(out, `"cluster_avg_w"`) {
		t.Fatalf("report: exit %d out %q err %q", code, out, errOut)
	}

	dst := filepath.Join(t.TempDir(), "out.tct")
	code, out, errOut = thermq(t, "trace", "-addr", ts.URL, id, dst)
	if code != 0 || !strings.Contains(out, "wrote "+dst) {
		t.Fatalf("trace: exit %d out %q err %q", code, out, errOut)
	}
	r, closer, err := tracefile.OpenFile(dst)
	if err != nil {
		t.Fatalf("downloaded trace: %v", err)
	}
	if len(r.Schema()) == 0 {
		t.Fatal("downloaded trace has no schema")
	}
	closer.Close()

	// watch on the terminal job prints its final state frame.
	code, out, errOut = thermq(t, "watch", "-addr", ts.URL, id)
	if code != 0 || !strings.Contains(out, "state") || !strings.Contains(out, `"done"`) {
		t.Fatalf("watch: exit %d out %q err %q", code, out, errOut)
	}
}

func TestSubmitInvalidSpecFails(t *testing.T) {
	ts := startAPI(t)
	spec := writeSpec(t, `{"program": "mg"}`)
	code, _, errOut := thermq(t, "submit", "-addr", ts.URL, spec)
	if code == 0 {
		t.Fatal("invalid spec must fail")
	}
	if !strings.Contains(errOut, "invalid scenario") {
		t.Fatalf("stderr lacks the server's message: %q", errOut)
	}
}

func TestUnknownCommandAndUsage(t *testing.T) {
	code, _, errOut := thermq(t, "frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("unknown command: exit %d stderr %q", code, errOut)
	}
	code, out, _ := thermq(t, "help")
	if code != 0 || !strings.Contains(out, "thermq submit") {
		t.Fatalf("help: exit %d out %q", code, out)
	}
	if code, _, _ := thermq(t); code != 2 {
		t.Fatal("no args must exit 2")
	}
}

func TestStatusUnknownJob(t *testing.T) {
	ts := startAPI(t)
	code, _, errOut := thermq(t, "status", "-addr", ts.URL, "nope")
	if code == 0 || !strings.Contains(errOut, "404") {
		t.Fatalf("unknown job: exit %d stderr %q", code, errOut)
	}
}

func TestCancelRunningJob(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s, err := server.New(server.Config{Workers: 1, Dir: t.TempDir(), GeneratorHorizon: 1000 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Shutdown(ctx)
	}()

	spec := writeSpec(t, `{"nodes": 2}`)
	code, out, errOut := thermq(t, "submit", "-addr", ts.URL, spec)
	if code != 0 {
		t.Fatalf("submit: exit %d stderr %q", code, errOut)
	}
	id := strings.Fields(out)[0]
	code, out, errOut = thermq(t, "cancel", "-addr", ts.URL, id)
	if code != 0 || !strings.Contains(out, id) {
		t.Fatalf("cancel: exit %d out %q err %q", code, out, errOut)
	}
}
