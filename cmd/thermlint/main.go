// Command thermlint is the repository's domain-aware static-analysis
// gate. It runs seven analyzers over the module:
//
//	determinism   — no wall-clock, global math/rand or map-ordered
//	                effects inside the simulation core
//	onstepblock   — no blocking calls reachable from Controller.OnStep
//	actuatorerr   — no silently dropped actuator/i2c/hwmon/IPMI write
//	                errors, including the `_ =` idiom
//	errswallow    — no discarded errors (`_ = err`, bare
//	                `if err != nil { return }`) in Step/OnStep-reachable
//	                code; count, escalate, or propagate instead
//	mutexcallback — no user-supplied callbacks invoked under a sync
//	                mutex
//	shardsafe     — no runtime-mutable package-level state in the
//	                node-model packages stepped in parallel
//	metricsafe    — no metric registration in Step-reachable code;
//	                register at wiring time, update on the hot path
//
// Usage:
//
//	go run ./cmd/thermlint ./...
//	go run ./cmd/thermlint -checks determinism,actuatorerr ./internal/...
//
// Findings are printed as file:line:col: analyzer: message and make the
// process exit 1. Deliberate violations carry an allow directive:
//
//	//thermlint:allow <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"thermctl/internal/lint"
	"thermctl/internal/lint/actuatorerr"
	"thermctl/internal/lint/determinism"
	"thermctl/internal/lint/errswallow"
	"thermctl/internal/lint/metricsafe"
	"thermctl/internal/lint/mutexcallback"
	"thermctl/internal/lint/onstepblock"
	"thermctl/internal/lint/shardsafe"
)

var allAnalyzers = []*lint.Analyzer{
	actuatorerr.Analyzer,
	determinism.Analyzer,
	errswallow.Analyzer,
	metricsafe.Analyzer,
	mutexcallback.Analyzer,
	onstepblock.Analyzer,
	shardsafe.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range allAnalyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, modDir, err := lint.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.ModulePackages(modPath, modDir)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(modPath, modDir)

	findings := 0
	matched := 0
	for _, path := range pkgs {
		if !matchAny(patterns, modPath, path) {
			continue
		}
		matched++
		active := activeFor(analyzers, path)
		if len(active) == 0 {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags, err := lint.Run(pkg, active)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(rel(d))
			findings++
		}
	}
	if matched == 0 {
		// A typo'd path must not masquerade as a clean run.
		fatal(fmt.Errorf("patterns %v matched no packages", patterns))
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "thermlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: thermlint [-checks a,b] [-list] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Packages are ./... style patterns relative to the module root.\nAnalyzers:\n")
	for _, a := range allAnalyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func selectAnalyzers(checks string) ([]*lint.Analyzer, error) {
	if checks == "" {
		return allAnalyzers, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range allAnalyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(checks, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("thermlint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// activeFor filters the analyzers applicable to the package path.
func activeFor(analyzers []*lint.Analyzer, path string) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if a.AppliesTo == nil || a.AppliesTo(path) {
			out = append(out, a)
		}
	}
	return out
}

// matchAny reports whether the import path matches one of the ./...
// style patterns.
func matchAny(patterns []string, modPath, path string) bool {
	for _, p := range patterns {
		if matchPattern(p, modPath, path) {
			return true
		}
	}
	return false
}

func matchPattern(pattern, modPath, path string) bool {
	p := strings.TrimPrefix(pattern, "./")
	switch {
	case p == "..." || p == "":
		return true
	case strings.HasSuffix(p, "/..."):
		base := strings.TrimSuffix(p, "/...")
		full := qualify(base, modPath)
		return path == full || strings.HasPrefix(path, full+"/")
	case p == ".":
		return path == modPath
	default:
		return path == qualify(p, modPath)
	}
}

// qualify turns a module-root-relative pattern into a full import path;
// patterns already starting with the module path are kept.
func qualify(p, modPath string) string {
	if p == modPath || strings.HasPrefix(p, modPath+"/") {
		return p
	}
	return modPath + "/" + p
}

// rel shortens the diagnostic's file name to be relative to the
// current directory where possible.
func rel(d lint.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			d.Pos.Filename = r
		}
	}
	return d.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermlint:", err)
	os.Exit(1)
}
