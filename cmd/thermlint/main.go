// Command thermlint is the repository's domain-aware static-analysis
// gate. It loads the whole module into one program (so analyzers can
// follow calls across package boundaries through the shared call graph
// in internal/lint/callgraph) and runs nine analyzers:
//
//	determinism   — no wall-clock, global math/rand or map-ordered
//	                effects inside the simulation core
//	onstepblock   — no blocking calls reachable from Controller.OnStep
//	actuatorerr   — no silently dropped actuator/i2c/hwmon/IPMI write
//	                errors, including the `_ =` idiom
//	errswallow    — no discarded errors (`_ = err`, bare
//	                `if err != nil { return }`) in Step/OnStep-reachable
//	                code; count, escalate, or propagate instead
//	hotalloc      — no heap allocation (escaping literals, append,
//	                fmt/errors calls, closures, interface boxing) in
//	                Step-reachable code
//	unitsafe      — no mixed-unit arithmetic across //thermlint:unit
//	                tags (milli-°C vs °C, duty counts vs percent,
//	                Hz vs kHz)
//	mutexcallback — no user-supplied callbacks invoked under a sync
//	                mutex
//	shardsafe     — no runtime-mutable package-level state in the
//	                node-model packages stepped in parallel
//	metricsafe    — no metric registration in Step-reachable code;
//	                register at wiring time, update on the hot path
//
// Usage:
//
//	go run ./cmd/thermlint ./...
//	go run ./cmd/thermlint -checks hotalloc,unitsafe ./internal/...
//	go run ./cmd/thermlint -fix -diff ./...   # preview suggested fixes
//	go run ./cmd/thermlint -fix ./...         # apply them
//	go run ./cmd/thermlint -json ./...        # NDJSON for tooling
//
// Findings are printed as file:line:col: analyzer: message and make the
// process exit 1. With -fix, diagnostics carrying suggested fixes are
// applied atomically per file and do not fail the run; -diff previews
// the edits without writing. -json emits one JSON object per finding
// for scripts/lintannotate.sh and other tooling. Deliberate violations
// carry an allow directive:
//
//	//thermlint:allow <analyzer>[,<analyzer>...] -- <reason>
//	//thermlint:allow -- <reason>   (bare form: suppresses every analyzer)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"thermctl/internal/lint"
	"thermctl/internal/lint/actuatorerr"
	"thermctl/internal/lint/determinism"
	"thermctl/internal/lint/errswallow"
	"thermctl/internal/lint/hotalloc"
	"thermctl/internal/lint/metricsafe"
	"thermctl/internal/lint/mutexcallback"
	"thermctl/internal/lint/onstepblock"
	"thermctl/internal/lint/shardsafe"
	"thermctl/internal/lint/unitsafe"
)

var allAnalyzers = []*lint.Analyzer{
	actuatorerr.Analyzer,
	determinism.Analyzer,
	errswallow.Analyzer,
	hotalloc.Analyzer,
	metricsafe.Analyzer,
	mutexcallback.Analyzer,
	onstepblock.Analyzer,
	shardsafe.Analyzer,
	unitsafe.Analyzer,
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: it resolves the module containing
// startDir, loads every package of it into one lint.Program, and runs
// the selected analyzers over the packages matching the patterns.
// The return value is the process exit code.
func run(startDir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("thermlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzer subset to run (default: all)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files")
	diff := fs.Bool("diff", false, "with -fix, print the edits as a diff instead of writing files")
	asJSON := fs.Bool("json", false, "emit findings as newline-delimited JSON objects")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range allAnalyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *diff && !*fix {
		fmt.Fprintln(stderr, "thermlint: -diff requires -fix")
		return 2
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "thermlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, modDir, err := lint.ModuleRoot(startDir)
	if err != nil {
		fmt.Fprintln(stderr, "thermlint:", err)
		return 1
	}
	paths, err := lint.ModulePackages(modPath, modDir)
	if err != nil {
		fmt.Fprintln(stderr, "thermlint:", err)
		return 1
	}

	// Load the whole module up front: cross-package analyzers need every
	// package in the program even when only a subset is being reported
	// on. A package that fails to load is fatal — a silent skip would
	// let findings in it masquerade as a clean run.
	loader := lint.NewLoader(modPath, modDir)
	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "thermlint: loading %s: %v\n", path, err)
			return 1
		}
		pkgs = append(pkgs, pkg)
	}
	prog := lint.NewProgram(loader.Fset(), pkgs)

	var diags []lint.Diagnostic
	matched := 0
	for _, pkg := range pkgs {
		if !matchAny(patterns, modPath, pkg.Path) {
			continue
		}
		matched++
		active := activeFor(analyzers, pkg.Path)
		if len(active) == 0 {
			continue
		}
		ds, err := lint.Run(prog, pkg, active)
		if err != nil {
			fmt.Fprintln(stderr, "thermlint:", err)
			return 1
		}
		diags = append(diags, ds...)
	}
	if matched == 0 {
		// A typo'd path must not masquerade as a clean run.
		fmt.Fprintf(stderr, "thermlint: patterns %v matched no packages\n", patterns)
		return 1
	}

	fixed := map[string]bool{} // diagnostic key → fix applied
	if *fix {
		changed, skipped, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, "thermlint:", err)
			return 1
		}
		for _, d := range skipped {
			fmt.Fprintf(stderr, "thermlint: fix for %s conflicts with an earlier fix; not applied\n", d)
		}
		if *diff {
			for _, file := range sortedKeys(changed) {
				old, err := os.ReadFile(file)
				if err != nil {
					fmt.Fprintln(stderr, "thermlint:", err)
					return 1
				}
				fmt.Fprint(stdout, lint.Diff(relPath(file), old, changed[file]))
			}
		} else {
			if err := lint.WriteFixes(changed); err != nil {
				fmt.Fprintln(stderr, "thermlint:", err)
				return 1
			}
			for _, d := range diags {
				if len(d.Fixes) > 0 && !isSkipped(d, skipped) {
					fixed[d.String()] = true
				}
			}
			if len(changed) > 0 {
				fmt.Fprintf(stderr, "thermlint: fixed %d file(s)\n", len(changed))
			}
		}
	}

	findings := 0
	for _, d := range diags {
		if fixed[d.String()] {
			continue // applied; no longer a failure
		}
		findings++
		if *asJSON {
			writeJSON(stdout, d)
		} else {
			fmt.Fprintln(stdout, rel(d))
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "thermlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// jsonDiag is the NDJSON shape consumed by scripts/lintannotate.sh.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`
}

func writeJSON(w io.Writer, d lint.Diagnostic) {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(jsonDiag{
		File:     relPath(d.Pos.Filename),
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
		Fixable:  len(d.Fixes) > 0,
	})
}

func isSkipped(d lint.Diagnostic, skipped []lint.Diagnostic) bool {
	for _, s := range skipped {
		if s.String() == d.String() {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: thermlint [-checks a,b] [-list] [-fix [-diff]] [-json] [packages]\n\n")
	fmt.Fprintf(w, "Packages are ./... style patterns relative to the module root.\nAnalyzers:\n")
	for _, a := range allAnalyzers {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
	fs.PrintDefaults()
}

func selectAnalyzers(checks string) ([]*lint.Analyzer, error) {
	if checks == "" {
		return allAnalyzers, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range allAnalyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(checks, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// activeFor filters the analyzers applicable to the package path.
func activeFor(analyzers []*lint.Analyzer, path string) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if a.AppliesTo == nil || a.AppliesTo(path) {
			out = append(out, a)
		}
	}
	return out
}

// matchAny reports whether the import path matches one of the ./...
// style patterns.
func matchAny(patterns []string, modPath, path string) bool {
	for _, p := range patterns {
		if matchPattern(p, modPath, path) {
			return true
		}
	}
	return false
}

func matchPattern(pattern, modPath, path string) bool {
	p := strings.TrimPrefix(pattern, "./")
	switch {
	case p == "..." || p == "":
		return true
	case strings.HasSuffix(p, "/..."):
		base := strings.TrimSuffix(p, "/...")
		full := qualify(base, modPath)
		return path == full || strings.HasPrefix(path, full+"/")
	case p == ".":
		return path == modPath
	default:
		return path == qualify(p, modPath)
	}
}

// qualify turns a module-root-relative pattern into a full import path;
// patterns already starting with the module path are kept.
func qualify(p, modPath string) string {
	if p == modPath || strings.HasPrefix(p, modPath+"/") {
		return p
	}
	return modPath + "/" + p
}

// relPath shortens a file name to be relative to the current directory
// where possible.
func relPath(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return name
}

// rel shortens the diagnostic's file name to be relative to the
// current directory where possible.
func rel(d lint.Diagnostic) string {
	d.Pos.Filename = relPath(d.Pos.Filename)
	return d.String()
}
