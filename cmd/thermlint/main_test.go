package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir and returns
// its root. Keys are module-root-relative file names.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// hotModule is a minimal module with one genuine, fixable hotalloc
// finding: a constant fmt.Sprintf in a Step-reachable method.
func hotModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.21\n",
		"ctl/ctl.go": `package ctl

import "fmt"

// C is a controller with a hot Step.
type C struct{ msg string }

// Step advances the controller.
func (c *C) Step(dt int) {
	c.msg = fmt.Sprintf("steady")
}

// Describe is a cold debug helper; it keeps fmt imported after the
// Step finding's fix is applied.
func (c *C) Describe() string { return fmt.Sprintf("C(%s)", c.msg) }
`,
	})
}

func TestRunLoadFailureIsFatal(t *testing.T) {
	// A package that fails to type-check must fail the whole run with an
	// error naming the package — not be silently skipped, which would
	// let its findings masquerade as a clean run.
	dir := writeModule(t, map[string]string{
		"go.mod":       "module brokenmod\n\ngo 1.21\n",
		"good/good.go": "package good\n\nfunc OK() int { return 1 }\n",
		"bad/bad.go":   "package bad\n\nfunc Broken() int { return undefinedIdent }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "loading brokenmod/bad") {
		t.Fatalf("stderr does not name the failing package:\n%s", stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	for _, a := range allAnalyzers {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q:\n%s", a.Name, stdout.String())
		}
	}
}

func TestRunDiffRequiresFix(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-diff"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run -diff = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-diff requires -fix") {
		t.Fatalf("stderr missing -diff guidance:\n%s", stderr.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-checks", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run -checks nope = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nope"`) {
		t.Fatalf("stderr missing unknown-analyzer error:\n%s", stderr.String())
	}
}

func TestRunNoMatchingPackagesIsFatal(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module m\n\ngo 1.21\n",
		"ok/ok.go": "package ok\n\nfunc F() {}\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./typo/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Fatalf("stderr missing no-match error:\n%s", stderr.String())
	}
}

func TestRunFindingsAndJSON(t *testing.T) {
	dir := hotModule(t)
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "hotalloc:") {
		t.Fatalf("stdout missing hotalloc finding:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run -json = %d, want 1", code)
	}
	out := stdout.String()
	for _, want := range []string{`"analyzer":"hotalloc"`, `"fixable":true`, `"line":10`} {
		if !strings.Contains(out, want) {
			t.Errorf("-json output missing %s:\n%s", want, out)
		}
	}
}

func TestRunFixDiffAndApply(t *testing.T) {
	dir := hotModule(t)
	src := filepath.Join(dir, "ctl", "ctl.go")

	// Dry run: -fix -diff prints the edit and leaves the file alone.
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-fix", "-diff", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run -fix -diff = %d, want 1 (finding not applied)", code)
	}
	if !strings.Contains(stdout.String(), `"steady"`) {
		t.Fatalf("diff output missing replacement text:\n%s", stdout.String())
	}
	body, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `fmt.Sprintf("steady")`) {
		t.Fatalf("-diff rewrote the file:\n%s", body)
	}

	// Real run: the fix lands and the finding no longer fails the run.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -fix = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "fixed 1 file(s)") {
		t.Fatalf("stderr missing fix summary:\n%s", stderr.String())
	}
	body, err = os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), `fmt.Sprintf("steady")`) || !strings.Contains(string(body), `c.msg = "steady"`) {
		t.Fatalf("fix not applied:\n%s", body)
	}

	// The fixed module is clean on a fresh run.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("rerun after fix = %d, want 0; stdout:\n%s", code, stdout.String())
	}
}
