package thermctl_test

import (
	"fmt"
	"log"
	"time"

	"thermctl"
)

// The Example functions double as godoc documentation and as executable
// regression checks: their printed output is verified by `go test`.

// Example shows the smallest complete control loop: one node, dynamic
// fan control, sustained load.
func Example() {
	node, err := thermctl.NewNode("example", 42)
	if err != nil {
		log.Fatal(err)
	}
	node.Settle(0)

	ctl, err := thermctl.NewDynamicFanControl(node, 50, 100)
	if err != nil {
		log.Fatal(err)
	}
	node.SetGenerator(thermctl.CPUBurn(1))
	for node.Elapsed() < 5*time.Minute {
		node.Step(250 * time.Millisecond)
		ctl.OnStep(node.Elapsed())
	}
	fmt.Printf("fan engaged: %v\n", node.Fan.Duty() > 20)
	fmt.Printf("die held under 58C: %v\n", node.TrueDieC() < 58)
	// Output:
	// fan engaged: true
	// die held under 58C: true
}

// ExampleNewUnified demonstrates the coordinated fan+DVFS controller on
// a weak fan: the in-band knob engages only once the out-of-band knob
// hits its cap.
func ExampleNewUnified() {
	node, err := thermctl.NewNode("unified", 7)
	if err != nil {
		log.Fatal(err)
	}
	node.Settle(0)

	unified, err := thermctl.NewUnified(node, 50, 25) // fan capped at 25%
	if err != nil {
		log.Fatal(err)
	}
	node.SetGenerator(thermctl.CPUBurn(2))
	for node.Elapsed() < 10*time.Minute {
		node.Step(250 * time.Millisecond)
		unified.OnStep(node.Elapsed())
	}
	fmt.Printf("DVFS engaged: %v\n", unified.DVFS.Engaged())
	fmt.Printf("frequency reduced: %v\n", node.CPU.FreqGHz() < 2.4)
	fmt.Printf("few transitions: %v\n", node.CPU.Transitions() <= 6)
	// Output:
	// DVFS engaged: true
	// frequency reduced: true
	// few transitions: true
}

// ExampleNewCluster runs a parallel program across four nodes and
// measures its execution time — the substrate behind the paper's
// Table 1.
func ExampleNewCluster() {
	cluster, err := thermctl.NewCluster(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Settle(0)
	res := cluster.RunProgram(thermctl.BTB4(), 0)
	fmt.Printf("completed: %v\n", !res.TimedOut)
	fmt.Printf("ran about 219s: %v\n", res.ExecTime.Seconds() > 210 && res.ExecTime.Seconds() < 230)
	// Output:
	// completed: true
	// ran about 219s: true
}
