// cpuburn-fan reproduces the scenario of the paper's Figure 5: three
// policies (Pp = 75, 50, 25) of the dynamic fan controller against the
// cpu-burn stressor, showing that a smaller Pp buys lower temperature
// with a faster (costlier) fan.
//
// This example drives the controller through the node's virtual sysfs
// files only — exactly the interface a real fancontrol daemon uses.
//
//	go run ./examples/cpuburn-fan
package main

import (
	"fmt"
	"log"
	"time"

	"thermctl"
)

func main() {
	fmt.Println("Dynamic fan control under cpu-burn (5 simulated minutes per policy)")
	fmt.Printf("%-6s %-16s %-16s %-14s\n", "Pp", "avg duty (2nd half)", "avg temp (2nd half)", "fan energy (J)")

	type outcome struct {
		pp         int
		duty, temp float64
		fanEnergy  float64
	}
	var results []outcome

	for _, pp := range []int{75, 50, 25} {
		node, err := thermctl.NewNode(fmt.Sprintf("pp%d", pp), 2024)
		if err != nil {
			log.Fatal(err)
		}
		node.Settle(0)

		ctl, err := thermctl.NewDynamicFanControl(node, pp, 100)
		if err != nil {
			log.Fatal(err)
		}
		node.SetGenerator(thermctl.CPUBurn(uint64(pp)))

		const total = 5 * time.Minute
		dt := 250 * time.Millisecond
		var dutySum, tempSum float64
		var samples int
		for node.Elapsed() < total {
			node.Step(dt)
			ctl.OnStep(node.Elapsed())
			if node.Elapsed() > total/2 { // steady state only
				dutySum += node.Fan.Duty()
				tempSum += node.Sensor.Read()
				samples++
			}
		}
		results = append(results, outcome{
			pp:        pp,
			duty:      dutySum / float64(samples),
			temp:      tempSum / float64(samples),
			fanEnergy: node.Meter.FanEnergyJ(),
		})
	}

	for _, r := range results {
		fmt.Printf("%-6d %-19.1f %-19.2f %-14.1f\n", r.pp, r.duty, r.temp, r.fanEnergy)
	}
	fmt.Println("\nSmaller Pp = temperature-oriented: more fan, lower die temperature.")
	fmt.Println("Larger Pp = cost-oriented: less fan power, warmer die.")
	fmt.Println("(Paper Figure 5 reports average duties 36/53/70 for Pp 75/50/25.)")
}
