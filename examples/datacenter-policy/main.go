// datacenter-policy explores the paper's motivating setting: a rack
// with position-dependent inlet temperatures (hot spots). Nodes near
// the top of the rack ingest pre-heated air; a single global policy Pp
// must keep every node out of thermal emergency while wasting as little
// fan power and performance as possible.
//
// The example sweeps Pp across the rack and reports, per policy, the
// hottest node, total fan energy and the execution time of a BT run —
// the tradeoff surface a data-center operator would tune on.
//
//	go run ./examples/datacenter-policy
package main

import (
	"fmt"
	"log"

	"thermctl"
	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/node"
)

// rackCluster builds a 4-node "rack" whose inlet temperature rises with
// position: the top node breathes air pre-heated by the ones below.
func rackCluster(seed uint64) (*thermctl.Cluster, error) {
	var nodes []*node.Node
	for i := 0; i < 4; i++ {
		cfg := node.DefaultConfig(fmt.Sprintf("rack%d", i), seed+uint64(i)*7919)
		cfg.AmbientOffsetC = float64(i) * 2.5 // +2.5 °C per slot upwards
		n, err := node.New(cfg)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	return cluster.NewWithNodes(nodes, cluster.DefaultDt)
}

func main() {
	fmt.Println("Rack with a vertical hot spot: inlet +0.0 / +2.5 / +5.0 / +7.5 °C per slot")
	fmt.Println("BT.B.4 under the unified controller at each policy:")
	fmt.Printf("\n%-6s %-10s %-14s %-14s %-12s %-12s\n",
		"Pp", "exec (s)", "hottest degC", "top-node GHz", "fan J/node", "avg W/node")

	for _, pp := range []int{90, 75, 50, 25, 10} {
		rack, err := rackCluster(20100131)
		if err != nil {
			log.Fatal(err)
		}
		rack.Settle(0)
		for i, n := range rack.Nodes {
			fan, err := thermctl.NewDynamicFanControl(n, pp, 60)
			if err != nil {
				log.Fatal(err)
			}
			dvfs, err := thermctl.NewTDVFS(n, pp)
			if err != nil {
				log.Fatal(err)
			}
			rack.AddNodeController(i, core.NewHybrid(fan, dvfs))
		}

		res := rack.RunProgram(thermctl.BTB4(), 0)

		hottest, fanJ, watts := 0.0, 0.0, 0.0
		for _, n := range rack.Nodes {
			if t := n.TrueDieC(); t > hottest {
				hottest = t
			}
			fanJ += n.Meter.FanEnergyJ()
			watts += n.Meter.AverageW()
		}
		top := rack.Nodes[len(rack.Nodes)-1]
		fmt.Printf("%-6d %-10.1f %-14.2f %-14.1f %-12.1f %-12.2f\n",
			pp, res.ExecTime.Seconds(), hottest, top.CPU.FreqGHz(),
			fanJ/4, watts/4)
	}

	fmt.Println("\nReading the surface: with a +7.5 °C hot slot and a 60% fan cap, no")
	fmt.Println("policy is free. Aggressive policies (small Pp) hold the rack coolest")
	fmt.Println("and cheapest in watts, but their deep frequency jumps stall the")
	fmt.Println("barrier-synchronized job; conservative policies keep it fast and hot.")
	fmt.Println("This is the paper's point about Pp: the optimum depends on the")
	fmt.Println("application and the thermal environment — the knob exposes the")
	fmt.Println("tradeoff so the operator can pick, uniformly across both techniques.")
}
