// cluster-hybrid reproduces the scenario of the paper's Figure 10 and
// Table 1: NAS BT class B on a four-node cluster under the unified
// (hybrid) controller, showing the coordination between the out-of-band
// fan and the in-band DVFS knob — the aggressive fan policy delays the
// performance-costly frequency scaling.
//
//	go run ./examples/cluster-hybrid
package main

import (
	"fmt"
	"log"

	"thermctl"
	"thermctl/internal/core"
)

func main() {
	fmt.Println("BT.B.4 on four nodes under the unified hybrid controller (max duty 50%)")
	fmt.Printf("%-6s %-10s %-14s %-10s %-12s\n",
		"Pp", "exec (s)", "tDVFS trigger", "avg W", "freq chgs")

	for _, pp := range []int{75, 50, 25} {
		cluster, err := thermctl.NewCluster(4, thermctl.ExperimentSeed)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Settle(0)

		// One hybrid controller per node, as daemons run per machine.
		var hybrids []*thermctl.Hybrid
		for i, n := range cluster.Nodes {
			fan, err := thermctl.NewDynamicFanControl(n, pp, 50)
			if err != nil {
				log.Fatal(err)
			}
			dvfs, err := thermctl.NewTDVFS(n, pp)
			if err != nil {
				log.Fatal(err)
			}
			h := core.NewHybrid(fan, dvfs)
			cluster.AddNodeController(i, h)
			hybrids = append(hybrids, h)
		}

		res := cluster.RunProgram(thermctl.BTB4(), 0)

		// Earliest in-band trigger across the nodes.
		trigger := "never"
		for _, h := range hybrids {
			if at, ok := h.DVFS.TriggeredAt(); ok {
				trigger = fmt.Sprintf("%.0f s", at.Seconds())
				break
			}
		}
		var watts float64
		var changes uint64
		for _, n := range cluster.Nodes {
			watts += n.Meter.AverageW()
			changes += n.CPU.Transitions()
		}
		fmt.Printf("%-6d %-10.1f %-14s %-10.2f %-12d\n",
			pp, res.ExecTime.Seconds(), trigger, watts/4, changes)
	}

	fmt.Println("\nCoordination at work: a smaller (more aggressive) fan policy keeps the")
	fmt.Println("die cooler for longer, so the in-band knob — which costs execution")
	fmt.Println("time — is triggered later, and the performance spread stays small.")
}
