// Quickstart: build one simulated server, attach the unified thermal
// controller, run a heavy workload for five minutes of simulated time,
// and watch the coordinated knobs hold the die temperature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"thermctl"
)

func main() {
	// A simulated server with the paper's platform: Athlon64 4000+,
	// a 4300 RPM PWM fan behind an ADT7467 on i2c, lm-sensors-grade
	// thermal sensor, virtual sysfs and a BMC. Deterministic: the same
	// seed always produces the same run.
	node, err := thermctl.NewNode("demo", 42)
	if err != nil {
		log.Fatal(err)
	}
	node.Settle(0) // start from idle thermal equilibrium

	// The unified controller: dynamic fan control and temperature-aware
	// DVFS coordinated under one policy parameter. Pp=50 balances
	// temperature against cooling cost; the fan is capped at 40% duty
	// so the in-band knob will have to help.
	unified, err := thermctl.NewUnified(node, 50, 40)
	if err != nil {
		log.Fatal(err)
	}

	// cpu-burn: sustained full load.
	node.SetGenerator(thermctl.CPUBurn(7))

	fmt.Println("time     temp     fan duty  frequency  DVFS")
	dt := 250 * time.Millisecond
	for node.Elapsed() < 5*time.Minute {
		node.Step(dt)
		unified.OnStep(node.Elapsed())

		if node.Elapsed()%(30*time.Second) == 0 {
			state := "idle"
			if unified.DVFS.Engaged() {
				state = "engaged"
			}
			fmt.Printf("%-8s %5.1f °C %7.0f %%  %6.1f GHz  %s\n",
				node.Elapsed(), node.Sensor.Read(), node.Fan.Duty(),
				node.CPU.FreqGHz(), state)
		}
	}

	fmt.Printf("\nAfter 5 minutes of cpu-burn:\n")
	fmt.Printf("  die temperature  %.1f °C (threshold was 51 °C)\n", node.TrueDieC())
	fmt.Printf("  average power    %.1f W\n", node.Meter.AverageW())
	fmt.Printf("  freq transitions %d (tDVFS acts rarely, by design)\n", node.CPU.Transitions())
}
