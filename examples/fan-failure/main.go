// fan-failure demonstrates fault-driven thermal protection: the CPU fan
// seizes mid-run, and three protection schemes race the rising die
// temperature — nothing (hardware PROCHOT only), tDVFS (reacts to the
// temperature symptom), and the tach watchdog (reacts to the failure
// cause). The watchdog wins because on a dead fan every second at full
// power costs about a degree.
//
//	go run ./examples/fan-failure
package main

import (
	"fmt"
	"log"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func main() {
	fmt.Println("CPU fan seizes at t=90s under cpu-burn (hardware trip point 66 °C)")
	fmt.Printf("%-12s %-12s %-12s %-14s %-12s\n",
		"protection", "peak °C", "emergencies", "clamped time", "detected at")

	for _, scheme := range []string{"none", "tDVFS", "watchdog"} {
		cfg := node.DefaultConfig("demo-"+scheme, 2026)
		cfg.ProtectC = 66
		n, err := node.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		n.Settle(0)
		// A healthy 60% fan until the failure.
		port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		if err := port.SetDutyPercent(60); err != nil {
			log.Fatal(err)
		}

		act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			log.Fatal(err)
		}
		var ctl interface{ OnStep(time.Duration) }
		var wd *core.Watchdog
		switch scheme {
		case "tDVFS":
			ctl, err = core.NewTDVFS(core.DefaultTDVFSConfig(50),
				core.SysfsTemp(n.FS, n.Hwmon.TempInput), act)
		case "watchdog":
			rpm := func() (float64, error) {
				v, err := n.FS.ReadInt(n.Hwmon.FanInput)
				return float64(v), err
			}
			wd, err = core.NewWatchdog(core.DefaultWatchdogConfig(), rpm, act)
			ctl = wd
		default:
			ctl = nopController{}
		}
		if err != nil {
			log.Fatal(err)
		}

		n.SetGenerator(workload.NewCPUBurn(nil))
		peak := 0.0
		dt := 250 * time.Millisecond
		for n.Elapsed() < 12*time.Minute {
			n.Step(dt)
			ctl.OnStep(n.Elapsed())
			if n.Elapsed() == 90*time.Second {
				n.Fan.SetFailed(true)
			}
			if v := n.TrueDieC(); v > peak {
				peak = v
			}
		}

		detected := "n/a"
		if wd != nil {
			if evs := wd.Events(); len(evs) > 0 {
				detected = fmt.Sprintf("t=%s", evs[0].At.Truncate(time.Second))
			}
		}
		fmt.Printf("%-12s %-12.2f %-12d %-14s %-12s\n",
			scheme, peak, n.Emergencies(),
			n.ProtectedTime().Truncate(time.Second), detected)
	}

	fmt.Println("\nReacting to the cause (tach stall) beats reacting to the symptom")
	fmt.Println("(temperature): the watchdog down-clocks within seconds of the")
	fmt.Println("seizure and the die never approaches the hardware trip point.")
}

type nopController struct{}

func (nopController) OnStep(time.Duration) {}
