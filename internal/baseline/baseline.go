// Package baseline implements the comparison controllers of the paper's
// evaluation:
//
//   - StaticFan: the traditional static fan control of Figure 1 — PWM
//     duty is a fixed linear map of the current temperature (PWMmin
//     below Tmin, rising to the maximum at Tmax), with no history, no
//     prediction and no policy parameter.
//   - ConstantFan: a fixed duty cycle (the paper pins it at 75%), the
//     maximum-cooling / maximum-fan-power reference.
//   - CPUSpeed: the CPUSPEED daemon [33] — utilization-driven frequency
//     scaling with no temperature input, reading /proc/stat like the
//     real daemon. Its transition churn on phase-structured parallel
//     applications is the foil for tDVFS in Table 1.
//
// Since the control-plane unification each baseline is a policy hosted
// on a core.Binding: the engine owns sampling cadence and error
// accounting (the fail-safe escalation is disabled, preserving the
// baselines' historical count-and-skip behaviour), and the policy is
// only the decision law the paper compares against.
package baseline

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"thermctl/internal/adt7467"
	"thermctl/internal/core"
	"thermctl/internal/hwmon"
)

// StaticFanConfig parameterizes the traditional controller.
type StaticFanConfig struct {
	// TminC, TmaxC, MinDuty define the Figure 1 line: MinDuty at TminC,
	// rising linearly to MaxDuty at TmaxC. Paper platform: 38 °C, 82 °C,
	// 10%.
	TminC, TmaxC float64
	MinDuty      float64
	// MaxDuty caps the speed ("the maximum allowed fan speed ... is
	// set to 75%" in the paper's Figure 6 comparison).
	MaxDuty float64
	// SamplePeriod is how often the map is re-evaluated (250 ms).
	SamplePeriod time.Duration
}

// DefaultStaticFanConfig returns the paper's traditional fan curve with
// the given duty cap.
func DefaultStaticFanConfig(maxDuty float64) StaticFanConfig {
	return StaticFanConfig{
		TminC: 38, TmaxC: 82,
		MinDuty: 10, MaxDuty: maxDuty,
		SamplePeriod: 250 * time.Millisecond,
	}
}

// StaticFan is the traditional static fan controller.
type StaticFan struct {
	cfg StaticFanConfig
	b   *core.Binding
}

// staticFanPolicy maps each sample through the Figure 1 line. The
// static map is memoryless, so the policy is one expression.
type staticFanPolicy struct{ s *StaticFan }

// Name implements core.Policy.
func (p staticFanPolicy) Name() string { return "staticmap" }

// Decide implements core.Policy.
func (p staticFanPolicy) Decide(tx *core.Txn) {
	tx.ApplyDuty(0, p.s.Duty(tx.Sample()))
}

// NewStaticFan builds the controller.
func NewStaticFan(cfg StaticFanConfig, read core.TempReader, port core.FanPort) (*StaticFan, error) {
	if read == nil || port == nil {
		return nil, fmt.Errorf("baseline: static fan needs a reader and a port")
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("baseline: non-positive sample period")
	}
	if cfg.TmaxC <= cfg.TminC {
		return nil, fmt.Errorf("baseline: Tmax must exceed Tmin")
	}
	s := &StaticFan{cfg: cfg}
	b, err := core.NewBinding(core.BindingConfig{
		Policy:       staticFanPolicy{s: s},
		Read:         read,
		SamplePeriod: cfg.SamplePeriod,
		FailSafe:     core.FailSafeConfig{Disable: true},
		Actuators:    []core.Actuator{&core.FanDutyActuator{Port: port}},
	})
	if err != nil {
		return nil, err
	}
	s.b = b
	return s, nil
}

// Binding exposes the engine binding hosting this controller.
func (s *StaticFan) Binding() *core.Binding { return s.b }

// Duty returns the static map's duty for temperature t — the Figure 1
// line capped at MaxDuty.
func (s *StaticFan) Duty(t float64) float64 {
	d := adt7467.StaticCurve(t, s.cfg.TminC, s.cfg.TmaxC-s.cfg.TminC, s.cfg.MinDuty)
	if d > s.cfg.MaxDuty {
		d = s.cfg.MaxDuty
	}
	return d
}

// Errors returns the failed read/actuation count. Safe to call
// concurrently with the control loop.
func (s *StaticFan) Errors() uint64 { return s.b.Errors() }

// OnStep implements the cluster Controller interface.
func (s *StaticFan) OnStep(now time.Duration) { s.b.OnStep(now) }

// ConstantFan pins the fan at a fixed duty once and keeps it there.
type ConstantFan struct {
	Duty float64
	b    *core.Binding
	done bool
}

// constantFanPolicy retries the single pin until the write lands; it
// reads Duty live so the field stays adjustable until then.
type constantFanPolicy struct{ c *ConstantFan }

// Name implements core.Policy.
func (p constantFanPolicy) Name() string { return "constant" }

// Decide implements core.Policy.
func (p constantFanPolicy) Decide(tx *core.Txn) {
	if p.c.done {
		return
	}
	if tx.ApplyDuty(0, p.c.Duty) {
		p.c.done = true
	}
}

// NewConstantFan builds the controller.
func NewConstantFan(duty float64, port core.FanPort) *ConstantFan {
	c := &ConstantFan{Duty: duty}
	// The binding is windowless, readerless and ungated: the policy
	// fires on every step until the pin lands. Construction cannot fail
	// with a non-nil policy.
	b, err := core.NewBinding(core.BindingConfig{
		Policy:    constantFanPolicy{c: c},
		FailSafe:  core.FailSafeConfig{Disable: true},
		Actuators: []core.Actuator{&core.FanDutyActuator{Port: port}},
	})
	if err != nil {
		panic(err)
	}
	c.b = b
	return c
}

// Binding exposes the engine binding hosting this controller.
func (c *ConstantFan) Binding() *core.Binding { return c.b }

// Errors returns the failed actuation count. Safe to call concurrently
// with the control loop.
func (c *ConstantFan) Errors() uint64 { return c.b.Errors() }

// OnStep implements the cluster Controller interface.
func (c *ConstantFan) OnStep(now time.Duration) { c.b.OnStep(now) }

// CPUSpeedConfig parameterizes the CPUSPEED daemon model.
type CPUSpeedConfig struct {
	// Interval is the utilization evaluation period. The real daemon
	// defaults to checking a few times per second; 500 ms here.
	Interval time.Duration
	// UpThreshold jumps straight to the maximum frequency when the
	// interval utilization meets it (the daemon's responsiveness rule).
	UpThreshold float64
	// DownThreshold steps one frequency lower when the interval
	// utilization falls below it.
	DownThreshold float64
}

// DefaultCPUSpeedConfig returns thresholds representative of the
// distributed daemon's defaults. With a 500 ms interval against BT's
// ≈1.1 s iterations, only the longer communication exchanges pull an
// evaluation window under the down-threshold, so the daemon churns
// intermittently — roughly one change every couple of seconds, the
// 101-139 changes per BT run the paper's Table 1 measures — and each
// excursion is recovered within an interval or two.
func DefaultCPUSpeedConfig() CPUSpeedConfig {
	return CPUSpeedConfig{
		Interval:      500 * time.Millisecond,
		UpThreshold:   0.88,
		DownThreshold: 0.66,
	}
}

// CPUSpeed is the utilization-driven DVFS daemon. It reads /proc/stat
// through the virtual sysfs and drives cpufreq, exactly as the real
// daemon does — no temperature input at all.
type CPUSpeed struct {
	b   *core.Binding
	pol *cpuSpeedPolicy
}

// cpuSpeedPolicy holds the daemon's decision state. The binding has no
// temperature reader — utilization is the only input — so the policy
// gathers its own sample inside Decide and reports failures through
// the transaction's error counter.
type cpuSpeedPolicy struct {
	cfg  CPUSpeedConfig
	fs   *hwmon.FS
	freq core.FreqPort

	lastBusy, lastTotal float64
	primed              bool
	mode                int
	nmodes              int
}

// Name implements core.Policy.
func (p *cpuSpeedPolicy) Name() string { return "cpuspeed" }

// NewCPUSpeed builds the daemon over a node's file tree and frequency
// port.
func NewCPUSpeed(cfg CPUSpeedConfig, fs *hwmon.FS, freq core.FreqPort) (*CPUSpeed, error) {
	if fs == nil || freq == nil {
		return nil, fmt.Errorf("baseline: cpuspeed needs a filesystem and a freq port")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("baseline: non-positive interval")
	}
	freqs, err := freq.AvailableKHz()
	if err != nil {
		return nil, fmt.Errorf("baseline: cpuspeed: %w", err)
	}
	pol := &cpuSpeedPolicy{cfg: cfg, fs: fs, freq: freq, nmodes: len(freqs)}
	b, err := core.NewBinding(core.BindingConfig{
		Policy:       pol,
		SamplePeriod: cfg.Interval,
		FailSafe:     core.FailSafeConfig{Disable: true},
	})
	if err != nil {
		return nil, err
	}
	return &CPUSpeed{b: b, pol: pol}, nil
}

// Binding exposes the engine binding hosting this daemon.
func (c *CPUSpeed) Binding() *core.Binding { return c.b }

// Errors returns the failed read/actuation count. Safe to call
// concurrently with the control loop.
func (c *CPUSpeed) Errors() uint64 { return c.b.Errors() }

// readProcStat parses the aggregate cpu line of /proc/stat into busy and
// total jiffies.
func (p *cpuSpeedPolicy) readProcStat() (busy, total float64, err error) {
	body, err := p.fs.ReadFile("/proc/stat")
	if err != nil {
		return 0, 0, err
	}
	line, _, _ := strings.Cut(body, "\n")
	//thermlint:allow hotalloc -- /proc/stat is a text interface; CPUSPEED is the in-band baseline and parses it per interval by design
	fields := strings.Fields(line)
	if len(fields) < 5 || fields[0] != "cpu" {
		return 0, 0, fmt.Errorf("baseline: malformed /proc/stat %q", line)
	}
	var vals []float64
	for _, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("baseline: bad jiffy count %q", f)
		}
		//thermlint:allow hotalloc -- bounded by /proc/stat field count; in-band text parse by design
		vals = append(vals, v)
	}
	// user nice system idle iowait irq softirq: idle is field 4.
	for i, v := range vals {
		total += v
		if i != 3 {
			busy += v
		}
	}
	return busy, total, nil
}

// Decide implements core.Policy: one utilization evaluation.
func (p *cpuSpeedPolicy) Decide(tx *core.Txn) {
	busy, total, err := p.readProcStat()
	if err != nil {
		tx.CountError()
		return
	}
	if !p.primed {
		p.primed = true
		p.lastBusy, p.lastTotal = busy, total
		return
	}
	db, dt := busy-p.lastBusy, total-p.lastTotal
	p.lastBusy, p.lastTotal = busy, total
	if dt <= 0 {
		return
	}
	util := db / dt

	switch {
	case util >= p.cfg.UpThreshold && p.mode != 0:
		// Jump straight to the fastest frequency, as the daemon does.
		p.mode = 0
		p.apply(tx)
	case util <= p.cfg.DownThreshold && p.mode < p.nmodes-1:
		p.mode++
		p.apply(tx)
	}
}

func (p *cpuSpeedPolicy) apply(tx *core.Txn) {
	freqs, err := p.freq.AvailableKHz()
	if err != nil {
		tx.CountError()
		return
	}
	if err := p.freq.SetKHz(freqs[p.mode]); err != nil {
		tx.CountError()
	}
}

// OnStep implements the cluster Controller interface.
func (c *CPUSpeed) OnStep(now time.Duration) { c.b.OnStep(now) }
