// Package baseline implements the comparison controllers of the paper's
// evaluation:
//
//   - StaticFan: the traditional static fan control of Figure 1 — PWM
//     duty is a fixed linear map of the current temperature (PWMmin
//     below Tmin, rising to the maximum at Tmax), with no history, no
//     prediction and no policy parameter.
//   - ConstantFan: a fixed duty cycle (the paper pins it at 75%), the
//     maximum-cooling / maximum-fan-power reference.
//   - CPUSpeed: the CPUSPEED daemon [33] — utilization-driven frequency
//     scaling with no temperature input, reading /proc/stat like the
//     real daemon. Its transition churn on phase-structured parallel
//     applications is the foil for tDVFS in Table 1.
package baseline

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"thermctl/internal/adt7467"
	"thermctl/internal/core"
	"thermctl/internal/hwmon"
)

// StaticFanConfig parameterizes the traditional controller.
type StaticFanConfig struct {
	// TminC, TmaxC, MinDuty define the Figure 1 line: MinDuty at TminC,
	// rising linearly to MaxDuty at TmaxC. Paper platform: 38 °C, 82 °C,
	// 10%.
	TminC, TmaxC float64
	MinDuty      float64
	// MaxDuty caps the speed ("the maximum allowed fan speed ... is
	// set to 75%" in the paper's Figure 6 comparison).
	MaxDuty float64
	// SamplePeriod is how often the map is re-evaluated (250 ms).
	SamplePeriod time.Duration
}

// DefaultStaticFanConfig returns the paper's traditional fan curve with
// the given duty cap.
func DefaultStaticFanConfig(maxDuty float64) StaticFanConfig {
	return StaticFanConfig{
		TminC: 38, TmaxC: 82,
		MinDuty: 10, MaxDuty: maxDuty,
		SamplePeriod: 250 * time.Millisecond,
	}
}

// StaticFan is the traditional static fan controller.
type StaticFan struct {
	cfg  StaticFanConfig
	read core.TempReader
	port core.FanPort
	next time.Duration
	errs uint64
}

// NewStaticFan builds the controller.
func NewStaticFan(cfg StaticFanConfig, read core.TempReader, port core.FanPort) (*StaticFan, error) {
	if read == nil || port == nil {
		return nil, fmt.Errorf("baseline: static fan needs a reader and a port")
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("baseline: non-positive sample period")
	}
	if cfg.TmaxC <= cfg.TminC {
		return nil, fmt.Errorf("baseline: Tmax must exceed Tmin")
	}
	return &StaticFan{cfg: cfg, read: read, port: port, next: cfg.SamplePeriod}, nil
}

// Duty returns the static map's duty for temperature t — the Figure 1
// line capped at MaxDuty.
func (s *StaticFan) Duty(t float64) float64 {
	d := adt7467.StaticCurve(t, s.cfg.TminC, s.cfg.TmaxC-s.cfg.TminC, s.cfg.MinDuty)
	if d > s.cfg.MaxDuty {
		d = s.cfg.MaxDuty
	}
	return d
}

// Errors returns the failed read/actuation count.
func (s *StaticFan) Errors() uint64 { return s.errs }

// OnStep implements the cluster Controller interface.
func (s *StaticFan) OnStep(now time.Duration) {
	if now < s.next {
		return
	}
	s.next += s.cfg.SamplePeriod
	t, err := s.read()
	if err != nil {
		s.errs++
		return
	}
	if err := s.port.SetDutyPercent(s.Duty(t)); err != nil {
		s.errs++
	}
}

// ConstantFan pins the fan at a fixed duty once and keeps it there.
type ConstantFan struct {
	Duty float64
	port core.FanPort
	done bool
	errs uint64
}

// NewConstantFan builds the controller.
func NewConstantFan(duty float64, port core.FanPort) *ConstantFan {
	return &ConstantFan{Duty: duty, port: port}
}

// Errors returns the failed actuation count.
func (c *ConstantFan) Errors() uint64 { return c.errs }

// OnStep implements the cluster Controller interface.
func (c *ConstantFan) OnStep(time.Duration) {
	if c.done {
		return
	}
	if err := c.port.SetDutyPercent(c.Duty); err != nil {
		c.errs++
		return
	}
	c.done = true
}

// CPUSpeedConfig parameterizes the CPUSPEED daemon model.
type CPUSpeedConfig struct {
	// Interval is the utilization evaluation period. The real daemon
	// defaults to checking a few times per second; 500 ms here.
	Interval time.Duration
	// UpThreshold jumps straight to the maximum frequency when the
	// interval utilization meets it (the daemon's responsiveness rule).
	UpThreshold float64
	// DownThreshold steps one frequency lower when the interval
	// utilization falls below it.
	DownThreshold float64
}

// DefaultCPUSpeedConfig returns thresholds representative of the
// distributed daemon's defaults. With a 500 ms interval against BT's
// ≈1.1 s iterations, only the longer communication exchanges pull an
// evaluation window under the down-threshold, so the daemon churns
// intermittently — roughly one change every couple of seconds, the
// 101-139 changes per BT run the paper's Table 1 measures — and each
// excursion is recovered within an interval or two.
func DefaultCPUSpeedConfig() CPUSpeedConfig {
	return CPUSpeedConfig{
		Interval:      500 * time.Millisecond,
		UpThreshold:   0.88,
		DownThreshold: 0.66,
	}
}

// CPUSpeed is the utilization-driven DVFS daemon. It reads /proc/stat
// through the virtual sysfs and drives cpufreq, exactly as the real
// daemon does — no temperature input at all.
type CPUSpeed struct {
	cfg  CPUSpeedConfig
	fs   *hwmon.FS
	freq core.FreqPort
	next time.Duration

	lastBusy, lastTotal float64
	primed              bool
	mode                int
	nmodes              int
	errs                uint64
}

// NewCPUSpeed builds the daemon over a node's file tree and frequency
// port.
func NewCPUSpeed(cfg CPUSpeedConfig, fs *hwmon.FS, freq core.FreqPort) (*CPUSpeed, error) {
	if fs == nil || freq == nil {
		return nil, fmt.Errorf("baseline: cpuspeed needs a filesystem and a freq port")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("baseline: non-positive interval")
	}
	freqs, err := freq.AvailableKHz()
	if err != nil {
		return nil, fmt.Errorf("baseline: cpuspeed: %w", err)
	}
	return &CPUSpeed{cfg: cfg, fs: fs, freq: freq, nmodes: len(freqs), next: cfg.Interval}, nil
}

// Errors returns the failed read/actuation count.
func (c *CPUSpeed) Errors() uint64 { return c.errs }

// readProcStat parses the aggregate cpu line of /proc/stat into busy and
// total jiffies.
func (c *CPUSpeed) readProcStat() (busy, total float64, err error) {
	body, err := c.fs.ReadFile("/proc/stat")
	if err != nil {
		return 0, 0, err
	}
	line, _, _ := strings.Cut(body, "\n")
	fields := strings.Fields(line)
	if len(fields) < 5 || fields[0] != "cpu" {
		return 0, 0, fmt.Errorf("baseline: malformed /proc/stat %q", line)
	}
	var vals []float64
	for _, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("baseline: bad jiffy count %q", f)
		}
		vals = append(vals, v)
	}
	// user nice system idle iowait irq softirq: idle is field 4.
	for i, v := range vals {
		total += v
		if i != 3 {
			busy += v
		}
	}
	return busy, total, nil
}

// OnStep implements the cluster Controller interface.
func (c *CPUSpeed) OnStep(now time.Duration) {
	if now < c.next {
		return
	}
	c.next += c.cfg.Interval
	busy, total, err := c.readProcStat()
	if err != nil {
		c.errs++
		return
	}
	if !c.primed {
		c.primed = true
		c.lastBusy, c.lastTotal = busy, total
		return
	}
	db, dt := busy-c.lastBusy, total-c.lastTotal
	c.lastBusy, c.lastTotal = busy, total
	if dt <= 0 {
		return
	}
	util := db / dt

	switch {
	case util >= c.cfg.UpThreshold && c.mode != 0:
		// Jump straight to the fastest frequency, as the daemon does.
		c.mode = 0
		c.apply()
	case util <= c.cfg.DownThreshold && c.mode < c.nmodes-1:
		c.mode++
		c.apply()
	}
}

func (c *CPUSpeed) apply() {
	freqs, err := c.freq.AvailableKHz()
	if err != nil {
		c.errs++
		return
	}
	if err := c.freq.SetKHz(freqs[c.mode]); err != nil {
		c.errs++
	}
}
