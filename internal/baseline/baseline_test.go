package baseline

import (
	"math"
	"testing"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func newTestNode(t *testing.T) *node.Node {
	t.Helper()
	n, err := node.New(node.DefaultConfig("baseline", 21))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStaticFanDutyLine(t *testing.T) {
	n := newTestNode(t)
	s, err := NewStaticFan(DefaultStaticFanConfig(100),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Duty(30); d != 10 {
		t.Errorf("Duty(30) = %v, want PWMmin 10", d)
	}
	if d := s.Duty(60); math.Abs(d-55) > 0.5 {
		t.Errorf("Duty(60) = %v, want ≈55 (linear midpoint)", d)
	}
	if d := s.Duty(90); d != 100 {
		t.Errorf("Duty(90) = %v, want 100", d)
	}
}

func TestStaticFanCap(t *testing.T) {
	n := newTestNode(t)
	s, err := NewStaticFan(DefaultStaticFanConfig(75),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Duty(90); d != 75 {
		t.Errorf("capped Duty(90) = %v, want 75", d)
	}
}

func TestStaticFanValidation(t *testing.T) {
	n := newTestNode(t)
	read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
	port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	if _, err := NewStaticFan(DefaultStaticFanConfig(75), nil, port); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewStaticFan(DefaultStaticFanConfig(75), read, nil); err == nil {
		t.Error("nil port accepted")
	}
	bad := DefaultStaticFanConfig(75)
	bad.TmaxC = bad.TminC
	if _, err := NewStaticFan(bad, read, port); err == nil {
		t.Error("degenerate range accepted")
	}
}

func TestStaticFanFollowsTemperature(t *testing.T) {
	n := newTestNode(t)
	n.Settle(0)
	s, err := NewStaticFan(DefaultStaticFanConfig(100),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 1200; i++ {
		n.Step(dt)
		s.OnStep(n.Elapsed())
	}
	// At the settled temperature the duty must match the line.
	want := s.Duty(n.Sensor.Read())
	if got := n.Fan.Duty(); math.Abs(got-want) > 3 {
		t.Errorf("fan duty %v, static line says %v", got, want)
	}
	if s.Errors() != 0 {
		t.Errorf("errors: %d", s.Errors())
	}
}

func TestConstantFanPins(t *testing.T) {
	n := newTestNode(t)
	c := NewConstantFan(75, &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
	c.OnStep(0)
	c.OnStep(time.Second)
	if d := n.Fan.Duty(); math.Abs(d-75) > 1 {
		t.Errorf("fan duty = %v, want 75", d)
	}
}

func TestCPUSpeedValidation(t *testing.T) {
	n := newTestNode(t)
	port := &core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq}
	if _, err := NewCPUSpeed(DefaultCPUSpeedConfig(), nil, port); err == nil {
		t.Error("nil fs accepted")
	}
	bad := DefaultCPUSpeedConfig()
	bad.Interval = 0
	if _, err := NewCPUSpeed(bad, n.FS, port); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestCPUSpeedStaysFastUnderFullLoad(t *testing.T) {
	n := newTestNode(t)
	cs, err := NewCPUSpeed(DefaultCPUSpeedConfig(), n.FS,
		&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.Constant(1))
	dt := 250 * time.Millisecond
	for i := 0; i < 240; i++ {
		n.Step(dt)
		cs.OnStep(n.Elapsed())
	}
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("full load: frequency %v GHz, want 2.4", n.CPU.FreqGHz())
	}
	if n.CPU.Transitions() != 0 {
		t.Errorf("full load caused %d transitions", n.CPU.Transitions())
	}
}

func TestCPUSpeedStepsDownWhenIdle(t *testing.T) {
	n := newTestNode(t)
	cs, err := NewCPUSpeed(DefaultCPUSpeedConfig(), n.FS,
		&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.Constant(0.05))
	dt := 250 * time.Millisecond
	for i := 0; i < 240; i++ {
		n.Step(dt)
		cs.OnStep(n.Elapsed())
	}
	if n.CPU.FreqGHz() != 1.0 {
		t.Errorf("idle: frequency %v GHz, want stepped down to 1.0", n.CPU.FreqGHz())
	}
}

func TestCPUSpeedJumpsToMaxOnLoad(t *testing.T) {
	n := newTestNode(t)
	cs, err := NewCPUSpeed(DefaultCPUSpeedConfig(), n.FS,
		&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	// Idle first, then sudden full load: one interval at high
	// utilization must restore the maximum frequency directly.
	n.SetGenerator(workload.Step{Before: 0.05, After: 1.0, At: 30 * time.Second})
	dt := 250 * time.Millisecond
	transAtLoadOnset := uint64(0)
	for i := 0; i < 240; i++ {
		n.Step(dt)
		cs.OnStep(n.Elapsed())
		if n.Elapsed() == 30*time.Second {
			transAtLoadOnset = n.CPU.Transitions()
		}
	}
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("after load onset: %v GHz, want 2.4", n.CPU.FreqGHz())
	}
	if n.CPU.Transitions() != transAtLoadOnset+1 {
		t.Errorf("up-jump took %d transitions, want exactly 1 (straight to max)",
			n.CPU.Transitions()-transAtLoadOnset)
	}
}

// TestCPUSpeedChurnsOnParallelWorkload demonstrates the Table 1 foil:
// BT's compute/communicate phases make the utilization heuristic change
// frequency over and over, while the workload's thermal demand never
// required it.
func TestCPUSpeedChurnsOnParallelWorkload(t *testing.T) {
	c, err := cluster.New(2, cluster.DefaultDt, 33)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	for i, n := range c.Nodes {
		cs, err := NewCPUSpeed(DefaultCPUSpeedConfig(), n.FS,
			&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			t.Fatal(err)
		}
		c.AddNodeController(i, cs)
	}
	// Communication long enough that most evaluation intervals see the
	// dip (real BT's longer exchanges do this intermittently).
	prog := workload.Uniform("mini-BT", 40, workload.Iteration{
		ComputeGC: 2.2128, ComputeUtil: 1.0, CommSec: 0.25, CommUtil: 0.10,
	})
	res := c.RunProgram(prog, 0)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	trans := c.Nodes[0].CPU.Transitions()
	// 40 iterations ≈ 45 s; the paper sees ≈0.5 changes/s over BT.
	if trans < 8 {
		t.Errorf("CPUSPEED made only %d transitions over 40 iterations, want ≥8", trans)
	}
}

func BenchmarkCPUSpeedOnStep(b *testing.B) {
	n, err := node.New(node.DefaultConfig("bench", 1))
	if err != nil {
		b.Fatal(err)
	}
	cs, err := NewCPUSpeed(DefaultCPUSpeedConfig(), n.FS,
		&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		b.Fatal(err)
	}
	n.SetGenerator(workload.Constant(0.8))
	dt := 250 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(dt)
		cs.OnStep(n.Elapsed())
	}
}
