package baseline_test

// Golden step-trace equivalence harness for the baseline controllers,
// recorded from the pre-engine implementations; the engine-hosted
// policies must reproduce these traces byte for byte. The goldens are
// event-only .tct images compared via the tracefile Diff primitives;
// see internal/core/golden_test.go for the contract and -update flow.

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"thermctl/internal/baseline"
	"thermctl/internal/hwmon"
	"thermctl/internal/tracefile"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

type trace struct {
	lines []string
}

func (tr *trace) addf(format string, args ...any) {
	tr.lines = append(tr.lines, fmt.Sprintf(format, args...))
}

func checkGolden(t *testing.T, name string, tr *trace) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".tct")
	if *update {
		img, err := tracefile.EncodeEvents(tr.lines)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines, %d bytes)", path, len(tr.lines), len(img))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to record): %v", err)
	}
	if err := tracefile.DiffEventLines(want, tr.lines); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

type scriptReader struct {
	i    int
	temp func(i int) float64
	fail func(i int) bool
}

func (r *scriptReader) read() (float64, error) {
	i := r.i
	r.i++
	if r.fail != nil && r.fail(i) {
		return 0, errors.New("golden: scripted read fault")
	}
	return r.temp(i), nil
}

// traceFanPort records every duty write; call c fails when fail(c) is
// true.
type traceFanPort struct {
	tr    *trace
	calls int
	cur   float64
	fail  func(call int) bool
}

func (p *traceFanPort) DutyPercent() (float64, error) { return p.cur, nil }

func (p *traceFanPort) SetDutyPercent(d float64) error {
	call := p.calls
	p.calls++
	if p.fail != nil && p.fail(call) {
		p.tr.addf("  setduty %.6f call=%d FAIL", d, call)
		return errors.New("golden: scripted duty fault")
	}
	p.cur = d
	p.tr.addf("  setduty %.6f call=%d ok", d, call)
	return nil
}

// traceFreqPort records every frequency write.
type traceFreqPort struct {
	tr    *trace
	freqs []int64
	cur   int64
	calls int
	fail  func(call int) bool
}

func (p *traceFreqPort) AvailableKHz() ([]int64, error) { return p.freqs, nil }
func (p *traceFreqPort) CurrentKHz() (int64, error)     { return p.cur, nil }

func (p *traceFreqPort) SetKHz(f int64) error {
	call := p.calls
	p.calls++
	if p.fail != nil && p.fail(call) {
		p.tr.addf("  setkhz %d call=%d FAIL", f, call)
		return errors.New("golden: scripted freq fault")
	}
	p.cur = f
	p.tr.addf("  setkhz %d call=%d ok", f, call)
	return nil
}

const stepDt = 50 * time.Millisecond

func staticScript(i int) float64 {
	x := float64(i)
	return 55 + 20*math.Sin(x/19) + 4*math.Sin(x/5.1)
}

func TestGoldenStaticFan(t *testing.T) {
	tr := &trace{}
	r := &scriptReader{
		temp: staticScript,
		fail: func(i int) bool { return i >= 90 && i < 96 },
	}
	port := &traceFanPort{tr: tr,
		fail: func(call int) bool { return call >= 40 && call < 43 }}
	s, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(75), r.read, port)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1000; step++ {
		s.OnStep(time.Duration(step) * stepDt)
		if step%5 == 0 {
			tr.addf("step=%04d errs=%d", step, s.Errors())
		}
	}
	checkGolden(t, "staticfan", tr)
}

func TestGoldenConstantFan(t *testing.T) {
	tr := &trace{}
	// The port rejects the first two writes, so the pin must be retried
	// on the following steps and then never applied again.
	port := &traceFanPort{tr: tr, fail: func(call int) bool { return call < 2 }}
	c := baseline.NewConstantFan(75, port)
	for step := 0; step < 40; step++ {
		c.OnStep(time.Duration(step) * stepDt)
		tr.addf("step=%04d errs=%d", step, c.Errors())
	}
	checkGolden(t, "constantfan", tr)
}

// jiffies returns the scripted cumulative (busy, idle) jiffy counters at
// evaluation i: alternating compute and communication phases, so the
// daemon churns between frequencies exactly like CPUSPEED on BT.
func jiffies(i int) (busy, idle int64) {
	for k := 0; k < i; k++ {
		// Utilization of interval k: high during 8-interval compute
		// phases, low during 3-interval exchanges.
		var util float64
		if k%11 < 8 {
			util = 0.97
		} else {
			util = 0.40
		}
		busy += int64(math.Round(50 * util))
		idle += int64(math.Round(50 * (1 - util)))
	}
	return busy, idle
}

func TestGoldenCPUSpeed(t *testing.T) {
	tr := &trace{}
	fs := hwmon.NewFS()
	tick := 0
	fs.Register("/proc/stat", hwmon.FuncFile{
		ReadFn: func() (string, error) {
			i := tick
			tick++
			if i >= 30 && i < 33 {
				return "", errors.New("golden: scripted stat fault")
			}
			busy, idle := jiffies(i)
			return fmt.Sprintf("cpu  %d 0 0 %d 0 0 0\n", busy, idle), nil
		},
	})
	port := &traceFreqPort{tr: tr,
		freqs: []int64{2400000, 2200000, 2000000, 1800000, 1600000},
		cur:   2400000,
		fail:  func(call int) bool { return call == 5 }}
	c, err := baseline.NewCPUSpeed(baseline.DefaultCPUSpeedConfig(), fs, port)
	if err != nil {
		t.Fatal(err)
	}
	// 500 ms interval: evaluations land every 10th simulation step.
	for step := 0; step < 1200; step++ {
		c.OnStep(time.Duration(step) * stepDt)
		if step%10 == 0 {
			tr.addf("step=%04d errs=%d", step, c.Errors())
		}
	}
	checkGolden(t, "cpuspeed", tr)
}
