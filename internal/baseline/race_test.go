package baseline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"thermctl/internal/hwmon"
)

// These tests exercise the Errors() vs OnStep data race the baselines
// historically had: daemons read the error counter from their status
// goroutines while the control loop incremented a plain uint64. The
// engine binding made the counter atomic; run with -race.

// deadFanPort rejects every write.
type deadFanPort struct{}

func (deadFanPort) SetDutyPercent(float64) error { return errors.New("pwm bus dead") }
func (deadFanPort) DutyPercent() (float64, error) {
	return 0, errors.New("pwm bus dead")
}

func TestStaticFanErrorsConcurrentWithOnStep(t *testing.T) {
	failing := func() (float64, error) { return 0, errors.New("sensor dead") }
	s, err := NewStaticFan(DefaultStaticFanConfig(100), failing, deadFanPort{})
	if err != nil {
		t.Fatal(err)
	}
	period := DefaultStaticFanConfig(100).SamplePeriod
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 2000; i++ {
			s.OnStep(time.Duration(i) * period)
		}
	}()
	for i := 0; i < 2000; i++ {
		_ = s.Errors()
	}
	wg.Wait()
	if got := s.Errors(); got != 2000 {
		t.Errorf("Errors = %d after 2000 failed samples, want 2000", got)
	}
}

func TestConstantFanErrorsConcurrentWithOnStep(t *testing.T) {
	c := NewConstantFan(75, deadFanPort{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 2000; i++ {
			c.OnStep(time.Duration(i) * time.Second)
		}
	}()
	for i := 0; i < 2000; i++ {
		_ = c.Errors()
	}
	wg.Wait()
	if got := c.Errors(); got != 2000 {
		t.Errorf("Errors = %d after 2000 failed pins, want 2000", got)
	}
}

// deadFreqPort advertises a frequency table but rejects every write.
type deadFreqPort struct{}

func (deadFreqPort) AvailableKHz() ([]int64, error) {
	return []int64{2400000, 2200000, 2000000, 1800000, 1600000}, nil
}
func (deadFreqPort) SetKHz(int64) error         { return errors.New("cpufreq dead") }
func (deadFreqPort) CurrentKHz() (int64, error) { return 0, errors.New("cpufreq dead") }

func TestCPUSpeedErrorsConcurrentWithOnStep(t *testing.T) {
	fs := hwmon.NewFS()
	fs.Register("/proc/stat", &hwmon.FuncFile{
		ReadFn: func() (string, error) { return "", errors.New("procfs dead") },
	})
	cs, err := NewCPUSpeed(DefaultCPUSpeedConfig(), fs, deadFreqPort{})
	if err != nil {
		t.Fatal(err)
	}
	interval := DefaultCPUSpeedConfig().Interval
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 2000; i++ {
			cs.OnStep(time.Duration(i) * interval)
		}
	}()
	for i := 0; i < 2000; i++ {
		_ = cs.Errors()
	}
	wg.Wait()
	if got := cs.Errors(); got != 2000 {
		t.Errorf("Errors = %d after 2000 failed evaluations, want 2000", got)
	}
}
