package baseline

import (
	"math"
	"testing"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func pidRig(t *testing.T, cfg PIDFanConfig) (*node.Node, *PIDFan) {
	t.Helper()
	n := newTestNode(t)
	n.Settle(0)
	p, err := NewPIDFan(cfg,
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
	if err != nil {
		t.Fatal(err)
	}
	return n, p
}

func TestPIDValidation(t *testing.T) {
	n := newTestNode(t)
	read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
	port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	if _, err := NewPIDFan(DefaultPIDFanConfig(), nil, port); err == nil {
		t.Error("nil reader accepted")
	}
	bad := DefaultPIDFanConfig()
	bad.SamplePeriod = 0
	if _, err := NewPIDFan(bad, read, port); err == nil {
		t.Error("zero period accepted")
	}
	bad2 := DefaultPIDFanConfig()
	bad2.MaxDuty = bad2.MinDuty
	if _, err := NewPIDFan(bad2, read, port); err == nil {
		t.Error("empty duty range accepted")
	}
}

func TestPIDRegulatesToSetpoint(t *testing.T) {
	n, p := pidRig(t, DefaultPIDFanConfig())
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 2400; i++ { // 10 minutes
		n.Step(dt)
		p.OnStep(n.Elapsed())
	}
	if got := n.TrueDieC(); math.Abs(got-50) > 1.5 {
		t.Errorf("PID settled at %.2f °C, setpoint 50", got)
	}
	if p.Errors() != 0 {
		t.Errorf("errors: %d", p.Errors())
	}
}

func TestPIDIdlesLowBelowSetpoint(t *testing.T) {
	n, p := pidRig(t, DefaultPIDFanConfig())
	n.SetGenerator(workload.Constant(0.03))
	dt := 250 * time.Millisecond
	for i := 0; i < 1200; i++ {
		n.Step(dt)
		p.OnStep(n.Elapsed())
	}
	// An idle die sits well below the setpoint: the loop must rest at
	// the minimum duty, not wind up.
	if d := n.Fan.Duty(); d > 5 {
		t.Errorf("idle duty = %.1f%%, want near MinDuty", d)
	}
}

func TestPIDAntiWindupRecovers(t *testing.T) {
	// Saturate low for a long idle period, then slam the load: with
	// anti-windup the loop must respond within seconds, not after
	// unwinding minutes of accumulated negative integral.
	n, p := pidRig(t, DefaultPIDFanConfig())
	n.SetGenerator(workload.Step{Before: 0.03, After: 1.0, At: 5 * time.Minute})
	dt := 250 * time.Millisecond
	var dutyAtOnset float64
	for i := 0; i < 1560; i++ { // 6.5 minutes
		n.Step(dt)
		p.OnStep(n.Elapsed())
		if n.Elapsed() == 5*time.Minute {
			dutyAtOnset = n.Fan.Duty()
		}
	}
	// 90 s after onset the fan must be clearly engaged.
	if d := n.Fan.Duty(); d < dutyAtOnset+15 {
		t.Errorf("duty only %.1f%% 90 s after load onset (was %.1f%%) — integral windup", d, dutyAtOnset)
	}
}

// TestPIDChurnsOnJitterWherePaperControllerHolds is the ablation's
// point: a PID loop reacts to every wiggle of a jittery workload while
// the paper's two-level window cancels it. The cancellation works for
// oscillation periods within the level-one window span (1 s here) —
// both half-periods land in one round and the half-sums cancel exactly,
// which is what the paper means by choosing the window size to nullify
// jitter.
func TestPIDChurnsOnJitterWherePaperControllerHolds(t *testing.T) {
	jitterLoad := workload.Jitter{Low: 0.2, High: 0.9, Period: time.Second}

	dutySwing := func(attach func(n *node.Node) func(time.Duration)) float64 {
		n := newTestNode(t)
		n.Settle(0.55)
		step := attach(n)
		n.SetGenerator(jitterLoad)
		dt := 250 * time.Millisecond
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 2400; i++ {
			n.Step(dt)
			step(n.Elapsed())
			if n.Elapsed() > 4*time.Minute { // past warm-up
				if d := n.Fan.Duty(); d < lo {
					lo = d
				}
				if d := n.Fan.Duty(); d > hi {
					hi = d
				}
			}
		}
		return hi - lo
	}

	pidSwing := dutySwing(func(n *node.Node) func(time.Duration) {
		p, err := NewPIDFan(DefaultPIDFanConfig(),
			core.SysfsTemp(n.FS, n.Hwmon.TempInput),
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
		if err != nil {
			t.Fatal(err)
		}
		return p.OnStep
	})
	paperSwing := dutySwing(func(n *node.Node) func(time.Duration) {
		c, err := core.NewController(core.DefaultConfig(50),
			core.SysfsTemp(n.FS, n.Hwmon.TempInput),
			core.ActuatorBinding{Actuator: core.NewFanActuator(
				&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
		if err != nil {
			t.Fatal(err)
		}
		return c.OnStep
	})
	if paperSwing >= pidSwing {
		t.Errorf("window controller duty swing %.1f not below PID's %.1f under jitter",
			paperSwing, pidSwing)
	}
}
