package baseline

import (
	"fmt"
	"time"

	"thermctl/internal/core"
)

// PIDFanConfig parameterizes the PID comparison controller.
type PIDFanConfig struct {
	// SetpointC is the temperature the loop regulates to.
	SetpointC float64
	// Kp, Ki, Kd are the classic gains, in duty-percent per °C,
	// per °C·s, and per °C/s respectively.
	Kp, Ki, Kd float64
	// DerivFilterTau low-pass filters the measurement before the
	// derivative term, as any practical PID must with a noisy sensor.
	DerivFilterTau time.Duration
	// MinDuty and MaxDuty clamp the output (and bound the integral
	// term, preventing windup).
	MinDuty, MaxDuty float64
	// SamplePeriod is the loop rate.
	SamplePeriod time.Duration
}

// DefaultPIDFanConfig returns a competently tuned loop for this
// plant: setpoint 50 °C, gains picked for modest overshoot on a
// cpu-burn load step.
func DefaultPIDFanConfig() PIDFanConfig {
	return PIDFanConfig{
		SetpointC:      50,
		Kp:             8,
		Ki:             0.35,
		Kd:             12,
		DerivFilterTau: 2 * time.Second,
		MinDuty:        1,
		MaxDuty:        100,
		SamplePeriod:   250 * time.Millisecond,
	}
}

// PIDFan is a textbook PID temperature→duty loop: the "formal control"
// alternative the paper's related work surveys (Lefurgy et al., Wang
// et al.). It regulates to a fixed setpoint — there is no policy
// parameter, no history window, and no notion of behaviour types. The
// ablation benches compare it against the paper's controller on
// settling, steady temperature and actuator churn.
type PIDFan struct {
	cfg  PIDFanConfig
	read core.TempReader
	port core.FanPort

	next     time.Duration
	integ    float64
	filtered float64
	prevF    float64
	primed   bool
	errs     uint64
	writes   uint64
}

// NewPIDFan builds the loop.
func NewPIDFan(cfg PIDFanConfig, read core.TempReader, port core.FanPort) (*PIDFan, error) {
	if read == nil || port == nil {
		return nil, fmt.Errorf("baseline: pid needs a reader and a port")
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("baseline: pid: non-positive sample period")
	}
	if cfg.MaxDuty <= cfg.MinDuty {
		return nil, fmt.Errorf("baseline: pid: empty duty range")
	}
	return &PIDFan{cfg: cfg, read: read, port: port, next: cfg.SamplePeriod}, nil
}

// Errors returns the failed read/actuation count.
func (p *PIDFan) Errors() uint64 { return p.errs }

// Writes returns the number of duty commands issued — the actuator
// churn metric.
func (p *PIDFan) Writes() uint64 { return p.writes }

// OnStep implements the cluster Controller interface.
func (p *PIDFan) OnStep(now time.Duration) {
	if now < p.next {
		return
	}
	p.next += p.cfg.SamplePeriod
	t, err := p.read()
	if err != nil {
		p.errs++
		return
	}
	dt := p.cfg.SamplePeriod.Seconds()

	// Low-pass the measurement for the derivative path.
	alpha := 1.0
	if tau := p.cfg.DerivFilterTau.Seconds(); tau > 0 {
		alpha = dt / (tau + dt)
	}
	if !p.primed {
		p.filtered = t
		p.prevF = t
		p.primed = true
	}
	p.filtered += alpha * (t - p.filtered)

	e := t - p.cfg.SetpointC
	p.integ += e * dt
	deriv := (p.filtered - p.prevF) / dt
	p.prevF = p.filtered

	out := p.cfg.Kp*e + p.cfg.Ki*p.integ + p.cfg.Kd*deriv

	// Clamp with integral anti-windup: when saturated, freeze the
	// integral at the value that keeps the output on the rail.
	if out > p.cfg.MaxDuty {
		if p.cfg.Ki > 0 {
			p.integ -= (out - p.cfg.MaxDuty) / p.cfg.Ki
		}
		out = p.cfg.MaxDuty
	}
	if out < p.cfg.MinDuty {
		if p.cfg.Ki > 0 {
			p.integ += (p.cfg.MinDuty - out) / p.cfg.Ki
		}
		out = p.cfg.MinDuty
	}
	if err := p.port.SetDutyPercent(out); err != nil {
		p.errs++
		return
	}
	p.writes++
}
