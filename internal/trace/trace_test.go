package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestSeriesStats(t *testing.T) {
	var s Series
	for i, v := range []float64{1, 2, 3, 4} {
		s.Add(sec(float64(i)), v)
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean())
	}
	if s.Max() != 4 || s.Min() != 1 || s.Last() != 4 {
		t.Errorf("Max/Min/Last = %v/%v/%v", s.Max(), s.Min(), s.Last())
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Last()) {
		t.Error("empty series Mean/Last should be NaN")
	}
	if !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Error("empty series Max/Min should be ∓Inf")
	}
	if s.StabilizationTime(1) != 0 {
		t.Error("empty series StabilizationTime should be 0")
	}
}

func TestMeanAfter(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		v := 0.0
		if i >= 5 {
			v = 10
		}
		s.Add(sec(float64(i)), v)
	}
	if got := s.MeanAfter(sec(5)); got != 10 {
		t.Errorf("MeanAfter(5s) = %v, want 10", got)
	}
	if !math.IsNaN(s.MeanAfter(sec(100))) {
		t.Error("MeanAfter beyond the series should be NaN")
	}
}

func TestStabilizationTime(t *testing.T) {
	var s Series
	// Ramp for 10 s then flat at 50 for 10 s.
	for i := 0; i <= 20; i++ {
		v := 50.0
		if i < 10 {
			v = float64(i) * 5
		}
		s.Add(sec(float64(i)), v)
	}
	got := s.StabilizationTime(1)
	if got != sec(10) {
		t.Errorf("StabilizationTime = %v, want 10s", got)
	}
}

func TestStabilizationNeverSettles(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(sec(float64(i)), float64(i*10))
	}
	// Only the final sample is within the band of itself, so the series
	// "settles" at its very last timestamp.
	if got := s.StabilizationTime(1); got != sec(9) {
		t.Errorf("StabilizationTime = %v, want 9s", got)
	}
}

func TestStabilizationFlatSeries(t *testing.T) {
	var s Series
	for i := 0; i < 5; i++ {
		s.Add(sec(float64(i)), 42)
	}
	if got := s.StabilizationTime(0.5); got != 0 {
		t.Errorf("flat series stabilization = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i, v := range []float64{10, 20, 30, 40, 50} {
		s.Add(sec(float64(i)), v)
	}
	if got := s.Percentile(0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 50 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(50); got != 30 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(25); got != 20 {
		t.Errorf("p25 = %v", got)
	}
	if got := s.Percentile(90); math.Abs(got-46) > 1e-9 {
		t.Errorf("p90 = %v, want 46 (interpolated)", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Percentile(50)) {
		t.Error("empty series percentile should be NaN")
	}
	s.Add(0, 42)
	if got := s.Percentile(99); got != 42 {
		t.Errorf("single sample p99 = %v", got)
	}
	if !math.IsNaN(s.Percentile(-1)) || !math.IsNaN(s.Percentile(101)) {
		t.Error("out-of-range p should be NaN")
	}
	// Percentile must not mutate the series ordering.
	s.Add(sec(1), 1)
	s.Percentile(50)
	if s.Points[0].V != 42 {
		t.Error("Percentile reordered the series")
	}
}

func TestStdAndMean(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := Std(vs); math.Abs(sd-2) > 1e-9 {
		t.Errorf("Std = %v, want 2", sd)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) {
		t.Error("empty Mean/Std should be NaN")
	}
}

func TestRecorderSeriesOrder(t *testing.T) {
	r := NewRecorder()
	r.Record("temp", 0, 40)
	r.Record("duty", 0, 10)
	r.Record("temp", sec(1), 41)
	names := r.Names()
	if len(names) != 2 || names[0] != "temp" || names[1] != "duty" {
		t.Errorf("Names = %v", names)
	}
	if r.Series("temp").Len() != 2 {
		t.Error("temp series wrong length")
	}
	if r.Series("missing") != nil {
		t.Error("missing series should be nil")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 10; i++ {
		r.Record("temp", sec(float64(i)*0.25), 40+float64(i))
		if i%2 == 0 {
			r.Record("duty", sec(float64(i)*0.25), float64(10*i))
		}
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	temp := back.Series("temp")
	if temp == nil || temp.Len() != 10 {
		t.Fatalf("temp round trip: %+v", temp)
	}
	if temp.Points[3].V != 43 || temp.Points[3].T != sec(0.75) {
		t.Errorf("sample 3: %+v", temp.Points[3])
	}
	duty := back.Series("duty")
	if duty == nil || duty.Len() != 5 {
		t.Fatalf("duty round trip (sparse column): %+v", duty)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"notheader,a\n1,2\n",
		"time_s\n",
		"time_s,a\nx,1\n",
		"time_s,a\n1,notnum\n",
		"time_s,a\n1,2,3\n",
	}
	for _, body := range cases {
		if _, err := ReadCSV(strings.NewReader(body)); err == nil {
			t.Errorf("malformed CSV accepted: %q", body)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	r.Record("b", 0, 2)
	r.Record("a", sec(1), 3)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "time_s,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,1.0000,2.0000") {
		t.Errorf("row 0 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1.000,3.0000,") || !strings.HasSuffix(lines[2], ",") {
		t.Errorf("row 1 = %q (missing b value should be empty)", lines[2])
	}
}
