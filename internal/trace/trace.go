// Package trace records and summarizes simulation time series: the
// temperature, fan duty, frequency and power curves that the paper's
// figures plot, plus the summary statistics its text quotes (averages,
// stabilization time).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point is one sample of one series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	//thermlint:allow hotalloc -- a recorder's whole job is to accumulate samples; growth is amortized O(1)
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Mean returns the arithmetic mean, or NaN for an empty series.
func (s *Series) Mean() float64 { return Mean(s.Values()) }

// Max returns the largest sample value, or -Inf for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the smallest sample value, or +Inf for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Last returns the final sample value, or NaN for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	return s.Points[len(s.Points)-1].V
}

// MeanAfter returns the mean of samples at or after t — the steady-state
// average once transients have passed.
func (s *Series) MeanAfter(t time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.T >= t {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// StabilizationTime returns the time of the first sample after which
// every remaining sample stays within ±band of the series' final value.
// It reports how quickly a controller settles — the comparison the
// paper's Figure 6 makes between dynamic and static fan control. It
// returns the last sample's time if the series never settles earlier,
// and 0 for an empty series.
func (s *Series) StabilizationTime(band float64) time.Duration {
	if len(s.Points) == 0 {
		return 0
	}
	final := s.Last()
	// Walk backwards to find the last sample outside the band.
	for i := len(s.Points) - 1; i >= 0; i-- {
		if math.Abs(s.Points[i].V-final) > band {
			if i == len(s.Points)-1 {
				return s.Points[i].T
			}
			return s.Points[i+1].T
		}
	}
	return s.Points[0].T
}

// Percentile returns the p-th percentile of the series values using
// linear interpolation between closest ranks, for p in [0, 100]. It
// returns NaN for an empty series or out-of-range p. Thermal SLOs are
// stated as tails (p95/p99 of die temperature), not means.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Points) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	vs := s.Values()
	sort.Float64s(vs)
	if len(vs) == 1 {
		return vs[0]
	}
	rank := p / 100 * float64(len(vs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return vs[lo]
	}
	frac := rank - float64(lo)
	return vs[lo] + frac*(vs[hi]-vs[lo])
}

// Mean returns the arithmetic mean of vs, or NaN if empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Std returns the population standard deviation of vs.
func Std(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	m := Mean(vs)
	var ss float64
	for _, v := range vs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vs)))
}

// Recorder collects multiple named series with a shared sampling
// schedule. Record, Names, Series and WriteCSV are safe for concurrent
// use: out-of-band probes (BMC pollers, the IPMI server's connection
// goroutines) append samples concurrently with the in-band sampling
// loop. Mutating a *Series obtained from Series while others record is
// the caller's responsibility to serialize.
type Recorder struct {
	mu     sync.Mutex
	order  []string
	series map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Record appends a sample to the named series, creating it on first use.
func (r *Recorder) Record(name string, t time.Duration, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		//thermlint:allow hotalloc -- first-use only: a series is created once per name, then reused
		s = &Series{Name: name}
		r.series[name] = s
		//thermlint:allow hotalloc -- first-use only: grows once per distinct series name
		r.order = append(r.order, name)
	}
	s.Add(t, v)
}

// Series returns the named series, or nil if never recorded.
func (r *Recorder) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[name]
}

// Names returns the series names in first-recorded order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// ReadCSV parses the format WriteCSV emits — a "time_s" column followed
// by one column per series; empty cells are skipped — and returns a
// recorder holding the series. It is the ingestion path for offline
// analysis (e.g. the hotspot profiler over an exported run).
func ReadCSV(r io.Reader) (*Recorder, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(header) < 2 || header[0] != "time_s" {
		return nil, fmt.Errorf("trace: malformed header %q", sc.Text())
	}
	names := header[1:]
	rec := NewRecorder()
	line := 1
	for sc.Scan() {
		line++
		row := strings.Split(strings.TrimSpace(sc.Text()), ",")
		if len(row) != len(header) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(row), len(header))
		}
		ts, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q", line, row[0])
		}
		t := time.Duration(ts * float64(time.Second))
		for i, cell := range row[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad value %q", line, cell)
			}
			rec.Record(names[i], t, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return rec, nil
}

// WriteCSV emits all series as CSV: a time column (seconds) followed by
// one column per series, rows joined on exact timestamps. Missing
// values are left empty. The recorder is locked for the duration: the
// snapshot is consistent even while probes keep recording.
func (r *Recorder) WriteCSV(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	// Collect the union of timestamps.
	stamps := map[time.Duration]bool{}
	for _, n := range names {
		for _, p := range r.series[n].Points {
			stamps[p.T] = true
		}
	}
	ts := make([]time.Duration, 0, len(stamps))
	for t := range stamps {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })

	// Index each series by timestamp.
	idx := make(map[string]map[time.Duration]float64, len(names))
	for _, n := range names {
		m := make(map[time.Duration]float64, r.series[n].Len())
		for _, p := range r.series[n].Points {
			m[p.T] = p.V
		}
		idx[n] = m
	}

	if _, err := fmt.Fprintf(w, "time_s,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for _, t := range ts {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%.3f", t.Seconds()))
		for _, n := range names {
			if v, ok := idx[n][t]; ok {
				row = append(row, fmt.Sprintf("%.4f", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}
