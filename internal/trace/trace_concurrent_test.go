package trace

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecord hammers Record from many goroutines — the shape
// of an out-of-band BMC poller sampling while the in-band loop records.
// Under -race this fails loudly if Recorder loses its lock discipline.
func TestConcurrentRecord(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	rec := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("series%d", g%4) // contend: two goroutines per series
			for i := 0; i < perG; i++ {
				rec.Record(name, time.Duration(i)*time.Second, float64(g*perG+i))
			}
		}(g)
	}
	wg.Wait()

	names := rec.Names()
	if len(names) != 4 {
		t.Fatalf("got %d series, want 4: %v", len(names), names)
	}
	total := 0
	for _, n := range names {
		s := rec.Series(n)
		if s == nil {
			t.Fatalf("series %q missing", n)
		}
		total += s.Len()
	}
	if want := goroutines * perG; total != want {
		t.Fatalf("recorded %d samples total, want %d", total, want)
	}
}

// TestConcurrentRecordAndSnapshot checks that WriteCSV and Names taken
// mid-flight are internally consistent snapshots: every emitted row
// parses and matches the header width, even while writers keep going.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	rec := NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec.Record(name, time.Duration(i)*time.Millisecond, float64(i))
			}
		}(g)
	}
	for snap := 0; snap < 20; snap++ {
		var buf bytes.Buffer
		if err := rec.WriteCSV(&buf); err != nil {
			t.Fatalf("snapshot %d: WriteCSV: %v", snap, err)
		}
		if buf.Len() == 0 {
			continue // nothing recorded yet
		}
		if _, err := ReadCSV(&buf); err != nil {
			t.Fatalf("snapshot %d not parseable: %v", snap, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCSVRoundTripSparse round-trips a recorder whose series share no
// timestamps, so every row has empty cells; ReadCSV must skip them
// without inventing samples, and order/values must survive exactly.
func TestCSVRoundTripSparse(t *testing.T) {
	rec := NewRecorder()
	// Deliberately record "zeta" first: column order is first-recorded,
	// not alphabetical, and must survive the round trip.
	rec.Record("zeta", 1*time.Second, -3.25)
	rec.Record("alpha", 2*time.Second, 0)
	rec.Record("zeta", 3*time.Second, 101.5)
	rec.Record("alpha", 4*time.Second, 42.0625)

	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// Every data row must contain exactly one empty cell (the series
	// that has no sample at that timestamp).
	for i, row := range strings.Split(strings.TrimSpace(buf.String()), "\n")[1:] {
		empties := 0
		for _, cell := range strings.Split(row, ",") {
			if cell == "" {
				empties++
			}
		}
		if empties != 1 {
			t.Errorf("row %d %q has %d empty cells, want 1", i, row, empties)
		}
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Names(), []string{"zeta", "alpha"}; !equalStrings(got, want) {
		t.Fatalf("names after round trip = %v, want %v", got, want)
	}
	checks := []struct {
		name string
		want []Point
	}{
		{"zeta", []Point{{1 * time.Second, -3.25}, {3 * time.Second, 101.5}}},
		{"alpha", []Point{{2 * time.Second, 0}, {4 * time.Second, 42.0625}}},
	}
	for _, c := range checks {
		s := back.Series(c.name)
		if s == nil {
			t.Fatalf("series %q lost in round trip", c.name)
		}
		if s.Len() != len(c.want) {
			t.Fatalf("%s: %d points after round trip, want %d", c.name, s.Len(), len(c.want))
		}
		for i, p := range s.Points {
			if p.T != c.want[i].T || math.Abs(p.V-c.want[i].V) > 1e-9 {
				t.Errorf("%s[%d] = {%v %v}, want {%v %v}", c.name, i, p.T, p.V, c.want[i].T, c.want[i].V)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
