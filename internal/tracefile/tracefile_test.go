package tracefile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

var testSchema = []SeriesDef{
	{Name: "n0_temp", Unit: "degC"},
	{Name: "n0_fan", Unit: "percent"},
	{Name: "n0_freq", Unit: "GHz"},
}

// writeImage renders a trace image with count samples per series at
// 250ms cadence plus a few events, under the given options.
func writeImage(t *testing.T, opt *Options, count int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema, opt)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < count; i++ {
		ts := time.Duration(i) * 250 * time.Millisecond
		w.Append(0, ts, 40+10*math.Sin(float64(i)/20))
		w.Append(1, ts, float64(30+i%50))
		w.Append(2, ts, 2.4)
		if i%100 == 0 {
			w.Event(ts, fmt.Sprintf("checkpoint %d", i))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// expected regenerates the sample stream writeImage encodes.
func expected(count int) []Sample {
	var out []Sample
	for i := 0; i < count; i++ {
		ts := time.Duration(i) * 250 * time.Millisecond
		out = append(out,
			Sample{0, ts, 40 + 10*math.Sin(float64(i)/20)},
			Sample{1, ts, float64(30 + i%50)},
			Sample{2, ts, 2.4})
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"default", Options{}},
		{"no-compress", Options{NoCompress: true}},
		{"tiny-chunks", Options{ChunkBytes: 128}},
		{"tiny-chunks-no-compress", Options{ChunkBytes: 128, NoCompress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const count = 500
			img := writeImage(t, &tc.opt, count)
			r, err := NewBytesReader(img)
			if err != nil {
				t.Fatalf("NewBytesReader: %v", err)
			}
			if err := r.Incomplete(); err != nil {
				t.Fatalf("Incomplete on a cleanly closed file: %v", err)
			}
			if !schemaEqual(r.Schema(), testSchema) {
				t.Fatalf("schema = %v, want %v", r.Schema(), testSchema)
			}
			var got []Sample
			if err := r.Samples(Window{}, func(s Sample) error {
				got = append(got, s)
				return nil
			}); err != nil {
				t.Fatalf("Samples: %v", err)
			}
			want := expected(count)
			if len(got) != len(want) {
				t.Fatalf("read %d samples, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d = %+v, want %+v (values must be bit-exact)", i, got[i], want[i])
				}
			}
			var events []Event
			if err := r.Events(Window{}, func(e Event) error {
				events = append(events, e)
				return nil
			}); err != nil {
				t.Fatalf("Events: %v", err)
			}
			if len(events) != count/100 {
				t.Fatalf("read %d events, want %d", len(events), count/100)
			}
			if events[1].Text != "checkpoint 100" || events[1].T != 25*time.Second {
				t.Fatalf("event 1 = %+v", events[1])
			}
			ns, ne := r.Counts()
			if ns != uint64(len(want)) || ne != uint64(len(events)) {
				t.Fatalf("Counts = %d, %d; want %d, %d", ns, ne, len(want), len(events))
			}
		})
	}
}

func TestWindowedReads(t *testing.T) {
	const count = 1000
	// Tiny chunks so the window actually skips chunks via the index.
	img := writeImage(t, &Options{ChunkBytes: 256}, count)
	r, err := NewBytesReader(img)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumChunks() < 10 {
		t.Fatalf("want many chunks for a meaningful window test, got %d", r.NumChunks())
	}
	win := Window{From: 30 * time.Second, To: 60 * time.Second}
	var got []Sample
	if err := r.Samples(win, func(s Sample) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var want []Sample
	for _, s := range expected(count) {
		if s.T >= win.From && s.T <= win.To {
			want = append(want, s)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("window returned %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("windowed sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	from, to, ok := r.TimeRange()
	if !ok || from != 0 || to != time.Duration(count-1)*250*time.Millisecond {
		t.Fatalf("TimeRange = %s..%s, %v", from, to, ok)
	}
}

func TestEarlyStop(t *testing.T) {
	img := writeImage(t, nil, 100)
	r, err := NewBytesReader(img)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := r.Samples(Window{}, func(Sample) error {
		n++
		if n == 7 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatalf("ErrStop must not surface: %v", err)
	}
	if n != 7 {
		t.Fatalf("callback ran %d times, want 7", n)
	}
}

func TestReadRecorder(t *testing.T) {
	img := writeImage(t, nil, 50)
	r, err := NewBytesReader(img)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.ReadRecorder(Window{})
	if err != nil {
		t.Fatal(err)
	}
	names := rec.Names()
	if len(names) != 3 || names[0] != "n0_temp" {
		t.Fatalf("Names = %v", names)
	}
	s := rec.Series("n0_freq")
	if s.Len() != 50 || s.Last() != 2.4 {
		t.Fatalf("n0_freq: len %d last %v", s.Len(), s.Last())
	}
}

func TestOutOfOrderTimestamps(t *testing.T) {
	// Events and samples may go backwards in time (chaos replays splice
	// streams); the zigzag deltas must survive it.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	times := []time.Duration{10 * time.Second, 2 * time.Second, 30 * time.Second, 0}
	for i, ts := range times {
		w.Append(0, ts, float64(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewBytesReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var got []Sample
	if err := r.Samples(Window{}, func(s Sample) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("read %d, want %d", len(got), len(times))
	}
	for i, ts := range times {
		if got[i].T != ts || got[i].V != float64(i) {
			t.Fatalf("sample %d = %+v, want t=%s v=%d", i, got[i], ts, i)
		}
	}
	from, to, _ := r.TimeRange()
	if from != 0 || to != 30*time.Second {
		t.Fatalf("TimeRange = %s..%s", from, to)
	}
}

func TestAppendZeroAllocs(t *testing.T) {
	// A chunk large enough that the measured appends never seal: the
	// claim under test is the per-sample cost of the step path, not
	// the amortized flusher work.
	w, err := NewWriter(io.Discard, testSchema, &Options{ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		w.Append(i%3, time.Duration(i)*time.Millisecond, float64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f per call; the step path demands 0", allocs)
	}
}

func TestWriterStickyErrors(t *testing.T) {
	w, err := NewWriter(io.Discard, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(7, 0, 1) // out of range
	w.Append(0, 0, 1) // ignored after the sticky error
	if err := w.Close(); err != ErrSeriesRange {
		t.Fatalf("Close = %v, want ErrSeriesRange", err)
	}
	if err := w.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	// Append after Close must be a silent no-op, not a panic.
	w.Append(0, 0, 1)

	w2, err := NewWriter(io.Discard, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2.Event(0, strings.Repeat("x", defaultChunkBytes+maxRecordLen+1))
	if err := w2.Close(); err != ErrRecordTooLarge {
		t.Fatalf("Close = %v, want ErrRecordTooLarge", err)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.n--
	return len(p), nil
}

func TestWriteErrorSurfacesAtClose(t *testing.T) {
	w, err := NewWriter(&failWriter{n: 1}, testSchema, &Options{ChunkBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		w.Append(0, time.Duration(i), float64(i))
	}
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close = %v, want the flusher's disk error", err)
	}
}

// corrupt variants: each takes a valid image and damages it.
func TestCorruptInputs(t *testing.T) {
	const count = 400
	img := writeImage(t, &Options{ChunkBytes: 256}, count)
	full, err := NewBytesReader(img)
	if err != nil {
		t.Fatal(err)
	}
	nChunks := full.NumChunks()
	if nChunks < 8 {
		t.Fatalf("need several chunks, got %d", nChunks)
	}
	// Locate a mid-file *samples* chunk via the (trusted) index of the
	// intact file for surgical corruption — corrupting an event chunk
	// would never surface through Samples.
	midIdx := -1
	for i := nChunks / 2; i < nChunks; i++ {
		if full.chunks[i].kind == kindSamples {
			midIdx = i
			break
		}
	}
	if midIdx < 0 {
		t.Fatal("no samples chunk in the back half")
	}
	midChunk := full.chunks[midIdx].offset
	// The footer starts where the trailer says the index lives.
	footerOff := int64(binary.LittleEndian.Uint64(img[len(img)-trailerLen:]))

	t.Run("unknown version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint16(bad[8:10], 99)
		_, err := NewBytesReader(bad)
		if err == nil || !strings.Contains(err.Error(), "version 99") {
			t.Fatalf("err = %v, want a version error", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		copy(bad, "NOTATRCE")
		_, err := NewBytesReader(bad)
		if err == nil || !strings.Contains(err.Error(), "not a trace file") {
			t.Fatalf("err = %v, want a magic error", err)
		}
	})

	t.Run("missing footer", func(t *testing.T) {
		// Cut exactly at the index footer: every chunk survives.
		bad := img[:footerOff]
		r, err := NewBytesReader(bad)
		if err != nil {
			t.Fatalf("a footerless file must still open: %v", err)
		}
		if r.Incomplete() == nil || !strings.Contains(r.Incomplete().Error(), "missing index footer") {
			t.Fatalf("Incomplete = %v, want a missing-footer report", r.Incomplete())
		}
		if r.NumChunks() != nChunks {
			t.Fatalf("rescan recovered %d chunks, want all %d", r.NumChunks(), nChunks)
		}
		ns, _ := full.Counts()
		ns2, _ := r.Counts()
		if ns2 != ns {
			t.Fatalf("rescan serves %d samples, want %d", ns2, ns)
		}
	})

	t.Run("truncated chunk", func(t *testing.T) {
		bad := img[:midChunk+chunkHeaderLen+3]
		r, err := NewBytesReader(bad)
		if err != nil {
			t.Fatalf("a truncated file must still open: %v", err)
		}
		if r.Incomplete() == nil || !strings.Contains(r.Incomplete().Error(), "truncated") {
			t.Fatalf("Incomplete = %v, want a truncation report", r.Incomplete())
		}
		if r.NumChunks() != midIdx {
			t.Fatalf("recovered %d chunks, want the %d intact ones before the cut", r.NumChunks(), midIdx)
		}
		// The recovered prefix must read back clean.
		if err := r.Samples(Window{}, func(Sample) error { return nil }); err != nil {
			t.Fatalf("reading the recovered prefix: %v", err)
		}
	})

	t.Run("bad CRC with footer", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[midChunk+chunkHeaderLen] ^= 0xff
		r, err := NewBytesReader(bad)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		err = r.Samples(Window{}, func(Sample) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
			t.Fatalf("Samples = %v, want a CRC error", err)
		}
	})

	t.Run("bad CRC without footer", func(t *testing.T) {
		bad := append([]byte(nil), img[:footerOff]...)
		bad[midChunk+chunkHeaderLen] ^= 0xff
		r, err := NewBytesReader(bad)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if r.Incomplete() == nil || !strings.Contains(r.Incomplete().Error(), "CRC mismatch") {
			t.Fatalf("Incomplete = %v, want a CRC report", r.Incomplete())
		}
		if r.NumChunks() != midIdx {
			t.Fatalf("recovered %d chunks, want %d before the damage", r.NumChunks(), midIdx)
		}
	})

	t.Run("truncated header", func(t *testing.T) {
		_, err := NewBytesReader(img[:10])
		if err == nil {
			t.Fatal("want an error for a 10-byte file")
		}
	})

	t.Run("oversized declared chunk", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[midChunk+40:], maxChunkRaw+1)
		r, err := NewBytesReader(bad)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		err = r.Samples(Window{}, func(Sample) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "limit") {
			t.Fatalf("Samples = %v, want a size-limit error", err)
		}
	})
}

func TestDiff(t *testing.T) {
	img := writeImage(t, &Options{ChunkBytes: 512}, 300)
	a, err := NewBytesReader(img)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("identical", func(t *testing.T) {
		b, _ := NewBytesReader(img)
		res, err := Diff(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal() || res.MaxDelta != 0 {
			t.Fatalf("identical traces: %+v (first: %v)", res, res.First)
		}
		if res.SamplesA != 900 || res.SamplesA != res.SamplesB {
			t.Fatalf("compared %d/%d samples", res.SamplesA, res.SamplesB)
		}
	})

	t.Run("value divergence and tolerance", func(t *testing.T) {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, testSchema, &Options{ChunkBytes: 512})
		n := 0
		aR, _ := NewBytesReader(img)
		aR.Samples(Window{}, func(s Sample) error {
			v := s.V
			if n == 450 {
				v += 0.5
			}
			w.Append(s.Series, s.T, v)
			n++
			return nil
		})
		aE, _ := NewBytesReader(img)
		aE.Events(Window{}, func(e Event) error {
			w.Event(e.T, e.Text)
			return nil
		})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := NewBytesReader(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Diff(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Equal() || res.First == nil || res.First.Kind != "sample" || res.First.Index != 450 {
			t.Fatalf("want sample divergence at 450, got %+v (first %+v)", res, res.First)
		}
		if math.Abs(res.MaxDelta-0.5) > 1e-12 {
			t.Fatalf("MaxDelta = %v, want 0.5", res.MaxDelta)
		}
		// Within tolerance the same pair matches.
		res, err = Diff(a, b, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal() {
			t.Fatalf("tolerance 0.6 should absorb a 0.5 delta: first %v", res.First)
		}
	})

	t.Run("schema mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, testSchema[:2], nil)
		w.Append(0, 0, 1)
		w.Close()
		b, _ := NewBytesReader(buf.Bytes())
		res, err := Diff(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.SchemaEqual || res.First == nil || res.First.Kind != "schema" {
			t.Fatalf("want schema divergence, got %+v", res)
		}
	})

	t.Run("count mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, testSchema, nil)
		aR, _ := NewBytesReader(img)
		n := 0
		aR.Samples(Window{}, func(s Sample) error {
			if n < 100 {
				w.Append(s.Series, s.T, s.V)
			}
			n++
			return nil
		})
		w.Close()
		b, _ := NewBytesReader(buf.Bytes())
		res, err := Diff(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Equal() || res.First == nil || res.First.Kind != "count" {
			t.Fatalf("want count divergence, got %+v (first %+v)", res, res.First)
		}
		if res.SamplesA != 900 || res.SamplesB != 100 {
			t.Fatalf("counted %d/%d", res.SamplesA, res.SamplesB)
		}
	})
}

func TestGoldenEventHelpers(t *testing.T) {
	lines := []string{"t=0s duty=30.0", "t=1s duty=42.5", "t=2s duty=55.0"}
	img, err := EncodeEvents(lines)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvents(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(lines) {
		t.Fatalf("decoded %d lines, want %d", len(back), len(lines))
	}
	for i := range lines {
		if back[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, back[i], lines[i])
		}
	}
	if err := DiffEventLines(img, lines); err != nil {
		t.Fatalf("matching lines diff: %v", err)
	}
	changed := append([]string(nil), lines...)
	changed[1] = "t=1s duty=43.0"
	err = DiffEventLines(img, changed)
	if err == nil || !strings.Contains(err.Error(), "differs from golden") {
		t.Fatalf("changed lines diff = %v, want a divergence", err)
	}
	err = DiffEventLines(img, lines[:2])
	if err == nil {
		t.Fatal("short lines diff: want a count divergence")
	}
}

// TestDeterministicBytes locks the property the acceptance criteria
// lean on: the same append sequence yields byte-identical files, every
// time, regardless of flusher scheduling.
func TestDeterministicBytes(t *testing.T) {
	a := writeImage(t, nil, 777)
	b := writeImage(t, nil, 777)
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same sequence differ byte for byte")
	}
}
