package tracefile

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadTrace throws arbitrary bytes at the reader: it must either
// refuse with a descriptive error or serve some prefix of chunks —
// never panic, never allocate unboundedly (the maxChunkRaw and
// maxSchemaLen limits), never loop forever.
func FuzzReadTrace(f *testing.F) {
	// Seed with real images so mutations explore the interesting
	// neighborhood of the format, not just the magic check.
	seed := func(opt *Options, events bool) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testSchema, opt)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			ts := time.Duration(i) * 250 * time.Millisecond
			w.Append(i%3, ts, float64(i)*1.5)
			if events && i%50 == 0 {
				w.Event(ts, "fault injected")
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	full := seed(nil, true)
	f.Add(full)
	f.Add(seed(&Options{NoCompress: true}, false))
	f.Add(seed(&Options{ChunkBytes: 64}, true))
	f.Add(full[:len(full)/2]) // truncated
	f.Add([]byte("THERMTCT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBytesReader(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		// Whatever opened must be iterable without panicking; decode
		// errors are fine, they just have to be errors.
		_ = r.Incomplete()
		_ = r.Samples(Window{From: 0, To: time.Minute}, func(Sample) error { return nil })
		_ = r.Events(Window{}, func(Event) error { return nil })
		_, _ = r.Counts()
		_, _, _ = r.TimeRange()
		if a, aerr := NewBytesReader(data); aerr == nil {
			_, _ = Diff(r, a, 0)
		}
	})
}
