package tracefile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"thermctl/internal/trace"
)

// Reader provides random access to a trace file. It is backed by an
// io.ReaderAt, so a multi-gigabyte campaign is never loaded whole:
// chunks are fetched, checksummed and decoded on demand, and the chunk
// index narrows any time-window query to the chunks overlapping it.
//
// A reader opens successfully as long as the header parses and at
// least the intact prefix of the file can be indexed. A file that lost
// its footer (the writer died mid-campaign) is rescanned chunk by
// chunk; scanning stops at the first corrupt or truncated chunk and
// the reader serves everything before it, reporting the cut through
// Incomplete.
type Reader struct {
	src    io.ReaderAt
	size   int64
	flags  uint16
	schema []SeriesDef
	chunks []indexEntry

	// incomplete is non-nil when the index footer was missing or the
	// rescan hit corruption: the reader serves the intact prefix only.
	incomplete error
}

// OpenFile opens path for random access. The caller owns the returned
// closer (the underlying *os.File).
func OpenFile(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// NewBytesReader opens an in-memory trace image.
func NewBytesReader(b []byte) (*Reader, error) {
	return NewReader(bytes.NewReader(b), int64(len(b)))
}

// NewReader opens a trace from any random-access source of the given
// size.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	// The header (fixed part + schema) is read in two steps so only
	// schemaLen bytes of schema are fetched, not a guess.
	fixed := make([]byte, fixedHeaderLen)
	if size < int64(fixedHeaderLen) {
		return nil, fmt.Errorf("tracefile: file shorter than the %d-byte header", fixedHeaderLen)
	}
	if _, err := src.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	schemaLen := int64(binary.LittleEndian.Uint32(fixed[12:16]))
	if schemaLen > maxSchemaLen {
		return nil, fmt.Errorf("tracefile: schema block %d bytes exceeds the %d limit", schemaLen, maxSchemaLen)
	}
	hdrLen := int64(fixedHeaderLen) + schemaLen
	if hdrLen > size {
		return nil, fmt.Errorf("tracefile: truncated schema block (file %d bytes, header wants %d)", size, hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := src.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("tracefile: reading schema: %w", err)
	}
	flags, schema, _, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	r := &Reader{src: src, size: size, flags: flags, schema: schema}
	if ierr := r.loadIndex(hdrLen); ierr != nil {
		// No usable footer: fall back to scanning the chunk stream.
		// A scan stops at the first damage; Incomplete reports why the
		// file could not be served whole.
		serr := r.scan(hdrLen)
		switch {
		case serr != nil:
			r.incomplete = serr
		case ierr == errNoFooter:
			r.incomplete = fmt.Errorf("tracefile: missing index footer (recovered %d intact chunks by rescan)", len(r.chunks))
		default:
			r.incomplete = ierr
		}
	}
	return r, nil
}

// errNoFooter distinguishes "file simply ends after the chunks" from a
// present-but-corrupt footer.
var errNoFooter = fmt.Errorf("tracefile: no index footer")

// loadIndex reads and verifies the footer written by Writer.Close.
func (r *Reader) loadIndex(hdrLen int64) error {
	if r.size < hdrLen+int64(trailerLen) {
		return errNoFooter
	}
	tr := make([]byte, trailerLen)
	if _, err := r.src.ReadAt(tr, r.size-int64(trailerLen)); err != nil {
		return fmt.Errorf("tracefile: reading trailer: %w", err)
	}
	if string(tr[8:]) != trailerMagic {
		return errNoFooter
	}
	idxOff := int64(binary.LittleEndian.Uint64(tr[:8]))
	if idxOff < hdrLen || idxOff > r.size-int64(trailerLen) {
		return fmt.Errorf("tracefile: index offset %d outside the file", idxOff)
	}
	idx := make([]byte, r.size-int64(trailerLen)-idxOff)
	if _, err := r.src.ReadAt(idx, idxOff); err != nil {
		return fmt.Errorf("tracefile: reading index: %w", err)
	}
	if len(idx) < 8 || string(idx[:4]) != indexMagic {
		return fmt.Errorf("tracefile: bad index magic")
	}
	count := int64(binary.LittleEndian.Uint32(idx[4:8]))
	want := 8 + count*indexEntryLen + 4
	if int64(len(idx)) != want {
		return fmt.Errorf("tracefile: index block is %d bytes, %d entries want %d", len(idx), count, want)
	}
	body := idx[8 : len(idx)-4]
	crc := binary.LittleEndian.Uint32(idx[len(idx)-4:])
	if got := crc32.ChecksumIEEE(body); got != crc {
		return fmt.Errorf("tracefile: index CRC mismatch (stored %08x, computed %08x)", crc, got)
	}
	entries := make([]indexEntry, 0, count)
	for i := int64(0); i < count; i++ {
		e := body[i*indexEntryLen:]
		entries = append(entries, indexEntry{
			offset: int64(binary.LittleEndian.Uint64(e[0:8])),
			kind:   e[8],
			count:  binary.LittleEndian.Uint32(e[9:13]),
			minT:   int64(binary.LittleEndian.Uint64(e[13:21])),
			maxT:   int64(binary.LittleEndian.Uint64(e[21:29])),
		})
	}
	r.chunks = entries
	return nil
}

// scan rebuilds the chunk index by walking the chunk stream from the
// end of the header, verifying each chunk's CRC. It keeps every intact
// chunk before the first damage and returns a descriptive error for
// the damage itself (nil when the stream simply ends cleanly).
func (r *Reader) scan(hdrLen int64) error {
	r.chunks = r.chunks[:0]
	off := hdrLen
	hdr := make([]byte, chunkHeaderLen)
	for off < r.size {
		if r.size-off < int64(len(indexMagic)) {
			return fmt.Errorf("tracefile: %d trailing bytes at offset %d are not a chunk", r.size-off, off)
		}
		if _, err := r.src.ReadAt(hdr[:4], off); err != nil {
			return fmt.Errorf("tracefile: reading chunk magic at offset %d: %w", off, err)
		}
		if string(hdr[:4]) == indexMagic {
			// The chunk stream ended at a footer the trailer no longer
			// points to (e.g. the file was truncated mid-footer); the
			// chunks themselves are all accounted for.
			return nil
		}
		if string(hdr[:4]) != chunkMagic {
			return fmt.Errorf("tracefile: bad chunk magic %q at offset %d", hdr[:4], off)
		}
		if r.size-off < int64(chunkHeaderLen) {
			return fmt.Errorf("tracefile: truncated chunk header at offset %d", off)
		}
		if _, err := r.src.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("tracefile: reading chunk header at offset %d: %w", off, err)
		}
		e, storedLen, err := parseChunkHeader(hdr, off)
		if err != nil {
			return err
		}
		if r.size-off-int64(chunkHeaderLen) < storedLen {
			return fmt.Errorf("tracefile: chunk at offset %d truncated (%d of %d payload bytes)",
				off, r.size-off-int64(chunkHeaderLen), storedLen)
		}
		// Verify the payload now: a scan is only trustworthy if the
		// chunks it indexes actually decode later.
		payload := make([]byte, storedLen)
		if _, err := r.src.ReadAt(payload, off+int64(chunkHeaderLen)); err != nil {
			return fmt.Errorf("tracefile: reading chunk payload at offset %d: %w", off, err)
		}
		stored := binary.LittleEndian.Uint32(hdr[44:48])
		if got := crc32.ChecksumIEEE(payload); got != stored {
			return fmt.Errorf("tracefile: chunk at offset %d CRC mismatch (stored %08x, computed %08x)", off, stored, got)
		}
		r.chunks = append(r.chunks, e)
		off += int64(chunkHeaderLen) + storedLen
	}
	return nil
}

// parseChunkHeader validates the fixed fields of one chunk header at
// the given offset and returns its index entry and stored length.
func parseChunkHeader(hdr []byte, off int64) (indexEntry, int64, error) {
	rawLen := binary.LittleEndian.Uint32(hdr[36:40])
	storedLen := binary.LittleEndian.Uint32(hdr[40:44])
	if rawLen > maxChunkRaw || storedLen > maxChunkRaw {
		return indexEntry{}, 0, fmt.Errorf("tracefile: chunk at offset %d declares %d/%d payload bytes, above the %d limit",
			off, storedLen, rawLen, maxChunkRaw)
	}
	if storedLen > rawLen {
		return indexEntry{}, 0, fmt.Errorf("tracefile: chunk at offset %d stores %d bytes for %d raw bytes", off, storedLen, rawLen)
	}
	return indexEntry{
		offset: off,
		kind:   hdr[4],
		count:  binary.LittleEndian.Uint32(hdr[32:36]),
		minT:   int64(binary.LittleEndian.Uint64(hdr[16:24])),
		maxT:   int64(binary.LittleEndian.Uint64(hdr[24:32])),
	}, int64(storedLen), nil
}

// Schema returns the declared series.
func (r *Reader) Schema() []SeriesDef { return r.schema }

// Compressed reports whether the file was written with compression
// enabled.
func (r *Reader) Compressed() bool { return r.flags&flagCompressed != 0 }

// NumChunks returns how many chunks the reader can serve.
func (r *Reader) NumChunks() int { return len(r.chunks) }

// Incomplete returns nil for a fully indexed file, or a descriptive
// error when the index footer was missing/damaged or the rescan
// stopped at corruption; the reader still serves every chunk before
// the damage.
func (r *Reader) Incomplete() error { return r.incomplete }

// Counts returns the total samples and events across the served
// chunks.
func (r *Reader) Counts() (samples, events uint64) {
	for _, c := range r.chunks {
		switch c.kind {
		case kindSamples:
			samples += uint64(c.count)
		case kindEvents:
			events += uint64(c.count)
		}
	}
	return samples, events
}

// TimeRange returns the earliest and latest record time across the
// served chunks, and false when the file has no records.
func (r *Reader) TimeRange() (from, to time.Duration, ok bool) {
	for _, c := range r.chunks {
		if c.count == 0 {
			continue
		}
		if !ok || time.Duration(c.minT) < from {
			from = time.Duration(c.minT)
		}
		if !ok || time.Duration(c.maxT) > to {
			to = time.Duration(c.maxT)
		}
		ok = true
	}
	return from, to, ok
}

// Window selects records by time. The zero value selects everything;
// From/To bound inclusively, with To == 0 meaning "no upper bound"
// when From is also their zero default — use Until for an explicit
// upper bound of zero.
type Window struct {
	From time.Duration
	To   time.Duration // 0 = unbounded
}

// contains reports whether t lies in the window.
func (w Window) contains(t int64) bool {
	if t < int64(w.From) {
		return false
	}
	return w.To == 0 || t <= int64(w.To)
}

// overlaps reports whether the chunk time range intersects the window.
func (w Window) overlaps(minT, maxT int64) bool {
	if maxT < int64(w.From) {
		return false
	}
	return w.To == 0 || minT <= int64(w.To)
}

// ErrStop, returned from a Samples or Events callback, ends the
// iteration early without an error.
var ErrStop = fmt.Errorf("tracefile: stop iteration")

// Samples streams every sample record in the window, in file order,
// fetching and decoding only the chunks whose time range overlaps it —
// the random-access path behind windowed reports and thermtrace cat.
// The callback may return ErrStop to end early.
func (r *Reader) Samples(win Window, fn func(s Sample) error) error {
	var dec decoder
	for _, c := range r.chunks {
		if c.kind != kindSamples || c.count == 0 || !win.overlaps(c.minT, c.maxT) {
			continue
		}
		if err := r.decodeChunk(c, &dec, func(series int, t int64, bits uint64) error {
			if !win.contains(t) {
				return nil
			}
			return fn(Sample{Series: series, T: time.Duration(t), V: math.Float64frombits(bits)})
		}, nil); err != nil {
			if err == ErrStop {
				return nil
			}
			return err
		}
	}
	return nil
}

// Events streams every event record in the window, in file order. The
// callback may return ErrStop to end early.
func (r *Reader) Events(win Window, fn func(e Event) error) error {
	var dec decoder
	for _, c := range r.chunks {
		if c.kind != kindEvents || c.count == 0 || !win.overlaps(c.minT, c.maxT) {
			continue
		}
		if err := r.decodeChunk(c, &dec, nil, func(t int64, text string) error {
			if !win.contains(t) {
				return nil
			}
			return fn(Event{T: time.Duration(t), Text: text})
		}); err != nil {
			if err == ErrStop {
				return nil
			}
			return err
		}
	}
	return nil
}

// ReadRecorder loads the windowed samples into an in-memory
// trace.Recorder keyed by the schema's series names — the bridge back
// to every existing summary and report helper. Use the streaming
// Samples for files larger than RAM.
func (r *Reader) ReadRecorder(win Window) (*trace.Recorder, error) {
	rec := trace.NewRecorder()
	err := r.Samples(win, func(s Sample) error {
		rec.Record(r.schema[s.Series].Name, s.T, s.V)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// decoder holds the reusable scratch buffers of chunk decoding.
type decoder struct {
	stored []byte
	raw    []byte
}

// decodeChunk fetches, checksums, decompresses and decodes one chunk,
// dispatching records to the sample or event callback.
func (r *Reader) decodeChunk(e indexEntry, dec *decoder,
	onSample func(series int, t int64, bits uint64) error,
	onEvent func(t int64, text string) error) error {

	hdr := make([]byte, chunkHeaderLen)
	if _, err := r.src.ReadAt(hdr, e.offset); err != nil {
		return fmt.Errorf("tracefile: reading chunk header at offset %d: %w", e.offset, err)
	}
	if string(hdr[:4]) != chunkMagic {
		return fmt.Errorf("tracefile: bad chunk magic %q at offset %d", hdr[:4], e.offset)
	}
	_, storedLen, err := parseChunkHeader(hdr, e.offset)
	if err != nil {
		return err
	}
	if e.offset+int64(chunkHeaderLen)+storedLen > r.size {
		return fmt.Errorf("tracefile: chunk at offset %d overruns the file", e.offset)
	}
	rawLen := binary.LittleEndian.Uint32(hdr[36:40])
	crc := binary.LittleEndian.Uint32(hdr[44:48])
	baseT := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	count := binary.LittleEndian.Uint32(hdr[32:36])
	compressed := hdr[5]&flagCompressed != 0

	if cap(dec.stored) < int(storedLen) {
		dec.stored = make([]byte, storedLen)
	}
	stored := dec.stored[:storedLen]
	if _, err := r.src.ReadAt(stored, e.offset+int64(chunkHeaderLen)); err != nil {
		return fmt.Errorf("tracefile: reading chunk payload at offset %d: %w", e.offset, err)
	}
	if got := crc32.ChecksumIEEE(stored); got != crc {
		return fmt.Errorf("tracefile: chunk at offset %d CRC mismatch (stored %08x, computed %08x)", e.offset, crc, got)
	}
	raw := stored
	if compressed {
		if cap(dec.raw) < int(rawLen) {
			dec.raw = make([]byte, rawLen)
		}
		raw = dec.raw[:rawLen]
		fr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(fr, raw); err != nil {
			return fmt.Errorf("tracefile: decompressing chunk at offset %d: %w", e.offset, err)
		}
		// A trailing byte would mean rawLen lied; one extra read tells.
		var one [1]byte
		if n, _ := fr.Read(one[:]); n != 0 {
			return fmt.Errorf("tracefile: chunk at offset %d decompresses past its declared %d bytes", e.offset, rawLen)
		}
		fr.Close()
	} else if int64(rawLen) != storedLen {
		return fmt.Errorf("tracefile: uncompressed chunk at offset %d declares raw %d != stored %d", e.offset, rawLen, storedLen)
	}

	switch hdr[4] {
	case kindSamples:
		if onSample == nil {
			return nil
		}
		return decodeSamples(raw, baseT, count, len(r.schema), e.offset, onSample)
	case kindEvents:
		if onEvent == nil {
			return nil
		}
		return decodeEvents(raw, baseT, count, e.offset, onEvent)
	default:
		// Unknown kind: written by a future revision; skip (the
		// forward-compat rule).
		return nil
	}
}

// decodeSamples decodes one sample chunk payload. Any malformed record
// returns a descriptive error; the decoder never panics on corrupt
// input.
func decodeSamples(raw []byte, baseT int64, count uint32, nSeries int, off int64,
	fn func(series int, t int64, bits uint64) error) error {
	prevBits := make([]uint64, nSeries)
	prevT := baseT
	for i := uint32(0); i < count; i++ {
		series, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("tracefile: chunk at offset %d: malformed series id in record %d", off, i)
		}
		raw = raw[n:]
		if series >= uint64(nSeries) {
			return fmt.Errorf("tracefile: chunk at offset %d: record %d names series %d of %d declared", off, i, series, nSeries)
		}
		du, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("tracefile: chunk at offset %d: malformed time delta in record %d", off, i)
		}
		raw = raw[n:]
		xor, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("tracefile: chunk at offset %d: malformed value in record %d", off, i)
		}
		raw = raw[n:]
		prevT += unzigzag(du)
		if i == 0 {
			prevT = baseT + unzigzag(du) // first delta is against the base time
		}
		bits := prevBits[series] ^ xor
		prevBits[series] = bits
		if err := fn(int(series), prevT, bits); err != nil {
			return err
		}
	}
	if len(raw) != 0 {
		return fmt.Errorf("tracefile: chunk at offset %d: %d trailing bytes after %d records", off, len(raw), count)
	}
	return nil
}

// decodeEvents decodes one event chunk payload.
func decodeEvents(raw []byte, baseT int64, count uint32, off int64,
	fn func(t int64, text string) error) error {
	prevT := baseT
	for i := uint32(0); i < count; i++ {
		du, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("tracefile: chunk at offset %d: malformed time delta in event %d", off, i)
		}
		raw = raw[n:]
		ln, n := binary.Uvarint(raw)
		if n <= 0 {
			return fmt.Errorf("tracefile: chunk at offset %d: malformed length in event %d", off, i)
		}
		raw = raw[n:]
		if ln > uint64(len(raw)) {
			return fmt.Errorf("tracefile: chunk at offset %d: event %d text overruns the chunk", off, i)
		}
		prevT += unzigzag(du)
		if i == 0 {
			prevT = baseT + unzigzag(du)
		}
		if err := fn(prevT, string(raw[:ln])); err != nil {
			return err
		}
		raw = raw[ln:]
	}
	if len(raw) != 0 {
		return fmt.Errorf("tracefile: chunk at offset %d: %d trailing bytes after %d events", off, len(raw), count)
	}
	return nil
}
