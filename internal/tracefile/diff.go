package tracefile

import (
	"fmt"
	"math"
	"time"
)

// Divergence pinpoints the first place two traces disagree.
type Divergence struct {
	// Kind is "schema", "sample", "event" or "count".
	Kind string
	// Index is the record ordinal within its stream (samples and
	// events count separately).
	Index uint64
	// T is the record time in trace A (or B when A ran out first).
	T time.Duration
	// Series names the sample's series, for Kind "sample".
	Series string
	// A and B are the diverging sample values, for Kind "sample".
	A, B float64
	// TextA and TextB are the diverging texts, for Kind "event", or a
	// human description for "schema" and "count".
	TextA, TextB string
}

// String renders the divergence for error messages and thermtrace
// output.
func (d Divergence) String() string {
	switch d.Kind {
	case "sample":
		return fmt.Sprintf("sample %d (t=%s, series %s): %v != %v (delta %g)",
			d.Index, d.T, d.Series, d.A, d.B, math.Abs(d.A-d.B))
	case "event":
		return fmt.Sprintf("event %d (t=%s): %q != %q", d.Index, d.T, d.TextA, d.TextB)
	default:
		return fmt.Sprintf("%s: %s != %s", d.Kind, d.TextA, d.TextB)
	}
}

// DiffResult reports a value-level comparison of two traces.
type DiffResult struct {
	// SchemaEqual reports whether the declared series (names and
	// units, in order) match.
	SchemaEqual bool
	// SamplesA/B and EventsA/B count the records compared on each
	// side.
	SamplesA, SamplesB uint64
	EventsA, EventsB   uint64
	// MaxDelta is the largest absolute sample value difference seen
	// across aligned records (0 for identical traces).
	MaxDelta float64
	// First is the first divergence beyond the tolerance, nil when the
	// traces match.
	First *Divergence
}

// Equal reports whether the traces matched within the tolerance the
// diff ran with.
func (r *DiffResult) Equal() bool { return r.SchemaEqual && r.First == nil }

// Diff compares two traces value by value: schemas must match, sample
// records must align one to one on series and timestamp with values
// within tol (absolute), and event records must match exactly. It
// streams chunk by chunk, so traces larger than RAM diff fine. tol 0
// demands bit-exact values. The first divergence is recorded; MaxDelta
// keeps accumulating across in-tolerance records either way.
func Diff(a, b *Reader, tol float64) (*DiffResult, error) {
	res := &DiffResult{SchemaEqual: schemaEqual(a.schema, b.schema)}
	if !res.SchemaEqual {
		res.First = &Divergence{
			Kind:  "schema",
			TextA: describeSchema(a.schema),
			TextB: describeSchema(b.schema),
		}
	}
	if err := diffSamples(a, b, tol, res); err != nil {
		return nil, err
	}
	if err := diffEvents(a, b, res); err != nil {
		return nil, err
	}
	return res, nil
}

func schemaEqual(a, b []SeriesDef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func describeSchema(s []SeriesDef) string {
	return fmt.Sprintf("%d series %v", len(s), s)
}

func diffSamples(a, b *Reader, tol float64, res *DiffResult) error {
	ia, ib := newSampleIter(a), newSampleIter(b)
	for {
		sa, oka, err := ia.next()
		if err != nil {
			return err
		}
		sb, okb, err := ib.next()
		if err != nil {
			return err
		}
		if !oka && !okb {
			return nil
		}
		if oka {
			res.SamplesA++
		}
		if okb {
			res.SamplesB++
		}
		if oka != okb {
			// One side ran out: drain the other for its count, then
			// report the length mismatch.
			long := ia
			t := sa.T
			if okb {
				long = ib
				t = sb.T
			}
			n := res.SamplesA
			if okb {
				n = res.SamplesB
			}
			for {
				_, ok, err := long.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if oka {
					res.SamplesA++
				} else {
					res.SamplesB++
				}
			}
			if res.First == nil {
				res.First = &Divergence{
					Kind: "count", Index: n - 1, T: t,
					TextA: fmt.Sprintf("%d samples", res.SamplesA),
					TextB: fmt.Sprintf("%d samples", res.SamplesB),
				}
			}
			return nil
		}
		delta := math.Abs(sa.V - sb.V)
		aligned := sa.Series == sb.Series && sa.T == sb.T
		// NaN == NaN counts as equal here: a diff tool that flags every
		// unsampled sensor as a divergence is useless for goldens.
		same := sa.V == sb.V || (math.IsNaN(sa.V) && math.IsNaN(sb.V))
		if same {
			delta = 0
		}
		if delta > res.MaxDelta && !math.IsNaN(delta) {
			res.MaxDelta = delta
		}
		if res.First != nil {
			continue
		}
		if !aligned {
			res.First = &Divergence{
				Kind: "sample", Index: res.SamplesA - 1, T: sa.T,
				Series: a.schema[sa.Series].Name, A: sa.V, B: sb.V,
				TextA: fmt.Sprintf("%s@%s", a.schema[sa.Series].Name, sa.T),
				TextB: fmt.Sprintf("%s@%s", b.schema[min(sb.Series, len(b.schema)-1)].Name, sb.T),
			}
			continue
		}
		if !same && (delta > tol || math.IsNaN(delta)) {
			res.First = &Divergence{
				Kind: "sample", Index: res.SamplesA - 1, T: sa.T,
				Series: a.schema[sa.Series].Name, A: sa.V, B: sb.V,
			}
		}
	}
}

func diffEvents(a, b *Reader, res *DiffResult) error {
	ia, ib := newEventIter(a), newEventIter(b)
	for {
		ea, oka, err := ia.next()
		if err != nil {
			return err
		}
		eb, okb, err := ib.next()
		if err != nil {
			return err
		}
		if !oka && !okb {
			return nil
		}
		if oka {
			res.EventsA++
		}
		if okb {
			res.EventsB++
		}
		if oka != okb {
			long := ia
			t := ea.T
			if okb {
				long = ib
				t = eb.T
			}
			n := res.EventsA
			if okb {
				n = res.EventsB
			}
			for {
				_, ok, err := long.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if oka {
					res.EventsA++
				} else {
					res.EventsB++
				}
			}
			if res.First == nil {
				res.First = &Divergence{
					Kind: "count", Index: n - 1, T: t,
					TextA: fmt.Sprintf("%d events", res.EventsA),
					TextB: fmt.Sprintf("%d events", res.EventsB),
				}
			}
			return nil
		}
		if res.First == nil && (ea.T != eb.T || ea.Text != eb.Text) {
			res.First = &Divergence{
				Kind: "event", Index: res.EventsA - 1, T: ea.T,
				TextA: ea.Text, TextB: eb.Text,
			}
		}
	}
}

// sampleIter pulls samples one at a time, decoding one chunk ahead —
// the cursor the lockstep diff needs on top of the callback Reader.
type sampleIter struct {
	r   *Reader
	ci  int
	buf []Sample
	bi  int
	dec decoder
}

func newSampleIter(r *Reader) *sampleIter { return &sampleIter{r: r} }

func (it *sampleIter) next() (Sample, bool, error) {
	for it.bi >= len(it.buf) {
		// Advance to the next sample chunk.
		for it.ci < len(it.r.chunks) && it.r.chunks[it.ci].kind != kindSamples {
			it.ci++
		}
		if it.ci >= len(it.r.chunks) {
			return Sample{}, false, nil
		}
		c := it.r.chunks[it.ci]
		it.ci++
		it.buf = it.buf[:0]
		it.bi = 0
		err := it.r.decodeChunk(c, &it.dec, func(series int, t int64, bits uint64) error {
			it.buf = append(it.buf, Sample{Series: series, T: time.Duration(t), V: math.Float64frombits(bits)})
			return nil
		}, nil)
		if err != nil {
			return Sample{}, false, err
		}
	}
	s := it.buf[it.bi]
	it.bi++
	return s, true, nil
}

// eventIter is the event-stream counterpart of sampleIter.
type eventIter struct {
	r   *Reader
	ci  int
	buf []Event
	bi  int
	dec decoder
}

func newEventIter(r *Reader) *eventIter { return &eventIter{r: r} }

func (it *eventIter) next() (Event, bool, error) {
	for it.bi >= len(it.buf) {
		for it.ci < len(it.r.chunks) && it.r.chunks[it.ci].kind != kindEvents {
			it.ci++
		}
		if it.ci >= len(it.r.chunks) {
			return Event{}, false, nil
		}
		c := it.r.chunks[it.ci]
		it.ci++
		it.buf = it.buf[:0]
		it.bi = 0
		err := it.r.decodeChunk(c, &it.dec, nil, func(t int64, text string) error {
			it.buf = append(it.buf, Event{T: time.Duration(t), Text: text})
			return nil
		})
		if err != nil {
			return Event{}, false, err
		}
	}
	e := it.buf[it.bi]
	it.bi++
	return e, true, nil
}
