// Package tracefile is the out-of-core binary trace format behind
// long-horizon campaigns: a streaming, chunked, optionally compressed
// time-series file (extension .tct) that replaces in-memory
// trace.Series accumulation when a run is longer than RAM. A campaign
// of millions of rounds streams through a fixed-size buffer to disk;
// reports, golden tests and the cmd/thermtrace tool read it back with
// random access by time window.
//
// # On-disk layout (version 1; see DESIGN.md §12)
//
//	file   := header chunk* [index trailer]
//	header := magic8 "THERMTCT" | version u16 | flags u16 |
//	          schemaLen u32 | schema
//	schema := count u16 | seriesDef*
//	seriesDef := recLen u16 | nameLen u16 | name | unitLen u16 | unit
//	chunk  := magic4 "TCHK" | kind u8 | flags u8 | reserved u16 |
//	          baseTime i64 | minTime i64 | maxTime i64 |
//	          count u32 | rawLen u32 | storedLen u32 | crc u32 |
//	          payload[storedLen]
//	index  := magic4 "TIDX" | count u32 | entry* | crc u32
//	entry  := offset u64 | kind u8 | count u32 | minTime i64 | maxTime i64
//	trailer:= indexOffset u64 | magic8 "THERMEND"
//
// All fixed-width integers are little-endian. Chunk payloads are
// delta-encoded records (see writer.go), DEFLATE-compressed when the
// chunk's flag bit 0 is set, and guarded by an IEEE CRC32 of the
// stored bytes. The index footer gives O(1) seek to any time window; a
// truncated file that lost it is still readable by rescanning the
// chunks (see reader.go).
//
// Forward compatibility: readers reject an unknown major version, skip
// unrecognized trailing bytes of a seriesDef (recLen is authoritative),
// ignore header flag bits they do not know, and skip chunks of an
// unknown kind. Writers never reuse retired field meanings; new
// per-series attributes append inside seriesDef, new record kinds take
// a new chunk kind byte.
package tracefile

import (
	"encoding/binary"
	"fmt"
	"time"
)

// File structure constants. The magics are distinct for every block
// kind so a rescanning reader can tell a chunk boundary from the index
// footer without trusting any length field.
const (
	fileMagic    = "THERMTCT"
	chunkMagic   = "TCHK"
	indexMagic   = "TIDX"
	trailerMagic = "THERMEND"

	// Version is the format version this package writes.
	Version = 1

	// header flag bits.
	flagCompressed = 1 << 0

	// chunk kinds. Readers skip unknown kinds, so adding one is a
	// forward-compatible change.
	kindSamples = 1
	kindEvents  = 2

	fixedHeaderLen = 8 + 2 + 2 + 4 // magic, version, flags, schemaLen
	chunkHeaderLen = 4 + 1 + 1 + 2 + 8 + 8 + 8 + 4 + 4 + 4 + 4
	indexEntryLen  = 8 + 1 + 4 + 8 + 8
	trailerLen     = 8 + 8

	// maxChunkRaw bounds both the stored and decompressed size of one
	// chunk. A corrupt or hostile length field must not drive a huge
	// allocation: anything above this is rejected as malformed.
	maxChunkRaw = 1 << 24

	// maxSchemaLen bounds the declared schema block for the same
	// reason.
	maxSchemaLen = 1 << 20
)

// SeriesDef declares one series in the file header: a name and the
// physical unit of its samples, mirroring the //thermlint:unit tags the
// unitsafe analyzer tracks in code ("degC", "percent", "GHz", "W").
type SeriesDef struct {
	Name string
	Unit string
}

// Sample is one decoded sample record.
type Sample struct {
	Series int
	T      time.Duration
	V      float64
}

// Event is one decoded event record: a timestamped line of text.
// Golden step traces are stored as event streams.
type Event struct {
	T    time.Duration
	Text string
}

// indexEntry locates one chunk for random access.
type indexEntry struct {
	offset int64
	kind   byte
	count  uint32
	minT   int64
	maxT   int64
}

// encodeHeader renders the file header for the given flags and schema.
func encodeHeader(flags uint16, schema []SeriesDef) ([]byte, error) {
	var sb []byte
	sb = binary.LittleEndian.AppendUint16(sb, uint16(len(schema)))
	for _, s := range schema {
		if len(s.Name) > 0xffff || len(s.Unit) > 0xffff {
			return nil, fmt.Errorf("tracefile: series name/unit longer than 65535 bytes")
		}
		rec := 2 + len(s.Name) + 2 + len(s.Unit)
		if rec > 0xffff {
			return nil, fmt.Errorf("tracefile: series definition %q too large", s.Name)
		}
		sb = binary.LittleEndian.AppendUint16(sb, uint16(rec))
		sb = binary.LittleEndian.AppendUint16(sb, uint16(len(s.Name)))
		sb = append(sb, s.Name...)
		sb = binary.LittleEndian.AppendUint16(sb, uint16(len(s.Unit)))
		sb = append(sb, s.Unit...)
	}
	if len(schema) > 0xffff {
		return nil, fmt.Errorf("tracefile: %d series exceed the schema limit", len(schema))
	}
	if len(sb) > maxSchemaLen {
		return nil, fmt.Errorf("tracefile: schema block %d bytes exceeds the %d limit", len(sb), maxSchemaLen)
	}
	h := make([]byte, 0, fixedHeaderLen+len(sb))
	h = append(h, fileMagic...)
	h = binary.LittleEndian.AppendUint16(h, Version)
	h = binary.LittleEndian.AppendUint16(h, flags)
	h = binary.LittleEndian.AppendUint32(h, uint32(len(sb)))
	return append(h, sb...), nil
}

// parseHeader decodes the fixed header plus schema block from the
// start of buf and returns the flags, schema and header length.
func parseHeader(buf []byte) (flags uint16, schema []SeriesDef, n int, err error) {
	if len(buf) < fixedHeaderLen {
		return 0, nil, 0, fmt.Errorf("tracefile: file shorter than the %d-byte header", fixedHeaderLen)
	}
	if string(buf[:8]) != fileMagic {
		return 0, nil, 0, fmt.Errorf("tracefile: bad magic %q (not a trace file)", buf[:8])
	}
	version := binary.LittleEndian.Uint16(buf[8:10])
	if version != Version {
		return 0, nil, 0, fmt.Errorf("tracefile: unknown format version %d (this reader speaks %d)", version, Version)
	}
	flags = binary.LittleEndian.Uint16(buf[10:12])
	schemaLen := binary.LittleEndian.Uint32(buf[12:16])
	if schemaLen > maxSchemaLen {
		return 0, nil, 0, fmt.Errorf("tracefile: schema block %d bytes exceeds the %d limit", schemaLen, maxSchemaLen)
	}
	n = fixedHeaderLen + int(schemaLen)
	if len(buf) < n {
		return 0, nil, 0, fmt.Errorf("tracefile: truncated schema block (%d of %d bytes)", len(buf)-fixedHeaderLen, schemaLen)
	}
	sb := buf[fixedHeaderLen:n]
	if len(sb) < 2 {
		return 0, nil, 0, fmt.Errorf("tracefile: schema block too short for its series count")
	}
	count := int(binary.LittleEndian.Uint16(sb[:2]))
	sb = sb[2:]
	schema = make([]SeriesDef, 0, count)
	for i := 0; i < count; i++ {
		if len(sb) < 2 {
			return 0, nil, 0, fmt.Errorf("tracefile: truncated series definition %d of %d", i, count)
		}
		rec := int(binary.LittleEndian.Uint16(sb[:2]))
		if len(sb) < 2+rec {
			return 0, nil, 0, fmt.Errorf("tracefile: series definition %d overruns the schema block", i)
		}
		body := sb[2 : 2+rec]
		sb = sb[2+rec:]
		if len(body) < 2 {
			return 0, nil, 0, fmt.Errorf("tracefile: series definition %d too short for its name", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[:2]))
		body = body[2:]
		if len(body) < nameLen {
			return 0, nil, 0, fmt.Errorf("tracefile: series definition %d name overruns its record", i)
		}
		name := string(body[:nameLen])
		body = body[nameLen:]
		if len(body) < 2 {
			return 0, nil, 0, fmt.Errorf("tracefile: series definition %d too short for its unit", i)
		}
		unitLen := int(binary.LittleEndian.Uint16(body[:2]))
		body = body[2:]
		if len(body) < unitLen {
			return 0, nil, 0, fmt.Errorf("tracefile: series definition %d unit overruns its record", i)
		}
		unit := string(body[:unitLen])
		// Trailing bytes of the record belong to a future format
		// revision; skip them (the forward-compat rule).
		schema = append(schema, SeriesDef{Name: name, Unit: unit})
	}
	return flags, schema, n, nil
}

// zigzag encodes a signed delta as an unsigned varint-friendly value:
// small magnitudes of either sign stay small.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
