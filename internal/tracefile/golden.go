package tracefile

import (
	"bytes"
	"fmt"
	"time"
)

// lineTime maps a line ordinal to its event timestamp.
func lineTime(i int) time.Duration { return time.Duration(i) }

// EncodeEvents renders lines as a complete event-only trace image, one
// Event per line with t = line ordinal. This is how golden step traces
// are stored: the text contract of the old .trace files, carried in
// the binary format so every go test run exercises the writer, reader
// and diff together.
func EncodeEvents(lines []string) ([]byte, error) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, nil, nil)
	if err != nil {
		return nil, err
	}
	for i, l := range lines {
		w.Event(lineTime(i), l)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEvents reads back the lines of an event-only trace image.
func DecodeEvents(b []byte) ([]string, error) {
	r, err := NewBytesReader(b)
	if err != nil {
		return nil, err
	}
	if err := r.Incomplete(); err != nil {
		return nil, err
	}
	var lines []string
	err = r.Events(Window{}, func(e Event) error {
		lines = append(lines, e.Text)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lines, nil
}

// DiffEventLines compares produced lines against a golden trace image
// via the same Diff primitives thermtrace uses, returning nil when
// they match and a descriptive error naming the first divergence when
// not.
func DiffEventLines(golden []byte, lines []string) error {
	gr, err := NewBytesReader(golden)
	if err != nil {
		return fmt.Errorf("golden trace unreadable: %w", err)
	}
	if err := gr.Incomplete(); err != nil {
		return fmt.Errorf("golden trace incomplete: %w", err)
	}
	img, err := EncodeEvents(lines)
	if err != nil {
		return fmt.Errorf("encoding produced trace: %w", err)
	}
	pr, err := NewBytesReader(img)
	if err != nil {
		return fmt.Errorf("re-reading produced trace: %w", err)
	}
	res, err := Diff(gr, pr, 0)
	if err != nil {
		return err
	}
	if !res.Equal() {
		return fmt.Errorf("trace differs from golden (%d golden / %d produced events): %s",
			res.EventsA, res.EventsB, res.First)
	}
	return nil
}
