package tracefile

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Sticky writer errors. Sentinels, not formatted errors: Append sits on
// the cluster step path (a hotalloc root) and must not construct
// anything per call.
var (
	// ErrSeriesRange reports an Append with a series index outside the
	// declared schema.
	ErrSeriesRange = errors.New("tracefile: series index outside the declared schema")
	// ErrRecordTooLarge reports an Event whose text cannot fit in one
	// chunk.
	ErrRecordTooLarge = errors.New("tracefile: event record larger than a chunk")
	// ErrClosed reports use of a closed writer.
	ErrClosed = errors.New("tracefile: writer is closed")
)

// Options tunes a Writer. The zero value selects the defaults.
type Options struct {
	// ChunkBytes is the raw (uncompressed) payload size at which a
	// chunk is sealed. 0 means 64 KiB.
	ChunkBytes int
	// Buffers is the depth of the bounded buffer between the appending
	// goroutine and the background flusher: how many sealed chunks may
	// be in flight before Append blocks (backpressure, never data
	// loss). 0 means 4.
	Buffers int
	// NoCompress disables DEFLATE chunk compression.
	NoCompress bool
}

// maxRecordLen bounds one encoded sample record: three varints of at
// most 10 bytes each, rounded up. Chunk buffers carry this much spare
// capacity so encoding never grows the buffer.
const maxRecordLen = 32

const defaultChunkBytes = 64 << 10

// chunk is one in-flight chunk buffer, cycled between the appender and
// the flusher through the free/work channels.
type chunk struct {
	buf   []byte // encoded records; cap is sealBytes+maxRecordLen
	kind  byte
	count uint32
	base  int64
	minT  int64
	maxT  int64
}

func (c *chunk) reset() {
	c.buf = c.buf[:0]
	c.kind = 0
	c.count = 0
}

// Writer streams samples and events to an underlying io.Writer in the
// tracefile format. Append and Event are cheap and allocation-free in
// steady state: records are delta-encoded into a pre-sized chunk
// buffer, and sealed chunks are handed to a background flusher (CRC,
// optional compression, the actual write) over a bounded buffer, so
// the simulation step path never waits on the disk unless the flusher
// falls a full buffer behind.
//
// A Writer is not safe for concurrent use: the cluster feeds it from
// the serial controller phase, which both serializes access and keeps
// the byte stream identical at every worker count. Errors stick: the
// first encode, write or compression failure is reported by Close
// (and every later Append is a no-op), mirroring bufio.Writer.
type Writer struct {
	schema   []SeriesDef
	compress bool

	sealBytes int
	cur       *chunk
	free      chan *chunk
	work      chan *chunk
	done      chan struct{}

	// Appender-side encode state, reset at every chunk boundary so each
	// chunk decodes independently of its predecessors.
	prevT    int64
	prevBits []uint64
	err      error // sticky appender-side error
	closed   bool

	// Flusher-owned state. Close reads it only after the flusher has
	// exited (the done channel provides the happens-before edge).
	dst      io.Writer
	off      int64
	index    []indexEntry
	comp     *flate.Writer
	compBuf  sliceWriter
	hdrBuf   [chunkHeaderLen]byte
	werr     error // sticky flusher-side error
	nSamples uint64
	nEvents  uint64
}

// sliceWriter is the flusher's reusable compression sink.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// NewWriter writes the file header for the declared schema to dst and
// returns a Writer streaming chunks to it. The schema is fixed for the
// life of the file: Append addresses series by index into it. dst is
// typically an *os.File; the Writer adds its own chunk-sized batching,
// so no bufio layer is needed.
func NewWriter(dst io.Writer, schema []SeriesDef, opt *Options) (*Writer, error) {
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = defaultChunkBytes
	}
	if o.ChunkBytes < 2*maxRecordLen {
		o.ChunkBytes = 2 * maxRecordLen
	}
	if o.Buffers <= 0 {
		o.Buffers = 4
	}
	var flags uint16
	if !o.NoCompress {
		flags |= flagCompressed
	}
	hdr, err := encodeHeader(flags, schema)
	if err != nil {
		return nil, err
	}
	if _, err := dst.Write(hdr); err != nil {
		return nil, fmt.Errorf("tracefile: writing header: %w", err)
	}
	w := &Writer{
		schema:    append([]SeriesDef(nil), schema...),
		compress:  !o.NoCompress,
		sealBytes: o.ChunkBytes,
		free:      make(chan *chunk, o.Buffers),
		work:      make(chan *chunk, o.Buffers),
		done:      make(chan struct{}),
		prevBits:  make([]uint64, len(schema)),
		dst:       dst,
		off:       int64(len(hdr)),
	}
	for i := 0; i < o.Buffers; i++ {
		w.free <- &chunk{buf: make([]byte, 0, o.ChunkBytes+maxRecordLen)}
	}
	w.cur = <-w.free
	if w.compress {
		// BestSpeed: the delta+varint payload leaves little entropy
		// for higher levels to find, and the flusher competes with
		// the step loop for CPU on single-core hosts.
		w.comp, _ = flate.NewWriter(&w.compBuf, flate.BestSpeed)
	}
	go w.flusher()
	return w, nil
}

// Append records one sample of the series at index series (into the
// schema passed to NewWriter). It never blocks on the disk unless the
// bounded buffer is full, and performs no heap allocation. Errors
// stick and are reported by Close.
func (w *Writer) Append(series int, t time.Duration, v float64) {
	//thermlint:allow errswallow -- bufio.Writer discipline: errors stick in w.err and Close reports them
	if w.err != nil {
		return
	}
	if series < 0 || series >= len(w.prevBits) {
		w.err = ErrSeriesRange
		return
	}
	w.ensure(kindSamples, maxRecordLen)
	c := w.cur
	ts := int64(t)
	if c.count == 0 {
		c.base, c.minT, c.maxT, w.prevT = ts, ts, ts, ts
	}
	n := len(c.buf)
	b := c.buf[n:cap(c.buf)]
	k := binary.PutUvarint(b, uint64(series))
	k += binary.PutUvarint(b[k:], zigzag(ts-w.prevT))
	bits := math.Float64bits(v)
	k += binary.PutUvarint(b[k:], bits^w.prevBits[series])
	w.prevBits[series] = bits
	c.buf = c.buf[:n+k]
	c.count++
	w.prevT = ts
	if ts < c.minT {
		c.minT = ts
	}
	if ts > c.maxT {
		c.maxT = ts
	}
}

// Event records one timestamped line of text (a fail-safe edge, a fault
// transition, a golden-trace step line). Events share the file with
// samples but live in their own chunks. Errors stick and are reported
// by Close.
func (w *Writer) Event(t time.Duration, text string) {
	if w.err != nil {
		return
	}
	need := 10 + 10 + len(text)
	if need > w.sealBytes+maxRecordLen {
		w.err = ErrRecordTooLarge
		return
	}
	w.ensure(kindEvents, need)
	c := w.cur
	ts := int64(t)
	if c.count == 0 {
		c.base, c.minT, c.maxT, w.prevT = ts, ts, ts, ts
	}
	n := len(c.buf)
	b := c.buf[n:cap(c.buf)]
	k := binary.PutUvarint(b, zigzag(ts-w.prevT))
	k += binary.PutUvarint(b[k:], uint64(len(text)))
	k += copy(b[k:], text)
	c.buf = c.buf[:n+k]
	c.count++
	w.prevT = ts
	if ts < c.minT {
		c.minT = ts
	}
	if ts > c.maxT {
		c.maxT = ts
	}
}

// ensure seals the current chunk when it is full, or when the record
// kind changes; the next chunk buffer comes from the free list
// (blocking while the flusher drains the bounded buffer).
func (w *Writer) ensure(kind byte, need int) {
	c := w.cur
	if c.count > 0 && (c.kind != kind || cap(c.buf)-len(c.buf) < need || len(c.buf) >= w.sealBytes) {
		w.seal()
		c = w.cur
	}
	c.kind = kind
}

// seal hands the current chunk to the flusher and starts a fresh one.
func (w *Writer) seal() {
	//thermlint:allow onstepblock -- bounded-buffer backpressure by design: blocks only when the flusher is Buffers chunks behind
	w.work <- w.cur
	//thermlint:allow onstepblock -- paired with the send above; the flusher recycles every chunk it drains
	w.cur = <-w.free
	// Every chunk decodes from a clean slate: per-series previous
	// value bits reset so random access never needs a prior chunk.
	for i := range w.prevBits {
		w.prevBits[i] = 0
	}
}

// flusher drains sealed chunks: CRC, optional compression, write.
// After the first write error it keeps draining (Append must never
// deadlock) but stops touching the destination.
func (w *Writer) flusher() {
	defer close(w.done)
	for c := range w.work {
		w.flushChunk(c)
		c.reset()
		w.free <- c
	}
}

func (w *Writer) flushChunk(c *chunk) {
	if w.werr != nil {
		return
	}
	payload := c.buf
	var flags byte
	if w.compress {
		w.compBuf.b = w.compBuf.b[:0]
		w.comp.Reset(&w.compBuf)
		if _, err := w.comp.Write(c.buf); err != nil {
			w.werr = fmt.Errorf("tracefile: compressing chunk: %w", err)
			return
		}
		if err := w.comp.Close(); err != nil {
			w.werr = fmt.Errorf("tracefile: compressing chunk: %w", err)
			return
		}
		// Store incompressible chunks raw; the per-chunk flag records
		// the choice so the reader never guesses.
		if len(w.compBuf.b) < len(c.buf) {
			payload = w.compBuf.b
			flags = flagCompressed
		}
	}
	hdr := w.hdrBuf[:0]
	hdr = append(hdr, chunkMagic...)
	hdr = append(hdr, c.kind, flags, 0, 0)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(c.base))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(c.minT))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(c.maxT))
	hdr = binary.LittleEndian.AppendUint32(hdr, c.count)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(c.buf)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload))
	if _, err := w.dst.Write(hdr); err != nil {
		w.werr = fmt.Errorf("tracefile: writing chunk header: %w", err)
		return
	}
	if _, err := w.dst.Write(payload); err != nil {
		w.werr = fmt.Errorf("tracefile: writing chunk payload: %w", err)
		return
	}
	w.index = append(w.index, indexEntry{
		offset: w.off, kind: c.kind, count: c.count, minT: c.minT, maxT: c.maxT,
	})
	switch c.kind {
	case kindSamples:
		w.nSamples += uint64(c.count)
	case kindEvents:
		w.nEvents += uint64(c.count)
	}
	w.off += int64(len(hdr)) + int64(len(payload))
}

// Close seals the final chunk, waits for the flusher to drain, writes
// the chunk index footer and trailer, and returns the first error the
// writer encountered. The underlying destination is not closed; that
// stays with the caller, as for bufio.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	if w.cur.count > 0 {
		w.work <- w.cur
	}
	// Any Append or Event after Close must no-op (not feed a drained
	// pipeline); the sticky error path already does exactly that.
	defer func() {
		if w.err == nil {
			w.err = ErrClosed
		}
	}()
	close(w.work)
	<-w.done
	if w.err != nil {
		return w.err
	}
	if w.werr != nil {
		return w.werr
	}
	idx := make([]byte, 0, 4+4+len(w.index)*indexEntryLen+4+trailerLen)
	idx = append(idx, indexMagic...)
	idx = binary.LittleEndian.AppendUint32(idx, uint32(len(w.index)))
	entries := len(idx)
	for _, e := range w.index {
		idx = binary.LittleEndian.AppendUint64(idx, uint64(e.offset))
		idx = append(idx, e.kind)
		idx = binary.LittleEndian.AppendUint32(idx, e.count)
		idx = binary.LittleEndian.AppendUint64(idx, uint64(e.minT))
		idx = binary.LittleEndian.AppendUint64(idx, uint64(e.maxT))
	}
	idx = binary.LittleEndian.AppendUint32(idx, crc32.ChecksumIEEE(idx[entries:]))
	idx = binary.LittleEndian.AppendUint64(idx, uint64(w.off))
	idx = append(idx, trailerMagic...)
	if _, err := w.dst.Write(idx); err != nil {
		return fmt.Errorf("tracefile: writing index footer: %w", err)
	}
	return nil
}
