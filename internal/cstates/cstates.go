// Package cstates models ACPI processor sleep states (C-states) — the
// third technique family the paper's §3.2.2 names for the thermal
// control array ("valid sleep states for ACPI-compatible system").
//
// A C-state bounds how deeply the core may sleep while it has nothing
// to run. Deeper states gate more of the clock tree and caches, cutting
// the power burned during the *idle* fraction of time; they cost
// nothing while the core is busy, which makes them the cheapest knob on
// bursty or communication-heavy workloads and a useless one under
// cpu-burn. That asymmetry is exactly the kind of per-technique
// effectiveness difference the unified control array expresses.
//
// The host interface mirrors Linux cpuidle's sysfs shape, reduced to
// one writable attribute: /sys/devices/system/cpu/cpuN/cpuidle/max_state.
package cstates

import (
	"fmt"
	"time"

	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

// State describes one C-state.
type State struct {
	// Name is the conventional label.
	Name string
	// IdleFactor is the idle-residual power multiplier the state
	// grants (1 = no gating).
	IdleFactor float64
	// ExitLatency is the wake cost. At this simulator's step sizes it
	// is informational; a real governor weighs it against expected
	// idle-period length.
	ExitLatency time.Duration
}

// table is built once; Table is called from the actuation path, which
// must not allocate per call.
var table = []State{
	{Name: "C0", IdleFactor: 1.00, ExitLatency: 0},
	{Name: "C1", IdleFactor: 0.70, ExitLatency: 2 * time.Microsecond},
	{Name: "C2", IdleFactor: 0.45, ExitLatency: 50 * time.Microsecond},
	{Name: "C3", IdleFactor: 0.25, ExitLatency: 500 * time.Microsecond},
}

// Table returns the modelled states, shallow to deep: C0 (no idle
// gating beyond the architectural halt), C1, C2, C3. The slice is
// shared — callers must treat it as read-only.
func Table() []State {
	return table
}

// Paths holds the virtual sysfs path of one CPU's cpuidle control.
type Paths struct {
	MaxState string
}

// Mount registers the cpuidle attribute for cpu<idx>, bound to the
// given core. Writing state index i applies state i's idle factor.
func Mount(fs *hwmon.FS, idx int, c *cpu.CPU) Paths {
	p := Paths{MaxState: fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpuidle/max_state", idx)}
	table := Table()
	current := 0
	fs.Register(p.MaxState, hwmon.IntFile{
		Min: 0, Max: int64(len(table) - 1),
		Get: func() int64 { return int64(current) },
		Set: func(v int64) error {
			current = int(v)
			c.SetIdleFactor(table[current].IdleFactor)
			return nil
		},
	})
	return p
}

// Actuator exposes the C-states to the unified controller: mode 0 is C0
// (least effective at reducing idle heat), the last mode the deepest
// state.
type Actuator struct {
	fs   *hwmon.FS
	path string
}

// NewActuator returns an actuator driving the mounted cpuidle file.
func NewActuator(fs *hwmon.FS, p Paths) *Actuator {
	return &Actuator{fs: fs, path: p.MaxState}
}

// Name implements core.Actuator.
func (a *Actuator) Name() string { return "cstates" }

// NumModes implements core.Actuator.
func (a *Actuator) NumModes() int { return len(Table()) }

// Apply implements core.Actuator.
func (a *Actuator) Apply(m int) error {
	if m < 0 {
		m = 0
	}
	if n := len(Table()); m >= n {
		m = n - 1
	}
	return a.fs.WriteInt(a.path, int64(m))
}

// Current implements core.Actuator.
func (a *Actuator) Current() (int, error) {
	v, err := a.fs.ReadInt(a.path)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}
