package cstates

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

func rig() (*hwmon.FS, *cpu.CPU, Paths) {
	fs := hwmon.NewFS()
	c := cpu.New(cpu.DefaultConfig())
	return fs, c, Mount(fs, 0, c)
}

func TestTableShallowToDeep(t *testing.T) {
	tab := Table()
	if len(tab) != 4 || tab[0].Name != "C0" || tab[3].Name != "C3" {
		t.Fatalf("table: %+v", tab)
	}
	for i := 1; i < len(tab); i++ {
		if tab[i].IdleFactor >= tab[i-1].IdleFactor {
			t.Errorf("idle factor not decreasing at %s", tab[i].Name)
		}
		if tab[i].ExitLatency <= tab[i-1].ExitLatency {
			t.Errorf("exit latency not increasing at %s", tab[i].Name)
		}
	}
}

func TestMountAppliesIdleFactor(t *testing.T) {
	fs, c, p := rig()
	if err := fs.WriteInt(p.MaxState, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.IdleFactor(); got != 0.25 {
		t.Errorf("idle factor after C3 = %v", got)
	}
	if v, _ := fs.ReadInt(p.MaxState); v != 3 {
		t.Errorf("readback = %d", v)
	}
	if err := fs.WriteInt(p.MaxState, 9); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestDeepIdleCutsIdlePowerOnly(t *testing.T) {
	fs, c, p := rig()
	c.SetUtilization(0)
	shallowIdle := c.Power(40)
	_ = fs.WriteInt(p.MaxState, 3)
	deepIdle := c.Power(40)
	if deepIdle >= shallowIdle {
		t.Errorf("C3 idle power %v not below C0 idle power %v", deepIdle, shallowIdle)
	}
	// Under full utilization there is no idle residual to gate: the
	// C-state must be free.
	c.SetUtilization(1)
	busyDeep := c.Power(50)
	_ = fs.WriteInt(p.MaxState, 0)
	busyShallow := c.Power(50)
	if busyDeep != busyShallow {
		t.Errorf("C-state changed busy power: %v vs %v", busyDeep, busyShallow)
	}
}

func TestActuatorRoundTrip(t *testing.T) {
	fs, c, p := rig()
	a := NewActuator(fs, p)
	if a.NumModes() != 4 || a.Name() == "" {
		t.Fatal("metadata")
	}
	for m := 0; m < 4; m++ {
		if err := a.Apply(m); err != nil {
			t.Fatal(err)
		}
		got, err := a.Current()
		if err != nil || got != m {
			t.Errorf("Apply(%d) -> %d, %v", m, got, err)
		}
	}
	if err := a.Apply(99); err != nil {
		t.Errorf("Apply clamps: %v", err)
	}
	if c.IdleFactor() != 0.25 {
		t.Errorf("final idle factor %v", c.IdleFactor())
	}
}

func TestActuatorErrorsOnMissingFile(t *testing.T) {
	fs := hwmon.NewFS()
	a := NewActuator(fs, Paths{MaxState: "/sys/devices/system/cpu/cpu0/cpuidle/max_state"})
	if err := a.Apply(1); err == nil {
		t.Error("Apply on an unmounted cpuidle file succeeded")
	}
	if _, err := a.Current(); err == nil {
		t.Error("Current on an unmounted cpuidle file succeeded")
	}
}

// TestActuatorErrorsPropagateFaults mirrors what a fault campaign does
// to the in-band path: the cpuidle attribute starts returning errors
// mid-run, and the actuator must surface every one (the engine's retry
// and fail-safe logic depends on seeing them).
func TestActuatorErrorsPropagateFaults(t *testing.T) {
	fs := hwmon.NewFS()
	p := Paths{MaxState: "/sys/devices/system/cpu/cpu0/cpuidle/max_state"}
	healthy := true
	current := int64(0)
	fs.Register(p.MaxState, hwmon.FuncFile{
		ReadFn: func() (string, error) {
			if !healthy {
				return "", errors.New("cpuidle: bus fault")
			}
			return strconv.FormatInt(current, 10), nil
		},
		WriteFn: func(s string) error {
			if !healthy {
				return errors.New("cpuidle: bus fault")
			}
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return err
			}
			current = v
			return nil
		},
	})
	a := NewActuator(fs, p)
	if err := a.Apply(2); err != nil {
		t.Fatalf("healthy Apply: %v", err)
	}
	healthy = false
	if err := a.Apply(3); err == nil {
		t.Error("Apply during the fault episode succeeded")
	}
	if _, err := a.Current(); err == nil {
		t.Error("Current during the fault episode succeeded")
	}
	healthy = true
	if got, err := a.Current(); err != nil || got != 2 {
		t.Errorf("after recovery Current = %d, %v; want the pre-fault state 2", got, err)
	}
}

// TestFailSafeDrivesDeepestState runs the actuator under the unified
// controller with a dead temperature sensor: escalation must pin the
// C-state array at its end — the deepest state, maximum heat removal —
// exactly as it pins a fan at full duty.
func TestFailSafeDrivesDeepestState(t *testing.T) {
	fs, _, p := rig()
	read := func() (float64, error) { return 0, errors.New("sensor dead") }
	ctl, err := core.NewController(core.DefaultConfig(50), read,
		core.ActuatorBinding{Actuator: NewActuator(fs, p)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		ctl.OnStep(time.Duration(i) * 250 * time.Millisecond)
	}
	if !ctl.FailSafe() {
		t.Fatal("fail-safe never engaged under a dead sensor")
	}
	if v, _ := fs.ReadInt(p.MaxState); v != 3 {
		t.Errorf("fail-safe left max_state at %d, want the deepest state 3", v)
	}
}
