package cstates

import (
	"testing"

	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

func rig() (*hwmon.FS, *cpu.CPU, Paths) {
	fs := hwmon.NewFS()
	c := cpu.New(cpu.DefaultConfig())
	return fs, c, Mount(fs, 0, c)
}

func TestTableShallowToDeep(t *testing.T) {
	tab := Table()
	if len(tab) != 4 || tab[0].Name != "C0" || tab[3].Name != "C3" {
		t.Fatalf("table: %+v", tab)
	}
	for i := 1; i < len(tab); i++ {
		if tab[i].IdleFactor >= tab[i-1].IdleFactor {
			t.Errorf("idle factor not decreasing at %s", tab[i].Name)
		}
		if tab[i].ExitLatency <= tab[i-1].ExitLatency {
			t.Errorf("exit latency not increasing at %s", tab[i].Name)
		}
	}
}

func TestMountAppliesIdleFactor(t *testing.T) {
	fs, c, p := rig()
	if err := fs.WriteInt(p.MaxState, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.IdleFactor(); got != 0.25 {
		t.Errorf("idle factor after C3 = %v", got)
	}
	if v, _ := fs.ReadInt(p.MaxState); v != 3 {
		t.Errorf("readback = %d", v)
	}
	if err := fs.WriteInt(p.MaxState, 9); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestDeepIdleCutsIdlePowerOnly(t *testing.T) {
	fs, c, p := rig()
	c.SetUtilization(0)
	shallowIdle := c.Power(40)
	_ = fs.WriteInt(p.MaxState, 3)
	deepIdle := c.Power(40)
	if deepIdle >= shallowIdle {
		t.Errorf("C3 idle power %v not below C0 idle power %v", deepIdle, shallowIdle)
	}
	// Under full utilization there is no idle residual to gate: the
	// C-state must be free.
	c.SetUtilization(1)
	busyDeep := c.Power(50)
	_ = fs.WriteInt(p.MaxState, 0)
	busyShallow := c.Power(50)
	if busyDeep != busyShallow {
		t.Errorf("C-state changed busy power: %v vs %v", busyDeep, busyShallow)
	}
}

func TestActuatorRoundTrip(t *testing.T) {
	fs, c, p := rig()
	a := NewActuator(fs, p)
	if a.NumModes() != 4 || a.Name() == "" {
		t.Fatal("metadata")
	}
	for m := 0; m < 4; m++ {
		if err := a.Apply(m); err != nil {
			t.Fatal(err)
		}
		got, err := a.Current()
		if err != nil || got != m {
			t.Errorf("Apply(%d) -> %d, %v", m, got, err)
		}
	}
	if err := a.Apply(99); err != nil {
		t.Errorf("Apply clamps: %v", err)
	}
	if c.IdleFactor() != 0.25 {
		t.Errorf("final idle factor %v", c.IdleFactor())
	}
}
