// Package simclock provides a deterministic, fixed-step simulation clock
// with event scheduling.
//
// All thermal, power and workload models in this repository advance in
// lock-step under a single Clock so that every experiment is exactly
// reproducible: the same seed and parameters always produce the same
// temperature traces, the same controller decisions and the same summary
// statistics. Real wall-clock time is never consulted.
//
// The clock counts in integer ticks. A Clock created with NewClock(dt)
// advances simulated time by dt per Step. Periodic and one-shot callbacks
// may be registered; they fire in deterministic order (by deadline, then by
// registration order) at the *end* of the step that reaches their deadline.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a deterministic fixed-step simulation clock.
//
// The zero value is not usable; construct with NewClock.
type Clock struct {
	dt    time.Duration
	now   time.Duration
	tick  uint64
	queue eventQueue
	seq   uint64 // registration order tiebreaker
}

// NewClock returns a clock that advances by dt per Step.
// It panics if dt is not positive, since a non-advancing clock would
// make every scheduled event fire immediately and forever.
func NewClock(dt time.Duration) *Clock {
	if dt <= 0 {
		panic(fmt.Sprintf("simclock: non-positive step %v", dt))
	}
	return &Clock{dt: dt}
}

// Now returns the current simulated time, measured from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Tick returns the number of completed steps.
func (c *Clock) Tick() uint64 { return c.tick }

// Dt returns the step size.
func (c *Clock) Dt() time.Duration { return c.dt }

// Seconds returns the current simulated time in seconds.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }

// Step advances simulated time by one dt and fires every event whose
// deadline has been reached, in deadline order (ties broken by
// registration order). Periodic events re-arm themselves.
func (c *Clock) Step() {
	c.tick++
	c.now += c.dt
	for len(c.queue) > 0 && c.queue[0].when <= c.now {
		ev := heap.Pop(&c.queue).(*event)
		if ev.cancelled {
			continue
		}
		ev.fn(c.now)
		if ev.period > 0 && !ev.cancelled {
			ev.when += ev.period
			heap.Push(&c.queue, ev)
		}
	}
}

// Run advances the clock until at least d simulated time has elapsed from
// the current instant.
func (c *Clock) Run(d time.Duration) {
	deadline := c.now + d
	for c.now < deadline {
		c.Step()
	}
}

// Event is a handle to a scheduled callback. Cancel prevents future
// firings; it is safe to call more than once.
type Event struct{ ev *event }

// Cancel deactivates the event. A cancelled one-shot that has already
// fired is a no-op.
func (e Event) Cancel() {
	if e.ev != nil {
		e.ev.cancelled = true
	}
}

// After schedules fn to run once, d from now. Scheduling with d <= 0 fires
// on the next Step.
func (c *Clock) After(d time.Duration, fn func(now time.Duration)) Event {
	return c.add(c.now+d, 0, fn)
}

// Every schedules fn to run every period, first firing one period from
// now. It panics if period is not positive.
func (c *Clock) Every(period time.Duration, fn func(now time.Duration)) Event {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive period %v", period))
	}
	return c.add(c.now+period, period, fn)
}

func (c *Clock) add(when, period time.Duration, fn func(time.Duration)) Event {
	c.seq++
	ev := &event{when: when, period: period, fn: fn, seq: c.seq}
	heap.Push(&c.queue, ev)
	return Event{ev}
}

type event struct {
	when      time.Duration
	period    time.Duration
	fn        func(now time.Duration)
	seq       uint64
	cancelled bool
	index     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
