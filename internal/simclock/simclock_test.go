package simclock

import (
	"testing"
	"time"
)

func TestNewClockPanicsOnNonPositiveStep(t *testing.T) {
	for _, dt := range []time.Duration{0, -time.Second} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v): expected panic", dt)
				}
			}()
			NewClock(dt)
		}()
	}
}

func TestStepAdvancesTime(t *testing.T) {
	c := NewClock(250 * time.Millisecond)
	if c.Now() != 0 || c.Tick() != 0 {
		t.Fatalf("fresh clock: Now=%v Tick=%d, want 0,0", c.Now(), c.Tick())
	}
	for i := 0; i < 8; i++ {
		c.Step()
	}
	if got, want := c.Now(), 2*time.Second; got != want {
		t.Errorf("Now after 8 steps of 250ms = %v, want %v", got, want)
	}
	if c.Tick() != 8 {
		t.Errorf("Tick = %d, want 8", c.Tick())
	}
	if c.Seconds() != 2.0 {
		t.Errorf("Seconds = %v, want 2", c.Seconds())
	}
}

func TestRunReachesDeadline(t *testing.T) {
	c := NewClock(300 * time.Millisecond)
	c.Run(time.Second)
	// 4 steps of 300ms = 1.2s is the first instant >= 1s.
	if got, want := c.Now(), 1200*time.Millisecond; got != want {
		t.Errorf("Now after Run(1s) = %v, want %v", got, want)
	}
}

func TestAfterFiresOnce(t *testing.T) {
	c := NewClock(time.Second)
	var fired []time.Duration
	c.After(3*time.Second, func(now time.Duration) { fired = append(fired, now) })
	c.Run(10 * time.Second)
	if len(fired) != 1 || fired[0] != 3*time.Second {
		t.Errorf("After fired at %v, want exactly once at 3s", fired)
	}
}

func TestAfterZeroDelayFiresNextStep(t *testing.T) {
	c := NewClock(time.Second)
	fired := false
	c.After(0, func(time.Duration) { fired = true })
	if fired {
		t.Fatal("fired before any Step")
	}
	c.Step()
	if !fired {
		t.Error("After(0) did not fire on the next Step")
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	c := NewClock(250 * time.Millisecond)
	var fired []time.Duration
	c.Every(time.Second, func(now time.Duration) { fired = append(fired, now) })
	c.Run(4 * time.Second)
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(fired) != len(want) {
		t.Fatalf("fired %d times (%v), want %d", len(fired), fired, len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	c := NewClock(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("Every(0): expected panic")
		}
	}()
	c.Every(0, func(time.Duration) {})
}

func TestCancelStopsPeriodicEvent(t *testing.T) {
	c := NewClock(time.Second)
	n := 0
	ev := c.Every(time.Second, func(time.Duration) { n++ })
	c.Run(3 * time.Second)
	ev.Cancel()
	ev.Cancel() // double-cancel is a no-op
	c.Run(3 * time.Second)
	if n != 3 {
		t.Errorf("periodic fired %d times, want 3 (cancelled after 3s)", n)
	}
}

func TestCancelOneShotBeforeFiring(t *testing.T) {
	c := NewClock(time.Second)
	fired := false
	ev := c.After(2*time.Second, func(time.Duration) { fired = true })
	ev.Cancel()
	c.Run(5 * time.Second)
	if fired {
		t.Error("cancelled one-shot still fired")
	}
}

func TestDeterministicOrderingSameDeadline(t *testing.T) {
	c := NewClock(time.Second)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Step()
	for i, v := range order {
		if v != i {
			t.Fatalf("firing order %v, want registration order", order)
		}
	}
}

func TestEventsFireInDeadlineOrder(t *testing.T) {
	c := NewClock(5 * time.Second)
	var order []string
	c.After(4*time.Second, func(time.Duration) { order = append(order, "b") })
	c.After(2*time.Second, func(time.Duration) { order = append(order, "a") })
	c.Step() // one big step covers both deadlines
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v, want [a b]", order)
	}
}

func TestPeriodicEventCatchesUpWithinStep(t *testing.T) {
	// A periodic event with period smaller than dt fires multiple times
	// per step, at its own cadence.
	c := NewClock(time.Second)
	n := 0
	c.Every(250*time.Millisecond, func(time.Duration) { n++ })
	c.Step()
	if n != 4 {
		t.Errorf("250ms event fired %d times in a 1s step, want 4", n)
	}
}

func BenchmarkClockStepWithEvents(b *testing.B) {
	c := NewClock(250 * time.Millisecond)
	for i := 0; i < 16; i++ {
		c.Every(time.Second, func(time.Duration) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
