package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

// Property tests on the clock's scheduling invariants.

func TestEventNeverFiresBeforeDeadline(t *testing.T) {
	if err := quick.Check(func(dtMs, delayMs uint16) bool {
		dt := time.Duration(dtMs%500+1) * time.Millisecond
		delay := time.Duration(delayMs%5000) * time.Millisecond
		c := NewClock(dt)
		ok := true
		c.After(delay, func(now time.Duration) {
			if now < delay {
				ok = false
			}
		})
		c.Run(6 * time.Second)
		return ok
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicFiringCountMatchesElapsed(t *testing.T) {
	if err := quick.Check(func(periodMs uint16, runs uint8) bool {
		period := time.Duration(periodMs%900+100) * time.Millisecond
		total := time.Duration(runs%20+1) * time.Second
		c := NewClock(100 * time.Millisecond)
		n := 0
		c.Every(period, func(time.Duration) { n++ })
		c.Run(total)
		// The clock runs to the first step boundary ≥ total; every
		// period boundary in (0, Now] fires exactly once.
		want := int(c.Now() / period)
		return n == want
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunAlwaysReachesDeadline(t *testing.T) {
	if err := quick.Check(func(dtMs uint16, dMs uint32) bool {
		dt := time.Duration(dtMs%1000+1) * time.Millisecond
		d := time.Duration(dMs%10000) * time.Millisecond
		c := NewClock(dt)
		before := c.Now()
		c.Run(d)
		if c.Now() < before+d {
			return false
		}
		// ... and overshoots by less than one step.
		return c.Now()-(before+d) < dt
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
