package cpu

import (
	"math"
	"testing"
	"time"
)

func TestNewValidatesTable(t *testing.T) {
	if err := shouldPanic(func() { New(Config{}) }); err != nil {
		t.Error("empty table:", err)
	}
	bad := DefaultConfig()
	bad.Table = []PState{{2.0, 1.3}, {2.4, 1.4}}
	if err := shouldPanic(func() { New(bad) }); err != nil {
		t.Error("ascending table:", err)
	}
}

func shouldPanic(f func()) error {
	defer func() { recover() }()
	f()
	return errNoPanic
}

var errNoPanic = errorString("expected panic")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestDefaultTableMatchesPaper(t *testing.T) {
	c := New(DefaultConfig())
	want := []float64{2.4, 2.2, 2.0, 1.8, 1.0}
	tab := c.Table()
	if len(tab) != len(want) {
		t.Fatalf("table has %d states, want %d", len(tab), len(want))
	}
	for i, w := range want {
		if tab[i].FreqGHz != w {
			t.Errorf("state %d = %v GHz, want %v", i, tab[i].FreqGHz, w)
		}
	}
	if c.FreqGHz() != 2.4 {
		t.Errorf("initial frequency = %v, want 2.4 (fastest)", c.FreqGHz())
	}
}

func TestSetPStateClampsAndCounts(t *testing.T) {
	c := New(DefaultConfig())
	c.SetPState(2)
	if c.PState() != 2 || c.Transitions() != 1 {
		t.Errorf("state=%d trans=%d, want 2,1", c.PState(), c.Transitions())
	}
	c.SetPState(2) // same state: no transition
	if c.Transitions() != 1 {
		t.Errorf("redundant SetPState counted: trans=%d", c.Transitions())
	}
	c.SetPState(99)
	if c.PState() != 4 {
		t.Errorf("overflow clamp: state=%d, want 4", c.PState())
	}
	c.SetPState(-3)
	if c.PState() != 0 {
		t.Errorf("underflow clamp: state=%d, want 0", c.PState())
	}
	if c.Transitions() != 3 {
		t.Errorf("trans=%d, want 3", c.Transitions())
	}
}

func TestSetFreqGHz(t *testing.T) {
	c := New(DefaultConfig())
	if !c.SetFreqGHz(1.8) {
		t.Fatal("SetFreqGHz(1.8) not found")
	}
	if c.FreqGHz() != 1.8 {
		t.Errorf("freq = %v, want 1.8", c.FreqGHz())
	}
	if c.SetFreqGHz(3.0) {
		t.Error("SetFreqGHz(3.0) found a nonexistent state")
	}
}

func TestPowerDecreasesWithFrequency(t *testing.T) {
	c := New(DefaultConfig())
	c.SetUtilization(1)
	var prev = math.Inf(1)
	for i := range c.Table() {
		c.SetPState(i)
		p := c.Power(50)
		if p >= prev {
			t.Errorf("power at state %d (%v) >= state %d (%v)", i, p, i-1, prev)
		}
		prev = p
	}
}

func TestPowerIncreasesWithUtilization(t *testing.T) {
	c := New(DefaultConfig())
	c.SetUtilization(0)
	idle := c.Power(45)
	c.SetUtilization(1)
	busy := c.Power(45)
	if busy <= idle {
		t.Fatalf("busy power %v <= idle power %v", busy, idle)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	c := New(DefaultConfig())
	c.SetUtilization(1)
	cold := c.Power(40)
	hot := c.Power(70)
	if hot <= cold {
		t.Errorf("power at 70°C (%v) not above power at 40°C (%v)", hot, cold)
	}
	// The difference should be leakage-sized (a few watts), not huge.
	if d := hot - cold; d < 1 || d > 10 {
		t.Errorf("70°C-40°C leakage delta = %v W, want 1..10 W", d)
	}
}

func TestCalibrationOperatingPoints(t *testing.T) {
	// The paper's node draws ~100 W loaded with a ~33 W platform base,
	// implying a CPU package around 55-65 W busy and 12-18 W idle.
	c := New(DefaultConfig())
	c.SetUtilization(1)
	if p := c.Power(52); p < 55 || p > 68 {
		t.Errorf("busy power at 2.4 GHz = %v W, want 55..68", p)
	}
	c.SetUtilization(0)
	if p := c.Power(38); p < 10 || p > 20 {
		t.Errorf("idle power = %v W, want 10..20", p)
	}
}

func TestStepRetiresWork(t *testing.T) {
	c := New(DefaultConfig())
	c.SetUtilization(1)
	w := c.Step(time.Second)
	if math.Abs(w-2.4) > 1e-9 {
		t.Errorf("work in 1s at 2.4 GHz full util = %v Gcycles, want 2.4", w)
	}
	c.SetUtilization(0.5)
	w = c.Step(time.Second)
	if math.Abs(w-1.2) > 1e-9 {
		t.Errorf("work at 50%% util = %v, want 1.2", w)
	}
	if math.Abs(c.Work()-3.6) > 1e-9 {
		t.Errorf("cumulative work = %v, want 3.6", c.Work())
	}
}

func TestTransitionStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TransitionLatency = 100 * time.Millisecond
	c := New(cfg)
	c.SetUtilization(1)
	c.SetPState(1) // 2.2 GHz with a 100 ms stall
	w := c.Step(time.Second)
	want := 2.2 * 0.9 // 900 ms of useful work
	if math.Abs(w-want) > 1e-9 {
		t.Errorf("work after transition = %v, want %v", w, want)
	}
}

func TestStallSpansSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TransitionLatency = 300 * time.Millisecond
	c := New(cfg)
	c.SetUtilization(1)
	c.SetPState(1)
	if w := c.Step(200 * time.Millisecond); w != 0 {
		t.Errorf("work during stall = %v, want 0", w)
	}
	w := c.Step(200 * time.Millisecond)
	want := 2.2 * 0.1
	if math.Abs(w-want) > 1e-9 {
		t.Errorf("work after partial stall = %v, want %v", w, want)
	}
}

func TestUtilizationClamped(t *testing.T) {
	c := New(DefaultConfig())
	c.SetUtilization(2)
	if c.Utilization() != 1 {
		t.Errorf("util = %v, want clamp to 1", c.Utilization())
	}
	c.SetUtilization(-1)
	if c.Utilization() != 0 {
		t.Errorf("util = %v, want clamp to 0", c.Utilization())
	}
}

func BenchmarkPower(b *testing.B) {
	c := New(DefaultConfig())
	c.SetUtilization(0.8)
	for i := 0; i < b.N; i++ {
		c.Power(50)
	}
}

// TestConcurrentActuationAndPower reproduces the live daemon's shape:
// the control loop switches P-states and throttle while the BMC's
// server goroutine samples Power out-of-band. Run under -race.
func TestConcurrentActuationAndPower(t *testing.T) {
	c := New(DefaultConfig())
	c.SetUtilization(0.8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			c.SetPState(i % len(c.Table()))
			c.SetThrottle(0.5 + 0.5*float64(i%2))
			c.SetIdleFactor(float64(i%3) / 2)
			c.Step(time.Millisecond)
		}
	}()
	for i := 0; i < 5000; i++ {
		if p := c.Power(50); p <= 0 || math.IsNaN(p) {
			t.Fatalf("Power = %v mid-actuation", p)
		}
		c.FreqGHz()
		c.Utilization()
	}
	<-done
	if c.Transitions() == 0 {
		t.Error("no transitions recorded")
	}
}
