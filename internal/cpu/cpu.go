// Package cpu models a DVFS-capable processor: its P-state (frequency/
// voltage) table, its instantaneous utilization, the electrical power it
// dissipates, and the computational work it retires.
//
// The power model has the two components that matter for thermal control:
//
//   - dynamic power  Pdyn = Cdyn · V² · f · u   (switching activity), the
//     cubic-in-frequency term the paper's in-band knob exploits, and
//   - leakage power  Pleak = L0 · V · (1 + kT·(T − Tref))  (subthreshold
//     leakage), which grows with die temperature and is why a hotter chip
//     at the same frequency draws measurably more wall power — visible in
//     the paper's Table 1, where CPUSPEED at a weaker fan setting draws
//     *more* average power than at a stronger one.
//
// The default table matches the paper's AMD Athlon64 4000+: five P-states
// at 2.4, 2.2, 2.0, 1.8 and 1.0 GHz.
package cpu

import (
	"fmt"
	"sync"
	"time"
)

// PState is one DVFS operating point.
type PState struct {
	// FreqGHz is the core clock in GHz.
	FreqGHz float64
	// Voltage is the core supply in volts.
	Voltage float64
}

// Athlon64Table returns the five P-states of the paper's AMD Athlon64
// 4000+ in descending frequency order, with the voltage schedule of that
// part family.
func Athlon64Table() []PState {
	return []PState{
		{FreqGHz: 2.4, Voltage: 1.40},
		{FreqGHz: 2.2, Voltage: 1.35},
		{FreqGHz: 2.0, Voltage: 1.30},
		{FreqGHz: 1.8, Voltage: 1.25},
		{FreqGHz: 1.0, Voltage: 1.10},
	}
}

// PowerModel holds the electrical coefficients of the processor.
type PowerModel struct {
	// CdynWPerV2GHz is the effective switching capacitance in W/(V²·GHz).
	CdynWPerV2GHz float64
	// UncoreW is frequency-independent power of the always-on uncore.
	UncoreW float64
	// Leak0W is leakage at reference voltage and temperature, in watts
	// per volt of supply.
	Leak0WPerV float64
	// LeakTempCoeff is the per-°C fractional growth of leakage.
	LeakTempCoeff float64
	// LeakTrefC is the reference temperature for leakage, °C.
	LeakTrefC float64
	// IdleActivity is the residual switching activity at 0% utilization
	// (clock tree, OS ticks), as a fraction of full activity.
	IdleActivity float64
}

// DefaultPowerModel returns coefficients calibrated so that an Athlon64
// 4000+ running a compute-bound workload at 2.4 GHz dissipates ≈60 W and
// idles near 15 W — the operating points implied by the paper's measured
// node power of 95–101 W.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		CdynWPerV2GHz: 9.5,
		UncoreW:       2.0,
		Leak0WPerV:    6.5,
		LeakTempCoeff: 0.035,
		LeakTrefC:     40,
		IdleActivity:  0.06,
	}
}

// Config assembles a processor description.
type Config struct {
	// Table is the P-state list in descending frequency order.
	Table []PState
	// Power is the electrical model.
	Power PowerModel
	// TransitionLatency is the cost of a P-state switch; during it the
	// core retires no work. Athlon64 PowerNow! transitions are ~100 µs,
	// negligible at our step size, but tracked for fidelity.
	TransitionLatency time.Duration
}

// DefaultConfig returns the Athlon64 4000+ description.
func DefaultConfig() Config {
	return Config{
		Table:             Athlon64Table(),
		Power:             DefaultPowerModel(),
		TransitionLatency: 100 * time.Microsecond,
	}
}

// CPU is one processor instance. Safe for concurrent use: the control
// daemons actuate P-states and throttle through the sysfs mounts while
// the BMC's server goroutines sample Power out-of-band, so every
// access to mutable state takes the per-instance mutex (the same
// hardening as the fan and ADT7467 models). Uncontended in pure
// simulation.
type CPU struct {
	mu          sync.Mutex
	cfg         Config
	pstate      int     // index into cfg.Table
	util        float64 // [0,1], set by the workload each step
	throttle    float64 // delivered clock fraction, 1 = unthrottled
	idleFactor  float64 // idle-residual power multiplier set by the C-state governor
	transitions uint64
	stallLeft   time.Duration // remaining transition stall
	workGC      float64       // total retired work, in giga-cycles
}

// New returns a CPU in its highest-frequency P-state with zero
// utilization. It panics if the table is empty or frequencies are not in
// strictly descending order — the thermal control array relies on mode
// ordering.
func New(cfg Config) *CPU {
	if len(cfg.Table) == 0 {
		panic("cpu: empty P-state table")
	}
	for i := 1; i < len(cfg.Table); i++ {
		if cfg.Table[i].FreqGHz >= cfg.Table[i-1].FreqGHz {
			panic(fmt.Sprintf("cpu: P-state table not in descending frequency order at index %d", i))
		}
	}
	return &CPU{cfg: cfg, throttle: 1, idleFactor: 1}
}

// SetIdleFactor scales the idle-residual switching activity, modelling
// processor sleep states (C-states): a deeper idle state gates more of
// the clock tree while the core waits, shrinking the power burned
// during the un-utilized fraction of time. 1 = shallow halt only.
// Clamped to [0, 1].
func (c *CPU) SetIdleFactor(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	c.mu.Lock()
	c.idleFactor = f
	c.mu.Unlock()
}

// IdleFactor returns the current idle-residual multiplier.
func (c *CPU) IdleFactor() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idleFactor
}

// SetThrottle sets ACPI-style clock modulation: the fraction of clock
// cycles actually delivered to the core (T-states gate the clock with a
// duty cycle). Clamped to [1/16, 1]. Unlike DVFS it does not lower the
// voltage, so it cuts dynamic power only linearly — the paper's point
// that different techniques differ in effectiveness, which the control
// array unifies.
func (c *CPU) SetThrottle(frac float64) {
	if frac < 1.0/16 {
		frac = 1.0 / 16
	}
	if frac > 1 {
		frac = 1
	}
	c.mu.Lock()
	c.throttle = frac
	c.mu.Unlock()
}

// Throttle returns the delivered clock fraction (1 = unthrottled).
func (c *CPU) Throttle() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.throttle
}

// Table returns the P-state table (shared; callers must not modify).
func (c *CPU) Table() []PState { return c.cfg.Table }

// PState returns the current P-state index (0 = fastest).
func (c *CPU) PState() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pstate
}

// SetPState switches to P-state index i. Out-of-range values are clamped.
// A real switch (to a different state) stalls the core for the transition
// latency and increments the transition counter.
func (c *CPU) SetPState(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(c.cfg.Table) {
		i = len(c.cfg.Table) - 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i == c.pstate {
		return
	}
	c.pstate = i
	c.transitions++
	c.stallLeft += c.cfg.TransitionLatency
}

// SetFreqGHz switches to the P-state with exactly the given frequency.
// It reports whether such a state exists.
func (c *CPU) SetFreqGHz(f float64) bool {
	for i, p := range c.cfg.Table {
		if p.FreqGHz == f {
			c.SetPState(i)
			return true
		}
	}
	return false
}

// FreqGHz returns the current core frequency.
func (c *CPU) FreqGHz() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Table[c.pstate].FreqGHz
}

// Voltage returns the current core voltage.
func (c *CPU) Voltage() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Table[c.pstate].Voltage
}

// Transitions returns the number of P-state changes so far. The paper
// reports this for reliability: each transition stresses the voltage
// regulator, and tDVFS's headline win in Table 1 is a ~98% reduction.
func (c *CPU) Transitions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transitions
}

// SetUtilization sets the demanded utilization for the next Step,
// clamped to [0, 1].
func (c *CPU) SetUtilization(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	c.mu.Lock()
	c.util = u
	c.mu.Unlock()
}

// Utilization returns the utilization used by the last power/work
// computation.
func (c *CPU) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.util
}

// Power returns the instantaneous electrical power in watts at the given
// die temperature.
func (c *CPU) Power(dieTempC float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.cfg.Table[c.pstate]
	m := c.cfg.Power
	// Activity = busy fraction at full switching plus the idle fraction
	// at the residual (clock tree, ticks), the latter scaled by the
	// C-state governor's idle factor.
	activity := c.util + m.IdleActivity*c.idleFactor*(1-c.util)
	dyn := m.CdynWPerV2GHz * p.Voltage * p.Voltage * p.FreqGHz * activity * c.throttle
	leak := m.Leak0WPerV * p.Voltage * (1 + m.LeakTempCoeff*(dieTempC-m.LeakTrefC))
	if leak < 0 {
		leak = 0
	}
	return m.UncoreW + dyn + leak
}

// Step advances the core by dt, retiring work at freq·util (minus any
// transition stall), and returns the work retired in giga-cycles.
func (c *CPU) Step(dt time.Duration) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	effective := dt
	if c.stallLeft > 0 {
		if c.stallLeft >= dt {
			c.stallLeft -= dt
			effective = 0
		} else {
			effective = dt - c.stallLeft
			c.stallLeft = 0
		}
	}
	w := c.cfg.Table[c.pstate].FreqGHz * c.throttle * c.util * effective.Seconds()
	c.workGC += w
	return w
}

// Work returns the total retired work in giga-cycles.
func (c *CPU) Work() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workGC
}
