package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig8Result reproduces Figure 8: tDVFS coupled with traditional static
// fan control (max duty 25%) while LU executes on four nodes, followed
// by an idle tail during which the daemon restores the nominal
// frequency.
type Fig8Result struct {
	Temp *trace.Series // node-0 temperature
	Freq *trace.Series // node-0 frequency (GHz)

	Downscales uint64 // frequency reductions during the run (node 0)
	Upscales   uint64 // restores (node 0)
	MinFreqGHz float64
	EndFreqGHz float64 // after the idle tail: must be back to nominal
	SteadyC    float64
	ExecS      float64
}

// Fig8 runs the experiment: threshold 51 °C, Pp=50, static fan capped
// at 25% duty.
func Fig8(seed uint64) (*Fig8Result, error) {
	c, err := newCluster(4, seed)
	if err != nil {
		return nil, err
	}
	if _, err := attachFanControl(c, FanStatic, 50, 25); err != nil {
		return nil, err
	}
	daemons, err := attachTDVFS(c, core.DefaultTDVFSConfig(50))
	if err != nil {
		return nil, err
	}
	p := newProbe(c, 250*time.Millisecond)

	run := c.RunProgram(workload.LUB4(), 0)
	// Idle tail: the application has exited; temperature decays and
	// tDVFS restores the nominal frequency (the right edge of the
	// paper's Figure 8).
	c.RunGenerator(workload.Constant(0.02), 3*time.Minute)

	temp := p.rec.Series("n0_temp")
	freq := p.rec.Series("n0_freq")
	return &Fig8Result{
		Temp:       temp,
		Freq:       freq,
		Downscales: daemons[0].Downscales(),
		Upscales:   daemons[0].Upscales(),
		MinFreqGHz: freq.Min(),
		EndFreqGHz: freq.Last(),
		SteadyC:    temp.MeanAfter(run.ExecTime / 2),
		ExecS:      run.ExecTime.Seconds(),
	}, nil
}

// String prints the Figure 8 summary.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8: tDVFS + traditional static fan (max 25%%), LU on 4 nodes\n")
	fmt.Fprintf(&sb, "  exec time: %.1f s, steady temp: %.2f degC\n", r.ExecS, r.SteadyC)
	fmt.Fprintf(&sb, "  node-0 scale-downs: %d, restores: %d\n", r.Downscales, r.Upscales)
	fmt.Fprintf(&sb, "  lowest frequency: %.1f GHz, frequency after idle tail: %.1f GHz\n",
		r.MinFreqGHz, r.EndFreqGHz)
	fmt.Fprintf(&sb, "  (paper: scales 2.4->2.2 only when consistently above 51 degC,\n")
	fmt.Fprintf(&sb, "   restores once consistently below; ignores short-term spikes)\n")
	return sb.String()
}
