package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig7Row is one maximum-duty cap's outcome.
type Fig7Row struct {
	MaxDuty float64
	Temp    *trace.Series
	Duty    *trace.Series
	SteadyC float64
	AvgDuty float64
}

// Fig7Result is the maximum-PWM sweep of the paper's Figure 7: dynamic
// fan control (Pp=50) with the cap emulating fans of different
// capability.
type Fig7Result struct {
	Rows []Fig7Row // caps 25, 50, 75, 100
}

// Fig7 runs BT.B.4 under each duty cap.
func Fig7(seed uint64) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, cap := range []float64{25, 50, 75, 100} {
		c, err := newCluster(4, seed)
		if err != nil {
			return nil, err
		}
		if _, err := attachFanControl(c, FanDynamic, 50, cap); err != nil {
			return nil, err
		}
		p := newProbe(c, 250*time.Millisecond)
		run := c.RunProgram(workload.BTB4(), 0)

		temp := p.rec.Series("n0_temp")
		duty := p.rec.Series("n0_duty")
		res.Rows = append(res.Rows, Fig7Row{
			MaxDuty: cap,
			Temp:    temp,
			Duty:    duty,
			SteadyC: temp.MeanAfter(run.ExecTime / 2),
			AvgDuty: duty.MeanAfter(run.ExecTime / 2),
		})
	}
	return res, nil
}

// Row returns the row with the given cap, or nil.
func (r *Fig7Result) Row(cap float64) *Fig7Row {
	for i := range r.Rows {
		if r.Rows[i].MaxDuty == cap {
			return &r.Rows[i]
		}
	}
	return nil
}

// Spread returns steady temperature at cap a minus at cap b.
func (r *Fig7Result) Spread(a, b float64) float64 {
	ra, rb := r.Row(a), r.Row(b)
	if ra == nil || rb == nil {
		return 0
	}
	return ra.SteadyC - rb.SteadyC
}

// String prints the Figure 7 summary.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: maximum PWM duty sweep on BT.B.4 (dynamic control, Pp=50)\n")
	fmt.Fprintf(&sb, "  %-10s %-12s %-10s\n", "max duty", "steady degC", "avg duty")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-10.0f %-12.2f %-10.1f\n", row.MaxDuty, row.SteadyC, row.AvgDuty)
	}
	fmt.Fprintf(&sb, "  spread 25%%->100%%: %.2f degC (paper: ~8)\n", r.Spread(25, 100))
	fmt.Fprintf(&sb, "  spread 50%%->75%%:  %.2f degC (paper: not significant)\n", r.Spread(50, 75))
	return sb.String()
}
