package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/core/window"
	"thermctl/internal/node"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig2Result reproduces Figure 2: a CPU thermal profile at constant fan
// speed exhibiting the three behaviour types, and the two-level window's
// classification of each phase.
type Fig2Result struct {
	// Temp is the recorded die-temperature series at 4 Hz.
	Temp *trace.Series
	// Labels holds one classification per completed window round.
	Labels []window.Behavior
	// The counters tally classifications inside the profile's sudden
	// onset (30-45 s), jitter (95-150 s) and gradual-ramp (160-230 s)
	// segments respectively.
	SuddenInOnset  int
	JitterInJitter int
	GradualInRamp  int
	RoundsInOnset  int
	RoundsInJitter int
	RoundsInRamp   int
	// FalseSuddenInJitter counts jitter-segment rounds misread as
	// sudden — the failure mode the two-level window exists to avoid.
	FalseSuddenInJitter int
	// NoReactInJitter counts jitter-segment rounds labelled jitter or
	// steady, i.e. rounds where a controller keyed on the window takes
	// no action. Physically the thermal mass damps short utilization
	// bursts into sub-threshold ripple, so "steady" is as correct an
	// outcome as "jitter"; what matters is not reacting.
	NoReactInJitter int
}

// Fig2 runs the Figure 2 profile on a single node with the fan pinned
// at a constant speed (as the paper's measurement was taken) and
// classifies every window round.
func Fig2(seed uint64) (*Fig2Result, error) {
	n, err := node.New(node.DefaultConfig("fig2", seed))
	if err != nil {
		return nil, err
	}
	n.Settle(0.05)
	// Constant fan speed, as in the paper's Figure 2 caption.
	if err := n.FS.WriteInt(n.Hwmon.PWMEnable, 1); err != nil {
		return nil, err
	}
	if err := n.FS.WriteInt(n.Hwmon.PWM, 128); err != nil { // ≈50%
		return nil, err
	}

	n.SetGenerator(workload.Fig2Profile())
	win := window.New(window.Default())
	cls := window.DefaultClassify()

	res := &Fig2Result{Temp: &trace.Series{Name: "temp"}}
	dt := 250 * time.Millisecond
	total := 300 * time.Second
	for n.Elapsed() < total {
		n.Step(dt)
		now := n.Elapsed()
		t := n.Sensor.Read()
		res.Temp.Add(now, t)
		if !win.Add(t) {
			continue
		}
		b := win.Classify(cls)
		res.Labels = append(res.Labels, b)
		switch {
		case now > 30*time.Second && now <= 45*time.Second:
			res.RoundsInOnset++
			if b == window.Sudden {
				res.SuddenInOnset++
			}
		case now > 95*time.Second && now <= 150*time.Second:
			res.RoundsInJitter++
			if b == window.Jitter {
				res.JitterInJitter++
			}
			if b == window.Jitter || b == window.Steady {
				res.NoReactInJitter++
			}
			if b == window.Sudden {
				res.FalseSuddenInJitter++
			}
		case now > 160*time.Second && now <= 230*time.Second:
			res.RoundsInRamp++
			if b == window.Gradual || b == window.Sudden {
				// A strong ramp may legitimately read as sudden in
				// its steepest rounds; both are "responded to".
				res.GradualInRamp++
			}
		}
	}
	return res, nil
}

// String prints the Figure 2 summary.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: thermal behaviour classification (4 Hz, constant fan)\n")
	fmt.Fprintf(&sb, "  profile: idle 30s | sudden onset | jitter | gradual ramp | idle\n")
	fmt.Fprintf(&sb, "  temp range: %.1f..%.1f degC\n", r.Temp.Min(), r.Temp.Max())
	fmt.Fprintf(&sb, "  sudden detected in onset segment:   %d/%d rounds\n", r.SuddenInOnset, r.RoundsInOnset)
	fmt.Fprintf(&sb, "  no reaction in jitter segment:      %d/%d rounds (false sudden: %d)\n",
		r.NoReactInJitter, r.RoundsInJitter, r.FalseSuddenInJitter)
	fmt.Fprintf(&sb, "  trend detected in gradual segment:  %d/%d rounds\n", r.GradualInRamp, r.RoundsInRamp)
	return sb.String()
}
