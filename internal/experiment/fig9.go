package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig9Row is one DVFS daemon's outcome under the weak-fan condition.
type Fig9Row struct {
	Daemon      string // "tDVFS" or "CPUSPEED"
	Temp        *trace.Series
	Freq        *trace.Series
	FinalC      float64 // temperature at the end of the run
	PeakC       float64
	LateSlope   float64 // °C per minute over the last third — rising or stabilized?
	Transitions uint64  // total frequency changes (all nodes)
	ExecS       float64
}

// Fig9Result compares tDVFS and CPUSPEED on BT.B.4 with dynamic fan
// control (Pp=50) capped at 25% duty — a fan too weak to hold the
// temperature alone, so DVFS must act.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 runs both daemons.
func Fig9(seed uint64) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, daemon := range []string{"CPUSPEED", "tDVFS"} {
		row, err := fig9Run(seed, daemon)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fig9Run(seed uint64, daemon string) (Fig9Row, error) {
	c, err := newCluster(4, seed)
	if err != nil {
		return Fig9Row{}, err
	}
	switch daemon {
	case "tDVFS":
		if _, err := attachHybrid(c, 50, 25, core.DefaultTDVFSConfig(50)); err != nil {
			return Fig9Row{}, err
		}
	case "CPUSPEED":
		if _, err := attachFanControl(c, FanDynamic, 50, 25); err != nil {
			return Fig9Row{}, err
		}
		if err := attachCPUSpeed(c); err != nil {
			return Fig9Row{}, err
		}
	}
	p := newProbe(c, 250*time.Millisecond)
	run := c.RunProgram(workload.BTB4(), 0)

	temp := p.rec.Series("n0_temp")
	row := Fig9Row{
		Daemon:      daemon,
		Temp:        temp,
		Freq:        p.rec.Series("n0_freq"),
		FinalC:      temp.MeanAfter(run.ExecTime - 15*time.Second),
		PeakC:       temp.Max(),
		Transitions: totalTransitions(c),
		ExecS:       run.ExecTime.Seconds(),
	}
	// Late-run slope: mean of the last sixth minus mean of the
	// preceding sixth, scaled to °C/minute.
	last := temp.MeanAfter(run.ExecTime * 5 / 6)
	prevWindow := &trace.Series{}
	for _, pt := range temp.Points {
		if pt.T >= run.ExecTime*4/6 && pt.T < run.ExecTime*5/6 {
			prevWindow.Add(pt.T, pt.V)
		}
	}
	span := run.ExecTime.Seconds() / 6 / 60 // window separation in minutes
	if span > 0 && prevWindow.Len() > 0 {
		row.LateSlope = (last - prevWindow.Mean()) / span
	}
	return row, nil
}

// Row returns the row for the named daemon, or nil.
func (r *Fig9Result) Row(daemon string) *Fig9Row {
	for i := range r.Rows {
		if r.Rows[i].Daemon == daemon {
			return &r.Rows[i]
		}
	}
	return nil
}

// String prints the Figure 9 summary.
func (r *Fig9Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9: tDVFS vs CPUSPEED, BT.B.4, dynamic fan Pp=50, max duty 25%%\n")
	fmt.Fprintf(&sb, "  %-9s %-11s %-10s %-16s %-12s %-8s\n",
		"daemon", "final degC", "peak degC", "late slope C/min", "freq changes", "exec s")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-9s %-11.2f %-10.2f %-16.2f %-12d %-8.1f\n",
			row.Daemon, row.FinalC, row.PeakC, row.LateSlope, row.Transitions, row.ExecS)
	}
	fmt.Fprintf(&sb, "  (paper: temperature keeps increasing under CPUSPEED,\n")
	fmt.Fprintf(&sb, "   stabilizes under tDVFS)\n")
	return sb.String()
}
