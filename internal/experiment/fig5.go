package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/rng"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig5Row is one policy's outcome in the Figure 5 experiment.
type Fig5Row struct {
	Pp       int
	Temp     *trace.Series
	Duty     *trace.Series
	AvgDuty  float64 // paper: 70 (Pp=25), 53 (Pp=50), 36 (Pp=75)
	AvgTempC float64 // steady-state average; smaller Pp → lower
}

// Fig5Result holds the three policies' traces.
type Fig5Result struct {
	Rows []Fig5Row // ordered Pp = 75, 50, 25 as in the figure
}

// Fig5 runs cpu-burn for five minutes on one node under dynamic fan
// control at each policy Pp ∈ {75, 50, 25}, as in the paper's §4.2.
func Fig5(seed uint64) (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, pp := range []int{75, 50, 25} {
		row, err := fig5Run(seed, pp)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fig5Run(seed uint64, pp int) (Fig5Row, error) {
	n, err := node.New(node.DefaultConfig(fmt.Sprintf("fig5-pp%d", pp), seed))
	if err != nil {
		return Fig5Row{}, err
	}
	n.Settle(0)
	ctl, err := core.NewController(
		core.DefaultConfig(pp),
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		core.ActuatorBinding{Actuator: core.NewFanActuator(
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)},
	)
	if err != nil {
		return Fig5Row{}, err
	}

	row := Fig5Row{
		Pp:   pp,
		Temp: &trace.Series{Name: fmt.Sprintf("temp_pp%d", pp)},
		Duty: &trace.Series{Name: fmt.Sprintf("duty_pp%d", pp)},
	}
	// Three instances of cpu-burn, i.e. sustained full load with
	// scheduler noise.
	n.SetGenerator(workload.NewCPUBurn(rng.New(seed + uint64(pp))))
	dt := 250 * time.Millisecond
	total := 5 * time.Minute
	for n.Elapsed() < total {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
		row.Temp.Add(n.Elapsed(), n.Sensor.Read())
		row.Duty.Add(n.Elapsed(), n.Fan.Duty())
	}
	// Steady-state statistics over the second half of the run, past the
	// warm-up transient.
	row.AvgDuty = row.Duty.MeanAfter(total / 2)
	row.AvgTempC = row.Temp.MeanAfter(total / 2)
	return row, nil
}

// Row returns the row for policy pp, or nil.
func (r *Fig5Result) Row(pp int) *Fig5Row {
	for i := range r.Rows {
		if r.Rows[i].Pp == pp {
			return &r.Rows[i]
		}
	}
	return nil
}

// String prints the Figure 5 summary.
func (r *Fig5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: dynamic fan control under cpu-burn, policy sweep\n")
	fmt.Fprintf(&sb, "  %-6s %-14s %-14s\n", "Pp", "avg PWM duty", "avg temp (degC)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-6d %-14.1f %-14.2f\n", row.Pp, row.AvgDuty, row.AvgTempC)
	}
	fmt.Fprintf(&sb, "  (paper: duty 36/53/70 for Pp 75/50/25; smaller Pp -> lower temp)\n")
	return sb.String()
}
