package experiment

import (
	"strings"
	"testing"
)

// TestSleepStatesIdleAsymmetry asserts the study's claims: driven
// through the same thermal control array as the fan, the C-state
// actuator engages on a warm bursty load, saves power there, and saves
// markedly less under cpu-burn where there is no idle time to gate.
func TestSleepStatesIdleAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("four generator-driven cluster runs")
	}
	r, err := SleepStates(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckIdleAsymmetry(); err != nil {
		t.Error(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MaxDieC >= emergencyC {
			t.Errorf("%s sleep=%v: die peaked at %.2f degC, at or above the trip point",
				row.Workload, row.Sleep, row.MaxDieC)
		}
		if !row.Sleep && row.Moves != 0 {
			t.Errorf("%s: %d C-state moves with the array off", row.Workload, row.Moves)
		}
	}
	if !strings.Contains(r.String(), "savings:") {
		t.Error("report missing the savings line")
	}
}

// TestSleepStatesDeterministic re-runs one cell and compares: the
// scenario layer must preserve the simulator's bit-reproducibility.
func TestSleepStatesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full study cells")
	}
	a, err := sleepStatesRun(Seed, "bursty", burstyProfile(), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sleepStatesRun(Seed, "bursty", burstyProfile(), true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different rows:\n%+v\n%+v", a, b)
	}
}
