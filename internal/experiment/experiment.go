// Package experiment regenerates every table and figure of the paper's
// evaluation (§4) on the simulated cluster. Each experiment has a Run
// function returning a typed result whose String method prints the rows
// or series the paper reports, plus Check* accessors the benchmark
// harness asserts the paper's qualitative claims against.
//
// Experiment index (see DESIGN.md §4 for the full mapping):
//
//	Fig2   — thermal behaviour types (sudden / gradual / jitter)
//	Fig5   — dynamic fan control vs. policy Pp ∈ {75, 50, 25}
//	Fig6   — dynamic vs. traditional static vs. constant fan on BT.B.4
//	Fig7   — maximum-PWM sweep {25, 50, 75, 100}%
//	Fig8   — tDVFS coupled with static fan control on LU
//	Fig9   — tDVFS vs. CPUSPEED under a weak fan on BT.B.4
//	Table1 — performance/power of BT under CPUSPEED vs. tDVFS
//	Fig10  — hybrid dynamic fan + tDVFS, one Pp for both knobs
package experiment

import (
	"fmt"
	"time"

	"thermctl/internal/baseline"
	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/trace"
)

// Seed is the default seed used by all experiments; fixed so every run
// of the harness reproduces identical numbers.
const Seed = 20100131 // ICPP 2010 submission era

// Workers is the worker-goroutine count applied to every cluster the
// experiments build (see cluster.SetWorkers). It is configuration, set
// once before any experiment runs (cmd/experiments wires its -workers
// flag here); parallel stepping is byte-identical to serial, so the
// value changes wall-clock time only, never a result.
var Workers = 1

// probe records per-node observables on a fixed schedule.
type probe struct {
	c      *cluster.Cluster
	rec    *trace.Recorder
	every  time.Duration
	next   time.Duration
	labels []probeLabels
}

// probeLabels holds one node's series names, formatted once at probe
// construction: OnStep samples every node every interval and must not
// build strings per sample.
type probeLabels struct {
	temp, duty, freq, power string
}

// newProbe attaches a recorder to the cluster sampling every interval.
func newProbe(c *cluster.Cluster, every time.Duration) *probe {
	p := &probe{c: c, rec: trace.NewRecorder(), every: every, next: 0}
	p.labels = make([]probeLabels, len(c.Nodes))
	for i := range c.Nodes {
		prefix := fmt.Sprintf("n%d_", i)
		p.labels[i] = probeLabels{
			temp:  prefix + "temp",
			duty:  prefix + "duty",
			freq:  prefix + "freq",
			power: prefix + "power",
		}
	}
	c.AddController(p)
	return p
}

// OnStep implements cluster.Controller.
func (p *probe) OnStep(now time.Duration) {
	if now < p.next {
		return
	}
	p.next += p.every
	for i, n := range p.c.Nodes {
		l := &p.labels[i]
		p.rec.Record(l.temp, now, n.Sensor.Read())
		p.rec.Record(l.duty, now, n.Fan.Duty())
		p.rec.Record(l.freq, now, n.CPU.FreqGHz())
		p.rec.Record(l.power, now, n.Power().Total())
	}
}

// FanMethod selects the fan control scheme of a run.
type FanMethod int

// The fan control schemes compared in the paper.
const (
	FanDynamic  FanMethod = iota // the paper's history-based controller
	FanStatic                    // traditional static map (Figure 1)
	FanConstant                  // fixed duty
	FanNone                      // leave the ADT7467 in chip-automatic mode
)

// String implements fmt.Stringer.
func (m FanMethod) String() string {
	switch m {
	case FanDynamic:
		return "dynamic"
	case FanStatic:
		return "static"
	case FanConstant:
		return "constant"
	default:
		return "chip-auto"
	}
}

// attachFanControl installs the chosen per-node fan controller on every
// node of the cluster, in the node-local (sharded) controller phase.
func attachFanControl(c *cluster.Cluster, method FanMethod, pp int, maxDuty float64) ([]*core.Controller, error) {
	var ctls []*core.Controller
	for i, n := range c.Nodes {
		read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
		port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		switch method {
		case FanDynamic:
			ctl, err := core.NewController(core.DefaultConfig(pp), read,
				core.ActuatorBinding{Actuator: core.NewFanActuator(port, maxDuty)})
			if err != nil {
				return nil, err
			}
			c.AddNodeController(i, ctl)
			ctls = append(ctls, ctl)
		case FanStatic:
			ctl, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(maxDuty), read, port)
			if err != nil {
				return nil, err
			}
			c.AddNodeController(i, ctl)
		case FanConstant:
			c.AddNodeController(i, baseline.NewConstantFan(maxDuty, port))
		case FanNone:
			// chip automatic mode: nothing to attach
		}
	}
	return ctls, nil
}

// attachTDVFS installs a tDVFS daemon on every node and returns them.
func attachTDVFS(c *cluster.Cluster, cfg core.TDVFSConfig) ([]*core.TDVFS, error) {
	var daemons []*core.TDVFS
	for i, n := range c.Nodes {
		act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			return nil, err
		}
		d, err := core.NewTDVFS(cfg, core.SysfsTemp(n.FS, n.Hwmon.TempInput), act)
		if err != nil {
			return nil, err
		}
		c.AddNodeController(i, d)
		daemons = append(daemons, d)
	}
	return daemons, nil
}

// attachHybrid installs the unified controller on every node: a dynamic
// fan controller (policy fanPp, duty cap maxDuty) coordinated with a
// tDVFS daemon.
func attachHybrid(c *cluster.Cluster, fanPp int, maxDuty float64, cfg core.TDVFSConfig) ([]*core.Hybrid, error) {
	var hybrids []*core.Hybrid
	for i, n := range c.Nodes {
		read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
		port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		fan, err := core.NewController(core.DefaultConfig(fanPp), read,
			core.ActuatorBinding{Actuator: core.NewFanActuator(port, maxDuty)})
		if err != nil {
			return nil, err
		}
		act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			return nil, err
		}
		d, err := core.NewTDVFS(cfg, read, act)
		if err != nil {
			return nil, err
		}
		h := core.NewHybrid(fan, d)
		c.AddNodeController(i, h)
		hybrids = append(hybrids, h)
	}
	return hybrids, nil
}

// attachCPUSpeed installs a CPUSPEED daemon on every node.
func attachCPUSpeed(c *cluster.Cluster) error {
	for i, n := range c.Nodes {
		cs, err := baseline.NewCPUSpeed(baseline.DefaultCPUSpeedConfig(), n.FS,
			&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			return err
		}
		c.AddNodeController(i, cs)
	}
	return nil
}

// newCluster builds the standard 4-node experiment cluster, settled at
// idle.
func newCluster(nodes int, seed uint64) (*cluster.Cluster, error) {
	c, err := cluster.New(nodes, cluster.DefaultDt, seed)
	if err != nil {
		return nil, err
	}
	c.SetWorkers(Workers)
	c.Settle(0)
	return c, nil
}

// avgAcrossNodes returns the mean over nodes of the given per-node
// series statistic.
func avgAcrossNodes(rec *trace.Recorder, nodes int, suffix string,
	stat func(*trace.Series) float64) float64 {
	var sum float64
	for i := 0; i < nodes; i++ {
		s := rec.Series(fmt.Sprintf("n%d_%s", i, suffix))
		if s == nil {
			return 0
		}
		sum += stat(s)
	}
	return sum / float64(nodes)
}

// meterAvgW returns the average wall power across the cluster's nodes.
func meterAvgW(c *cluster.Cluster) float64 {
	var sum float64
	for _, n := range c.Nodes {
		sum += n.Meter.AverageW()
	}
	return sum / float64(len(c.Nodes))
}

// totalTransitions sums frequency transitions across nodes.
func totalTransitions(c *cluster.Cluster) uint64 {
	var sum uint64
	for _, n := range c.Nodes {
		sum += n.CPU.Transitions()
	}
	return sum
}
