package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// WorkloadRow is one kernel's thermal/power profile.
type WorkloadRow struct {
	Name string
	// ExecS and Exec20S are execution times at 2.4 and 2.0 GHz.
	ExecS   float64
	Exec20S float64
	// SlowdownPct is the 2.0 GHz slowdown — the in-band technique's
	// price on this kernel.
	SlowdownPct float64
	// AvgPowerW and PeakC characterize the thermal demand at nominal
	// frequency under a fixed 50% fan.
	AvgPowerW float64
	PeakC     float64
}

// WorkloadStudyResult profiles the NPB-like kernel suite: how much heat
// each kernel generates and what down-clocking costs it. The spread is
// the paper's §1 claim that "the behavior of parallel applications
// provides significant opportunities for power and thermal reductions"
// made quantitative: a memory-bound kernel offers nearly free in-band
// cooling, a compute-bound one pays full price.
type WorkloadStudyResult struct {
	Rows []WorkloadRow
}

// WorkloadStudy runs each kernel on 4 nodes with the fan pinned at 50%
// duty, at 2.4 GHz and again at 2.0 GHz.
func WorkloadStudy(seed uint64) (*WorkloadStudyResult, error) {
	progs := []workload.Program{
		workload.EPB4(), workload.BTB4(), workload.LUB4(),
		workload.MGB4(), workload.CGB4(),
	}
	res := &WorkloadStudyResult{}
	for _, prog := range progs {
		row := WorkloadRow{Name: prog.Name}
		for _, freq := range []float64{2.4, 2.0} {
			c, err := newCluster(4, seed)
			if err != nil {
				return nil, err
			}
			for _, n := range c.Nodes {
				if err := n.FS.WriteInt(n.Hwmon.PWMEnable, 1); err != nil {
					return nil, err
				}
				if err := n.FS.WriteInt(n.Hwmon.PWM, 128); err != nil { // ≈50%
					return nil, err
				}
				if !n.CPU.SetFreqGHz(freq) {
					return nil, fmt.Errorf("no %v GHz state", freq)
				}
			}
			p := newProbe(c, time.Second)
			run := c.RunProgram(prog, 0)
			if freq == 2.4 {
				row.ExecS = run.ExecTime.Seconds()
				row.AvgPowerW = meterAvgW(c)
				row.PeakC = maxAcross(p.rec, len(c.Nodes))
			} else {
				row.Exec20S = run.ExecTime.Seconds()
			}
		}
		row.SlowdownPct = (row.Exec20S/row.ExecS - 1) * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func maxAcross(rec *trace.Recorder, nodes int) float64 {
	peak := -1e9
	for i := 0; i < nodes; i++ {
		if s := rec.Series(fmt.Sprintf("n%d_temp", i)); s != nil && s.Max() > peak {
			peak = s.Max()
		}
	}
	return peak
}

// Row returns the named kernel's row, or nil.
func (r *WorkloadStudyResult) Row(name string) *WorkloadRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// String prints the suite profile.
func (r *WorkloadStudyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: NPB-like kernel suite, 4 nodes, fan pinned at 50%%\n")
	fmt.Fprintf(&sb, "  %-8s %-10s %-10s %-9s %-10s\n",
		"kernel", "exec s", "avg W", "peak degC", "2.0GHz cost")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-8s %-10.1f %-10.2f %-9.2f %+.1f%%\n",
			row.Name, row.ExecS, row.AvgPowerW, row.PeakC, row.SlowdownPct)
	}
	fmt.Fprintf(&sb, "  (memory-bound kernels offer near-free in-band cooling;\n")
	fmt.Fprintf(&sb, "   compute-bound ones pay the full frequency ratio)\n")
	return sb.String()
}
