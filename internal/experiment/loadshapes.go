package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/config"
	"thermctl/internal/workload"
)

// The load-shapes study sweeps the fan policy Pp across the workload
// plane's generator library — seeded random draws, stepped programs, a
// compressed diurnal cycle and a flash-crowd spike — over a
// heterogeneous fleet declared entirely through the scenario layer:
// standard nodes, a weak-fan group and a hot-inlet group. It is the
// demand-side complement of Fig5: where Fig5 varies the policy under
// one NPB program, this varies the *shape* of open-loop demand and asks
// whether the controller's policy ordering (lower Pp → cooler fleet)
// survives every shape and hardware class at once.

// loadShapesRunFor is each cell's simulated duration, long enough for
// the slowest shape (the diurnal cycle below) to complete two periods.
const loadShapesRunFor = 120 * time.Second

// LoadShapesRow is one (shape, Pp) cell of the sweep.
type LoadShapesRow struct {
	// Shape names the workload spec driving the fleet.
	Shape string
	// Pp is the fan policy of the run.
	Pp int
	// AvgW is the average wall power per node.
	AvgW float64
	// MaxDieC is the hottest physical die temperature observed anywhere
	// in the fleet; GroupMaxC breaks it down per declared node group.
	MaxDieC   float64
	GroupMaxC map[string]float64
	// HotSeconds is the total simulated time any node's physical die
	// spent above the tuning's Tmax.
	HotSeconds float64
}

// LoadShapesResult is the full sweep.
type LoadShapesResult struct {
	Seed   uint64
	Shapes []string
	Pps    []int
	Rows   []LoadShapesRow
}

// loadShapeSpecs returns the shape library of the sweep, in report
// order. Periods are compressed so every shape completes within the
// cell duration; seeds are irrelevant here (Spec.Build derives them
// from the scenario seed).
func loadShapeSpecs() []struct {
	name string
	spec workload.Spec
} {
	return []struct {
		name string
		spec workload.Spec
	}{
		{"random", workload.Spec{Kind: workload.KindRandom, Dist: "heavytail", Alpha: 1.4, Min: 0.05, Max: 1, HoldMS: 2000}},
		{"steps", workload.Spec{Kind: workload.KindSteps, Levels: []float64{0.2, 0.9, 0.5, 1.0}, HoldMS: 10_000, Loop: true}},
		{"diurnal", workload.Spec{Kind: workload.KindDiurnal, Base: 0.45, Amplitude: 0.45, PeriodMS: 60_000}},
		{"flashcrowd", workload.Spec{Kind: workload.KindFlashCrowd, Base: 0.2, Peak: 1, AtMS: 30_000, RiseMS: 2000, DecayMS: 25_000}},
	}
}

// loadShapesFleet is the heterogeneous fleet every cell runs on: four
// standard nodes, two with a crippled fan, two breathing pre-heated
// rack air.
func loadShapesFleet() []config.GroupSpec {
	return []config.GroupSpec{
		{Name: "std", Nodes: 4},
		{Name: "weakfan", Nodes: 2, Hardware: config.HardwareSpec{FanMaxRPM: 2800}},
		{Name: "hotinlet", Nodes: 2, Hardware: config.HardwareSpec{AmbientOffsetC: 6}},
	}
}

// groupTracker samples physical die temperature per declared group and
// accumulates fleet-wide threshold violation time.
type groupTracker struct {
	c      *cluster.Cluster
	groups []config.BuiltGroup
	dt     time.Duration
	maxC   []float64
	tmaxC  float64
	hot    time.Duration
}

// OnStep implements cluster.Controller.
func (t *groupTracker) OnStep(now time.Duration) {
	violated := false
	for gi, g := range t.groups {
		for i := g.First; i < g.First+g.Count; i++ {
			d := t.c.Nodes[i].TrueDieC()
			if d > t.maxC[gi] {
				t.maxC[gi] = d
			}
			if d > t.tmaxC {
				violated = true
			}
		}
	}
	if violated {
		t.hot += t.dt
	}
}

// loadShapesCell runs one (shape, Pp) cell over the heterogeneous fleet.
func loadShapesCell(seed uint64, name string, spec workload.Spec, pp int) (LoadShapesRow, error) {
	tune := config.Default()
	tune.Pp = pp
	s := config.Scenario{
		Name:     fmt.Sprintf("loadshapes-%s-pp%d", name, pp),
		Seed:     seed,
		Workers:  Workers,
		Groups:   loadShapesFleet(),
		Workload: &spec,
		Control:  config.ControlSpec{Fan: "dynamic", Tuning: tune},
	}
	rig, err := s.Build()
	if err != nil {
		return LoadShapesRow{}, err
	}
	c := rig.Cluster

	tr := &groupTracker{
		c:      c,
		groups: rig.Groups,
		dt:     c.Clock.Dt(),
		maxC:   make([]float64, len(rig.Groups)),
		tmaxC:  rig.Scenario.Control.Tuning.TmaxC,
	}
	c.AddController(tr)
	c.RunGenerators(rig.Generators, loadShapesRunFor)

	row := LoadShapesRow{
		Shape:      name,
		Pp:         pp,
		AvgW:       meterAvgW(c),
		HotSeconds: tr.hot.Seconds(),
		GroupMaxC:  make(map[string]float64, len(rig.Groups)),
	}
	for gi, g := range rig.Groups {
		row.GroupMaxC[g.Name] = tr.maxC[gi]
		if tr.maxC[gi] > row.MaxDieC {
			row.MaxDieC = tr.maxC[gi]
		}
	}
	return row, nil
}

// LoadShapes runs the full sweep: every shape in the library at
// Pp ∈ {25, 50, 75} over the heterogeneous fleet.
func LoadShapes(seed uint64) (*LoadShapesResult, error) {
	res := &LoadShapesResult{Seed: seed, Pps: []int{25, 50, 75}}
	for _, sh := range loadShapeSpecs() {
		res.Shapes = append(res.Shapes, sh.name)
		for _, pp := range res.Pps {
			row, err := loadShapesCell(seed, sh.name, sh.spec, pp)
			if err != nil {
				return nil, fmt.Errorf("loadshapes %s pp%d: %w", sh.name, pp, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// row returns the (shape, pp) cell, or a zero row.
func (r *LoadShapesResult) row(shape string, pp int) LoadShapesRow {
	for _, row := range r.Rows {
		if row.Shape == shape && row.Pp == pp {
			return row
		}
	}
	return LoadShapesRow{}
}

// CheckPolicyOrdering asserts the sweep's qualitative claims: for every
// load shape, the cooling-leaning policy (Pp 25) never runs the fleet
// hotter than the performance-leaning one (Pp 75), and the hot-inlet
// group is never cooler than the standard group under the same policy —
// the +6 °C inlet offset must show through every demand shape.
func (r *LoadShapesResult) CheckPolicyOrdering() error {
	const slackC = 0.5 // simulation noise tolerance
	for _, shape := range r.Shapes {
		lo, hi := r.row(shape, 25), r.row(shape, 75)
		if lo.MaxDieC == 0 || hi.MaxDieC == 0 {
			return fmt.Errorf("loadshapes: missing cells for %s", shape)
		}
		if lo.MaxDieC > hi.MaxDieC+slackC {
			return fmt.Errorf("loadshapes %s: Pp 25 ran hotter than Pp 75 (%.2f > %.2f C)",
				shape, lo.MaxDieC, hi.MaxDieC)
		}
		for _, pp := range r.Pps {
			row := r.row(shape, pp)
			if row.GroupMaxC["hotinlet"]+slackC < row.GroupMaxC["std"] {
				return fmt.Errorf("loadshapes %s pp%d: hot-inlet group cooler than standard (%.2f < %.2f C)",
					shape, pp, row.GroupMaxC["hotinlet"], row.GroupMaxC["std"])
			}
		}
	}
	return nil
}

// String renders the sweep table.
func (r *LoadShapesResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Load-shape sweep (seed %d): fan policy across demand shapes on a heterogeneous fleet\n", r.Seed)
	fmt.Fprintf(&sb, "fleet: 4x std, 2x weak-fan (2800 RPM), 2x hot-inlet (+6 C)\n")
	fmt.Fprintf(&sb, "%-12s %4s %8s %10s %9s %9s %9s %9s\n",
		"shape", "Pp", "avg W", "max die C", "std C", "weakfan C", "hotinlet", "hot s")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %4d %8.2f %10.2f %9.2f %9.2f %9.2f %9.2f\n",
			row.Shape, row.Pp, row.AvgW, row.MaxDieC,
			row.GroupMaxC["std"], row.GroupMaxC["weakfan"], row.GroupMaxC["hotinlet"],
			row.HotSeconds)
	}
	return sb.String()
}
