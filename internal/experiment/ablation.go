package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/core/window"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// AblationRow is one window configuration's outcome.
type AblationRow struct {
	L1Size, L2Size int
	// SteadyC is the temperature cpu-burn settles at.
	SteadyC float64
	// Moves is the controller's mode-change count — actuator wear.
	Moves uint64
	// JitterMoves is the mode-change count during a pure-jitter phase —
	// the false-reaction metric the 4-entry window minimizes.
	JitterMoves uint64
}

// AblationResult sweeps the two-level window's dimensions, quantifying
// the paper's §3.2.1 design discussion: too small a level-one window
// chases jitter; too large reacts late; the level-two FIFO catches what
// level one cannot.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs cpu-burn (warm-up + steady) followed by a jitter phase
// under each window configuration.
func Ablation(seed uint64) (*AblationResult, error) {
	res := &AblationResult{}
	for _, cfg := range []window.Config{
		{L1Size: 2, L2Size: 5},
		{L1Size: 4, L2Size: 5}, // the paper's choice
		{L1Size: 8, L2Size: 5},
		{L1Size: 4, L2Size: 2},
		{L1Size: 4, L2Size: 10},
	} {
		row, err := ablationRun(seed, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func ablationRun(seed uint64, win window.Config) (AblationRow, error) {
	n, err := node.New(node.DefaultConfig(
		fmt.Sprintf("ablate-%d-%d", win.L1Size, win.L2Size), seed))
	if err != nil {
		return AblationRow{}, err
	}
	n.Settle(0)
	cfg := core.DefaultConfig(50)
	cfg.Window = win
	ctl, err := core.NewController(cfg,
		core.SysfsTemp(n.FS, n.Hwmon.TempInput),
		core.ActuatorBinding{Actuator: core.NewFanActuator(
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
	if err != nil {
		return AblationRow{}, err
	}

	dt := 250 * time.Millisecond
	n.SetGenerator(workload.NewCPUBurn(nil))
	for i := 0; i < 1920; i++ { // 8 min: warm-up and settle
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	row := AblationRow{
		L1Size:  win.L1Size,
		L2Size:  win.L2Size,
		SteadyC: n.TrueDieC(),
	}
	movesAtJitter := ctl.Moves(0)
	n.SetGenerator(workload.Jitter{Low: 0.2, High: 0.9, Period: time.Second})
	for i := 0; i < 1440; i++ { // 6 min of jitter
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	row.Moves = ctl.Moves(0)
	row.JitterMoves = ctl.Moves(0) - movesAtJitter
	return row, nil
}

// Row returns the row for the given window sizes, or nil.
func (r *AblationResult) Row(l1, l2 int) *AblationRow {
	for i := range r.Rows {
		if r.Rows[i].L1Size == l1 && r.Rows[i].L2Size == l2 {
			return &r.Rows[i]
		}
	}
	return nil
}

// String prints the sweep.
func (r *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: two-level window dimensions (cpu-burn then jitter, Pp=50)\n")
	fmt.Fprintf(&sb, "  %-5s %-5s %-12s %-13s %-13s\n",
		"L1", "L2", "steady degC", "total moves", "jitter moves")
	for _, row := range r.Rows {
		marker := ""
		if row.L1Size == 4 && row.L2Size == 5 {
			marker = "  <- paper"
		}
		fmt.Fprintf(&sb, "  %-5d %-5d %-12.2f %-13d %-13d%s\n",
			row.L1Size, row.L2Size, row.SteadyC, row.Moves, row.JitterMoves, marker)
	}
	fmt.Fprintf(&sb, "  (a smaller L1 window chases jitter; a larger one reacts late)\n")
	return sb.String()
}
