package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig6Row is one fan method's outcome on BT.B.4.
type Fig6Row struct {
	Method     FanMethod
	Temp       *trace.Series // node-0 temperature
	Duty       *trace.Series // node-0 duty
	PeakDuty   float64       // paper: dynamic rises past 45%, static ~32%
	SteadyC    float64       // temperature once stabilized
	PeakC      float64
	StabilizeS float64 // seconds until temperature settles into ±0.75 °C of final
	FanEnergyJ float64 // fan electrical energy — the cost of constant control
	ExecS      float64
}

// Fig6Result compares dynamic, traditional-static and constant fan
// control on BT.B.4 over four nodes (Pp=50, max duty 75%).
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 runs the three-way comparison.
func Fig6(seed uint64) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, m := range []FanMethod{FanDynamic, FanStatic, FanConstant} {
		row, err := fig6Run(seed, m)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fig6Run(seed uint64, method FanMethod) (Fig6Row, error) {
	c, err := newCluster(4, seed)
	if err != nil {
		return Fig6Row{}, err
	}
	if _, err := attachFanControl(c, method, 50, 75); err != nil {
		return Fig6Row{}, err
	}
	p := newProbe(c, 250*time.Millisecond)
	run := c.RunProgram(workload.BTB4(), 0)

	temp := p.rec.Series("n0_temp")
	duty := p.rec.Series("n0_duty")
	row := Fig6Row{
		Method:     method,
		Temp:       temp,
		Duty:       duty,
		PeakDuty:   duty.Max(),
		SteadyC:    temp.MeanAfter(run.ExecTime / 2),
		PeakC:      temp.Max(),
		StabilizeS: temp.StabilizationTime(0.75).Seconds(),
		ExecS:      run.ExecTime.Seconds(),
	}
	var fanJ float64
	for _, n := range c.Nodes {
		fanJ += n.Meter.FanEnergyJ()
	}
	row.FanEnergyJ = fanJ / float64(len(c.Nodes))
	return row, nil
}

// Row returns the row for the given method, or nil.
func (r *Fig6Result) Row(m FanMethod) *Fig6Row {
	for i := range r.Rows {
		if r.Rows[i].Method == m {
			return &r.Rows[i]
		}
	}
	return nil
}

// String prints the Figure 6 summary.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: fan methods on BT.B.4 (4 nodes, Pp=50, max duty 75%%)\n")
	fmt.Fprintf(&sb, "  %-10s %-10s %-11s %-9s %-12s %-12s\n",
		"method", "peak duty", "steady degC", "peak degC", "stabilize s", "fan energy J")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-10s %-10.1f %-11.2f %-9.2f %-12.1f %-12.1f\n",
			row.Method, row.PeakDuty, row.SteadyC, row.PeakC, row.StabilizeS, row.FanEnergyJ)
	}
	fmt.Fprintf(&sb, "  (paper: dynamic proactively exceeds 45%% duty vs static 32%%;\n")
	fmt.Fprintf(&sb, "   dynamic stabilizes sooner & lower; constant-75%% coldest, costliest)\n")
	return sb.String()
}
