package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/faults"
	"thermctl/internal/workload"
)

// The chaos harness exercises the resilience plane end to end: seeded
// fault campaigns run against the full simulated stack (devices, fault
// plane, hybrid control, fail-safe degradation) and the survival report
// answers the questions that matter when control is blind — how long
// until the fail-safe acted, how hot the die got, whether the hardware
// trip point ever fired, and how fast control came back.

// chaosSamplePeriod matches the controllers' sampling, so "blind rounds"
// counts control opportunities lost.
const chaosSamplePeriod = 250 * time.Millisecond

// emergencyC is the node hardware trip point the survival report
// measures margins against (node.DefaultConfig's ProtectC).
const emergencyC = 70.0

// DropoutResult reports the single-node total-sensor-dropout scenario:
// the sensor goes completely dark for 30 s under sustained load.
type DropoutResult struct {
	// FailStart/FailEnd bound the dropout episode.
	FailStart, FailEnd time.Duration
	// Escalated reports whether the fan controller's fail-safe engaged;
	// EscalateAt is when.
	Escalated  bool
	EscalateAt time.Duration
	// FanMaxReached reports whether the fan hit its maximum duty while
	// the sensor was dark; FanMaxAt is the first such sample.
	FanMaxReached bool
	FanMaxAt      time.Duration
	// Released reports whether the fail-safe released after the sensor
	// recovered; ReleaseAt is when.
	Released  bool
	ReleaseAt time.Duration
	// BlindRounds counts control samples between the dropout start and
	// the escalation — rounds with neither data nor fail-safe.
	BlindRounds int
	// MaxDieC is the physical die peak over the whole run (the sensor
	// lies during the dropout; this is ground truth).
	MaxDieC float64
	// Emergencies counts hardware trip-point firings (must stay 0).
	Emergencies uint64
	// FinalDuty is the fan duty at the end of the run — back under
	// normal control, well below maximum.
	FinalDuty float64
}

// EscalateLatency is dropout start → fail-safe engaged.
func (r *DropoutResult) EscalateLatency() time.Duration { return r.EscalateAt - r.FailStart }

// RecoverLatency is sensor recovery → fail-safe released.
func (r *DropoutResult) RecoverLatency() time.Duration { return r.ReleaseAt - r.FailEnd }

// CampaignResult reports the sharded-cluster campaign: a generated
// multi-fault schedule (dropouts, spikes, NAK bursts, fan degradation,
// stalls...) across every node of a 4-node cluster.
type CampaignResult struct {
	// Nodes and Episodes size the campaign.
	Nodes, Episodes int
	// Transitions counts fault-plane edges (begin + clear events).
	Transitions int
	// FanEscalations / DVFSEscalations count fail-safe engagements
	// across all nodes' controllers.
	FanEscalations, DVFSEscalations uint64
	// BusErrors counts controller-visible read/actuation failures.
	BusErrors uint64
	// MaxDieC is the hottest physical die over the run.
	MaxDieC float64
	// Emergencies counts hardware trip-point firings across nodes.
	Emergencies uint64
	// Timeline is the fault plane's event log, one line per edge.
	Timeline string
}

// ChaosResult is the full survival report.
type ChaosResult struct {
	Seed     uint64
	Dropout  DropoutResult
	Campaign CampaignResult
}

// chaosTracker samples ground truth the probes cannot see: physical die
// temperature every step and fan duty at control granularity.
type chaosTracker struct {
	c         *cluster.Cluster
	next      time.Duration
	maxDie    float64
	fanMaxAt  time.Duration
	fanMaxHit bool
}

// OnStep implements cluster.Controller.
func (t *chaosTracker) OnStep(now time.Duration) {
	for _, n := range t.c.Nodes {
		if d := n.TrueDieC(); d > t.maxDie {
			t.maxDie = d
		}
	}
	if now < t.next {
		return
	}
	t.next += chaosSamplePeriod
	if !t.fanMaxHit && t.c.Nodes[0].Fan.Duty() >= 99.5 {
		t.fanMaxHit = true
		t.fanMaxAt = now
	}
}

// Chaos runs both scenarios and assembles the survival report.
func Chaos(seed uint64) (*ChaosResult, error) {
	res := &ChaosResult{Seed: seed}
	d, err := chaosDropout(seed)
	if err != nil {
		return nil, err
	}
	res.Dropout = d
	camp, err := chaosCampaign(seed)
	if err != nil {
		return nil, err
	}
	res.Campaign = camp
	return res, nil
}

// chaosDropout is the acceptance scenario: one node, hybrid control,
// sustained near-full load, and a 30 s total sensor dropout. The
// fail-safe must drive the fan to maximum within its escalation window,
// the die must never reach the hardware trip point, and control must
// resume within the recovery window once the sensor returns.
func chaosDropout(seed uint64) (DropoutResult, error) {
	const (
		failStart = 20 * time.Second
		failFor   = 30 * time.Second
		runFor    = 90 * time.Second
	)
	c, err := newCluster(1, seed)
	if err != nil {
		return DropoutResult{}, err
	}
	plan := faults.Plan{
		Name: "dropout-single",
		Schedules: []faults.Schedule{{
			Target: c.Nodes[0].Name,
			Episodes: []faults.Episode{{
				Kind:     faults.SensorDropout,
				Start:    faults.Dur(failStart),
				Duration: faults.Dur(failFor),
			}},
		}},
	}
	if _, err := c.ApplyFaults(plan, seed); err != nil {
		return DropoutResult{}, err
	}
	hybrids, err := attachHybrid(c, 50, 100, core.DefaultTDVFSConfig(50))
	if err != nil {
		return DropoutResult{}, err
	}
	tr := &chaosTracker{c: c}
	c.AddController(tr)

	c.RunGenerator(workload.Constant(0.95), runFor)

	r := DropoutResult{
		FailStart:   failStart,
		FailEnd:     failStart + failFor,
		MaxDieC:     tr.maxDie,
		Emergencies: c.Nodes[0].Emergencies(),
		FinalDuty:   c.Nodes[0].Fan.Duty(),
	}
	for _, ev := range hybrids[0].FailSafeEvents() {
		if ev.Lane != "fan" {
			continue
		}
		switch {
		case ev.Engaged && !r.Escalated:
			r.Escalated = true
			r.EscalateAt = ev.At
		case !ev.Engaged && !r.Released:
			r.Released = true
			r.ReleaseAt = ev.At
		}
	}
	r.FanMaxReached, r.FanMaxAt = tr.fanMaxHit, tr.fanMaxAt
	if r.Escalated {
		r.BlindRounds = int((r.EscalateAt - r.FailStart) / chaosSamplePeriod)
	}
	return r, nil
}

// chaosCampaign runs a generated multi-fault schedule across a 4-node
// cluster under hybrid control and tallies the damage.
func chaosCampaign(seed uint64) (CampaignResult, error) {
	const (
		planSpan = 60 * time.Second
		runFor   = 75 * time.Second
	)
	c, err := newCluster(4, seed)
	if err != nil {
		return CampaignResult{}, err
	}
	targets := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		targets[i] = n.Name
	}
	plan := faults.Generate(seed, targets, planSpan)
	plane, err := c.ApplyFaults(plan, seed)
	if err != nil {
		return CampaignResult{}, err
	}
	hybrids, err := attachHybrid(c, 50, 100, core.DefaultTDVFSConfig(50))
	if err != nil {
		return CampaignResult{}, err
	}
	tr := &chaosTracker{c: c}
	c.AddController(tr)

	c.RunGenerator(workload.Constant(0.85), runFor)

	r := CampaignResult{
		Nodes:       len(c.Nodes),
		Transitions: len(plane.Events()),
		MaxDieC:     tr.maxDie,
		Timeline:    plane.Timeline(),
	}
	for _, sch := range plan.Schedules {
		r.Episodes += len(sch.Episodes)
	}
	for _, h := range hybrids {
		for _, ev := range h.FailSafeEvents() {
			if !ev.Engaged {
				continue
			}
			switch ev.Lane {
			case "fan":
				r.FanEscalations++
			case "dvfs":
				r.DVFSEscalations++
			}
		}
		r.BusErrors += h.Errors()
	}
	for _, n := range c.Nodes {
		r.Emergencies += n.Emergencies()
	}
	return r, nil
}

// String renders the survival report.
func (r *ChaosResult) String() string {
	var sb strings.Builder
	d := &r.Dropout
	fmt.Fprintf(&sb, "Chaos survival report (seed %d)\n", r.Seed)
	fmt.Fprintf(&sb, "Scenario A: total sensor dropout %v..%v, 1 node, hybrid Pp=50\n",
		d.FailStart, d.FailEnd)
	if d.Escalated {
		fmt.Fprintf(&sb, "  fail-safe engaged   %-8v (+%v after dropout, %d blind rounds)\n",
			d.EscalateAt, d.EscalateLatency(), d.BlindRounds)
	} else {
		fmt.Fprintf(&sb, "  fail-safe engaged   NEVER\n")
	}
	if d.FanMaxReached {
		fmt.Fprintf(&sb, "  fan at max duty     %-8v\n", d.FanMaxAt)
	} else {
		fmt.Fprintf(&sb, "  fan at max duty     NEVER\n")
	}
	if d.Released {
		fmt.Fprintf(&sb, "  fail-safe released  %-8v (+%v after sensor recovery)\n",
			d.ReleaseAt, d.RecoverLatency())
	} else {
		fmt.Fprintf(&sb, "  fail-safe released  NEVER\n")
	}
	fmt.Fprintf(&sb, "  max die             %.2f degC (%.2f margin to the %.0f degC trip point)\n",
		d.MaxDieC, emergencyC-d.MaxDieC, emergencyC)
	fmt.Fprintf(&sb, "  emergencies         %d\n", d.Emergencies)
	fmt.Fprintf(&sb, "  final fan duty      %.1f%%\n", d.FinalDuty)

	ca := &r.Campaign
	fmt.Fprintf(&sb, "Scenario B: generated campaign, %d nodes, %d episodes, hybrid Pp=50\n",
		ca.Nodes, ca.Episodes)
	fmt.Fprintf(&sb, "  fault transitions   %d\n", ca.Transitions)
	fmt.Fprintf(&sb, "  fail-safe engaged   fan x%d, dvfs x%d\n", ca.FanEscalations, ca.DVFSEscalations)
	fmt.Fprintf(&sb, "  controller errors   %d\n", ca.BusErrors)
	fmt.Fprintf(&sb, "  max die             %.2f degC\n", ca.MaxDieC)
	fmt.Fprintf(&sb, "  emergencies         %d\n", ca.Emergencies)
	fmt.Fprintf(&sb, "  fault timeline:\n")
	for _, line := range strings.Split(strings.TrimRight(ca.Timeline, "\n"), "\n") {
		fmt.Fprintf(&sb, "    %s\n", line)
	}
	return sb.String()
}
