package experiment

// Extension experiments beyond the paper's evaluation, exercising the
// paper's motivation (§1: thermal emergencies slow or shut down
// systems) and its stated future work (§5: "how our thermal controllers
// scale in large-scale clusters").

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/baseline"
	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// FanFailureRow is one control configuration's outcome after a fan
// failure.
type FanFailureRow struct {
	Config       string
	Emergencies  uint64
	ProtectedS   float64 // time under hardware clamp
	PeakC        float64
	FinalFreqGHz float64
	AvgPowerW    float64
	TDVFSRescues uint64 // tDVFS downscales after the failure
}

// FanFailureResult compares how the system rides out a seized CPU fan
// under three configurations: no thermal daemon at all (only the
// hardware trip point), the traditional static fan controller (blind —
// it commands a dead fan), and tDVFS (which rescues the node in-band).
type FanFailureResult struct {
	FailAtS float64
	Rows    []FanFailureRow
}

// FanFailure runs cpu-burn on one node, seizes the fan at t=90 s, and
// continues for ten more minutes under each configuration.
func FanFailure(seed uint64) (*FanFailureResult, error) {
	res := &FanFailureResult{FailAtS: 90}
	for _, config := range []string{"unprotected", "static-fan", "tDVFS"} {
		row, err := fanFailureRun(seed, config, res.FailAtS)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fanFailureRun(seed uint64, config string, failAtS float64) (FanFailureRow, error) {
	cfg := node.DefaultConfig("fanfail-"+config, seed)
	cfg.ProtectC = 66 // within reach of a dead fan under cpu-burn
	n, err := node.New(cfg)
	if err != nil {
		return FanFailureRow{}, err
	}
	n.Settle(0)

	read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
	var controllers []interface{ OnStep(time.Duration) }
	var dvfs *core.TDVFS
	switch config {
	case "unprotected":
		// Fan pinned at a healthy 50% until it dies; nothing reacts.
		port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		if err := port.SetDutyPercent(50); err != nil {
			return FanFailureRow{}, err
		}
	case "static-fan":
		s, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(100), read,
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
		if err != nil {
			return FanFailureRow{}, err
		}
		controllers = append(controllers, s)
	case "tDVFS":
		s, err := baseline.NewStaticFan(baseline.DefaultStaticFanConfig(100), read,
			&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon})
		if err != nil {
			return FanFailureRow{}, err
		}
		act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			return FanFailureRow{}, err
		}
		tcfg := core.DefaultTDVFSConfig(50)
		d, err := core.NewTDVFS(tcfg, read, act)
		if err != nil {
			return FanFailureRow{}, err
		}
		dvfs = d
		controllers = append(controllers, s, d)
	}

	n.SetGenerator(workload.NewCPUBurn(nil))
	peak := &trace.Series{}
	var downsBefore uint64
	dt := 250 * time.Millisecond
	total := 12 * time.Minute
	failed := false
	for n.Elapsed() < total {
		n.Step(dt)
		for _, c := range controllers {
			c.OnStep(n.Elapsed())
		}
		if !failed && n.Elapsed().Seconds() >= failAtS {
			failed = true
			n.Fan.SetFailed(true)
			if dvfs != nil {
				downsBefore = dvfs.Downscales()
			}
		}
		peak.Add(n.Elapsed(), n.TrueDieC())
	}

	row := FanFailureRow{
		Config:       config,
		Emergencies:  n.Emergencies(),
		ProtectedS:   n.ProtectedTime().Seconds(),
		PeakC:        peak.Max(),
		FinalFreqGHz: n.CPU.FreqGHz(),
		AvgPowerW:    n.Meter.AverageW(),
	}
	if dvfs != nil {
		row.TDVFSRescues = dvfs.Downscales() - downsBefore
	}
	return row, nil
}

// Row returns the named configuration's row, or nil.
func (r *FanFailureResult) Row(config string) *FanFailureRow {
	for i := range r.Rows {
		if r.Rows[i].Config == config {
			return &r.Rows[i]
		}
	}
	return nil
}

// String prints the comparison.
func (r *FanFailureResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: CPU fan seizes at t=%.0f s under cpu-burn (trip point 66 degC)\n", r.FailAtS)
	fmt.Fprintf(&sb, "  %-12s %-12s %-12s %-9s %-10s %-8s\n",
		"config", "emergencies", "clamped s", "peak degC", "final GHz", "rescues")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-12s %-12d %-12.1f %-9.2f %-10.1f %-8d\n",
			row.Config, row.Emergencies, row.ProtectedS, row.PeakC, row.FinalFreqGHz, row.TDVFSRescues)
	}
	fmt.Fprintf(&sb, "  (tDVFS rescues the node in-band before the hardware trip point,\n")
	fmt.Fprintf(&sb, "   avoiding the uncontrolled emergency slowdown)\n")
	return sb.String()
}

// ScalingRow is one cluster size's outcome.
type ScalingRow struct {
	Nodes       int
	ExecS       float64
	IdealS      float64
	OverheadPct float64 // (exec-ideal)/ideal
	MaxTempC    float64
	TempSpreadC float64 // hottest minus coolest node steady temp
	Triggers    int     // nodes whose tDVFS engaged
}

// ScalingResult is the future-work scaling study: the unified
// controller on growing clusters.
type ScalingResult struct {
	Rows []ScalingRow
}

// Scaling runs a shortened BT-like program under the hybrid controller
// on clusters of 2, 4, 8 and 16 nodes. Per-node controllers are fully
// decentralized, so the question is whether barrier coupling amplifies
// per-node thermal decisions into cluster-wide slowdown as the size
// grows.
func Scaling(seed uint64) (*ScalingResult, error) {
	prog := workload.Uniform("mini-BT", 120, workload.Iteration{
		ComputeGC: 1.729, ComputeUtil: 1.0, MemSec: 0.175, CommSec: 0.175, CommUtil: 0.10,
	})
	res := &ScalingResult{}
	for _, size := range []int{2, 4, 8, 16} {
		c, err := cluster.New(size, cluster.DefaultDt, seed)
		if err != nil {
			return nil, err
		}
		c.SetWorkers(Workers)
		c.Settle(0)
		hybrids, err := attachHybrid(c, 50, 30, core.DefaultTDVFSConfig(50))
		if err != nil {
			return nil, err
		}
		run := c.RunProgram(prog, 0)

		row := ScalingRow{
			Nodes:  size,
			ExecS:  run.ExecTime.Seconds(),
			IdealS: prog.IdealSeconds(2.4),
		}
		row.OverheadPct = (row.ExecS - row.IdealS) / row.IdealS * 100
		lo, hi := 1e9, -1e9
		for _, n := range c.Nodes {
			t := n.TrueDieC()
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
		row.MaxTempC, row.TempSpreadC = hi, hi-lo
		for _, h := range hybrids {
			if _, ok := h.DVFS.TriggeredAt(); ok {
				row.Triggers++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the scaling table.
func (r *ScalingResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: unified controller vs cluster size (mini-BT, Pp=50, cap 30%%)\n")
	fmt.Fprintf(&sb, "  %-7s %-9s %-9s %-11s %-10s %-12s %-9s\n",
		"nodes", "exec s", "ideal s", "overhead %", "max degC", "spread degC", "triggers")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-7d %-9.1f %-9.1f %-11.2f %-10.2f %-12.2f %-9d\n",
			row.Nodes, row.ExecS, row.IdealS, row.OverheadPct, row.MaxTempC,
			row.TempSpreadC, row.Triggers)
	}
	fmt.Fprintf(&sb, "  (decentralized per-node control: overhead should grow slowly with size)\n")
	return sb.String()
}
