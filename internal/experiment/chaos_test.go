package experiment

import (
	"strings"
	"testing"
	"time"

	"thermctl/internal/core"
)

// TestChaosDropoutSurvival asserts the acceptance criteria of the
// resilience plane: under a 30 s total sensor dropout the fail-safe
// drives the fan to maximum within its escalation window, the die never
// reaches the hardware trip point, and control recovers within the
// recovery window once the sensor returns.
func TestChaosDropoutSurvival(t *testing.T) {
	r, err := chaosDropout(Seed)
	if err != nil {
		t.Fatal(err)
	}
	fs := core.DefaultFailSafeConfig()
	if !r.Escalated {
		t.Fatal("fail-safe never engaged during a 30s total sensor dropout")
	}
	escWindow := time.Duration(fs.EscalateErrors+2) * chaosSamplePeriod
	if lat := r.EscalateLatency(); lat > escWindow {
		t.Errorf("escalate latency %v exceeds window %v", lat, escWindow)
	}
	if !r.FanMaxReached {
		t.Fatal("fan never reached max duty while blind")
	}
	if r.FanMaxAt > r.FailStart+escWindow {
		t.Errorf("fan at max only at %v, want within %v of dropout start", r.FanMaxAt, escWindow)
	}
	if r.MaxDieC >= emergencyC {
		t.Errorf("die peaked at %.2f degC, at or above the %v degC trip point", r.MaxDieC, emergencyC)
	}
	if r.Emergencies != 0 {
		t.Errorf("hardware protection fired %d times, want 0", r.Emergencies)
	}
	if !r.Released {
		t.Fatal("fail-safe never released after the sensor recovered")
	}
	recWindow := time.Duration(fs.RecoverSamples+2) * chaosSamplePeriod
	if lat := r.RecoverLatency(); lat > recWindow {
		t.Errorf("recover latency %v exceeds window %v", lat, recWindow)
	}
	if r.FinalDuty >= 100 {
		t.Errorf("fan still pinned at %.1f%% at run end; control did not resume", r.FinalDuty)
	}
	if r.BlindRounds <= 0 || r.BlindRounds > fs.EscalateErrors+2 {
		t.Errorf("BlindRounds = %d, want in (0, %d]", r.BlindRounds, fs.EscalateErrors+2)
	}
}

func TestChaosCampaignSurvivesAndIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaign runs")
	}
	a, err := Chaos(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Campaign.Episodes == 0 || a.Campaign.Transitions == 0 {
		t.Errorf("campaign scheduled nothing: %+v", a.Campaign)
	}
	if a.Campaign.BusErrors == 0 {
		t.Error("campaign injected faults but controllers saw zero errors")
	}
	rep := a.String()
	for _, want := range []string{"Chaos survival report", "Scenario A", "Scenario B", "fault timeline"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	b, err := Chaos(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if rep != b.String() {
		t.Error("same seed produced different survival reports")
	}
}
