package experiment

import (
	"strings"
	"testing"

	"thermctl/internal/workload"
)

// TestLoadShapesPolicyOrdering runs the full sweep and asserts its
// qualitative claims: the policy ordering (Pp 25 never hotter than
// Pp 75) holds for every demand shape, the +6 C hot-inlet group shows
// through every shape, and nothing trips the emergency threshold.
func TestLoadShapesPolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve generator-driven fleet runs")
	}
	r, err := LoadShapes(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckPolicyOrdering(); err != nil {
		t.Error(err)
	}
	if want := len(r.Shapes) * len(r.Pps); len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if row.MaxDieC >= emergencyC {
			t.Errorf("%s pp%d: die peaked at %.2f degC, at or above the trip point",
				row.Shape, row.Pp, row.MaxDieC)
		}
		if len(row.GroupMaxC) != 3 {
			t.Errorf("%s pp%d: %d group maxima, want 3", row.Shape, row.Pp, len(row.GroupMaxC))
		}
	}
	if !strings.Contains(r.String(), "weakfan") {
		t.Error("report missing the per-group columns")
	}
}

// TestLoadShapesCellDeterministic re-runs one cell and compares: the
// per-node seeded generator path must preserve bit-reproducibility
// through the scenario layer.
func TestLoadShapesCellDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweep cells")
	}
	spec := workload.Spec{Kind: workload.KindRandom, Dist: "heavytail", Alpha: 1.4, Min: 0.05, Max: 1, HoldMS: 2000}
	a, err := loadShapesCell(Seed, "random", spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadShapesCell(Seed, "random", spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgW != b.AvgW || a.MaxDieC != b.MaxDieC || a.HotSeconds != b.HotSeconds {
		t.Errorf("same seed, different rows:\n%+v\n%+v", a, b)
	}
	for name, v := range a.GroupMaxC {
		if b.GroupMaxC[name] != v {
			t.Errorf("group %s: %.6f vs %.6f", name, v, b.GroupMaxC[name])
		}
	}
}
