package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/node"
	"thermctl/internal/rack"
	"thermctl/internal/rng"
	"thermctl/internal/workload"
)

// RackRow is one slot's outcome in the rack study. FanDuty is the duty
// averaged over the run: the instantaneous duty dithers with sensor
// noise, but the time average robustly shows which slot's fan worked
// harder.
type RackRow struct {
	Slot    int
	InletC  float64
	DieC    float64
	FanDuty float64
	FreqGHz float64
}

// RackStudyResult contrasts a fixed equal fan speed against per-node
// unified control on a rack with hot-air recirculation.
type RackStudyResult struct {
	Fixed   []RackRow
	Unified []RackRow
}

// RackStudy builds a 4-slot rack with recirculation coupling, loads it
// with cpu-burn for ten minutes, and records the steady per-slot state
// under (a) an equal fixed 45% duty everywhere and (b) the unified
// controller per node.
func RackStudy(seed uint64) (*RackStudyResult, error) {
	res := &RackStudyResult{}
	for _, unified := range []bool{false, true} {
		rows, err := rackRun(seed, unified)
		if err != nil {
			return nil, err
		}
		if unified {
			res.Unified = rows
		} else {
			res.Fixed = rows
		}
	}
	return res, nil
}

func rackRun(seed uint64, unified bool) ([]RackRow, error) {
	var nodes []*node.Node
	for i := 0; i < 4; i++ {
		// Per-slot seeds are mixed, not offset: an additive stride would
		// hand two studies whose seeds differ by a multiple of it the
		// same node noise streams.
		n, err := node.New(node.DefaultConfig(fmt.Sprintf("slot%d", i), rng.Mix(seed, uint64(i))))
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	c, err := cluster.NewWithNodes(nodes, cluster.DefaultDt)
	if err != nil {
		return nil, err
	}
	c.SetWorkers(Workers)
	c.Settle(1)
	r, err := rack.New(rack.Default(), nodes)
	if err != nil {
		return nil, err
	}
	c.AddController(r)
	for i, n := range nodes {
		if unified {
			fan, err := core.NewController(core.DefaultConfig(50),
				core.SysfsTemp(n.FS, n.Hwmon.TempInput),
				core.ActuatorBinding{Actuator: core.NewFanActuator(
					&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
			if err != nil {
				return nil, err
			}
			act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
			if err != nil {
				return nil, err
			}
			d, err := core.NewTDVFS(core.DefaultTDVFSConfig(50),
				core.SysfsTemp(n.FS, n.Hwmon.TempInput), act)
			if err != nil {
				return nil, err
			}
			c.AddNodeController(i, core.NewHybrid(fan, d))
		} else {
			port := &core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
			if err := port.SetDutyPercent(45); err != nil {
				return nil, err
			}
		}
	}
	// Average each slot's duty over the run: the per-step duty dithers
	// with sensor noise around the controller's operating point.
	dutySum := make([]float64, len(nodes))
	steps := 0
	c.AddController(cluster.ControllerFunc(func(time.Duration) {
		for i, n := range nodes {
			dutySum[i] += n.Fan.Duty()
		}
		steps++
	}))
	c.RunGenerator(workload.Constant(1), 10*time.Minute)

	rows := make([]RackRow, len(nodes))
	for i, n := range nodes {
		rows[i] = RackRow{
			Slot:    i,
			InletC:  r.InletC(i),
			DieC:    n.TrueDieC(),
			FanDuty: dutySum[i] / float64(steps),
			FreqGHz: n.CPU.FreqGHz(),
		}
	}
	return rows, nil
}

// String prints both configurations side by side.
func (r *RackStudyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: 4-slot rack with hot-air recirculation, cpu-burn everywhere\n")
	fmt.Fprintf(&sb, "  %-5s | %-28s | %-28s\n", "", "fixed 45% duty", "unified control (Pp=50)")
	fmt.Fprintf(&sb, "  %-5s | %-8s %-9s %-8s | %-8s %-9s %-8s\n",
		"slot", "inlet", "die degC", "duty", "inlet", "die degC", "duty")
	for i := range r.Fixed {
		f, u := r.Fixed[i], r.Unified[i]
		fmt.Fprintf(&sb, "  %-5d | %-8.2f %-9.2f %-8.1f | %-8.2f %-9.2f %-8.1f\n",
			i, f.InletC, f.DieC, f.FanDuty, u.InletC, u.DieC, u.FanDuty)
	}
	fmt.Fprintf(&sb, "  (the hot top slot gets proportionally more fan under unified control)\n")
	return sb.String()
}
