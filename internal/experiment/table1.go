package experiment

import (
	"fmt"
	"strings"

	"thermctl/internal/core"
	"thermctl/internal/workload"
)

// Table1Cell is one (daemon, max-duty) configuration's measurements —
// one column of the paper's Table 1.
type Table1Cell struct {
	Daemon      string
	MaxDuty     float64
	FreqChanges uint64  // paper: 101/122/139 (CPUSPEED) vs 2/2/3 (tDVFS)
	ExecS       float64 // paper: 219/222/223 vs 219/233/234
	AvgPowerW   float64 // paper: 99.78/99.30/100.80 vs 97.93/94.19/92.78
	PDP         float64 // power-delay product, W·s
}

// Table1Result is the full table.
type Table1Result struct {
	Cells []Table1Cell
}

// Table1 runs BT on four nodes for every combination of frequency
// daemon {CPUSPEED, tDVFS} and fan capability {75, 50, 25}% maximum
// duty, both coupled with dynamic fan control at Pp=50 as in §4.3.
func Table1(seed uint64) (*Table1Result, error) {
	res := &Table1Result{}
	for _, daemon := range []string{"CPUSPEED", "tDVFS"} {
		for _, cap := range []float64{75, 50, 25} {
			cell, err := table1Run(seed, daemon, cap)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func table1Run(seed uint64, daemon string, cap float64) (Table1Cell, error) {
	c, err := newCluster(4, seed)
	if err != nil {
		return Table1Cell{}, err
	}
	switch daemon {
	case "tDVFS":
		if _, err := attachHybrid(c, 50, cap, core.DefaultTDVFSConfig(50)); err != nil {
			return Table1Cell{}, err
		}
	case "CPUSPEED":
		if _, err := attachFanControl(c, FanDynamic, 50, cap); err != nil {
			return Table1Cell{}, err
		}
		if err := attachCPUSpeed(c); err != nil {
			return Table1Cell{}, err
		}
	}
	run := c.RunProgram(workload.BTB4(), 0)

	avgW := meterAvgW(c)
	return Table1Cell{
		Daemon:      daemon,
		MaxDuty:     cap,
		FreqChanges: totalTransitions(c) / uint64(len(c.Nodes)),
		ExecS:       run.ExecTime.Seconds(),
		AvgPowerW:   avgW,
		PDP:         avgW * run.ExecTime.Seconds(),
	}, nil
}

// Cell returns the cell for (daemon, cap), or nil.
func (r *Table1Result) Cell(daemon string, cap float64) *Table1Cell {
	for i := range r.Cells {
		if r.Cells[i].Daemon == daemon && r.Cells[i].MaxDuty == cap {
			return &r.Cells[i]
		}
	}
	return nil
}

// String prints the table in the paper's layout.
func (r *Table1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: BT under CPUSPEED vs tDVFS (dynamic fan, Pp=50)\n")
	fmt.Fprintf(&sb, "  %-22s", "Max allowed PWM duty")
	for _, daemon := range []string{"CPUSPEED", "tDVFS"} {
		for _, cap := range []float64{75, 50, 25} {
			_ = daemon
			fmt.Fprintf(&sb, " %9.0f%%", cap)
		}
	}
	fmt.Fprintf(&sb, "\n  %-22s", "")
	fmt.Fprintf(&sb, " %s %s\n", centered("CPUSPEED", 32), centered("tDVFS", 32))
	row := func(name string, get func(*Table1Cell) string) {
		fmt.Fprintf(&sb, "  %-22s", name)
		for _, daemon := range []string{"CPUSPEED", "tDVFS"} {
			for _, cap := range []float64{75, 50, 25} {
				cell := r.Cell(daemon, cap)
				fmt.Fprintf(&sb, " %10s", get(cell))
			}
		}
		fmt.Fprintf(&sb, "\n")
	}
	row("# freq changes", func(c *Table1Cell) string { return fmt.Sprintf("%d", c.FreqChanges) })
	row("Execution Time (s)", func(c *Table1Cell) string { return fmt.Sprintf("%.0f", c.ExecS) })
	row("Ave Power (Watt)", func(c *Table1Cell) string { return fmt.Sprintf("%.2f", c.AvgPowerW) })
	row("Power-Delay (W*s)", func(c *Table1Cell) string { return fmt.Sprintf("%.0f", c.PDP) })
	fmt.Fprintf(&sb, "  (paper: changes 101/122/139 vs 2/2/3; time 219/222/223 vs 219/233/234;\n")
	fmt.Fprintf(&sb, "   power 99.78/99.30/100.80 vs 97.93/94.19/92.78; tDVFS wins PDP)\n")
	return sb.String()
}

func centered(s string, w int) string {
	if len(s) >= w {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(s)-left)
}
