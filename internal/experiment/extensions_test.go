package experiment

import "testing"

func TestFanFailureTDVFSRescues(t *testing.T) {
	r, err := FanFailure(Seed)
	if err != nil {
		t.Fatal(err)
	}
	un, td := r.Row("unprotected"), r.Row("tDVFS")
	if un == nil || td == nil {
		t.Fatal("missing rows")
	}
	// Without a thermal daemon the dead fan drives the die into the
	// hardware trip point.
	if un.Emergencies == 0 {
		t.Error("unprotected run never hit the trip point — failure not severe enough")
	}
	if un.ProtectedS <= 0 {
		t.Error("unprotected run spent no time clamped")
	}
	// tDVFS reacts in-band before the silicon has to.
	if td.Emergencies != 0 {
		t.Errorf("tDVFS run hit the trip point %d times — rescue failed", td.Emergencies)
	}
	if td.TDVFSRescues == 0 {
		t.Error("tDVFS made no scale-downs after the failure")
	}
	if td.PeakC >= un.PeakC {
		t.Errorf("tDVFS peak %.1f not below unprotected peak %.1f", td.PeakC, un.PeakC)
	}
}

func TestFanFailureStaticFanIsBlind(t *testing.T) {
	r, err := FanFailure(Seed)
	if err != nil {
		t.Fatal(err)
	}
	sf := r.Row("static-fan")
	if sf == nil {
		t.Fatal("missing row")
	}
	// The static map keeps commanding a dead fan: it cannot prevent
	// the emergency either.
	if sf.Emergencies == 0 {
		t.Error("static fan control somehow prevented the emergency with a dead fan")
	}
}

func TestRackStudyCompensation(t *testing.T) {
	r, err := RackStudy(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fixed) != 4 || len(r.Unified) != 4 {
		t.Fatal("missing rows")
	}
	// Recirculation: inlet temperature rises with slot in both runs.
	for i := 1; i < 4; i++ {
		if r.Fixed[i].InletC <= r.Fixed[0].InletC {
			t.Errorf("slot %d inlet %.2f not above bottom %.2f", i, r.Fixed[i].InletC, r.Fixed[0].InletC)
		}
	}
	// Fixed duty: the gradient reaches the dies.
	if d := r.Fixed[3].DieC - r.Fixed[0].DieC; d < 1.5 {
		t.Errorf("fixed-duty die gradient only %.2f °C", d)
	}
	// Unified control: upper slots get more fan and every die lands far
	// below the fixed-duty case.
	if r.Unified[3].FanDuty <= r.Unified[0].FanDuty {
		t.Errorf("top slot duty %.1f not above bottom %.1f",
			r.Unified[3].FanDuty, r.Unified[0].FanDuty)
	}
	for i := range r.Unified {
		if r.Unified[i].DieC >= r.Fixed[i].DieC-3 {
			t.Errorf("slot %d: unified %.2f °C not well below fixed %.2f °C",
				i, r.Unified[i].DieC, r.Fixed[i].DieC)
		}
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestWorkloadStudySpread(t *testing.T) {
	r, err := WorkloadStudy(Seed)
	if err != nil {
		t.Fatal(err)
	}
	ep, cg, bt := r.Row("EP.B.4"), r.Row("CG.B.4"), r.Row("BT.B.4")
	if ep == nil || cg == nil || bt == nil {
		t.Fatal("missing rows")
	}
	// The compute-bound kernel burns more power and runs hotter than
	// the memory/comm-bound one...
	if ep.AvgPowerW <= cg.AvgPowerW {
		t.Errorf("EP power %.1f not above CG %.1f", ep.AvgPowerW, cg.AvgPowerW)
	}
	if ep.PeakC <= cg.PeakC {
		t.Errorf("EP peak %.1f not above CG %.1f", ep.PeakC, cg.PeakC)
	}
	// ...and pays far more for down-clocking.
	if ep.SlowdownPct <= bt.SlowdownPct || bt.SlowdownPct <= cg.SlowdownPct {
		t.Errorf("slowdown ordering violated: EP %.1f%%, BT %.1f%%, CG %.1f%%",
			ep.SlowdownPct, bt.SlowdownPct, cg.SlowdownPct)
	}
	if cg.SlowdownPct > 8 {
		t.Errorf("CG slowdown %.1f%% — memory-bound kernel should be nearly flat", cg.SlowdownPct)
	}
	if ep.SlowdownPct < 12 {
		t.Errorf("EP slowdown %.1f%% — compute-bound kernel should track the frequency ratio", ep.SlowdownPct)
	}
}

func TestScalingOverheadGrowsSlowly(t *testing.T) {
	r, err := Scaling(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ExecS <= 0 || row.ExecS < row.IdealS {
			t.Errorf("%d nodes: exec %.1f vs ideal %.1f", row.Nodes, row.ExecS, row.IdealS)
		}
		// Decentralized control must not blow up with size: bounded
		// overhead even at 16 nodes.
		if row.OverheadPct > 25 {
			t.Errorf("%d nodes: overhead %.1f%%, want bounded", row.Nodes, row.OverheadPct)
		}
	}
	// Overhead at 16 nodes stays within a few points of 2 nodes'
	// (barrier coupling takes the max over more nodes, so some growth
	// is expected — it must not be multiplicative).
	d := r.Rows[3].OverheadPct - r.Rows[0].OverheadPct
	if d > 15 {
		t.Errorf("overhead grew %.1f points from 2 to 16 nodes", d)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestAblationWindowTradeoff(t *testing.T) {
	r, err := Ablation(Seed)
	if err != nil {
		t.Fatal(err)
	}
	paper := r.Row(4, 5)
	tiny := r.Row(2, 5)
	if paper == nil || tiny == nil {
		t.Fatal("missing rows")
	}
	// The 2-entry window cannot cancel 1 s jitter (its span is half a
	// period) and churns the actuator harder than the paper's choice.
	if tiny.JitterMoves <= paper.JitterMoves {
		t.Errorf("2-entry window jitter moves %d not above 4-entry's %d",
			tiny.JitterMoves, paper.JitterMoves)
	}
	// Every configuration still controls the temperature.
	for _, row := range r.Rows {
		if row.SteadyC > 58 {
			t.Errorf("L1=%d L2=%d settled at %.1f °C", row.L1Size, row.L2Size, row.SteadyC)
		}
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}
