package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/trace"
	"thermctl/internal/workload"
)

// Fig10Row is one hybrid policy's outcome.
type Fig10Row struct {
	Pp         int
	Temp       *trace.Series
	Freq       *trace.Series
	AvgTempC   float64
	TriggeredS float64 // when tDVFS first scaled down; NaN if never
	Triggered  bool
	MinFreqGHz float64
	ExecS      float64
	AvgPowerW  float64
}

// Fig10Result is the hybrid fan+DVFS experiment: one Pp applied to both
// knobs, max duty 50%, threshold 51 °C, BT.B.4 on four nodes.
type Fig10Result struct {
	Rows []Fig10Row // Pp = 75, 50, 25
}

// Fig10 runs the hybrid controller at each policy.
func Fig10(seed uint64) (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, pp := range []int{75, 50, 25} {
		row, err := fig10Run(seed, pp)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fig10Run(seed uint64, pp int) (Fig10Row, error) {
	c, err := newCluster(4, seed)
	if err != nil {
		return Fig10Row{}, err
	}
	hybrids, err := attachHybrid(c, pp, 50, core.DefaultTDVFSConfig(pp))
	if err != nil {
		return Fig10Row{}, err
	}
	p := newProbe(c, 250*time.Millisecond)
	run := c.RunProgram(workload.BTB4(), 0)

	temp := p.rec.Series("n0_temp")
	// The deepest frequency anywhere in the cluster: the trigger often
	// lands on whichever node's sensor runs warmest, not node 0.
	minFreq := math.Inf(1)
	for i := range c.Nodes {
		if s := p.rec.Series(fmt.Sprintf("n%d_freq", i)); s != nil && s.Min() < minFreq {
			minFreq = s.Min()
		}
	}
	row := Fig10Row{
		Pp:         pp,
		Temp:       temp,
		Freq:       p.rec.Series("n0_freq"),
		AvgTempC:   temp.MeanAfter(run.ExecTime / 4),
		MinFreqGHz: minFreq,
		ExecS:      run.ExecTime.Seconds(),
		AvgPowerW:  meterAvgW(c),
		TriggeredS: math.NaN(),
	}
	// Earliest trigger across the nodes: the cluster-visible onset of
	// in-band control.
	for _, h := range hybrids {
		if at, ok := h.DVFS.TriggeredAt(); ok {
			if !row.Triggered || at.Seconds() < row.TriggeredS {
				row.Triggered = true
				row.TriggeredS = at.Seconds()
			}
		}
	}
	return row, nil
}

// Row returns the row for policy pp, or nil.
func (r *Fig10Result) Row(pp int) *Fig10Row {
	for i := range r.Rows {
		if r.Rows[i].Pp == pp {
			return &r.Rows[i]
		}
	}
	return nil
}

// PerfSpreadPct returns the execution-time difference between Pp=25 and
// Pp=75 as a percentage of the Pp=75 time (paper: 4.76%).
func (r *Fig10Result) PerfSpreadPct() float64 {
	a, b := r.Row(25), r.Row(75)
	if a == nil || b == nil || b.ExecS == 0 {
		return 0
	}
	return (a.ExecS - b.ExecS) / b.ExecS * 100
}

// String prints the Figure 10 summary.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: hybrid dynamic fan + tDVFS (max duty 50%%, threshold 51 degC)\n")
	fmt.Fprintf(&sb, "  %-6s %-11s %-13s %-10s %-8s %-10s\n",
		"Pp", "avg degC", "tDVFS at (s)", "min GHz", "exec s", "avg W")
	for _, row := range r.Rows {
		trig := "never"
		if row.Triggered {
			trig = fmt.Sprintf("%.0f", row.TriggeredS)
		}
		fmt.Fprintf(&sb, "  %-6d %-11.2f %-13s %-10.1f %-8.1f %-10.2f\n",
			row.Pp, row.AvgTempC, trig, row.MinFreqGHz, row.ExecS, row.AvgPowerW)
	}
	fmt.Fprintf(&sb, "  perf spread Pp=25 vs Pp=75: %.2f%% (paper: 4.76%%)\n", r.PerfSpreadPct())
	fmt.Fprintf(&sb, "  (paper: smaller Pp -> lower temp AND later tDVFS trigger)\n")
	return sb.String()
}
