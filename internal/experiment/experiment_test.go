package experiment

import (
	"math"
	"testing"
)

// The experiment tests assert the paper's qualitative claims — who
// wins, roughly by how much, where crossovers fall — on the simulated
// platform. They are the repository's integration suite; each runs a
// full multi-minute simulation in well under a second of wall time.

func TestFig2ClassifiesBehaviours(t *testing.T) {
	r, err := Fig2(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.SuddenInOnset < 1 {
		t.Errorf("no sudden round detected in the onset segment (%d rounds)", r.RoundsInOnset)
	}
	if r.FalseSuddenInJitter > r.RoundsInJitter/5 {
		t.Errorf("jitter misread as sudden %d/%d rounds — the window must nullify jitter",
			r.FalseSuddenInJitter, r.RoundsInJitter)
	}
	if r.GradualInRamp < r.RoundsInRamp/4 {
		t.Errorf("gradual trend detected in only %d/%d ramp rounds", r.GradualInRamp, r.RoundsInRamp)
	}
	if r.Temp.Max()-r.Temp.Min() < 8 {
		t.Errorf("profile spans only %.1f degC; expected a wide thermal range",
			r.Temp.Max()-r.Temp.Min())
	}
}

func TestFig5PolicyOrdering(t *testing.T) {
	r, err := Fig5(Seed)
	if err != nil {
		t.Fatal(err)
	}
	p25, p50, p75 := r.Row(25), r.Row(50), r.Row(75)
	if p25 == nil || p50 == nil || p75 == nil {
		t.Fatal("missing rows")
	}
	// Smaller Pp → more aggressive → higher average duty.
	if !(p25.AvgDuty > p50.AvgDuty && p50.AvgDuty > p75.AvgDuty) {
		t.Errorf("duty ordering violated: Pp25=%.1f Pp50=%.1f Pp75=%.1f",
			p25.AvgDuty, p50.AvgDuty, p75.AvgDuty)
	}
	// ... and lower steady temperature.
	if !(p25.AvgTempC < p50.AvgTempC && p50.AvgTempC < p75.AvgTempC) {
		t.Errorf("temp ordering violated: Pp25=%.2f Pp50=%.2f Pp75=%.2f",
			p25.AvgTempC, p50.AvgTempC, p75.AvgTempC)
	}
	// The paper's absolute averages are 70/53/36; our plant runs a
	// hotter cpu-burn (its Fig. 5 thermal swing is ~4 °C against the
	// 15-20 °C its other figures show), so we assert the shape: a wide
	// spread with the weak policy staying well off the rails.
	if p25.AvgDuty-p75.AvgDuty < 15 {
		t.Errorf("Pp=25 vs Pp=75 duty spread %.0f points, want ≥15 (paper: 34)",
			p25.AvgDuty-p75.AvgDuty)
	}
	if p75.AvgDuty > 85 || p75.AvgDuty < 20 {
		t.Errorf("Pp=75 avg duty %.0f saturated or degenerate", p75.AvgDuty)
	}
}

func TestFig6MethodComparison(t *testing.T) {
	r, err := Fig6(Seed)
	if err != nil {
		t.Fatal(err)
	}
	dyn, sta, con := r.Row(FanDynamic), r.Row(FanStatic), r.Row(FanConstant)
	if dyn == nil || sta == nil || con == nil {
		t.Fatal("missing rows")
	}
	// Dynamic control proactively drives the fan harder than the
	// static map's reactive line.
	if dyn.PeakDuty <= sta.PeakDuty {
		t.Errorf("dynamic peak duty %.1f not above static %.1f", dyn.PeakDuty, sta.PeakDuty)
	}
	// ... and holds a lower steady temperature.
	if dyn.SteadyC >= sta.SteadyC {
		t.Errorf("dynamic steady %.2f not below static %.2f", dyn.SteadyC, sta.SteadyC)
	}
	// Constant 75% duty is the coldest and burns the most fan energy.
	if con.SteadyC >= dyn.SteadyC {
		t.Errorf("constant-75 steady %.2f not the lowest (dynamic %.2f)", con.SteadyC, dyn.SteadyC)
	}
	if con.FanEnergyJ <= dyn.FanEnergyJ || con.FanEnergyJ <= sta.FanEnergyJ {
		t.Errorf("constant-75 fan energy %.0f J not the highest (dyn %.0f, static %.0f)",
			con.FanEnergyJ, dyn.FanEnergyJ, sta.FanEnergyJ)
	}
}

func TestFig7MaxPWMSweep(t *testing.T) {
	r, err := Fig7(Seed)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone: stronger fan → lower steady temperature.
	prev := math.Inf(-1)
	for _, cap := range []float64{100, 75, 50, 25} {
		row := r.Row(cap)
		if row == nil {
			t.Fatal("missing row")
		}
		if row.SteadyC <= prev {
			t.Errorf("steady temp at cap %.0f%% (%.2f) not above stronger fan (%.2f)",
				cap, row.SteadyC, prev)
		}
		prev = row.SteadyC
	}
	// Paper: ≈8 °C between 25% and 100%.
	if s := r.Spread(25, 100); s < 4 || s > 14 {
		t.Errorf("25%%->100%% spread = %.2f degC, want 4..14 (paper ~8)", s)
	}
	// Paper: no significant difference between 50% and 75%.
	if s := math.Abs(r.Spread(50, 75)); s > 3 {
		t.Errorf("50%% vs 75%% spread = %.2f degC, want small (paper: not significant)", s)
	}
}

func TestFig8TDVFSWithStaticFan(t *testing.T) {
	r, err := Fig8(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Downscales < 1 {
		t.Error("tDVFS never scaled down despite the weak 25% fan")
	}
	if r.Downscales > 4 {
		t.Errorf("tDVFS made %d downscales; paper shows very few", r.Downscales)
	}
	if r.Upscales < 1 {
		t.Error("tDVFS never restored the nominal frequency in the idle tail")
	}
	if r.EndFreqGHz != 2.4 {
		t.Errorf("end frequency %.1f GHz, want 2.4 restored", r.EndFreqGHz)
	}
	if r.MinFreqGHz > 2.2 {
		t.Errorf("min frequency %.1f GHz — expected at least one step down", r.MinFreqGHz)
	}
}

func TestFig9TDVFSStabilizesCPUSpeedDoesNot(t *testing.T) {
	r, err := Fig9(Seed)
	if err != nil {
		t.Fatal(err)
	}
	td, cs := r.Row("tDVFS"), r.Row("CPUSPEED")
	if td == nil || cs == nil {
		t.Fatal("missing rows")
	}
	// CPUSPEED ends hotter.
	if td.FinalC >= cs.FinalC {
		t.Errorf("tDVFS final %.2f not below CPUSPEED %.2f", td.FinalC, cs.FinalC)
	}
	// tDVFS's late-run trend is flat; CPUSPEED's is higher.
	if td.LateSlope > cs.LateSlope {
		t.Errorf("late slope: tDVFS %.2f vs CPUSPEED %.2f degC/min", td.LateSlope, cs.LateSlope)
	}
	if math.Abs(td.LateSlope) > 1.0 {
		t.Errorf("tDVFS late slope %.2f degC/min — not stabilized", td.LateSlope)
	}
	// Transition counts: orders of magnitude apart.
	if td.Transitions*10 > cs.Transitions {
		t.Errorf("transitions: tDVFS %d vs CPUSPEED %d — want ≥10x reduction",
			td.Transitions, cs.Transitions)
	}
}

func TestTable1Claims(t *testing.T) {
	r, err := Table1(Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []float64{75, 50, 25} {
		cs, td := r.Cell("CPUSPEED", cap), r.Cell("tDVFS", cap)
		if cs == nil || td == nil {
			t.Fatal("missing cells")
		}
		// Headline: tDVFS reduces frequency changes by ~two orders.
		if td.FreqChanges > 6 {
			t.Errorf("cap %.0f%%: tDVFS made %d changes, want ≤6 (paper 2-3)", cap, td.FreqChanges)
		}
		if cs.FreqChanges < 40 {
			t.Errorf("cap %.0f%%: CPUSPEED made only %d changes, want ≥40 (paper 101-139)", cap, cs.FreqChanges)
		}
		// tDVFS never uses meaningfully more power (parity at strong
		// fans where it rarely acts; clear wins at weak fans).
		if td.AvgPowerW > cs.AvgPowerW+1.0 {
			t.Errorf("cap %.0f%%: tDVFS power %.2f well above CPUSPEED %.2f",
				cap, td.AvgPowerW, cs.AvgPowerW)
		}
		// Power-delay product stays within a whisker of CPUSPEED's
		// while making ~99%% fewer transitions (the paper's margin is
		// 0.4-3.4%%; ours straddles zero at strong fans).
		if td.PDP > cs.PDP*1.02 {
			t.Errorf("cap %.0f%%: tDVFS PDP %.0f more than 2%%%% above CPUSPEED %.0f",
				cap, td.PDP, cs.PDP)
		}
	}
	// Where the fan is weakest — the regime this paper is about —
	// tDVFS beats CPUSPEED on power outright and on the combined
	// power-delay metric (paper: 21710 vs 22479).
	cs25, td25a := r.Cell("CPUSPEED", 25), r.Cell("tDVFS", 25)
	if td25a.AvgPowerW >= cs25.AvgPowerW-2 {
		t.Errorf("cap 25%%: tDVFS power %.2f not clearly below CPUSPEED %.2f",
			td25a.AvgPowerW, cs25.AvgPowerW)
	}
	if td25a.PDP >= cs25.PDP {
		t.Errorf("cap 25%%: tDVFS PDP %.0f not below CPUSPEED %.0f", td25a.PDP, cs25.PDP)
	}
	// tDVFS's power column decreases as the fan weakens (the paper's
	// 97.93 / 94.19 / 92.78): DVFS absorbs what the fan cannot.
	td75p, td50p := r.Cell("tDVFS", 75), r.Cell("tDVFS", 50)
	if !(td25a.AvgPowerW < td50p.AvgPowerW && td50p.AvgPowerW < td75p.AvgPowerW) {
		t.Errorf("tDVFS power not decreasing with weaker fans: %.2f/%.2f/%.2f",
			td75p.AvgPowerW, td50p.AvgPowerW, td25a.AvgPowerW)
	}
	// At 75% the fan suffices: tDVFS pays no performance.
	cs75, td75 := r.Cell("CPUSPEED", 75), r.Cell("tDVFS", 75)
	if td75.ExecS > cs75.ExecS*1.02 {
		t.Errorf("cap 75%%: tDVFS time %.1f s vs CPUSPEED %.1f s — want parity", td75.ExecS, cs75.ExecS)
	}
	// At 25% tDVFS trades a bounded slowdown (paper: ~6.7%).
	td25 := r.Cell("tDVFS", 25)
	slowdown := td25.ExecS/td75.ExecS - 1
	if slowdown < 0 || slowdown > 0.12 {
		t.Errorf("tDVFS 25%% slowdown = %.1f%%, want 0..12%% (paper ~6.7%%)", slowdown*100)
	}
}

func TestFig10HybridCoordination(t *testing.T) {
	r, err := Fig10(Seed)
	if err != nil {
		t.Fatal(err)
	}
	p25, p50, p75 := r.Row(25), r.Row(50), r.Row(75)
	if p25 == nil || p50 == nil || p75 == nil {
		t.Fatal("missing rows")
	}
	// Smaller Pp controls temperature more effectively. The margin is
	// small because under the hybrid the conservative policies end up
	// buying their cooling in-band (lower frequency also cools), so we
	// allow sensor-noise tolerance.
	if p25.AvgTempC > p75.AvgTempC+0.5 || p25.AvgTempC > p50.AvgTempC+0.5 {
		t.Errorf("avg temp: Pp25 %.2f not at/below Pp50 %.2f and Pp75 %.2f",
			p25.AvgTempC, p50.AvgTempC, p75.AvgTempC)
	}
	// Coordination: the aggressive fan delays the in-band trigger.
	if p25.Triggered && p75.Triggered && p25.TriggeredS <= p75.TriggeredS {
		t.Errorf("tDVFS trigger: Pp25 at %.0f s not later than Pp75 at %.0f s",
			p25.TriggeredS, p75.TriggeredS)
	}
	// Performance impact stays small across policies. The paper reports
	// Pp=25 4.76% slower than Pp=75; on our plant the ordering flips to
	// a stable ≈-1.2% because both policies bottom out at the same
	// frequency (the cap-50 equilibrium sits on the threshold) and the
	// conservative policy's ~35 s earlier trigger then dominates the
	// aggressive policy's deeper jump. Either way the paper's real
	// point — the spread is small — holds; see EXPERIMENTS.md.
	if s := r.PerfSpreadPct(); s < -5 || s > 10 {
		t.Errorf("perf spread = %.2f%%, want within [-5%%, 10%%] (paper +4.76%%)", s)
	}
	// The aggressive policy's deeper jump: Pp=25 reaches a lower
	// frequency than Pp=75 ever does (paper Fig. 10 ①: 2.4→2.0).
	if p25.MinFreqGHz > p75.MinFreqGHz {
		t.Errorf("min freq: Pp25 %.1f GHz above Pp75 %.1f GHz", p25.MinFreqGHz, p75.MinFreqGHz)
	}
}

func TestResultsArePrintable(t *testing.T) {
	// Smoke-test every String method on a cheap subset.
	r2, err := Fig2(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() == "" {
		t.Error("Fig2 String empty")
	}
}

func TestTable1Deterministic(t *testing.T) {
	a, err := Table1(Seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(Seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca != cb {
			t.Fatalf("Table1 not deterministic: %+v vs %+v", ca, cb)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Fig7(Seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(Seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].SteadyC != b.Rows[i].SteadyC {
			t.Fatal("Fig7 not deterministic across identical runs")
		}
	}
}
