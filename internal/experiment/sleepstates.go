package experiment

import (
	"fmt"
	"strings"
	"time"

	"thermctl/internal/config"
	"thermctl/internal/workload"
)

// The sleep-states study exercises the third technique family the
// paper's §3.2.2 names for the thermal control array: ACPI processor
// sleep states. The same decision law that walks the fan's duty array
// walks the C-state table — cstates.Actuator is just another actuator
// column — and the study measures where that knob actually helps: a
// C-state gates power only during the idle fraction of time, so it pays
// on bursty, communication-heavy load and does nothing under cpu-burn.
//
// The runs are wired through the declarative scenario layer
// (config.Scenario), the same path clustersim and thermctld use, so
// this doubles as the third consumer of that spec.

// SleepStatesRow is one (workload, sleep-control) cell of the study.
type SleepStatesRow struct {
	// Workload names the generator profile.
	Workload string
	// Sleep reports whether the C-state array was enabled.
	Sleep bool
	// AvgW is the average wall power per node over the run.
	AvgW float64
	// MaxDieC is the hottest physical die temperature observed.
	MaxDieC float64
	// FinalMode is the deepest-allowed C-state at the end of the run
	// (0 = C0); Moves counts mode transitions the array commanded.
	FinalMode int
	Moves     uint64
}

// SleepStatesResult is the full study: both workloads, with and
// without the sleep-state array, under the same dynamic fan control.
type SleepStatesResult struct {
	Seed uint64
	Rows []SleepStatesRow
}

// sleepStatesRun executes one cell: a 2-node generator-driven cluster
// under dynamic fan control, with the C-state array on or off.
func sleepStatesRun(seed uint64, name string, gen workload.Generator, sleep bool) (SleepStatesRow, error) {
	const runFor = 150 * time.Second
	// Span the control array across the band these generator profiles
	// actually occupy (the platform default 38..82 is sized for NPB
	// programs); identical tuning on and off keeps the cells comparable.
	tune := config.Default()
	tune.TminC, tune.TmaxC = 40, 52
	s := config.Scenario{
		Name:    "sleepstates-" + name,
		Nodes:   2,
		Seed:    seed,
		Workers: Workers,
		Control: config.ControlSpec{Fan: "dynamic", DVFS: "none", Sleep: "none", Tuning: tune},
	}
	if sleep {
		s.Control.Sleep = "ctlarray"
	}
	rig, err := s.Build()
	if err != nil {
		return SleepStatesRow{}, err
	}
	c := rig.Cluster

	row := SleepStatesRow{Workload: name, Sleep: sleep}
	tr := &chaosTracker{c: c}
	c.AddController(tr)
	c.RunGenerator(gen, runFor)

	row.AvgW = meterAvgW(c)
	row.MaxDieC = tr.maxDie
	if sleep {
		// The sleep actuator is the second binding on the dynamic fan
		// controller (slot 1); report node 0's array position.
		ctl := rig.Nodes[0].Fan
		row.FinalMode = ctl.Policy().Mode(1)
		row.Moves = ctl.Binding().Moves(1)
	}
	return row, nil
}

// burstyProfile is the communication-heavy load: full-power bursts
// alternating with near-idle halves, warm enough to climb the array.
func burstyProfile() workload.Generator {
	return workload.Jitter{Low: 0.1, High: 1.0, Period: 4 * time.Second}
}

// SleepStates runs the study: a bursty communication-heavy profile and
// a sustained cpu-burn, each with and without the C-state array.
func SleepStates(seed uint64) (*SleepStatesResult, error) {
	res := &SleepStatesResult{Seed: seed}
	cells := []struct {
		name  string
		gen   workload.Generator
		sleep bool
	}{
		{"bursty", burstyProfile(), false},
		{"bursty", burstyProfile(), true},
		{"cpuburn", workload.Constant(0.95), false},
		{"cpuburn", workload.Constant(0.95), true},
	}
	for _, cell := range cells {
		row, err := sleepStatesRun(seed, cell.name, cell.gen, cell.sleep)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// row returns the cell for (workload, sleep), or a zero row.
func (r *SleepStatesResult) row(workload string, sleep bool) SleepStatesRow {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Sleep == sleep {
			return row
		}
	}
	return SleepStatesRow{}
}

// SavingsW returns the per-node power saved by the sleep-state array on
// the given workload (positive = the array helped).
func (r *SleepStatesResult) SavingsW(workload string) float64 {
	return r.row(workload, false).AvgW - r.row(workload, true).AvgW
}

// CheckIdleAsymmetry asserts the study's qualitative claim: the
// C-state knob saves real power on the bursty profile and markedly
// less under cpu-burn, while the array engaged (left C0) on the bursty
// run and never overheated either way.
func (r *SleepStatesResult) CheckIdleAsymmetry() error {
	burstSave, burnSave := r.SavingsW("bursty"), r.SavingsW("cpuburn")
	if burstSave <= 0 {
		return fmt.Errorf("sleepstates: no savings on bursty load (%.2f W)", burstSave)
	}
	if burnSave >= burstSave {
		return fmt.Errorf("sleepstates: cpu-burn saved %.2f W >= bursty %.2f W; the idle asymmetry is gone",
			burnSave, burstSave)
	}
	if r.row("bursty", true).FinalMode == 0 && r.row("bursty", true).Moves == 0 {
		return fmt.Errorf("sleepstates: array never engaged on the bursty run")
	}
	return nil
}

// String renders the study table.
func (r *SleepStatesResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sleep-state array study (seed %d): C-states through the thermal control array\n", r.Seed)
	fmt.Fprintf(&sb, "%-10s %-10s %10s %10s %8s %7s\n",
		"workload", "sleep", "avg W", "max die C", "C-state", "moves")
	for _, row := range r.Rows {
		mode := "-"
		sleep := "off"
		if row.Sleep {
			mode = fmt.Sprintf("C%d", row.FinalMode)
			sleep = "ctlarray"
		}
		fmt.Fprintf(&sb, "%-10s %-10s %10.2f %10.2f %8s %7d\n",
			row.Workload, sleep, row.AvgW, row.MaxDieC, mode, row.Moves)
	}
	fmt.Fprintf(&sb, "savings: bursty %.2f W/node, cpu-burn %.2f W/node\n",
		r.SavingsW("bursty"), r.SavingsW("cpuburn"))
	return sb.String()
}
