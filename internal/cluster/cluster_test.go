package cluster

import (
	"math"
	"testing"
	"time"

	"thermctl/internal/workload"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(n, DefaultDt, 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewNamesAndSeeds(t *testing.T) {
	c := newCluster(t, 4)
	if len(c.Nodes) != 4 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	if c.Nodes[0].Name != "node0" || c.Nodes[3].Name != "node3" {
		t.Errorf("names: %s, %s", c.Nodes[0].Name, c.Nodes[3].Name)
	}
}

func TestRunGeneratorAdvancesAllNodes(t *testing.T) {
	c := newCluster(t, 2)
	c.Settle(0)
	c.RunGenerator(workload.Constant(1), 30*time.Second)
	if c.Clock.Now() < 30*time.Second {
		t.Errorf("clock at %v", c.Clock.Now())
	}
	for _, n := range c.Nodes {
		if n.Elapsed() < 30*time.Second {
			t.Errorf("node %s only advanced %v", n.Name, n.Elapsed())
		}
		if n.Utilization() != 1 {
			t.Errorf("node %s utilization %v", n.Name, n.Utilization())
		}
	}
}

func TestControllersInvokedEveryStep(t *testing.T) {
	c := newCluster(t, 1)
	calls := 0
	var lastNow time.Duration
	c.AddController(ControllerFunc(func(now time.Duration) {
		calls++
		if now <= lastNow {
			t.Fatalf("controller time went backwards: %v then %v", lastNow, now)
		}
		lastNow = now
	}))
	c.RunGenerator(workload.Constant(0.5), time.Second)
	want := int(time.Second / DefaultDt)
	if calls != want {
		t.Errorf("controller called %d times, want %d", calls, want)
	}
}

func TestRunProgramFixedFrequencyMatchesIdeal(t *testing.T) {
	c := newCluster(t, 4)
	c.Settle(0)
	// Small program for test speed: 20 iterations of BT-like shape.
	prog := workload.Uniform("mini-BT", 20, workload.Iteration{
		ComputeGC: 2.2128, ComputeUtil: 1.0, CommSec: 0.173, CommUtil: 0.10,
	})
	res := c.RunProgram(prog, 0)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	ideal := prog.IdealSeconds(2.4)
	got := res.ExecTime.Seconds()
	// Barrier release quantization costs at most one step per iteration.
	if got < ideal || got > ideal*1.06 {
		t.Errorf("exec time %.2f s, ideal %.2f s (want within +6%%)", got, ideal)
	}
}

func TestRunProgramScalesWithFrequency(t *testing.T) {
	run := func(freqGHz float64) float64 {
		c := newCluster(t, 2)
		c.Settle(0)
		for _, n := range c.Nodes {
			if !n.CPU.SetFreqGHz(freqGHz) {
				t.Fatalf("no %v GHz state", freqGHz)
			}
		}
		prog := workload.Uniform("p", 10, workload.Iteration{
			ComputeGC: 2.4, ComputeUtil: 1, CommSec: 0.1, CommUtil: 0.1,
		})
		return c.RunProgram(prog, 0).ExecTime.Seconds()
	}
	fast := run(2.4)
	slow := run(1.0)
	ratio := slow / fast
	// Compute is 10/11 of the ideal runtime; slowing 2.4→1.0 should
	// stretch it by close to 2.4/1.0 on the compute part.
	if ratio < 1.9 || ratio > 2.4 {
		t.Errorf("1.0 GHz / 2.4 GHz time ratio = %.2f, want ≈2.1", ratio)
	}
}

func TestRunProgramBarrierWaitsForSlowNode(t *testing.T) {
	c := newCluster(t, 2)
	c.Settle(0)
	// Slow down node 1 only: barrier forces node 0 to wait, so the
	// execution time follows the slow node.
	c.Nodes[1].CPU.SetFreqGHz(1.0)
	prog := workload.Uniform("skew", 10, workload.Iteration{
		ComputeGC: 2.4, ComputeUtil: 1, CommSec: 0.05, CommUtil: 0.1,
	})
	res := c.RunProgram(prog, 0)
	slowIdeal := prog.IdealSeconds(1.0)
	got := res.ExecTime.Seconds()
	if got < slowIdeal || got > slowIdeal*1.1 {
		t.Errorf("exec %.2f s, slow-node ideal %.2f s", got, slowIdeal)
	}
}

func TestRunProgramFastNodeIdlesAtBarrier(t *testing.T) {
	c := newCluster(t, 2)
	c.Settle(0)
	c.Nodes[1].CPU.SetFreqGHz(1.0)
	prog := workload.Uniform("skew", 20, workload.Iteration{
		ComputeGC: 2.4, ComputeUtil: 1, CommSec: 0.05, CommUtil: 0.1,
	})
	c.RunProgram(prog, 0)
	// Node 0 computes 1 s then waits ~1.4 s per iteration: its average
	// CPU energy should be clearly below node 1's per unit time? Node 1
	// runs at 1.0 GHz (lower power). Compare instead against a balanced
	// run: node 0's average utilization must be well below 1.
	cpuEnergyShare := c.Nodes[0].Meter.CPUEnergyJ() / c.Nodes[0].Meter.Elapsed().Seconds()
	// Busy at 2.4 GHz would be ≈60 W; half-idle should be well below.
	if cpuEnergyShare > 45 {
		t.Errorf("fast node average CPU power %.1f W, want <45 (idling at barrier)", cpuEnergyShare)
	}
}

func TestRunProgramTimeout(t *testing.T) {
	c := newCluster(t, 1)
	prog := workload.Uniform("long", 1000, workload.Iteration{
		ComputeGC: 2.4, ComputeUtil: 1, CommSec: 0.1, CommUtil: 0.1,
	})
	res := c.RunProgram(prog, 5*time.Second)
	if !res.TimedOut {
		t.Error("run did not report timeout")
	}
	if res.ExecTime < 5*time.Second {
		t.Errorf("timed-out run stopped at %v", res.ExecTime)
	}
}

func TestRunProgramEmpty(t *testing.T) {
	c := newCluster(t, 1)
	res := c.RunProgram(workload.Program{Name: "empty"}, 0)
	if res.ExecTime != 0 || res.TimedOut {
		t.Errorf("empty program: %+v", res)
	}
}

func TestRunProgramDeterministic(t *testing.T) {
	run := func() time.Duration {
		c, err := New(2, DefaultDt, 7)
		if err != nil {
			t.Fatal(err)
		}
		c.Settle(0)
		prog := workload.Uniform("d", 15, workload.Iteration{
			ComputeGC: 1.2, ComputeUtil: 1, CommSec: 0.08, CommUtil: 0.1,
		})
		return c.RunProgram(prog, 0).ExecTime
	}
	if run() != run() {
		t.Error("program runs with identical seeds diverged")
	}
}

func TestClusterNodesHeatIndependently(t *testing.T) {
	c := newCluster(t, 2)
	c.Settle(0)
	// Load only node 0 via manual utilization (no generator).
	c.Nodes[0].SetGenerator(workload.Constant(1))
	c.Nodes[1].SetGenerator(workload.Constant(0))
	for i := 0; i < 1200; i++ { // 60 s
		c.Step()
	}
	d := c.Nodes[0].TrueDieC() - c.Nodes[1].TrueDieC()
	if d < 5 {
		t.Errorf("loaded node only %.1f °C hotter than idle node", d)
	}
}

func TestBTB4ExecutionTimeCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("long calibration run")
	}
	c := newCluster(t, 4)
	c.Settle(0)
	res := c.RunProgram(workload.BTB4(), 0)
	got := res.ExecTime.Seconds()
	if math.Abs(got-219) > 7 {
		t.Errorf("BT.B.4 at fixed 2.4 GHz ran %.1f s, want 219±7 (paper Table 1)", got)
	}
}
