package cluster

import (
	"math"
	"strconv"
	"testing"
	"time"

	"thermctl/internal/faults"
	"thermctl/internal/workload"
)

// faultSignature captures the bit-exact per-step trajectory of a
// fault-injected cluster run plus the fault plane's event timeline.
func faultSignature(t *testing.T, workers int) []byte {
	t.Helper()
	const nodes = 8
	c, err := New(nodes, DefaultDt, 20100131)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetWorkers(workers)
	c.Settle(0)

	targets := make([]string, nodes)
	for i, n := range c.Nodes {
		targets[i] = n.Name
	}
	plane, err := c.ApplyFaults(faults.Generate(7, targets, 8*time.Second), 20100131)
	if err != nil {
		t.Fatal(err)
	}

	var sig []byte
	bits := func(v float64) {
		sig = strconv.AppendUint(sig, math.Float64bits(v), 16)
		sig = append(sig, ' ')
	}
	c.AddController(ControllerFunc(func(now time.Duration) {
		sig = append(sig, []byte(now.String())...)
		for _, n := range c.Nodes {
			bits(n.TrueDieC())
			bits(n.Sensor.Read())
			bits(n.Fan.Duty())
			bits(n.CPU.FreqGHz())
			bits(n.Power().Total())
		}
		sig = append(sig, '\n')
	}))
	c.RunGenerator(workload.Constant(0.9), 10*time.Second)
	sig = append(sig, []byte(plane.Timeline())...)
	return sig
}

// TestFaultTimelineByteIdenticalAcrossWorkers extends the tentpole
// byte-identical invariant to the fault plane: the same seed yields the
// same fault timeline AND the same faulted device trajectories for any
// worker count. Run under -race in the full gate.
func TestFaultTimelineByteIdenticalAcrossWorkers(t *testing.T) {
	want := faultSignature(t, 1)
	if len(want) == 0 {
		t.Fatal("empty signature")
	}
	for _, workers := range []int{2, 8} {
		got := faultSignature(t, workers)
		if string(got) != string(want) {
			t.Errorf("workers=%d: fault-injected trajectory diverged from serial (len %d vs %d)",
				workers, len(got), len(want))
		}
	}
}

func TestApplyFaultsRejectsUnknownTarget(t *testing.T) {
	c, err := New(2, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plan := faults.Plan{Name: "bad", Schedules: []faults.Schedule{{
		Target: "node99",
		Episodes: []faults.Episode{{
			Kind: faults.SensorStuck, Start: 0, Duration: faults.Dur(time.Second),
		}},
	}}}
	if _, err := c.ApplyFaults(plan, 1); err == nil {
		t.Fatal("plan targeting an unknown node accepted")
	}
}

func TestApplyFaultsInjects(t *testing.T) {
	c, err := New(1, DefaultDt, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Settle(0)
	plan := faults.Plan{Name: "stall", Schedules: []faults.Schedule{{
		Target: c.Nodes[0].Name,
		Episodes: []faults.Episode{{
			Kind: faults.FanStall, Start: 0, Duration: faults.Dur(time.Hour),
		}},
	}}}
	if _, err := c.ApplyFaults(plan, 3); err != nil {
		t.Fatal(err)
	}
	c.Nodes[0].Fan.SetDuty(80)
	c.RunGenerator(workload.Constant(0.5), 5*time.Second)
	// The rotor spins down with first-order lag; after 5 s it must be
	// essentially stopped despite the 80% commanded duty.
	if rpm := c.Nodes[0].Fan.RPM(); rpm > 10 {
		t.Errorf("fan spinning at %.0f RPM through a hard-stall episode", rpm)
	}
}
