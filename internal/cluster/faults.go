package cluster

import (
	"fmt"

	"thermctl/internal/faults"
	"thermctl/internal/rng"
)

// faultStream is the rng stream index of a node's fault-injection draws,
// derived from the node's position so the stream is disjoint from the
// per-node noise streams (which are seeded from rng.Mix(seed, i)).
const faultStream = 0xfa170000

// ApplyFaults builds a fault plane for plan, registers it as the first
// controller (so devices see the fault state of a step's boundary before
// the control daemons sample), and subscribes every node whose name
// matches a schedule target. Each node's bus draws its probabilistic
// faults from its own rng stream derived from seed, keeping the fault
// plane byte-identical across worker counts.
//
// Call after New and before attaching control daemons; registration
// order is invocation order.
func (c *Cluster) ApplyFaults(plan faults.Plan, seed uint64) (*faults.Plane, error) {
	for _, sch := range plan.Schedules {
		found := false
		for _, n := range c.Nodes {
			if n.Name == sch.Target {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: fault plan %q targets unknown node %q", plan.Name, sch.Target)
		}
	}
	plane, err := faults.NewPlane(plan)
	if err != nil {
		return nil, err
	}
	for i, n := range c.Nodes {
		n.AttachFaults(plane.Injector(n.Name), rng.New(rng.Mix(seed, faultStream+uint64(i))))
	}
	c.AddController(plane)
	return plane, nil
}
