package cluster

import (
	"fmt"
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func TestNewWithNodes(t *testing.T) {
	if _, err := NewWithNodes(nil, DefaultDt); err == nil {
		t.Error("empty node list accepted")
	}
	var nodes []*node.Node
	for i := 0; i < 3; i++ {
		n, err := node.New(node.DefaultConfig(fmt.Sprintf("custom%d", i), uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	c, err := NewWithNodes(nodes, DefaultDt)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 3 || c.Nodes[0].Name != "custom0" {
		t.Errorf("nodes: %d, first %q", len(c.Nodes), c.Nodes[0].Name)
	}
	if c.WaitUtil <= 0 {
		t.Error("WaitUtil default not set")
	}
	c.RunGenerator(workload.Constant(0.5), time.Second)
	if c.Clock.Now() < time.Second {
		t.Error("cluster did not step")
	}
}

func TestBarrierWaitUtilizationApplied(t *testing.T) {
	c, err := New(2, DefaultDt, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	c.WaitUtil = 0.06
	// Slow node 1 drastically so node 0 spends most time at barriers.
	c.Nodes[1].CPU.SetFreqGHz(1.0)
	prog := workload.Uniform("wait", 5, workload.Iteration{
		ComputeGC: 4.8, ComputeUtil: 1, CommSec: 0.05, CommUtil: 0.1,
	})
	c.RunProgram(prog, 0)
	// Node 0 computes 2 s then waits ~2.8 s per iteration at util 0.06:
	// its mean utilization lands near (2·1 + 2.8·0.06)/4.8 ≈ 0.45.
	avgBusy := c.Nodes[0].Meter.CPUEnergyJ() / c.Nodes[0].Meter.Elapsed().Seconds()
	// Busy at 2.4 GHz would be ≈62 W; half-idle must be well below.
	if avgBusy > 48 {
		t.Errorf("fast node average CPU power %.1f W — barrier wait not near-idle", avgBusy)
	}
}

func TestRunGeneratorAfterProgram(t *testing.T) {
	c, err := New(2, DefaultDt, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	prog := workload.Uniform("short", 3, workload.Iteration{
		ComputeGC: 1, ComputeUtil: 1, CommSec: 0.05, CommUtil: 0.1,
	})
	res := c.RunProgram(prog, 0)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	mark := c.Clock.Now()
	c.RunGenerator(workload.Constant(0.2), 2*time.Second)
	if c.Clock.Now()-mark < 2*time.Second {
		t.Error("generator run after program did not advance")
	}
	for _, n := range c.Nodes {
		if n.Utilization() != 0.2 {
			t.Errorf("node %s utilization %v after generator", n.Name, n.Utilization())
		}
	}
}

func TestControllersSeeMonotoneTime(t *testing.T) {
	c, err := New(1, DefaultDt, 7)
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	c.AddController(ControllerFunc(func(now time.Duration) {
		if now <= last {
			t.Fatalf("time not monotone: %v then %v", last, now)
		}
		last = now
	}))
	prog := workload.Uniform("t", 3, workload.Iteration{
		ComputeGC: 0.5, ComputeUtil: 1, CommSec: 0.02, CommUtil: 0.1,
	})
	c.RunProgram(prog, 0)
	c.RunGenerator(workload.Constant(0.1), time.Second)
	if last == 0 {
		t.Fatal("controller never invoked")
	}
}

func TestMixedFrequencyNodesFinishTogether(t *testing.T) {
	// Barrier semantics: even with different per-node frequencies,
	// every process completes the same number of iterations.
	c, err := New(3, DefaultDt, 9)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	c.Nodes[0].CPU.SetFreqGHz(2.4)
	c.Nodes[1].CPU.SetFreqGHz(1.8)
	c.Nodes[2].CPU.SetFreqGHz(1.0)
	prog := workload.Uniform("mixed", 8, workload.Iteration{
		ComputeGC: 1.0, ComputeUtil: 1, CommSec: 0.04, CommUtil: 0.1,
	})
	res := c.RunProgram(prog, 0)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	want := prog.IdealSeconds(1.0) // slowest node gates
	got := res.ExecTime.Seconds()
	if got < want || got > want*1.15 {
		t.Errorf("exec %.2f s, slowest-node ideal %.2f", got, want)
	}
}

// TestRunProgramCanceled: closing the stop channel mid-run makes
// RunProgram return Canceled at the next round boundary, with the
// elapsed prefix in ExecTime.
func TestRunProgramCanceled(t *testing.T) {
	c, err := New(2, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	stop := make(chan struct{})
	c.SetStop(stop)
	// Cancel from a controller after 5 simulated seconds: the check
	// runs in the serial round loop, so the cancellation lands
	// deterministically.
	fired := false
	c.AddController(ControllerFunc(func(now time.Duration) {
		if !fired && now >= 5*time.Second {
			fired = true
			close(stop)
		}
	}))
	res := c.RunProgram(workload.BTB4(), 0)
	if !res.Canceled {
		t.Fatalf("result %+v, want Canceled", res)
	}
	if res.TimedOut || res.Err != nil {
		t.Fatalf("canceled result carries TimedOut/Err: %+v", res)
	}
	if res.ExecTime < 5*time.Second || res.ExecTime > 6*time.Second {
		t.Errorf("ExecTime = %s, want just past the 5s cancellation", res.ExecTime)
	}
}

// TestRunGeneratorCanceled: RunGenerator honors the same stop signal.
func TestRunGeneratorCanceled(t *testing.T) {
	c, err := New(1, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	stop := make(chan struct{})
	c.SetStop(stop)
	fired := false
	c.AddController(ControllerFunc(func(now time.Duration) {
		if !fired && now >= 2*time.Second {
			fired = true
			close(stop)
		}
	}))
	c.RunGenerator(workload.Constant(0.5), time.Hour)
	if got := c.Clock.Now(); got < 2*time.Second || got > 3*time.Second {
		t.Errorf("generator ran to %s, want cancellation just past 2s", got)
	}
	// Disarmed, the cluster runs normally again.
	c.SetStop(nil)
	before := c.Clock.Now()
	c.RunGenerator(workload.Constant(0.5), 2*time.Second)
	if got := c.Clock.Now() - before; got < 2*time.Second {
		t.Errorf("disarmed run advanced only %s, want the full 2s", got)
	}
}
