package cluster

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/faults"
	"thermctl/internal/metrics"
	"thermctl/internal/rack"
	"thermctl/internal/tracefile"
	"thermctl/internal/workload"
)

// benchWorkerCounts returns the worker sweep for the scale benchmarks:
// serial, four-way, and all-the-way (GOMAXPROCS), deduplicated so
// sub-benchmark names stay unique on small machines.
func benchWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var out []int
	for _, w := range counts {
		dup := false
		for _, seen := range out {
			if seen == w {
				dup = true
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// benchNodeShapes returns the cluster sizes for the scale benchmarks:
// the rack-scale smoke shapes always, plus the fleet-scale shapes
// (1k/10k/100k nodes) when THERMCTL_BENCH_FLEET is set. The fleet
// matrix is where the hierarchical step loop has to pay off —
// node-steps/s should hold roughly flat from 1k to 100k if per-step
// dispatch stays O(nodes) with no per-round allocation — but a 100k
// cluster costs ~700 MB and seconds of setup per sub-benchmark, so CI
// smoke keeps the small shapes and `make bench` opts in via the
// environment variable.
func benchNodeShapes() []int {
	shapes := []int{4, 64, 256}
	if os.Getenv("THERMCTL_BENCH_FLEET") != "" {
		shapes = append(shapes, 1000, 10000, 100000)
	}
	return shapes
}

func benchCluster(b *testing.B, nodes, workers int) *Cluster {
	b.Helper()
	c, err := New(nodes, DefaultDt, 1)
	if err != nil {
		b.Fatal(err)
	}
	c.SetWorkers(workers)
	for _, n := range c.Nodes {
		n.SetGenerator(workload.Constant(0.9))
	}
	return c
}

// BenchmarkClusterStep is the scale benchmark behind BENCH_cluster.json
// (refresh with `make bench`): one full cluster step — all node models
// advanced plus the serial controller phase — at rack scales, across
// worker counts. Within one nodes= group, ns/op at workers=1 over
// ns/op at workers=W is the parallel speedup; results are
// byte-identical across the sweep (see TestParallelStepByteIdentical),
// so the sweep measures wall-clock only. With THERMCTL_BENCH_FLEET set
// the matrix extends to 1k/10k/100k nodes (see benchNodeShapes).
func BenchmarkClusterStep(b *testing.B) {
	for _, nodes := range benchNodeShapes() {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
				c := benchCluster(b, nodes, workers)
				defer c.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Step()
				}
				b.StopTimer()
				b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
			})
		}
	}
}

// benchTraceProbe streams per-node observables to a tracefile.Writer
// from the serial phase — the same wiring config.AttachTraceProbe
// installs behind clustersim's -trace flag, restated locally because
// package cluster cannot import config (cycle).
type benchTraceProbe struct {
	c     *Cluster
	w     *tracefile.Writer
	every time.Duration
	next  time.Duration
}

func (p *benchTraceProbe) OnStep(now time.Duration) {
	if now < p.next {
		return
	}
	p.next += p.every
	for i, n := range p.c.Nodes {
		base := i * 4
		p.w.Append(base+0, now, n.Sensor.Read())
		p.w.Append(base+1, now, n.Fan.Duty())
		p.w.Append(base+2, now, n.CPU.FreqGHz())
		p.w.Append(base+3, now, n.Power().Total())
	}
}

// BenchmarkClusterStepTrace is the trace-recording twin of
// BenchmarkClusterStep at the 64-node scale: the same step loop with a
// tracefile probe sampling every node once per simulated second (the
// -trace cadence of clustersim), writer draining to io.Discard with
// raw chunks, matching AttachTraceProbe's options. It sits directly
// after BenchmarkClusterStep in the file on purpose: the two record
// close together in time, so the 5% gate compares numbers from the
// same host conditions rather than minutes of drift apart.
// Comparing nodes=64 sub-benchmarks against BenchmarkClusterStep is
// the cost of out-of-core trace recording on the step path; the
// acceptance bar — enforced by `benchjson -within ClusterStep
// ClusterStepTrace -tolerance 5` in scripts/bench.sh — is within 5% of
// the bare step. Writer.Append is a hotalloc root, so the budget is
// spent on delta encoding alone, never on allocation.
func BenchmarkClusterStepTrace(b *testing.B) {
	const nodes = 64
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
			c := benchCluster(b, nodes, workers)
			defer c.Close()
			schema := make([]tracefile.SeriesDef, 0, nodes*4)
			for i := 0; i < nodes; i++ {
				prefix := fmt.Sprintf("n%d_", i)
				schema = append(schema,
					tracefile.SeriesDef{Name: prefix + "temp", Unit: "degC"},
					tracefile.SeriesDef{Name: prefix + "duty", Unit: "percent"},
					tracefile.SeriesDef{Name: prefix + "freq", Unit: "GHz"},
					tracefile.SeriesDef{Name: prefix + "power", Unit: "W"})
			}
			w, err := tracefile.NewWriter(io.Discard, schema,
				&tracefile.Options{NoCompress: true})
			if err != nil {
				b.Fatal(err)
			}
			c.AddController(&benchTraceProbe{c: c, w: w, every: time.Second})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
			b.StopTimer()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkClusterStepWorkload is the workload-plane twin of
// BenchmarkClusterStep at the 64-node scale: the same step loop with
// every node evaluating its own spec-built seeded generator (uniform
// random demand redrawn once per simulated second) instead of one
// shared Constant. Generator evaluation happens inside node.Step in the
// sharded phase, so this measures exactly what the per-node workload
// plane adds to the hot path: one rng.Mix + SplitMix64 draw per
// node-step, no allocation (Utilization is a hotalloc root; Random
// keys a throwaway stream via rng.At instead of holding state). The
// acceptance bar — enforced by `benchjson -within ClusterStep
// ClusterStepWorkload -tolerance 10` in scripts/bench.sh — is within
// 10% of the bare step.
func BenchmarkClusterStepWorkload(b *testing.B) {
	const nodes = 64
	spec := workload.Spec{Kind: workload.KindRandom, Dist: "uniform", HoldMS: 1000}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
			c, err := New(nodes, DefaultDt, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.SetWorkers(workers)
			for i, n := range c.Nodes {
				g, err := spec.Build(1, i)
				if err != nil {
					b.Fatal(err)
				}
				n.SetGenerator(g)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkEngineStep is the control-engine twin of
// BenchmarkClusterStep: the same cluster step with every node under the
// paper's full unified controller (dynamic fan + tDVFS coupled by the
// hybrid), all of it running through the core engine's
// binding/policy pipeline in the serial phase. The delta against
// BenchmarkClusterStep at a matching shape is the whole cost of
// software thermal control — sysfs sampling, window updates and policy
// decisions on every fourth step (SamplePeriod 250ms over DefaultDt
// 50ms), not just engine dispatch. The engine pipeline is
// allocation-free (0 allocs/op, same as the bare step: the per-round
// Txn is hosted in the binding, temp_input reads take hwmon's
// IntReader path, and the step job closure is built at wiring time —
// the last per-round allocation, found by thermlint's hotalloc
// analyzer), and the committed trajectory records ~4%
// at the 64- and 256-node serial shapes. The gate `benchjson -within
// ClusterStep EngineStep -tolerance 25` in `make bench` bounds the
// control cost with shared-machine noise headroom, and the committed
// BENCH_cluster.json trajectory guards EngineStep itself name-to-name
// in CI.
func BenchmarkEngineStep(b *testing.B) {
	for _, nodes := range []int{4, 64, 256} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
				c := benchCluster(b, nodes, workers)
				defer c.Close()
				for i, n := range c.Nodes {
					read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
					fan, err := core.NewController(core.DefaultConfig(50), read,
						core.ActuatorBinding{Actuator: core.NewFanActuator(
							&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
					if err != nil {
						b.Fatal(err)
					}
					act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
					if err != nil {
						b.Fatal(err)
					}
					dvfs, err := core.NewTDVFS(core.DefaultTDVFSConfig(50), read, act)
					if err != nil {
						b.Fatal(err)
					}
					c.AddNodeController(i, core.NewHybrid(fan, dvfs))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Step()
				}
				b.StopTimer()
				b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
			})
		}
	}
}

// BenchmarkClusterStepFaults is the fault-plane twin of
// BenchmarkClusterStep at the 64-node scale: every node carries an
// attached injector and the plane runs in the serial controller phase,
// but the only scheduled episode lies far beyond the bench horizon, so
// no fault is ever active. Comparing nodes=64 sub-benchmarks against
// BenchmarkClusterStep is the idle cost of the resilience hooks; the
// acceptance bar is within 5% of the uninstrumented baseline.
func BenchmarkClusterStepFaults(b *testing.B) {
	const nodes = 64
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
			c := benchCluster(b, nodes, workers)
			defer c.Close()
			targets := make([]string, nodes)
			for i, n := range c.Nodes {
				targets[i] = n.Name
			}
			var schedules []faults.Schedule
			for _, name := range targets {
				schedules = append(schedules, faults.Schedule{
					Target: name,
					Episodes: []faults.Episode{{
						Kind:     faults.SensorDropout,
						Start:    faults.Dur(1000 * time.Hour),
						Duration: faults.Dur(time.Hour),
					}},
				})
			}
			if _, err := c.ApplyFaults(faults.Plan{Name: "idle", Schedules: schedules}, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkClusterStepMetrics is the instrumented twin of
// BenchmarkClusterStep at the 64-node scale: the same step loop with a
// metrics registry attached (step-latency histogram, per-shard timing,
// barrier-wait spread, step counter). Comparing nodes=64 sub-benchmarks
// between the two is the overhead of full instrumentation; the
// acceptance bar is within 5% of the uninstrumented baseline at 4
// workers.
func BenchmarkClusterStepMetrics(b *testing.B) {
	const nodes = 64
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
			c := benchCluster(b, nodes, workers)
			defer c.Close()
			c.InstrumentMetrics(metrics.NewRegistry())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkClusterStepRack is the rack-coupled variant: a 64-node rack
// whose air-recirculation controller runs in the serial phase of every
// step, the worst case for parallel efficiency (Amdahl's serial
// fraction includes the O(n²) inlet-target recomputation).
func BenchmarkClusterStepRack(b *testing.B) {
	const nodes = 64
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
			c := benchCluster(b, nodes, workers)
			defer c.Close()
			r, err := rack.New(rack.Default(), c.Nodes)
			if err != nil {
				b.Fatal(err)
			}
			c.AddController(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkClusterRunProgram measures the SPMD path (advanceProc +
// barrier release) rather than the open-loop path.
func BenchmarkClusterRunProgram(b *testing.B) {
	prog := workload.Uniform("bench", 2, workload.Iteration{
		ComputeGC: 0.5, ComputeUtil: 1, CommSec: 0.02, CommUtil: 0.1,
	})
	for _, nodes := range []int{4, 64} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
				c, err := New(nodes, DefaultDt, 1)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				c.SetWorkers(workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res := c.RunProgram(prog, 0); res.TimedOut {
						b.Fatal("benchmark program timed out")
					}
				}
			})
		}
	}
}
