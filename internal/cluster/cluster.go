// Package cluster runs a set of simulated nodes in lock-step and
// executes barrier-synchronized SPMD programs across them — the
// four-node power-aware cluster of the paper's evaluation.
//
// During a program run, every process is in one of three phases per
// iteration: computing (full utilization, progress proportional to its
// own frequency), waiting at the barrier (near idle — a fast node blocks
// in MPI_Wait while slower or down-clocked peers finish), or
// communicating (fixed wall time, near idle). This is where DVFS
// decisions become visible as execution time: down-clock one node and
// every node's iteration stretches.
//
// Phase transitions are handled with sub-step precision — a process that
// exhausts its compute work 12 ms into a 50 ms step spends the remaining
// 38 ms at the barrier — so execution-time measurements are accurate to
// well under one step per iteration. Only the barrier *release* is
// evaluated at step boundaries, since it is a global decision.
package cluster

import (
	"fmt"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/node"
	"thermctl/internal/rng"
	"thermctl/internal/simclock"
	"thermctl/internal/workload"
)

// DefaultDt is the simulation step used by the experiments: fine enough
// that barrier-release quantization stays below ~3% of an iteration.
const DefaultDt = 50 * time.Millisecond

// Controller is anything that observes/actuates nodes periodically: fan
// controllers, DVFS daemons, the unified controller. OnStep is called
// once per simulation step after the node models have advanced;
// implementations decide internally whether it is time to sample (e.g.
// every 250 ms).
type Controller interface {
	OnStep(now time.Duration)
}

// ControllerFunc adapts a function to Controller.
type ControllerFunc func(now time.Duration)

// OnStep implements Controller.
func (f ControllerFunc) OnStep(now time.Duration) { f(now) }

// Cluster is a fixed set of nodes sharing a simulation clock.
type Cluster struct {
	Nodes []*node.Node
	Clock *simclock.Clock

	controllers []Controller
	// WaitUtil is the utilization of a process blocked at a barrier: an
	// MPI rank in a blocking wait is near idle but not at zero.
	WaitUtil float64

	// workers and pool implement sharded parallel node advancement
	// (see SetWorkers in shard.go). workers is 1 and pool nil until
	// SetWorkers asks for more.
	workers int
	pool    *shardPool

	// met holds the optional metric handles (see InstrumentMetrics in
	// metrics.go); every handle is nil-safe.
	met clusterMetrics

	// stepJob advances node i by stepDt. It is wired once in
	// NewWithNodes so Step stays allocation-free (a closure literal in
	// Step itself would allocate every round).
	stepJob func(i int)
	stepDt  time.Duration
}

// New builds a cluster of n default nodes stepping at dt. Node i is
// named "node<i>" and seeded deterministically from seed: per-node
// seeds are derived with rng.Mix, so clusters built from different
// master seeds never share a node noise stream (an additive offset
// would collide whenever two seeds differ by a multiple of the
// stride).
func New(n int, dt time.Duration, seed uint64) (*Cluster, error) {
	c := &Cluster{Clock: simclock.NewClock(dt), WaitUtil: 0.06, workers: 1}
	for i := 0; i < n; i++ {
		nd, err := node.New(node.DefaultConfig(fmt.Sprintf("node%d", i), rng.Mix(seed, uint64(i))))
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, nd)
	}
	c.stepJob = func(i int) { c.Nodes[i].Step(c.stepDt) }
	return c, nil
}

// NewWithNodes builds a cluster from pre-constructed nodes (e.g. with
// per-slot ambient offsets modelling rack hot spots), stepping at dt.
func NewWithNodes(nodes []*node.Node, dt time.Duration) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	c := &Cluster{Clock: simclock.NewClock(dt), Nodes: nodes, WaitUtil: 0.06, workers: 1}
	// The per-round advance job is built once here: a closure literal in
	// Step would allocate on every round (hotalloc). It reads the round's
	// dt from stepDt, which Step refreshes before dispatch.
	c.stepJob = func(i int) { c.Nodes[i].Step(c.stepDt) }
	return c, nil
}

// AddController registers a controller to be invoked every step.
func (c *Cluster) AddController(ctl Controller) { c.controllers = append(c.controllers, ctl) }

// Settle equilibrates every node at the given utilization.
func (c *Cluster) Settle(util float64) {
	for _, n := range c.Nodes {
		n.Settle(util)
	}
}

func (c *Cluster) tickControllers() {
	c.Clock.Step()
	now := c.Clock.Now()
	for _, ctl := range c.controllers {
		ctl.OnStep(now)
	}
	c.met.steps.Inc()
}

// Step advances every node — in parallel across the worker shards when
// SetWorkers configured a pool — and then the controllers by one clock
// step. The controller phase is always single-threaded: it begins only
// after the worker barrier, so controllers observe every node at the
// same step boundary, exactly as under serial stepping.
func (c *Cluster) Step() {
	c.stepDt = c.Clock.Dt()
	if c.met.timed() {
		defer c.met.stepSeconds.ObserveSince(metrics.Now())
	}
	c.advanceNodes(c.stepJob)
	c.tickControllers()
}

// RunGenerator attaches g to every node and steps for d. When the
// cluster steps in parallel (SetWorkers), g must be stateless — see
// SetWorkers for the contract.
func (c *Cluster) RunGenerator(g workload.Generator, d time.Duration) {
	for _, n := range c.Nodes {
		n.SetGenerator(g)
	}
	deadline := c.Clock.Now() + d
	for c.Clock.Now() < deadline {
		c.Step()
	}
}

// phase of one SPMD process within the current iteration.
type phase int

const (
	phaseCompute phase = iota
	phaseMem
	phaseBarrier
	phaseComm
	phaseDone
)

type procState struct {
	iter     int
	ph       phase
	workLeft float64       // giga-cycles remaining in this iteration's compute
	memLeft  time.Duration // memory-stall time remaining (busy, non-scaling)
	commLeft time.Duration
}

// RunResult summarizes one program execution.
type RunResult struct {
	// Program is the executed program's name.
	Program string
	// ExecTime is the wall (simulated) time from start to the last
	// process finishing.
	ExecTime time.Duration
	// TimedOut reports whether the run hit maxTime before completion.
	TimedOut bool
}

// RunProgram executes prog SPMD across all nodes with barrier
// synchronization, stepping controllers throughout, and returns the
// execution time. maxTime bounds the run (0 means 10× the ideal time at
// the lowest frequency).
func (c *Cluster) RunProgram(prog workload.Program, maxTime time.Duration) RunResult {
	if len(prog.Iters) == 0 || len(c.Nodes) == 0 {
		return RunResult{Program: prog.Name}
	}
	if maxTime <= 0 {
		tab := c.Nodes[0].CPU.Table()
		slowest := tab[len(tab)-1].FreqGHz
		maxTime = time.Duration(10 * prog.IdealSeconds(slowest) * float64(time.Second))
	}

	states := make([]procState, len(c.Nodes))
	for i := range states {
		states[i] = procState{
			workLeft: prog.Iters[0].ComputeGC,
			memLeft:  durSec(prog.Iters[0].MemSec),
		}
	}
	for _, n := range c.Nodes {
		n.SetGenerator(nil)
	}

	start := c.Clock.Now()
	dt := c.Clock.Dt()
	for {
		allDone := true
		for i := range states {
			if states[i].ph != phaseDone {
				allDone = false
				break
			}
		}
		if allDone {
			return RunResult{Program: prog.Name, ExecTime: c.Clock.Now() - start}
		}
		if c.Clock.Now()-start >= maxTime {
			return RunResult{Program: prog.Name, ExecTime: c.Clock.Now() - start, TimedOut: true}
		}

		// Parallel phase: each process advances against its own node
		// and its own state slot; prog and WaitUtil are read-only.
		// Barrier release is a global decision and stays serial.
		c.advanceNodes(func(i int) { c.advanceProc(c.Nodes[i], &states[i], prog, dt) })
		c.releaseBarrier(states, prog)
		c.tickControllers()
	}
}

// advanceProc steps one node through dt of simulated time, handling
// phase transitions at sub-step precision.
func (c *Cluster) advanceProc(n *node.Node, st *procState, prog workload.Program, dt time.Duration) {
	remaining := dt
	for remaining >= time.Nanosecond {
		switch st.ph {
		case phaseBarrier, phaseDone:
			n.SetUtilization(c.WaitUtil)
			n.Step(remaining)
			remaining = 0

		case phaseCompute:
			it := prog.Iters[st.iter]
			rate := n.CPU.FreqGHz() * it.ComputeUtil // GC per second
			if rate <= 0 {
				// A zero-utilization "compute" phase never finishes by
				// retiring work; treat it as already complete.
				st.ph = phaseMem
				continue
			}
			need := time.Duration(st.workLeft / rate * float64(time.Second))
			slice := remaining
			if need < slice {
				slice = need
			}
			if slice < time.Nanosecond {
				st.workLeft = 0
				st.ph = phaseMem
				continue
			}
			n.SetUtilization(it.ComputeUtil)
			st.workLeft -= n.Step(slice)
			remaining -= slice
			if st.workLeft <= 1e-9 {
				st.ph = phaseMem
			}

		case phaseMem:
			// Memory-stall time: the core is busy (full utilization and
			// power) but progress is DRAM-bound and does not scale with
			// the clock.
			it := prog.Iters[st.iter]
			slice := remaining
			if st.memLeft < slice {
				slice = st.memLeft
			}
			if slice >= time.Nanosecond {
				n.SetUtilization(it.ComputeUtil)
				n.Step(slice)
			}
			st.memLeft -= slice
			remaining -= slice
			if st.memLeft < time.Nanosecond {
				st.ph = phaseBarrier
			}

		case phaseComm:
			it := prog.Iters[st.iter]
			slice := remaining
			if st.commLeft < slice {
				slice = st.commLeft
			}
			if slice >= time.Nanosecond {
				n.SetUtilization(it.CommUtil)
				n.Step(slice)
			}
			st.commLeft -= slice
			remaining -= slice
			if st.commLeft < time.Nanosecond {
				st.iter++
				if st.iter >= len(prog.Iters) {
					st.ph = phaseDone
				} else {
					st.ph = phaseCompute
					st.workLeft = prog.Iters[st.iter].ComputeGC
					st.memLeft = durSec(prog.Iters[st.iter].MemSec)
				}
			}
		}
	}
}

// releaseBarrier moves every process into the communication phase once
// all processes of the current iteration have arrived.
func (c *Cluster) releaseBarrier(states []procState, prog workload.Program) {
	iter := -1
	for i := range states {
		st := &states[i]
		if st.ph == phaseDone {
			continue
		}
		if iter == -1 {
			iter = st.iter
		}
		if st.ph != phaseBarrier || st.iter != iter {
			return
		}
	}
	if iter < 0 {
		return
	}
	for i := range states {
		st := &states[i]
		if st.ph == phaseBarrier {
			st.ph = phaseComm
			st.commLeft = durSec(prog.Iters[st.iter].CommSec)
		}
	}
}

func durSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
