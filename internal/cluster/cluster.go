// Package cluster runs a set of simulated nodes in lock-step and
// executes barrier-synchronized SPMD programs across them — the
// four-node power-aware cluster of the paper's evaluation.
//
// During a program run, every process is in one of three phases per
// iteration: computing (full utilization, progress proportional to its
// own frequency), waiting at the barrier (near idle — a fast node blocks
// in MPI_Wait while slower or down-clocked peers finish), or
// communicating (fixed wall time, near idle). This is where DVFS
// decisions become visible as execution time: down-clock one node and
// every node's iteration stretches.
//
// Phase transitions are handled with sub-step precision — a process that
// exhausts its compute work 12 ms into a 50 ms step spends the remaining
// 38 ms at the barrier — so execution-time measurements are accurate to
// well under one step per iteration: residual compute worth less than
// the 1 ns slice resolution is carried into the next round rather than
// dropped. Only the barrier *release* is evaluated at step boundaries,
// since it is a global decision.
//
// # Hierarchical stepping
//
// The step loop is hierarchical, mirroring ControlPULP's fast per-node
// inner loop under a slower cluster-level outer loop. Controllers whose
// policy reads only one node's sensors and actuates only that node —
// the common case: a fan PID, a tDVFS daemon, their hybrid — are
// attached with AddNodeController and run inside the *parallel* phase,
// sharded with the node advance. Cross-node work — rack coupling,
// fault-plane replay, barrier release, fleet statistics — is attached
// with AddController and runs in the serial phases around it. See
// DESIGN.md §11.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/node"
	"thermctl/internal/power"
	"thermctl/internal/rng"
	"thermctl/internal/simclock"
	"thermctl/internal/thermal"
	"thermctl/internal/workload"
)

// DefaultDt is the simulation step used by the experiments: fine enough
// that barrier-release quantization stays below ~3% of an iteration.
const DefaultDt = 50 * time.Millisecond

// Controller is anything that observes/actuates nodes periodically: fan
// controllers, DVFS daemons, the unified controller. OnStep is called
// once per simulation step after the node models have advanced;
// implementations decide internally whether it is time to sample (e.g.
// every 250 ms).
type Controller interface {
	OnStep(now time.Duration)
}

// ControllerFunc adapts a function to Controller.
type ControllerFunc func(now time.Duration)

// OnStep implements Controller.
func (f ControllerFunc) OnStep(now time.Duration) { f(now) }

// Cluster is a fixed set of nodes sharing a simulation clock.
type Cluster struct {
	Nodes []*node.Node
	Clock *simclock.Clock

	// Controller phases. pre and post run single-threaded every step;
	// locals[i] runs inside the parallel phase on whichever worker
	// advances node i. AddController fills pre until the first
	// AddNodeController call and post afterwards, so the wiring order
	// "globals, then per-node controllers, then trailing globals"
	// (probes and the fault plane first, rack statistics last) executes
	// in exactly the order it was attached, as it did when all
	// controllers shared one serial list.
	pre     []Controller
	locals  [][]Controller
	post    []Controller
	nLocals int

	// WaitUtil is the utilization of a process blocked at a barrier: an
	// MPI rank in a blocking wait is near idle but not at zero.
	WaitUtil float64

	// workers and pool implement sharded parallel node advancement
	// (see SetWorkers in shard.go). workers is 1 and pool nil until
	// SetWorkers asks for more.
	workers int
	pool    *shardPool

	// met holds the optional metric handles (see InstrumentMetrics in
	// metrics.go); every handle is nil-safe.
	met clusterMetrics

	// The per-round jobs are wired once at construction so the hot
	// loops stay allocation-free (a closure literal inside Step or
	// RunProgram would allocate every round — thermlint's hotalloc
	// analyzer watches both, via the Step and RunProgram call-graph
	// roots). Each job reads its round parameters from the fields
	// below, which the single-threaded code refreshes before dispatch.
	stepJob  func(i int)
	localJob func(i int)
	progJob  func(i int)
	stepDt   time.Duration
	ctlNow   time.Duration
	progDt   time.Duration
	prog     workload.Program

	// progStates holds one SPMD process slot per node, reused across
	// RunProgram calls (the slice length is fixed by the node count).
	progStates []procState

	// stop, when set, aborts RunProgram/RunGenerator at the next round
	// boundary (see SetStop).
	stop <-chan struct{}
}

// New builds a cluster of n default nodes stepping at dt. Node i is
// named "node<i>" and seeded deterministically from seed: per-node
// seeds are derived with rng.Mix, so clusters built from different
// master seeds never share a node noise stream (an additive offset
// would collide whenever two seeds differ by a multiple of the
// stride).
func New(n int, dt time.Duration, seed uint64) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	cfgs := make([]node.Config, n)
	for i := 0; i < n; i++ {
		cfgs[i] = node.DefaultConfig(fmt.Sprintf("node%d", i), rng.Mix(seed, uint64(i)))
	}
	return NewFromConfigs(cfgs, dt)
}

// NewFromConfigs builds a cluster from per-node configurations — the
// constructor for heterogeneous fleets, where node groups differ in
// CPU frequency table, fan curve or thermal mass (config.Scenario's
// "groups" block lands here). Any ThermalState/Meter pointers in the
// configs are overridden: the hot per-node state is laid out
// struct-of-arrays, with the thermal integrator states and power-meter
// accumulators of all nodes in two contiguous slices, so the parallel
// sweep walks dense memory instead of chasing per-node heap islands.
// The node API is unchanged — each node's Thermal/Meter point into its
// slot.
func NewFromConfigs(cfgs []node.Config, dt time.Duration) (*Cluster, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	therm := make([]thermal.State, len(cfgs))
	meters := make([]power.Meter, len(cfgs))
	nodes := make([]*node.Node, 0, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.ThermalState = &therm[i]
		cfg.Meter = &meters[i]
		nd, err := node.New(cfg)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	return NewWithNodes(nodes, dt)
}

// NewWithNodes builds a cluster from pre-constructed nodes (e.g. with
// per-slot ambient offsets modelling rack hot spots), stepping at dt.
func NewWithNodes(nodes []*node.Node, dt time.Duration) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	c := &Cluster{
		Clock:      simclock.NewClock(dt),
		Nodes:      nodes,
		WaitUtil:   0.06,
		workers:    1,
		progStates: make([]procState, len(nodes)),
	}
	// The per-round jobs are built once here: a closure literal in
	// Step/RunProgram would allocate on every round (hotalloc). Each
	// reads its round parameters from cluster fields refreshed before
	// dispatch.
	c.stepJob = func(i int) { c.Nodes[i].Step(c.stepDt) }
	c.localJob = func(i int) {
		for _, ctl := range c.locals[i] {
			ctl.OnStep(c.ctlNow)
		}
	}
	c.progJob = func(i int) { c.advanceProc(c.Nodes[i], &c.progStates[i], c.prog, c.progDt) }
	return c, nil
}

// AddController registers a cluster-level controller to be invoked
// single-threaded every step: before the node-local phase when attached
// before the first AddNodeController call, after it otherwise. Use this
// for anything that observes or actuates more than one node (rack
// coupling, fleet statistics, the fault plane).
func (c *Cluster) AddController(ctl Controller) {
	if c.nLocals == 0 {
		c.pre = append(c.pre, ctl)
		return
	}
	c.post = append(c.post, ctl)
}

// AddNodeController registers a node-local controller: one whose policy
// reads only node i's sensors and actuates only node i (a fan PID, a
// tDVFS daemon, their hybrid). It runs inside the parallel phase on
// whichever worker owns node i that step, after every node has
// advanced and after the pre-phase cluster controllers; per-node
// attachment order is preserved. It must not touch any other node or
// shared mutable state — that is what keeps traces byte-identical
// across worker counts. Panics if i is out of range.
func (c *Cluster) AddNodeController(i int, ctl Controller) {
	if i < 0 || i >= len(c.Nodes) {
		panic(fmt.Sprintf("cluster: AddNodeController index %d out of range [0,%d)", i, len(c.Nodes)))
	}
	if c.locals == nil {
		c.locals = make([][]Controller, len(c.Nodes))
	}
	c.locals[i] = append(c.locals[i], ctl)
	c.nLocals++
}

// SetStop arms an external cancellation signal: once stop is closed,
// RunProgram and RunGenerator return at the next round boundary (a
// context's Done channel is the intended argument). The check runs in
// the serial phase between rounds, so a canceled run is a clean prefix
// of the uncanceled one — the simulated state never stops mid-step.
// Pass nil to disarm.
func (c *Cluster) SetStop(stop <-chan struct{}) { c.stop = stop }

// stopRequested polls the stop channel without blocking.
func (c *Cluster) stopRequested() bool {
	if c.stop == nil {
		return false
	}
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// Settle equilibrates every node at the given utilization.
func (c *Cluster) Settle(util float64) {
	for _, n := range c.Nodes {
		n.Settle(util)
	}
}

// tickControllers runs the control half of a step: advance the clock,
// then the hierarchical controller phases — cluster-level pre
// controllers serially, node-local controllers sharded across the
// workers, cluster-level post controllers serially.
func (c *Cluster) tickControllers() {
	c.Clock.Step()
	now := c.Clock.Now()
	for _, ctl := range c.pre {
		ctl.OnStep(now)
	}
	if c.nLocals > 0 {
		c.ctlNow = now
		c.advanceNodes(c.localJob)
	}
	for _, ctl := range c.post {
		ctl.OnStep(now)
	}
	c.met.steps.Inc()
}

// Step advances the cluster by one clock step, hierarchically: every
// node's device models advance — in parallel across the workers when
// SetWorkers configured a pool — then the cluster-level pre controllers
// run single-threaded, then the node-local controllers run sharded like
// the advance, then the cluster-level post controllers run
// single-threaded. Every serial phase begins only after the preceding
// parallel sweep has fully drained, so cluster controllers observe
// every node at the same step boundary, exactly as under serial
// stepping.
func (c *Cluster) Step() {
	c.stepDt = c.Clock.Dt()
	if c.met.timed() {
		defer c.met.stepSeconds.ObserveSince(metrics.Now())
	}
	c.advanceNodes(c.stepJob)
	c.tickControllers()
}

// RunGenerator attaches g to every node and steps for d. Because one
// instance is shared by the whole fleet, g must be stateless — see
// SetWorkers for the contract. For per-node instances (stateful
// generators, or independent seeded demand per node) use
// RunGenerators; the config layer's workload spec builds that slice.
func (c *Cluster) RunGenerator(g workload.Generator, d time.Duration) RunResult {
	for _, n := range c.Nodes {
		n.SetGenerator(g)
	}
	return c.runSteps(d)
}

// ErrGeneratorCount reports a RunGenerators slice whose length does not
// match the node count.
var ErrGeneratorCount = errors.New("cluster: RunGenerators needs exactly one generator per node")

// RunGenerators attaches gens[i] to node i and steps for d. This is
// the open-loop core path: every node gets its own generator instance,
// so stateful generators (CPUBurn's noise stream) and per-node seeded
// demand are safe under parallel stepping — node i's generator is only
// ever evaluated by the worker that owns node i that sweep, and
// trajectories stay byte-identical across worker counts.
func (c *Cluster) RunGenerators(gens []workload.Generator, d time.Duration) RunResult {
	if len(gens) != len(c.Nodes) {
		return RunResult{Err: ErrGeneratorCount}
	}
	for i, n := range c.Nodes {
		n.SetGenerator(gens[i])
	}
	return c.runSteps(d)
}

// runSteps advances the cluster until d of simulated time has elapsed
// or the stop signal armed with SetStop fires at a round boundary.
func (c *Cluster) runSteps(d time.Duration) RunResult {
	start := c.Clock.Now()
	deadline := start + d
	for c.Clock.Now() < deadline {
		if c.stopRequested() {
			return RunResult{ExecTime: c.Clock.Now() - start, Canceled: true}
		}
		c.Step()
	}
	return RunResult{ExecTime: c.Clock.Now() - start}
}

// phase of one SPMD process within the current iteration.
type phase int

const (
	phaseCompute phase = iota
	phaseMem
	phaseBarrier
	phaseComm
	phaseDone
)

type procState struct {
	iter     int
	ph       phase
	workLeft float64       // giga-cycles remaining in this iteration's compute
	memLeft  time.Duration // memory-stall time remaining (busy, non-scaling)
	commLeft time.Duration
}

// RunResult summarizes one program execution.
type RunResult struct {
	// Program is the executed program's name.
	Program string
	// ExecTime is the wall (simulated) time from start to the last
	// process finishing.
	ExecTime time.Duration
	// TimedOut reports whether the run hit maxTime before completion.
	TimedOut bool
	// Canceled reports that the stop channel armed with SetStop fired
	// before completion; ExecTime covers the rounds actually run.
	Canceled bool
	// Err is non-nil when the run could not start (e.g. maxTime <= 0
	// asked for the ideal-time bound but a node's CPU has no P-state
	// table to derive it from). ExecTime is zero in that case.
	Err error
}

// ErrNoPStateTable reports that RunProgram was asked to derive its
// default time bound (maxTime <= 0) from the slowest P-state of a CPU
// whose frequency table is empty. A sentinel rather than a formatted
// error: RunProgram is a hot root and must not allocate per round.
var ErrNoPStateTable = errors.New(
	"cluster: maxTime <= 0 derives its bound from the slowest P-state, but the CPU frequency table is empty")

// RunProgram executes prog SPMD across all nodes with barrier
// synchronization, stepping controllers throughout, and returns the
// execution time. maxTime bounds the run (0 means 10× the ideal time at
// the lowest frequency; that default requires a non-empty P-state
// table on node 0 — see RunResult.Err and ErrNoPStateTable).
func (c *Cluster) RunProgram(prog workload.Program, maxTime time.Duration) RunResult {
	if len(prog.Iters) == 0 || len(c.Nodes) == 0 {
		return RunResult{Program: prog.Name}
	}
	if maxTime <= 0 {
		tab := c.Nodes[0].CPU.Table()
		if len(tab) == 0 {
			return RunResult{Program: prog.Name, Err: ErrNoPStateTable}
		}
		slowest := tab[len(tab)-1].FreqGHz
		maxTime = time.Duration(10 * prog.IdealSeconds(slowest) * float64(time.Second))
	}

	for i := range c.progStates {
		c.progStates[i] = procState{
			workLeft: prog.Iters[0].ComputeGC,
			memLeft:  durSec(prog.Iters[0].MemSec),
		}
	}
	for _, n := range c.Nodes {
		n.SetGenerator(nil)
	}

	start := c.Clock.Now()
	c.progDt = c.Clock.Dt()
	c.prog = prog
	for {
		allDone := true
		for i := range c.progStates {
			if c.progStates[i].ph != phaseDone {
				allDone = false
				break
			}
		}
		if allDone {
			return RunResult{Program: prog.Name, ExecTime: c.Clock.Now() - start}
		}
		if c.Clock.Now()-start >= maxTime {
			return RunResult{Program: prog.Name, ExecTime: c.Clock.Now() - start, TimedOut: true}
		}
		if c.stopRequested() {
			return RunResult{Program: prog.Name, ExecTime: c.Clock.Now() - start, Canceled: true}
		}

		// Parallel phase: each process advances against its own node
		// and its own state slot; prog and WaitUtil are read-only.
		// Barrier release is a global decision and stays serial. The
		// job is pre-wired at construction (progJob) — it reads
		// prog/progDt/progStates from the fields refreshed above.
		c.advanceNodes(c.progJob)
		c.releaseBarrier(c.progStates, prog)
		c.tickControllers()
	}
}

// advanceProc steps one node through dt of simulated time, handling
// phase transitions at sub-step precision.
func (c *Cluster) advanceProc(n *node.Node, st *procState, prog workload.Program, dt time.Duration) {
	remaining := dt
	for remaining >= time.Nanosecond {
		switch st.ph {
		case phaseBarrier, phaseDone:
			n.SetUtilization(c.WaitUtil)
			n.Step(remaining)
			remaining = 0

		case phaseCompute:
			it := prog.Iters[st.iter]
			rate := n.CPU.FreqGHz() * it.ComputeUtil // GC per second
			if rate <= 0 || st.workLeft <= 1e-9 {
				// Zero-rate "compute" never finishes by retiring work,
				// and a residual at or below the accounting epsilon is
				// complete; either way the phase is over.
				st.workLeft = 0
				st.ph = phaseMem
				continue
			}
			need := time.Duration(st.workLeft / rate * float64(time.Second))
			if need < time.Nanosecond {
				// The residual is worth less than the 1 ns slice
				// resolution at the current clock. Rounding the slice
				// *down* would silently drop the work (the bug this
				// guards against); round it up to one 1 ns slice
				// instead, so the residual is retired and accounted.
				// Any unretired remainder (e.g. the node stalls in a
				// P-state transition) stays in workLeft and carries
				// into the next round.
				need = time.Nanosecond
			}
			slice := remaining
			if need < slice {
				slice = need
			}
			n.SetUtilization(it.ComputeUtil)
			st.workLeft -= n.Step(slice)
			remaining -= slice
			if st.workLeft <= 1e-9 {
				st.workLeft = 0
				st.ph = phaseMem
			}

		case phaseMem:
			// Memory-stall time: the core is busy (full utilization and
			// power) but progress is DRAM-bound and does not scale with
			// the clock.
			it := prog.Iters[st.iter]
			slice := remaining
			if st.memLeft < slice {
				slice = st.memLeft
			}
			if slice >= time.Nanosecond {
				n.SetUtilization(it.ComputeUtil)
				n.Step(slice)
			}
			st.memLeft -= slice
			remaining -= slice
			if st.memLeft < time.Nanosecond {
				st.ph = phaseBarrier
			}

		case phaseComm:
			it := prog.Iters[st.iter]
			slice := remaining
			if st.commLeft < slice {
				slice = st.commLeft
			}
			if slice >= time.Nanosecond {
				n.SetUtilization(it.CommUtil)
				n.Step(slice)
			}
			st.commLeft -= slice
			remaining -= slice
			if st.commLeft < time.Nanosecond {
				st.iter++
				if st.iter >= len(prog.Iters) {
					st.ph = phaseDone
				} else {
					st.ph = phaseCompute
					st.workLeft = prog.Iters[st.iter].ComputeGC
					st.memLeft = durSec(prog.Iters[st.iter].MemSec)
				}
			}
		}
	}
}

// releaseBarrier moves every process into the communication phase once
// all processes of the current iteration have arrived.
func (c *Cluster) releaseBarrier(states []procState, prog workload.Program) {
	iter := -1
	for i := range states {
		st := &states[i]
		if st.ph == phaseDone {
			continue
		}
		if iter == -1 {
			iter = st.iter
		}
		if st.ph != phaseBarrier || st.iter != iter {
			return
		}
	}
	if iter < 0 {
		return
	}
	for i := range states {
		st := &states[i]
		if st.ph == phaseBarrier {
			st.ph = phaseComm
			st.commLeft = durSec(prog.Iters[st.iter].CommSec)
		}
	}
}

func durSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
