package cluster

import (
	"testing"

	"thermctl/internal/metrics"
	"thermctl/internal/workload"
)

// findSample returns the sample with the given name, failing the test
// when absent.
func findSample(t *testing.T, snap []metrics.Sample, name string) metrics.Sample {
	t.Helper()
	for _, s := range snap {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no sample %q in snapshot", name)
	return metrics.Sample{}
}

func TestClusterMetricsSerial(t *testing.T) {
	c, err := New(4, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.InstrumentMetrics(reg)
	for _, n := range c.Nodes {
		n.SetGenerator(workload.Constant(0.5))
	}
	const steps = 25
	for i := 0; i < steps; i++ {
		c.Step()
	}

	snap := reg.Snapshot()
	if got := findSample(t, snap, "thermctl_cluster_steps_total").Value; got != steps {
		t.Errorf("steps_total = %v, want %v", got, steps)
	}
	if got := findSample(t, snap, "thermctl_cluster_workers").Value; got != 1 {
		t.Errorf("workers gauge = %v, want 1", got)
	}
	step := findSample(t, snap, "thermctl_cluster_step_seconds")
	if step.Count != steps {
		t.Errorf("step_seconds count = %d, want %d", step.Count, steps)
	}
	// Serial stepping never dispatches, so the shard histograms stay
	// empty.
	if got := findSample(t, snap, "thermctl_cluster_shard_seconds").Count; got != 0 {
		t.Errorf("shard_seconds count = %d, want 0 under serial stepping", got)
	}
}

func TestClusterMetricsSharded(t *testing.T) {
	forceProcs(t, 4) // the pool's inline single-P path records no shard metrics
	c, err := New(8, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := metrics.NewRegistry()
	// Instrument first, then shard: SetWorkers must wire the new pool
	// to the already-attached handles and refresh the workers gauge.
	c.InstrumentMetrics(reg)
	const workers = 4
	c.SetWorkers(workers)
	for _, n := range c.Nodes {
		n.SetGenerator(workload.Constant(0.5))
	}
	const steps = 10
	for i := 0; i < steps; i++ {
		c.Step()
	}

	snap := reg.Snapshot()
	if got := findSample(t, snap, "thermctl_cluster_workers").Value; got != workers {
		t.Errorf("workers gauge = %v, want %v", got, workers)
	}
	if got := findSample(t, snap, "thermctl_cluster_shard_seconds").Count; got != steps*workers {
		t.Errorf("shard_seconds count = %d, want %d (steps × workers)", got, steps*workers)
	}
	if got := findSample(t, snap, "thermctl_cluster_barrier_wait_seconds").Count; got != steps {
		t.Errorf("barrier_wait_seconds count = %d, want %d", got, steps)
	}
	if got := findSample(t, snap, "thermctl_cluster_steps_total").Value; got != steps {
		t.Errorf("steps_total = %v, want %v", got, steps)
	}
}

func TestClusterMetricsPoolBeforeInstrument(t *testing.T) {
	forceProcs(t, 4)
	c, err := New(8, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Shard first, then instrument: InstrumentMetrics must reach the
	// existing pool.
	c.SetWorkers(2)
	reg := metrics.NewRegistry()
	c.InstrumentMetrics(reg)
	for i := 0; i < 5; i++ {
		c.Step()
	}
	if got := findSample(t, reg.Snapshot(), "thermctl_cluster_shard_seconds").Count; got != 5*2 {
		t.Errorf("shard_seconds count = %d, want 10", got)
	}
}
