package cluster

import (
	"math"
	"runtime"
	"testing"
	"time"

	"thermctl/internal/cpu"
	"thermctl/internal/metrics"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// forceProcs raises GOMAXPROCS for the duration of the test so the
// worker pool's goroutine path runs even on a single-CPU host
// (shardPool.dispatch steps inline when GOMAXPROCS is 1, which would
// leave the helper goroutines, channels and the claim counter
// untested).
func forceProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestRepeatedSetWorkersInstrumented reconfigures the pool several
// times on an instrumented cluster — each SetWorkers must tear down the
// old helper goroutines, build a pool wired to the existing metric
// handles, and keep the workers gauge truthful. Runs under -race in CI,
// which is the point: pool teardown racing helper goroutines would be
// caught here.
func TestRepeatedSetWorkersInstrumented(t *testing.T) {
	forceProcs(t, 4)
	c, err := New(8, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := metrics.NewRegistry()
	c.InstrumentMetrics(reg)
	for _, n := range c.Nodes {
		n.SetGenerator(workload.Constant(0.5))
	}

	wantShardObs := 0
	steps := 0
	for _, w := range []int{2, 4, 3, 4, 2} {
		c.SetWorkers(w)
		for i := 0; i < 3; i++ {
			c.Step()
		}
		steps += 3
		wantShardObs += 3 * w // every participant reports once per dispatch
		snap := reg.Snapshot()
		for _, s := range snap {
			switch s.Name {
			case "thermctl_cluster_workers":
				if s.Value != float64(w) {
					t.Fatalf("workers gauge = %v after SetWorkers(%d)", s.Value, w)
				}
			case "thermctl_cluster_shard_seconds":
				if s.Count != uint64(wantShardObs) {
					t.Fatalf("shard_seconds count = %d after %d steps, want %d", s.Count, steps, wantShardObs)
				}
			}
		}
	}
}

// TestCloseThenStepSerialFallback: Close mid-run must leave the cluster
// usable — subsequent Steps fall back to the serial loop and produce
// the bit-exact trajectory a never-parallel cluster produces.
func TestCloseThenStepSerialFallback(t *testing.T) {
	forceProcs(t, 4)
	run := func(parallelFirst bool) []float64 {
		c, err := New(6, DefaultDt, 77)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Settle(0)
		for _, n := range c.Nodes {
			n.SetGenerator(workload.Constant(0.7))
		}
		if parallelFirst {
			c.SetWorkers(3)
		}
		for i := 0; i < 10; i++ {
			c.Step()
		}
		if parallelFirst {
			c.Close()
			if c.Workers() != 1 {
				t.Fatalf("Workers() = %d after Close", c.Workers())
			}
		}
		for i := 0; i < 10; i++ {
			c.Step()
		}
		var out []float64
		for _, n := range c.Nodes {
			out = append(out, n.TrueDieC(), n.Sensor.Read(), n.Meter.EnergyJ())
		}
		return out
	}
	want := run(false)
	got := run(true)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("observable %d = %v after Close fallback, want %v", i, got[i], want[i])
		}
	}
}

// TestSetWorkersClampsToNodeCount: asking for more workers than nodes
// must clamp (a worker with no possible work is pure overhead), and the
// clamped pool must still step correctly.
func TestSetWorkersClampsToNodeCount(t *testing.T) {
	forceProcs(t, 4)
	c, err := New(3, DefaultDt, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetWorkers(64)
	if c.Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(64) on 3 nodes, want 3", c.Workers())
	}
	for _, n := range c.Nodes {
		n.SetGenerator(workload.Constant(0.4))
	}
	for i := 0; i < 5; i++ {
		c.Step()
	}
	if c.Clock.Now() != 5*DefaultDt {
		t.Fatalf("clock at %v after 5 steps", c.Clock.Now())
	}
	// Single-node cluster: any request collapses to serial.
	c1, err := New(1, DefaultDt, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.SetWorkers(8)
	if c1.Workers() != 1 || c1.pool != nil {
		t.Fatalf("single-node cluster got workers=%d pool=%v", c1.Workers(), c1.pool != nil)
	}
}

// TestControllerPhaseOrder pins the hierarchical execution order within
// a step: cluster-level controllers attached before the first
// node-local one run first, then the node-local phase, then
// cluster-level controllers attached after. Serial stepping, so the
// node-local phase is also in node order and the whole sequence is
// deterministic.
func TestControllerPhaseOrder(t *testing.T) {
	c, err := New(3, DefaultDt, 11)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	mark := func(s string) Controller {
		return ControllerFunc(func(time.Duration) { order = append(order, s) })
	}
	c.AddController(mark("pre0"))
	c.AddController(mark("pre1"))
	for i := range c.Nodes {
		c.AddNodeController(i, mark("localA"))
	}
	c.AddNodeController(1, mark("localB"))
	c.AddController(mark("post0"))
	c.Step()
	want := []string{"pre0", "pre1", "localA", "localA", "localB", "localA", "post0"}
	if len(order) != len(want) {
		t.Fatalf("controller sequence %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("controller sequence %v, want %v", order, want)
		}
	}
}

// TestAddNodeControllerOutOfRangePanics pins the contract for a wiring
// bug: attaching to a node that does not exist is a programming error.
func TestAddNodeControllerOutOfRangePanics(t *testing.T) {
	c, err := New(2, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddNodeController(%d) on 2 nodes did not panic", i)
				}
			}()
			c.AddNodeController(i, ControllerFunc(func(time.Duration) {}))
		}()
	}
}

// TestRunProgramEmptyFreqTable: maxTime <= 0 derives its bound from the
// slowest P-state; a node with an empty table must yield an error-shaped
// RunResult instead of the historical index-out-of-range panic.
func TestRunProgramEmptyFreqTable(t *testing.T) {
	// cpu.New rejects empty tables, so reach the degenerate state the
	// way a misassembled node would present it: a zero-value CPU.
	c, err := NewWithNodes([]*node.Node{{Name: "empty", CPU: &cpu.CPU{}}}, DefaultDt)
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Uniform("p", 2, workload.Iteration{ComputeGC: 1, ComputeUtil: 1})
	res := c.RunProgram(prog, 0)
	if res.Err == nil {
		t.Fatal("RunProgram(maxTime=0) with empty P-state table returned no error")
	}
	if res.ExecTime != 0 || res.TimedOut {
		t.Fatalf("error-shaped result should not report progress: %+v", res)
	}
}

// TestSubNanosecondResidualCarried: a compute residual worth less than
// 1 ns of wall time at the current clock must be retired (rounded up to
// one 1 ns slice), not silently zeroed. With the historical truncation,
// a program whose iteration tail always lands below 1 ns loses that
// work every iteration and finishes early; the carried residual keeps
// the execution-time accounting within the package's sub-step accuracy
// claim.
func TestSubNanosecondResidualCarried(t *testing.T) {
	c, err := New(1, DefaultDt, 13)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(0)
	// Barrier/done phases must retire nothing, so total retired work
	// isolates the compute phase exactly.
	c.WaitUtil = 0
	n := c.Nodes[0]
	freq := n.CPU.FreqGHz() // GHz = GC per second

	// One iteration whose compute lasts an exact whole number of steps
	// plus half a nanosecond of work: the tail slice rounds below 1 ns.
	wholeSteps := 4.0
	tail := freq * 0.5e-9 // GC retired in half a nanosecond
	work := freq*wholeSteps*DefaultDt.Seconds() + tail
	prog := workload.Program{Name: "subns", Iters: []workload.Iteration{
		{ComputeGC: work, ComputeUtil: 1},
	}}
	res := c.RunProgram(prog, time.Minute)
	if res.Err != nil || res.TimedOut {
		t.Fatalf("run failed: %+v", res)
	}
	retired := n.CPU.Work()
	if retired < work {
		t.Errorf("retired %.12f GC of %.12f — sub-ns residual dropped", retired, work)
	}
}
