package cluster_test

// Cluster-level golden equivalence: a 4-node cluster under per-node
// hybrid controllers and a generated fault campaign must produce a
// byte-identical observable trace at 1, 4 and GOMAXPROCS workers, and
// that trace must match the committed golden recorded from the
// pre-engine controller implementations. This is the integration half of
// the control-plane refactor's behavior-preservation contract (the unit
// half lives in internal/core/golden_test.go).

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/core"
	"thermctl/internal/faults"
	"thermctl/internal/tracefile"
	"thermctl/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenWorkerCounts returns the deduplicated worker sweep {1, 4,
// GOMAXPROCS} the acceptance contract names.
func goldenWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range counts {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// hybridClusterTrace runs the scenario at the given worker count and
// returns the observable trace, one line per record.
func hybridClusterTrace(t *testing.T, workers int) []string {
	t.Helper()
	const (
		seed      = 20100131
		chaosSeed = 7
		nodes     = 4
	)
	c, err := cluster.New(nodes, cluster.DefaultDt, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetWorkers(workers)
	c.Settle(0.2)

	names := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		names[i] = n.Name
	}
	horizon := 60 * time.Second
	if _, err := c.ApplyFaults(faults.Generate(chaosSeed, names, horizon), seed); err != nil {
		t.Fatal(err)
	}

	var fans []*core.Controller
	var dvfss []*core.TDVFS
	for i, n := range c.Nodes {
		read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
		fan, err := core.NewController(core.DefaultConfig(50), read,
			core.ActuatorBinding{Actuator: core.NewFanActuator(
				&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
		if err != nil {
			t.Fatal(err)
		}
		act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			t.Fatal(err)
		}
		dvfs, err := core.NewTDVFS(core.DefaultTDVFSConfig(50), read, act)
		if err != nil {
			t.Fatal(err)
		}
		// Node-local attachment: each hybrid reads and actuates only its
		// own node, so it runs in the sharded phase. The trace must stay
		// byte-identical to the committed golden recorded under the
		// serial controller list — that equality is this test's proof
		// that the hierarchical split preserves behavior.
		c.AddNodeController(i, core.NewHybrid(fan, dvfs))
		fans = append(fans, fan)
		dvfss = append(dvfss, dvfs)
	}

	var lines []string
	steps := int(horizon / cluster.DefaultDt)
	for _, n := range c.Nodes {
		n.SetGenerator(workload.Constant(0.85))
	}
	for s := 0; s < steps; s++ {
		c.Step()
		if s%20 != 19 {
			continue
		}
		for i, n := range c.Nodes {
			lines = append(lines, fmt.Sprintf("step=%04d node=%s temp=%.6f duty=%.6f ghz=%.6f fan[idx=%d moves=%d errs=%d fs=%v] dvfs[mode=%d errs=%d fs=%v]",
				s, n.Name, n.Sensor.Read(), n.Fan.Duty(), n.CPU.FreqGHz(),
				fans[i].Index(0), fans[i].Moves(0), fans[i].Errors(), fans[i].FailSafe(),
				dvfss[i].CurrentMode(), dvfss[i].Errors(), dvfss[i].FailSafe()))
		}
	}
	for i := range fans {
		for _, ev := range fans[i].FailSafeEvents() {
			lines = append(lines, fmt.Sprintf("event node=%d fan at=%s engaged=%v", i, ev.At, ev.Engaged))
		}
		for _, ev := range dvfss[i].FailSafeEvents() {
			lines = append(lines, fmt.Sprintf("event node=%d dvfs at=%s engaged=%v", i, ev.At, ev.Engaged))
		}
	}
	return lines
}

func TestGoldenHybridCluster(t *testing.T) {
	// Raise GOMAXPROCS so the pool's goroutine path runs even on a
	// single-CPU host (dispatch steps inline at GOMAXPROCS 1, which
	// would make the multi-worker comparisons vacuous).
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	path := filepath.Join("testdata", "golden", "hybrid-cluster.tct")
	ref := hybridClusterTrace(t, 1)
	if *update {
		img, err := tracefile.EncodeEvents(ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines, %d bytes)", path, len(ref), len(img))
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update to record): %v", err)
		}
		if err := tracefile.DiffEventLines(want, ref); err != nil {
			t.Fatalf("workers=1 vs golden: %v", err)
		}
	}
	for _, w := range goldenWorkerCounts() {
		if w == 1 {
			continue
		}
		got := hybridClusterTrace(t, w)
		diffFatal(t, fmt.Sprintf("workers=%d vs workers=1", w), ref, got)
	}
}

func diffFatal(t *testing.T, what string, want, got []string) {
	t.Helper()
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w != g {
			t.Fatalf("%s: first divergence at line %d:\n  want: %q\n  got:  %q", what, i+1, w, g)
		}
	}
}
