package cluster

import (
	"math"
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/rng"
	"thermctl/internal/workload"
)

func perNodeGens(n int, seed uint64) []workload.Generator {
	gens := make([]workload.Generator, n)
	for i := range gens {
		// Stateful on purpose: the old shared-generator path could not
		// carry CPUBurn across a parallel fleet at all.
		gens[i] = workload.NewCPUBurn(rng.New(rng.Mix(seed, uint64(i))))
	}
	return gens
}

// TestRunGeneratorsByteIdenticalAcrossWorkers: per-node stateful
// generators evaluated in the sharded phase yield the same trajectory
// at every worker count — the invariant the shared-generator path
// could never offer for stateful workloads.
func TestRunGeneratorsByteIdenticalAcrossWorkers(t *testing.T) {
	forceProcs(t, 4)
	run := func(workers int) []float64 {
		c, err := New(6, DefaultDt, 7)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetWorkers(workers)
		c.Settle(0)
		res := c.RunGenerators(perNodeGens(6, 7), 5*time.Second)
		if res.Err != nil || res.Canceled {
			t.Fatalf("run failed: %+v", res)
		}
		var out []float64
		for _, n := range c.Nodes {
			out = append(out, n.TrueDieC(), n.Sensor.Read(), n.Meter.CPUEnergyJ())
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 6} {
		got := run(workers)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: observable %d = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunGeneratorsNodesIndependent: per-node CPUBurn instances draw
// independent noise, so identically configured nodes do not trace
// identical trajectories (they did under one shared noiseless path).
func TestRunGeneratorsNodesIndependent(t *testing.T) {
	c, err := New(2, DefaultDt, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Settle(0)
	if res := c.RunGenerators(perNodeGens(2, 3), 30*time.Second); res.Err != nil {
		t.Fatal(res.Err)
	}
	if c.Nodes[0].Meter.CPUEnergyJ() == c.Nodes[1].Meter.CPUEnergyJ() {
		t.Error("two nodes burned bit-identical energy; generator streams look shared")
	}
}

func TestRunGeneratorsCountMismatch(t *testing.T) {
	c, err := New(3, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.RunGenerators(perNodeGens(2, 1), time.Second)
	if res.Err != ErrGeneratorCount {
		t.Fatalf("err = %v, want ErrGeneratorCount", res.Err)
	}
	if res.ExecTime != 0 {
		t.Fatalf("mismatched call still ran for %v", res.ExecTime)
	}
}

func TestRunGeneratorsCanceled(t *testing.T) {
	c, err := New(2, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	close(stop)
	c.SetStop(stop)
	res := c.RunGenerators(perNodeGens(2, 1), time.Hour)
	if !res.Canceled {
		t.Fatal("pre-closed stop channel did not cancel the run")
	}
	if res.ExecTime != 0 {
		t.Fatalf("canceled-before-start run reports ExecTime %v", res.ExecTime)
	}
	c.SetStop(nil)
	res = c.RunGenerators(perNodeGens(2, 1), 2*time.Second)
	if res.Canceled || res.ExecTime != 2*time.Second {
		t.Fatalf("disarmed run = %+v, want clean 2s", res)
	}
}

// TestRunGeneratorReturnsResult: the shared-generator path reports the
// same RunResult shape as the per-node path.
func TestRunGeneratorReturnsResult(t *testing.T) {
	c, err := New(2, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.RunGenerator(workload.Constant(0.5), 3*time.Second)
	if res.Err != nil || res.Canceled || res.TimedOut {
		t.Fatalf("clean run = %+v", res)
	}
	if res.ExecTime != 3*time.Second {
		t.Fatalf("ExecTime = %v, want 3s", res.ExecTime)
	}
}

// TestNewFromConfigsHeterogeneous: per-config construction carries
// per-node hardware differences into the fleet and still lays hot
// state out struct-of-arrays.
func TestNewFromConfigsHeterogeneous(t *testing.T) {
	cfgA := node.DefaultConfig("hot0", 1)
	cfgB := node.DefaultConfig("hot1", 2)
	cfgB.AmbientOffsetC = 8
	c, err := NewFromConfigs([]node.Config{cfgA, cfgB}, DefaultDt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Settle(0.5)
	if c.Nodes[0].Name != "hot0" || c.Nodes[1].Name != "hot1" {
		t.Fatalf("names %q, %q", c.Nodes[0].Name, c.Nodes[1].Name)
	}
	if c.Nodes[1].TrueDieC() <= c.Nodes[0].TrueDieC() {
		t.Errorf("hot-inlet node (%.1fC) not hotter than baseline (%.1fC)",
			c.Nodes[1].TrueDieC(), c.Nodes[0].TrueDieC())
	}
	if _, err := NewFromConfigs(nil, DefaultDt); err == nil {
		t.Error("empty config slice accepted")
	}
}
