package cluster

import (
	"fmt"
	"math"
	"strconv"
	"testing"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/workload"
)

// signature captures the full observable state trajectory of a cluster
// run with the given worker count: every node's bit-exact die
// temperature, sensed temperature, fan duty, frequency and power at
// every step, plus the RunResults of a generator phase and a program
// phase. Floats are rendered as hex bit patterns so "byte-identical"
// means exactly that — no formatting rounding can hide a divergence.
func signature(t *testing.T, workers int) []byte {
	t.Helper()
	c, err := New(8, DefaultDt, 20100131)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetWorkers(workers)
	if workers <= 8 && c.Workers() != max(workers, 1) {
		t.Fatalf("Workers() = %d after SetWorkers(%d)", c.Workers(), workers)
	}
	c.Settle(0)

	// Node-local control in the sharded phase: each hybrid observes and
	// actuates only its own node, so its decisions alter the trajectory
	// (fan duty, frequency) and any cross-worker nondeterminism in the
	// local phase would surface in the signature.
	for i, n := range c.Nodes {
		read := core.SysfsTemp(n.FS, n.Hwmon.TempInput)
		fan, err := core.NewController(core.DefaultConfig(50), read,
			core.ActuatorBinding{Actuator: core.NewFanActuator(
				&core.SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)})
		if err != nil {
			t.Fatal(err)
		}
		act, err := core.NewDVFSActuator(&core.SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			t.Fatal(err)
		}
		dvfs, err := core.NewTDVFS(core.DefaultTDVFSConfig(50), read, act)
		if err != nil {
			t.Fatal(err)
		}
		c.AddNodeController(i, core.NewHybrid(fan, dvfs))
	}

	var sig []byte
	bits := func(v float64) {
		sig = strconv.AppendUint(sig, math.Float64bits(v), 16)
		sig = append(sig, ' ')
	}
	snapshot := ControllerFunc(func(now time.Duration) {
		sig = append(sig, []byte(now.String())...)
		for _, n := range c.Nodes {
			bits(n.TrueDieC())
			bits(n.Sensor.Read())
			bits(n.Fan.Duty())
			bits(n.CPU.FreqGHz())
			bits(n.Power().Total())
			bits(n.Meter.CPUEnergyJ())
		}
		sig = append(sig, '\n')
	})
	c.AddController(snapshot)

	// Phase 1: open-loop generator (stateless, as the parallel contract
	// requires for a shared generator).
	c.RunGenerator(workload.Constant(0.85), 5*time.Second)

	// Phase 2: an SPMD program with skewed frequencies so the barrier
	// logic (the serial phase) is genuinely exercised.
	c.Nodes[3].CPU.SetFreqGHz(1.8)
	c.Nodes[5].CPU.SetFreqGHz(1.0)
	prog := workload.Uniform("sig", 6, workload.Iteration{
		ComputeGC: 1.1, ComputeUtil: 1, MemSec: 0.05, CommSec: 0.06, CommUtil: 0.1,
	})
	res := c.RunProgram(prog, 0)
	sig = fmt.Appendf(sig, "result %s %d %v\n", res.Program, res.ExecTime, res.TimedOut)
	return sig
}

// TestParallelStepByteIdentical is the tentpole invariant: sharded
// parallel stepping produces byte-identical trajectories and results
// for every worker count, including worker counts above the node count
// (clamped) — the pool only changes wall-clock time.
func TestParallelStepByteIdentical(t *testing.T) {
	forceProcs(t, 4) // exercise the real pool even on a single-CPU host
	want := signature(t, 1)
	if len(want) == 0 {
		t.Fatal("empty signature")
	}
	for _, workers := range []int{2, 3, 8, 16} {
		got := signature(t, workers)
		if string(got) != string(want) {
			t.Errorf("workers=%d: trajectory diverged from serial (len %d vs %d)",
				workers, len(got), len(want))
		}
	}
}

// TestParallelRunGeneratorMatchesSerial covers the Step/RunGenerator
// path on its own, without a program phase.
func TestParallelRunGeneratorMatchesSerial(t *testing.T) {
	forceProcs(t, 4)
	run := func(workers int) []float64 {
		c, err := New(5, DefaultDt, 99)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetWorkers(workers)
		c.Settle(0)
		c.RunGenerator(workload.Step{Before: 0.1, After: 1, At: 2 * time.Second}, 6*time.Second)
		var out []float64
		for _, n := range c.Nodes {
			out = append(out, n.TrueDieC(), n.Sensor.Read(), n.Meter.CPUEnergyJ())
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 5} {
		got := run(workers)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: observable %d = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSetWorkersReconfigures checks pool rebuild and serial fallback.
func TestSetWorkersReconfigures(t *testing.T) {
	c, err := New(4, DefaultDt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Workers() != 1 {
		t.Fatalf("fresh cluster has %d workers", c.Workers())
	}
	c.SetWorkers(2)
	c.Step()
	c.SetWorkers(4)
	c.Step()
	if c.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", c.Workers())
	}
	c.SetWorkers(1)
	if c.pool != nil {
		t.Fatal("serial cluster still holds a pool")
	}
	c.Step()
	c.SetWorkers(0) // GOMAXPROCS default, clamped to node count
	if w := c.Workers(); w < 1 || w > 4 {
		t.Fatalf("SetWorkers(0) gave %d workers", w)
	}
	c.Step()
	c.Close()
	c.Close() // idempotent
	c.Step()  // still usable serially
	if c.Clock.Now() < 5*DefaultDt {
		t.Fatalf("clock at %v after five steps", c.Clock.Now())
	}
}

// TestSeedMixRegression: with the old additive derivation
// (seed + i·7919), cluster(seed=0) node 1 and cluster(seed=7919)
// node 0 shared one RNG stream, so their sensors produced identical
// noise forever. The mixed derivation must keep them apart.
func TestSeedMixRegression(t *testing.T) {
	a, err := New(2, DefaultDt, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(2, DefaultDt, 7919)
	if err != nil {
		t.Fatal(err)
	}
	a.Settle(0.5)
	b.Settle(0.5)
	same := true
	for i := 0; i < 20; i++ {
		a.Step()
		b.Step()
		if math.Float64bits(a.Nodes[1].Sensor.Read()) != math.Float64bits(b.Nodes[0].Sensor.Read()) {
			same = false
			break
		}
	}
	if same {
		t.Error("clusters seeded 0 and 7919 share a node noise stream (additive seed derivation)")
	}
}

// TestSeedsStillDeterministic: the mixed derivation must stay a pure
// function of (seed, index).
func TestSeedsStillDeterministic(t *testing.T) {
	a, err := New(3, DefaultDt, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3, DefaultDt, 42)
	if err != nil {
		t.Fatal(err)
	}
	a.Settle(0.5)
	b.Settle(0.5)
	for i := 0; i < 10; i++ {
		a.Step()
		b.Step()
	}
	for i := range a.Nodes {
		if a.Nodes[i].Sensor.Read() != b.Nodes[i].Sensor.Read() {
			t.Fatalf("node %d diverged between identically seeded clusters", i)
		}
	}
}
