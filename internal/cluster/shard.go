package cluster

import (
	"runtime"
	"time"

	"thermctl/internal/metrics"
)

// shardPool is a persistent pool of worker goroutines that advance
// disjoint shards of the cluster's nodes in parallel. Nodes receive a
// fixed contiguous shard assignment when the pool is built; every
// dispatch wakes each worker exactly once, the workers run the step's
// job over their own nodes, and dispatch returns only after all of them
// have finished — a full barrier, so the caller's serial phase
// (barrier release, controllers, rack coupling) never overlaps node
// advancement.
//
// Because a node's step touches only that node's state (the shardsafe
// analyzer enforces the absence of package-level mutable state in the
// model packages), the floating-point work performed for node i is the
// same instruction sequence regardless of which worker runs it or in
// what order the shards complete. Results are therefore byte-identical
// to serial execution for every worker count; the pool only changes
// wall-clock time.
type shardPool struct {
	// shards[w] holds the node indices assigned to worker w. The
	// assignment is contiguous so workers walk adjacent nodes
	// (cache-friendly) and never share an index.
	shards [][]int

	// job is the per-node work of the current dispatch. It is written
	// by dispatch before the start signals and read by the workers
	// after them; the channel operations order the accesses.
	job func(node int)

	// met points at the owning cluster's metric handles; workers time
	// their shards only while met.timed() reports instrumentation, so
	// the uninstrumented hot path takes no wall-clock reads. Written
	// only while the pool is idle (wiring time).
	met *clusterMetrics

	start []chan struct{}
	// done carries each worker's shard wall time for the completed
	// dispatch (zero when timing is off — it then only signals).
	done chan time.Duration
	quit chan struct{}
}

// newShardPool starts workers goroutines over n nodes. workers must be
// in [2, n]; callers clamp before constructing.
func newShardPool(workers, n int) *shardPool {
	p := &shardPool{
		shards: make([][]int, workers),
		start:  make([]chan struct{}, workers),
		done:   make(chan time.Duration, workers),
		quit:   make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		shard := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			shard = append(shard, i)
		}
		p.shards[w] = shard
		p.start[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

// loop is one worker: wait for the step signal, advance the shard,
// report completion.
func (p *shardPool) loop(w int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.start[w]:
			var elapsed time.Duration
			if p.met.timed() {
				begin := metrics.Now()
				for _, i := range p.shards[w] {
					p.job(i)
				}
				elapsed = metrics.Since(begin)
			} else {
				for _, i := range p.shards[w] {
					p.job(i)
				}
			}
			p.done <- elapsed
		}
	}
}

// dispatch runs job(i) for every node index, sharded across the
// workers, and returns after all shards have completed.
func (p *shardPool) dispatch(job func(node int)) {
	p.job = job
	for _, ch := range p.start {
		//thermlint:allow onstepblock -- the worker barrier IS the step: workers drain start immediately and the loop must wait for them
		ch <- struct{}{}
	}
	if !p.met.timed() {
		for range p.start {
			//thermlint:allow onstepblock -- barrier join; every worker sends exactly one done per dispatch
			<-p.done
		}
		p.job = nil
		return
	}
	// Instrumented: record each shard's wall time and, once all have
	// reported, the slowest-minus-fastest spread — the time the fast
	// workers idled at the barrier this step.
	var fastest, slowest time.Duration
	for i := range p.start {
		//thermlint:allow onstepblock -- instrumented barrier join, same contract as the untimed path
		d := <-p.done
		p.met.shardSeconds.Observe(d.Seconds())
		if i == 0 || d < fastest {
			fastest = d
		}
		if d > slowest {
			slowest = d
		}
	}
	p.met.barrierWaitSeconds.Observe((slowest - fastest).Seconds())
	p.job = nil
}

// close releases the worker goroutines. The pool must be idle.
func (p *shardPool) close() {
	close(p.quit)
}

// SetWorkers shards node advancement across w persistent worker
// goroutines. w <= 0 selects GOMAXPROCS; w is clamped to the node
// count; w == 1 (or a single-node cluster) restores plain serial
// stepping. The shard assignment is fixed for the life of the pool.
//
// Within a step the nodes are fully independent — controllers, barrier
// release and rack coupling all run in the serial phase after the
// worker barrier — so traces, sensor readings and RunProgram results
// are byte-identical to serial execution for every worker count.
//
// One contract follows from parallel advancement: a workload.Generator
// attached to more than one node (Cluster.RunGenerator does this) must
// be stateless, as the built-in Constant/Step/Ramp/Jitter generators
// are. A generator with internal state (e.g. CPUBurn with a noise
// stream) shared across nodes would be stepped concurrently; give each
// node its own instance instead.
func (c *Cluster) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.Nodes) {
		w = len(c.Nodes)
	}
	if c.pool != nil {
		c.pool.close()
		c.pool = nil
	}
	c.workers = 1
	if w > 1 {
		c.workers = w
		c.pool = newShardPool(w, len(c.Nodes))
		c.pool.met = &c.met
	}
	c.met.workers.Set(float64(c.workers))
}

// Workers returns the configured worker count (1 when stepping
// serially).
func (c *Cluster) Workers() int { return c.workers }

// Close releases the worker pool's goroutines, if any. The cluster
// remains usable afterwards (it falls back to serial stepping).
func (c *Cluster) Close() {
	if c.pool != nil {
		c.pool.close()
		c.pool = nil
		c.workers = 1
	}
}

// advanceNodes runs job(i) for every node index: on the worker pool
// when one is configured, serially otherwise. It is the only entry
// point to the parallel phase; everything after it in a step is
// single-threaded.
func (c *Cluster) advanceNodes(job func(node int)) {
	if c.pool == nil {
		for i := range c.Nodes {
			job(i)
		}
		return
	}
	c.pool.dispatch(job)
}
