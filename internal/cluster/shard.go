package cluster

import (
	"runtime"
	"sync/atomic"
	"time"

	"thermctl/internal/metrics"
)

// shardPool is a persistent pool of worker goroutines that advance the
// cluster's nodes in parallel by chunked work-stealing. There is no
// fixed shard assignment: every dispatch resets one atomic claim
// counter, and each participant — the dispatching goroutine itself plus
// the pool's helper goroutines — repeatedly claims the next contiguous
// chunk of node indices until the counter passes the node count. A fast
// participant therefore keeps claiming instead of idling at a barrier
// while a slow one finishes a fat shard (the imbalance the
// barrierWaitSeconds metric measures); dispatch still returns only
// after every participant has drained, so the caller's serial phase
// never overlaps node advancement.
//
// Two structural decisions keep the pool from losing to serial:
//
//   - The dispatcher participates. It wakes the helpers and then enters
//     the same claim loop, so the goroutine that would otherwise block
//     at the join does a full share of the work, and a dispatch with
//     little work effectively degenerates to the serial loop.
//   - A single-P runtime steps inline. When GOMAXPROCS is 1 the
//     helpers cannot overlap anything — goroutine handoff would be pure
//     scheduling overhead — so dispatch runs the whole job on the
//     calling goroutine and never touches the channels. This is what
//     makes workers>1 no worse than serial on a one-CPU host.
//
// Because a node's step touches only that node's state (the shardsafe
// analyzer enforces the absence of package-level mutable state in the
// packages the parallel phase executes), the floating-point work
// performed for node i is the same instruction sequence regardless of
// which participant runs it or in what order chunks are claimed.
// Results are therefore byte-identical to serial execution for every
// worker count; the pool only changes wall-clock time.
type shardPool struct {
	// n is the node count; chunk is the claim granularity, sized so the
	// sweep splits into ~8 chunks per participant — fine enough that
	// stealing balances, coarse enough that participants walk adjacent
	// nodes (cache-friendly) and the claim counter stays cold.
	n     int
	chunk int

	// job is the per-node work of the current dispatch. It is written
	// by dispatch before the start signals and read by the helpers
	// after them; the channel operations order the accesses.
	job func(node int)

	// next is the claim counter: the lowest node index not yet claimed.
	// Participants advance it by chunk with an atomic add.
	next atomic.Int64

	// met points at the owning cluster's metric handles; participants
	// time their claimed work only while met.timed() reports
	// instrumentation, so the uninstrumented hot path takes no
	// wall-clock reads. Written only while the pool is idle (wiring
	// time).
	met *clusterMetrics

	// start carries the per-helper wake signals; done carries each
	// helper's wall time for the completed dispatch (zero when timing
	// is off — it then only signals).
	start []chan struct{}
	done  chan time.Duration
	quit  chan struct{}
}

// newShardPool builds a pool with the given parallelism over n nodes.
// workers counts the dispatcher, so workers-1 helper goroutines are
// started. workers must be in [2, n]; callers clamp before
// constructing.
func newShardPool(workers, n int) *shardPool {
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	helpers := workers - 1
	p := &shardPool{
		n:     n,
		chunk: chunk,
		start: make([]chan struct{}, helpers),
		done:  make(chan time.Duration, helpers),
		quit:  make(chan struct{}),
	}
	for w := 0; w < helpers; w++ {
		p.start[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

// loop is one helper: wait for the step signal, claim and run chunks
// until the sweep is drained, report completion.
func (p *shardPool) loop(w int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.start[w]:
			p.done <- p.run()
		}
	}
}

// run claims chunks until the sweep is exhausted and returns the wall
// time spent (zero when instrumentation is off).
func (p *shardPool) run() time.Duration {
	if !p.met.timed() {
		p.claim()
		return 0
	}
	begin := metrics.Now()
	p.claim()
	return metrics.Since(begin)
}

// claim is the stealing loop: grab the next chunk of node indices,
// run the job over it, repeat until the counter passes the node count.
func (p *shardPool) claim() {
	for {
		lo := int(p.next.Add(int64(p.chunk))) - p.chunk
		if lo >= p.n {
			return
		}
		hi := lo + p.chunk
		if hi > p.n {
			hi = p.n
		}
		for i := lo; i < hi; i++ {
			p.job(i)
		}
	}
}

// dispatch runs job(i) for every node index across the participants and
// returns after the sweep is fully drained.
func (p *shardPool) dispatch(job func(node int)) {
	if runtime.GOMAXPROCS(0) == 1 {
		// One P: helpers cannot overlap the dispatcher, so goroutine
		// handoff is pure overhead. Step inline — byte-identical by the
		// independence argument above, and exactly as fast as serial.
		for i := 0; i < p.n; i++ {
			job(i)
		}
		return
	}
	p.job = job
	p.next.Store(0)
	for _, ch := range p.start {
		//thermlint:allow onstepblock -- buffered wake; a helper drains its start channel before the next dispatch can send
		ch <- struct{}{}
	}
	mine := p.run() // the dispatcher is a participant, not a bystander
	if !p.met.timed() {
		for range p.start {
			//thermlint:allow onstepblock -- sweep join; every helper sends exactly one done per dispatch
			<-p.done
		}
		p.job = nil
		return
	}
	// Instrumented: record each participant's claimed-work wall time
	// and, once all have reported, the slowest-minus-fastest spread —
	// the residual imbalance stealing could not smooth this step.
	fastest, slowest := mine, mine
	p.met.shardSeconds.Observe(mine.Seconds())
	for range p.start {
		//thermlint:allow onstepblock -- instrumented sweep join, same contract as the untimed path
		d := <-p.done
		p.met.shardSeconds.Observe(d.Seconds())
		if d < fastest {
			fastest = d
		}
		if d > slowest {
			slowest = d
		}
	}
	p.met.barrierWaitSeconds.Observe((slowest - fastest).Seconds())
	p.job = nil
}

// close releases the helper goroutines. The pool must be idle.
func (p *shardPool) close() {
	close(p.quit)
}

// SetWorkers spreads node advancement — and, when node-local
// controllers are attached (AddNodeController), the per-node control
// phase — across w-way chunked work-stealing: the stepping goroutine
// plus w-1 persistent helpers claim contiguous chunks of node indices
// from an atomic counter until each sweep drains. w <= 0 selects
// GOMAXPROCS; w is clamped to the node count; w == 1 (or a single-node
// cluster) restores plain serial stepping.
//
// Within a step the parallel phases touch only per-node state —
// cross-node work (barrier release, rack coupling, fault-plane replay,
// global controllers) runs in the serial sub-phases between them — so
// traces, sensor readings and RunProgram results are byte-identical to
// serial execution for every worker count.
//
// One contract follows from parallel advancement: a workload.Generator
// attached to more than one node (Cluster.RunGenerator does this) must
// be stateless, as the built-in Constant/Step/Ramp/Jitter generators
// are. A generator with internal state (e.g. CPUBurn with a noise
// stream) shared across nodes would be stepped concurrently; give each
// node its own instance instead — RunGenerators takes one generator
// per node, and workload.Spec.Build derives per-node instances from a
// family seed. The same locality contract applies to controllers
// attached with AddNodeController.
func (c *Cluster) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.Nodes) {
		w = len(c.Nodes)
	}
	if c.pool != nil {
		c.pool.close()
		c.pool = nil
	}
	c.workers = 1
	if w > 1 {
		c.workers = w
		c.pool = newShardPool(w, len(c.Nodes))
		c.pool.met = &c.met
	}
	c.met.workers.Set(float64(c.workers))
}

// Workers returns the configured worker count (1 when stepping
// serially).
func (c *Cluster) Workers() int { return c.workers }

// Close releases the worker pool's goroutines, if any. The cluster
// remains usable afterwards (it falls back to serial stepping).
func (c *Cluster) Close() {
	if c.pool != nil {
		c.pool.close()
		c.pool = nil
		c.workers = 1
	}
}

// advanceNodes runs job(i) for every node index: on the worker pool
// when one is configured, serially otherwise. It is the entry point to
// the parallel sub-phases of a step; the code between dispatches is
// single-threaded.
func (c *Cluster) advanceNodes(job func(node int)) {
	if c.pool == nil {
		for i := range c.Nodes {
			job(i)
		}
		return
	}
	c.pool.dispatch(job)
}
