package cluster

import "thermctl/internal/metrics"

// clusterMetrics holds the cluster's optional metric handles. Every
// handle is nil-safe, so an uninstrumented cluster pays one branch per
// update site. Wall-clock timing is additionally gated on timed(): the
// simulation itself never reads the wall clock (the determinism lint
// enforces that), so observability timestamps go through metrics.Now /
// metrics.Since and are taken only when a registry asked for them.
type clusterMetrics struct {
	// steps counts simulation steps (one tickControllers per step, in
	// both Step and RunProgram).
	steps *metrics.Counter
	// stepSeconds is the wall-clock latency of one Cluster.Step.
	stepSeconds *metrics.Histogram
	// shardSeconds is the wall-clock time one worker spent advancing
	// its shard within a step (parallel stepping only).
	shardSeconds *metrics.Histogram
	// barrierWaitSeconds is the spread between the slowest and fastest
	// shard of a step — the time fast workers idled at the barrier.
	barrierWaitSeconds *metrics.Histogram
	// workers is the configured worker count.
	workers *metrics.Gauge
}

// timed reports whether wall-clock observation is enabled. Nil-safe so
// the shard pool can hold a pointer unconditionally.
func (m *clusterMetrics) timed() bool {
	return m != nil && m.stepSeconds != nil
}

// InstrumentMetrics registers the cluster's step/shard metrics on reg
// with the given constant labels and attaches them. Wiring-time only —
// call before stepping begins, never from Step-reachable code.
func (c *Cluster) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	c.met.steps = reg.NewCounter("thermctl_cluster_steps_total",
		"simulation steps advanced", labels...)
	c.met.stepSeconds = reg.NewHistogram("thermctl_cluster_step_seconds",
		"wall-clock latency of one cluster step", nil, labels...)
	c.met.shardSeconds = reg.NewHistogram("thermctl_cluster_shard_seconds",
		"wall-clock time of one worker shard within a step", nil, labels...)
	c.met.barrierWaitSeconds = reg.NewHistogram("thermctl_cluster_barrier_wait_seconds",
		"wall-clock spread between the slowest and fastest shard of a step", nil, labels...)
	c.met.workers = reg.NewGauge("thermctl_cluster_workers",
		"configured worker count", labels...)
	c.met.workers.Set(float64(c.workers))
	if c.pool != nil {
		c.pool.met = &c.met
	}
}
