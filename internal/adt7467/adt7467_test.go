package adt7467

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"thermctl/internal/fan"
	"thermctl/internal/i2c"
	"thermctl/internal/sensor"
)

// rig builds a chip+driver pair around a controllable temperature.
func rig(t *testing.T) (set func(float64), f *fan.Fan, chip *Chip, drv *Driver) {
	t.Helper()
	temp := 40.0
	src := sensor.SourceFunc(func() float64 { return temp })
	sens := sensor.New(sensor.Config{}, src, nil) // noiseless for exact assertions
	f = fan.New(fan.Default(), 10)
	chip = NewChip(sens, f)
	bus := i2c.NewBus()
	if err := bus.Attach(DefaultAddr, chip); err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(bus, DefaultAddr)
	if err != nil {
		t.Fatal(err)
	}
	return func(v float64) { temp = v }, f, chip, drv
}

func TestProbeVerifiesIDs(t *testing.T) {
	bus := i2c.NewBus()
	_ = bus.Attach(0x2E, i2c.NewRegisterFile()) // wrong chip: zero IDs
	if _, err := NewDriver(bus, 0x2E); err == nil {
		t.Error("probe accepted a chip with wrong IDs")
	}
	if _, err := NewDriver(bus, 0x4C); err == nil {
		t.Error("probe accepted an empty address")
	}
}

func TestTempReadback(t *testing.T) {
	set, _, _, drv := rig(t)
	set(51.4)
	got, err := drv.TempC()
	if err != nil {
		t.Fatal(err)
	}
	if got != 51 {
		t.Errorf("TempC = %v, want 51 (whole-degree register)", got)
	}
	set(-10)
	if got, _ := drv.TempC(); got != -10 {
		t.Errorf("negative TempC = %v, want -10 (two's complement)", got)
	}
}

func TestAutoModeFollowsStaticCurve(t *testing.T) {
	set, f, chip, _ := rig(t)

	set(30) // below Tmin=38
	chip.Step(time.Second)
	if math.Abs(f.Duty()-10) > 0.5 {
		t.Errorf("duty below Tmin = %v, want PWMmin 10", f.Duty())
	}

	set(60) // halfway: 38 + 22 of 44 → 10 + 0.5·90 = 55
	chip.Step(time.Second)
	if math.Abs(f.Duty()-55) > 1 {
		t.Errorf("duty at 60 °C = %v, want ≈55", f.Duty())
	}

	set(90) // above Tmax=82
	chip.Step(time.Second)
	if f.Duty() != 100 {
		t.Errorf("duty above Tmax = %v, want 100", f.Duty())
	}
}

func TestManualModeIgnoresTemperature(t *testing.T) {
	set, f, chip, drv := rig(t)
	if err := drv.SetManual(true); err != nil {
		t.Fatal(err)
	}
	if err := drv.SetDuty(42); err != nil {
		t.Fatal(err)
	}
	set(95)
	chip.Step(time.Second)
	if math.Abs(f.Duty()-42) > 0.5 {
		t.Errorf("manual duty = %v after hot reading, want 42", f.Duty())
	}
}

func TestManualWriteInAutoModeDoesNotMoveFan(t *testing.T) {
	set, f, chip, drv := rig(t)
	set(30)
	chip.Step(time.Second) // auto: 10%
	_ = drv.SetDuty(90)    // write while still in auto mode
	chip.Step(time.Second)
	if f.Duty() > 11 {
		t.Errorf("duty write in auto mode moved the fan to %v", f.Duty())
	}
}

func TestDutyReadback(t *testing.T) {
	_, _, chip, drv := rig(t)
	_ = drv.SetManual(true)
	_ = drv.SetDuty(75)
	chip.Step(time.Second)
	got, err := drv.Duty()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-75) > 0.5 {
		t.Errorf("duty readback = %v, want ≈75 (8-bit quantized)", got)
	}
}

func TestTachRoundTrip(t *testing.T) {
	_, f, chip, drv := rig(t)
	_ = drv.SetManual(true)
	_ = drv.SetDuty(100)
	for i := 0; i < 40; i++ {
		f.Step(250 * time.Millisecond)
	}
	chip.Step(time.Second)
	rpm, err := drv.FanRPM()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rpm-4300) > 50 {
		t.Errorf("tach RPM = %v, want ≈4300", rpm)
	}
}

func TestStalledFanReadsZero(t *testing.T) {
	_, f, chip, drv := rig(t)
	_ = drv.SetManual(true)
	_ = drv.SetDuty(0)
	for i := 0; i < 200; i++ {
		f.Step(250 * time.Millisecond)
	}
	chip.Step(time.Second)
	rpm, err := drv.FanRPM()
	if err != nil {
		t.Fatal(err)
	}
	if rpm != 0 {
		t.Errorf("stalled fan RPM = %v, want 0", rpm)
	}
}

func TestConfigureAuto(t *testing.T) {
	set, f, chip, drv := rig(t)
	if err := drv.ConfigureAuto(45, 30, 20); err != nil {
		t.Fatal(err)
	}
	set(44)
	chip.Step(time.Second)
	if math.Abs(f.Duty()-20) > 1 {
		t.Errorf("duty below new Tmin = %v, want 20", f.Duty())
	}
	set(60) // (60-45)/30 = 0.5 → 20 + 40 = 60
	chip.Step(time.Second)
	if math.Abs(f.Duty()-60) > 1 {
		t.Errorf("duty at 60 °C with new curve = %v, want ≈60", f.Duty())
	}
}

func TestMeasurementRegistersReadOnly(t *testing.T) {
	_, _, chip, _ := rig(t)
	for _, reg := range []uint8{RegRemote1Temp, RegTach1Low, RegTach1High, RegDeviceID, RegCompanyID} {
		if err := chip.WriteReg(reg, 0); err == nil {
			t.Errorf("write to measurement register %#x succeeded", reg)
		}
	}
}

func TestStaticCurveProperties(t *testing.T) {
	// The curve is monotone non-decreasing in temperature and bounded
	// by [minDuty, 100].
	if err := quick.Check(func(a, b uint8) bool {
		ta, tb := float64(a)/2, float64(b)/2 // 0..127.5 °C
		if ta > tb {
			ta, tb = tb, ta
		}
		da := StaticCurve(ta, 38, 44, 10)
		db := StaticCurve(tb, 38, 44, 10)
		return da <= db+1e-9 && da >= 10 && db <= 100
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticCurveDegenerateRange(t *testing.T) {
	if got := StaticCurve(50, 38, 0, 10); got != 100 {
		t.Errorf("zero Trange above Tmin = %v, want 100 (step function)", got)
	}
	if got := StaticCurve(30, 38, 0, 10); got != 10 {
		t.Errorf("zero Trange below Tmin = %v, want minDuty", got)
	}
}

func TestTempAlarmLatchesAndClears(t *testing.T) {
	set, _, chip, drv := rig(t)
	if err := drv.SetTempLimits(10, 60); err != nil {
		t.Fatal(err)
	}
	set(45)
	chip.Step(time.Second)
	if a, err := drv.TempAlarm(); err != nil || a {
		t.Fatalf("in-limits alarm = %v, %v", a, err)
	}
	// Violate the high limit for one cycle.
	set(65)
	chip.Step(time.Second)
	set(45)
	chip.Step(time.Second)
	// The latch holds the past violation even though the condition is
	// gone...
	a, err := drv.TempAlarm()
	if err != nil {
		t.Fatal(err)
	}
	if !a {
		t.Error("alarm did not latch the past violation")
	}
	// ...and the read cleared it.
	if a, _ := drv.TempAlarm(); a {
		t.Error("alarm still set after read with condition gone")
	}
}

func TestTempAlarmPersistsWhileViolating(t *testing.T) {
	set, _, chip, drv := rig(t)
	if err := drv.SetTempLimits(10, 60); err != nil {
		t.Fatal(err)
	}
	set(70)
	chip.Step(time.Second)
	for i := 0; i < 3; i++ {
		if a, _ := drv.TempAlarm(); !a {
			t.Fatalf("alarm cleared on read %d while still violating", i)
		}
		chip.Step(time.Second)
	}
}

func TestLowLimitAlarm(t *testing.T) {
	set, _, chip, drv := rig(t)
	if err := drv.SetTempLimits(20, 80); err != nil {
		t.Fatal(err)
	}
	set(5)
	chip.Step(time.Second)
	if a, _ := drv.TempAlarm(); !a {
		t.Error("low-limit violation not flagged")
	}
}

func TestDutyRegisterQuantization(t *testing.T) {
	if dutyToReg(0) != 0 || dutyToReg(100) != 0xFF || dutyToReg(-5) != 0 || dutyToReg(200) != 0xFF {
		t.Error("dutyToReg bounds wrong")
	}
	for d := 0.0; d <= 100; d += 0.5 {
		rt := regToDuty(dutyToReg(d))
		if math.Abs(rt-d) > 0.25 {
			t.Fatalf("duty %v round-trips to %v (error > half an LSB)", d, rt)
		}
	}
}

func BenchmarkChipStepAuto(b *testing.B) {
	src := sensor.SourceFunc(func() float64 { return 55 })
	sens := sensor.New(sensor.Config{}, src, nil)
	f := fan.New(fan.Default(), 10)
	chip := NewChip(sens, f)
	for i := 0; i < b.N; i++ {
		chip.Step(250 * time.Millisecond)
	}
}
