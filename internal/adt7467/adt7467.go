// Package adt7467 models the Analog Devices ADT7467 dBCOOL remote
// thermal monitor and fan controller — the chip the paper attached to
// each node over i2c — together with a host-side driver.
//
// Two behaviours of the real part matter for the reproduction:
//
//   - Automatic fan speed control: the chip itself maps measured
//     temperature to PWM duty through the static Tmin/Trange curve of the
//     datasheet (the paper's Figure 1). This is the "traditional fan
//     control" baseline: duty = PWMmin below Tmin, rising linearly to
//     100% at Tmin+Trange.
//   - Manual mode: the host (or BMC) writes the PWM current-duty register
//     directly. The paper's dynamic fan controller runs the chip in this
//     mode.
//
// Register addresses follow the ADT7467 datasheet for the subset we
// model: remote-1 temperature (0x25), PWM1 current duty (0x30), TACH1
// (0x28/0x29), PWM1 configuration (0x5C), Tmin (0x67), Trange (0x5F),
// PWM1 minimum duty (0x64), device/company ID (0x3D/0x3E).
package adt7467

import (
	"fmt"
	"math"
	"sync"
	"time"

	"thermctl/internal/fan"
	"thermctl/internal/i2c"
	"thermctl/internal/metrics"
	"thermctl/internal/sensor"
)

// Register addresses (datasheet names in comments).
const (
	RegRemote1Temp = 0x25 // remote 1 temperature reading
	RegTach1Low    = 0x28 // TACH1 low byte
	RegTach1High   = 0x29 // TACH1 high byte
	RegPWM1Duty    = 0x30 // PWM1 current duty cycle (0x00..0xFF)
	RegIntStatus1  = 0x41 // interrupt status 1 (bit 4: remote 1 out of limits)
	RegR1LowLimit  = 0x4E // remote 1 low temperature limit
	RegR1HighLimit = 0x4F // remote 1 high temperature limit
	RegDeviceID    = 0x3D // device ID, 0x68
	RegCompanyID   = 0x3E // company ID, 0x41 (Analog Devices)
	RegPWM1Config  = 0x5C // PWM1 configuration (behaviour bits 7:5)
	RegPWM1Trange  = 0x5F // PWM1 Trange / frequency
	RegPWM1MinDuty = 0x64 // PWM1 minimum duty cycle
	RegTmin1       = 0x67 // remote 1 Tmin
)

// IntR1T is the RegIntStatus1 bit flagging a remote-1 temperature
// limit violation.
const IntR1T = 0x10

// PWM1Config behaviour values (bits 7:5 of RegPWM1Config).
const (
	BehaviourRemote1 = 0x00 // automatic, controlled by remote 1 channel
	BehaviourManual  = 0xE0 // manual mode
)

// DeviceID and CompanyID are the identification values of the real part.
const (
	DeviceID  = 0x68
	CompanyID = 0x41
)

// DefaultAddr is the chip's usual 7-bit i2c address.
const DefaultAddr = 0x2E

// TachConstant converts between RPM and TACH counts:
// counts = TachConstant / RPM (datasheet: 90 kHz clock × 60 s).
const TachConstant = 5400000

// Chip is the device model. It reads die temperature through a sensor,
// drives a fan, and exposes the datasheet register map on the i2c bus.
// Safe for concurrent use: mu serializes the monitoring cycle (Step,
// driven by the simulation loop) with bus transactions (ReadReg and
// WriteReg, reached through the host's and the BMC's driver handles on
// the shared i2c bus). mu is always acquired after the bus lock and
// before the fan's, so the order bus → chip → fan is acyclic.
type Chip struct {
	mu   sync.Mutex
	rf   *i2c.RegisterFile
	temp *sensor.Sensor
	fan  *fan.Fan

	// alarm latching state: cond is the live limit violation, latched
	// holds until read (datasheet: status bits clear on read once the
	// condition has gone). Guarded by mu.
	alarmCond    bool
	alarmLatched bool

	// regWrites is the optional nil-safe metric counting register write
	// transactions on the bus (see InstrumentMetrics).
	regWrites *metrics.Counter
}

// NewChip wires a chip to its temperature sensor and fan, initialized to
// the paper's platform defaults: automatic mode with Tmin=38 °C,
// Trange≈44 °C (Tmax 82 °C) and 10% minimum duty.
func NewChip(temp *sensor.Sensor, f *fan.Fan) *Chip {
	c := &Chip{rf: i2c.NewRegisterFile(), temp: temp, fan: f}
	c.rf.Set(RegDeviceID, DeviceID)
	c.rf.Set(RegCompanyID, CompanyID)
	c.rf.MarkReadOnly(RegDeviceID)
	c.rf.MarkReadOnly(RegCompanyID)
	c.rf.MarkReadOnly(RegRemote1Temp)
	c.rf.MarkReadOnly(RegTach1Low)
	c.rf.MarkReadOnly(RegTach1High)

	c.rf.Set(RegPWM1Config, BehaviourRemote1)
	c.rf.Set(RegTmin1, 38)
	c.rf.Set(RegPWM1Trange, 44)
	c.rf.Set(RegPWM1MinDuty, dutyToReg(10))
	c.rf.Set(RegR1LowLimit, 0)                // 0 °C
	c.rf.Set(RegR1HighLimit, uint8(int8(81))) // default high limit
	c.rf.MarkReadOnly(RegIntStatus1)
	// Reading the status register returns the latched bits, then
	// re-arms the latch from the live condition.
	c.rf.OnRead(RegIntStatus1, func() uint8 {
		var v uint8
		if c.alarmLatched {
			v = IntR1T
		}
		c.alarmLatched = c.alarmCond
		return v
	})

	// Measurement registers refresh on read, like the real part's
	// round-robin monitoring loop. A failed conversion (sensor dropout
	// fault) leaves the register holding its last value, as real
	// silicon's measurement latch does.
	c.rf.OnRead(RegRemote1Temp, func() uint8 {
		t, err := c.temp.ReadChecked()
		if err != nil {
			return c.rf.Get(RegRemote1Temp)
		}
		if t < -128 {
			t = -128
		}
		if t > 127 {
			t = 127
		}
		return uint8(int8(math.Round(t)))
	})
	c.rf.OnRead(RegTach1Low, func() uint8 { return uint8(c.tachCounts()) })
	c.rf.OnRead(RegTach1High, func() uint8 { return uint8(c.tachCounts() >> 8) })

	// Manual duty writes take effect immediately.
	c.rf.OnWrite(RegPWM1Duty, func(v uint8) {
		if c.manual() {
			c.fan.SetDuty(regToDuty(v))
		}
	})
	return c
}

func (c *Chip) manual() bool {
	return c.rf.Get(RegPWM1Config)&0xE0 == BehaviourManual
}

func (c *Chip) tachCounts() uint16 {
	rpm := c.fan.TachRPM()
	if rpm <= 0 {
		return 0xFFFF // stalled fan reads all-ones
	}
	counts := TachConstant / rpm
	if counts > 0xFFFE {
		return 0xFFFF
	}
	return uint16(counts)
}

// ReadReg implements i2c.Device.
func (c *Chip) ReadReg(reg uint8) (uint8, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rf.ReadReg(reg)
}

// WriteReg implements i2c.Device.
func (c *Chip) WriteReg(reg, val uint8) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.regWrites.Inc()
	return c.rf.WriteReg(reg, val)
}

// InstrumentMetrics registers a register-write counter on reg with the
// given constant labels and attaches it: every bus write transaction
// reaching the chip increments it, whatever the register. Wiring-time
// only — registration must not happen in Step-reachable code.
func (c *Chip) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	ctr := reg.NewCounter("thermctl_adt7467_register_writes_total",
		"i2c register write transactions handled by the chip", labels...)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.regWrites = ctr
}

// Step runs one monitoring cycle. In automatic mode the chip re-evaluates
// the static temperature→duty map and drives the fan; in manual mode the
// fan keeps the host-commanded duty. The current duty is always
// reflected into RegPWM1Duty so the host can read back what the fan is
// doing, as on real silicon.
func (c *Chip) Step(time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A failed conversion (sensor dropout fault) freezes the monitoring
	// cycle: the chip holds the last commanded duty and the last alarm
	// condition rather than acting on garbage.
	if !c.manual() {
		if t, err := c.temp.ReadChecked(); err == nil {
			tmin := float64(int8(c.rf.Get(RegTmin1)))
			trange := float64(c.rf.Get(RegPWM1Trange))
			minDuty := regToDuty(c.rf.Get(RegPWM1MinDuty))
			c.fan.SetDuty(StaticCurve(t, tmin, trange, minDuty))
		}
	}
	c.rf.Set(RegPWM1Duty, dutyToReg(c.fan.Duty()))

	// Limit monitoring: latch the out-of-limits bit.
	if t, err := c.temp.ReadChecked(); err == nil {
		lo := float64(int8(c.rf.Get(RegR1LowLimit)))
		hi := float64(int8(c.rf.Get(RegR1HighLimit)))
		c.alarmCond = t < lo || t > hi
		if c.alarmCond {
			c.alarmLatched = true
		}
	}
}

// StaticCurve is the datasheet's automatic fan control law — the paper's
// Figure 1: minDuty below tmin, linear up to 100% at tmin+trange.
//
//thermlint:unit tempC=°C
//thermlint:unit tminC=°C
//thermlint:unit minDutyPercent=percent
//thermlint:unit percent
func StaticCurve(tempC, tminC, trangeC, minDutyPercent float64) float64 {
	if tempC <= tminC {
		return minDutyPercent
	}
	if trangeC <= 0 || tempC >= tminC+trangeC {
		return 100
	}
	frac := (tempC - tminC) / trangeC
	return minDutyPercent + frac*(100-minDutyPercent)
}

// dutyToReg converts a duty percentage to the chip's 8-bit PWM count.
//
//thermlint:unit percent=percent
//thermlint:unit duty8
func dutyToReg(percent float64) uint8 {
	if percent <= 0 {
		return 0
	}
	if percent >= 100 {
		return 0xFF
	}
	return uint8(math.Round(percent * 255 / 100))
}

// regToDuty converts the chip's 8-bit PWM count back to percent.
//
//thermlint:unit v=duty8
//thermlint:unit percent
func regToDuty(v uint8) float64 { return float64(v) * 100 / 255 }

// Driver is the host-side driver, speaking SMBus transactions to the
// chip exactly as the paper's Linux driver does.
type Driver struct {
	bus  *i2c.Bus
	addr uint8
}

// NewDriver probes the bus at addr and verifies the device and company
// IDs before returning a driver.
func NewDriver(bus *i2c.Bus, addr uint8) (*Driver, error) {
	id, err := bus.ReadByteData(addr, RegDeviceID)
	if err != nil {
		return nil, fmt.Errorf("adt7467: probe: %w", err)
	}
	cid, err := bus.ReadByteData(addr, RegCompanyID)
	if err != nil {
		return nil, fmt.Errorf("adt7467: probe: %w", err)
	}
	if id != DeviceID || cid != CompanyID {
		return nil, fmt.Errorf("adt7467: unexpected ID %#x/%#x at %#x", id, cid, addr)
	}
	return &Driver{bus: bus, addr: addr}, nil
}

// SetManual switches PWM1 between manual (host-controlled) and automatic
// (chip-controlled) mode.
func (d *Driver) SetManual(manual bool) error {
	v := uint8(BehaviourRemote1)
	if manual {
		v = BehaviourManual
	}
	return d.bus.WriteByteData(d.addr, RegPWM1Config, v)
}

// SetDuty writes the PWM1 duty in percent. The chip must be in manual
// mode for the write to move the fan.
//
//thermlint:unit percent=percent
func (d *Driver) SetDuty(percent float64) error {
	return d.bus.WriteByteData(d.addr, RegPWM1Duty, dutyToReg(percent))
}

// Duty reads back the PWM1 duty in percent.
//
//thermlint:unit percent
func (d *Driver) Duty() (float64, error) {
	v, err := d.bus.ReadByteData(d.addr, RegPWM1Duty)
	if err != nil {
		return 0, err
	}
	return regToDuty(v), nil
}

// TempC reads the remote-1 temperature in whole °C.
//
//thermlint:unit °C
func (d *Driver) TempC() (float64, error) {
	v, err := d.bus.ReadByteData(d.addr, RegRemote1Temp)
	if err != nil {
		return 0, err
	}
	return float64(int8(v)), nil
}

// FanRPM reads TACH1 and converts counts to RPM. A stalled fan reads 0.
func (d *Driver) FanRPM() (float64, error) {
	counts, err := d.bus.ReadWordData(d.addr, RegTach1Low)
	if err != nil {
		return 0, err
	}
	if counts == 0 || counts == 0xFFFF {
		return 0, nil
	}
	return TachConstant / float64(counts), nil
}

// Manual reads back whether PWM1 is in manual (host-controlled) mode.
func (d *Driver) Manual() (bool, error) {
	v, err := d.bus.ReadByteData(d.addr, RegPWM1Config)
	if err != nil {
		return false, err
	}
	return v&0xE0 == BehaviourManual, nil
}

// SetTempLimits programs the remote-1 low/high temperature limits in
// whole °C.
func (d *Driver) SetTempLimits(loC, hiC float64) error {
	if err := d.bus.WriteByteData(d.addr, RegR1LowLimit, uint8(int8(math.Round(loC)))); err != nil {
		return err
	}
	return d.bus.WriteByteData(d.addr, RegR1HighLimit, uint8(int8(math.Round(hiC))))
}

// TempLimits reads back the remote-1 low/high limits in °C.
func (d *Driver) TempLimits() (loC, hiC float64, err error) {
	lo, err := d.bus.ReadByteData(d.addr, RegR1LowLimit)
	if err != nil {
		return 0, 0, err
	}
	hi, err := d.bus.ReadByteData(d.addr, RegR1HighLimit)
	if err != nil {
		return 0, 0, err
	}
	return float64(int8(lo)), float64(int8(hi)), nil
}

// TempAlarm reads (and thereby re-arms) the interrupt status register
// and reports whether the remote-1 temperature violated its limits
// since the last read.
func (d *Driver) TempAlarm() (bool, error) {
	v, err := d.bus.ReadByteData(d.addr, RegIntStatus1)
	if err != nil {
		return false, err
	}
	return v&IntR1T != 0, nil
}

// ConfigureAuto programs the automatic-mode curve: Tmin, Trange and the
// minimum duty, then enables automatic mode.
func (d *Driver) ConfigureAuto(tminC, trangeC, minDutyPercent float64) error {
	if err := d.bus.WriteByteData(d.addr, RegTmin1, uint8(int8(math.Round(tminC)))); err != nil {
		return err
	}
	if err := d.bus.WriteByteData(d.addr, RegPWM1Trange, uint8(math.Round(trangeC))); err != nil {
		return err
	}
	if err := d.bus.WriteByteData(d.addr, RegPWM1MinDuty, dutyToReg(minDutyPercent)); err != nil {
		return err
	}
	return d.SetManual(false)
}
