// The declarative workload plane: Spec is the JSON description of an
// open-loop workload, and Spec.Build instantiates a Generator for one
// node from a family seed. A scenario (internal/config) carries one
// Spec per fleet — or one per node group — and the factory derives an
// independent per-node instance with rng.Mix(seed, node), so stateful
// generators (CPUBurn's noise stream, per-node random demand) never
// share state across nodes. Sharing was the bug in the pre-plane
// wiring: one CPUBurn attached to every node meant one rng stream
// advanced concurrently by the sharded step phase.
//
// The vocabulary follows the tsload/salsa-rex scenario idiom
// (SNIPPETS.md): `param -rg lcg -rv uniform` is Kind "random",
// `steps 10 12 14 …` is Kind "steps", and scenario inheritance
// (`create -c base derived`) lives one layer up, in the config
// package's "extends" composition.
package workload

import (
	"fmt"
	"time"

	"thermctl/internal/rng"
)

// Spec kinds, in gallery order.
const (
	KindConstant   = "constant"   // fixed utilization
	KindCPUBurn    = "cpuburn"    // the paper's cpu-burn stressor (per-node noise stream)
	KindStep       = "step"       // Figure 2 "sudden": Before → After at At
	KindRamp       = "ramp"       // Figure 2 "gradual": From → To over Over
	KindJitter     = "jitter"     // Figure 2 "jitter": Low/High square wave
	KindTrace      = "trace"      // recorded samples, interpolated
	KindRandom     = "random"     // seeded random demand (uniform/exponential/heavytail)
	KindSteps      = "steps"      // tsload stepped-load program
	KindDiurnal    = "diurnal"    // day/night sinusoid
	KindFlashCrowd = "flashcrowd" // spike + exponential tail
	KindSequence   = "sequence"   // segments played back to back
	KindFig2       = "fig2"       // the paper's Figure 2 composite profile
)

// Spec declares one open-loop workload. Kind selects the generator;
// the other fields parameterize it (each kind reads only its own — see
// the field comments). Durations are JSON integers in milliseconds,
// like the rest of the scenario layer.
type Spec struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`

	// Util is the constant utilization (kind "constant").
	Util float64 `json:"util,omitempty"`

	// Before/After/AtMS shape a sudden step (kind "step"); AtMS also
	// places a flash crowd's arrival (kind "flashcrowd").
	Before float64 `json:"before,omitempty"`
	After  float64 `json:"after,omitempty"`
	AtMS   int     `json:"at_ms,omitempty"`

	// From/To/StartMS/OverMS shape a gradual ramp (kind "ramp").
	From    float64 `json:"from,omitempty"`
	To      float64 `json:"to,omitempty"`
	StartMS int     `json:"start_ms,omitempty"`
	OverMS  int     `json:"over_ms,omitempty"`

	// Low/High bound a jitter square wave (kind "jitter"). PeriodMS is
	// the jitter period, the trace sample spacing (kind "trace") and
	// the diurnal cycle length (kind "diurnal").
	Low      float64 `json:"low,omitempty"`
	High     float64 `json:"high,omitempty"`
	PeriodMS int     `json:"period_ms,omitempty"`

	// Samples and Loop replay a recorded trace (kind "trace"); Loop
	// also restarts a stepped-load program (kind "steps").
	Samples []float64 `json:"samples,omitempty"`
	Loop    bool      `json:"loop,omitempty"`

	// Dist/Min/Max/Mean/Alpha/HoldMS parameterize seeded random demand
	// (kind "random"): dist is uniform (default), exponential or
	// heavytail; Min/Max bound the draw ([0.05, 0.95] default); Mean is
	// the exponential mean; Alpha the Pareto shape; HoldMS the resample
	// period (1000 ms default). HoldMS is also the per-level duration
	// of a stepped-load program (kind "steps").
	Dist   string  `json:"dist,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
	Alpha  float64 `json:"alpha,omitempty"`
	HoldMS int     `json:"hold_ms,omitempty"`

	// Levels is the stepped-load utilization program (kind "steps"),
	// the tsload `steps 10 12 14 …` line with values in [0, 1].
	Levels []float64 `json:"levels,omitempty"`

	// Base/Amplitude/PhaseMS shape a diurnal cycle (kind "diurnal");
	// Base is also a flash crowd's quiet baseline and Peak its crest,
	// with RiseMS the onset ramp and DecayMS the tail time constant
	// (kind "flashcrowd").
	Base      float64 `json:"base,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	PhaseMS   int     `json:"phase_ms,omitempty"`
	Peak      float64 `json:"peak,omitempty"`
	RiseMS    int     `json:"rise_ms,omitempty"`
	DecayMS   int     `json:"decay_ms,omitempty"`

	// Segments compose kinds back to back (kind "sequence"): each
	// segment runs for its for_ms, the last one forever.
	Segments []SegmentSpec `json:"segments,omitempty"`
}

// SegmentSpec is one timed segment of a sequence: a full Spec plus how
// long it plays.
type SegmentSpec struct {
	Spec
	// ForMS is the segment's duration in milliseconds.
	ForMS int `json:"for_ms"`
}

// maxSequenceDepth bounds nested sequences; deeper nesting is almost
// certainly a mistake in a hand-written scenario.
const maxSequenceDepth = 4

// Validate reports the first invalid field. It is deep: sequence
// segments validate recursively.
func (s *Spec) Validate() error {
	return s.validate(0)
}

func (s *Spec) validate(depth int) error {
	switch s.Kind {
	case KindConstant:
		if s.Util < 0 || s.Util > 1 {
			return fmt.Errorf("workload: constant util %v outside [0, 1]", s.Util)
		}
	case KindCPUBurn, KindFig2:
		// no parameters
	case KindStep:
		if s.AtMS < 0 {
			return fmt.Errorf("workload: step at_ms %d: must be >= 0", s.AtMS)
		}
	case KindRamp:
		if s.StartMS < 0 || s.OverMS < 0 {
			return fmt.Errorf("workload: ramp start_ms/over_ms must be >= 0")
		}
	case KindJitter:
		if s.PeriodMS <= 0 {
			return fmt.Errorf("workload: jitter period_ms %d: need a positive period", s.PeriodMS)
		}
	case KindTrace:
		if len(s.Samples) == 0 {
			return fmt.Errorf("workload: trace needs at least one sample")
		}
		if s.PeriodMS <= 0 {
			return fmt.Errorf("workload: trace period_ms %d: need a positive sample spacing", s.PeriodMS)
		}
	case KindRandom:
		switch s.Dist {
		case "", "uniform", "exponential", "heavytail":
		default:
			return fmt.Errorf("workload: random dist %q: want uniform, exponential or heavytail", s.Dist)
		}
		if s.HoldMS < 0 {
			return fmt.Errorf("workload: random hold_ms %d: must be >= 0", s.HoldMS)
		}
		if s.Max != 0 && s.Max < s.Min {
			return fmt.Errorf("workload: random max %v below min %v", s.Max, s.Min)
		}
	case KindSteps:
		if len(s.Levels) == 0 {
			return fmt.Errorf("workload: steps needs at least one level")
		}
		if s.HoldMS <= 0 {
			return fmt.Errorf("workload: steps hold_ms %d: need a positive per-level duration", s.HoldMS)
		}
	case KindDiurnal:
		if s.PeriodMS <= 0 {
			return fmt.Errorf("workload: diurnal period_ms %d: need a positive cycle length", s.PeriodMS)
		}
	case KindFlashCrowd:
		if s.AtMS < 0 || s.RiseMS < 0 || s.DecayMS < 0 {
			return fmt.Errorf("workload: flashcrowd at_ms/rise_ms/decay_ms must be >= 0")
		}
		if s.Peak < s.Base {
			return fmt.Errorf("workload: flashcrowd peak %v below base %v", s.Peak, s.Base)
		}
	case KindSequence:
		if depth >= maxSequenceDepth {
			return fmt.Errorf("workload: sequences nested deeper than %d", maxSequenceDepth)
		}
		if len(s.Segments) == 0 {
			return fmt.Errorf("workload: sequence needs at least one segment")
		}
		for i := range s.Segments {
			seg := &s.Segments[i]
			if seg.ForMS < 0 {
				return fmt.Errorf("workload: sequence segment %d for_ms %d: must be >= 0", i, seg.ForMS)
			}
			if err := seg.Spec.validate(depth + 1); err != nil {
				return fmt.Errorf("workload: sequence segment %d: %w", i, err)
			}
		}
	case "":
		return fmt.Errorf("workload: missing kind (want one of constant, cpuburn, step, ramp, jitter, trace, random, steps, diurnal, flashcrowd, sequence, fig2)")
	default:
		return fmt.Errorf("workload: kind %q: unknown (want one of constant, cpuburn, step, ramp, jitter, trace, random, steps, diurnal, flashcrowd, sequence, fig2)", s.Kind)
	}
	return nil
}

// Build instantiates the generator for one node. seed keys the whole
// family; the per-node stream is derived with rng.Mix(seed, node), so
// every node gets an independent instance — the fix for the shared-
// generator-state bug (one stateful generator attached to a whole
// fleet). Stateless kinds still get per-node seeds where they draw
// (random), so no two nodes ever replay each other's demand.
func (s *Spec) Build(seed uint64, node int) (Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.build(rng.Mix(seed, uint64(node))), nil
}

// build constructs the generator from an already-derived per-node
// seed. Validation has passed; every branch is total.
func (s *Spec) build(nodeSeed uint64) Generator {
	switch s.Kind {
	case KindConstant:
		return Constant(s.Util)
	case KindCPUBurn:
		return NewCPUBurn(rng.New(nodeSeed))
	case KindStep:
		return Step{Before: s.Before, After: s.After, At: ms(s.AtMS)}
	case KindRamp:
		return Ramp{From: s.From, To: s.To, Start: ms(s.StartMS), Over: ms(s.OverMS)}
	case KindJitter:
		return Jitter{Low: s.Low, High: s.High, Period: ms(s.PeriodMS)}
	case KindTrace:
		return Trace{Samples: s.Samples, Period: ms(s.PeriodMS), Loop: s.Loop}
	case KindRandom:
		r := Random{Seed: nodeSeed, Hold: ms(s.HoldMS), Lo: s.Min, Hi: s.Max, Mean: s.Mean, Alpha: s.Alpha}
		if s.HoldMS == 0 {
			r.Hold = time.Second
		}
		if s.Min == 0 && s.Max == 0 {
			r.Lo, r.Hi = 0.05, 0.95
		}
		switch s.Dist {
		case "exponential":
			r.Dist = DistExponential
		case "heavytail":
			r.Dist = DistHeavyTail
		default:
			r.Dist = DistUniform
		}
		return r
	case KindSteps:
		return Steps{Levels: s.Levels, Hold: ms(s.HoldMS), Loop: s.Loop}
	case KindDiurnal:
		return Diurnal{Base: s.Base, Amplitude: s.Amplitude, Period: ms(s.PeriodMS), Phase: ms(s.PhaseMS)}
	case KindFlashCrowd:
		return FlashCrowd{Base: s.Base, Peak: s.Peak, At: ms(s.AtMS), Rise: ms(s.RiseMS), Decay: ms(s.DecayMS)}
	case KindSequence:
		segs := make([]TimedSegment, len(s.Segments))
		for i := range s.Segments {
			// Each segment derives its own stream from the node's, so a
			// cpuburn segment and a random segment never correlate.
			segs[i] = TimedSegment{
				Gen: s.Segments[i].Spec.build(rng.Mix(nodeSeed, uint64(i)+1)),
				For: ms(s.Segments[i].ForMS),
			}
		}
		return Sequence{Segments: segs}
	case KindFig2:
		return Fig2Profile()
	}
	// Unreachable: Validate rejected every other kind.
	return Constant(0)
}

// String names the spec for logs and reports.
func (s *Spec) String() string {
	if s == nil {
		return "none"
	}
	return s.Kind
}

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }
