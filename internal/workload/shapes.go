// Load-shape generators beyond the paper's Figure 2 primitives: seeded
// random utilization, stepped-load programs, diurnal cycles and
// flash-crowd spikes — the shapes production fleets actually see. All
// of them are *pure functions of simulated time*: a generator never
// carries mutable state, so one instance may be shared across nodes
// (though the declarative workload plane builds one per node anyway,
// each with its own seed — see Spec.Build) and evaluation inside the
// cluster's sharded step phase is byte-identical for every worker
// count. They are also allocation-free: Utilization runs inside
// node.Step, a thermlint hotalloc root.
package workload

import (
	"math"
	"time"

	"thermctl/internal/rng"
)

// RandomDist selects the distribution of a Random generator.
type RandomDist int

const (
	// DistUniform draws uniformly from [Lo, Hi].
	DistUniform RandomDist = iota
	// DistExponential draws Exp(mean) — bursty open-system load with
	// frequent lulls and occasional surges — clamped to [Lo, Hi].
	DistExponential
	// DistHeavyTail draws Pareto(Lo, Alpha) — most samples near the Lo
	// floor with rare large excursions, the classic long-tailed demand
	// of shared infrastructure — clamped to [Lo, Hi].
	DistHeavyTail
)

// Random is seeded random utilization, the tsload `param -rg lcg -rv
// uniform` idiom: demand is redrawn once per Hold interval from the
// configured distribution. The value of slot k is a pure function of
// (Seed, k) — the slot index keys a throwaway SplitMix64 stream via
// rng.Mix — so there is no internal state to share or to make
// evaluation order matter: any node, any worker, any call pattern sees
// the same utilization at the same simulated time.
type Random struct {
	// Seed keys this generator's value stream; give every node its own
	// (Spec.Build derives one per node with rng.Mix).
	Seed uint64
	// Hold is how long each drawn value applies. Hold <= 0 degenerates
	// to a single draw held forever (slot 0).
	Hold time.Duration
	// Dist selects the distribution.
	Dist RandomDist
	// Lo and Hi bound the drawn utilization. For DistUniform they are
	// the range; for DistExponential and DistHeavyTail they clamp, and
	// Lo is additionally the Pareto scale (the tail's floor).
	Lo, Hi float64
	// Mean is the exponential distribution's mean (DistExponential).
	Mean float64
	// Alpha is the Pareto shape (DistHeavyTail); smaller is heavier.
	Alpha float64
}

// Utilization implements Generator.
func (r Random) Utilization(t time.Duration) float64 {
	var slot uint64
	if r.Hold > 0 && t > 0 {
		slot = uint64(t / r.Hold)
	}
	src := rng.At(rng.Mix(r.Seed, slot))
	u := src.Float64()
	lo, hi := r.Lo, r.Hi
	if hi <= lo {
		hi = 1
	}
	var v float64
	switch r.Dist {
	case DistExponential:
		mean := r.Mean
		if mean <= 0 {
			mean = 0.3
		}
		// Inverse CDF; 1-u is in (0, 1] so the log argument never hits 0.
		v = -mean * math.Log(1-u)
	case DistHeavyTail:
		alpha := r.Alpha
		if alpha <= 0 {
			alpha = 1.5
		}
		scale := lo
		if scale <= 0 {
			scale = 0.05
		}
		v = scale / math.Pow(1-u, 1/alpha)
	default: // DistUniform
		v = lo + u*(hi-lo)
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return clamp01(v)
}

// Steps replays the tsload stepped-load idiom (`steps 10 12 14 16 …`):
// Levels[i] applies for one Hold interval each, in order. After the
// last level the program either loops from the start or holds the
// final level.
type Steps struct {
	// Levels are utilization values in [0, 1].
	Levels []float64
	// Hold is the duration of each step. Hold <= 0 pins the first level.
	Hold time.Duration
	// Loop restarts the program after the last level.
	Loop bool
}

// Utilization implements Generator.
func (s Steps) Utilization(t time.Duration) float64 {
	if len(s.Levels) == 0 {
		return 0
	}
	if s.Hold <= 0 || t < 0 {
		return clamp01(s.Levels[0])
	}
	i := int(t / s.Hold)
	if i >= len(s.Levels) {
		if !s.Loop {
			return clamp01(s.Levels[len(s.Levels)-1])
		}
		i %= len(s.Levels)
	}
	return clamp01(s.Levels[i])
}

// Diurnal is a day/night demand cycle: utilization oscillates
// sinusoidally around Base with the given Amplitude and Period. t = 0
// sits at the trough (plus Phase), so a campaign started "at night"
// warms into the daily peak half a period in — compress Period well
// below 24 h to fit a cycle into a simulated campaign.
type Diurnal struct {
	// Base is the mean utilization.
	Base float64
	// Amplitude is the swing around Base (peak = Base + Amplitude).
	Amplitude float64
	// Period is the cycle length. Period <= 0 pins Base - Amplitude
	// (the trough, the t=0 value of any positive period).
	Period time.Duration
	// Phase shifts the cycle start.
	Phase time.Duration
}

// Utilization implements Generator.
func (d Diurnal) Utilization(t time.Duration) float64 {
	if d.Period <= 0 {
		return clamp01(d.Base - d.Amplitude)
	}
	frac := float64((t+d.Phase)%d.Period) / float64(d.Period)
	return clamp01(d.Base - d.Amplitude*math.Cos(2*math.Pi*frac))
}

// FlashCrowd is a sudden demand spike on a quiet baseline: utilization
// sits at Base, ramps linearly to Peak over Rise starting at At, then
// decays exponentially back toward Base with time constant Decay — the
// news-event / retry-storm shape whose onset is the paper's "sudden"
// type and whose tail is its "gradual" type in one program.
type FlashCrowd struct {
	// Base is the pre- and post-spike utilization.
	Base float64
	// Peak is the crest of the spike.
	Peak float64
	// At is when the crowd arrives.
	At time.Duration
	// Rise is the onset ramp; Rise <= 0 makes the onset a step.
	Rise time.Duration
	// Decay is the exponential tail's time constant; Decay <= 0 drops
	// straight back to Base after the crest.
	Decay time.Duration
}

// Utilization implements Generator.
func (f FlashCrowd) Utilization(t time.Duration) float64 {
	if t < f.At {
		return clamp01(f.Base)
	}
	if f.Rise > 0 && t < f.At+f.Rise {
		frac := float64(t-f.At) / float64(f.Rise)
		return clamp01(f.Base + frac*(f.Peak-f.Base))
	}
	since := t - f.At
	if f.Rise > 0 {
		since -= f.Rise
	}
	if f.Decay <= 0 {
		// No tail: the crest instant itself still reads Peak so a
		// zero-Rise zero-Decay spike is at least visible at t == At.
		if since == 0 {
			return clamp01(f.Peak)
		}
		return clamp01(f.Base)
	}
	return clamp01(f.Base + (f.Peak-f.Base)*math.Exp(-float64(since)/float64(f.Decay)))
}
