package workload

import (
	"math"
	"testing"
	"time"
)

func TestRandomDeterministicAndBounded(t *testing.T) {
	for _, dist := range []RandomDist{DistUniform, DistExponential, DistHeavyTail} {
		r := Random{Seed: 42, Hold: time.Second, Dist: dist, Lo: 0.1, Hi: 0.9}
		for i := 0; i < 500; i++ {
			at := time.Duration(i) * 100 * time.Millisecond
			u := r.Utilization(at)
			if u < 0.1 || u > 0.9 {
				t.Fatalf("dist %d: utilization %v at %v outside [0.1, 0.9]", dist, u, at)
			}
			if again := r.Utilization(at); again != u {
				t.Fatalf("dist %d: not a pure function of time: %v then %v", dist, u, again)
			}
		}
	}
}

func TestRandomHoldsWithinSlot(t *testing.T) {
	r := Random{Seed: 7, Hold: time.Second}
	base := r.Utilization(5 * time.Second)
	if r.Utilization(5*time.Second+999*time.Millisecond) != base {
		t.Error("value changed inside one hold slot")
	}
	changed := false
	for slot := time.Duration(6); slot < 16; slot++ {
		if r.Utilization(slot*time.Second) != base {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("value never changed across ten hold slots")
	}
}

func TestRandomSeedsIndependent(t *testing.T) {
	a := Random{Seed: 1, Hold: time.Second}
	b := Random{Seed: 2, Hold: time.Second}
	same := 0
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if a.Utilization(at) == b.Utilization(at) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agreed on %d/100 slots", same)
	}
}

func TestRandomZeroHoldPinsOneDraw(t *testing.T) {
	r := Random{Seed: 3}
	if r.Utilization(0) != r.Utilization(time.Hour) {
		t.Error("Hold <= 0 should degenerate to one draw held forever")
	}
}

func TestRandomDistributionsDiffer(t *testing.T) {
	// Same seed, different distributions: the shapes must actually
	// differ — exponential and heavy-tail spend most time near the
	// floor, uniform does not.
	var uniSum, expSum float64
	const n = 1000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Second
		uniSum += Random{Seed: 9, Hold: time.Second, Dist: DistUniform}.Utilization(at)
		expSum += Random{Seed: 9, Hold: time.Second, Dist: DistExponential, Mean: 0.2}.Utilization(at)
	}
	if uniMean := uniSum / n; math.Abs(uniMean-0.5) > 0.05 {
		t.Errorf("uniform mean %v, want ~0.5", uniMean)
	}
	if expMean := expSum / n; expMean > 0.35 {
		t.Errorf("exponential(0.2) mean %v, want well below uniform's", expMean)
	}
}

func TestStepsProgram(t *testing.T) {
	s := Steps{Levels: []float64{0.1, 0.5, 0.9}, Hold: 10 * time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0.1},
		{9 * time.Second, 0.1},
		{10 * time.Second, 0.5},
		{25 * time.Second, 0.9},
		{time.Hour, 0.9}, // holds last level
	}
	for _, c := range cases {
		if got := s.Utilization(c.at); got != c.want {
			t.Errorf("at %v = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestStepsLoop(t *testing.T) {
	s := Steps{Levels: []float64{0.2, 0.8}, Hold: time.Second, Loop: true}
	if got := s.Utilization(2 * time.Second); got != 0.2 {
		t.Errorf("first level after wrap = %v, want 0.2", got)
	}
	if got := s.Utilization(3 * time.Second); got != 0.8 {
		t.Errorf("second level after wrap = %v, want 0.8", got)
	}
}

func TestStepsZeroHoldPinsFirstLevel(t *testing.T) {
	s := Steps{Levels: []float64{0.3, 0.7}}
	if s.Utilization(time.Hour) != 0.3 {
		t.Error("Hold <= 0 should pin the first level")
	}
}

func TestDiurnalCycle(t *testing.T) {
	d := Diurnal{Base: 0.5, Amplitude: 0.3, Period: 24 * time.Hour}
	if got := d.Utilization(0); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("trough at t=0 = %v, want 0.2", got)
	}
	if got := d.Utilization(12 * time.Hour); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("peak at half period = %v, want 0.8", got)
	}
	if got := d.Utilization(24 * time.Hour); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("trough again at full period = %v, want 0.2", got)
	}
	shifted := Diurnal{Base: 0.5, Amplitude: 0.3, Period: 24 * time.Hour, Phase: 12 * time.Hour}
	if got := shifted.Utilization(0); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("phase-shifted start = %v, want 0.8 (peak)", got)
	}
	if (Diurnal{Base: 0.5, Amplitude: 0.3}).Utilization(time.Hour) != 0.2 {
		t.Error("Period <= 0 should pin the trough")
	}
}

func TestFlashCrowdShape(t *testing.T) {
	f := FlashCrowd{Base: 0.2, Peak: 0.9, At: 60 * time.Second, Rise: 10 * time.Second, Decay: 30 * time.Second}
	if got := f.Utilization(0); got != 0.2 {
		t.Errorf("before arrival = %v, want base", got)
	}
	if got := f.Utilization(65 * time.Second); math.Abs(got-0.55) > 1e-9 {
		t.Errorf("mid-rise = %v, want 0.55", got)
	}
	if got := f.Utilization(70 * time.Second); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("crest = %v, want peak", got)
	}
	// One decay time constant past the crest: base + (peak-base)/e.
	want := 0.2 + 0.7*math.Exp(-1)
	if got := f.Utilization(100 * time.Second); math.Abs(got-want) > 1e-9 {
		t.Errorf("one tau into decay = %v, want %v", got, want)
	}
	if got := f.Utilization(time.Hour); got > 0.201 {
		t.Errorf("long after = %v, want ~base", got)
	}
}

func TestFlashCrowdDegenerate(t *testing.T) {
	// Zero rise, zero decay: a one-instant spike, visible only at At.
	f := FlashCrowd{Base: 0.1, Peak: 1, At: 5 * time.Second}
	if got := f.Utilization(5 * time.Second); got != 1 {
		t.Errorf("crest instant = %v, want peak", got)
	}
	if got := f.Utilization(5*time.Second + 1); got != 0.1 {
		t.Errorf("just past crest = %v, want base", got)
	}
}

// --- Boundary behavior of the pre-plane primitives, pinned so the
// declarative spec layer inherits stable semantics. ---

func TestJitterOddPeriodBoundary(t *testing.T) {
	// An odd period floors the high window to Period/2: with Period=5ns
	// the wave is high for 2ns and low for 3ns — asymmetric, but stable.
	j := Jitter{Low: 0, High: 1, Period: 5}
	for phase, want := range map[time.Duration]float64{0: 1, 1: 1, 2: 0, 3: 0, 4: 0, 5: 1, 6: 1, 7: 0} {
		if got := j.Utilization(phase); got != want {
			t.Errorf("odd period at t=%dns = %v, want %v", phase, got, want)
		}
	}
}

func TestSequenceZeroLengthSegments(t *testing.T) {
	seq := Sequence{Segments: []TimedSegment{
		{Gen: Constant(0.1), For: 10 * time.Second},
		{Gen: Constant(0.5), For: 0}, // zero-length middle segment: never plays
		{Gen: Constant(0.9), For: 10 * time.Second},
	}}
	if got := seq.Utilization(10 * time.Second); got != 0.9 {
		t.Errorf("at zero-length segment boundary = %v, want the next segment's 0.9", got)
	}
	// A zero-length LAST segment still runs forever once reached.
	tail := Sequence{Segments: []TimedSegment{
		{Gen: Constant(0.1), For: 10 * time.Second},
		{Gen: Constant(0.5), For: 0},
	}}
	if got := tail.Utilization(11 * time.Second); got != 0.5 {
		t.Errorf("zero-length final segment = %v, want 0.5", got)
	}
}

func TestTraceLoopWrapInterpolation(t *testing.T) {
	tr := Trace{Samples: []float64{0.2, 0.8}, Period: 10 * time.Second, Loop: true}
	// Inside the last sample's interval a looping trace interpolates
	// toward Samples[0]: halfway from 0.8 back to 0.2 is 0.5.
	if got := tr.Utilization(15 * time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("looping wrap interpolation = %v, want 0.5", got)
	}
	// Exactly at the span boundary the loop restarts at Samples[0].
	if got := tr.Utilization(20 * time.Second); got != 0.2 {
		t.Errorf("at span with loop = %v, want 0.2", got)
	}
	// Without Loop the final sample holds flat instead.
	hold := Trace{Samples: []float64{0.2, 0.8}, Period: 10 * time.Second}
	if got := hold.Utilization(15 * time.Second); got != 0.8 {
		t.Errorf("non-looping final interval = %v, want 0.8", got)
	}
}

func TestRampExactlyAtStart(t *testing.T) {
	r := Ramp{From: 0.2, To: 0.8, Start: 10 * time.Second, Over: 60 * time.Second}
	if got := r.Utilization(10 * time.Second); got != 0.2 {
		t.Errorf("at t == Start = %v, want From", got)
	}
	// Degenerate ramp (Over <= 0) is a step: From at Start, To after.
	step := Ramp{From: 0.2, To: 0.8, Start: 10 * time.Second}
	if got := step.Utilization(10 * time.Second); got != 0.2 {
		t.Errorf("degenerate ramp at t == Start = %v, want From", got)
	}
	if got := step.Utilization(10*time.Second + 1); got != 0.8 {
		t.Errorf("degenerate ramp just past Start = %v, want To", got)
	}
}
