package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"thermctl/internal/rng"
)

func TestConstantClamped(t *testing.T) {
	if Constant(1.5).Utilization(0) != 1 {
		t.Error("Constant above 1 not clamped")
	}
	if Constant(-0.5).Utilization(0) != 0 {
		t.Error("Constant below 0 not clamped")
	}
	if Constant(0.5).Utilization(time.Hour) != 0.5 {
		t.Error("Constant not constant")
	}
}

func TestCPUBurnNearFull(t *testing.T) {
	b := NewCPUBurn(rng.New(1))
	for i := 0; i < 1000; i++ {
		u := b.Utilization(time.Duration(i) * time.Second)
		if u < 0.95 || u > 1.0 {
			t.Fatalf("cpu-burn utilization %v outside [0.95, 1]", u)
		}
	}
	exact := NewCPUBurn(nil)
	if exact.Utilization(0) != 1 {
		t.Error("noiseless cpu-burn should be exactly 1")
	}
}

func TestStepSwitchesAtTime(t *testing.T) {
	s := Step{Before: 0.1, After: 0.9, At: 10 * time.Second}
	if s.Utilization(9*time.Second) != 0.1 {
		t.Error("before switch")
	}
	if s.Utilization(10*time.Second) != 0.9 {
		t.Error("at switch instant")
	}
	if s.Utilization(time.Hour) != 0.9 {
		t.Error("long after switch")
	}
}

func TestRampInterpolates(t *testing.T) {
	r := Ramp{From: 0.2, To: 0.8, Start: 10 * time.Second, Over: 60 * time.Second}
	if got := r.Utilization(10 * time.Second); got != 0.2 {
		t.Errorf("at start = %v, want 0.2", got)
	}
	if got := r.Utilization(40 * time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("at midpoint = %v, want 0.5", got)
	}
	if got := r.Utilization(70 * time.Second); got != 0.8 {
		t.Errorf("at end = %v, want 0.8", got)
	}
	if got := r.Utilization(time.Hour); got != 0.8 {
		t.Errorf("after end = %v, want to hold 0.8", got)
	}
	if got := r.Utilization(0); got != 0.2 {
		t.Errorf("before start = %v, want 0.2", got)
	}
}

func TestRampZeroDuration(t *testing.T) {
	r := Ramp{From: 0.2, To: 0.8, Start: 10 * time.Second, Over: 0}
	if r.Utilization(5*time.Second) != 0.2 || r.Utilization(15*time.Second) != 0.8 {
		t.Error("zero-duration ramp should behave as a step")
	}
}

func TestJitterAlternates(t *testing.T) {
	j := Jitter{Low: 0.2, High: 0.9, Period: 4 * time.Second}
	if j.Utilization(1*time.Second) != 0.9 {
		t.Error("first half should be High")
	}
	if j.Utilization(3*time.Second) != 0.2 {
		t.Error("second half should be Low")
	}
	if j.Utilization(5*time.Second) != 0.9 {
		t.Error("second period first half should be High")
	}
}

func TestJitterHasNoTrend(t *testing.T) {
	j := Jitter{Low: 0.3, High: 0.7, Period: 2 * time.Second}
	// Average over whole periods equals the midpoint: no trend.
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		sum += j.Utilization(time.Duration(i) * 250 * time.Millisecond)
	}
	if avg := sum / n; math.Abs(avg-0.5) > 0.01 {
		t.Errorf("jitter average %v, want ~0.5", avg)
	}
}

func TestSequenceTransitionsAndHolds(t *testing.T) {
	s := Sequence{Segments: []TimedSegment{
		{Gen: Constant(0.1), For: 10 * time.Second},
		{Gen: Constant(0.9), For: 10 * time.Second},
	}}
	if s.Utilization(5*time.Second) != 0.1 {
		t.Error("first segment")
	}
	if s.Utilization(15*time.Second) != 0.9 {
		t.Error("second segment")
	}
	if s.Utilization(time.Hour) != 0.9 {
		t.Error("last segment should hold")
	}
}

func TestSequenceSegmentLocalTime(t *testing.T) {
	s := Sequence{Segments: []TimedSegment{
		{Gen: Constant(0), For: 20 * time.Second},
		{Gen: Step{Before: 0.1, After: 0.9, At: 5 * time.Second}, For: 20 * time.Second},
	}}
	if got := s.Utilization(22 * time.Second); got != 0.1 {
		t.Errorf("segment-local time: at 22s = %v, want 0.1 (2s into segment)", got)
	}
	if got := s.Utilization(26 * time.Second); got != 0.9 {
		t.Errorf("segment-local time: at 26s = %v, want 0.9", got)
	}
}

func TestEmptySequence(t *testing.T) {
	if (Sequence{}).Utilization(0) != 0 {
		t.Error("empty sequence should demand 0")
	}
}

func TestFig2ProfileShape(t *testing.T) {
	g := Fig2Profile()
	if u := g.Utilization(10 * time.Second); u > 0.1 {
		t.Errorf("baseline = %v, want idle", u)
	}
	if u := g.Utilization(40 * time.Second); u < 0.9 {
		t.Errorf("after sudden onset = %v, want high", u)
	}
	// Gradual phase: utilization increases over time.
	u1 := g.Utilization(160 * time.Second)
	u2 := g.Utilization(230 * time.Second)
	if u2 <= u1 {
		t.Errorf("gradual phase not increasing: %v then %v", u1, u2)
	}
}

func TestBTB4Calibration(t *testing.T) {
	p := BTB4()
	got := p.IdealSeconds(2.4)
	// Ideal time excludes per-iteration barrier overhead; the cluster
	// measures ≈219 s (the paper's Table 1 baseline) on top of this.
	if math.Abs(got-214) > 2 {
		t.Errorf("BT.B.4 ideal time at 2.4 GHz = %.1f s, want ≈214", got)
	}
	if len(p.Iters) != 200 {
		t.Errorf("BT.B.4 has %d iterations, want 200", len(p.Iters))
	}
	// Slowdown at 2.2 GHz ≈ +6%, matching Table 1's 233/219: memory
	// stalls and communication do not scale with frequency.
	slow := p.IdealSeconds(2.2) / got
	if slow < 1.04 || slow > 1.08 {
		t.Errorf("2.2 GHz slowdown factor = %.3f, want 1.04..1.08", slow)
	}
}

func TestLUB4Calibration(t *testing.T) {
	p := LUB4()
	got := p.IdealSeconds(2.4)
	if math.Abs(got-210) > 4 {
		t.Errorf("LU.B.4 ideal time = %.1f s, want ≈210", got)
	}
	if p.Iters[0].MemSec <= 0 {
		t.Error("LU should carry memory-stall time")
	}
}

func TestKernelSuiteCalibration(t *testing.T) {
	cases := []struct {
		prog    Program
		idealS  float64
		tol     float64
		maxSens float64 // slowdown factor at 2.0 GHz
		minSens float64
	}{
		{EPB4(), 90, 3, 1.25, 1.15},  // compute-bound: near-pure scaling
		{CGB4(), 101, 4, 1.06, 1.01}, // memory-bound: nearly flat
		{MGB4(), 18, 1, 1.12, 1.04},
	}
	for _, c := range cases {
		got := c.prog.IdealSeconds(2.4)
		if math.Abs(got-c.idealS) > c.tol {
			t.Errorf("%s ideal = %.1f s, want %.0f±%.0f", c.prog.Name, got, c.idealS, c.tol)
		}
		sens := c.prog.IdealSeconds(2.0) / got
		if sens < c.minSens || sens > c.maxSens {
			t.Errorf("%s sensitivity at 2.0 GHz = %.3f, want %.2f..%.2f",
				c.prog.Name, sens, c.minSens, c.maxSens)
		}
	}
}

func TestKernelFrequencySensitivityOrdering(t *testing.T) {
	// EP (compute-bound) must be more frequency-sensitive than BT,
	// which must be more sensitive than CG (memory-bound).
	sens := func(p Program) float64 { return p.IdealSeconds(2.0) / p.IdealSeconds(2.4) }
	ep, bt, cg := sens(EPB4()), sens(BTB4()), sens(CGB4())
	if !(ep > bt && bt > cg) {
		t.Errorf("sensitivity ordering violated: EP %.3f, BT %.3f, CG %.3f", ep, bt, cg)
	}
}

func TestIdealSecondsMonotoneInFrequency(t *testing.T) {
	p := BTB4()
	prev := 0.0
	for _, f := range []float64{2.4, 2.2, 2.0, 1.8, 1.0} {
		tm := p.IdealSeconds(f)
		if tm <= prev {
			t.Fatalf("IdealSeconds(%v) = %v not greater than at higher freq %v", f, tm, prev)
		}
		prev = tm
	}
}

func TestGeneratorsAlwaysInUnitRange(t *testing.T) {
	gens := []Generator{
		Constant(0.5), Constant(2), Constant(-1),
		NewCPUBurn(rng.New(1)),
		Step{Before: -3, After: 7, At: 10 * time.Second},
		Ramp{From: -2, To: 5, Start: time.Second, Over: 20 * time.Second},
		Jitter{Low: -1, High: 9, Period: 3 * time.Second},
		Fig2Profile(),
		Trace{Samples: []float64{-5, 0.5, 8}, Period: time.Second, Loop: true},
		Sequence{Segments: []TimedSegment{
			{Gen: Constant(0.3), For: 5 * time.Second},
			{Gen: Jitter{Low: 0, High: 1, Period: time.Second}, For: 5 * time.Second},
		}},
	}
	if err := quick.Check(func(ms uint32) bool {
		t := time.Duration(ms) * time.Millisecond
		for _, g := range gens {
			u := g.Utilization(t)
			if u < 0 || u > 1 || math.IsNaN(u) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTraceInterpolates(t *testing.T) {
	tr := Trace{Samples: []float64{0, 1, 0.5}, Period: 10 * time.Second}
	if got := tr.Utilization(0); got != 0 {
		t.Errorf("t=0: %v", got)
	}
	if got := tr.Utilization(5 * time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("t=5s: %v, want 0.5 (midway 0→1)", got)
	}
	if got := tr.Utilization(10 * time.Second); got != 1 {
		t.Errorf("t=10s: %v, want 1", got)
	}
	if got := tr.Utilization(15 * time.Second); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("t=15s: %v, want 0.75", got)
	}
}

func TestTraceHoldsOrLoops(t *testing.T) {
	hold := Trace{Samples: []float64{0.2, 0.8}, Period: time.Second}
	if got := hold.Utilization(time.Hour); got != 0.8 {
		t.Errorf("hold: %v, want final 0.8", got)
	}
	loop := Trace{Samples: []float64{0.2, 0.8}, Period: time.Second, Loop: true}
	if got := loop.Utilization(2 * time.Second); got != 0.2 {
		t.Errorf("loop restart: %v, want 0.2", got)
	}
	// Last-to-first interpolation while looping.
	if got := loop.Utilization(1500 * time.Millisecond); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("loop wrap interpolation: %v, want 0.5", got)
	}
}

func TestTraceEmpty(t *testing.T) {
	if (Trace{}).Utilization(time.Second) != 0 {
		t.Error("empty trace should be 0")
	}
	if (Trace{Samples: []float64{1}, Period: 0}).Utilization(0) != 0 {
		t.Error("zero period should be 0")
	}
}

func TestTraceClamps(t *testing.T) {
	tr := Trace{Samples: []float64{-1, 2}, Period: time.Second}
	if tr.Utilization(0) != 0 || tr.Utilization(time.Second) != 1 {
		t.Error("trace values not clamped to [0,1]")
	}
}

func TestUniform(t *testing.T) {
	p := Uniform("X", 3, Iteration{ComputeGC: 1, ComputeUtil: 1, CommSec: 0.5})
	if p.TotalComputeGC() != 3 {
		t.Errorf("TotalComputeGC = %v, want 3", p.TotalComputeGC())
	}
	if got := p.IdealSeconds(1.0); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("IdealSeconds = %v, want 4.5", got)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}
