package workload

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpecBuildDispatch(t *testing.T) {
	cases := []struct {
		spec Spec
		at   time.Duration
		want float64
	}{
		{Spec{Kind: KindConstant, Util: 0.7}, time.Hour, 0.7},
		{Spec{Kind: KindStep, Before: 0.1, After: 0.9, AtMS: 1000}, 2 * time.Second, 0.9},
		{Spec{Kind: KindRamp, From: 0.2, To: 0.8, StartMS: 0, OverMS: 10000}, 5 * time.Second, 0.5},
		{Spec{Kind: KindJitter, Low: 0.1, High: 0.9, PeriodMS: 1000}, 0, 0.9},
		{Spec{Kind: KindTrace, Samples: []float64{0.3, 0.3}, PeriodMS: 1000}, 500 * time.Millisecond, 0.3},
		{Spec{Kind: KindSteps, Levels: []float64{0.1, 0.6}, HoldMS: 1000}, 1500 * time.Millisecond, 0.6},
		{Spec{Kind: KindDiurnal, Base: 0.5, Amplitude: 0.2, PeriodMS: 60000}, 30 * time.Second, 0.7},
		{Spec{Kind: KindFlashCrowd, Base: 0.2, Peak: 0.9, AtMS: 1000}, 0, 0.2},
	}
	for _, c := range cases {
		g, err := c.spec.Build(1, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Kind, err)
		}
		if got := g.Utilization(c.at); got != c.want {
			t.Errorf("%s at %v = %v, want %v", c.spec.Kind, c.at, got, c.want)
		}
	}
}

func TestSpecBuildPerNodeIndependence(t *testing.T) {
	// The point of the factory: stateful generators built for different
	// nodes from the same family seed are independent instances with
	// independent streams.
	spec := Spec{Kind: KindCPUBurn}
	g0, err := spec.Build(99, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := spec.Build(99, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if g0.Utilization(at) == g1.Utilization(at) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("nodes 0 and 1 agreed on %d/100 cpuburn samples; streams are correlated", same)
	}

	// And the same (seed, node) pair rebuilds the same stream.
	a, _ := spec.Build(99, 0)
	b, _ := spec.Build(99, 0)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if a.Utilization(at) != b.Utilization(at) {
			t.Fatalf("same (seed, node) diverged at %v", at)
		}
	}
}

func TestSpecRandomPerNodeIndependence(t *testing.T) {
	spec := Spec{Kind: KindRandom, HoldMS: 1000}
	g0, _ := spec.Build(7, 0)
	g1, _ := spec.Build(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		if g0.Utilization(at) == g1.Utilization(at) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("nodes 0 and 1 agreed on %d/100 random draws", same)
	}
}

func TestSpecSequenceSegmentsGetDistinctStreams(t *testing.T) {
	spec := Spec{Kind: KindSequence, Segments: []SegmentSpec{
		{Spec: Spec{Kind: KindRandom, HoldMS: 1000}, ForMS: 100000},
		{Spec: Spec{Kind: KindRandom, HoldMS: 1000}, ForMS: 100000},
	}}
	g, err := spec.Build(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identical sub-specs at the same within-segment offset must not
	// replay each other: segment streams are derived per index.
	same := 0
	for i := 0; i < 50; i++ {
		off := time.Duration(i) * time.Second
		if g.Utilization(off) == g.Utilization(100*time.Second+off) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("sequence segments agreed on %d/50 draws; segment streams are shared", same)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing kind", Spec{}, "missing kind"},
		{"unknown kind", Spec{Kind: "mystery"}, "unknown"},
		{"constant out of range", Spec{Kind: KindConstant, Util: 1.5}, "outside"},
		{"jitter no period", Spec{Kind: KindJitter}, "positive period"},
		{"trace no samples", Spec{Kind: KindTrace, PeriodMS: 100}, "at least one sample"},
		{"trace no period", Spec{Kind: KindTrace, Samples: []float64{0.5}}, "sample spacing"},
		{"random bad dist", Spec{Kind: KindRandom, Dist: "gaussian"}, "uniform, exponential or heavytail"},
		{"random inverted range", Spec{Kind: KindRandom, Min: 0.8, Max: 0.2}, "below min"},
		{"steps no levels", Spec{Kind: KindSteps, HoldMS: 100}, "at least one level"},
		{"steps no hold", Spec{Kind: KindSteps, Levels: []float64{0.5}}, "per-level duration"},
		{"diurnal no period", Spec{Kind: KindDiurnal}, "cycle length"},
		{"flashcrowd inverted", Spec{Kind: KindFlashCrowd, Base: 0.9, Peak: 0.2}, "below base"},
		{"empty sequence", Spec{Kind: KindSequence}, "at least one segment"},
		{"negative segment", Spec{Kind: KindSequence, Segments: []SegmentSpec{
			{Spec: Spec{Kind: KindConstant}, ForMS: -1}}}, "for_ms"},
		{"bad nested segment", Spec{Kind: KindSequence, Segments: []SegmentSpec{
			{Spec: Spec{Kind: "nope"}, ForMS: 10}}}, "segment 0"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSpecValidateDepthLimit(t *testing.T) {
	s := Spec{Kind: KindConstant, Util: 0.5}
	for i := 0; i < maxSequenceDepth+1; i++ {
		s = Spec{Kind: KindSequence, Segments: []SegmentSpec{{Spec: s, ForMS: 10}}}
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Errorf("deep nesting accepted: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	src := `{
		"kind": "sequence",
		"segments": [
			{"kind": "diurnal", "base": 0.5, "amplitude": 0.3, "period_ms": 240000, "for_ms": 240000},
			{"kind": "flashcrowd", "base": 0.2, "peak": 0.95, "at_ms": 10000, "rise_ms": 5000, "decay_ms": 30000, "for_ms": 120000},
			{"kind": "random", "dist": "heavytail", "alpha": 1.2, "hold_ms": 2000, "for_ms": 0}
		]
	}`
	var spec Spec
	if err := json.Unmarshal([]byte(src), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	g1, err := spec.Build(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := back.Build(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 2 * time.Second
		if g1.Utilization(at) != g2.Utilization(at) {
			t.Fatalf("round-tripped spec diverged at %v", at)
		}
	}
	if spec.String() != "sequence" {
		t.Errorf("String() = %q", spec.String())
	}
	var nilSpec *Spec
	if nilSpec.String() != "none" {
		t.Errorf("nil String() = %q", nilSpec.String())
	}
}

func TestSpecFig2MatchesProfile(t *testing.T) {
	g, err := (&Spec{Kind: KindFig2}).Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Fig2Profile()
	for i := 0; i < 300; i++ {
		at := time.Duration(i) * time.Second
		if g.Utilization(at) != want.Utilization(at) {
			t.Fatalf("fig2 spec diverged from Fig2Profile at %v", at)
		}
	}
}
