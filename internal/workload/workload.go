// Package workload supplies the CPU demand that drives every experiment:
// open-loop utilization generators (cpu-burn and the synthetic sudden/
// gradual/jitter primitives of the paper's Figure 2) and closed-loop
// SPMD programs modelled on the NAS Parallel Benchmarks the paper runs
// (BT class B and LU class B on four processes).
//
// Open-loop generators map simulated time to demanded utilization and
// never finish; they exercise the thermal controller. Closed-loop
// programs carry a fixed amount of work whose completion time depends on
// the frequencies the DVFS controller chooses — they are what make the
// performance column of the paper's Table 1 measurable. A program is a
// sequence of iterations, each a compute segment (work in giga-cycles,
// scaling with frequency) followed by a communication segment (fixed
// wall time, near-idle CPU). That two-piece structure is exactly the
// "significant opportunities" the paper's §1 claims parallel applications
// offer: during communication the processor is cool-running regardless
// of frequency.
package workload

import (
	"fmt"
	"time"

	"thermctl/internal/rng"
)

// Generator is an open-loop utilization source.
type Generator interface {
	// Utilization returns the demanded CPU utilization in [0, 1] at
	// simulated time t.
	Utilization(t time.Duration) float64
}

// Constant demands a fixed utilization forever.
type Constant float64

// Utilization implements Generator.
func (c Constant) Utilization(time.Duration) float64 { return clamp01(float64(c)) }

// CPUBurn reproduces the cpu-burn stressor used in the paper's §4.2:
// sustained full utilization with small scheduling noise.
type CPUBurn struct {
	noise *rng.Source
}

// NewCPUBurn returns a cpu-burn generator; noise may be nil for an
// exactly constant load.
func NewCPUBurn(noise *rng.Source) *CPUBurn { return &CPUBurn{noise: noise} }

// Utilization implements Generator.
func (b *CPUBurn) Utilization(time.Duration) float64 {
	u := 1.0
	if b.noise != nil {
		u -= 0.03 * b.noise.Float64()
	}
	return clamp01(u)
}

// Step is the paper's "Type I: sudden change": utilization switches from
// Before to After at time At and stays there.
type Step struct {
	Before, After float64
	At            time.Duration
}

// Utilization implements Generator.
func (s Step) Utilization(t time.Duration) float64 {
	if t < s.At {
		return clamp01(s.Before)
	}
	return clamp01(s.After)
}

// Ramp is the paper's "Type II: gradual change": utilization moves
// linearly from From to To between Start and Start+Over, holding To
// afterwards.
type Ramp struct {
	From, To float64
	Start    time.Duration
	Over     time.Duration
}

// Utilization implements Generator.
func (r Ramp) Utilization(t time.Duration) float64 {
	if t <= r.Start || r.Over <= 0 {
		if t > r.Start {
			return clamp01(r.To)
		}
		return clamp01(r.From)
	}
	frac := float64(t-r.Start) / float64(r.Over)
	if frac >= 1 {
		return clamp01(r.To)
	}
	return clamp01(r.From + frac*(r.To-r.From))
}

// Jitter is the paper's "Type III": short bursts alternating between Low
// and High with the given Period, producing temperature oscillation with
// no sustained trend. The controller must *not* react to it.
type Jitter struct {
	Low, High float64
	Period    time.Duration
}

// Utilization implements Generator.
func (j Jitter) Utilization(t time.Duration) float64 {
	if j.Period <= 0 {
		return clamp01(j.High)
	}
	phase := t % j.Period
	if phase < j.Period/2 {
		return clamp01(j.High)
	}
	return clamp01(j.Low)
}

// Trace replays a recorded utilization trace: sample i applies from
// i·Period to (i+1)·Period, with linear interpolation between samples.
// After the last sample the trace either loops or holds its final
// value. It lets measured production traces (the paper's "range of
// parallel workloads") drive the simulator.
type Trace struct {
	// Samples are utilization values in [0, 1].
	Samples []float64
	// Period is the sample spacing.
	Period time.Duration
	// Loop restarts the trace from the beginning when exhausted.
	Loop bool
}

// Utilization implements Generator.
func (tr Trace) Utilization(t time.Duration) float64 {
	if len(tr.Samples) == 0 || tr.Period <= 0 {
		return 0
	}
	span := time.Duration(len(tr.Samples)) * tr.Period
	if t >= span {
		if !tr.Loop {
			return clamp01(tr.Samples[len(tr.Samples)-1])
		}
		t %= span
	}
	i := int(t / tr.Period)
	frac := float64(t%tr.Period) / float64(tr.Period)
	a := tr.Samples[i]
	b := a
	if i+1 < len(tr.Samples) {
		b = tr.Samples[i+1]
	} else if tr.Loop {
		b = tr.Samples[0]
	}
	return clamp01(a + frac*(b-a))
}

// TimedSegment pairs a generator with how long it runs.
type TimedSegment struct {
	Gen Generator
	For time.Duration
}

// Sequence plays segments back to back; time inside each segment is
// measured from the segment's start. After the last segment the final
// generator keeps running.
type Sequence struct {
	Segments []TimedSegment
}

// Utilization implements Generator.
func (s Sequence) Utilization(t time.Duration) float64 {
	if len(s.Segments) == 0 {
		return 0
	}
	var start time.Duration
	for i, seg := range s.Segments {
		if t < start+seg.For || i == len(s.Segments)-1 {
			return seg.Gen.Utilization(t - start)
		}
		start += seg.For
	}
	return 0
}

// Fig2Profile builds the thermal workload of the paper's Figure 2: a
// sudden load onset, a period of jitter, then a gradual climb — the
// three behaviour types on one timeline.
func Fig2Profile() Generator {
	return Sequence{Segments: []TimedSegment{
		{Gen: Constant(0.05), For: 30 * time.Second},                                              // idle baseline
		{Gen: Step{Before: 0.05, After: 0.95, At: 0}, For: 60 * time.Second},                      // sudden
		{Gen: Jitter{Low: 0.2, High: 0.9, Period: 3 * time.Second}, For: 60 * time.Second},        // jitter
		{Gen: Ramp{From: 0.3, To: 1.0, Start: 0, Over: 70 * time.Second}, For: 120 * time.Second}, // gradual
		{Gen: Constant(0.05), For: 30 * time.Second},
	}}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// --- Closed-loop SPMD programs ---

// Iteration is one timestep of an SPMD program as seen by one process:
// a frequency-scalable compute segment followed by a fixed-time
// communication segment.
type Iteration struct {
	// ComputeGC is the frequency-scalable compute work in giga-cycles.
	// Its duration is ComputeGC / (freqGHz · ComputeUtil).
	ComputeGC float64
	// ComputeUtil is the utilization during compute (1.0 for a fully
	// compute-bound kernel).
	ComputeUtil float64
	// MemSec is time per iteration spent stalled on memory, in seconds.
	// The core is busy (full utilization and power) but DRAM does not
	// speed up with the core clock, so this time is frequency-
	// invariant. It is why NPB kernels slow down by less than the
	// frequency ratio — BT at 2.2 GHz loses ≈6%, not 9% (Table 1) —
	// which in turn is what makes tDVFS's power savings outweigh its
	// delay in the power-delay product.
	MemSec float64
	// CommSec is the communication/synchronization time in seconds; it
	// does not scale with frequency either, but the CPU is near idle.
	CommSec float64
	// CommUtil is the (low) utilization during communication.
	CommUtil float64
}

// Program is a closed-loop parallel application: the per-process
// iteration schedule.
type Program struct {
	// Name identifies the program in reports, e.g. "BT.B.4".
	Name string
	// Iters is the iteration schedule of one process.
	Iters []Iteration
}

// Uniform builds a program of n identical iterations.
func Uniform(name string, n int, it Iteration) Program {
	iters := make([]Iteration, n)
	for i := range iters {
		iters[i] = it
	}
	return Program{Name: name, Iters: iters}
}

// withCommJitter scales every iteration's communication time by a
// deterministic factor in [1-spread, 1+spread] drawn from seed, keeping
// the mean. Real MPI exchanges vary iteration to iteration (network
// contention, progress-engine timing); this variance is also what makes
// utilization-driven daemons like CPUSPEED react intermittently instead
// of every iteration.
func (p Program) withCommJitter(seed uint64, spread float64) Program {
	src := rng.New(seed)
	for i := range p.Iters {
		f := 1 + spread*(2*src.Float64()-1)
		p.Iters[i].CommSec *= f
	}
	return p
}

// BTB4 models NAS BT class B on 4 processes, calibrated to the paper's
// platform: 200 timesteps totalling ≈219 s at 2.4 GHz. BT's ADI solves
// are compute-heavy with a modest communication share, which is what
// lets CPUSPEED's utilization heuristic oscillate (the dips are short
// but visible) while keeping frequency sensitivity high.
func BTB4() Program {
	// Per iteration at 2.4 GHz: scalable compute 1.729 GC / 2.4 =
	// 0.720 s, memory stalls 0.175 s, comm 0.175 s (±30%) → 1.070 s;
	// ×200 ≈ 214 s ideal, ≈219 s measured on the cluster with barrier
	// overhead — the paper's Table 1 baseline. Scaling to 2.2 GHz
	// stretches only the compute part: +6.1%, matching the paper's
	// 233/219.
	return Uniform("BT.B.4", 200, Iteration{
		ComputeGC:   1.729,
		ComputeUtil: 1.0,
		MemSec:      0.175,
		CommSec:     0.175,
		CommUtil:    0.10,
	}).withCommJitter(0xB7, 0.30)
}

// LUB4 models NAS LU class B on 4 processes: ≈250 shorter timesteps with
// a larger communication share (LU's pipelined wavefront exchanges
// boundary data every sweep), totalling ≈210 s at 2.4 GHz. Its average
// power is a little below BT's, which keeps the die hovering around the
// tDVFS threshold in the paper's Figure 8.
func LUB4() Program {
	// Per iteration: scalable compute 1.071 GC / (2.4·0.97) = 0.46 s,
	// memory stalls 0.15 s, comm 0.23 s → 0.84 s; ×250 = 210 s ideal.
	return Uniform("LU.B.4", 250, Iteration{
		ComputeGC:   1.071,
		ComputeUtil: 0.97,
		MemSec:      0.15,
		CommSec:     0.23,
		CommUtil:    0.08,
	}).withCommJitter(0x1C, 0.30)
}

// EPB4 models NAS EP class B on 4 processes: embarrassingly parallel
// random-number generation with essentially no communication and almost
// no memory traffic — the hottest and most frequency-sensitive kernel
// in the suite, ≈90 s at 2.4 GHz.
func EPB4() Program {
	// 16 blocks × (13.4 GC / 2.4 = 5.58 s + 0.02 s mem + 0.02 s comm)
	// ≈ 90 s.
	return Uniform("EP.B.4", 16, Iteration{
		ComputeGC:   13.4,
		ComputeUtil: 1.0,
		MemSec:      0.02,
		CommSec:     0.02,
		CommUtil:    0.10,
	})
}

// CGB4 models NAS CG class B on 4 processes: sparse matrix-vector
// products dominated by irregular memory access, with frequent
// reductions — cool-running and nearly frequency-insensitive, ≈100 s
// at 2.4 GHz.
func CGB4() Program {
	// 75 iterations × (0.5 GC / 2.4 = 0.21 s + 0.9 s mem + 0.23 s comm)
	// ≈ 101 s. Memory stalls dominate: scaling 2.4→2.0 costs only ~3%.
	return Uniform("CG.B.4", 75, Iteration{
		ComputeGC:   0.5,
		ComputeUtil: 0.95,
		MemSec:      0.90,
		CommSec:     0.23,
		CommUtil:    0.08,
	}).withCommJitter(0xC6, 0.30)
}

// MGB4 models NAS MG class B on 4 processes: a short multigrid solve
// with a large communication share from the fine-to-coarse exchanges,
// ≈18 s at 2.4 GHz.
func MGB4() Program {
	// 20 V-cycles × (0.84 GC / 2.4 = 0.35 s + 0.25 s mem + 0.30 s comm)
	// = 18 s.
	return Uniform("MG.B.4", 20, Iteration{
		ComputeGC:   0.84,
		ComputeUtil: 0.97,
		MemSec:      0.25,
		CommSec:     0.30,
		CommUtil:    0.10,
	}).withCommJitter(0x36, 0.30)
}

// TotalComputeGC returns the program's total compute work.
func (p Program) TotalComputeGC() float64 {
	var sum float64
	for _, it := range p.Iters {
		sum += it.ComputeGC
	}
	return sum
}

// IdealSeconds returns the execution time at a fixed frequency with no
// controller interference and perfect balance.
func (p Program) IdealSeconds(freqGHz float64) float64 {
	var sum float64
	for _, it := range p.Iters {
		if it.ComputeUtil > 0 && freqGHz > 0 {
			sum += it.ComputeGC / (freqGHz * it.ComputeUtil)
		}
		sum += it.MemSec + it.CommSec
	}
	return sum
}

// String implements fmt.Stringer.
func (p Program) String() string {
	return fmt.Sprintf("%s (%d iterations, %.1f GC)", p.Name, len(p.Iters), p.TotalComputeGC())
}
