// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used for sensor noise and workload jitter.
//
// The simulator cannot use math/rand's global source (seeded from wall
// time) because experiments must be bit-for-bit reproducible. We also want
// *splittable* streams: each subsystem (every sensor, every workload
// phase generator, every node) derives its own independent stream from a
// master seed, so adding a new consumer never perturbs the random numbers
// seen by existing ones.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014),
// which passes BigCrush and is trivially seedable from any 64-bit value.
package rng

import "math"

// Source is a deterministic pseudo-random stream. The zero value is a
// valid stream seeded with 0 (it still produces high-quality output
// because SplitMix64 mixes the counter, not the raw state).
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// At returns a stream seeded with seed as a value, for hot paths that
// draw from a derived stream and throw it away (e.g. tick-keyed sensor
// noise): no pointer literal, nothing for escape analysis to get wrong.
func At(seed uint64) Source { return Source{state: seed} }

// Split derives an independent child stream. The child's sequence does
// not overlap the parent's with overwhelming probability, and deriving a
// child does not disturb the parent's future output beyond consuming one
// value.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Mix derives the seed of stream number `stream` of a family keyed by
// seed, by running the SplitMix64 finalizer over the pair. Unlike an
// additive offset (seed + stream·stride), the derived seeds avalanche
// in both arguments: families with different master seeds never share
// a stream seed unless a full 64-bit mix collides (probability ~2⁻⁶⁴),
// whereas seed+stream·stride collides whenever two master seeds differ
// by a multiple of the stride.
func Mix(seed, stream uint64) uint64 {
	s := Source{state: seed + stream*0x9e3779b97f4a7c15}
	return s.Uint64()
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with mean 0 and standard
// deviation 1, via the Box-Muller transform.
func (s *Source) Norm() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormRange returns a normal value with the given mean and standard
// deviation, clamped to [lo, hi]. Clamping (rather than redrawing) keeps
// the number of consumed stream values fixed per call, which preserves
// reproducibility when parameters change.
func (s *Source) NormRange(mean, stddev, lo, hi float64) float64 {
	v := mean + stddev*s.Norm()
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
