package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds collided %d/100 times", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) != 100 {
		t.Errorf("zero-value source produced %d distinct values out of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child streams collided %d/100 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(9).Split()
	c2 := New(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(_ int) bool {
		v := s.Float64()
		return v >= 0 && v < 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d, out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0): expected panic")
		}
	}()
	s.Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormRangeClamps(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.NormRange(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("NormRange clamp violated: %v", v)
		}
	}
}

func TestNormRangeStreamConsumptionFixed(t *testing.T) {
	// NormRange must consume exactly two stream values per call regardless
	// of clamping, so downstream consumers stay aligned.
	a := New(23)
	b := New(23)
	a.NormRange(0, 100, -0.001, 0.001) // heavily clamped
	b.NormRange(0, 0.0001, -10, 10)    // never clamped
	if a.Uint64() != b.Uint64() {
		t.Error("NormRange consumed a different number of stream values depending on clamping")
	}
}

func TestMixIsPure(t *testing.T) {
	if Mix(42, 3) != Mix(42, 3) {
		t.Error("Mix is not a pure function of (seed, stream)")
	}
}

func TestMixAvoidsAdditiveCollisions(t *testing.T) {
	// The old cluster seed derivation was seed + i*7919: families whose
	// master seeds differ by a multiple of the stride shared stream
	// seeds (family 0's stream 1 == family 7919's stream 0). Mix must
	// keep every such pair apart.
	for _, stride := range []uint64{7919, 101, 1} {
		if Mix(0, 1) == Mix(stride, 0) && stride != 0 {
			// Note: only the old scheme's exact collision shape is
			// checked; a full-mix collision has probability ~2^-64.
			t.Errorf("Mix(0,1) == Mix(%d,0): stream seeds collide across families", stride)
		}
	}
}

func TestMixSpreadsStreams(t *testing.T) {
	// Streams of one family must all differ (no fixed points, no
	// short cycles over small indices).
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 1000; i++ {
		v := Mix(20100131, i)
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide", prev, i)
		}
		seen[v] = i
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Norm()
	}
}
