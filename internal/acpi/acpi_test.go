package acpi

import (
	"math"
	"strings"
	"testing"
	"time"

	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

func TestFracLadder(t *testing.T) {
	if Frac(0) != 1.0 {
		t.Errorf("T0 = %v, want 1.0", Frac(0))
	}
	if Frac(7) != 0.125 {
		t.Errorf("T7 = %v, want 0.125", Frac(7))
	}
	for i := 1; i < NumTStates; i++ {
		if Frac(i) >= Frac(i-1) {
			t.Fatalf("Frac not strictly decreasing at T%d", i)
		}
	}
	if Frac(-1) != 1.0 || Frac(99) != 0.125 {
		t.Error("Frac does not clamp")
	}
}

func TestStateForFracRoundTrip(t *testing.T) {
	for s := 0; s < NumTStates; s++ {
		if got := StateForFrac(Frac(s)); got != s {
			t.Errorf("StateForFrac(Frac(%d)) = %d", s, got)
		}
	}
	if got := StateForFrac(0.9); got != 1 {
		t.Errorf("StateForFrac(0.9) = %d, want 1 (87.5%%)", got)
	}
	if got := StateForFrac(0); got != 7 {
		t.Errorf("StateForFrac(0) = %d, want deepest", got)
	}
}

func mountRig(t *testing.T) (*hwmon.FS, *cpu.CPU, Paths) {
	t.Helper()
	fs := hwmon.NewFS()
	c := cpu.New(cpu.DefaultConfig())
	p := Mount(fs, 0, c)
	return fs, c, p
}

func TestMountReadFormat(t *testing.T) {
	fs, _, p := mountRig(t)
	body, err := fs.ReadFile(p.Throttling)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "state count:             8") {
		t.Errorf("missing state count:\n%s", body)
	}
	if !strings.Contains(body, "active state:            T0") {
		t.Errorf("fresh CPU not at T0:\n%s", body)
	}
	if !strings.Contains(body, " *T0: 100%") {
		t.Errorf("active marker missing:\n%s", body)
	}
}

func TestMountWriteThrottles(t *testing.T) {
	fs, c, p := mountRig(t)
	if err := fs.WriteFile(p.Throttling, "4\n"); err != nil {
		t.Fatal(err)
	}
	if got := c.Throttle(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("throttle after T4 = %v, want 0.5", got)
	}
	body, _ := fs.ReadFile(p.Throttling)
	if !strings.Contains(body, "active state:            T4") {
		t.Errorf("readback:\n%s", body)
	}
}

func TestMountWriteValidation(t *testing.T) {
	fs, _, p := mountRig(t)
	for _, bad := range []string{"8", "-1", "x"} {
		if err := fs.WriteFile(p.Throttling, bad); err == nil {
			t.Errorf("write %q accepted", bad)
		}
	}
}

func TestThrottleAffectsWorkAndPower(t *testing.T) {
	c := cpu.New(cpu.DefaultConfig())
	c.SetUtilization(1)
	full := c.Power(50)
	w0 := c.Step(time.Second)
	c.SetThrottle(0.5)
	half := c.Power(50)
	w1 := c.Step(time.Second)
	if math.Abs(w1-w0/2) > 1e-9 {
		t.Errorf("work at T4 = %v, want half of %v", w1, w0)
	}
	if half >= full {
		t.Error("power did not drop under throttling")
	}
	// Throttling cuts dynamic power linearly, so the drop is smaller
	// than halving would be with voltage scaling: leakage is untouched.
	if full-half > full*0.45 {
		t.Errorf("throttle saved %.1f W of %.1f W — too much (no voltage drop)", full-half, full)
	}
}

func TestActuatorRoundTrip(t *testing.T) {
	fs, c, p := mountRig(t)
	a := NewActuator(fs, p)
	if a.NumModes() != NumTStates || a.Name() == "" {
		t.Fatal("actuator metadata")
	}
	for _, m := range []int{0, 3, 7} {
		if err := a.Apply(m); err != nil {
			t.Fatal(err)
		}
		got, err := a.Current()
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("Apply(%d) reads back %d", m, got)
		}
	}
	if math.Abs(c.Throttle()-0.125) > 1e-9 {
		t.Errorf("CPU throttle = %v after T7", c.Throttle())
	}
	if err := a.Apply(99); err != nil {
		t.Errorf("Apply clamps: %v", err)
	}
}

func TestParseActive(t *testing.T) {
	if _, err := ParseActive("nonsense"); err == nil {
		t.Error("parsed nonsense")
	}
	if _, err := ParseActive("active state:            TX\n"); err == nil {
		t.Error("parsed TX")
	}
	v, err := ParseActive("state count: 8\nactive state:            T5\n")
	if err != nil || v != 5 {
		t.Errorf("ParseActive = %d, %v", v, err)
	}
}
