// Package acpi models ACPI processor throttling (T-states) as a third
// thermal-control technique under the paper's unified framework.
//
// The paper's §3.2.2 names "valid sleep states for ACPI-compatible
// system" alongside CPU frequencies and fan speeds as techniques the
// thermal control array unifies. T-states gate the core clock with a
// duty cycle — T0 delivers every cycle, T7 one cycle in eight — cutting
// dynamic power (and throughput) linearly, *without* lowering the
// voltage. That makes throttling strictly less effective per lost
// cycle than DVFS, which is precisely the kind of difference the
// control array's effectiveness ordering captures: a policy can prefer
// DVFS's quadratic savings and keep throttling as the deep reserve.
//
// The host interface mirrors Linux's /proc/acpi/processor/CPUn/
// throttling file: reading shows the state count and the active state,
// writing a state index selects it.
package acpi

import (
	"fmt"
	"strconv"
	"strings"

	"thermctl/internal/cpu"
	"thermctl/internal/hwmon"
)

// NumTStates is the number of throttling states (T0..T7), matching the
// common 8-state ACPI implementation.
const NumTStates = 8

// Frac returns the delivered clock fraction of T-state t: T0 = 100%,
// each deeper state removes one eighth.
func Frac(t int) float64 {
	if t < 0 {
		t = 0
	}
	if t >= NumTStates {
		t = NumTStates - 1
	}
	return 1 - float64(t)/NumTStates
}

// StateForFrac returns the shallowest T-state delivering at most frac.
func StateForFrac(frac float64) int {
	for t := 0; t < NumTStates; t++ {
		if Frac(t) <= frac+1e-9 {
			return t
		}
	}
	return NumTStates - 1
}

// Paths holds the virtual procfs path of one CPU's throttling control.
type Paths struct {
	Throttling string
}

// Mount registers the throttling file for cpu<idx> on the virtual
// filesystem, bound to the given core.
func Mount(fs *hwmon.FS, idx int, c *cpu.CPU) Paths {
	p := Paths{Throttling: fmt.Sprintf("/proc/acpi/processor/CPU%d/throttling", idx)}
	fs.Register(p.Throttling, hwmon.FuncFile{
		ReadFn: func() (string, error) {
			var sb strings.Builder
			active := StateForFrac(c.Throttle())
			fmt.Fprintf(&sb, "state count:             %d\n", NumTStates)
			fmt.Fprintf(&sb, "active state:            T%d\n", active)
			for t := 0; t < NumTStates; t++ {
				marker := "  "
				if t == active {
					marker = " *"
				}
				fmt.Fprintf(&sb, "%sT%d: %02d%%\n", marker, t, int(Frac(t)*100))
			}
			return sb.String(), nil
		},
		WriteFn: func(s string) error {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 0 || v >= NumTStates {
				return fmt.Errorf("%w: throttling state %q", hwmon.ErrInvalid, s)
			}
			c.SetThrottle(Frac(v))
			return nil
		},
	})
	return p
}

// Actuator exposes the T-states to the unified controller: mode 0 is
// T0 (least effective), mode 7 is T7 (most effective).
type Actuator struct {
	fs   *hwmon.FS
	path string
}

// NewActuator returns an actuator driving the mounted throttling file.
func NewActuator(fs *hwmon.FS, p Paths) *Actuator {
	return &Actuator{fs: fs, path: p.Throttling}
}

// Name implements core.Actuator.
func (a *Actuator) Name() string { return "acpi-throttle" }

// NumModes implements core.Actuator.
func (a *Actuator) NumModes() int { return NumTStates }

// tstateStrings holds the decimal form of every T-state index, built
// once so Apply formats nothing on the actuation path.
var tstateStrings = func() [NumTStates]string {
	var out [NumTStates]string
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}()

// Apply implements core.Actuator.
func (a *Actuator) Apply(m int) error {
	if m < 0 {
		m = 0
	}
	if m >= NumTStates {
		m = NumTStates - 1
	}
	return a.fs.WriteFile(a.path, tstateStrings[m])
}

// Current implements core.Actuator.
func (a *Actuator) Current() (int, error) {
	body, err := a.fs.ReadFile(a.path)
	if err != nil {
		return 0, err
	}
	return ParseActive(body)
}

// ParseActive extracts the active T-state from a throttling file body.
func ParseActive(body string) (int, error) {
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "active state:"); ok {
			rest = strings.TrimSpace(rest)
			if len(rest) >= 2 && rest[0] == 'T' {
				v, err := strconv.Atoi(rest[1:])
				if err == nil && v >= 0 && v < NumTStates {
					return v, nil
				}
			}
			return 0, fmt.Errorf("acpi: malformed active state %q", rest)
		}
	}
	return 0, fmt.Errorf("acpi: no active state in throttling file")
}
