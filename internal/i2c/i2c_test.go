package i2c

import (
	"errors"
	"testing"
	"testing/quick"

	"thermctl/internal/rng"
)

func TestAttachAndRead(t *testing.T) {
	b := NewBus()
	rf := NewRegisterFile()
	rf.Set(0x10, 0xAB)
	if err := b.Attach(0x2E, rf); err != nil {
		t.Fatal(err)
	}
	v, err := b.ReadByteData(0x2E, 0x10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xAB {
		t.Errorf("read %#x, want 0xAB", v)
	}
}

func TestNACKForAbsentDevice(t *testing.T) {
	b := NewBus()
	if _, err := b.ReadByteData(0x50, 0); !errors.Is(err, ErrNACK) {
		t.Errorf("read from empty bus: err=%v, want ErrNACK", err)
	}
	if err := b.WriteByteData(0x50, 0, 1); !errors.Is(err, ErrNACK) {
		t.Errorf("write to empty bus: err=%v, want ErrNACK", err)
	}
	st := b.Stats()
	if st.NACKs != 2 {
		t.Errorf("NACKs = %d, want 2", st.NACKs)
	}
}

func TestAttachRejectsDuplicateAnd8Bit(t *testing.T) {
	b := NewBus()
	if err := b.Attach(0x2E, NewRegisterFile()); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(0x2E, NewRegisterFile()); err == nil {
		t.Error("duplicate Attach succeeded")
	}
	if err := b.Attach(0x80, NewRegisterFile()); err == nil {
		t.Error("8-bit address accepted")
	}
}

func TestDetach(t *testing.T) {
	b := NewBus()
	_ = b.Attach(0x2E, NewRegisterFile())
	b.Detach(0x2E)
	if _, err := b.ReadByteData(0x2E, 0); !errors.Is(err, ErrNACK) {
		t.Error("detached device still acknowledges")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := NewBus()
	_ = b.Attach(0x2E, NewRegisterFile())
	if err := quick.Check(func(reg, val uint8) bool {
		if err := b.WriteByteData(0x2E, reg, val); err != nil {
			return false
		}
		got, err := b.ReadByteData(0x2E, reg)
		return err == nil && got == val
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestReadWordLittleEndian(t *testing.T) {
	b := NewBus()
	rf := NewRegisterFile()
	rf.Set(0x28, 0x34)
	rf.Set(0x29, 0x12)
	_ = b.Attach(0x2E, rf)
	w, err := b.ReadWordData(0x2E, 0x28)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0x1234 {
		t.Errorf("word = %#x, want 0x1234", w)
	}
}

func TestScanSorted(t *testing.T) {
	b := NewBus()
	for _, a := range []uint8{0x4C, 0x2E, 0x77} {
		_ = b.Attach(a, NewRegisterFile())
	}
	got := b.Scan()
	want := []uint8{0x2E, 0x4C, 0x77}
	if len(got) != 3 {
		t.Fatalf("Scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scan[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestFaultInjection(t *testing.T) {
	b := NewBus()
	_ = b.Attach(0x2E, NewRegisterFile())
	b.SetFaultInjection(1.0, rng.New(1)) // every transaction fails
	if _, err := b.ReadByteData(0x2E, 0); !errors.Is(err, ErrBusFault) {
		t.Errorf("err = %v, want ErrBusFault", err)
	}
	b.SetFaultInjection(0, nil)
	if _, err := b.ReadByteData(0x2E, 0); err != nil {
		t.Errorf("fault injection disabled but read failed: %v", err)
	}
	if b.Stats().Faults != 1 {
		t.Errorf("Faults = %d, want 1", b.Stats().Faults)
	}
}

func TestPartialFaultRate(t *testing.T) {
	b := NewBus()
	_ = b.Attach(0x2E, NewRegisterFile())
	b.SetFaultInjection(0.3, rng.New(2))
	fails := 0
	for i := 0; i < 1000; i++ {
		if _, err := b.ReadByteData(0x2E, 0); err != nil {
			fails++
		}
	}
	if fails < 200 || fails > 400 {
		t.Errorf("30%% fault rate produced %d/1000 failures", fails)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	b := NewBus()
	_ = b.Attach(0x2E, NewRegisterFile())
	for i := 0; i < 5; i++ {
		_, _ = b.ReadByteData(0x2E, 0)
	}
	for i := 0; i < 3; i++ {
		_ = b.WriteByteData(0x2E, 0, 1)
	}
	st := b.Stats()
	if st.Reads != 5 || st.Writes != 3 {
		t.Errorf("stats = %+v, want 5 reads, 3 writes", st)
	}
}

func TestRegisterFileHooks(t *testing.T) {
	rf := NewRegisterFile()
	calls := 0
	rf.OnRead(0x25, func() uint8 { calls++; return 42 })
	v, _ := rf.ReadReg(0x25)
	if v != 42 || calls != 1 {
		t.Errorf("read hook: v=%d calls=%d", v, calls)
	}
	var wrote uint8
	rf.OnWrite(0x30, func(x uint8) { wrote = x })
	_ = rf.WriteReg(0x30, 77)
	if wrote != 77 || rf.Get(0x30) != 77 {
		t.Errorf("write hook: wrote=%d stored=%d", wrote, rf.Get(0x30))
	}
}

func TestRegisterFileReadOnly(t *testing.T) {
	rf := NewRegisterFile()
	rf.Set(0x3D, 0x68)
	rf.MarkReadOnly(0x3D)
	if err := rf.WriteReg(0x3D, 0); err == nil {
		t.Error("write to read-only register succeeded")
	}
	if rf.Get(0x3D) != 0x68 {
		t.Error("read-only register was modified")
	}
	// Direct Set bypasses protection (device-internal update path).
	rf.Set(0x3D, 0x69)
	if rf.Get(0x3D) != 0x69 {
		t.Error("device-internal Set blocked")
	}
}

func TestConcurrentAccess(t *testing.T) {
	b := NewBus()
	_ = b.Attach(0x2E, NewRegisterFile())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				_ = b.WriteByteData(0x2E, uint8(i), uint8(i))
				_, _ = b.ReadByteData(0x2E, uint8(i))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	st := b.Stats()
	if st.Reads != 8000 || st.Writes != 8000 {
		t.Errorf("concurrent stats = %+v, want 8000/8000", st)
	}
}

func BenchmarkReadByteData(b *testing.B) {
	bus := NewBus()
	_ = bus.Attach(0x2E, NewRegisterFile())
	for i := 0; i < b.N; i++ {
		_, _ = bus.ReadByteData(0x2E, 0x25)
	}
}
