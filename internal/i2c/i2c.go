// Package i2c simulates a register-level I²C/SMBus segment.
//
// The paper's fan controller (an Analog Devices ADT7467) hangs off an i2c
// bus reached through a PCI adapter; the authors wrote a Linux device
// driver that speaks SMBus byte-data transactions to it. This package
// reproduces that wire interface: a Bus multiplexes 7-bit addresses onto
// register-addressable devices, returns NACK errors for absent targets,
// counts transactions, and can inject transient failures so drivers can
// be tested against flaky hardware.
package i2c

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"thermctl/internal/faults"
	"thermctl/internal/rng"
)

// ErrNACK is returned when no device acknowledges the addressed transfer.
var ErrNACK = errors.New("i2c: no acknowledge from device")

// ErrBusFault is returned for injected transient bus failures
// (arbitration loss, glitched clock).
var ErrBusFault = errors.New("i2c: transient bus fault")

// Device is a register-addressable i2c target such as the ADT7467.
// Implementations are called with the bus lock held.
type Device interface {
	// ReadReg returns the value of an 8-bit register.
	ReadReg(reg uint8) (uint8, error)
	// WriteReg sets an 8-bit register.
	WriteReg(reg uint8, val uint8) error
}

// Stats counts bus traffic.
type Stats struct {
	Reads, Writes uint64
	NACKs         uint64
	Faults        uint64
}

// Bus is one i2c segment. Methods are safe for concurrent use: an i2c
// bus is a shared medium and both the host driver and the BMC use it.
type Bus struct {
	mu      sync.Mutex
	devices map[uint8]Device
	stats   Stats
	// inj supplies the current fault state (transient bus faults and NAK
	// bursts); injSrc is the bus's own stream for the probabilistic
	// draws. Both nil by default: no injection.
	inj    *faults.Injector
	injSrc *rng.Source
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{devices: make(map[uint8]Device)}
}

// Attach places dev at the 7-bit address addr. It returns an error if the
// address is already occupied or outside the 7-bit range.
func (b *Bus) Attach(addr uint8, dev Device) error {
	if addr > 0x7f {
		return fmt.Errorf("i2c: address %#x exceeds 7 bits", addr)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.devices[addr]; ok {
		return fmt.Errorf("i2c: address %#x already occupied", addr)
	}
	b.devices[addr] = dev
	return nil
}

// Detach removes the device at addr, if any.
func (b *Bus) Detach(addr uint8) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.devices, addr)
}

// SetFaultInjection makes a fraction rate of transactions fail with
// ErrBusFault, drawing from the given stream. rate 0 (or a nil stream)
// disables injection.
//
// Deprecated: the knob is kept for existing tests only. It is a shim
// over AttachInjector with a pinned faults.Static state; scheduled
// campaigns should attach a faults.Plane injector instead.
func (b *Bus) SetFaultInjection(rate float64, src *rng.Source) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if rate <= 0 {
		b.inj = nil
	} else {
		b.inj = faults.Static(faults.State{I2CFaultRate: rate})
	}
	b.injSrc = src
}

// AttachInjector subscribes the bus to a fault plane: transactions fail
// with ErrBusFault at the injector's I2CFaultRate and NAK at its
// I2CNAKRate, drawn from src (the bus's own stream — sharing it would
// perturb other consumers). Wiring time only.
func (b *Bus) AttachInjector(inj *faults.Injector, src *rng.Source) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inj = inj
	b.injSrc = src
}

// faultLocked draws the injected failure for one transaction, if any.
// Called with b.mu held. Each enabled failure mode consumes exactly one
// draw only while its rate is non-zero, so attaching an idle injector
// never perturbs the stream.
func (b *Bus) faultLocked() error {
	if b.inj == nil || b.injSrc == nil {
		return nil
	}
	st := b.inj.State()
	if st.I2CFaultRate > 0 && b.injSrc.Float64() < st.I2CFaultRate {
		b.stats.Faults++
		return ErrBusFault
	}
	if st.I2CNAKRate > 0 && b.injSrc.Float64() < st.I2CNAKRate {
		b.stats.NACKs++
		return fmt.Errorf("%w (injected)", ErrNACK)
	}
	return nil
}

// ReadByteData performs an SMBus "read byte data" transaction: write the
// register pointer, repeated-start, read one byte.
func (b *Bus) ReadByteData(addr, reg uint8) (uint8, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Reads++
	if err := b.faultLocked(); err != nil {
		return 0, err
	}
	dev, ok := b.devices[addr]
	if !ok {
		b.stats.NACKs++
		return 0, fmt.Errorf("%w (address %#x)", ErrNACK, addr)
	}
	return dev.ReadReg(reg)
}

// WriteByteData performs an SMBus "write byte data" transaction.
func (b *Bus) WriteByteData(addr, reg, val uint8) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Writes++
	if err := b.faultLocked(); err != nil {
		return err
	}
	dev, ok := b.devices[addr]
	if !ok {
		b.stats.NACKs++
		return fmt.Errorf("%w (address %#x)", ErrNACK, addr)
	}
	return dev.WriteReg(reg, val)
}

// ReadWordData reads two consecutive registers as a little-endian word,
// the layout used by the ADT7467's tachometer counters.
func (b *Bus) ReadWordData(addr, reg uint8) (uint16, error) {
	lo, err := b.ReadByteData(addr, reg)
	if err != nil {
		return 0, err
	}
	hi, err := b.ReadByteData(addr, reg+1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// Scan returns the sorted addresses that acknowledge, as `i2cdetect`
// would report.
func (b *Bus) Scan() []uint8 {
	b.mu.Lock()
	defer b.mu.Unlock()
	addrs := make([]uint8, 0, len(b.devices))
	for a := range b.devices {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// RegisterFile is a helper for building devices: a 256-byte register
// space with optional per-register read/write hooks. Devices embed it
// and install hooks for the registers with side effects.
type RegisterFile struct {
	regs      [256]uint8
	readHook  map[uint8]func() uint8
	writeHook map[uint8]func(uint8)
	readOnly  map[uint8]bool
}

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{
		readHook:  make(map[uint8]func() uint8),
		writeHook: make(map[uint8]func(uint8)),
		readOnly:  make(map[uint8]bool),
	}
}

// Set stores a value directly, bypassing hooks and read-only protection.
func (rf *RegisterFile) Set(reg, val uint8) { rf.regs[reg] = val }

// Get loads a value directly, bypassing hooks.
func (rf *RegisterFile) Get(reg uint8) uint8 { return rf.regs[reg] }

// OnRead installs a hook whose result is returned (and stored) when reg
// is read.
func (rf *RegisterFile) OnRead(reg uint8, fn func() uint8) { rf.readHook[reg] = fn }

// OnWrite installs a hook called after a bus write stores to reg.
func (rf *RegisterFile) OnWrite(reg uint8, fn func(uint8)) { rf.writeHook[reg] = fn }

// MarkReadOnly makes bus writes to reg fail, as writes to measurement
// registers do on real silicon.
func (rf *RegisterFile) MarkReadOnly(reg uint8) { rf.readOnly[reg] = true }

// ReadReg implements Device.
func (rf *RegisterFile) ReadReg(reg uint8) (uint8, error) {
	if fn, ok := rf.readHook[reg]; ok {
		rf.regs[reg] = fn()
	}
	return rf.regs[reg], nil
}

// WriteReg implements Device.
func (rf *RegisterFile) WriteReg(reg, val uint8) error {
	if rf.readOnly[reg] {
		return fmt.Errorf("i2c: register %#x is read-only", reg)
	}
	rf.regs[reg] = val
	if fn, ok := rf.writeHook[reg]; ok {
		fn(val)
	}
	return nil
}
