// Package ha exercises the hotalloc analyzer: the Step/OnStep inner
// loop must be allocation-free.
package ha

import (
	"errors"
	"fmt"
	"time"
)

type sink struct{ buf []int }

func consume(v any)              {}
func logf(msg string, vs ...any) {}
func consumePtr(v any)           { _ = v }

var errNak = errors.New("nak")

func apply(m int) error {
	if m < 0 {
		return errNak
	}
	return nil
}
func format(v int) string { return fmt.Sprintf("%d", v) }

type ctl struct {
	out     []int
	last    string
	counter int
	inner   sink
	log     []int
}

// Step with every allocating shape the analyzer knows.
func (c *ctl) Step(dt time.Duration) {
	c.last = fmt.Sprintf("steady") // want `call to fmt.Sprintf formats a new string per round`
	c.last = fmt.Sprint("one")     // want `call to fmt.Sprint formats a new string per round`
	c.out = append(c.out, 1)       // want `append may grow its backing array per round`
	m := make(map[string]int)      // want `make allocates per round`
	_ = m
	p := new(sink) // want `new allocates per round`
	_ = p
	s := &sink{} // want `&.*sink literal escapes to the heap per round`
	_ = s
	xs := []int{1, 2, 3} // want `slice literal allocates per round`
	_ = xs
	c.tick()
}

// tick is reached from Step through ctl.Step; its allocation reports
// the chain.
func (c *ctl) tick() {
	_ = errors.New("hot") // want `call to errors.New constructs a new error per round \(reached via .*Step → .*tick\)`
}

type spawner struct{ out []int }

// Step that builds a closure, spawns a goroutine and boxes arguments.
func (s *spawner) Step(dt time.Duration) {
	f := func() { s.out[0]++ } // want `function literal allocates a closure per round`
	f()
	go s.drain() // want `go statement in hot code allocates a goroutine per round`
	n := len(s.out)
	consume(n)      // want `argument boxes a int into an interface per round`
	logf("grew", n) // want `argument boxes a int into an interface per round`
}

// drain is reached only through a go statement: asynchronous work may
// allocate.
func (s *spawner) drain() {
	s.out = make([]int, 0, 8)
}

type good struct {
	v    int
	dst  []int
	vals []int
}

// Step whose allocations all sit on exempt paths: error-exit branches,
// panic arguments, pointer and constant interface arguments.
func (g *good) Step(dt time.Duration) error {
	if g.v < 0 {
		return fmt.Errorf("negative duty: %d", g.v)
	}
	if err := apply(g.v); err != nil {
		return fmt.Errorf("apply: %w", err)
	}
	if g.v > 1<<20 {
		panic(fmt.Sprintf("runaway duty %d", g.v))
	}
	consumePtr(&g.dst)
	consume(nil)
	consume(3)
	g.dst = g.dst[:0]
	for i, v := range g.vals {
		g.dst = g.dst[:i+1]
		g.dst[i] = v + g.v
	}
	g.v++
	return nil
}

type allowed struct{ log []int }

// Step with a deliberate, annotated rare-path allocation is suppressed.
func (a *allowed) Step(dt time.Duration) {
	if len(a.log) < cap(a.log) {
		a.log = append(a.log, 1) //thermlint:allow hotalloc -- fixture: rare fail-safe event append
	}
}

// notAStep is not reachable from any hot root: cold-path code may
// allocate freely (wiring, setup, reporting).
func notAStep() string {
	xs := make([]int, 4)
	xs = append(xs, 9)
	return fmt.Sprintf("cold %d", xs[0])
}
