package hotalloc_test

import (
	"testing"

	"thermctl/internal/lint/hotalloc"
	"thermctl/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata/ha", hotalloc.Analyzer)
}

// TestHotallocFix round-trips the testdata through ApplyFixes and
// compares against the committed goldens: what `thermlint -fix` leaves
// on disk for the constant fmt.Sprintf/fmt.Sprint calls.
func TestHotallocFix(t *testing.T) {
	linttest.RunFix(t, "testdata/ha", hotalloc.Analyzer)
}
