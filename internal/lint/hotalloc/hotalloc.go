// Package hotalloc flags heap allocation in step-reachable code.
//
// The control plane's scaling budget (ROADMAP item 1) assumes the
// per-round inner loop is allocation-free: one closure or fmt call per
// step turns into garbage-collector pressure multiplied by 100k nodes ×
// 20 rounds/s. The analyzer walks the shared cross-package call graph
// (internal/lint/callgraph) from the hot roots (Step, OnStep, Decide,
// Txn.Apply*) and flags, in every synchronously reachable function:
//
//   - composite literals that escape (`&T{...}`) and slice/map literals;
//   - make, new, and growing append;
//   - per-round formatting and error construction (fmt.Sprintf,
//     fmt.Errorf, errors.New, strconv.Format*, …);
//   - function literals (a closure allocates every time it is built —
//     hoist it to wiring time);
//   - goroutine spawns (per-round go statements allocate a stack);
//   - interface boxing at call sites: a concrete non-pointer value
//     passed as an interface parameter is copied to the heap.
//
// Failure paths are exempt: an `if` branch that exits by returning a
// freshly constructed error is not per-round work (errors are rare and
// already counted by the engine), and arguments of panic calls only run
// when the process is dying. Deliberate rare-path allocations (e.g. a
// fail-safe event log append) carry a scoped
// `//thermlint:allow hotalloc -- reason` directive.
//
// `fmt.Sprintf`/`fmt.Sprint` calls whose result is a compile-time
// constant carry a suggested fix (`thermlint -fix`) replacing the call
// with the literal.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"thermctl/internal/lint"
	"thermctl/internal/lint/callgraph"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocation (escaping literals, append, fmt/errors calls, closures, boxing) in Step-reachable code",
	Run:  run,
}

// allocFuncs maps types.Func.FullName() values to why the call
// allocates per round.
var allocFuncs = map[string]string{
	"fmt.Sprintf":                    "formats a new string",
	"fmt.Sprint":                     "formats a new string",
	"fmt.Sprintln":                   "formats a new string",
	"fmt.Errorf":                     "constructs a new error",
	"fmt.Appendf":                    "may grow its buffer",
	"errors.New":                     "constructs a new error",
	"errors.Join":                    "constructs a new error",
	"strconv.Itoa":                   "formats a new string",
	"strconv.FormatInt":              "formats a new string",
	"strconv.FormatUint":             "formats a new string",
	"strconv.FormatFloat":            "formats a new string",
	"strconv.Quote":                  "formats a new string",
	"strings.Join":                   "builds a new string",
	"strings.Repeat":                 "builds a new string",
	"strings.ToUpper":                "builds a new string",
	"strings.ToLower":                "builds a new string",
	"strings.Split":                  "builds a new slice",
	"strings.Fields":                 "builds a new slice",
	"bytes.Join":                     "builds a new slice",
	"bytes.Clone":                    "copies its input",
	"sort.Slice":                     "boxes its closure and slice",
	"sort.SliceStable":               "boxes its closure and slice",
	"(*strings.Builder).WriteString": "may grow its buffer",
	"(*bytes.Buffer).WriteString":    "may grow its buffer",
	"(*bytes.Buffer).Write":          "may grow its buffer",
}

func run(pass *lint.Pass) error {
	for _, hd := range callgraph.HotDecls(pass) {
		w := &walker{pass: pass, via: hd.Hot.Via()}
		w.inspect(hd.Decl.Body)
	}
	return nil
}

type walker struct {
	pass *lint.Pass
	via  string
}

// inspect walks one hot function body. Error-exit branches and panic
// arguments are skipped (see the package comment).
func (w *walker) inspect(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.pass.Reportf(n.Pos(), "go statement in hot code allocates a goroutine per round%s; run the worker at wiring time", w.via)
			return false
		case *ast.IfStmt:
			if isErrorExit(w.pass.TypesInfo, n.Body) {
				// Walk the init, condition and else branch, not the body.
				if n.Init != nil {
					w.inspect(n.Init)
				}
				w.inspect(n.Cond)
				if n.Else != nil {
					w.inspect(n.Else)
				}
				return false
			}
			return true
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				w.pass.Reportf(n.Pos(), "&%s literal escapes to the heap per round%s; hoist it to wiring time or reuse a field", typeLabel(w.pass.TypesInfo, lit), w.via)
				// The literal's elements may still contain calls worth
				// checking; keep descending.
			}
			return true
		case *ast.CompositeLit:
			tv, ok := w.pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				w.pass.Reportf(n.Pos(), "slice literal allocates per round%s; preallocate at wiring time", w.via)
			case *types.Map:
				w.pass.Reportf(n.Pos(), "map literal allocates per round%s; preallocate at wiring time", w.via)
			}
			return true
		case *ast.FuncLit:
			w.pass.Reportf(n.Pos(), "function literal allocates a closure per round%s; hoist it to wiring time", w.via)
			return true
		case *ast.CallExpr:
			return w.checkCall(n)
		}
		return true
	})
}

// checkCall flags allocating calls; the return value tells ast.Inspect
// whether to descend into the call's children.
func (w *walker) checkCall(call *ast.CallExpr) bool {
	info := w.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make allocates per round%s; preallocate at wiring time", w.via)
			case "new":
				w.pass.Reportf(call.Pos(), "new allocates per round%s; hoist it to wiring time", w.via)
			case "append":
				w.pass.Reportf(call.Pos(), "append may grow its backing array per round%s; preallocate capacity at wiring time", w.via)
			case "panic":
				// Crash path: the argument (often fmt.Sprintf) never
				// runs in a healthy process.
				return false
			}
			return true
		}
	}

	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return true
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return true
	}
	if why, ok := allocFuncs[fn.FullName()]; ok {
		if fix, ok := w.constFormatFix(call, fn); ok {
			w.pass.ReportFix(call.Pos(), fix, "call to %s %s per round%s; precompute the constant", fn.FullName(), why, w.via)
		} else {
			w.pass.Reportf(call.Pos(), "call to %s %s per round%s; hoist it to wiring time or a rare path", fn.FullName(), why, w.via)
		}
		return true
	}
	w.checkBoxing(call, fn)
	return true
}

// constFormatFix builds the suggested fix for fmt.Sprintf/fmt.Sprint
// calls whose value is a compile-time constant: a Sprintf with a
// verb-free format and no arguments, or a Sprint of one string literal,
// is replaced by the literal itself.
func (w *walker) constFormatFix(call *ast.CallExpr, fn *types.Func) (lint.SuggestedFix, bool) {
	name := fn.FullName()
	if name != "fmt.Sprintf" && name != "fmt.Sprint" {
		return lint.SuggestedFix{}, false
	}
	if len(call.Args) != 1 {
		return lint.SuggestedFix{}, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return lint.SuggestedFix{}, false
	}
	if name == "fmt.Sprintf" && strings.Contains(lit.Value, "%") {
		return lint.SuggestedFix{}, false
	}
	return lint.SuggestedFix{
		Message: "replace the constant format call with the string literal",
		Edits: []lint.TextEdit{{
			Pos:     call.Pos(),
			End:     call.End(),
			NewText: lit.Value,
		}},
	}, true
}

// checkBoxing flags concrete non-pointer values passed where the callee
// declares an interface parameter: the value is copied to the heap to
// build the interface word.
func (w *walker) checkBoxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				continue // passing a ready slice; no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := w.pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
			continue // constants and nil are boxed statically
		}
		switch tv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // pointer-shaped: the interface word is the pointer
		}
		w.pass.Reportf(arg.Pos(), "argument boxes a %s into an interface per round%s; pass a pointer kept at wiring time",
			tv.Type.String(), w.via)
	}
}

// isErrorExit reports whether the block ends by returning a freshly
// constructed (non-nil-literal) error — the failure-branch shape whose
// allocations are not per-round work.
func isErrorExit(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	ret, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, res := range ret.Results {
		if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		tv, ok := info.Types[res]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errIface) {
			return true
		}
	}
	return false
}

func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if tv, ok := info.Types[lit]; ok && tv.Type != nil {
		s := tv.Type.String()
		s = strings.ReplaceAll(s, "thermctl/internal/", "")
		return strings.ReplaceAll(s, "thermctl/", "")
	}
	return "composite"
}
