// Package actuatorerr flags silently dropped errors from actuator
// write paths: PWM duty, P-state/frequency, i2c register, hwmon
// attribute and IPMI fan-mode writes.
//
// A dropped actuator error means the controller believes it changed
// the hardware when it did not — the fan keeps its old duty, the CPU
// its old P-state — and the thermal model diverges from the plant with
// no trace in any log. Unlike blanket errcheck, the analyzer also
// rejects the `_ = dev.SetPWM(...)` idiom: discarding an actuator
// error on purpose requires a //thermlint:allow directive with a
// reason.
package actuatorerr

import (
	"go/ast"
	"go/types"
	"regexp"

	"thermctl/internal/lint"
)

// Analyzer is the dropped-actuator-error check.
var Analyzer = &lint.Analyzer{
	Name: "actuatorerr",
	Doc:  "flag dropped error returns from actuator / i2c / hwmon / IPMI write paths",
	Run:  run,
}

// actuatorName matches the write-path function and method names used by
// the repository's actuation layers (and their obvious future
// variants). Only calls that return an error are considered.
var actuatorName = regexp.MustCompile(
	`^(SetPWM|SetPState|SetDuty|SetDutyPercent|SetManual|SetFanDuty|SetFanSpeed|` +
		`SetFanMode|SetTempLimits|SetKHz|SetFrequency|SetGovernor|SetThrottle|` +
		`WriteReg|WriteByteData|WriteWordData|WriteFile|WriteInt|WriteMSR)$`)

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := actuatorCall(pass, call); ok {
						pass.Reportf(call.Pos(),
							"error from %s dropped; actuator writes must be checked", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := actuatorCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(),
						"error from %s dropped by go statement; actuator writes must be checked", name)
				}
			case *ast.DeferStmt:
				if name, ok := actuatorCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(),
						"error from %s dropped by defer; actuator writes must be checked", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags assignments that discard an actuator call's error
// into the blank identifier, including the multi-value form
// `v, _ := dev.ReadModifyWrite(...)`.
func checkAssign(pass *lint.Pass, asg *ast.AssignStmt) {
	// Single call on the RHS: the call's results map positionally onto
	// the LHS. Other shapes (parallel assignment) cannot silently drop
	// a result — each RHS expression is a single value.
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := actuatorCall(pass, call)
	if !ok {
		return
	}
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	for i, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if i < sig.Results().Len() && isErrorType(sig.Results().At(i).Type()) {
			pass.Reportf(asg.Pos(),
				"error from %s assigned to _; actuator writes must be checked", name)
			return
		}
	}
}

// actuatorCall reports whether call is a call to an actuator write
// function that returns an error, and returns its name.
func actuatorCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if !actuatorName.MatchString(id.Name) {
		return "", false
	}
	sig := callSignature(pass, call)
	if sig == nil || sig.Results().Len() == 0 {
		return "", false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return "", false
	}
	return id.Name, true
}

func callSignature(pass *lint.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
