package actuatorerr_test

import (
	"testing"

	"thermctl/internal/lint/actuatorerr"
	"thermctl/internal/lint/linttest"
)

func TestActuatorErr(t *testing.T) {
	linttest.Run(t, "testdata/act", actuatorerr.Analyzer)
}
