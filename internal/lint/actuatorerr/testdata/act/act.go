package act

import "errors"

type dev struct{}

func (dev) SetPWM(v int) error        { return errors.New("nack") }
func (dev) SetPState(i int) error     { return nil }
func (dev) SetDuty(pct float64) error { return nil }
func (dev) WriteReg(r, v uint8) error { return nil }

// SetKHz has a value before the trailing error, like read-modify-write
// actuators.
func (dev) SetKHz(khz int64) (int64, error) { return khz, nil }

// Poke is not an actuator name: dropping its error is errcheck's
// business, not thermlint's.
func (dev) Poke() error { return nil }

// SetLabel matches no actuator pattern either.
func (dev) SetLabel(s string) {}

func bad(d dev) {
	d.SetPWM(50)           // want `error from SetPWM dropped`
	_ = d.SetPState(1)     // want `error from SetPState assigned to _`
	defer d.WriteReg(1, 2) // want `error from WriteReg dropped by defer`
	go d.SetDuty(40)       // want `error from SetDuty dropped by go statement`
}

func badMulti(d dev) int64 {
	v, _ := d.SetKHz(800000) // want `error from SetKHz assigned to _`
	return v
}

func good(d dev) error {
	if err := d.SetPWM(50); err != nil {
		return err
	}
	v, err := d.SetKHz(800000)
	_ = v
	d.Poke()        // non-actuator: ignored
	d.SetLabel("x") // no error result: ignored
	return err
}

func allowed(d dev) {
	_ = d.SetPWM(0) //thermlint:allow actuatorerr -- best-effort spin-down on the shutdown path
}
