package errswallow_test

import (
	"testing"

	"thermctl/internal/lint/errswallow"
	"thermctl/internal/lint/linttest"
)

func TestErrswallow(t *testing.T) {
	linttest.Run(t, "testdata/es", errswallow.Analyzer)
}
