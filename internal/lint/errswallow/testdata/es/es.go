// Package es exercises the errswallow analyzer: errors on the
// Step/OnStep hot path must be counted, escalated, or propagated, never
// silently dropped.
package es

import (
	"errors"
	"time"
)

func read() (float64, error) { return 0, errors.New("dead") }
func apply(m int) error      { return errors.New("nak") }

type ctl struct {
	errs   uint64
	consec int
}

// OnStep with the two forbidden shapes.
func (c *ctl) OnStep(now time.Duration) {
	_, err := read()
	if err != nil { // want `error checked and dropped with a bare return in Step-reachable code`
		return
	}
	_ = apply(3) // want `error discarded with a blank assignment in Step-reachable code`
}

type counted struct {
	errs uint64
}

// OnStep that counts before returning is the sanctioned shape.
func (c *counted) OnStep(now time.Duration) {
	if _, err := read(); err != nil {
		c.errs++
		return
	}
	if err := apply(1); err != nil {
		c.errs++
	}
}

type deep struct{ errs uint64 }

// Step reaching the swallow through a helper reports the chain.
func (d *deep) Step(dt time.Duration) {
	d.helper()
}

func (d *deep) helper() {
	if err := apply(2); err != nil { // want `error checked and dropped with a bare return in Step-reachable code \(reached via .*Step → .*helper\)`
		return
	}
}

type propagating struct{}

// Step propagating the error upward is handling, not swallowing.
func (p *propagating) Step(dt time.Duration) error {
	if err := apply(0); err != nil {
		return err
	}
	_, err := read()
	return err
}

// notAStep is not reachable from any Step/OnStep root: cold-path code
// may drop errors (other tooling owns that).
func notAStep() {
	_ = apply(9)
	if err := apply(8); err != nil {
		return
	}
}

type nonError struct{ p *int }

// OnStep with a non-error nil check: not the analyzer's business.
func (n *nonError) OnStep(now time.Duration) {
	if n.p != nil {
		return
	}
}

type allowed struct{}

// OnStep with a deliberate, annotated drop is suppressed.
func (a *allowed) OnStep(now time.Duration) {
	//thermlint:allow errswallow -- fixture: best-effort side output
	_ = apply(7)
}
