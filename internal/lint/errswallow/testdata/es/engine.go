// Engine/policy-shaped fixtures: a binding's OnStep funnels policy
// decisions through a transaction; actuator errors must flow into the
// transaction's error accounting, never be dropped inside Decide.
package es

import (
	"errors"
	"time"
)

type actuator struct{}

func (actuator) Apply(m int) error { return errors.New("nak") }

type engTxn struct {
	act  actuator
	errs uint64
}

// Apply is the sanctioned funnel: every actuator error is counted.
func (t *engTxn) Apply(slot, mode int) bool {
	if err := t.act.Apply(mode); err != nil {
		t.errs++
		return false
	}
	return true
}

type swallowPolicy struct{ act actuator }

// decide drops the actuator error on the floor — the binding never
// learns, so fail-safe can never escalate.
func (p *swallowPolicy) decide() {
	_ = p.act.Apply(3) // want `error discarded with a blank assignment in Step-reachable code`
}

type binding struct {
	pol swallowPolicy
	tx  engTxn
}

// OnStep reaches the swallow through the policy dispatch.
func (b *binding) OnStep(now time.Duration) {
	b.pol.decide()
	b.tx.Apply(0, 1) // the funnel itself is fine: errors are counted
}
