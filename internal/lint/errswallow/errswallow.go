// Package errswallow forbids silently dropped errors on the control
// hot path: in code reachable from a Step/OnStep method (or a policy
// Decide, or the Txn.Apply funnel), an error must be counted,
// escalated, or propagated — never discarded.
//
// The motivating bug is the controller's historical failure mode: a
// sensor read error handled as `if err != nil { return }` skips the
// round, and a sensor that fails permanently makes the controller skip
// rounds forever while the die cooks. The resilience plane replaces
// that with consecutive-error escalation; this analyzer keeps the
// pattern from creeping back. Two shapes are flagged in hot-reachable
// code:
//
//   - `_ = expr` where expr is an error — discarding an error value
//     (typically `_ = act.Apply(m)` or `_ = err`);
//   - `if err != nil { return }` whose body is exactly one bare return —
//     the check-and-forget shape. Bodies that count, log, escalate, or
//     `return err` are fine.
//
// Reachability is the shared cross-package call graph
// (internal/lint/callgraph) from the hot roots; the chain is reported
// for transitive hits. Deliberate drops are suppressed with
// `//thermlint:allow errswallow -- reason`.
package errswallow

import (
	"go/ast"
	"go/token"
	"go/types"

	"thermctl/internal/lint"
	"thermctl/internal/lint/callgraph"
)

// Analyzer is the swallowed-error check.
var Analyzer = &lint.Analyzer{
	Name: "errswallow",
	Doc:  "forbid discarding errors (`_ = err`, bare `if err != nil { return }`) in Step/OnStep-reachable code; count, escalate, or propagate instead",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, hd := range callgraph.HotDecls(pass) {
		w := &walker{pass: pass, via: hd.Hot.Via()}
		ast.Inspect(hd.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				w.checkAssign(n)
			case *ast.IfStmt:
				w.checkIf(n)
			}
			return true
		})
	}
	return nil
}

type walker struct {
	pass *lint.Pass
	via  string
}

// checkAssign flags `_ = expr` where expr is an error value.
func (w *walker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // x, _ := f() keeps a result; out of scope
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if w.isError(as.Rhs[i]) {
			w.pass.Reportf(as.Pos(),
				"error discarded with a blank assignment in Step-reachable code%s; count it, escalate, or propagate", w.via)
		}
	}
}

// checkIf flags `if err != nil { return }` — an error nil-check whose
// entire consequence is one bare return.
func (w *walker) checkIf(ifs *ast.IfStmt) {
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return
	}
	var errExpr ast.Expr
	switch {
	case isNil(cond.Y):
		errExpr = cond.X
	case isNil(cond.X):
		errExpr = cond.Y
	default:
		return
	}
	if !w.isError(errExpr) {
		return
	}
	if len(ifs.Body.List) != 1 {
		return // the body does something with the error
	}
	ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 0 {
		return // propagating (`return err`) is handling
	}
	w.pass.Reportf(ifs.Pos(),
		"error checked and dropped with a bare return in Step-reachable code%s; count it, escalate, or propagate", w.via)
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isError reports whether e's static type implements the builtin error
// interface.
func (w *walker) isError(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(tv.Type, errIface)
}
