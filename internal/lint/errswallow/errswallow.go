// Package errswallow forbids silently dropped errors on the control
// hot path: in code reachable from a Step/OnStep method, an error must
// be counted, escalated, or propagated — never discarded.
//
// The motivating bug is the controller's historical failure mode: a
// sensor read error handled as `if err != nil { return }` skips the
// round, and a sensor that fails permanently makes the controller skip
// rounds forever while the die cooks. The resilience plane replaces
// that with consecutive-error escalation; this analyzer keeps the
// pattern from creeping back. Two shapes are flagged in Step-reachable
// code:
//
//   - `_ = expr` where expr is an error — discarding an error value
//     (typically `_ = act.Apply(m)` or `_ = err`);
//   - `if err != nil { return }` whose body is exactly one bare return —
//     the check-and-forget shape. Bodies that count, log, escalate, or
//     `return err` are fine.
//
// Like the other hot-path analyzers, reachability is the intra-package
// static call graph rooted at every Step/OnStep method; the chain is
// reported for transitive hits. Deliberate drops are suppressed with
// `//thermlint:allow errswallow -- reason`.
package errswallow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"thermctl/internal/lint"
)

// Analyzer is the swallowed-error check.
var Analyzer = &lint.Analyzer{
	Name: "errswallow",
	Doc:  "forbid discarding errors (`_ = err`, bare `if err != nil { return }`) in Step/OnStep-reachable code; count, escalate, or propagate instead",
	Run:  run,
}

func run(pass *lint.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for fn, fd := range decls {
		if !isStepRoot(fn) {
			continue
		}
		w := &walker{pass: pass, decls: decls, visited: map[*types.Func]bool{}}
		w.walk(fn, fd, []string{methodLabel(fn)})
	}
	return nil
}

// isStepRoot reports whether fn is an entry point of the per-step hot
// path: any method named Step or OnStep.
func isStepRoot(fn *types.Func) bool {
	if fn.Name() != "Step" && fn.Name() != "OnStep" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func methodLabel(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, "thermctl/internal/", "")
	return strings.ReplaceAll(name, "thermctl/", "")
}

type walker struct {
	pass    *lint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// walk flags swallowed errors in fn's body and recurses into statically
// resolvable same-package callees. chain is the call path from the Step
// root, for diagnostics.
func (w *walker) walk(fn *types.Func, fd *ast.FuncDecl, chain []string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	via := ""
	if len(chain) > 1 {
		via = " (reached via " + strings.Join(chain, " → ") + ")"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.checkAssign(n, via)
		case *ast.IfStmt:
			w.checkIf(n, via)
		case *ast.CallExpr:
			w.recurse(n, chain)
		}
		return true
	})
}

// checkAssign flags `_ = expr` where expr is an error value.
func (w *walker) checkAssign(as *ast.AssignStmt, via string) {
	if len(as.Lhs) != len(as.Rhs) {
		return // x, _ := f() keeps a result; out of scope
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if w.isError(as.Rhs[i]) {
			w.pass.Reportf(as.Pos(),
				"error discarded with a blank assignment in Step-reachable code%s; count it, escalate, or propagate", via)
		}
	}
}

// checkIf flags `if err != nil { return }` — an error nil-check whose
// entire consequence is one bare return.
func (w *walker) checkIf(ifs *ast.IfStmt, via string) {
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return
	}
	var errExpr ast.Expr
	switch {
	case isNil(cond.Y):
		errExpr = cond.X
	case isNil(cond.X):
		errExpr = cond.Y
	default:
		return
	}
	if !w.isError(errExpr) {
		return
	}
	if len(ifs.Body.List) != 1 {
		return // the body does something with the error
	}
	ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 0 {
		return // propagating (`return err`) is handling
	}
	w.pass.Reportf(ifs.Pos(),
		"error checked and dropped with a bare return in Step-reachable code%s; count it, escalate, or propagate", via)
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isError reports whether e's static type implements the builtin error
// interface.
func (w *walker) isError(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(tv.Type, errIface)
}

// recurse follows a call into a same-package function declaration.
func (w *walker) recurse(call *ast.CallExpr, chain []string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != w.pass.Pkg {
		return
	}
	if fd, ok := w.decls[fn]; ok {
		w.walk(fn, fd, append(chain, fn.Name()))
	}
}
