package mcb

import "sync"

type rec struct {
	Read func() float64
}

type repo struct {
	mu      sync.Mutex
	rwmu    sync.RWMutex
	sensors map[int]rec
	hook    func()
}

// bad holds the mutex (via defer Unlock) across a user-supplied
// callback — the BMC deadlock shape.
func (r *repo) bad(n int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sensors[n]
	return s.Read() // want `callback s.Read invoked while r.mu is held`
}

// badField invokes a struct-field callback under a read lock.
func (r *repo) badField() {
	r.rwmu.RLock()
	r.hook() // want `callback r.hook invoked while r.rwmu is held`
	r.rwmu.RUnlock()
}

// good copies the record out and releases the lock before calling out.
func (r *repo) good(n int) float64 {
	r.mu.Lock()
	s := r.sensors[n]
	r.mu.Unlock()
	return s.Read()
}

// localClosure calls a closure defined in the same function: that is
// not an injection point and is not flagged.
func (r *repo) localClosure() int {
	total := 0
	add := func(n int) { total += n }
	r.mu.Lock()
	defer r.mu.Unlock()
	add(len(r.sensors))
	return total
}

// methodUnderLock calls a declared method, which the analyzer leaves to
// human review — only function values are injection points.
func (r *repo) methodUnderLock() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size()
}

func (r *repo) size() float64 { return float64(len(r.sensors)) }

// allowed documents a reentrancy-safe hook.
func (r *repo) allowed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hook() //thermlint:allow mutexcallback -- hook is documented reentrancy-safe and never touches r
}

// bare covers parameters: both the mutex and the callback arrive as
// arguments.
func bare(mu *sync.Mutex, cb func()) {
	mu.Lock()
	cb() // want `callback cb invoked while mu is held`
	mu.Unlock()
	cb() // released: fine
}
