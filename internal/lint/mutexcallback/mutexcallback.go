// Package mutexcallback flags invoking a user-supplied callback while
// a sync.Mutex or sync.RWMutex is held.
//
// The shape is the classic BMC deadlock: a sensor repository locks its
// mutex, then calls a SensorReader closure that re-enters the
// repository (or another subsystem that eventually needs the same
// lock). internal/ipmi deliberately copies the record out and releases
// the lock before invoking Read; this analyzer keeps it — and every
// future callback-holding structure — that way.
//
// A "callback" is a call through a value of function type that is not
// a declared function or method and not a closure defined locally in
// the same function body: struct fields, parameters and package
// variables of function type are exactly the injection points users
// control.
package mutexcallback

import (
	"go/ast"
	"go/types"

	"thermctl/internal/lint"
)

// Analyzer is the callback-under-lock check.
var Analyzer = &lint.Analyzer{
	Name: "mutexcallback",
	Doc:  "flag user-supplied callbacks invoked while a sync mutex is held",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks one function body in source order, tracking which
// mutexes are held. The tracking is lexical and flow-insensitive
// across branches — conservative in the right direction for a gate:
// a lock taken in an if-branch stays "held" for the rest of the
// function unless a matching unlock appears.
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	// Closures defined locally in this function are not user-supplied;
	// collect the identifiers they are bound to.
	local := localClosures(pass, fd)

	held := map[string]bool{} // lock expression text → held
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if recv, op, ok := lockOp(pass, call); ok {
						switch op {
						case "Lock", "RLock":
							held[recv] = true
						case "Unlock", "RUnlock":
							delete(held, recv)
						}
						return false
					}
				}
			case *ast.DeferStmt:
				if recv, op, ok := lockOp(pass, n.Call); ok {
					// defer mu.Unlock() releases only at return: the
					// lock stays held for the remainder of the body.
					_ = recv
					_ = op
					return false
				}
			case *ast.FuncLit:
				// A nested closure body executes later (unless invoked
				// immediately, in which case the CallExpr case has
				// already recorded the lock state); analyze it with the
				// current held set — being called under the lock is the
				// common case for the closures this repo passes around.
				return true
			case *ast.CallExpr:
				if len(held) > 0 {
					if name, ok := callbackCall(pass, n, local); ok {
						pass.Reportf(n.Pos(),
							"callback %s invoked while %s is held; release the lock before calling out (deadlock risk)",
							name, anyKey(held))
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
}

// anyKey returns one held-lock label for the diagnostic.
func anyKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockOp recognizes calls of the form x.Lock / x.RLock / x.Unlock /
// x.RUnlock where x is a sync.Mutex or sync.RWMutex (directly, via
// pointer, or as an embedded field) and returns the receiver's source
// text and the operation name.
func lockOp(pass *lint.Pass, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, okFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprText(sel.X), sel.Sel.Name, true
}

// exprText renders a (small) receiver expression as a stable key:
// "b.mu", "fs.mu". Falls back to a placeholder for exotic shapes.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return exprText(e.X)
	default:
		return "<lock>"
	}
}

// callbackCall reports whether call invokes a user-suppliable function
// value: a variable, parameter, struct field or package variable of
// function type — excluding declared functions/methods, type
// conversions, and closures defined locally in this function.
func callbackCall(pass *lint.Pass, call *ast.CallExpr, local map[types.Object]bool) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		v, ok := obj.(*types.Var)
		if !ok || local[obj] {
			return "", false
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return "", false
		}
		return fun.Name, true
	case *ast.SelectorExpr:
		// Method calls resolve Sel to *types.Func; field accesses of
		// function type resolve to *types.Var.
		obj := pass.TypesInfo.Uses[fun.Sel]
		v, ok := obj.(*types.Var)
		if !ok {
			return "", false
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return "", false
		}
		return exprText(fun), true
	default:
		return "", false
	}
}

// localClosures returns the objects of identifiers that are assigned a
// function literal anywhere in fd — locally defined helpers, not
// injected callbacks.
func localClosures(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if _, ok := rhs.(*ast.FuncLit); ok && i < len(n.Lhs) {
					add(n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if _, ok := rhs.(*ast.FuncLit); ok && i < len(n.Names) {
					add(n.Names[i])
				}
			}
		}
		return true
	})
	return out
}
