package mutexcallback_test

import (
	"testing"

	"thermctl/internal/lint/linttest"
	"thermctl/internal/lint/mutexcallback"
)

func TestMutexCallback(t *testing.T) {
	linttest.Run(t, "testdata/mcb", mutexcallback.Analyzer)
}
