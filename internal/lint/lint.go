// Package lint is a miniature static-analysis framework for this
// repository's domain-specific invariants: simulation determinism,
// non-blocking control loops, checked actuator writes, and
// callback-under-lock deadlock shapes.
//
// It deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer / Pass / Diagnostic) so the analyzers could be ported to a
// multichecker verbatim, but it is self-contained: the build
// environment for this repository is hermetic (no module proxy), so
// the framework is built only on the standard library's go/ast,
// go/types and go/importer packages.
//
// Findings can be suppressed with an allow directive placed on the
// flagged line or alone on the line directly above it:
//
//	//thermlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory: a directive without one is itself reported
// (under the analyzer name "directive") and suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description, shown by `thermlint -help`.
	Doc string
	// AppliesTo, when non-nil, restricts the driver to packages whose
	// import path it accepts. Tests bypass it and exercise Run directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked representation to
// an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics, sorted by position: allow directives have been
// applied, and malformed directives reported. AppliesTo is NOT
// consulted here — that is driver policy (see Driver.Run).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = applyDirectives(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// directive is one parsed //thermlint:allow comment.
type directive struct {
	pos       token.Position
	analyzers map[string]bool
	hasReason bool
	// alone reports whether the comment is the only thing on its line,
	// in which case it covers the following line instead.
	alone bool
}

const directivePrefix = "thermlint:allow"

// parseDirectives extracts the allow directives of every file.
func parseDirectives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				names, reason, found := strings.Cut(rest, "--")
				d := directive{
					pos:       pkg.Fset.Position(c.Pos()),
					analyzers: map[string]bool{},
					hasReason: found && strings.TrimSpace(reason) != "",
				}
				for _, n := range strings.FieldsFunc(names, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					d.analyzers[n] = true
				}
				d.alone = d.pos.Column == 1 || onlyCommentOnLine(pkg, c)
				out = append(out, d)
			}
		}
	}
	return out
}

// onlyCommentOnLine reports whether c starts its line (ignoring
// indentation), i.e. there is no code before it.
func onlyCommentOnLine(pkg *Package, c *ast.Comment) bool {
	pos := pkg.Fset.Position(c.Pos())
	tf := pkg.Fset.File(c.Pos())
	if tf == nil {
		return false
	}
	lineStart := tf.LineStart(pos.Line)
	// The file's source is not retained; approximate by checking that
	// no declaration/statement token position falls between the line
	// start and the comment. Walking every file token is overkill —
	// instead we compare columns: a comment at column 1..8 on its own
	// line is treated as standalone, and trailing comments (after code)
	// start at higher columns in gofmt'd code. To stay exact we walk
	// the AST for nodes on the same line before the comment.
	for _, f := range pkg.Files {
		if pkg.Fset.File(f.Pos()) != tf {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || found {
				return false
			}
			if n.Pos() >= lineStart && n.Pos() < c.Pos() && pkg.Fset.Position(n.Pos()).Line == pos.Line {
				switch n.(type) {
				case *ast.Comment, *ast.CommentGroup, *ast.File:
				default:
					found = true
				}
				return false
			}
			return true
		})
		if found {
			return false
		}
	}
	return true
}

// applyDirectives filters diags through the allow directives and
// appends a "directive" diagnostic for each malformed one.
func applyDirectives(pkg *Package, diags []Diagnostic) []Diagnostic {
	dirs := parseDirectives(pkg)
	// allowed[file][line][analyzer]
	allowed := map[string]map[int]map[string]bool{}
	add := func(file string, line int, names map[string]bool) {
		if allowed[file] == nil {
			allowed[file] = map[int]map[string]bool{}
		}
		if allowed[file][line] == nil {
			allowed[file][line] = map[string]bool{}
		}
		for n := range names {
			allowed[file][line][n] = true
		}
	}
	var out []Diagnostic
	for _, d := range dirs {
		if !d.hasReason {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  "thermlint:allow directive is missing its '-- reason'; it suppresses nothing",
			})
			continue
		}
		if len(d.analyzers) == 0 {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  "thermlint:allow directive names no analyzers",
			})
			continue
		}
		line := d.pos.Line
		add(d.pos.Filename, line, d.analyzers)
		if d.alone {
			add(d.pos.Filename, line+1, d.analyzers)
		}
	}
	for _, dg := range diags {
		if m := allowed[dg.Pos.Filename]; m != nil && m[dg.Pos.Line][dg.Analyzer] {
			continue
		}
		out = append(out, dg)
	}
	return out
}
