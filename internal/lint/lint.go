// Package lint is a miniature static-analysis framework for this
// repository's domain-specific invariants: simulation determinism,
// non-blocking control loops, checked actuator writes, and
// callback-under-lock deadlock shapes.
//
// It deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer / Pass / Diagnostic) so the analyzers could be ported to a
// multichecker verbatim, but it is self-contained: the build
// environment for this repository is hermetic (no module proxy), so
// the framework is built only on the standard library's go/ast,
// go/types and go/importer packages.
//
// Findings can be suppressed with an allow directive placed on the
// flagged line or alone on the line directly above it:
//
//	//thermlint:allow <analyzer>[,<analyzer>...] -- <reason>
//	//thermlint:allow -- <reason>
//
// The scoped form suppresses only the named analyzers; the bare form
// (no analyzer names) suppresses every analyzer on the line. The reason
// is mandatory in both forms: a directive without one is itself
// reported (under the analyzer name "directive") and suppresses
// nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description, shown by `thermlint -help`.
	Doc string
	// AppliesTo, when non-nil, restricts the driver to packages whose
	// import path it accepts. Tests bypass it and exercise Run directly.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Program is the whole set of packages loaded for one lint run. It is
// the shared substrate for interprocedural analyses: the call-graph
// layer (internal/lint/callgraph) and the unit-tag table both key their
// caches on the *Program identity.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds every loaded package, sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package
}

// NewProgram assembles a program from loaded packages sharing one
// file set.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{Fset: fset, Pkgs: pkgs, byPath: map[string]*Package{}}
	for _, p := range pkgs {
		prog.byPath[p.Path] = p
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog
}

// Package returns the loaded package with the given import path, or
// nil.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// Pass carries one package's parsed and type-checked representation to
// an analyzer, plus the whole-program view for interprocedural checks.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole program this package was loaded into. Never nil:
	// single-package runs get a singleton program.
	Prog *Program

	diags *[]Diagnostic
}

// TextEdit is one replacement of the source range [Pos, End) with
// NewText, in the pass's file set.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// SuggestedFix is one automatic remediation for a diagnostic: a set of
// textual edits applied together.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Edit is a resolved TextEdit: byte offsets into a named file.
type Edit struct {
	File       string
	Start, End int
	NewText    string
}

// Fix is a resolved SuggestedFix, carried on the Diagnostic.
type Fix struct {
	Message string
	Edits   []Edit
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fixes holds the suggested remediations (usually zero or one).
	Fixes []Fix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a suggested fix. Edits
// are resolved to byte offsets immediately, so appliers need only the
// diagnostics.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	rf := Fix{Message: fix.Message}
	for _, e := range fix.Edits {
		start := p.Fset.Position(e.Pos)
		end := p.Fset.Position(e.End)
		rf.Edits = append(rf.Edits, Edit{
			File:    start.Filename,
			Start:   start.Offset,
			End:     end.Offset,
			NewText: e.NewText,
		})
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []Fix{rf},
	})
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics, sorted by position: allow directives have been
// applied, and malformed directives reported. AppliesTo is NOT
// consulted here — that is driver policy (see Driver.Run). A nil prog
// wraps pkg in a singleton program.
func Run(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if prog == nil {
		prog = NewProgram(pkg.Fset, []*Package{pkg})
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = applyDirectives(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// directive is one parsed //thermlint:allow comment.
type directive struct {
	pos       token.Position
	analyzers map[string]bool
	hasReason bool
	// alone reports whether the comment is the only thing on its line,
	// in which case it covers the following line instead.
	alone bool
}

const directivePrefix = "thermlint:allow"

// parseDirectives extracts the allow directives of every file.
func parseDirectives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				names, reason, found := strings.Cut(rest, "--")
				d := directive{
					pos:       pkg.Fset.Position(c.Pos()),
					analyzers: map[string]bool{},
					hasReason: found && strings.TrimSpace(reason) != "",
				}
				for _, n := range strings.FieldsFunc(names, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					d.analyzers[n] = true
				}
				d.alone = d.pos.Column == 1 || onlyCommentOnLine(pkg, c)
				out = append(out, d)
			}
		}
	}
	return out
}

// onlyCommentOnLine reports whether c starts its line (ignoring
// indentation), i.e. there is no code before it.
func onlyCommentOnLine(pkg *Package, c *ast.Comment) bool {
	pos := pkg.Fset.Position(c.Pos())
	tf := pkg.Fset.File(c.Pos())
	if tf == nil {
		return false
	}
	lineStart := tf.LineStart(pos.Line)
	// The file's source is not retained; approximate by checking that
	// no declaration/statement token position falls between the line
	// start and the comment. Walking every file token is overkill —
	// instead we compare columns: a comment at column 1..8 on its own
	// line is treated as standalone, and trailing comments (after code)
	// start at higher columns in gofmt'd code. To stay exact we walk
	// the AST for nodes on the same line before the comment.
	for _, f := range pkg.Files {
		if pkg.Fset.File(f.Pos()) != tf {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || found {
				return false
			}
			if n.Pos() >= lineStart && n.Pos() < c.Pos() && pkg.Fset.Position(n.Pos()).Line == pos.Line {
				switch n.(type) {
				case *ast.Comment, *ast.CommentGroup, *ast.File:
				default:
					found = true
				}
				return false
			}
			return true
		})
		if found {
			return false
		}
	}
	return true
}

// applyDirectives filters diags through the allow directives and
// appends a "directive" diagnostic for each malformed one.
func applyDirectives(pkg *Package, diags []Diagnostic) []Diagnostic {
	dirs := parseDirectives(pkg)
	// allowed[file][line][analyzer]
	allowed := map[string]map[int]map[string]bool{}
	add := func(file string, line int, names map[string]bool) {
		if allowed[file] == nil {
			allowed[file] = map[int]map[string]bool{}
		}
		if allowed[file][line] == nil {
			allowed[file][line] = map[string]bool{}
		}
		for n := range names {
			allowed[file][line][n] = true
		}
	}
	var out []Diagnostic
	for _, d := range dirs {
		if !d.hasReason {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  "thermlint:allow directive is missing its '-- reason'; it suppresses nothing",
			})
			continue
		}
		if len(d.analyzers) == 0 {
			// Bare form: suppress every analyzer on the covered line(s).
			d.analyzers = map[string]bool{allowAll: true}
		}
		line := d.pos.Line
		add(d.pos.Filename, line, d.analyzers)
		if d.alone {
			add(d.pos.Filename, line+1, d.analyzers)
		}
	}
	for _, dg := range diags {
		if m := allowed[dg.Pos.Filename]; m != nil && (m[dg.Pos.Line][dg.Analyzer] || m[dg.Pos.Line][allowAll]) {
			continue
		}
		out = append(out, dg)
	}
	return out
}

// allowAll is the internal marker for a bare allow directive. The "*"
// name cannot collide with a real analyzer (names are identifiers).
const allowAll = "*"

// ApplyFixes merges the suggested fixes of diags into their files'
// current on-disk content and returns the new content per file.
// Overlapping edits are resolved first-come (by diagnostic order);
// later conflicting fixes are dropped and reported in skipped.
func ApplyFixes(diags []Diagnostic) (changed map[string][]byte, skipped []Diagnostic, err error) {
	type span struct{ start, end int }
	taken := map[string][]span{}
	edits := map[string][]Edit{}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		conflict := false
		for _, e := range fix.Edits {
			for _, s := range taken[e.File] {
				if e.Start < s.end && s.start < e.End {
					conflict = true
				}
			}
		}
		if conflict {
			skipped = append(skipped, d)
			continue
		}
		for _, e := range fix.Edits {
			taken[e.File] = append(taken[e.File], span{e.Start, e.End})
			edits[e.File] = append(edits[e.File], e)
		}
	}
	changed = map[string][]byte{}
	for file, es := range edits {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		sort.Slice(es, func(i, j int) bool { return es[i].Start > es[j].Start })
		for _, e := range es {
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return nil, nil, fmt.Errorf("lint: fix edit out of range in %s [%d,%d)", file, e.Start, e.End)
			}
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
		}
		changed[file] = src
	}
	return changed, skipped, nil
}

// WriteFixes writes each fixed file atomically: the new content lands
// in a temp file in the same directory and replaces the original with
// a rename, so a crash mid-run never leaves a half-written source file.
func WriteFixes(changed map[string][]byte) error {
	files := make([]string, 0, len(changed))
	for f := range changed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		tmp, err := os.CreateTemp(filepath.Dir(file), ".thermlint-fix-*")
		if err != nil {
			return fmt.Errorf("lint: writing fixes: %w", err)
		}
		if _, err := tmp.Write(changed[file]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("lint: writing fixes: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("lint: writing fixes: %w", err)
		}
		if err := os.Rename(tmp.Name(), file); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("lint: writing fixes: %w", err)
		}
	}
	return nil
}

// Diff renders a minimal old→new hunk for one fixed file: the common
// prefix and suffix lines are trimmed and the changed middle printed
// with -/+ markers. Good enough for `-fix -diff` dry runs; not a patch
// format.
func Diff(name string, oldSrc, newSrc []byte) string {
	oldLines := strings.SplitAfter(string(oldSrc), "\n")
	newLines := strings.SplitAfter(string(newSrc), "\n")
	pre := 0
	for pre < len(oldLines) && pre < len(newLines) && oldLines[pre] == newLines[pre] {
		pre++
	}
	oldTail, newTail := len(oldLines), len(newLines)
	for oldTail > pre && newTail > pre && oldLines[oldTail-1] == newLines[newTail-1] {
		oldTail--
		newTail--
	}
	if pre == oldTail && pre == newTail {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s\n@@ line %d @@\n", name, name, pre+1)
	for _, l := range oldLines[pre:oldTail] {
		b.WriteString("-" + strings.TrimSuffix(l, "\n") + "\n")
	}
	for _, l := range newLines[pre:newTail] {
		b.WriteString("+" + strings.TrimSuffix(l, "\n") + "\n")
	}
	return b.String()
}
