package metricsafe_test

import (
	"testing"

	"thermctl/internal/lint/linttest"
	"thermctl/internal/lint/metricsafe"
)

func TestMetricsafe(t *testing.T) {
	linttest.Run(t, "testdata/ms", metricsafe.Analyzer)
}
