// Package metricsafe verifies the metrics registry's wiring/update
// split: metric registration never happens in Step-reachable code.
//
// The internal/metrics package keeps its hot path cheap by splitting
// the API in two. Registration (Registry.NewCounter / NewGauge /
// NewHistogram) takes the registry mutex, validates names and panics on
// misuse — it is wiring-time code, meant to run once while a component
// is being assembled. Updates (Counter.Inc, Gauge.Set,
// Histogram.Observe) are lock-free atomics, safe at any frequency.
// Registering from inside a simulation step would take the registry
// lock inside the lock-step loop, grow the registry without bound, and
// turn a validation panic into a mid-run crash — so the analyzer walks
// the intra-package call graph rooted at every Step/OnStep method and
// flags registration calls it can reach, reporting the call chain.
package metricsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"thermctl/internal/lint"
)

// Analyzer is the registration-placement check.
var Analyzer = &lint.Analyzer{
	Name: "metricsafe",
	Doc:  "forbid metric registration in code reachable from Step/OnStep; register at wiring time, update on the hot path",
	Run:  run,
}

// registrationMethods are the Registry methods that register (as
// opposed to update) a metric.
var registrationMethods = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
}

func run(pass *lint.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for fn, fd := range decls {
		if !isStepRoot(fn) {
			continue
		}
		w := &walker{pass: pass, decls: decls, visited: map[*types.Func]bool{}}
		w.walk(fn, fd, []string{methodLabel(fn)})
	}
	return nil
}

// isStepRoot reports whether fn is an entry point of the per-step hot
// path: any method named Step or OnStep. The signatures vary (Node.Step
// takes a Duration and returns retired work, Controller.OnStep takes
// the current time), so the name alone defines the root set.
func isStepRoot(fn *types.Func) bool {
	if fn.Name() != "Step" && fn.Name() != "OnStep" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func methodLabel(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, "thermctl/internal/", "")
	return strings.ReplaceAll(name, "thermctl/", "")
}

type walker struct {
	pass    *lint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// walk inspects fn's body for registration calls and recurses into
// statically resolvable same-package callees. chain is the call path
// from the Step root, for diagnostics.
func (w *walker) walk(fn *types.Func, fd *ast.FuncDecl, chain []string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	via := ""
	if len(chain) > 1 {
		via = " (reached via " + strings.Join(chain, " → ") + ")"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.checkCall(call, chain, via)
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, chain []string, via string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if isRegistration(fn) {
		w.pass.Reportf(call.Pos(),
			"metric registration %s in Step-reachable code%s; register at wiring time and only update handles on the hot path",
			fn.Name(), via)
		return
	}
	if fn.Pkg() != w.pass.Pkg {
		return // cross-package static analysis stops at the boundary
	}
	if fd, ok := w.decls[fn]; ok {
		w.walk(fn, fd, append(chain, fn.Name()))
	}
}

// isRegistration reports whether fn is a Registry registration method:
// either the canonical internal/metrics Registry by import path, or —
// structurally — any method named New{Counter,Gauge,Histogram} whose
// receiver's named type is called Registry.
func isRegistration(fn *types.Func) bool {
	if !registrationMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	// Any type named Registry qualifies: the canonical
	// internal/metrics one, and — structurally — registry-shaped types
	// elsewhere (the stdlib-only lint fixtures, future registries),
	// which are held to the same contract.
	return named.Obj().Name() == "Registry"
}
