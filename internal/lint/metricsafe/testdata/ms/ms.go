// Package ms exercises the metricsafe analyzer. It defines a local
// registry shaped like internal/metrics.Registry (the fixtures may
// import only the standard library); the analyzer matches it
// structurally.
package ms

import "time"

type Counter struct{ v uint64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

type Registry struct{ names []string }

func (r *Registry) NewCounter(name string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

func (r *Registry) NewGauge(name string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

func (r *Registry) NewHistogram(name string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

type ctl struct {
	reg    *Registry
	rounds *Counter
}

// OnStep registering directly and through a helper: both are flagged,
// the transitive one with its call chain.
func (c *ctl) OnStep(now time.Duration) {
	bad := c.reg.NewCounter("rounds") // want `metric registration NewCounter in Step-reachable code`
	bad.Inc()
	c.lazyInit()
	c.rounds.Inc() // updates are the hot-path API and always fine
}

func (c *ctl) lazyInit() {
	if c.rounds == nil {
		c.rounds = c.reg.NewGauge("lazy") // want `metric registration NewGauge in Step-reachable code \(reached via .*OnStep → lazyInit\)`
	}
}

type model struct {
	reg  *Registry
	hist *Counter
}

// Step is a root too (node models name their per-step entry Step).
func (m *model) Step(dt time.Duration) {
	m.hist = m.reg.NewHistogram("lat") // want `metric registration NewHistogram in Step-reachable code`
}

type good struct {
	rounds *Counter
}

// Wire registers at wiring time — not a Step root, not reachable from
// one, so registration is fine here.
func (g *good) Wire(reg *Registry) {
	g.rounds = reg.NewCounter("rounds")
}

func (g *good) OnStep(now time.Duration) {
	g.rounds.Inc()
}

// NewCounter as a free function (no Registry receiver) is not
// registration.
func NewCounter() *Counter { return &Counter{} }

type freeFunc struct{ c *Counter }

func (f *freeFunc) OnStep(now time.Duration) {
	f.c = NewCounter()
}

type allowed struct{ reg *Registry }

func (a *allowed) OnStep(now time.Duration) {
	//thermlint:allow metricsafe -- fixture: suppression must work for deliberate wiring-in-step
	_ = a.reg.NewCounter("suppressed")
}
