// Engine/policy-shaped fixtures: bindings expose InstrumentMetrics for
// wiring time; registering lazily inside the binding's OnStep (or a
// policy hook it dispatches to) is the split the analyzer enforces.
package ms

import "time"

type policyMetrics struct {
	reg       *Registry
	fallbacks *Counter
}

type engineBinding struct {
	reg    *Registry
	rounds *Counter
	pm     policyMetrics
}

// InstrumentMetrics at wiring time is the sanctioned shape.
func (b *engineBinding) InstrumentMetrics(reg *Registry) {
	b.rounds = reg.NewCounter("engine_rounds")
	b.pm.fallbacks = reg.NewCounter("policy_fallbacks")
}

// OnStep registering a policy counter on first use: flagged through the
// hook dispatch chain.
func (b *engineBinding) OnStep(now time.Duration) {
	b.rounds.Inc()
	b.onEscalate()
}

func (b *engineBinding) onEscalate() {
	if b.pm.fallbacks == nil {
		b.pm.fallbacks = b.reg.NewCounter("lazy_fallbacks") // want `metric registration NewCounter in Step-reachable code \(reached via .*OnStep → onEscalate\)`
	}
	b.pm.fallbacks.Inc()
}
