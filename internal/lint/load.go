package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("thermctl/internal/fan").
	Path string
	// Dir is the directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module from source,
// resolving standard-library imports through go/importer's source
// importer and module-internal imports recursively. It needs no module
// proxy, no export data and no build cache, which keeps thermlint
// usable in hermetic build environments.
type Loader struct {
	fset       *token.FileSet
	modulePath string
	moduleDir  string
	std        types.ImporterFrom
	pkgs       map[string]*Package // import path → loaded package
	loading    map[string]bool     // cycle guard
}

// NewLoader returns a loader for the module rooted at moduleDir with
// the given module path. An empty modulePath loads stand-alone package
// directories that import only the standard library (the linttest
// case).
func NewLoader(modulePath, moduleDir string) *Loader {
	// Force a pure-Go view of the standard library: the source importer
	// cannot preprocess cgo files, and packages like net have complete
	// Go fallbacks.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		modulePath: modulePath,
		moduleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps an import path inside the module to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.modulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

// Load parses and type-checks the package with the given module import
// path (or, with an empty module path, treats path as a directory).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := path
	if l.modulePath != "" {
		dir = l.dirFor(path)
	}
	p, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir parses and type-checks the sources in dir as the package with
// the given import path, without consulting the module mapping. It is
// the entry point for test fixtures.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	p, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// buildCtx is the build context used to honor build constraints when
// listing sources. Cgo is off to match the loader's pure-Go view of the
// world (see NewLoader).
var buildCtx = func() build.Context {
	c := build.Default
	c.CgoEnabled = false
	return c
}()

// goSources lists the non-test Go files of dir that survive build
// constraints (//go:build lines and GOOS/GOARCH file suffixes for the
// host platform), sorted. A file excluded by its constraints is
// invisible to the loader, exactly as it is to the go tool.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		match, err := buildCtx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages walks the module rooted at moduleDir and returns the
// import paths of every package containing Go sources, sorted.
// testdata trees, hidden directories and underscore-prefixed
// directories are skipped, as the go tool does.
func ModulePackages(modulePath, moduleDir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(moduleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goSources(p)
			if err != nil {
				return err
			}
			if len(names) == 0 {
				return nil
			}
			rel, err := filepath.Rel(moduleDir, p)
			if err != nil {
				return err
			}
			if rel == "." {
				out = append(out, modulePath)
			} else {
				out = append(out, modulePath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// ModuleRoot walks upward from dir to the nearest go.mod and returns
// the module path and root directory.
func ModuleRoot(dir string) (modulePath, moduleDir string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}
