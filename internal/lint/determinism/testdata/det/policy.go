// Engine/policy-shaped fixtures: the control engine's bindings and
// policies run inside the deterministic simulation loop, so a policy's
// Decide must not consult the wall clock for cooldowns, and any map
// keyed per-slot or per-lane state must be walked in sorted order.
package det

import (
	"sort"
	"time"
)

type txn struct{ applied int }

func (t *txn) Apply(slot, mode int) bool { t.applied++; return true }

// badPolicy times its cooldown off the wall clock and ranges a map of
// slot state — both nondeterministic under replay.
type badPolicy struct {
	lastMove time.Time
	slots    map[string]int
}

func (p *badPolicy) Decide(tx *txn) {
	if time.Since(p.lastMove) < time.Second { // want `time.Since reads or waits on the wall clock`
		return
	}
	p.lastMove = time.Now()       // want `time.Now reads or waits on the wall clock`
	for _, idx := range p.slots { // want `map iteration order is nondeterministic`
		tx.Apply(idx, idx+1)
	}
}

// goodPolicy keys its cooldown off the simulated round counter and
// walks its slots through a sorted key slice.
type goodPolicy struct {
	cooldown int
	slots    map[string]int
}

func (p *goodPolicy) Decide(tx *txn) {
	if p.cooldown > 0 {
		p.cooldown--
		return
	}
	names := make([]string, 0, len(p.slots))
	for name := range p.slots {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		tx.Apply(i, p.slots[name])
	}
}
