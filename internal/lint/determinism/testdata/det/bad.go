package det

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time.Now reads or waits on the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads or waits on the wall clock`
	return time.Since(start)     // want `time.Since reads or waits on the wall clock`
}

func globalRand() int {
	return rand.Intn(8) // want `math/rand.Intn uses the global math/rand source`
}

func mapOrdered(m map[string]float64) {
	for k, v := range m { // want `map iteration order is nondeterministic`
		fmt.Println(k, v)
	}
}

func collectedButNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}
