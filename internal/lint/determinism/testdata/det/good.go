package det

import (
	"math/rand"
	"sort"
	"time"
)

// seededRand uses explicit constructors, never the global source.
func seededRand() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

// sortedKeys is the canonical deterministic map walk: collect, sort,
// then range the slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rekey copies one map into another — order cannot be observed.
func rekey(m map[string]time.Duration) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, d := range m {
		out[k] = int64(d)
	}
	return out
}

// allowedWallClock documents a deliberate wall-clock read.
func allowedWallClock() time.Time {
	//thermlint:allow determinism -- startup banner timestamp, not simulation state
	return time.Now()
}

func allowedInline() {
	time.Sleep(time.Microsecond) //thermlint:allow determinism -- test fixture pacing, outside the sim loop
}
