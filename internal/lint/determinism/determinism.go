// Package determinism flags constructs that break bit-for-bit
// reproducibility of the simulation: wall-clock time, the global
// math/rand source, and ranging over maps (whose iteration order is
// randomized by the runtime).
//
// The simulator must be driven only by internal/simclock and
// internal/rng — the paper's experiments (Δt_L1/Δt_L2 history windows,
// the Pp→mode mapping of Eq. (1)) are validated against exact traces,
// and a single wall-clock read or map-ordered output makes runs
// uncomparable.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"thermctl/internal/lint"
)

// Analyzer is the determinism check.
var Analyzer = &lint.Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock time, global math/rand and map-iteration-ordered effects in simulation packages",
	AppliesTo: InScope,
	Run:       run,
}

// scopePrefixes are the import-path prefixes (after "thermctl/") the
// driver applies this analyzer to: the deterministic simulation core,
// the scenario layer (whose wiring order fixes metric identity,
// controller attachment order, and — through the workload plane's
// spec factory and extends composition — which seeded generator every
// node gets), the workload generator library itself (a per-node
// Utilization stream must be a pure function of seed and time), and
// the experiment/clustersim binaries whose outputs are compared
// trace-for-trace. Device emulation (i2c, ipmi, hwmon, adt7467) and
// offline tooling (trace, lint) are excluded; they are either
// exercised behind the deterministic core or post-process its outputs
// with their own sorting.
var scopePrefixes = []string{
	"internal/acpi",
	"internal/baseline",
	"internal/cluster",
	"internal/config",
	"internal/core",
	"internal/cpu",
	"internal/cpufreq",
	"internal/cstates",
	"internal/experiment",
	"internal/fan",
	"internal/faults",
	"internal/hotspot",
	"internal/node",
	"internal/power",
	"internal/rack",
	"internal/report",
	"internal/rng",
	"internal/sensor",
	"internal/simclock",
	"internal/thermal",
	"internal/tracefile",
	"internal/workload",
	"cmd/experiments",
	"cmd/clustersim",
}

// InScope reports whether the import path belongs to the deterministic
// simulation core.
func InScope(pkgPath string) bool {
	rel := strings.TrimPrefix(pkgPath, "thermctl/")
	for _, p := range scopePrefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// forbiddenTime are the time package functions that read or wait on the
// wall clock.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRand are the math/rand constructors that do not touch the
// global source; everything else package-level is forbidden.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n, enclosingFuncBody(stack))
			}
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the traversal stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			return n.Body
		case *ast.FuncLit:
			return n.Body
		}
	}
	return nil
}

func checkSelector(pass *lint.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine; only package-level functions matter
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTime[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"time.%s reads or waits on the wall clock; drive the simulation from internal/simclock instead",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s uses the global math/rand source; use a seeded internal/rng stream instead",
				fn.Pkg().Path(), fn.Name())
		}
	}
}

func checkRange(pass *lint.Pass, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitive(pass, rng, encl) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic; collect and sort the keys before ranging")
}

// orderInsensitive reports whether the loop visibly cannot leak
// iteration order. Two shapes qualify:
//
//   - pure re-keying: every statement assigns only into maps (or the
//     blank identifier), as in copying one map into another;
//   - collect-then-sort: statements may additionally append into
//     slices, provided the enclosing function calls into package sort
//     (or slices) after the loop — the canonical deterministic map
//     walk.
func orderInsensitive(pass *lint.Pass, rng *ast.RangeStmt, encl *ast.BlockStmt) bool {
	body := rng.Body
	if len(body.List) == 0 {
		return true
	}
	usesAppend := false
	for _, st := range body.List {
		asg, ok := st.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range asg.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if idx, ok := lhs.(*ast.IndexExpr); ok {
				tv, ok := pass.TypesInfo.Types[idx.X]
				if ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						continue
					}
				}
				return false
			}
			// A slice variable is acceptable only for `x = append(x, …)`.
			if _, ok := lhs.(*ast.Ident); ok && len(asg.Rhs) == 1 && isAppendCall(asg.Rhs[0]) {
				usesAppend = true
				continue
			}
			return false
		}
	}
	if !usesAppend {
		return true
	}
	return encl != nil && sortCallAfter(pass, encl, rng.End())
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// sortCallAfter reports whether body contains a call into package sort
// or slices positioned after pos.
func sortCallAfter(pass *lint.Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Pos() <= pos {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
			}
		}
		return true
	})
	return found
}
