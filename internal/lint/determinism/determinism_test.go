package determinism_test

import (
	"testing"

	"thermctl/internal/lint/determinism"
	"thermctl/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/det", determinism.Analyzer)
}

func TestScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"thermctl/internal/cluster", true},
		{"thermctl/internal/config", true},
		{"thermctl/internal/core/window", true},
		{"thermctl/cmd/experiments", true},
		{"thermctl/cmd/clustersim", true},
		{"thermctl/internal/simclock", true},
		{"thermctl/internal/ipmi", false},
		{"thermctl/internal/hwmon", false},
		{"thermctl/internal/trace", false},
		{"thermctl/internal/lint", false},
		{"thermctl/cmd/thermctld", false},
		{"thermctl", false},
	}
	for _, c := range cases {
		if got := determinism.Analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
