package callgraph_test

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermctl/internal/lint"
	"thermctl/internal/lint/callgraph"
)

// fixture is a two-package module exercising roots, static chains,
// interface resolution across packages, and go-edge skipping.
var fixture = map[string]string{
	"a/a.go": `package a

type Actuator interface{ Apply(level int) }

type Ctl struct{ Act Actuator }

func (c *Ctl) OnStep(now int) {
	c.helper()
	c.Act.Apply(1)
	go c.bg()
}

func (c *Ctl) helper() { c.deep() }
func (c *Ctl) deep()   {}
func (c *Ctl) bg()     { c.spawned() }
func (c *Ctl) spawned() {}

// Step is a plain function, not a method: not a root.
func Step() {}

type Txn struct{}

func (t *Txn) ApplyFan(pct float64) {}
func (t *Txn) Commit()              {}
`,
	"b/b.go": `package b

import "m/a"

type Fan struct{}

func (f *Fan) Apply(level int) { spin(level) }

func spin(level int) {}

var _ a.Actuator = (*Fan)(nil)
`,
}

func loadProgram(t *testing.T) *lint.Program {
	t.Helper()
	dir := t.TempDir()
	for name, src := range fixture {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader := lint.NewLoader("m", dir)
	var pkgs []*lint.Package
	for _, path := range []string{"m/a", "m/b"} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return lint.NewProgram(loader.Fset(), pkgs)
}

func hotLabels(prog *lint.Program) map[string]*callgraph.Hot {
	out := map[string]*callgraph.Hot{}
	for fn, h := range callgraph.For(prog).HotReach() {
		out[callgraph.Label(fn)] = h
	}
	return out
}

func TestRootsAndCache(t *testing.T) {
	prog := loadProgram(t)
	g := callgraph.For(prog)
	if again := callgraph.For(prog); again != g {
		t.Error("For(prog) did not return the cached graph")
	}

	var roots []string
	for _, r := range g.Roots() {
		roots = append(roots, callgraph.Label(r.Fn))
	}
	want := []string{"(*m/a.Ctl).OnStep", "(*m/a.Txn).ApplyFan"}
	if strings.Join(roots, ",") != strings.Join(want, ",") {
		t.Errorf("roots = %v, want %v", roots, want)
	}
}

func TestHotReach(t *testing.T) {
	prog := loadProgram(t)
	hot := hotLabels(prog)

	// Static chain: OnStep → helper → deep.
	deep, ok := hot["(*m/a.Ctl).deep"]
	if !ok {
		t.Fatal("deep is not hot")
	}
	wantChain := "(*m/a.Ctl).OnStep → (*m/a.Ctl).helper → (*m/a.Ctl).deep"
	if got := strings.Join(deep.Chain, " → "); got != wantChain {
		t.Errorf("deep chain = %s, want %s", got, wantChain)
	}
	if !strings.Contains(deep.Via(), "reached via") {
		t.Errorf("deep.Via() = %q, want a reached-via suffix", deep.Via())
	}

	// Interface resolution: the Act.Apply call fans out to the concrete
	// (*b.Fan).Apply in the other package, and on through spin.
	spin, ok := hot["m/b.spin"]
	if !ok {
		t.Fatal("spin is not hot: interface call not resolved across packages")
	}
	if spin.Root == nil || callgraph.Label(spin.Root.Fn) != "(*m/a.Ctl).OnStep" {
		t.Errorf("spin root = %v, want (*m/a.Ctl).OnStep", spin.Root)
	}
	wantVia := "(*m/a.Ctl).OnStep → (*m/b.Fan).Apply → m/b.spin"
	if got := strings.Join(spin.Chain, " → "); got != wantVia {
		t.Errorf("spin chain = %s, want %s", got, wantVia)
	}

	// Go-edge skipping: bg runs in a goroutine; neither it nor its
	// callee is synchronously hot.
	for _, label := range []string{"(*m/a.Ctl).bg", "(*m/a.Ctl).spawned"} {
		if _, ok := hot[label]; ok {
			t.Errorf("%s is hot, but it is only reachable through a go statement", label)
		}
	}

	// Non-roots: the plain function Step and the Txn's non-Apply method.
	for _, label := range []string{"m/a.Step", "(*m/a.Txn).Commit"} {
		if _, ok := hot[label]; ok {
			t.Errorf("%s is hot, want cold", label)
		}
	}

	// A root's own Via() is empty: the finding is in the root itself.
	if on := hot["(*m/a.Ctl).OnStep"]; on == nil || on.Via() != "" {
		t.Errorf("OnStep.Via() = %v, want empty", on)
	}
}

// TestHotDecls runs a probe analyzer through lint.Run with the full
// program, checking per-package filtering and source order.
func TestHotDecls(t *testing.T) {
	prog := loadProgram(t)
	for _, tc := range []struct {
		path string
		want []string
	}{
		{"m/a", []string{"OnStep", "helper", "deep", "ApplyFan"}},
		{"m/b", []string{"Apply", "spin"}},
	} {
		var got []string
		probe := &lint.Analyzer{
			Name: "probe",
			Doc:  "collects hot decls",
			Run: func(pass *lint.Pass) error {
				for _, hd := range callgraph.HotDecls(pass) {
					got = append(got, hd.Fn.Name())
				}
				return nil
			},
		}
		if _, err := lint.Run(prog, prog.Package(tc.path), []*lint.Analyzer{probe}); err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("HotDecls(%s) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestNodeLookup checks the node index against the type-checked objects.
func TestNodeLookup(t *testing.T) {
	prog := loadProgram(t)
	g := callgraph.For(prog)
	a := prog.Package("m/a")
	obj, _, _ := types.LookupFieldOrMethod(a.Types.Scope().Lookup("Ctl").Type(), true, a.Types, "helper")
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatal("helper method not found")
	}
	n := g.Node(fn)
	if n == nil {
		t.Fatal("no node for (*a.Ctl).helper")
	}
	if len(n.Out) != 1 || callgraph.Label(n.Out[0].Callee.Fn) != "(*m/a.Ctl).deep" {
		t.Errorf("helper edges = %v, want one edge to deep", n.Out)
	}
}
