// Package callgraph builds a cross-package static call graph over a
// loaded lint.Program, and computes synchronous reachability from the
// control plane's hot roots: every Step/OnStep method (the per-round
// simulation and controller entry points), every Policy Decide method,
// every RunProgram method (the SPMD execution loop), and the decision
// transaction's Txn.Apply* actuation funnel.
//
// The graph resolves three call shapes:
//
//   - direct calls to package functions and methods (static edges);
//   - interface-method calls, resolved against every concrete type
//     declared in the program that implements the interface (one
//     dynamic edge per implementation) — this is what lets an analyzer
//     follow Binding.OnStep → Policy.Decide → Txn.Apply →
//     Actuator.Apply → FanPort.SetDutyPercent across packages;
//   - calls inside `go` statements, kept as asynchronous edges that
//     reachability skips: a spawned goroutine is not part of the
//     synchronous round.
//
// Analyzers consume the graph through For (the per-program cache) and
// HotDecls (this package's hot-reachable declarations, with the call
// chain from the root for diagnostics), instead of re-implementing
// per-package walkers.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"

	"thermctl/internal/lint"
)

// Node is one declared function or method with a body.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *lint.Package
	// Out holds the resolved call edges, in source order (dynamic edges
	// fan out in sorted implementer order at one site).
	Out []Edge
}

// Edge is one resolved call.
type Edge struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callee is the resolved target.
	Callee *Node
	// Dynamic marks an interface-method call resolved to a concrete
	// implementation.
	Dynamic bool
	// Go marks a call launched in a goroutine (directly, or the body of
	// a `go func(){...}()` literal). Asynchronous: hot reachability does
	// not traverse it.
	Go bool
}

// Hot records why a function is hot: the root it is reachable from and
// the shortest call chain (labels, root first, the function last).
type Hot struct {
	Root  *Node
	Chain []string
}

// Via renders the diagnostic suffix " (reached via a → b)" for
// transitive hits — the chain runs from the root to the function
// containing the finding — and "" when the function is itself a root.
func (h *Hot) Via() string {
	if len(h.Chain) <= 1 {
		return ""
	}
	return " (reached via " + strings.Join(h.Chain, " → ") + ")"
}

// Graph is the program-wide call graph.
type Graph struct {
	Prog  *lint.Program
	nodes map[*types.Func]*Node
	roots []*Node

	hotOnce sync.Once
	hot     map[*types.Func]*Hot
}

var (
	cacheMu sync.Mutex
	cache   = map[*lint.Program]*Graph{}
)

// For returns the call graph of prog, building it on first use. Graphs
// are cached per program, so every analyzer in a run shares one build.
func For(prog *lint.Program) *Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[prog]; ok {
		return g
	}
	g := build(prog)
	cache[prog] = g
	return g
}

// Node returns the graph node for fn, or nil if fn has no declared body
// in the program.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Roots returns the hot roots in deterministic (package, position)
// order.
func (g *Graph) Roots() []*Node { return g.roots }

// IsRoot reports whether fn is one of the hot roots: a method named
// Step, OnStep, Decide or RunProgram (the SPMD execution loop is as hot
// as the open-loop step — its per-round body runs once per simulation
// step for the whole program), a Utilization method (every workload
// generator is evaluated per node per step inside the sharded phase,
// so the whole generator library must be allocation-free), an Apply*
// method on a type named Txn, or tracefile's Writer.Append (the trace
// recording path rides the step loop and is benchmarked within 5% of
// the untraced step, so it must stay allocation-free).
func IsRoot(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Step", "OnStep", "Decide", "RunProgram", "Utilization":
		return true
	case "Append":
		return recvTypeName(sig) == "Writer"
	}
	if strings.HasPrefix(fn.Name(), "Apply") {
		return recvTypeName(sig) == "Txn"
	}
	return false
}

// recvTypeName returns the bare name of the receiver's named type
// ("Txn" for (*core.Txn)), or "".
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Label renders fn for call chains, with the module prefix trimmed:
// "(*thermctl/internal/core.TDVFS).OnStep" → "(*core.TDVFS).OnStep".
func Label(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, "thermctl/internal/", "")
	return strings.ReplaceAll(name, "thermctl/", "")
}

// HotReach returns the synchronous hot-reachability map: every function
// reachable from a root without crossing a goroutine spawn, with its
// shortest chain. The map is computed once per graph.
func (g *Graph) HotReach() map[*types.Func]*Hot {
	g.hotOnce.Do(func() {
		hot := map[*types.Func]*Hot{}
		var queue []*Node
		for _, r := range g.roots {
			if _, ok := hot[r.Fn]; !ok {
				hot[r.Fn] = &Hot{Root: r, Chain: []string{Label(r.Fn)}}
				queue = append(queue, r)
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			h := hot[n.Fn]
			for _, e := range n.Out {
				if e.Go {
					continue
				}
				if _, ok := hot[e.Callee.Fn]; ok {
					continue
				}
				chain := make([]string, 0, len(h.Chain)+1)
				chain = append(chain, h.Chain...)
				chain = append(chain, Label(e.Callee.Fn))
				hot[e.Callee.Fn] = &Hot{Root: h.Root, Chain: chain}
				queue = append(queue, e.Callee)
			}
		}
		g.hot = hot
	})
	return g.hot
}

// HotDecl is one hot-reachable declaration of the analyzed package.
type HotDecl struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Hot  *Hot
}

// HotDecls returns the hot-reachable function declarations belonging to
// the pass's package, in source order. This is the entry point for
// hot-path analyzers: iterate, inspect each body, suffix diagnostics
// with Hot.Via().
func HotDecls(pass *lint.Pass) []HotDecl {
	g := For(pass.Prog)
	reach := g.HotReach()
	var out []HotDecl
	for fn, h := range reach {
		n := g.nodes[fn]
		if n == nil || n.Pkg.Types != pass.Pkg {
			continue
		}
		out = append(out, HotDecl{Fn: fn, Decl: n.Decl, Hot: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// build constructs the graph: index declarations, collect the concrete
// type universe, then resolve every call site.
func build(prog *lint.Program) *Graph {
	g := &Graph{Prog: prog, nodes: map[*types.Func]*Node{}}

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &Node{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}

	// The concrete-type universe for interface resolution: every
	// package-level named non-interface type in the program, in
	// deterministic (package, name) order.
	var concrete []*types.Named
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	for _, n := range g.nodes {
		b := &edgeBuilder{g: g, n: n, concrete: concrete}
		b.scan(n.Decl.Body, false)
	}
	// Map iteration above is fine (each node's edges depend only on its
	// own body), but the stored edge order within a node is source
	// order, set by scan.

	for fn, n := range g.nodes {
		if IsRoot(fn) {
			g.roots = append(g.roots, n)
		}
	}
	sort.Slice(g.roots, func(i, j int) bool {
		a, b := g.roots[i], g.roots[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	return g
}

// edgeBuilder walks one function body resolving call edges.
type edgeBuilder struct {
	g        *Graph
	n        *Node
	concrete []*types.Named
}

// scan visits n, marking calls found under a `go` statement as
// asynchronous. Function-literal bodies are scanned as part of the
// enclosing declaration: a closure defined on the hot path is
// conservatively assumed to run on it.
func (b *edgeBuilder) scan(root ast.Node, inGo bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			b.scan(n.Call, true)
			return false
		case *ast.CallExpr:
			b.resolve(n, inGo)
		}
		return true
	})
}

// resolve adds the edge(s) for one call expression.
func (b *edgeBuilder) resolve(call *ast.CallExpr, inGo bool) {
	info := b.n.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			b.addStatic(call, fn, inGo)
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				b.addDynamic(call, fn, iface, inGo)
				return
			}
		}
		b.addStatic(call, fn, inGo)
	}
}

func (b *edgeBuilder) addStatic(call *ast.CallExpr, fn *types.Func, inGo bool) {
	if callee, ok := b.g.nodes[fn]; ok {
		b.n.Out = append(b.n.Out, Edge{Site: call, Callee: callee, Go: inGo})
	}
}

// addDynamic fans an interface-method call out to every concrete
// implementation declared in the program.
func (b *edgeBuilder) addDynamic(call *ast.CallExpr, m *types.Func, iface *types.Interface, inGo bool) {
	for _, named := range b.concrete {
		impl := implements(named, iface)
		if impl == nil {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), m.Name())
		target, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if callee, ok := b.g.nodes[target]; ok {
			b.n.Out = append(b.n.Out, Edge{Site: call, Callee: callee, Dynamic: true, Go: inGo})
		}
	}
}

// implements returns the receiver shape under which named satisfies
// iface (the type itself or a pointer to it), or nil.
func implements(named *types.Named, iface *types.Interface) types.Type {
	if types.Implements(named, iface) {
		return named
	}
	ptr := types.NewPointer(named)
	if types.Implements(ptr, iface) {
		return ptr
	}
	return nil
}
