package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermctl/internal/lint"
)

// writeDir lays out a package directory from name → source.
func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadDirSkipsExcludedFiles checks the loader sees exactly the
// files the go tool would build: _test.go files, underscore/dot
// prefixed names and build-tag-excluded files are invisible, so their
// contents can neither produce findings nor break type-checking.
func TestLoadDirSkipsExcludedFiles(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"pkg.go": "package p\n\nfunc Kept() int { return 1 }\n",
		// A test file referencing an undefined symbol: loading it would
		// fail type-checking, so a pass proves it was skipped.
		"pkg_test.go": "package p\n\nvar _ = undefinedInTest\n",
		// Excluded by its build constraint.
		"tagged.go": "//go:build neverbuildme\n\npackage p\n\nvar _ = undefinedBehindTag\n",
		// Excluded by name prefix, as the go tool does.
		"_draft.go": "package p\n\nvar _ = undefinedInDraft\n",
		".gen.go":   "package p\n\nvar _ = undefinedInHidden\n",
	})
	pkg, err := lint.NewLoader("", "").LoadDir(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (pkg.go only)", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("Kept") == nil {
		t.Fatalf("loaded package lacks Kept; wrong file selected")
	}
}

// TestLoadDirNoGoFiles checks a directory without buildable Go sources
// is a load error, not an empty package.
func TestLoadDirNoGoFiles(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"README.md":   "not Go\n",
		"pkg_test.go": "package p\n",
	})
	_, err := lint.NewLoader("", "").LoadDir(dir, dir)
	if err == nil {
		t.Fatal("LoadDir succeeded on a directory with no buildable Go sources")
	}
	if !strings.Contains(err.Error(), "no Go sources") {
		t.Fatalf("error = %v, want mention of missing Go sources", err)
	}
}

// TestLoadDirTypeErrorIsFatal checks a package that does not
// type-check reports an error naming the package rather than returning
// a partial result.
func TestLoadDirTypeErrorIsFatal(t *testing.T) {
	dir := writeDir(t, map[string]string{
		"bad.go": "package p\n\nvar X = undefinedIdent\n",
	})
	_, err := lint.NewLoader("", "").LoadDir("brokenpkg", dir)
	if err == nil {
		t.Fatal("LoadDir succeeded on a package with a type error")
	}
	if !strings.Contains(err.Error(), "type-checking brokenpkg") {
		t.Fatalf("error = %v, want it to name brokenpkg", err)
	}
}

// TestModulePackagesSkipsSourcelessDirs checks directory trees without
// buildable sources (docs, testdata, a dir holding only _test.go files)
// yield no package paths.
func TestModulePackagesSkipsSourcelessDirs(t *testing.T) {
	root := t.TempDir()
	for name, body := range map[string]string{
		"go.mod":               "module m\n",
		"a/a.go":               "package a\n",
		"docs/readme.md":       "prose only\n",
		"b/testdata/fix.go":    "package fix\n",
		"onlytests/x_test.go":  "package onlytests\n",
		"_skipped/skipped.go":  "package skipped\n",
		".hidden/hidden.go":    "package hidden\n",
		"a/deep/deep.go":       "package deep\n",
		"b/b.go":               "package b\n",
		"b/excluded.go.bak":    "not go\n",
		"empty/.gitkeep":       "",
		"a/deep/deep_test.go":  "package deep\n",
		"a/deep/_draft.go":     "package deep\n",
		"a/deep/notgo.txt":     "x\n",
		"b/tagged_only/t.go":   "//go:build neverbuildme\n\npackage t\n",
		"b/tagged_only/doc.md": "constraint-excluded package\n",
	} {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := lint.ModulePackages("m", root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"m/a", "m/a/deep", "m/b"}
	if len(pkgs) != len(want) {
		t.Fatalf("ModulePackages = %v, want %v", pkgs, want)
	}
	for i, w := range want {
		if pkgs[i] != w {
			t.Fatalf("ModulePackages = %v, want %v", pkgs, want)
		}
	}
}
