package linttest

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"thermctl/internal/lint"
)

// calltrap flags every call to a function literally named "forbidden";
// the fixtures below exercise the allow directives through the full
// harness, the way analyzer testdata packages use them.
var calltrap = &lint.Analyzer{
	Name: "calltrap",
	Doc:  "flags calls to forbidden()",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "forbidden" {
						pass.Reportf(call.Pos(), "forbidden call")
					}
				}
				return true
			})
		}
		return nil
	},
}

// writeFixture lays out a one-file package and returns its directory.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestAllowDirectiveForms drives Run over a fixture whose expectations
// only hold if both directive forms behave as documented: the scoped
// form suppresses exactly the named analyzers, the bare form suppresses
// everything, and a directive naming some other analyzer suppresses
// nothing.
func TestAllowDirectiveForms(t *testing.T) {
	dir := writeFixture(t, `package fix

func forbidden() {}

func a() {
	forbidden() // want "forbidden call"
	forbidden() //thermlint:allow calltrap -- scoped form suppresses the named analyzer
	//thermlint:allow calltrap -- standalone scoped form covers the next line
	forbidden()
	forbidden() //thermlint:allow othercheck -- names a different analyzer: still reported // want "forbidden call"
	forbidden() //thermlint:allow calltrap,othercheck -- a list may mix names
	forbidden() //thermlint:allow -- bare form suppresses every analyzer
	//thermlint:allow -- standalone bare form covers the next line
	forbidden()
}
`)
	Run(t, dir, calltrap)
}

// TestWantBacktickPattern covers the backtick want-literal syntax.
func TestWantBacktickPattern(t *testing.T) {
	dir := writeFixture(t, `package fix

func forbidden() {}

func a() {
	forbidden() // want `+"`forbidden c.ll`"+`
}
`)
	Run(t, dir, calltrap)
}
