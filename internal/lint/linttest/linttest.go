// Package linttest runs lint analyzers over testdata packages and
// compares the diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A want comment expects one diagnostic on its line whose message
// matches the quoted regular expression. Lines without a want comment
// must produce no diagnostics. Allow directives in the fixtures are
// honored, so suppression can be tested with a directive and no want.
package linttest

import (
	"go/ast"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"thermctl/internal/lint"
)

// want is one expectation.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the single package in dir (which must import only the
// standard library), runs the analyzer over it, and reports
// mismatches between diagnostics and want comments through t.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	runDiags(t, dir, a)
}

// RunFix runs the analyzer like Run, then applies every suggested fix
// and compares each fixed file against its committed golden twin
// (<file>.golden in the same directory). This is the `-fix` round-trip
// test: the goldens are what thermlint -fix would leave on disk.
func RunFix(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	diags := runDiags(t, dir, a)
	changed, skipped, err := lint.ApplyFixes(diags)
	if err != nil {
		t.Fatalf("applying fixes in %s: %v", dir, err)
	}
	for _, d := range skipped {
		t.Errorf("fix skipped as conflicting: %s", d)
	}
	if len(changed) == 0 {
		t.Fatalf("RunFix(%s): analyzer produced no fixes; use Run for fix-less analyzers", dir)
	}
	for file, got := range changed {
		golden := file + ".golden"
		wantSrc, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("fixed %s but no golden: %v", file, err)
			continue
		}
		if string(got) != string(wantSrc) {
			t.Errorf("fix output for %s does not match %s:\n%s", file, golden,
				lint.Diff(file, wantSrc, got))
		}
	}
}

func runDiags(t *testing.T, dir string, a *lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	loader := lint.NewLoader("", "")
	pkg, err := loader.LoadDir(dir, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run(nil, pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	return diags
}

var wantRe = regexp.MustCompile(`//\s*want\s+(` + "`[^`]*`" + `|"(?:[^"\\]|\\.)*")`)

// collectWants extracts the want comments of every file.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWants(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWants(t *testing.T, pkg *lint.Package, c *ast.Comment) []*want {
	t.Helper()
	var out []*want
	pos := pkg.Fset.Position(c.Pos())
	for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
		lit := m[1]
		var text string
		if strings.HasPrefix(lit, "`") {
			text = strings.Trim(lit, "`")
		} else {
			var err error
			text, err = strconv.Unquote(lit)
			if err != nil {
				t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
			}
		}
		re, err := regexp.Compile(text)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, text, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: re})
	}
	return out
}

func matchWant(wants []*want, d lint.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}
