package shardsafe_test

import (
	"testing"

	"thermctl/internal/lint/linttest"
	"thermctl/internal/lint/shardsafe"
)

func TestShardsafe(t *testing.T) {
	linttest.Run(t, "testdata/ss", shardsafe.Analyzer)
}

func TestScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"thermctl/internal/node", true},
		{"thermctl/internal/cpu", true},
		{"thermctl/internal/thermal", true},
		{"thermctl/internal/fan", true},
		{"thermctl/internal/sensor", true},
		{"thermctl/internal/adt7467", true},
		{"thermctl/internal/hwmon", true},
		{"thermctl/internal/cluster", true},
		{"thermctl/internal/rack", true},
		{"thermctl/internal/workload", true},
		// Node-local controllers run in the sharded phase since the
		// hierarchical step loop (Cluster.AddNodeController).
		{"thermctl/internal/core", true},
		{"thermctl/internal/baseline", true},
		// Orchestration and offline tooling may keep state.
		{"thermctl/internal/experiment", false},
		{"thermctl/internal/ipmi", false},
		{"thermctl/internal/trace", false},
		{"thermctl/internal/lint", false},
		{"thermctl/cmd/experiments", false},
		{"thermctl", false},
	}
	for _, c := range cases {
		if got := shardsafe.Analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
