// Package ss exercises the shardsafe analyzer: runtime writes to
// package-level variables are flagged; effectively-immutable globals
// (error sentinels, init-time tables) pass.
package ss

import (
	"errors"
	"sync"
)

// Error sentinels: declared once, only read afterwards — the idiom the
// model packages legitimately use. No diagnostics.
var ErrBad = errors.New("ss: bad")

// table is written only at declaration and from init; immutable once
// workers exist.
var table = map[string]int{"a": 1}

// counter, cache, registry and mu are runtime-mutable package state.
var (
	counter  int
	cache    = map[string]float64{}
	registry []string
	mu       sync.Mutex
	hook     func()
)

func init() {
	table["b"] = 2 // init runs before any worker: exempt
	counter = 0    // exempt here, flagged at runtime below
}

// Step stands in for model code running in the parallel phase.
func Step(name string) float64 {
	counter++                         // want `package-level variable counter written at runtime`
	cache[name] = 1.5                 // want `package-level variable cache written at runtime`
	registry = append(registry, name) // want `package-level variable registry written at runtime`
	mu.Lock()                         // want `pointer-receiver call mu.Lock mutates package-level variable mu`
	defer mu.Unlock()                 // want `pointer-receiver call mu.Unlock mutates package-level variable mu`
	p := &counter                     // want `package-level variable counter has its address taken`
	*p = 3
	if err := ErrBad; err != nil { // reading a sentinel is fine
		return float64(table["a"]) // reading an init-time table is fine
	}
	return cache[name]
}

// closure assignment inside init still produces runtime code.
func init() {
	hook = func() {
		counter++ // want `package-level variable counter written at runtime`
	}
}

// localShadow must not be confused with the global of the same name.
func localShadow() {
	counter := 0
	counter++
	var mu sync.Mutex
	mu.Lock()
	_ = counter
}

// fieldWrite mutates a package-level struct through a field; the root
// variable is the target.
type box struct{ v int }

var shared box

func fieldWrite() {
	shared.v = 9 // want `package-level variable shared written at runtime`
}

// methodValue calls a value-receiver method: no mutation, no report.
type ro struct{ v int }

func (r ro) Get() int { return r.v }

var readonly ro

func methodValue() int { return readonly.Get() }

// allowed demonstrates the escape hatch.
func allowed() {
	//thermlint:allow shardsafe -- test fixture: suppression must work
	counter++
}
