// Package shardsafe verifies that the node-model packages — everything
// a node.Node.Step call can touch — keep no package-level mutable
// state.
//
// Cluster.Step shards node advancement across persistent worker
// goroutines, and its correctness contract is strong: parallel
// execution must be byte-identical to serial for every worker count.
// That holds precisely because a node's step reads and writes only that
// node's own state. A package-level variable that is written at runtime
// breaks the contract twice over — it is a data race between shards,
// and even with a lock it would make results depend on shard scheduling
// order. The analyzer therefore flags, in the model packages:
//
//   - assignments (including indexed, field and pointer-indirect
//     writes) whose target is a package-level variable;
//   - taking the address of a package-level variable, which lets a
//     write escape the analyzer's sight;
//   - pointer-receiver method calls on a package-level variable (a
//     sync.Mutex's Lock mutates the variable).
//
// Writes inside func init are exempt: init runs before any worker
// exists, so a variable initialized there and never written again is
// effectively immutable shared state (like the error sentinels in
// hwmon and i2c, which are assigned only at declaration).
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"thermctl/internal/lint"
)

// Analyzer is the shard-safety check.
var Analyzer = &lint.Analyzer{
	Name:      "shardsafe",
	Doc:       "forbid runtime-mutable package-level state in the node-model packages stepped in parallel",
	AppliesTo: InScope,
	Run:       run,
}

// scopePrefixes are the packages whose code runs inside the cluster's
// parallel phase: node.Node.Step's full call graph — which since the
// declarative workload plane includes every generator's Utilization
// method, evaluated per node inside the shard — the cluster and
// rack layers that orchestrate it, and — since the hierarchical step
// loop moved node-local control into the sharded phase
// (Cluster.AddNodeController) — the controller packages whose policies
// run per node: the core engine and the baseline daemons it hosts.
// Offline tooling is out of scope entirely.
var scopePrefixes = []string{
	"internal/acpi",
	"internal/adt7467",
	"internal/baseline",
	"internal/cluster",
	"internal/core",
	"internal/cpu",
	"internal/cpufreq",
	"internal/cstates",
	"internal/fan",
	"internal/faults",
	"internal/hwmon",
	"internal/i2c",
	"internal/node",
	"internal/power",
	"internal/rack",
	"internal/rng",
	"internal/sensor",
	"internal/simclock",
	"internal/thermal",
	"internal/tracefile",
	"internal/workload",
}

// InScope reports whether the import path belongs to the parallel
// stepping phase's call graph.
func InScope(pkgPath string) bool {
	rel := strings.TrimPrefix(pkgPath, "thermctl/")
	for _, p := range scopePrefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !inRuntimeFunc(stack) {
				// Top-level declarations (including var initializers)
				// and func init bodies run before any worker exists;
				// state they establish and never touch again is
				// effectively immutable.
				return true
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					check(pass, lhs, "written")
				}
			case *ast.IncDecStmt:
				check(pass, n.X, "written")
			case *ast.RangeStmt:
				check(pass, n.Key, "written")
				check(pass, n.Value, "written")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					check(pass, n.X, "has its address taken")
				}
			case *ast.CallExpr:
				checkPointerMethod(pass, n)
			}
			return true
		})
	}
	return nil
}

// inRuntimeFunc reports whether the traversal position is inside code
// that can execute after workers exist: any function body except func
// init's own statements. Function literals always count as runtime
// code — even one built inside init is typically a callback invoked
// later.
func inRuntimeFunc(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			return !(n.Recv == nil && n.Name.Name == "init")
		case *ast.FuncLit:
			return true
		}
	}
	return false
}

// check reports e if its write target resolves to a package-level
// variable (of any package — mutating another package's global from
// model code is just as unsafe).
func check(pass *lint.Pass, e ast.Expr, what string) {
	v := targetVar(pass, e)
	if v == nil {
		return
	}
	pass.Reportf(e.Pos(),
		"package-level variable %s %s at runtime; state reachable from Node.Step must be per-node for parallel cluster stepping",
		v.Name(), what)
}

// targetVar walks to the root of an lvalue expression and returns the
// package-level variable it denotes, or nil. Index, field and pointer
// indirections are followed: writing an element of a package-level map
// or through a field of a package-level struct mutates that variable's
// reachable state.
func targetVar(pass *lint.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		return pkgLevelVar(pass.TypesInfo.ObjectOf(e))
	case *ast.SelectorExpr:
		if v := pkgLevelVar(pass.TypesInfo.ObjectOf(e.Sel)); v != nil {
			return v // qualified reference: pkg.Var
		}
		return targetVar(pass, e.X)
	case *ast.IndexExpr:
		return targetVar(pass, e.X)
	case *ast.StarExpr:
		return targetVar(pass, e.X)
	case *ast.ParenExpr:
		return targetVar(pass, e.X)
	}
	return nil
}

// pkgLevelVar returns obj as a package-scoped variable, or nil.
func pkgLevelVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// checkPointerMethod flags pointer-receiver method calls whose receiver
// chain is rooted at a package-level variable: mu.Lock(), cache.Store,
// registry.register() — each mutates the variable through the implicit
// &receiver.
func checkPointerMethod(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
		return // value receivers (and interface methods) cannot mutate the variable
	}
	v := targetVar(pass, sel.X)
	if v == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"pointer-receiver call %s.%s mutates package-level variable %s; state reachable from Node.Step must be per-node for parallel cluster stepping",
		v.Name(), fn.Name(), v.Name())
}
