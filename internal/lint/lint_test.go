package lint_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermctl/internal/lint"
)

// testAnalyzer flags every call to a function literally named
// "forbidden".
var testAnalyzer = &lint.Analyzer{
	Name: "testcheck",
	Doc:  "flags calls to forbidden()",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "forbidden" {
					pass.Reportf(call.Pos(), "forbidden call")
				}
				return true
			})
		}
		return nil
	},
}

const fixture = `package fix

func forbidden() {}

func a() {
	forbidden()
	forbidden() //thermlint:allow testcheck -- trailing directive with reason
	//thermlint:allow testcheck -- standalone directive covers the next line
	forbidden()
	forbidden() //thermlint:allow testcheck
	forbidden() //thermlint:allow othercheck -- names a different analyzer
	forbidden() //thermlint:allow -- bare form suppresses every analyzer
	//thermlint:allow -- standalone bare form covers the next line
	forbidden()
}
`

func loadFixture(t *testing.T) *lint.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.NewLoader("", "").LoadDir(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestDirectives(t *testing.T) {
	pkg := loadFixture(t)
	diags, err := lint.Run(nil, pkg, []*lint.Analyzer{testAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		line     int
		analyzer string
		contains string
	}
	wants := []want{
		{6, "testcheck", "forbidden call"},           // no directive
		{10, "testcheck", "forbidden call"},          // malformed directive suppresses nothing...
		{10, "directive", "missing its '-- reason'"}, // ...and is itself reported
		{11, "testcheck", "forbidden call"},          // wrong analyzer name
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.contains) {
			t.Errorf("diag %d = %s, want line %d analyzer %s containing %q", i, d, w.line, w.analyzer, w.contains)
		}
	}
}

func TestModuleRoot(t *testing.T) {
	modPath, modDir, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "thermctl" {
		t.Fatalf("module path = %q, want thermctl", modPath)
	}
	if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err != nil {
		t.Fatalf("module dir %s has no go.mod: %v", modDir, err)
	}
	pkgs, err := lint.ModulePackages(modPath, modDir)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range pkgs {
		found[p] = true
	}
	for _, want := range []string{"thermctl", "thermctl/internal/fan", "thermctl/cmd/thermlint", "thermctl/internal/lint"} {
		if !found[want] {
			t.Errorf("ModulePackages missing %s (got %d packages)", want, len(pkgs))
		}
	}
	for p := range found {
		if strings.Contains(p, "testdata") {
			t.Errorf("ModulePackages included testdata package %s", p)
		}
	}
}
