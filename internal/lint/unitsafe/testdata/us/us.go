// Package us exercises the unitsafe analyzer: milli-°C vs °C, duty
// register counts vs percent, Hz vs kHz.
package us

// Sensor-side readings are milli-°C, policy thresholds are °C.
type sensor struct {
	tempMilli int64   //thermlint:unit milli°C
	limit     float64 //thermlint:unit °C
}

// readMilli returns the raw hwmon value.
//
//thermlint:unit milli°C
func readMilli(s *sensor) int64 { return s.tempMilli }

// celsius converts a raw reading. Scaling by a constant erases the
// unit, so the conversion idiom needs no annotation gymnastics.
//
//thermlint:unit t=milli°C
//thermlint:unit °C
func celsius(t int64) float64 { return float64(t) / 1000 }

// checkTemp mixes units in every way the analyzer flags.
func checkTemp(s *sensor) bool {
	raw := readMilli(s)
	if float64(raw) > s.limit { // want `mixing milli°C and °C in '>' expression`
		return true
	}
	s.limit = float64(raw)      // want `assigning milli°C value to s.limit \(declared °C\)`
	d := float64(raw) - s.limit // want `mixing milli°C and °C in '-' expression`
	_ = d
	return false
}

// goodTemp converts before comparing: dividing erases the milli°C tag,
// so the comparison is clean; assigning the converted value to the
// tagged field re-tags it °C via the call result.
func goodTemp(s *sensor) bool {
	c := celsius(readMilli(s))
	if c > s.limit {
		return true
	}
	s.limit = c
	return false
}

// wantsCelsius declares its parameter's unit.
//
//thermlint:unit t=°C
func wantsCelsius(t float64) bool { return t > 100 }

func callSites(s *sensor) {
	raw := readMilli(s)
	_ = wantsCelsius(float64(raw)) // want `passing milli°C value as parameter t \(declared °C\) of wantsCelsius`
	_ = wantsCelsius(celsius(raw))
	_ = wantsCelsius(42) // untagged constants are always fine
}

// badReturn promises °C but returns the raw reading.
//
//thermlint:unit °C
func badReturn(s *sensor) float64 {
	return float64(readMilli(s)) // want `returning milli°C value as result declared °C`
}

// Duty cycles: the ADT7467 register is a 0–255 count, the FanPort
// speaks percent.
type fan struct {
	reg int     //thermlint:unit duty8
	pct float64 //thermlint:unit percent
}

func dutyMath(f *fan) {
	f.pct = float64(f.reg) * 100 / 255 // scaling converts: clean
	f.pct += float64(f.reg)            // want `duty8-unit value \+= into a percent variable`
	sum := f.reg + int(f.pct)          // want `mixing duty8 and percent in '\+' expression`
	_ = sum
}

// Frequencies: sysfs cpufreq is kHz; offsets keep the unit.
type scaler struct {
	cur int64 //thermlint:unit kHz
	max int64 //thermlint:unit kHz
}

func clampFreq(s *scaler, headroom int64) int64 {
	next := s.cur + 100_000 // constant offset keeps kHz
	if next > s.max {       // same unit on both sides: clean
		next = s.max
	}
	return next + headroom // untagged headroom stays unknown: clean
}

type mixedFreq struct {
	hz int64 //thermlint:unit Hz
}

func badFreq(s *scaler, m *mixedFreq) {
	m.hz = s.cur       // want `assigning kHz value to m.hz \(declared Hz\)`
	if s.cur == m.hz { // want `mixing kHz and Hz in '==' expression`
		return
	}
}

type allowed struct {
	mc int64 //thermlint:unit milli°C
	c  int64 //thermlint:unit °C
}

// deliberate mixes units on purpose, with the annotated escape hatch.
func deliberate(a *allowed) {
	a.c = a.mc //thermlint:allow unitsafe -- fixture: lossy shortcut documented here
}
