// Package unitsafe tracks unit-tagged values through assignments and
// calls and flags mixed-unit arithmetic.
//
// The thermal stack juggles look-alike integers with incompatible
// units: hwmon temperatures are milli-°C while policies think in °C,
// fan duty is an 8-bit register count (0–255) in the ADT7467 but a
// percentage at the FanPort boundary, and cpufreq frequencies are kHz
// in sysfs but Hz in parts of the models. Mixing them compiles cleanly
// and fails in the field — a ×1000 thermal reading trips fail-safe, a
// /1000 one never throttles.
//
// Units are declared with tag comments at the sensor/actuator
// boundaries:
//
//	// on a struct field, var or const (doc or trailing comment):
//	TempMilliC int64 //thermlint:unit milli°C
//
//	// in a function doc comment, naming a parameter or result:
//	//thermlint:unit t=milli°C
//	//thermlint:unit °C        (bare form tags the first result)
//	func convert(t int64) float64 { ... }
//
// The analyzer propagates units forward inside each function: through
// assignments, type conversions, additive expressions and calls whose
// results are tagged. It flags
//
//   - additive or comparison expressions mixing two known units;
//   - arguments whose unit differs from the parameter's declared tag;
//   - assignments of a known unit to a variable or field declared with
//     a different tag;
//   - returns whose unit differs from the declared result tag.
//
// Multiplication and division erase units (×1000 IS the conversion
// idiom), and untagged values stay unknown — the analyzer only ever
// complains when both sides carry explicit, different tags, so it has
// no opinion about code outside the tagged boundaries.
package unitsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"thermctl/internal/lint"
)

// Analyzer is the unit-safety check.
var Analyzer = &lint.Analyzer{
	Name: "unitsafe",
	Doc:  "track //thermlint:unit tags through assignments and calls; flag mixed-unit arithmetic",
	Run:  run,
}

const directive = "//thermlint:unit"

// cutDirective returns the spec following a //thermlint:unit marker.
// The marker must be followed by whitespace so that other directives
// sharing the prefix never match.
func cutDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directive)
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return rest, true
}

// table holds the program-wide unit declarations.
type table struct {
	// obj tags variables, constants, struct fields, parameters and
	// named results.
	obj map[types.Object]string
	// result tags function results by index (covers unnamed results).
	result map[*types.Func][]string
}

var (
	cacheMu sync.Mutex
	cache   = map[*lint.Program]*table{}
)

func tableFor(pass *lint.Pass) *table {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if t, ok := cache[pass.Prog]; ok {
		return t
	}
	t := &table{obj: map[types.Object]string{}, result: map[*types.Func][]string{}}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			t.collectFile(pkg, f)
		}
	}
	cache[pass.Prog] = t
	return t
}

// unitIn extracts the unit spec from a comment group, or "".
func unitIn(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := cutDirective(c.Text); ok {
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

func (t *table) collectFile(pkg *lint.Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if u := unitIn(n.Doc, n.Comment); u != "" {
				for _, name := range n.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						t.obj[obj] = u
					}
				}
			}
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if u := unitIn(field.Doc, field.Comment); u != "" {
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							t.obj[obj] = u
						}
					}
				}
			}
		case *ast.FuncDecl:
			t.collectFunc(pkg, n)
		}
		return true
	})
}

// collectFunc reads //thermlint:unit lines from a function's doc
// comment. "name=unit" tags the parameter or result called name; a bare
// "unit" tags the first result.
func (t *table) collectFunc(pkg *lint.Package, decl *ast.FuncDecl) {
	if decl.Doc == nil {
		return
	}
	fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	for _, c := range decl.Doc.List {
		rest, ok := cutDirective(c.Text)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		spec := fields[0]
		name, unit, named := strings.Cut(spec, "=")
		if !named {
			// Bare unit: tag the first result.
			if sig.Results().Len() > 0 {
				t.tagResult(fn, 0, spec)
			}
			continue
		}
		if v := tupleByName(sig.Params(), name); v != nil {
			t.obj[v] = unit
			continue
		}
		if i, v := tupleIndexByName(sig.Results(), name); v != nil {
			t.obj[v] = unit
			t.tagResult(fn, i, unit)
		}
	}
}

func (t *table) tagResult(fn *types.Func, i int, unit string) {
	rs := t.result[fn]
	for len(rs) <= i {
		rs = append(rs, "")
	}
	rs[i] = unit
	t.result[fn] = rs
	// Tag the named result object too, if there is one.
	if v := fn.Type().(*types.Signature).Results().At(i); v.Name() != "" {
		t.obj[v] = unit
	}
}

func tupleByName(tp *types.Tuple, name string) *types.Var {
	_, v := tupleIndexByName(tp, name)
	return v
}

func tupleIndexByName(tp *types.Tuple, name string) (int, *types.Var) {
	for i := 0; i < tp.Len(); i++ {
		if tp.At(i).Name() == name {
			return i, tp.At(i)
		}
	}
	return -1, nil
}

func run(pass *lint.Pass) error {
	tab := tableFor(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			c := &checker{pass: pass, tab: tab, env: map[types.Object]string{}}
			c.checkFunc(decl)
			return false
		})
	}
	return nil
}

// checker runs the forward unit propagation over one function body.
type checker struct {
	pass *lint.Pass
	tab  *table
	env  map[types.Object]string // flow-inferred units of local variables
	fn   *types.Func
}

func (c *checker) checkFunc(decl *ast.FuncDecl) {
	c.fn, _ = c.pass.TypesInfo.Defs[decl.Name].(*types.Func)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.BinaryExpr:
			c.checkBinary(n)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

// declaredOf returns the declared (tagged) unit of the object behind an
// assignable expression, together with that object.
func (c *checker) declaredOf(e ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Defs[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[e]
		}
		if obj == nil {
			return nil, ""
		}
		return obj, c.tab.obj[obj]
	case *ast.SelectorExpr:
		if obj := c.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			return obj, c.tab.obj[obj]
		}
	case *ast.IndexExpr:
		return c.declaredOf(e.X)
	}
	return nil, ""
}

// unitOf infers the unit of an expression, or "" when unknown.
func (c *checker) unitOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return ""
		}
		if u, ok := c.tab.obj[obj]; ok {
			return u
		}
		return c.env[obj]
	case *ast.SelectorExpr:
		if obj := c.pass.TypesInfo.Uses[e.Sel]; obj != nil {
			return c.tab.obj[obj]
		}
	case *ast.IndexExpr:
		return c.unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return c.unitOf(e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
			switch {
			case lu == ru:
				return lu
			case lu != "" && (ru == "" && c.isConstant(e.Y)):
				return lu // offset by a constant keeps the unit
			case ru != "" && (lu == "" && c.isConstant(e.X)):
				return ru
			}
			// Mixed or half-unknown: the checker reports mixes; the
			// result is unknown.
		}
		// MUL, QUO etc. erase units: scaling IS unit conversion.
	case *ast.CallExpr:
		units := c.unitsOfCall(e)
		if len(units) == 1 {
			return units[0]
		}
	}
	return ""
}

// isConstant reports whether the expression has a compile-time value.
func (c *checker) isConstant(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// unitsOfCall returns the units of a call's results. Conversions pass
// the operand's unit through (float64(milliC) is still milli-°C).
func (c *checker) unitsOfCall(call *ast.CallExpr) []string {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return []string{c.unitOf(call.Args[0])}
	}
	fn := c.callee(call)
	if fn == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	units := make([]string, sig.Results().Len())
	for i := range units {
		if u, ok := c.tab.obj[sig.Results().At(i)]; ok {
			units[i] = u
		}
	}
	if tagged, ok := c.tab.result[fn]; ok {
		for i, u := range tagged {
			if u != "" && i < len(units) {
				units[i] = u
			}
		}
	}
	return units
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		lu, ru := c.unitOf(as.Lhs[0]), c.unitOf(as.Rhs[0])
		if lu != "" && ru != "" && lu != ru {
			c.pass.Reportf(as.Pos(), "%s-unit value %s into a %s variable", ru, as.Tok, lu)
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return // *=, /= and friends rescale, changing the unit
	}

	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment from a multi-result call.
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		units := c.unitsOfCall(call)
		for i, lhs := range as.Lhs {
			if i < len(units) {
				c.flow(as, lhs, units[i])
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i < len(as.Rhs) {
			c.flow(as, lhs, c.unitOf(as.Rhs[i]))
		}
	}
}

// flow records or checks one assignment of a value with unit u to lhs.
func (c *checker) flow(at ast.Node, lhs ast.Expr, u string) {
	obj, declared := c.declaredOf(lhs)
	if declared != "" {
		if u != "" && u != declared {
			c.pass.Reportf(at.Pos(), "assigning %s value to %s (declared %s)", u, exprLabel(lhs), declared)
		}
		return
	}
	if obj != nil {
		if _, isVar := obj.(*types.Var); isVar {
			c.env[obj] = u
		}
	}
}

func (c *checker) checkBinary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	lu, ru := c.unitOf(b.X), c.unitOf(b.Y)
	if lu != "" && ru != "" && lu != ru {
		c.pass.Reportf(b.OpPos, "mixing %s and %s in '%s' expression", lu, ru, b.Op)
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	fn := c.callee(call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() || (sig.Variadic() && i == params.Len()-1) {
			break // variadic tails carry no per-element tags
		}
		declared := c.tab.obj[params.At(i)]
		if declared == "" {
			continue
		}
		if u := c.unitOf(arg); u != "" && u != declared {
			c.pass.Reportf(arg.Pos(), "passing %s value as parameter %s (declared %s) of %s",
				u, params.At(i).Name(), declared, fn.Name())
		}
	}
}

func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	if c.fn == nil || len(ret.Results) == 0 {
		return
	}
	units := c.tab.result[c.fn]
	sig := c.fn.Type().(*types.Signature)
	for i, res := range ret.Results {
		var declared string
		if i < len(units) {
			declared = units[i]
		}
		if declared == "" && i < sig.Results().Len() {
			declared = c.tab.obj[sig.Results().At(i)]
		}
		if declared == "" {
			continue
		}
		if u := c.unitOf(res); u != "" && u != declared {
			c.pass.Reportf(res.Pos(), "returning %s value as result declared %s", u, declared)
		}
	}
}

func exprLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[...]"
	}
	return "value"
}
