package unitsafe_test

import (
	"testing"

	"thermctl/internal/lint/linttest"
	"thermctl/internal/lint/unitsafe"
)

func TestUnitsafe(t *testing.T) {
	linttest.Run(t, "testdata/us", unitsafe.Analyzer)
}
