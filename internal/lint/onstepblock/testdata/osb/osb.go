package osb

import (
	"os"
	"time"
)

type ctl struct {
	ch chan int
}

// OnStep with direct and transitive blocking operations.
func (c *ctl) OnStep(now time.Duration) {
	time.Sleep(time.Millisecond) // want `call to time.Sleep sleeps, blocking the lock-step loop`
	c.helper()
	<-c.ch   // want `channel receive blocks the lock-step loop`
	select { // want `select without default blocks the lock-step loop`
	case v := <-c.ch:
		_ = v
	}
}

// helper is reached from OnStep; its blocking send is reported with the
// call chain.
func (c *ctl) helper() {
	c.ch <- 1 // want `channel send blocks the lock-step loop \(reached via .*OnStep → .*helper\)`
}

type fileCtl struct{ path string }

func (f *fileCtl) OnStep(time.Duration) {
	_, _ = os.ReadFile(f.path) // want `call to os.ReadFile reads a file, blocking the lock-step loop`
}

type good struct {
	ch chan int
}

// OnStep that polls without blocking: non-blocking select, async
// goroutine, and plain computation.
func (g *good) OnStep(now time.Duration) {
	select {
	case v := <-g.ch:
		_ = v
	default:
	}
	go func() {
		time.Sleep(time.Second) // asynchronous: does not stall the loop
	}()
}

// notOnStep has the wrong signature; its sleep is not reachable from
// any controller and is ignored.
func (g *good) NotOnStep(n int) {
	time.Sleep(time.Duration(n))
}

type allowed struct{}

func (allowed) OnStep(time.Duration) {
	time.Sleep(time.Microsecond) //thermlint:allow onstepblock -- calibration spin documented in DESIGN.md
}
