// Package onstepblock verifies that nothing on the control plane's
// synchronous step path blocks the lock-step simulation loop.
//
// Every OnStep(time.Duration) method is called synchronously once per
// simulation step; a sleep, an unbuffered channel operation or
// synchronous I/O inside it (or anything it calls — a policy Decide, a
// Txn.Apply funnel, an actuator port, a virtual-sysfs attribute) stalls
// every node in the cluster and skews the Δt_L1/Δt_L2 history windows.
// The analyzer walks the shared cross-package call graph
// (internal/lint/callgraph) from the hot roots and flags blocking
// constructs in every synchronously reachable function, reporting the
// call chain from the root. Goroutine bodies are exempt: a spawned
// goroutine does not stall the loop.
package onstepblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"thermctl/internal/lint"
	"thermctl/internal/lint/callgraph"
)

// Analyzer is the OnStep-blocking check.
var Analyzer = &lint.Analyzer{
	Name: "onstepblock",
	Doc:  "flag blocking operations synchronously reachable from the Step/OnStep/Decide/Txn.Apply hot roots",
	Run:  run,
}

// blockingFuncs maps types.Func.FullName() values to a short
// description of why the call blocks. The set covers the blocking
// stdlib surface this repository actually links against plus the
// module's own synchronous network client.
var blockingFuncs = map[string]string{
	"time.Sleep":                    "sleeps",
	"(*sync.WaitGroup).Wait":        "waits on a WaitGroup",
	"(*sync.Cond).Wait":             "waits on a Cond",
	"os.Open":                       "opens a file",
	"os.OpenFile":                   "opens a file",
	"os.Create":                     "creates a file",
	"os.ReadFile":                   "reads a file",
	"os.WriteFile":                  "writes a file",
	"(*os.File).Read":               "reads a file",
	"(*os.File).Write":              "writes a file",
	"(*os.File).ReadAt":             "reads a file",
	"(*os.File).WriteAt":            "writes a file",
	"(*os.File).Sync":               "syncs a file",
	"net.Dial":                      "dials the network",
	"net.DialTimeout":               "dials the network",
	"net.Listen":                    "listens on the network",
	"net/http.Get":                  "performs an HTTP request",
	"net/http.Post":                 "performs an HTTP request",
	"(*net/http.Client).Do":         "performs an HTTP request",
	"(*net/http.Client).Get":        "performs an HTTP request",
	"(*net/http.Client).Post":       "performs an HTTP request",
	"(*os/exec.Cmd).Run":            "runs a subprocess",
	"(*os/exec.Cmd).Output":         "runs a subprocess",
	"(*os/exec.Cmd).Wait":           "waits on a subprocess",
	"(*os/exec.Cmd).CombinedOutput": "runs a subprocess",
	"fmt.Scan":                      "reads stdin",
	"fmt.Scanln":                    "reads stdin",
	"fmt.Scanf":                     "reads stdin",
	"(*thermctl/internal/ipmi.TCPClient).Send": "performs synchronous network I/O",
	"thermctl/internal/ipmi.Dial":              "dials the network",
	"thermctl/internal/ipmi.ListenAndServe":    "listens on the network",
}

func run(pass *lint.Pass) error {
	for _, hd := range callgraph.HotDecls(pass) {
		w := &walker{pass: pass, via: hd.Hot.Via()}
		w.inspect(hd.Decl.Body)
	}
	return nil
}

type walker struct {
	pass *lint.Pass
	via  string
}

// inspect flags blocking constructs in one hot function body. The
// callgraph layer already walked the call chain; only this body's own
// operations are inspected (callees are hot declarations themselves and
// get their own inspection in their own package's pass).
func (w *walker) inspect(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawning a goroutine does not block the loop; its body
			// runs asynchronously.
			return false
		case *ast.SendStmt:
			w.pass.Reportf(n.Pos(), "channel send blocks the lock-step loop%s", w.via)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.Pos(), "channel receive blocks the lock-step loop%s", w.via)
			}
			return true
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					// A default clause makes the select non-blocking;
					// don't descend into the comm clauses (their channel
					// operations never block), only into the bodies.
					for _, c := range n.Body.List {
						for _, st := range c.(*ast.CommClause).Body {
							w.inspect(st)
						}
					}
					return false
				}
			}
			w.pass.Reportf(n.Pos(), "select without default blocks the lock-step loop%s", w.via)
			return false
		case *ast.RangeStmt:
			if tv, ok := w.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.pass.Reportf(n.Pos(), "ranging over a channel blocks the lock-step loop%s", w.via)
				}
			}
			return true
		case *ast.CallExpr:
			w.checkCall(n)
			return true
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if why, ok := blockingFuncs[fn.FullName()]; ok {
		w.pass.Reportf(call.Pos(), "call to %s %s, blocking the lock-step loop%s",
			fn.FullName(), why, w.via)
	}
}
