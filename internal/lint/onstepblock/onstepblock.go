// Package onstepblock verifies that cluster.Controller implementations
// never block the lock-step simulation loop.
//
// Every OnStep(time.Duration) method is called synchronously once per
// simulation step; a sleep, an unbuffered channel operation or
// synchronous I/O inside it (or anything it calls) stalls every node in
// the cluster and skews the Δt_L1/Δt_L2 history windows. The analyzer
// walks the intra-package call graph rooted at each OnStep
// implementation and flags blocking constructs, reporting the call
// chain that reaches them.
package onstepblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"thermctl/internal/lint"
)

// Analyzer is the OnStep-blocking check.
var Analyzer = &lint.Analyzer{
	Name: "onstepblock",
	Doc:  "flag blocking operations reachable from Controller.OnStep implementations",
	Run:  run,
}

// blockingFuncs maps types.Func.FullName() values to a short
// description of why the call blocks. The set covers the blocking
// stdlib surface this repository actually links against plus the
// module's own synchronous network client.
var blockingFuncs = map[string]string{
	"time.Sleep":                    "sleeps",
	"(*sync.WaitGroup).Wait":        "waits on a WaitGroup",
	"(*sync.Cond).Wait":             "waits on a Cond",
	"os.Open":                       "opens a file",
	"os.OpenFile":                   "opens a file",
	"os.Create":                     "creates a file",
	"os.ReadFile":                   "reads a file",
	"os.WriteFile":                  "writes a file",
	"(*os.File).Read":               "reads a file",
	"(*os.File).Write":              "writes a file",
	"(*os.File).ReadAt":             "reads a file",
	"(*os.File).WriteAt":            "writes a file",
	"(*os.File).Sync":               "syncs a file",
	"net.Dial":                      "dials the network",
	"net.DialTimeout":               "dials the network",
	"net.Listen":                    "listens on the network",
	"net/http.Get":                  "performs an HTTP request",
	"net/http.Post":                 "performs an HTTP request",
	"(*net/http.Client).Do":         "performs an HTTP request",
	"(*net/http.Client).Get":        "performs an HTTP request",
	"(*net/http.Client).Post":       "performs an HTTP request",
	"(*os/exec.Cmd).Run":            "runs a subprocess",
	"(*os/exec.Cmd).Output":         "runs a subprocess",
	"(*os/exec.Cmd).Wait":           "waits on a subprocess",
	"(*os/exec.Cmd).CombinedOutput": "runs a subprocess",
	"fmt.Scan":                      "reads stdin",
	"fmt.Scanln":                    "reads stdin",
	"fmt.Scanf":                     "reads stdin",
	"(*thermctl/internal/ipmi.TCPClient).Send": "performs synchronous network I/O",
	"thermctl/internal/ipmi.Dial":              "dials the network",
	"thermctl/internal/ipmi.ListenAndServe":    "listens on the network",
}

func run(pass *lint.Pass) error {
	// Index this package's function declarations by their object, so the
	// walk can follow static intra-package calls.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for fn, fd := range decls {
		if !isOnStep(fn) {
			continue
		}
		w := &walker{pass: pass, decls: decls, visited: map[*types.Func]bool{}}
		w.walk(fn, fd, []string{methodLabel(fn)})
	}
	return nil
}

// isOnStep reports whether fn is a Controller.OnStep implementation:
// a method named OnStep taking a single time.Duration and returning
// nothing.
func isOnStep(fn *types.Func) bool {
	if fn.Name() != "OnStep" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func methodLabel(fn *types.Func) string {
	// Trim the module prefix for readability:
	// "(*thermctl/internal/core.TDVFS).OnStep" → "(*core.TDVFS).OnStep".
	name := fn.FullName()
	name = strings.ReplaceAll(name, "thermctl/internal/", "")
	return strings.ReplaceAll(name, "thermctl/", "")
}

type walker struct {
	pass    *lint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// walk inspects fn's body for blocking constructs and recurses into
// statically resolvable same-package callees. chain is the call path
// from the OnStep root, for diagnostics.
func (w *walker) walk(fn *types.Func, fd *ast.FuncDecl, chain []string) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	w.inspect(fd.Body, chain)
}

func (w *walker) inspect(body ast.Node, chain []string) {
	via := ""
	if len(chain) > 1 {
		via = " (reached via " + strings.Join(chain, " → ") + ")"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawning a goroutine does not block the loop; its body
			// runs asynchronously.
			return false
		case *ast.SendStmt:
			w.pass.Reportf(n.Pos(), "channel send blocks the lock-step loop%s", via)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.Pos(), "channel receive blocks the lock-step loop%s", via)
			}
			return true
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					// A default clause makes the select non-blocking;
					// don't descend into the comm clauses (their channel
					// operations never block), only into the bodies.
					for _, c := range n.Body.List {
						for _, st := range c.(*ast.CommClause).Body {
							w.inspect(st, chain)
						}
					}
					return false
				}
			}
			w.pass.Reportf(n.Pos(), "select without default blocks the lock-step loop%s", via)
			return false
		case *ast.RangeStmt:
			if tv, ok := w.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.pass.Reportf(n.Pos(), "ranging over a channel blocks the lock-step loop%s", via)
				}
			}
			return true
		case *ast.CallExpr:
			w.checkCall(n, chain, via)
			return true
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, chain []string, via string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if why, ok := blockingFuncs[fn.FullName()]; ok {
		w.pass.Reportf(call.Pos(), "call to %s %s, blocking the lock-step loop%s",
			fn.FullName(), why, via)
		return
	}
	if fn.Pkg() != w.pass.Pkg {
		return // cross-package static analysis stops at the boundary
	}
	if fd, ok := w.decls[fn]; ok {
		w.walk(fn, fd, append(chain, fn.Name()))
	}
}
