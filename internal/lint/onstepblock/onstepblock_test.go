package onstepblock_test

import (
	"testing"

	"thermctl/internal/lint/linttest"
	"thermctl/internal/lint/onstepblock"
)

func TestOnStepBlock(t *testing.T) {
	linttest.Run(t, "testdata/osb", onstepblock.Analyzer)
}
