package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtAmbient(t *testing.T) {
	n := New(Default())
	if n.DieC() != 27 || n.SinkC() != 27 {
		t.Errorf("fresh network die=%v sink=%v, want ambient 27", n.DieC(), n.SinkC())
	}
}

func TestRsaMonotoneDecreasingInAirflow(t *testing.T) {
	n := New(Default())
	if err := quick.Check(func(a, b uint8) bool {
		fa, fb := float64(a)/255, float64(b)/255
		if fa > fb {
			fa, fb = fb, fa
		}
		return n.RsaKPerW(fa) >= n.RsaKPerW(fb)-1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRsaClampsAirflow(t *testing.T) {
	n := New(Default())
	if n.RsaKPerW(-1) != n.RsaKPerW(0) {
		t.Error("negative airflow not clamped")
	}
	if n.RsaKPerW(2) != n.RsaKPerW(1) {
		t.Error("airflow above 1 not clamped")
	}
}

func TestSettleMatchesSteadyState(t *testing.T) {
	n := New(Default())
	n.Settle(60, 0.7)
	want := n.SteadyDieC(60, 0.7)
	if math.Abs(n.DieC()-want) > 1e-9 {
		t.Errorf("settled die %v, steady-state predicts %v", n.DieC(), want)
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	n := New(Default())
	for i := 0; i < 4000; i++ { // 1000 s
		n.Step(250*time.Millisecond, 60, 0.7)
	}
	want := n.SteadyDieC(60, 0.7)
	if math.Abs(n.DieC()-want) > 0.05 {
		t.Errorf("die after long run = %v, steady state = %v", n.DieC(), want)
	}
}

func TestDieRespondsFasterThanSink(t *testing.T) {
	n := New(Default())
	n.Settle(15, 0.2)
	die0, sink0 := n.DieC(), n.SinkC()
	// Apply a power step for 5 seconds.
	for i := 0; i < 20; i++ {
		n.Step(250*time.Millisecond, 60, 0.2)
	}
	dieRise := n.DieC() - die0
	sinkRise := n.SinkC() - sink0
	if dieRise <= sinkRise {
		t.Errorf("die rise %v not faster than sink rise %v after power step", dieRise, sinkRise)
	}
	if dieRise < 2 {
		t.Errorf("die rise after 5 s of a 45 W step = %v °C, want noticeable (>2)", dieRise)
	}
}

func TestStabilityAtLargeStep(t *testing.T) {
	// Sub-stepping must keep Euler stable even with a 10 s caller step.
	n := New(Default())
	for i := 0; i < 100; i++ {
		n.Step(10*time.Second, 60, 0.5)
		if n.DieC() < 0 || n.DieC() > 200 || math.IsNaN(n.DieC()) {
			t.Fatalf("instability at step %d: die=%v", i, n.DieC())
		}
	}
	want := n.SteadyDieC(60, 0.5)
	if math.Abs(n.DieC()-want) > 0.1 {
		t.Errorf("large-step run converged to %v, want %v", n.DieC(), want)
	}
}

// TestCalibration checks the operating points this reproduction is tuned
// to, which anchor every experiment:
//
//	busy CPU (~60 W) at 75% fan duty  → ≈50 °C   (paper Fig. 5/6 range)
//	busy CPU at 25% duty              → ≈60 °C   (above the 51 °C tDVFS threshold)
//	idle CPU (~15 W) at low duty      → high 30s  (paper Fig. 2 baseline)
func TestCalibration(t *testing.T) {
	n := New(Default())
	// Airflow for duty d with the default fan: 0.08 + 0.92·d/100.
	airflow := func(duty float64) float64 { return 0.08 + 0.92*duty/100 }

	busy75 := n.SteadyDieC(60, airflow(75))
	if busy75 < 46 || busy75 > 54 {
		t.Errorf("busy @75%% duty = %.1f °C, want 46..54", busy75)
	}
	busy25 := n.SteadyDieC(60, airflow(25))
	if busy25 < 55 || busy25 > 65 {
		t.Errorf("busy @25%% duty = %.1f °C, want 55..65", busy25)
	}
	if busy25-busy75 < 4 {
		t.Errorf("25%%→75%% duty gap = %.1f °C, want >4", busy25-busy75)
	}
	idle := n.SteadyDieC(15, airflow(10))
	if idle < 34 || idle > 42 {
		t.Errorf("idle @10%% duty = %.1f °C, want 34..42", idle)
	}
	full := n.SteadyDieC(60, airflow(100))
	if busy25-full < 6 || busy25-full > 14 {
		t.Errorf("25%%→100%% duty gap = %.1f °C, want 6..14 (paper Fig. 7 ≈8)", busy25-full)
	}
}

func TestSetAmbientShiftsSteadyState(t *testing.T) {
	n := New(Default())
	base := n.SteadyDieC(60, 0.5)
	n.SetAmbientC(n.AmbientC() + 5)
	if got := n.SteadyDieC(60, 0.5); math.Abs(got-base-5) > 1e-9 {
		t.Errorf("ambient +5 °C moved steady state by %v, want exactly 5", got-base)
	}
}

func TestEnergyConservationAtEquilibrium(t *testing.T) {
	// At steady state, stepping must not drift.
	n := New(Default())
	n.Settle(45, 0.6)
	before := n.DieC()
	for i := 0; i < 400; i++ {
		n.Step(250*time.Millisecond, 45, 0.6)
	}
	if math.Abs(n.DieC()-before) > 0.01 {
		t.Errorf("equilibrium drifted from %v to %v", before, n.DieC())
	}
}

func BenchmarkThermalStep(b *testing.B) {
	n := New(Default())
	n.Settle(50, 0.5)
	for i := 0; i < b.N; i++ {
		n.Step(250*time.Millisecond, 50, 0.5)
	}
}
