// Package thermal models the processor's thermal path as a lumped
// two-node RC network:
//
//	die ──R_js──> heatsink ──R_sa(airflow)──> ambient
//
// The die node (small capacitance) responds to power changes within
// seconds — the paper's "sudden" behaviour — while the heatsink node
// (large capacitance) drifts over tens of seconds — the "gradual"
// behaviour. The sink-to-ambient resistance falls with fan airflow
// following a forced-convection law, which is the physical mechanism the
// out-of-band knob actuates.
//
// Integration is explicit Euler with sub-stepping when the caller's dt
// approaches the die time constant, so the model stays stable at any
// step size.
package thermal

import (
	"math"
	"time"
)

// Config holds the RC network parameters.
type Config struct {
	// AmbientC is the inlet air temperature, °C.
	AmbientC float64
	// CdieJPerK is the die+spreader heat capacity.
	CdieJPerK float64
	// CsinkJPerK is the heatsink heat capacity.
	CsinkJPerK float64
	// RjsKPerW is the conductive junction-to-sink resistance.
	RjsKPerW float64
	// RsaMinKPerW is the sink-to-ambient resistance at full airflow.
	RsaMinKPerW float64
	// ConvH0 and ConvH1 define the convective conductance
	// 1/Rsa = H0 + H1·airflow^ConvExp  (W/K).
	ConvH0, ConvH1 float64
	// ConvExp is the forced-convection exponent (≈0.8 for turbulent
	// flow over a finned sink).
	ConvExp float64
}

// Default returns parameters calibrated for the paper's platform: a
// compute-bound Athlon64 (≈60 W) sits near 50 °C with the fan at 75%
// duty, near 60 °C at 25% duty, and idles in the high 30s — matching the
// operating points visible in the paper's figures.
func Default() Config {
	return Config{
		AmbientC:    27.0,
		CdieJPerK:   55,
		CsinkJPerK:  60,
		RjsKPerW:    0.10,
		ConvH0:      1.14,
		ConvH1:      2.19,
		ConvExp:     0.8,
		RsaMinKPerW: 0, // unused when ConvH* are set; kept for explicit override
	}
}

// State is the mutable integrator state of one network: the two node
// temperatures, °C. It is split from Network so a fleet owner can lay
// many networks' states out as one contiguous slice (struct-of-arrays)
// while each Network keeps its configuration and methods — see NewAt.
// All access goes through the owning Network.
type State struct {
	DieC  float64
	SinkC float64
}

// Network is one instance of the two-node RC model. Its integrator
// state lives behind st: either the embedded own field (New) or an
// external slot supplied by the caller (NewAt).
type Network struct {
	cfg Config
	st  *State
	own State
}

// New returns a network equilibrated to zero power: both nodes start at
// ambient. Callers typically Settle() it against idle power first.
func New(cfg Config) *Network {
	n := &Network{cfg: cfg}
	n.st = &n.own
	n.st.DieC = cfg.AmbientC
	n.st.SinkC = cfg.AmbientC
	return n
}

// NewAt is New with caller-provided backing storage for the integrator
// state: the cluster allocates one contiguous []State for all nodes so
// the parallel step sweep walks dense memory instead of chasing
// per-node heap islands. st is reset to ambient. A nil st falls back to
// New.
func NewAt(cfg Config, st *State) *Network {
	if st == nil {
		return New(cfg)
	}
	st.DieC = cfg.AmbientC
	st.SinkC = cfg.AmbientC
	return &Network{cfg: cfg, st: st}
}

// RsaKPerW returns the sink-to-ambient resistance at the given
// normalized airflow in [0, 1].
func (n *Network) RsaKPerW(airflow float64) float64 {
	if airflow < 0 {
		airflow = 0
	}
	if airflow > 1 {
		airflow = 1
	}
	h := n.cfg.ConvH0 + n.cfg.ConvH1*math.Pow(airflow, n.cfg.ConvExp)
	if h <= 0 {
		return math.Inf(1)
	}
	return 1 / h
}

// Step advances the network by dt with the given die power (watts) and
// normalized airflow.
func (n *Network) Step(dt time.Duration, powerW, airflow float64) {
	remaining := dt.Seconds()
	// Sub-step at no more than a fifth of the die time constant for
	// Euler stability.
	tauDie := n.cfg.CdieJPerK * n.cfg.RjsKPerW
	maxH := tauDie / 5
	if maxH <= 0 {
		maxH = remaining
	}
	rsa := n.RsaKPerW(airflow)
	for remaining > 1e-12 {
		h := remaining
		if h > maxH {
			h = maxH
		}
		qJS := (n.st.DieC - n.st.SinkC) / n.cfg.RjsKPerW
		qSA := (n.st.SinkC - n.cfg.AmbientC) / rsa
		n.st.DieC += h * (powerW - qJS) / n.cfg.CdieJPerK
		n.st.SinkC += h * (qJS - qSA) / n.cfg.CsinkJPerK
		remaining -= h
	}
}

// Settle jumps the network to its steady state for the given power and
// airflow, used to initialize simulations at thermal equilibrium.
func (n *Network) Settle(powerW, airflow float64) {
	rsa := n.RsaKPerW(airflow)
	n.st.SinkC = n.cfg.AmbientC + powerW*rsa
	n.st.DieC = n.st.SinkC + powerW*n.cfg.RjsKPerW
}

// DieC returns the die temperature, °C — what the on-die sensor measures.
func (n *Network) DieC() float64 { return n.st.DieC }

// SinkC returns the heatsink temperature, °C.
func (n *Network) SinkC() float64 { return n.st.SinkC }

// AmbientC returns the inlet air temperature.
func (n *Network) AmbientC() float64 { return n.cfg.AmbientC }

// SetAmbientC changes the inlet air temperature, modelling rack-level
// hot spots.
func (n *Network) SetAmbientC(t float64) { n.cfg.AmbientC = t }

// SteadyDieC returns the steady-state die temperature for the given
// power and airflow without mutating the network.
func (n *Network) SteadyDieC(powerW, airflow float64) float64 {
	return n.cfg.AmbientC + powerW*(n.RsaKPerW(airflow)+n.cfg.RjsKPerW)
}
