package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"thermctl/internal/cluster"
	"thermctl/internal/config"
)

func TestSummarizeCampaign(t *testing.T) {
	s := config.DefaultScenario()
	s.Nodes = 2
	s.Chaos.Seed = 7
	s.Chaos.HorizonMS = 30000
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := rig.Cluster.RunProgram(*rig.Program, 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	sum := SummarizeCampaign(rig, res)
	if sum.Nodes != 2 || len(sum.NodeStats) != 2 {
		t.Fatalf("node stats: %+v", sum)
	}
	if !strings.HasPrefix(sum.Program, "BT") {
		t.Fatalf("program = %q", sum.Program)
	}
	if sum.ExecTimeMS != res.ExecTime.Milliseconds() {
		t.Fatalf("exec %dms, want %dms", sum.ExecTimeMS, res.ExecTime.Milliseconds())
	}
	if sum.ClusterAvgW <= 0 {
		t.Fatalf("no power recorded: %+v", sum)
	}
	var nodeSum float64
	for _, ns := range sum.NodeStats {
		if ns.Name == "" || ns.AvgW <= 0 || ns.PeakW < ns.AvgW || ns.DieC <= 0 {
			t.Fatalf("implausible node summary: %+v", ns)
		}
		nodeSum += ns.AvgW
	}
	if nodeSum != sum.ClusterAvgW {
		t.Fatalf("cluster avg %v != node sum %v", sum.ClusterAvgW, nodeSum)
	}
	if sum.Chaos == nil {
		t.Fatal("chaos summary missing")
	}
	if sum.Chaos.Seed != 7 || sum.Chaos.HorizonMS != 30000 {
		t.Fatalf("chaos summary: %+v", sum.Chaos)
	}
	if sum.Chaos.Episodes <= 0 {
		t.Fatalf("chaos plan scheduled no episodes: %+v", sum.Chaos)
	}

	// The artifact round-trips through its on-disk format.
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCampaignSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExecTimeMS != sum.ExecTimeMS || got.Chaos.HorizonMS != 30000 || len(got.NodeStats) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestSummarizeCanceledGeneratorRun(t *testing.T) {
	s := config.DefaultScenario()
	s.Nodes = 1
	s.Program = ""
	rig, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeCampaign(rig, cluster.RunResult{Canceled: true, ExecTime: 5 * time.Second})
	if !sum.Canceled || sum.Program != "" || sum.Chaos != nil {
		t.Fatalf("canceled generator summary: %+v", sum)
	}
}

func TestReadCampaignSummaryRejectsGarbage(t *testing.T) {
	if _, err := ReadCampaignSummary(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must not parse")
	}
}
