package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermctl/internal/tracefile"
)

func TestSummarizeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.tct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := tracefile.NewWriter(f, []tracefile.SeriesDef{
		{Name: "temp", Unit: "degC"},
		{Name: "quiet", Unit: "W"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		w.Append(0, time.Duration(i)*time.Second, 40+float64(i))
	}
	w.Event(30*time.Second, "midpoint")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sum, err := SummarizeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Samples != 60 || sum.Events != 1 || sum.Incomplete != "" {
		t.Fatalf("summary = %+v", sum)
	}
	ts := sum.Series[0]
	if ts.Count != 60 || ts.Min != 40 || ts.Max != 99 || ts.Last != 99 {
		t.Fatalf("temp series = %+v", ts)
	}
	if ts.Mean < 69 || ts.Mean > 70 {
		t.Fatalf("temp mean = %v", ts.Mean)
	}
	// A declared-but-unsampled series must render without blowing up.
	if sum.Series[1].Count != 0 {
		t.Fatalf("quiet series = %+v", sum.Series[1])
	}
	var buf bytes.Buffer
	if err := sum.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"samples: 60", "temp", "degC", "quiet"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}

	// A windowed digest sees only its slice.
	r, closer, err := tracefile.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	wsum, err := SummarizeTrace(r, tracefile.Window{From: 10 * time.Second, To: 19 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if wsum.Series[0].Count != 10 || wsum.Series[0].Min != 50 || wsum.Series[0].Max != 59 {
		t.Fatalf("windowed temp series = %+v", wsum.Series[0])
	}
}
