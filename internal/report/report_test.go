package report

import (
	"strings"
	"testing"

	"thermctl/internal/experiment"
)

func TestCollectAndMarkdown(t *testing.T) {
	all, err := Collect(experiment.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := all.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Every section present.
	for _, want := range []string{
		"# Reproduction report",
		"## Figure 2", "## Figure 5", "## Figure 6", "## Figure 7",
		"## Figure 8", "## Figure 9", "## Table 1", "## Figure 10",
		"## Extensions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	// The verdict machinery mirrors the test suite: on the fixed seed,
	// no paper-claim section may report a deviation (the two documented
	// deviations are prose items in EXPERIMENTS.md, asserted with
	// widened predicates both there and here).
	if n := strings.Count(out, "DEVIATION"); n != 0 {
		t.Errorf("report carries %d DEVIATION verdicts:\n%s", n, out)
	}
	// Paper reference values appear alongside measurements.
	if !strings.Contains(out, "paper ≈8") || !strings.Contains(out, "+4.76%") {
		t.Error("paper reference values missing")
	}
}

func TestMarkdownDeterministic(t *testing.T) {
	render := func() string {
		all, err := Collect(experiment.Seed)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := all.Markdown(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Error("generated report not byte-identical across runs")
	}
}
