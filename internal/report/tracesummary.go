package report

import (
	"fmt"
	"io"
	"math"
	"time"

	"thermctl/internal/tracefile"
)

// SeriesSummary is the per-series digest of a trace file.
type SeriesSummary struct {
	Name  string
	Unit  string
	Count uint64
	Min   float64
	Max   float64
	Mean  float64
	Last  float64
}

// TraceSummary digests a trace file without ever holding its samples
// in memory: the file-reading counterpart of the in-memory trace
// summaries the experiments print, sized for campaigns longer than
// RAM.
type TraceSummary struct {
	Compressed bool
	Chunks     int
	Samples    uint64
	Events     uint64
	From, To   time.Duration
	HasRange   bool
	// Incomplete is the reader's recovery report for a truncated or
	// damaged file, empty for a cleanly closed one.
	Incomplete string
	Series     []SeriesSummary
}

// SummarizeTrace streams one pass over the windowed samples of an open
// reader and digests each declared series.
func SummarizeTrace(r *tracefile.Reader, win tracefile.Window) (*TraceSummary, error) {
	schema := r.Schema()
	s := &TraceSummary{
		Compressed: r.Compressed(),
		Chunks:     r.NumChunks(),
		Series:     make([]SeriesSummary, len(schema)),
	}
	s.Samples, s.Events = r.Counts()
	s.From, s.To, s.HasRange = r.TimeRange()
	if err := r.Incomplete(); err != nil {
		s.Incomplete = err.Error()
	}
	sums := make([]float64, len(schema))
	for i, d := range schema {
		s.Series[i] = SeriesSummary{Name: d.Name, Unit: d.Unit,
			Min: math.Inf(1), Max: math.Inf(-1), Mean: math.NaN(), Last: math.NaN()}
	}
	err := r.Samples(win, func(sm tracefile.Sample) error {
		ss := &s.Series[sm.Series]
		ss.Count++
		sums[sm.Series] += sm.V
		if sm.V < ss.Min {
			ss.Min = sm.V
		}
		if sm.V > ss.Max {
			ss.Max = sm.V
		}
		ss.Last = sm.V
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range s.Series {
		if s.Series[i].Count > 0 {
			s.Series[i].Mean = sums[i] / float64(s.Series[i].Count)
		}
	}
	return s, nil
}

// SummarizeTraceFile opens path and digests it whole.
func SummarizeTraceFile(path string) (*TraceSummary, error) {
	r, closer, err := tracefile.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	return SummarizeTrace(r, tracefile.Window{})
}

// WriteText renders the digest as the `thermtrace info` listing.
func (s *TraceSummary) WriteText(w io.Writer) error {
	comp := "no"
	if s.Compressed {
		comp = "yes"
	}
	if _, err := fmt.Fprintf(w, "chunks: %d  samples: %d  events: %d  compressed: %s\n",
		s.Chunks, s.Samples, s.Events, comp); err != nil {
		return err
	}
	if s.HasRange {
		if _, err := fmt.Fprintf(w, "time range: %s .. %s\n", s.From, s.To); err != nil {
			return err
		}
	}
	if s.Incomplete != "" {
		if _, err := fmt.Fprintf(w, "INCOMPLETE: %s\n", s.Incomplete); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-24s %-8s %10s %12s %12s %12s %12s\n",
		"series", "unit", "count", "min", "mean", "max", "last"); err != nil {
		return err
	}
	for _, ss := range s.Series {
		if _, err := fmt.Fprintf(w, "%-24s %-8s %10d %12.4g %12.4g %12.4g %12.4g\n",
			ss.Name, ss.Unit, ss.Count, ss.Min, ss.Mean, ss.Max, ss.Last); err != nil {
			return err
		}
	}
	return nil
}
