package report

// Campaign summaries are the terminal "report" artifact of a campaign
// server job (internal/server): one JSON document digesting what the
// run did — execution outcome, per-node power/thermal statistics, and
// the fault campaign's damage tally — written next to the job's .tct
// trace. Everything here derives from simulated state only, so a
// summary is as deterministic as the run that produced it.

import (
	"encoding/json"
	"io"

	"thermctl/internal/cluster"
	"thermctl/internal/config"
)

// NodeSummary digests one node's end-of-run statistics.
type NodeSummary struct {
	Name string `json:"name"`
	// AvgW and PeakW are the node's average and peak power draw.
	AvgW  float64 `json:"avg_w"`
	PeakW float64 `json:"peak_w"`
	// DieC is the true die temperature at the end of the run.
	DieC float64 `json:"die_c"`
	// FanDuty is the final PWM duty in percent.
	FanDuty float64 `json:"fan_duty_pct"`
	// FreqTransitions counts DVFS P-state changes over the run.
	FreqTransitions uint64 `json:"freq_transitions"`
	// Emergencies counts hardware trip-point protections.
	Emergencies uint64 `json:"emergencies"`
	// FailSafeEdges counts the node's controller fail-safe
	// escalation/recovery transitions.
	FailSafeEdges int `json:"failsafe_edges"`
}

// ChaosSummary digests the fault campaign of a chaos-enabled run.
type ChaosSummary struct {
	Seed uint64 `json:"seed"`
	// HorizonMS is the effective campaign bound handed to the fault
	// generator — the scenario's explicit horizon_ms or the derived
	// default (see config.Rig.ChaosHorizon).
	HorizonMS int64 `json:"horizon_ms"`
	// Episodes counts scheduled fault episodes; Transitions counts the
	// begin/clear edges actually replayed during the run.
	Episodes    int `json:"episodes"`
	Transitions int `json:"transitions"`
}

// CampaignSummary is the whole-job digest.
type CampaignSummary struct {
	Name    string `json:"name,omitempty"`
	Program string `json:"program,omitempty"`
	Nodes   int    `json:"nodes"`
	Seed    uint64 `json:"seed"`
	// ExecTimeMS is the simulated execution time in milliseconds.
	ExecTimeMS int64 `json:"exec_time_ms"`
	TimedOut   bool  `json:"timed_out,omitempty"`
	Canceled   bool  `json:"canceled,omitempty"`
	// ClusterAvgW sums the nodes' average power draws.
	ClusterAvgW float64       `json:"cluster_avg_w"`
	NodeStats   []NodeSummary `json:"node_stats"`
	Chaos       *ChaosSummary `json:"chaos,omitempty"`
}

// SummarizeCampaign digests a finished (or canceled) scenario run.
func SummarizeCampaign(rig *config.Rig, res cluster.RunResult) *CampaignSummary {
	s := &CampaignSummary{
		Name:       rig.Scenario.Name,
		Nodes:      len(rig.Cluster.Nodes),
		Seed:       rig.Scenario.Seed,
		ExecTimeMS: res.ExecTime.Milliseconds(),
		TimedOut:   res.TimedOut,
		Canceled:   res.Canceled,
	}
	if rig.Program != nil {
		s.Program = rig.Program.Name
	}
	for i, n := range rig.Cluster.Nodes {
		ns := NodeSummary{
			Name:            n.Name,
			AvgW:            n.Meter.AverageW(),
			PeakW:           n.Meter.PeakW(),
			DieC:            n.TrueDieC(),
			FanDuty:         n.Fan.Duty(),
			FreqTransitions: n.CPU.Transitions(),
			Emergencies:     n.Emergencies(),
			FailSafeEdges:   failSafeEdges(rig.Nodes[i]),
		}
		s.ClusterAvgW += ns.AvgW
		s.NodeStats = append(s.NodeStats, ns)
	}
	if rig.Plane != nil {
		cs := &ChaosSummary{
			Seed:        rig.Scenario.Chaos.Seed,
			HorizonMS:   rig.ChaosHorizon.Milliseconds(),
			Transitions: len(rig.Plane.Events()),
		}
		for _, sch := range rig.Plane.Plan().Schedules {
			cs.Episodes += len(sch.Episodes)
		}
		s.Chaos = cs
	}
	return s
}

// failSafeEdges counts one node's fail-safe transitions across
// whichever controllers the scenario wired.
func failSafeEdges(nc *config.NodeControl) int {
	if nc == nil {
		return 0
	}
	if nc.Hybrid != nil {
		return len(nc.Hybrid.FailSafeEvents())
	}
	edges := 0
	if nc.Fan != nil {
		edges += len(nc.Fan.FailSafeEvents())
	}
	if nc.TDVFS != nil {
		edges += len(nc.TDVFS.FailSafeEvents())
	}
	if nc.Sleep != nil {
		edges += len(nc.Sleep.FailSafeEvents())
	}
	return edges
}

// WriteJSON renders the summary as indented JSON, the on-disk artifact
// format.
func (s *CampaignSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadCampaignSummary parses a summary previously written by WriteJSON.
func ReadCampaignSummary(r io.Reader) (*CampaignSummary, error) {
	var s CampaignSummary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
