package ipmi_test

import (
	"sync"
	"testing"
	"time"

	"thermctl/internal/adt7467"
	"thermctl/internal/fan"
	"thermctl/internal/i2c"
	"thermctl/internal/ipmi"
	"thermctl/internal/sensor"
	"thermctl/internal/thermal"
)

// buildNode wires the out-of-band stack the way internal/node does:
// sensor and fan behind an ADT7467 on a shared i2c bus, with the BMC
// holding its own driver handle on that bus.
func buildNode(t *testing.T) (*ipmi.BMC, *adt7467.Chip, *fan.Fan) {
	t.Helper()
	net := thermal.New(thermal.Default())
	sens := sensor.New(sensor.Config{Quantum: 0.25}, sensor.SourceFunc(net.DieC), nil)
	f := fan.New(fan.Default(), 30)
	chip := adt7467.NewChip(sens, f)
	bus := i2c.NewBus()
	if err := bus.Attach(adt7467.DefaultAddr, chip); err != nil {
		t.Fatal(err)
	}
	drv, err := adt7467.NewDriver(bus, adt7467.DefaultAddr)
	if err != nil {
		t.Fatal(err)
	}
	b := ipmi.NewBMC(drv)
	recs := []ipmi.SensorRecord{
		{Number: 1, Name: "CPU Temp", Unit: "degrees C", Read: sens.Read},
		{Number: 2, Name: "CPU Fan", Unit: "RPM", Read: f.TachRPM},
		{Number: 3, Name: "System Power", Unit: "Watts", Read: func() float64 { return 70 + f.Power() }},
	}
	for _, rec := range recs {
		if err := b.AddSensor(rec); err != nil {
			t.Fatal(err)
		}
	}
	return b, chip, f
}

// TestConcurrentSensorReadsAndFanActuation hammers BMC sensor reads
// concurrently with OEM fan actuation and the device monitoring cycle —
// the interleaving a management network produces when several operators
// poll a node whose daemon is actuating the fan. Run with -race: the
// sensor closures observe the rotor and the chip registers while the
// actuation path mutates them, so any missing lock in fan, adt7467 or
// ipmi shows up here.
func TestConcurrentSensorReadsAndFanActuation(t *testing.T) {
	bmc, chip, f := buildNode(t)

	srv, err := ipmi.ListenAndServe("127.0.0.1:0", bmc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		readers   = 4
		actuators = 2
		iters     = 200
	)
	errc := make(chan error, readers+actuators)
	var wg sync.WaitGroup

	// Readers: one TCP connection each, polling the whole repository.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc, err := ipmi.Dial(srv.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer tc.Close()
			c := ipmi.NewClient(tc)
			for i := 0; i < iters; i++ {
				for num := uint8(1); num <= 3; num++ {
					if _, err := c.ReadSensor(num); err != nil {
						errc <- err
						return
					}
				}
				if _, err := c.ListSensors(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	// Actuators: flip fan mode and sweep the duty over the LAN channel.
	for a := 0; a < actuators; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			tc, err := ipmi.Dial(srv.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer tc.Close()
			c := ipmi.NewClient(tc)
			if err := c.SetFanManual(true); err != nil {
				errc <- err
				return
			}
			for i := 0; i < iters; i++ {
				if err := c.SetFanDuty(float64(10 + (a*37+i)%90)); err != nil {
					errc <- err
					return
				}
				if _, err := c.FanDuty(); err != nil {
					errc <- err
					return
				}
			}
		}(a)
	}

	// The device models keep running while the BMC is hammered, exactly
	// as the simulation loop steps them.
	stop := make(chan struct{})
	var stepWG sync.WaitGroup
	stepWG.Add(1)
	go func() {
		defer stepWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			chip.Step(100 * time.Millisecond)
			f.Step(100 * time.Millisecond)
			// Pace the loop: an unthrottled stepper monopolizes the
			// device locks and starves the BMC goroutines under -race.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	stepWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if got := bmc.Handled(); got == 0 {
		t.Fatal("BMC handled no requests")
	}
	if d := f.Duty(); d < 0 || d > 100 {
		t.Fatalf("fan duty %v out of range after hammer", d)
	}
}
