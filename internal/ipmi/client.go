package ipmi

import (
	"fmt"
	"math"
)

// Client wraps a Transport with typed command helpers — the `ipmitool`
// of this reproduction.
type Client struct {
	T Transport
}

// NewClient returns a client over t.
func NewClient(t Transport) *Client { return &Client{T: t} }

// DeviceID returns the BMC's device ID and firmware major version.
func (c *Client) DeviceID() (id, fwMajor byte, err error) {
	resp, err := c.T.Send(Request{NetFn: NetFnApp, Cmd: CmdGetDeviceID})
	if err != nil {
		return 0, 0, err
	}
	if err := resp.Err(); err != nil {
		return 0, 0, err
	}
	if len(resp.Data) < 2 {
		return 0, 0, fmt.Errorf("ipmi: short device ID response")
	}
	return resp.Data[0], resp.Data[1], nil
}

// SensorInfo describes one repository entry as reported over the wire.
type SensorInfo struct {
	Number uint8
	Name   string
	Unit   string
}

// ListSensors walks the BMC's sensor repository.
func (c *Client) ListSensors() ([]SensorInfo, error) {
	resp, err := c.T.Send(Request{NetFn: NetFnSensor, Cmd: CmdGetSDRCount})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if len(resp.Data) != 1 {
		return nil, fmt.Errorf("ipmi: malformed SDR count")
	}
	n := int(resp.Data[0])
	out := make([]SensorInfo, 0, n)
	for i := 0; i < n; i++ {
		r, err := c.T.Send(Request{NetFn: NetFnSensor, Cmd: CmdGetSDR, Data: []byte{byte(i)}})
		if err != nil {
			return nil, err
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if len(r.Data) < 2 {
			return nil, fmt.Errorf("ipmi: short SDR record %d", i)
		}
		unit := "other"
		switch r.Data[1] {
		case 0:
			unit = "degrees C"
		case 1:
			unit = "RPM"
		case 2:
			unit = "Watts"
		}
		out = append(out, SensorInfo{Number: r.Data[0], Unit: unit, Name: string(r.Data[2:])})
	}
	return out, nil
}

// ReadSensor returns the value of sensor num in its natural unit.
func (c *Client) ReadSensor(num uint8) (float64, error) {
	resp, err := c.T.Send(Request{NetFn: NetFnSensor, Cmd: CmdGetSensorReading, Data: []byte{num}})
	if err != nil {
		return 0, err
	}
	if err := resp.Err(); err != nil {
		return 0, err
	}
	if len(resp.Data) != 5 {
		return 0, fmt.Errorf("ipmi: sensor reading has %d bytes, want 5", len(resp.Data))
	}
	exp := int8(resp.Data[0])
	m := int32(uint32(resp.Data[1])<<24 | uint32(resp.Data[2])<<16 |
		uint32(resp.Data[3])<<8 | uint32(resp.Data[4]))
	return float64(m) * math.Pow(10, float64(exp)), nil
}

// FanDuty returns the current fan duty in percent.
func (c *Client) FanDuty() (float64, error) {
	resp, err := c.T.Send(Request{NetFn: NetFnOEM, Cmd: CmdOEMGetFanDuty})
	if err != nil {
		return 0, err
	}
	if err := resp.Err(); err != nil {
		return 0, err
	}
	if len(resp.Data) != 1 {
		return 0, fmt.Errorf("ipmi: fan duty has %d bytes, want 1", len(resp.Data))
	}
	return float64(resp.Data[0]), nil
}

// SetFanDuty commands the fan duty in percent (0..100). The BMC must be
// in manual fan mode for the command to move the fan.
func (c *Client) SetFanDuty(percent float64) error {
	if percent < 0 || percent > 100 {
		return fmt.Errorf("ipmi: duty %v out of range", percent)
	}
	//thermlint:allow hotalloc -- one-byte request payload per fan command at actuation cadence, not per control round
	resp, err := c.T.Send(Request{NetFn: NetFnOEM, Cmd: CmdOEMSetFanDuty, Data: []byte{byte(percent + 0.5)}})
	if err != nil {
		return err
	}
	return resp.Err()
}

// SetFanManual switches the fan between BMC-manual and chip-automatic
// control.
func (c *Client) SetFanManual(manual bool) error {
	mode := byte(FanModeAuto)
	if manual {
		mode = FanModeManual
	}
	//thermlint:allow hotalloc -- one-byte request payload per mode switch (first use only), not per control round
	resp, err := c.T.Send(Request{NetFn: NetFnOEM, Cmd: CmdOEMSetFanMode, Data: []byte{mode}})
	if err != nil {
		return err
	}
	return resp.Err()
}

// FanManual reads back whether the fan is in manual mode.
func (c *Client) FanManual() (bool, error) {
	resp, err := c.T.Send(Request{NetFn: NetFnOEM, Cmd: CmdOEMGetFanMode})
	if err != nil {
		return false, err
	}
	if err := resp.Err(); err != nil {
		return false, err
	}
	if len(resp.Data) != 1 {
		return false, fmt.Errorf("ipmi: fan mode has %d bytes, want 1", len(resp.Data))
	}
	return resp.Data[0] == FanModeManual, nil
}
