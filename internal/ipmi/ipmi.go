// Package ipmi implements a miniature IPMI-style out-of-band management
// plane: a baseboard management controller (BMC) with a sensor
// repository and fan-control commands, a wire encoding, and both
// in-process and TCP transports.
//
// The paper reaches its fan controller through a PCI-attached i2c
// adapter; on modern servers the same chip sits behind the BMC and is
// driven over IPMI. Either way the essential property is identical and
// is what "out-of-band" means: the cooling knob is actuated by a
// controller *outside the host's critical execution path*, so moving it
// costs the application nothing. This package supplies that path for the
// simulated node — the BMC owns its own i2c master to the ADT7467 and
// answers sensor/fan commands without involving the host CPU model.
//
// The protocol is deliberately a subset: netfn/cmd/payload requests with
// completion-coded responses, framed with a 16-bit length prefix on
// stream transports. It is not interoperable with RMCP+, but the command
// numbers follow the IPMI 2.0 spec where one exists.
package ipmi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Network function codes (IPMI 2.0 table 5-1; even = request).
const (
	NetFnApp    = 0x06
	NetFnSensor = 0x04
	NetFnOEM    = 0x30 // OEM extension: fan control, as vendors do
)

// Command codes.
const (
	CmdGetDeviceID      = 0x01 // NetFnApp
	CmdGetSensorReading = 0x2D // NetFnSensor
	CmdGetSDRCount      = 0x20 // NetFnSensor (simplified SDR repository)
	CmdGetSDR           = 0x21 // NetFnSensor: data[0] = record index
	CmdOEMGetFanDuty    = 0x01 // NetFnOEM
	CmdOEMSetFanDuty    = 0x02 // NetFnOEM
	CmdOEMGetFanMode    = 0x03 // NetFnOEM
	CmdOEMSetFanMode    = 0x04 // NetFnOEM
)

// Completion codes (IPMI 2.0 table 5-2).
const (
	CCOK              = 0x00
	CCInvalidCommand  = 0xC1
	CCParamOutOfRange = 0xC9
	CCSensorNotFound  = 0xCB
	CCUnspecified     = 0xFF
)

// Fan mode values for CmdOEM{Get,Set}FanMode.
const (
	FanModeAuto   = 0x00 // chip's static curve owns the fan
	FanModeManual = 0x01 // BMC/host commands own the fan
)

// Request is one IPMI message.
type Request struct {
	NetFn uint8
	Cmd   uint8
	Data  []byte
}

// Response is the reply to a Request.
type Response struct {
	CC   uint8
	Data []byte
}

// CCError is a non-OK completion code as an error. Converting a
// one-byte value into the error interface is allocation-free (the
// runtime interns small values), and the message is only formatted when
// something actually prints the error.
type CCError uint8

// Error implements error.
func (e CCError) Error() string {
	return fmt.Sprintf("ipmi: completion code %#02x", uint8(e))
}

// Err converts a non-OK completion code into an error.
func (r Response) Err() error {
	if r.CC == CCOK {
		return nil
	}
	return CCError(r.CC)
}

// Transport delivers requests to a BMC and returns its responses.
type Transport interface {
	Send(req Request) (Response, error)
}

// Handler processes requests; the BMC implements it, and Local adapts it
// to a Transport.
type Handler interface {
	Handle(req Request) Response
}

// Local is an in-process transport: requests go straight to the handler.
// It models the host-side /dev/ipmi0 system interface (KCS).
type Local struct{ H Handler }

// Send implements Transport.
func (l Local) Send(req Request) (Response, error) {
	if l.H == nil {
		return Response{}, errors.New("ipmi: local transport has no handler")
	}
	return l.H.Handle(req), nil
}

// --- Wire encoding (for stream transports) ---
//
// Request frame:  u16 length | u8 netfn | u8 cmd | payload
// Response frame: u16 length | u8 cc    | payload
// Lengths count the bytes after the length field. Big-endian, as IPMI's
// LAN framing is network order.

// maxFrame bounds a frame payload to keep a malicious peer from forcing
// large allocations.
const maxFrame = 4096

// EncodeRequest serializes req into a frame.
func EncodeRequest(req Request) ([]byte, error) {
	n := 2 + len(req.Data)
	if n > maxFrame {
		return nil, fmt.Errorf("ipmi: request payload %d exceeds frame limit", len(req.Data))
	}
	//thermlint:allow hotalloc -- wire frame built per command on the TCP transport at actuation cadence
	buf := make([]byte, 2+n)
	binary.BigEndian.PutUint16(buf, uint16(n))
	buf[2] = req.NetFn
	buf[3] = req.Cmd
	copy(buf[4:], req.Data)
	return buf, nil
}

// DecodeRequest parses a frame body (after the length prefix).
func DecodeRequest(body []byte) (Request, error) {
	if len(body) < 2 {
		return Request{}, errors.New("ipmi: short request frame")
	}
	return Request{NetFn: body[0], Cmd: body[1], Data: append([]byte(nil), body[2:]...)}, nil
}

// EncodeResponse serializes resp into a frame.
func EncodeResponse(resp Response) ([]byte, error) {
	n := 1 + len(resp.Data)
	if n > maxFrame {
		return nil, fmt.Errorf("ipmi: response payload %d exceeds frame limit", len(resp.Data))
	}
	buf := make([]byte, 2+n)
	binary.BigEndian.PutUint16(buf, uint16(n))
	buf[2] = resp.CC
	copy(buf[3:], resp.Data)
	return buf, nil
}

// DecodeResponse parses a frame body (after the length prefix).
func DecodeResponse(body []byte) (Response, error) {
	if len(body) < 1 {
		return Response{}, errors.New("ipmi: short response frame")
	}
	//thermlint:allow hotalloc -- frame payload must be copied out of the read buffer; per command, not per round
	return Response{CC: body[0], Data: append([]byte(nil), body[1:]...)}, nil
}
