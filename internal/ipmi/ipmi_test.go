package ipmi

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"thermctl/internal/adt7467"
	"thermctl/internal/fan"
	"thermctl/internal/i2c"
	"thermctl/internal/sensor"
)

func newBMCRig(t *testing.T) (*BMC, func(float64), *fan.Fan) {
	t.Helper()
	temp := 45.0
	src := sensor.SourceFunc(func() float64 { return temp })
	sens := sensor.New(sensor.Config{}, src, nil)
	f := fan.New(fan.Default(), 10)
	chip := adt7467.NewChip(sens, f)
	bus := i2c.NewBus()
	if err := bus.Attach(adt7467.DefaultAddr, chip); err != nil {
		t.Fatal(err)
	}
	drv, err := adt7467.NewDriver(bus, adt7467.DefaultAddr)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBMC(drv)
	if err := b.AddSensor(SensorRecord{Number: 1, Name: "CPU Temp", Unit: "degrees C", Read: sens.Read}); err != nil {
		t.Fatal(err)
	}
	return b, func(v float64) { temp = v }, f
}

func TestEncodingRoundTrip(t *testing.T) {
	if err := quick.Check(func(netfn, cmd uint8, data []byte) bool {
		if len(data) > maxFrame-2 {
			data = data[:maxFrame-2]
		}
		frame, err := EncodeRequest(Request{NetFn: netfn, Cmd: cmd, Data: data})
		if err != nil {
			return false
		}
		got, err := DecodeRequest(frame[2:])
		if err != nil {
			return false
		}
		if got.NetFn != netfn || got.Cmd != cmd || len(got.Data) != len(data) {
			return false
		}
		for i := range data {
			if got.Data[i] != data[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	if _, err := EncodeRequest(Request{Data: make([]byte, maxFrame)}); err == nil {
		t.Error("oversized request encoded")
	}
	if _, err := EncodeResponse(Response{Data: make([]byte, maxFrame)}); err == nil {
		t.Error("oversized response encoded")
	}
}

func TestDecodeShortFrames(t *testing.T) {
	if _, err := DecodeRequest([]byte{0x06}); err == nil {
		t.Error("1-byte request decoded")
	}
	if _, err := DecodeResponse(nil); err == nil {
		t.Error("empty response decoded")
	}
}

func TestGetDeviceID(t *testing.T) {
	b, _, _ := newBMCRig(t)
	c := NewClient(Local{H: b})
	id, fw, err := c.DeviceID()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0x20 || fw != 0x01 {
		t.Errorf("DeviceID = %#x/%#x", id, fw)
	}
}

func TestReadSensorPreservesResolution(t *testing.T) {
	b, set, _ := newBMCRig(t)
	c := NewClient(Local{H: b})
	set(51.25)
	v, err := c.ReadSensor(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-51.25) > 0.005 {
		t.Errorf("sensor reading = %v, want 51.25 (centi-degree resolution)", v)
	}
}

func TestReadMissingSensor(t *testing.T) {
	b, _, _ := newBMCRig(t)
	c := NewClient(Local{H: b})
	if _, err := c.ReadSensor(99); err == nil {
		t.Error("missing sensor read succeeded")
	}
	resp := b.Handle(Request{NetFn: NetFnSensor, Cmd: CmdGetSensorReading, Data: []byte{99}})
	if resp.CC != CCSensorNotFound {
		t.Errorf("CC = %#x, want CCSensorNotFound", resp.CC)
	}
}

func TestSensorRepositoryManagement(t *testing.T) {
	b, _, _ := newBMCRig(t)
	if err := b.AddSensor(SensorRecord{Number: 1, Read: func() float64 { return 0 }}); err == nil {
		t.Error("duplicate sensor number accepted")
	}
	if err := b.AddSensor(SensorRecord{Number: 2}); err == nil {
		t.Error("sensor without reader accepted")
	}
	if err := b.AddSensor(SensorRecord{Number: 2, Name: "Fan", Read: func() float64 { return 0 }}); err != nil {
		t.Fatal(err)
	}
	s := b.Sensors()
	if len(s) != 2 || s[0].Number != 1 || s[1].Number != 2 {
		t.Errorf("Sensors = %+v", s)
	}
}

func TestOutOfBandFanControl(t *testing.T) {
	b, _, f := newBMCRig(t)
	c := NewClient(Local{H: b})
	if err := c.SetFanManual(true); err != nil {
		t.Fatal(err)
	}
	if m, err := c.FanManual(); err != nil || !m {
		t.Fatalf("FanManual = %v, %v", m, err)
	}
	if err := c.SetFanDuty(80); err != nil {
		t.Fatal(err)
	}
	if d := f.Duty(); math.Abs(d-80) > 1 {
		t.Errorf("fan duty after OOB command = %v, want ≈80", d)
	}
	got, err := c.FanDuty()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-80) > 1 {
		t.Errorf("FanDuty readback = %v", got)
	}
}

func TestSetFanDutyValidation(t *testing.T) {
	b, _, _ := newBMCRig(t)
	c := NewClient(Local{H: b})
	if err := c.SetFanDuty(150); err == nil {
		t.Error("duty 150 accepted by client")
	}
	resp := b.Handle(Request{NetFn: NetFnOEM, Cmd: CmdOEMSetFanDuty, Data: []byte{200}})
	if resp.CC != CCParamOutOfRange {
		t.Errorf("CC = %#x, want CCParamOutOfRange", resp.CC)
	}
}

func TestUnknownCommand(t *testing.T) {
	b, _, _ := newBMCRig(t)
	resp := b.Handle(Request{NetFn: 0x0A, Cmd: 0x55})
	if resp.CC != CCInvalidCommand {
		t.Errorf("CC = %#x, want CCInvalidCommand", resp.CC)
	}
}

func TestOEMWithoutFanDriver(t *testing.T) {
	b := NewBMC(nil)
	resp := b.Handle(Request{NetFn: NetFnOEM, Cmd: CmdOEMGetFanDuty})
	if resp.CC != CCInvalidCommand {
		t.Errorf("CC = %#x, want CCInvalidCommand for fanless BMC", resp.CC)
	}
}

func TestListSensors(t *testing.T) {
	b, _, _ := newBMCRig(t)
	_ = b.AddSensor(SensorRecord{Number: 7, Name: "PSU Power", Unit: "Watts", Read: func() float64 { return 90 }})
	_ = b.AddSensor(SensorRecord{Number: 3, Name: "Chassis Fan", Unit: "RPM", Read: func() float64 { return 2000 }})
	c := NewClient(Local{H: b})
	got, err := c.ListSensors()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ListSensors = %+v", got)
	}
	// Sorted by sensor number.
	if got[0].Number != 1 || got[1].Number != 3 || got[2].Number != 7 {
		t.Errorf("order: %+v", got)
	}
	if got[0].Name != "CPU Temp" || got[0].Unit != "degrees C" {
		t.Errorf("record 0: %+v", got[0])
	}
	if got[1].Unit != "RPM" || got[2].Unit != "Watts" {
		t.Errorf("units: %+v", got)
	}
}

func TestGetSDRBounds(t *testing.T) {
	b, _, _ := newBMCRig(t)
	resp := b.Handle(Request{NetFn: NetFnSensor, Cmd: CmdGetSDR, Data: []byte{99}})
	if resp.CC != CCSensorNotFound {
		t.Errorf("out-of-range SDR index: CC=%#x", resp.CC)
	}
	resp = b.Handle(Request{NetFn: NetFnSensor, Cmd: CmdGetSDR})
	if resp.CC != CCParamOutOfRange {
		t.Errorf("missing SDR index: CC=%#x", resp.CC)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	b, set, f := newBMCRig(t)
	srv, err := ListenAndServe("127.0.0.1:0", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := NewClient(cl)

	set(60.5)
	v, err := c.ReadSensor(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-60.5) > 0.005 {
		t.Errorf("TCP sensor reading = %v, want 60.5", v)
	}
	if err := c.SetFanManual(true); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFanDuty(55); err != nil {
		t.Fatal(err)
	}
	if d := f.Duty(); math.Abs(d-55) > 1 {
		t.Errorf("fan duty over TCP = %v, want ≈55", d)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	b, _, _ := newBMCRig(t)
	srv, err := ListenAndServe("127.0.0.1:0", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			c := NewClient(cl)
			for i := 0; i < 50; i++ {
				if _, err := c.ReadSensor(1); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if b.Handled() != 8*50 {
		t.Errorf("BMC handled %d requests, want 400", b.Handled())
	}
}

func TestLocalTransportWithoutHandler(t *testing.T) {
	var l Local
	if _, err := l.Send(Request{}); err == nil {
		t.Error("Local with nil handler did not error")
	}
}

func TestResponseErr(t *testing.T) {
	if (Response{CC: CCOK}).Err() != nil {
		t.Error("OK response reported an error")
	}
	if (Response{CC: CCUnspecified}).Err() == nil {
		t.Error("failed response reported no error")
	}
}

func TestNegativeSensorValue(t *testing.T) {
	b := NewBMC(nil)
	_ = b.AddSensor(SensorRecord{Number: 3, Read: func() float64 { return -12.5 }})
	c := NewClient(Local{H: b})
	v, err := c.ReadSensor(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != -12.5 {
		t.Errorf("negative reading = %v, want -12.5", v)
	}
}

var _ = errors.Is // keep errors imported if assertions change

func BenchmarkLocalRoundTrip(b *testing.B) {
	bmc := NewBMC(nil)
	_ = bmc.AddSensor(SensorRecord{Number: 1, Read: func() float64 { return 50 }})
	c := NewClient(Local{H: bmc})
	for i := 0; i < b.N; i++ {
		_, _ = c.ReadSensor(1)
	}
}
