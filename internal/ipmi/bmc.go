package ipmi

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"thermctl/internal/adt7467"
	"thermctl/internal/metrics"
)

// SensorReader supplies one sensor's current value.
type SensorReader func() float64

// SensorRecord describes one entry of the BMC's sensor data repository.
type SensorRecord struct {
	Number uint8
	Name   string
	Unit   string // "degrees C", "RPM", "Watts"
	Read   SensorReader
}

// BMC is the baseboard management controller of one node. It owns a
// sensor repository and (optionally) an ADT7467 driver on its private
// i2c master for out-of-band fan control. Safe for concurrent use.
type BMC struct {
	mu       sync.Mutex
	sensors  map[uint8]SensorRecord
	sorted   []SensorRecord // sensors by number, rebuilt on Register
	fan      *adt7467.Driver
	deviceID [2]byte
	handled  uint64

	// requests and latency are the optional nil-safe metric handles
	// (see InstrumentMetrics).
	requests *metrics.Counter
	latency  *metrics.Histogram
}

// NewBMC returns a BMC with an empty sensor repository. fanDrv may be
// nil for nodes whose fans are not BMC-managed.
func NewBMC(fanDrv *adt7467.Driver) *BMC {
	return &BMC{
		sensors:  make(map[uint8]SensorRecord),
		fan:      fanDrv,
		deviceID: [2]byte{0x20, 0x01}, // device ID, firmware major
	}
}

// AddSensor registers a sensor record. It returns an error if the
// number is taken.
func (b *BMC) AddSensor(rec SensorRecord) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sensors[rec.Number]; ok {
		return fmt.Errorf("ipmi: sensor %d already present", rec.Number)
	}
	if rec.Read == nil {
		return fmt.Errorf("ipmi: sensor %d has no reader", rec.Number)
	}
	b.sensors[rec.Number] = rec
	// Rebuild the sorted view here, at registration (wiring) time, so
	// Sensors — on the SDR request path — allocates nothing.
	b.sorted = append(b.sorted, rec)
	sort.Slice(b.sorted, func(i, j int) bool { return b.sorted[i].Number < b.sorted[j].Number })
	return nil
}

// Sensors lists the repository sorted by sensor number. The slice is
// shared with the BMC — callers must treat it as read-only.
func (b *BMC) Sensors() []SensorRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sorted
}

// Handled returns the number of requests processed, for tests and
// observability.
func (b *BMC) Handled() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.handled
}

// InstrumentMetrics registers a request counter and a request-latency
// histogram on reg with the given constant labels and attaches them.
// Wiring-time only — the BMC serves connections on their own
// goroutines, so attach before the first transport is connected.
func (b *BMC) InstrumentMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	req := reg.NewCounter("thermctl_ipmi_requests_total",
		"IPMI requests handled by the BMC", labels...)
	lat := reg.NewHistogram("thermctl_ipmi_request_seconds",
		"IPMI request handling latency", nil, labels...)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.requests = req
	b.latency = lat
}

// Handle implements Handler.
func (b *BMC) Handle(req Request) Response {
	b.mu.Lock()
	b.handled++
	requests, latency := b.requests, b.latency
	b.mu.Unlock()
	requests.Inc()
	if latency != nil {
		defer latency.ObserveSince(time.Now())
	}
	return b.dispatch(req)
}

// dispatch routes one request to its handler.
func (b *BMC) dispatch(req Request) Response {
	switch {
	case req.NetFn == NetFnApp && req.Cmd == CmdGetDeviceID:
		return Response{CC: CCOK, Data: b.deviceID[:]}
	case req.NetFn == NetFnSensor && req.Cmd == CmdGetSensorReading:
		return b.getSensor(req)
	case req.NetFn == NetFnSensor && req.Cmd == CmdGetSDRCount:
		b.mu.Lock()
		n := len(b.sensors)
		b.mu.Unlock()
		//thermlint:allow hotalloc -- IPMI responses are built per command at actuation cadence, not per control round
		return Response{CC: CCOK, Data: []byte{byte(n)}}
	case req.NetFn == NetFnSensor && req.Cmd == CmdGetSDR:
		return b.getSDR(req)
	case req.NetFn == NetFnOEM:
		return b.oem(req)
	default:
		return Response{CC: CCInvalidCommand}
	}
}

// getSensor returns the reading as a signed decimal-scaled value:
// one signed exponent byte e followed by a signed 32-bit big-endian
// mantissa m, reading = m·10^e. Temperatures and power use e=-2
// (centi-units, preserving the lm-sensors resolution the controller
// needs — raw IPMI's 8-bit readings would quantize too hard); RPM uses
// e=0 so multi-thousand readings cannot overflow.
func (b *BMC) getSensor(req Request) Response {
	if len(req.Data) != 1 {
		return Response{CC: CCParamOutOfRange}
	}
	b.mu.Lock()
	rec, ok := b.sensors[req.Data[0]]
	b.mu.Unlock()
	if !ok {
		return Response{CC: CCSensorNotFound}
	}
	v := rec.Read()
	exp := int8(-2)
	if rec.Unit == "RPM" {
		exp = 0
	}
	m := int32(math.Round(v * math.Pow(10, -float64(exp))))
	um := uint32(m)
	//thermlint:allow hotalloc -- IPMI responses are built per command at actuation cadence, not per control round
	return Response{CC: CCOK, Data: []byte{
		byte(exp), byte(um >> 24), byte(um >> 16), byte(um >> 8), byte(um),
	}}
}

// getSDR returns record data for the idx-th sensor (sorted by number):
// [sensor number, unit code, name...]. Unit codes: 0 °C, 1 RPM, 2 W,
// 255 other.
func (b *BMC) getSDR(req Request) Response {
	if len(req.Data) != 1 {
		return Response{CC: CCParamOutOfRange}
	}
	recs := b.Sensors()
	idx := int(req.Data[0])
	if idx >= len(recs) {
		return Response{CC: CCSensorNotFound}
	}
	rec := recs[idx]
	unit := byte(0xFF)
	switch rec.Unit {
	case "degrees C":
		unit = 0
	case "RPM":
		unit = 1
	case "Watts":
		unit = 2
	}
	//thermlint:allow hotalloc -- SDR records are fetched at discovery time, not per control round
	data := append([]byte{rec.Number, unit}, []byte(rec.Name)...)
	return Response{CC: CCOK, Data: data}
}

func (b *BMC) oem(req Request) Response {
	if b.fan == nil {
		return Response{CC: CCInvalidCommand}
	}
	switch req.Cmd {
	case CmdOEMGetFanDuty:
		d, err := b.fan.Duty()
		if err != nil {
			return Response{CC: CCUnspecified}
		}
		//thermlint:allow hotalloc -- IPMI responses are built per command at actuation cadence, not per control round
		return Response{CC: CCOK, Data: []byte{byte(math.Round(d))}}
	case CmdOEMSetFanDuty:
		if len(req.Data) != 1 || req.Data[0] > 100 {
			return Response{CC: CCParamOutOfRange}
		}
		if err := b.fan.SetDuty(float64(req.Data[0])); err != nil {
			return Response{CC: CCUnspecified}
		}
		return Response{CC: CCOK}
	case CmdOEMGetFanMode:
		m, err := b.fan.Manual()
		if err != nil {
			return Response{CC: CCUnspecified}
		}
		mode := byte(FanModeAuto)
		if m {
			mode = FanModeManual
		}
		//thermlint:allow hotalloc -- IPMI responses are built per command at actuation cadence, not per control round
		return Response{CC: CCOK, Data: []byte{mode}}
	case CmdOEMSetFanMode:
		if len(req.Data) != 1 || req.Data[0] > FanModeManual {
			return Response{CC: CCParamOutOfRange}
		}
		if err := b.fan.SetManual(req.Data[0] == FanModeManual); err != nil {
			return Response{CC: CCUnspecified}
		}
		return Response{CC: CCOK}
	default:
		return Response{CC: CCInvalidCommand}
	}
}
