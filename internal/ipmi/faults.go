package ipmi

import (
	"errors"
	"time"

	"thermctl/internal/faults"
)

// ErrTimeout is returned by FaultTransport while an ipmi-timeout fault
// episode is active: the BMC never answered and the deadline expired.
var ErrTimeout = errors.New("ipmi: request timed out")

// FaultTransport wraps a Transport with a fault-plane injector. While an
// ipmi-timeout episode is active every request fails with ErrTimeout
// without reaching the inner transport; an ipmi-latency episode delays
// each request through the Sleep hook. Sleep may be nil (simulation:
// latency windows are then drop-free and delay-free — only the timeout
// fault has effect), or time.Sleep in a live daemon.
type FaultTransport struct {
	T     Transport
	Inj   *faults.Injector
	Sleep func(time.Duration)
}

// Send implements Transport.
func (ft *FaultTransport) Send(req Request) (Response, error) {
	st := ft.Inj.State()
	if st.IPMIDrop {
		return Response{}, ErrTimeout
	}
	if st.IPMILatency > 0 && ft.Sleep != nil {
		ft.Sleep(st.IPMILatency)
	}
	return ft.T.Send(req)
}

// RetryTransport retries failed requests through a faults.Retrier —
// bounded attempts with jittered backoff — before surfacing the error.
// IPMI commands in this repo are idempotent (sensor reads, absolute
// duty writes), so re-sending is safe.
type RetryTransport struct {
	T Transport
	R *faults.Retrier
}

// Send implements Transport. It drives the retrier's closure-free
// Attempt loop: a Do closure would allocate on every command sent from
// Step-reachable code.
func (rt *RetryTransport) Send(req Request) (Response, error) {
	var resp Response
	var err error
	for a := rt.R.Begin(); a.Next(&err); {
		resp, err = rt.T.Send(req)
	}
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}
