package ipmi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Server serves BMC requests over a stream listener (the RMCP-lite LAN
// channel of this reproduction).
type Server struct {
	h  Handler
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve starts serving h on ln in background goroutines and returns
// immediately. Close the server to stop.
func Serve(ln net.Listener, h Handler) *Server {
	s := &Server{h: h, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// ListenAndServe listens on addr ("host:port"; use ":0" or
// "127.0.0.1:0" for an ephemeral port) and serves h.
func ListenAndServe(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipmi: listen: %w", err)
	}
	return Serve(ln, h), nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := DecodeRequest(body)
		var resp Response
		if err != nil {
			resp = Response{CC: CCInvalidCommand}
		} else {
			resp = s.h.Handle(req)
		}
		frame, err := EncodeResponse(resp)
		if err != nil {
			frame, _ = EncodeResponse(Response{CC: CCUnspecified})
		}
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("ipmi: frame length %d exceeds limit", n)
	}
	//thermlint:allow hotalloc -- one frame buffer per command on the TCP transport at actuation cadence
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// DefaultTimeout is the per-request deadline a dialed TCPClient starts
// with. A BMC answers a sensor read in well under a second; a transport
// that stays silent this long is wedged, and without a deadline the
// caller (the control loop) would hang with it.
const DefaultTimeout = 2 * time.Second

// TCPClient is a Transport over one TCP connection. Safe for concurrent
// use; requests are serialized on the connection.
type TCPClient struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to an ipmi Server at addr. The client starts with
// DefaultTimeout as its per-request deadline; see SetTimeout.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipmi: dial: %w", err)
	}
	return &TCPClient{conn: conn, timeout: DefaultTimeout}, nil
}

// SetTimeout changes the per-request deadline. Zero or negative disables
// it (requests may block forever — the pre-deadline behaviour).
func (c *TCPClient) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Send implements Transport. The whole request — write plus response
// read — runs under the per-request deadline; an expired deadline
// surfaces as a timeout error and the connection is no longer usable
// for framing (a late response would desynchronize the stream).
func (c *TCPClient) Send(req Request) (Response, error) {
	frame, err := EncodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return Response{}, fmt.Errorf("ipmi: deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(frame); err != nil {
		return Response{}, fmt.Errorf("ipmi: send: %w", err)
	}
	body, err := readFrame(c.conn)
	if err != nil {
		return Response{}, fmt.Errorf("ipmi: recv: %w", err)
	}
	return DecodeResponse(body)
}

// Close closes the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }
