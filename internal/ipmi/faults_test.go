package ipmi

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"thermctl/internal/faults"
	"thermctl/internal/rng"
)

// TestTimeoutOnSilentServer is the regression for the no-deadline bug: a
// BMC (or network) that accepts the connection but never replies used to
// hang the caller — and with it the control loop — forever.
func TestTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow everything, answer nothing.
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(100 * time.Millisecond)

	start := time.Now()
	_, err = cl.Send(Request{NetFn: NetFnApp, Cmd: CmdGetDeviceID})
	if err == nil {
		t.Fatal("request against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("request took %v to fail, want ≈100ms", elapsed)
	}
}

func TestDialSetsDefaultTimeout(t *testing.T) {
	b, _, _ := newBMCRig(t)
	srv, err := ListenAndServe("127.0.0.1:0", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.timeout != DefaultTimeout {
		t.Errorf("dialed client timeout = %v, want %v", cl.timeout, DefaultTimeout)
	}
	// A healthy server still answers under the deadline regime.
	if _, err := NewClient(cl).ReadSensor(1); err != nil {
		t.Errorf("read over healthy connection: %v", err)
	}
}

func TestFaultTransportDrop(t *testing.T) {
	b, _, _ := newBMCRig(t)
	ft := &FaultTransport{
		T:   &Local{H: b},
		Inj: faults.Static(faults.State{IPMIDrop: true}),
	}
	if _, err := ft.Send(Request{NetFn: NetFnApp, Cmd: CmdGetDeviceID}); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestFaultTransportLatency(t *testing.T) {
	b, _, _ := newBMCRig(t)
	var slept time.Duration
	ft := &FaultTransport{
		T:     &Local{H: b},
		Inj:   faults.Static(faults.State{IPMILatency: 25 * time.Millisecond}),
		Sleep: func(d time.Duration) { slept += d },
	}
	if _, err := ft.Send(Request{NetFn: NetFnApp, Cmd: CmdGetDeviceID}); err != nil {
		t.Fatalf("latency episode must delay, not fail: %v", err)
	}
	if slept != 25*time.Millisecond {
		t.Errorf("slept %v, want 25ms", slept)
	}
	// A nil Sleep hook (simulation) must not crash or fail.
	ft.Sleep = nil
	if _, err := ft.Send(Request{NetFn: NetFnApp, Cmd: CmdGetDeviceID}); err != nil {
		t.Errorf("nil sleep hook: %v", err)
	}
}

// flakyTransport fails the first n sends.
type flakyTransport struct {
	inner Transport
	fails int
	sends int
}

func (f *flakyTransport) Send(req Request) (Response, error) {
	f.sends++
	if f.sends <= f.fails {
		return Response{}, errors.New("transient NAK")
	}
	return f.inner.Send(req)
}

func TestRetryTransportAbsorbsTransients(t *testing.T) {
	b, set, _ := newBMCRig(t)
	set(52)
	fl := &flakyTransport{inner: &Local{H: b}, fails: 2}
	rt := &RetryTransport{
		T: fl,
		R: faults.NewRetrier(faults.DefaultRetryPolicy(), rng.New(1), nil),
	}
	v, err := NewClient(rt).ReadSensor(1)
	if err != nil {
		t.Fatalf("retry transport surfaced a transient failure: %v", err)
	}
	if v < 51 || v > 53 {
		t.Errorf("reading = %v, want ≈52", v)
	}
	if fl.sends != 3 {
		t.Errorf("sends = %d, want 3 (two failures absorbed)", fl.sends)
	}
}

func TestRetryTransportGivesUp(t *testing.T) {
	fl := &flakyTransport{inner: &Local{}, fails: 1 << 30}
	rt := &RetryTransport{
		T: fl,
		R: faults.NewRetrier(faults.DefaultRetryPolicy(), rng.New(1), nil),
	}
	if _, err := rt.Send(Request{NetFn: NetFnApp, Cmd: CmdGetDeviceID}); err == nil {
		t.Fatal("permanently failing transport reported success")
	}
	if fl.sends != faults.DefaultRetryPolicy().MaxAttempts {
		t.Errorf("sends = %d, want MaxAttempts", fl.sends)
	}
}
