package ipmi

import "testing"

// Fuzz targets for the wire decoders: arbitrary bytes from the network
// must never panic and, when they decode, must re-encode losslessly.

func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{NetFnSensor, CmdGetSensorReading, 0x01})
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		frame, err := EncodeRequest(req)
		if err != nil {
			// Oversized payloads legitimately refuse to encode.
			if len(req.Data) <= maxFrame-2 {
				t.Fatalf("round-trip encode failed: %v", err)
			}
			return
		}
		again, err := DecodeRequest(frame[2:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.NetFn != req.NetFn || again.Cmd != req.Cmd || len(again.Data) != len(req.Data) {
			t.Fatal("request round trip not lossless")
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{CCOK, 0x12, 0x34})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		frame, err := EncodeResponse(resp)
		if err != nil {
			if len(resp.Data) <= maxFrame-1 {
				t.Fatalf("round-trip encode failed: %v", err)
			}
			return
		}
		again, err := DecodeResponse(frame[2:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.CC != resp.CC || len(again.Data) != len(resp.Data) {
			t.Fatal("response round trip not lossless")
		}
	})
}

// FuzzBMCHandle throws arbitrary requests at a live BMC: no input may
// panic it, and every response must carry a defined completion code
// path (OK or error — never an empty invalid frame).
func FuzzBMCHandle(f *testing.F) {
	f.Add(uint8(NetFnSensor), uint8(CmdGetSensorReading), []byte{1})
	f.Add(uint8(NetFnOEM), uint8(CmdOEMSetFanDuty), []byte{200})
	f.Add(uint8(0xFF), uint8(0xFF), []byte{})
	f.Fuzz(func(t *testing.T, netfn, cmd uint8, data []byte) {
		b := NewBMC(nil)
		_ = b.AddSensor(SensorRecord{Number: 1, Name: "T", Unit: "degrees C", Read: func() float64 { return 50 }})
		resp := b.Handle(Request{NetFn: netfn, Cmd: cmd, Data: data})
		if _, err := EncodeResponse(resp); err != nil {
			t.Fatalf("BMC produced an unencodable response: %v", err)
		}
	})
}
