package core

import (
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// newHybridRig builds a node with a full unified controller.
func newHybridRig(t *testing.T, pp int, maxDuty float64) (*node.Node, *Hybrid) {
	t.Helper()
	n, err := node.New(node.DefaultConfig("hybrid", 13))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	read := SysfsTemp(n.FS, n.Hwmon.TempInput)
	fan, err := NewController(DefaultConfig(pp), read,
		ActuatorBinding{Actuator: NewFanActuator(&SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, maxDuty)})
	if err != nil {
		t.Fatal(err)
	}
	act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	dvfs, err := NewTDVFS(DefaultTDVFSConfig(pp), read, act)
	if err != nil {
		t.Fatal(err)
	}
	return n, NewHybrid(fan, dvfs)
}

func runHybrid(n *node.Node, h *Hybrid, d time.Duration) {
	dt := 250 * time.Millisecond
	deadline := n.Elapsed() + d
	for n.Elapsed() < deadline {
		n.Step(dt)
		h.OnStep(n.Elapsed())
	}
}

func TestHybridFanActsFirstDVFSLater(t *testing.T) {
	n, h := newHybridRig(t, 50, 30) // weak cap: DVFS will be needed
	n.SetGenerator(workload.NewCPUBurn(nil))

	// Early in the run the fan should already be moving while DVFS has
	// not yet been triggered (the out-of-band knob leads).
	runHybrid(n, h, 30*time.Second)
	if n.Fan.Duty() < 15 {
		t.Errorf("fan duty %.1f after 30 s of cpu-burn; fan should lead", n.Fan.Duty())
	}
	if h.DVFS.Engaged() {
		t.Error("DVFS engaged before the fan had a chance")
	}

	runHybrid(n, h, 8*time.Minute)
	if !h.DVFS.Engaged() {
		t.Fatal("DVFS never engaged despite the 30% duty cap")
	}
	if n.TrueDieC() > 58 {
		t.Errorf("hybrid left the die at %.1f °C", n.TrueDieC())
	}
}

func TestHybridHoldsFanFloorWhileEngaged(t *testing.T) {
	n, h := newHybridRig(t, 50, 30)
	n.SetGenerator(workload.NewCPUBurn(nil))
	runHybrid(n, h, 9*time.Minute)
	if !h.DVFS.Engaged() {
		t.Skip("DVFS did not engage in this configuration")
	}
	// While engaged, the fan must not relax even as the die cools: run
	// on and check the duty never drops meaningfully below its level
	// at engagement.
	ref := n.Fan.Duty()
	low := ref
	dt := 250 * time.Millisecond
	for i := 0; i < 2400; i++ { // 10 more minutes
		n.Step(dt)
		h.OnStep(n.Elapsed())
		if !h.DVFS.Engaged() {
			break // restored: floor released, fine
		}
		if d := n.Fan.Duty(); d < low {
			low = d
		}
	}
	if low < ref-2 { // one 8-bit PWM LSB of slack
		t.Errorf("fan relaxed from %.1f%% to %.1f%% while DVFS was engaged", ref, low)
	}
}

func TestHybridNoDVFSWhenFanSuffices(t *testing.T) {
	n, h := newHybridRig(t, 50, 100) // full fan: holds the steady state alone
	n.SetGenerator(workload.NewCPUBurn(nil))
	runHybrid(n, h, 10*time.Minute)
	// The warm-up ramp may cross the threshold while still rising —
	// faster than the fan's thermal response — so a brief transient
	// engage-and-restore is legitimate. In steady state the in-band
	// knob must be released at the nominal frequency, with only a
	// handful of transitions ever taken.
	if h.DVFS.Engaged() {
		t.Error("DVFS still engaged although the fan alone holds the steady state")
	}
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("steady-state frequency %.1f GHz, want nominal 2.4", n.CPU.FreqGHz())
	}
	if n.CPU.Transitions() > 4 {
		t.Errorf("%d frequency transitions with a sufficient fan, want ≤4", n.CPU.Transitions())
	}
}

func TestHybridReleasesFloorAfterRestore(t *testing.T) {
	n, h := newHybridRig(t, 50, 30)
	n.SetGenerator(workload.NewCPUBurn(nil))
	runHybrid(n, h, 9*time.Minute)
	if !h.DVFS.Engaged() {
		t.Skip("DVFS did not engage")
	}
	// Load vanishes: temperature collapses, DVFS restores nominal, and
	// the fan is then free to spin down.
	n.SetGenerator(workload.Constant(0.02))
	runHybrid(n, h, 6*time.Minute)
	if h.DVFS.Engaged() {
		t.Fatal("DVFS still engaged long after the load ended")
	}
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("frequency %.1f GHz after cooldown, want restored 2.4", n.CPU.FreqGHz())
	}
	if n.Fan.Duty() > 25 {
		t.Errorf("fan still at %.1f%% on an idle machine; floor not released", n.Fan.Duty())
	}
}

func TestControllerSetHoldFloorBlocksDecreases(t *testing.T) {
	// Unit-level check of the floor mechanism with a scripted falling
	// temperature.
	vals := make([]float64, 80)
	for i := range vals {
		vals[i] = 60 - 0.5*float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	c.SetHoldFloor(true)
	drive(c, 80)
	// Only the anchor application may have happened; the falling
	// temperature must not have produced downward moves.
	for i := 1; i < len(fa.applied); i++ {
		if fa.applied[i] < fa.applied[i-1] {
			t.Fatalf("mode decreased under hold-floor: %v", fa.applied)
		}
	}
}
