package core_test

// Golden step-trace equivalence harness. Each scenario drives a
// controller through a deterministic synthetic thermal script (including
// scripted read and actuation faults) and records every externally
// observable event — actuator applies, error counts, indices, fail-safe
// edges — as a byte-exact trace. The committed testdata/golden files
// were recorded from the pre-engine controller implementations; the
// engine-hosted policies must reproduce them byte for byte, which is the
// behavior-preservation contract of the control-plane refactor.
//
// The goldens are stored as event-only .tct trace images (one event per
// trace line, t = line ordinal; see internal/tracefile) and compared
// with the same Diff primitives cmd/thermtrace uses, so every go test
// run also exercises the binary writer, reader and differ end to end.
// Inspect a golden with `go run ./cmd/thermtrace cat -events <file>`.
//
// Regenerate (only when a deliberate behavior change is being made):
//
//	go test ./internal/core -run TestGolden -update

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"thermctl/internal/core"
	"thermctl/internal/tracefile"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// trace accumulates the byte-exact event log of one scenario.
type trace struct {
	lines []string
}

func (tr *trace) addf(format string, args ...any) {
	tr.lines = append(tr.lines, fmt.Sprintf(format, args...))
}

// checkGolden compares the trace against testdata/golden/<name>.tct,
// or rewrites the file under -update.
func checkGolden(t *testing.T, name string, tr *trace) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".tct")
	if *update {
		img, err := tracefile.EncodeEvents(tr.lines)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines, %d bytes)", path, len(tr.lines), len(img))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to record): %v", err)
	}
	if err := tracefile.DiffEventLines(want, tr.lines); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// scriptReader replays a synthetic temperature script; read i fails when
// fail(i) is true. Each call consumes one index, exactly like one sample
// from a real sensor stream.
type scriptReader struct {
	i    int
	temp func(i int) float64
	fail func(i int) bool
}

func (r *scriptReader) read() (float64, error) {
	i := r.i
	r.i++
	if r.fail != nil && r.fail(i) {
		return 0, errors.New("golden: scripted read fault")
	}
	return r.temp(i), nil
}

// traceActuator records every Apply in the trace; call c fails when
// fail(c) is true.
type traceActuator struct {
	name  string
	modes int
	tr    *trace
	fail  func(call int) bool
	calls int
	cur   int
}

func (a *traceActuator) Name() string          { return a.name }
func (a *traceActuator) NumModes() int         { return a.modes }
func (a *traceActuator) Current() (int, error) { return a.cur, nil }

func (a *traceActuator) Apply(m int) error {
	call := a.calls
	a.calls++
	if a.fail != nil && a.fail(call) {
		a.tr.addf("  apply %s mode=%d call=%d FAIL", a.name, m, call)
		return errors.New("golden: scripted apply fault")
	}
	a.cur = m
	a.tr.addf("  apply %s mode=%d call=%d ok", a.name, m, call)
	return nil
}

// traceFreqPort is the FreqPort analogue of traceActuator, for the tDVFS
// lane (NewTDVFS builds its own DVFSActuator over a port).
type traceFreqPort struct {
	tr    *trace
	freqs []int64
	cur   int64
	calls int
	fail  func(call int) bool
}

func (p *traceFreqPort) AvailableKHz() ([]int64, error) { return p.freqs, nil }
func (p *traceFreqPort) CurrentKHz() (int64, error)     { return p.cur, nil }

func (p *traceFreqPort) SetKHz(f int64) error {
	call := p.calls
	p.calls++
	if p.fail != nil && p.fail(call) {
		p.tr.addf("  setkhz %d call=%d FAIL", f, call)
		return errors.New("golden: scripted freq fault")
	}
	p.cur = f
	p.tr.addf("  setkhz %d call=%d ok", f, call)
	return nil
}

// stepDt mirrors the cluster's simulation step; controllers sample every
// fifth step at their 250 ms period.
const stepDt = 50 * time.Millisecond

// fanScript is a smooth multi-tone thermal trajectory spanning the
// controller's [Tmin, Tmax] band with excursions below Tmin.
func fanScript(i int) float64 {
	x := float64(i)
	return 52 + 16*math.Sin(x/22) + 5*math.Sin(x/7.3) + 0.8*math.Sin(x*1.7)
}

// tdvfsScript crosses the 51 °C threshold slowly, plateaus, creeps into
// the emergency band, then cools back below the hysteresis point.
func tdvfsScript(i int) float64 {
	switch {
	case i < 40:
		return 45
	case i < 160:
		return 45 + 13*float64(i-40)/120 // ramp to 58
	case i < 260:
		return 58 + 0.002*float64(i-160) // hot plateau, flat trend
	case i < 320:
		return 58.2 + 4*float64(i-260)/60 // creep into the emergency band
	case i < 420:
		return 62.2 - 18*float64(i-320)/100 // cool to 44.2
	default:
		return 46
	}
}

// hybridScript heats under load, holds hot long enough to engage tDVFS,
// and then idles so the coordinator must release the fan floor.
func hybridScript(i int) float64 {
	switch {
	case i < 60:
		return 44 + 12*float64(i)/60
	case i < 280:
		return 56 + 1.5*math.Sin(float64(i)/17)
	case i < 360:
		return 56 - 14*float64(i-280)/80
	default:
		return 42 + 0.5*math.Sin(float64(i)/11)
	}
}

func fanState(tr *trace, step int, c *core.Controller, slots int) {
	line := fmt.Sprintf("step=%04d errs=%d fs=%v", step, c.Errors(), c.FailSafe())
	for i := 0; i < slots; i++ {
		line += fmt.Sprintf(" idx%d=%d moves%d=%d", i, c.Index(i), i, c.Moves(i))
	}
	tr.lines = append(tr.lines, line)
}

func fanEvents(tr *trace, c *core.Controller) {
	for _, ev := range c.FailSafeEvents() {
		tr.addf("event at=%s engaged=%v", ev.At, ev.Engaged)
	}
	tr.addf("final status %s", c.Status())
}

func TestGoldenFanClean(t *testing.T) {
	tr := &trace{}
	r := &scriptReader{temp: fanScript}
	act := &traceActuator{name: "fan", modes: 100, tr: tr}
	c, err := core.NewController(core.DefaultConfig(50), r.read,
		core.ActuatorBinding{Actuator: act})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1200; step++ {
		c.OnStep(time.Duration(step) * stepDt)
		if step%5 == 0 {
			fanState(tr, step, c, 1)
		}
	}
	fanEvents(tr, c)
	checkGolden(t, "fan-clean", tr)
}

func TestGoldenFanFaulty(t *testing.T) {
	tr := &trace{}
	r := &scriptReader{
		temp: fanScript,
		// 15 consecutive failed samples: escalation at the 8th, then
		// the dropout continues under fail-safe before recovery.
		fail: func(i int) bool { return i >= 120 && i < 135 },
	}
	act := &traceActuator{
		name: "fan", modes: 100, tr: tr,
		// A flaky actuation window early on, plus a stuck bus during
		// the escalation so the fail-safe apply itself must retry.
		fail: func(call int) bool {
			return (call >= 10 && call < 13) || (call >= 30 && call < 33)
		},
	}
	c, err := core.NewController(core.DefaultConfig(35), r.read,
		core.ActuatorBinding{Actuator: act})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1200; step++ {
		c.OnStep(time.Duration(step) * stepDt)
		if step%5 == 0 {
			fanState(tr, step, c, 1)
		}
	}
	fanEvents(tr, c)
	checkGolden(t, "fan-faulty", tr)
}

func TestGoldenFanMultiActuator(t *testing.T) {
	tr := &trace{}
	r := &scriptReader{temp: fanScript}
	fan := &traceActuator{name: "fan", modes: 100, tr: tr}
	dvfs := &traceActuator{name: "dvfs", modes: 5, tr: tr}
	acpi := &traceActuator{name: "acpi", modes: 8, tr: tr}
	c, err := core.NewController(core.DefaultConfig(60), r.read,
		core.ActuatorBinding{Actuator: fan},
		core.ActuatorBinding{Actuator: dvfs, N: 10},
		core.ActuatorBinding{Actuator: acpi})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1500; step++ {
		c.OnStep(time.Duration(step) * stepDt)
		if step%5 == 0 {
			fanState(tr, step, c, 3)
		}
	}
	fanEvents(tr, c)
	checkGolden(t, "fan-multi", tr)
}

func TestGoldenTDVFS(t *testing.T) {
	tr := &trace{}
	r := &scriptReader{
		temp: tdvfsScript,
		// Post-cooldown sensor dropout: 16 consecutive failures force
		// the frequency-floor escalation and a recovery.
		fail: func(i int) bool { return i >= 430 && i < 446 },
	}
	port := &traceFreqPort{
		tr:    tr,
		freqs: []int64{2400000, 2200000, 2000000, 1800000, 1600000},
		cur:   2400000,
		fail:  func(call int) bool { return call == 1 },
	}
	act, err := core.NewDVFSActuator(port)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewTDVFS(core.DefaultTDVFSConfig(50), r.read, act)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2600; step++ {
		d.OnStep(time.Duration(step) * stepDt)
		if step%5 == 0 {
			tr.addf("step=%04d errs=%d fs=%v mode=%d downs=%d ups=%d engaged=%v",
				step, d.Errors(), d.FailSafe(), d.CurrentMode(),
				d.Downscales(), d.Upscales(), d.Engaged())
		}
	}
	for _, ev := range d.FailSafeEvents() {
		tr.addf("event at=%s engaged=%v", ev.At, ev.Engaged)
	}
	at, ok := d.TriggeredAt()
	tr.addf("final triggered=%v at=%s mode=%d", ok, at, d.CurrentMode())
	checkGolden(t, "tdvfs", tr)
}

func TestGoldenHybrid(t *testing.T) {
	tr := &trace{}
	// Each lane owns its reader, as in the daemons: the DVFS lane
	// samples first each step, then the fan lane.
	fanR := &scriptReader{temp: hybridScript,
		fail: func(i int) bool { return i >= 300 && i < 312 }}
	dvfsR := &scriptReader{temp: hybridScript,
		fail: func(i int) bool { return i >= 300 && i < 312 }}
	fanAct := &traceActuator{name: "fan", modes: 100, tr: tr}
	port := &traceFreqPort{tr: tr,
		freqs: []int64{2400000, 2200000, 2000000, 1800000, 1600000},
		cur:   2400000}
	dvfsAct, err := core.NewDVFSActuator(port)
	if err != nil {
		t.Fatal(err)
	}
	fan, err := core.NewController(core.DefaultConfig(50), fanR.read,
		core.ActuatorBinding{Actuator: fanAct})
	if err != nil {
		t.Fatal(err)
	}
	dvfs, err := core.NewTDVFS(core.DefaultTDVFSConfig(50), dvfsR.read, dvfsAct)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewHybrid(fan, dvfs)
	for step := 0; step < 2200; step++ {
		h.OnStep(time.Duration(step) * stepDt)
		if step%5 == 0 {
			tr.addf("step=%04d fan[errs=%d fs=%v idx=%d moves=%d] dvfs[errs=%d fs=%v mode=%d engaged=%v]",
				step, fan.Errors(), fan.FailSafe(), fan.Index(0), fan.Moves(0),
				dvfs.Errors(), dvfs.FailSafe(), dvfs.CurrentMode(), dvfs.Engaged())
		}
	}
	fanEvents(tr, fan)
	for _, ev := range dvfs.FailSafeEvents() {
		tr.addf("event dvfs at=%s engaged=%v", ev.At, ev.Engaged)
	}
	checkGolden(t, "hybrid", tr)
}
