package core

import (
	"errors"
	"testing"
	"time"
)

// buildAggHybrid wires a hybrid whose shared sensor dies permanently
// after n reads, over in-memory ports, so both lanes escalate.
func buildAggHybrid(t *testing.T, goodReads int) (*Hybrid, *fakeFanPort) {
	t.Helper()
	reads := 0
	read := func() (float64, error) {
		reads++
		if reads > goodReads {
			return 0, errors.New("sensor dead")
		}
		return 50, nil
	}
	port := &fakeFanPort{}
	fan, err := NewController(DefaultConfig(50), read,
		ActuatorBinding{Actuator: NewFanActuator(port, 100)})
	if err != nil {
		t.Fatal(err)
	}
	_, act := newDVFSRig(t)
	dvfs, err := NewTDVFS(DefaultTDVFSConfig(50), read, act)
	if err != nil {
		t.Fatal(err)
	}
	return NewHybrid(fan, dvfs), port
}

// The aggregated surface exists so reports and smoke tests need not
// reach into h.Fan / h.DVFS: combined error count, either-lane
// fail-safe flag, one tagged event timeline, one status snapshot.
func TestHybridAggregatedObservability(t *testing.T) {
	h, port := buildAggHybrid(t, 40)
	period := 250 * time.Millisecond
	for i := 1; i <= 120; i++ {
		h.OnStep(time.Duration(i) * period)
	}

	if want := h.Fan.Errors() + h.DVFS.Errors(); h.Errors() != want {
		t.Errorf("Errors = %d, want lane sum %d", h.Errors(), want)
	}
	if h.Errors() == 0 {
		t.Fatal("no errors counted under a dead sensor")
	}
	if !h.FailSafe() {
		t.Fatal("aggregated FailSafe false while lanes are escalated")
	}
	if port.duty != 100 {
		t.Errorf("fan at %v%% under fail-safe, want 100", port.duty)
	}

	ev := h.FailSafeEvents()
	lanes := map[string]int{}
	for i, e := range ev {
		lanes[e.Lane]++
		if i > 0 && ev[i-1].At > e.At {
			t.Errorf("merged events out of order: %v after %v", e.At, ev[i-1].At)
		}
	}
	if lanes["fan"] == 0 || lanes["dvfs"] == 0 {
		t.Errorf("merged timeline missing a lane: %v", lanes)
	}
	if lanes["fan"]+lanes["dvfs"] != len(ev) {
		t.Errorf("unknown lane tags in %v", lanes)
	}

	st := h.Status()
	if !st.FailSafe || st.Errors != h.Errors() {
		t.Errorf("Status = %+v, want FailSafe true and Errors %d", st, h.Errors())
	}
	if !st.Engaged || st.DVFSMode != h.DVFS.CurrentMode() {
		t.Errorf("Status DVFS view = engaged=%v mode=%d, want engaged at mode %d",
			st.Engaged, st.DVFSMode, h.DVFS.CurrentMode())
	}
	if st.String() == "" {
		t.Error("empty status line")
	}
}
