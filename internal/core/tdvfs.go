package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"thermctl/internal/core/ctlarray"
	"thermctl/internal/core/window"
)

// TDVFSConfig parameterizes the temperature-aware DVFS daemon of §4.3.
type TDVFSConfig struct {
	// Pp is the policy parameter; it shapes the DVFS control array and
	// therefore how far one scale-down jumps (Pp=50 steps 2.4→2.2 GHz;
	// Pp=25 jumps 2.4→2.0 GHz, as in the paper's Figure 10).
	Pp int
	// ThresholdC is the trigger temperature (paper: 51 °C). The daemon
	// scales down only while the average temperature is consistently
	// above it, and restores the nominal frequency once consistently
	// below.
	ThresholdC float64
	// HysteresisC widens the restore condition: scale back up only when
	// consistently below ThresholdC - HysteresisC. It must exceed the
	// temperature drop produced by one scale-down step, or the daemon
	// limit-cycles on a sustained hot workload (down, cool slightly,
	// restore, reheat, down, ...) — exactly the transition churn tDVFS
	// exists to avoid. On this platform one P-state step is worth
	// ≈2.5 °C, so the default is 3 °C.
	HysteresisC float64
	// SamplePeriod is the temperature sampling interval (250 ms).
	SamplePeriod time.Duration
	// Window sizes the history. "Consistently" means every entry of
	// the full level-two FIFO is on one side of the threshold, i.e.
	// L2Size consecutive seconds. tDVFS uses a deeper FIFO than the
	// fan controller (10 rounds vs 5): an in-band action is expensive,
	// so the evidence bar is higher — sensor noise hovering at the
	// threshold must not trigger a frequency change.
	Window window.Config
	// N is the control-array bound (default 10 over the 5 P-states).
	N int
	// CooldownRounds is the minimum number of window rounds between
	// two frequency changes, letting the thermal response develop
	// before judging again (default: 2×L2Size).
	CooldownRounds int
	// TrendEpsilonC makes the scale-down decision context-aware: a
	// down-step is taken only when the level-two trend Δt_L2 exceeds
	// +TrendEpsilonC, i.e. the temperature is above threshold *and
	// still rising*. This is the reading of the paper's "only when
	// average temperature is stabilized above the threshold" that its
	// Figure 9 demonstrates: tDVFS stops at 2.0 GHz with the die steady
	// near 55 °C — above the threshold — and makes no further changes.
	// The goal is stopping the rise (preventing the emergency), not
	// forcing the die under the trigger value at any performance cost.
	// Default 0.35 °C — above the sensor-noise floor of the round
	// averages and above the asymptotic tail of an equilibrium
	// approach, so the daemon stops once the rise has effectively
	// flattened.
	TrendEpsilonC float64
	// EmergencyMarginC is the backstop: if the average is consistently
	// above ThresholdC+EmergencyMarginC, scale down regardless of
	// trend — a creeping rise too slow for trend detection must not
	// reach the hardware's thermal-throttle point. Default 8 °C.
	EmergencyMarginC float64
	// FailSafe parameterizes the consecutive-error escalation policy;
	// zero fields take the defaults (see FailSafeConfig). The daemon's
	// escalation target is its frequency floor (the slowest P-state).
	FailSafe FailSafeConfig
}

// DefaultTDVFSConfig returns the paper's tDVFS parameters.
func DefaultTDVFSConfig(pp int) TDVFSConfig {
	return TDVFSConfig{
		Pp:               pp,
		ThresholdC:       51,
		HysteresisC:      3.0,
		SamplePeriod:     250 * time.Millisecond,
		Window:           window.Config{L1Size: 4, L2Size: 10},
		N:                10,
		TrendEpsilonC:    0.35,
		EmergencyMarginC: 8,
		FailSafe:         DefaultFailSafeConfig(),
	}
}

// TDVFS is the temperature-aware DVFS daemon. Unlike the continuous fan
// controller, it is threshold-gated: frequency is not touched at all
// until heat demonstrably exceeds what the fan can remove, minimizing
// the in-band technique's performance cost.
type TDVFS struct {
	cfg  TDVFSConfig
	read TempReader
	act  *DVFSActuator
	arr  *ctlarray.Array
	win  *window.Window

	curMode  int // physical mode currently applied (0 = nominal frequency)
	next     time.Duration
	cooldown int
	downs    uint64
	ups      uint64

	// errs is atomic: daemons read Errors() from their -listen goroutines
	// while OnStep writes from the control loop.
	errs atomic.Uint64

	// fail-safe degradation state, mirroring the unified controller's
	// (see FailSafeConfig): fsRetry marks an escalation whose Apply has
	// not landed yet.
	consecReadErrs  int
	consecApplyErrs int
	cleanSamples    int
	failSafe        bool
	fsRetry         bool
	fsEvents        []FailSafeEvent

	// trigger bookkeeping for the experiments: when the first
	// scale-down happened.
	firstDownAt time.Duration
	triggered   bool

	// mt holds the optional metric handles (see InstrumentMetrics in
	// metrics.go); every handle is nil-safe.
	mt tdvfsMetrics
}

// NewTDVFS builds the daemon over a DVFS actuator.
func NewTDVFS(cfg TDVFSConfig, read TempReader, act *DVFSActuator) (*TDVFS, error) {
	if read == nil || act == nil {
		return nil, fmt.Errorf("core: tdvfs needs a reader and an actuator")
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("core: tdvfs: non-positive sample period")
	}
	if cfg.Window.L1Size == 0 {
		cfg.Window = window.Default()
	}
	if cfg.N == 0 {
		cfg.N = 10
	}
	if cfg.CooldownRounds == 0 {
		cfg.CooldownRounds = 2 * cfg.Window.L2Size
	}
	if cfg.TrendEpsilonC == 0 {
		cfg.TrendEpsilonC = 0.35
	}
	if cfg.EmergencyMarginC == 0 {
		cfg.EmergencyMarginC = 8
	}
	cfg.FailSafe = cfg.FailSafe.withDefaults()
	arr, err := ctlarray.New(cfg.N, act.NumModes(), cfg.Pp)
	if err != nil {
		return nil, err
	}
	return &TDVFS{
		cfg:  cfg,
		read: read,
		act:  act,
		arr:  arr,
		win:  window.New(cfg.Window),
		next: cfg.SamplePeriod,
	}, nil
}

// Downscales returns the number of scale-down decisions taken.
func (d *TDVFS) Downscales() uint64 { return d.downs }

// Upscales returns the number of restore decisions taken.
func (d *TDVFS) Upscales() uint64 { return d.ups }

// Errors returns the count of failed reads or actuations. Safe to call
// concurrently with the control loop.
func (d *TDVFS) Errors() uint64 { return d.errs.Load() }

// FailSafe reports whether the fail-safe escalation is currently
// holding the CPU at its frequency floor.
func (d *TDVFS) FailSafe() bool { return d.failSafe }

// FailSafeEvents returns a copy of the escalation/recovery event log.
func (d *TDVFS) FailSafeEvents() []FailSafeEvent {
	out := make([]FailSafeEvent, len(d.fsEvents))
	copy(out, d.fsEvents)
	return out
}

// TriggeredAt returns when the first scale-down happened and whether
// one happened at all — the coordination observable of Figure 10.
func (d *TDVFS) TriggeredAt() (time.Duration, bool) { return d.firstDownAt, d.triggered }

// CurrentMode returns the physical mode currently applied (0 is the
// nominal frequency).
func (d *TDVFS) CurrentMode() int { return d.curMode }

// Engaged reports whether the daemon is holding the CPU below its
// nominal frequency.
func (d *TDVFS) Engaged() bool { return d.curMode > 0 }

// OnStep samples and decides. Implements the cluster Controller
// interface.
//
// Error handling is the fail-safe degradation policy shared with the
// unified controller: EscalateErrors consecutive failed reads or
// actuations drive the CPU to its frequency floor (the most effective
// in-band mode) rather than silently skipping rounds, and control
// resumes after RecoverSamples consecutive clean samples.
func (d *TDVFS) OnStep(now time.Duration) {
	if now < d.next {
		return
	}
	d.next += d.cfg.SamplePeriod
	t, err := d.read()
	if err != nil {
		d.errs.Add(1)
		d.mt.errors.Inc()
		d.cleanSamples = 0
		d.consecReadErrs++
		if d.consecReadErrs >= d.cfg.FailSafe.EscalateErrors {
			d.escalate(now)
		}
		if d.failSafe {
			d.applyFailSafe()
		}
		return
	}
	d.consecReadErrs = 0
	if d.failSafe {
		// Hold the frequency floor while re-qualifying the sensor; keep
		// the window warm so control resumes from fresh history.
		d.applyFailSafe()
		d.cleanSamples++
		if d.cleanSamples >= d.cfg.FailSafe.RecoverSamples && !d.fsRetry {
			d.release(now)
		}
		d.win.Add(t)
		return
	}
	if !d.win.Add(t) {
		return
	}
	d.mt.rounds.Inc()
	if d.cooldown > 0 {
		d.cooldown--
		return
	}

	rising := d.win.DeltaL2() > d.cfg.TrendEpsilonC
	emergency := d.win.AllL2Above(d.cfg.ThresholdC + d.cfg.EmergencyMarginC)
	switch {
	case (d.win.AllL2Above(d.cfg.ThresholdC) && rising) || emergency:
		// Average temperature consistently above threshold: move to the
		// least-effective array mode that still exceeds the current
		// one. How far that jumps is exactly what Pp encodes: at Pp=50
		// the array holds every P-state, so this is one step
		// (2.4→2.2 GHz); at Pp=25 the array skips states, jumping
		// 2.4→2.0 GHz (the paper's Figure 10 markers).
		next := -1
		for i := 0; i < d.arr.Len(); i++ {
			if m := d.arr.Mode(i); m > d.curMode {
				next = m
				break
			}
		}
		if next < 0 {
			return // already at the most effective mode
		}
		if err := d.act.Apply(next); err != nil {
			d.applyErr(now)
			return
		}
		d.consecApplyErrs = 0
		d.curMode = next
		d.downs++
		d.mt.downscales.Inc()
		d.mt.engaged.SetBool(true)
		if !d.triggered {
			d.triggered = true
			d.firstDownAt = now
		}
		d.cooldown = d.cfg.CooldownRounds

	case d.curMode > 0 && d.win.AllL2Below(d.cfg.ThresholdC-d.cfg.HysteresisC):
		// Consistently below threshold: restore the original (nominal)
		// frequency directly, as the paper's Figures 8 and 10 show
		// (2.2→2.4 and 2.0→2.4 in one step).
		if err := d.act.Apply(0); err != nil {
			d.applyErr(now)
			return
		}
		d.consecApplyErrs = 0
		d.curMode = 0
		d.ups++
		d.mt.upscales.Inc()
		d.mt.engaged.SetBool(false)
		d.cooldown = d.cfg.CooldownRounds
	}
}

// applyErr records a failed actuation and escalates on a run of them.
func (d *TDVFS) applyErr(now time.Duration) {
	d.errs.Add(1)
	d.mt.errors.Inc()
	d.consecApplyErrs++
	if d.consecApplyErrs >= d.cfg.FailSafe.EscalateErrors {
		d.escalate(now)
	}
}

// escalate enters the fail-safe hold: the CPU is driven to its
// frequency floor until the escalation releases.
func (d *TDVFS) escalate(now time.Duration) {
	if d.failSafe || d.cfg.FailSafe.Disable {
		return
	}
	d.failSafe = true
	d.cleanSamples = 0
	d.fsRetry = true
	d.fsEvents = append(d.fsEvents, FailSafeEvent{At: now, Engaged: true})
	d.mt.escalations.Inc()
	d.mt.failSafe.SetBool(true)
}

// applyFailSafe drives the CPU to the frequency floor if the escalated
// Apply has not landed yet, retrying on later samples until the write
// sticks (the transport may be failing too). A landed floor sets
// curMode, so Engaged() holds the hybrid fan floor throughout.
func (d *TDVFS) applyFailSafe() {
	if !d.fsRetry {
		return
	}
	floor := d.act.NumModes() - 1
	if err := d.act.Apply(floor); err != nil {
		d.errs.Add(1)
		d.mt.errors.Inc()
		return
	}
	d.fsRetry = false
	d.curMode = floor
	d.mt.engaged.SetBool(floor > 0)
}

// release ends the fail-safe hold. The frequency stays at the floor;
// the normal restore path (consistently below threshold − hysteresis)
// brings it back to nominal once the cooldown elapses.
func (d *TDVFS) release(now time.Duration) {
	d.failSafe = false
	d.cleanSamples = 0
	d.consecApplyErrs = 0
	d.cooldown = d.cfg.CooldownRounds
	d.fsEvents = append(d.fsEvents, FailSafeEvent{At: now, Engaged: false})
	d.mt.recoveries.Inc()
	d.mt.failSafe.SetBool(false)
}
