package core

import (
	"fmt"
	"time"

	"thermctl/internal/core/window"
)

// TDVFSConfig parameterizes the temperature-aware DVFS daemon of §4.3.
type TDVFSConfig struct {
	// Pp is the policy parameter; it shapes the DVFS control array and
	// therefore how far one scale-down jumps (Pp=50 steps 2.4→2.2 GHz;
	// Pp=25 jumps 2.4→2.0 GHz, as in the paper's Figure 10).
	Pp int
	// ThresholdC is the trigger temperature (paper: 51 °C). The daemon
	// scales down only while the average temperature is consistently
	// above it, and restores the nominal frequency once consistently
	// below.
	ThresholdC float64
	// HysteresisC widens the restore condition: scale back up only when
	// consistently below ThresholdC - HysteresisC. It must exceed the
	// temperature drop produced by one scale-down step, or the daemon
	// limit-cycles on a sustained hot workload (down, cool slightly,
	// restore, reheat, down, ...) — exactly the transition churn tDVFS
	// exists to avoid. On this platform one P-state step is worth
	// ≈2.5 °C, so the default is 3 °C.
	HysteresisC float64
	// SamplePeriod is the temperature sampling interval (250 ms).
	SamplePeriod time.Duration
	// Window sizes the history. "Consistently" means every entry of
	// the full level-two FIFO is on one side of the threshold, i.e.
	// L2Size consecutive seconds. tDVFS uses a deeper FIFO than the
	// fan controller (10 rounds vs 5): an in-band action is expensive,
	// so the evidence bar is higher — sensor noise hovering at the
	// threshold must not trigger a frequency change.
	Window window.Config
	// N is the control-array bound (default 10 over the 5 P-states).
	N int
	// CooldownRounds is the minimum number of window rounds between
	// two frequency changes, letting the thermal response develop
	// before judging again (default: 2×L2Size).
	CooldownRounds int
	// TrendEpsilonC makes the scale-down decision context-aware: a
	// down-step is taken only when the level-two trend Δt_L2 exceeds
	// +TrendEpsilonC, i.e. the temperature is above threshold *and
	// still rising*. This is the reading of the paper's "only when
	// average temperature is stabilized above the threshold" that its
	// Figure 9 demonstrates: tDVFS stops at 2.0 GHz with the die steady
	// near 55 °C — above the threshold — and makes no further changes.
	// The goal is stopping the rise (preventing the emergency), not
	// forcing the die under the trigger value at any performance cost.
	// Default 0.35 °C — above the sensor-noise floor of the round
	// averages and above the asymptotic tail of an equilibrium
	// approach, so the daemon stops once the rise has effectively
	// flattened.
	TrendEpsilonC float64
	// EmergencyMarginC is the backstop: if the average is consistently
	// above ThresholdC+EmergencyMarginC, scale down regardless of
	// trend — a creeping rise too slow for trend detection must not
	// reach the hardware's thermal-throttle point. Default 8 °C.
	EmergencyMarginC float64
	// FailSafe parameterizes the consecutive-error escalation policy;
	// zero fields take the defaults (see FailSafeConfig). The daemon's
	// escalation target is its frequency floor (the slowest P-state).
	FailSafe FailSafeConfig
}

// DefaultTDVFSConfig returns the paper's tDVFS parameters.
func DefaultTDVFSConfig(pp int) TDVFSConfig {
	return TDVFSConfig{
		Pp:               pp,
		ThresholdC:       51,
		HysteresisC:      3.0,
		SamplePeriod:     250 * time.Millisecond,
		Window:           window.Config{L1Size: 4, L2Size: 10},
		N:                10,
		TrendEpsilonC:    0.35,
		EmergencyMarginC: 8,
		FailSafe:         DefaultFailSafeConfig(),
	}
}

// withDefaults fills zero fields, mirroring the historical NewTDVFS
// normalization.
func (cfg TDVFSConfig) withDefaults() TDVFSConfig {
	if cfg.Window.L1Size == 0 {
		cfg.Window = window.Default()
	}
	if cfg.N == 0 {
		cfg.N = 10
	}
	if cfg.CooldownRounds == 0 {
		cfg.CooldownRounds = 2 * cfg.Window.L2Size
	}
	if cfg.TrendEpsilonC == 0 {
		cfg.TrendEpsilonC = 0.35
	}
	if cfg.EmergencyMarginC == 0 {
		cfg.EmergencyMarginC = 8
	}
	cfg.FailSafe = cfg.FailSafe.withDefaults()
	return cfg
}

// TDVFS is the temperature-aware DVFS daemon. Unlike the continuous fan
// controller, it is threshold-gated: frequency is not touched at all
// until heat demonstrably exceeds what the fan can remove, minimizing
// the in-band technique's performance cost. Since the control-plane
// unification it is a facade over the engine — a Binding hosting the
// ThresholdPolicy — kept for its stable constructor and observability
// surface.
type TDVFS struct {
	cfg TDVFSConfig
	b   *Binding
	pol *ThresholdPolicy
	act *DVFSActuator
}

// NewTDVFS builds the daemon over a DVFS actuator.
func NewTDVFS(cfg TDVFSConfig, read TempReader, act *DVFSActuator) (*TDVFS, error) {
	if read == nil || act == nil {
		return nil, fmt.Errorf("core: tdvfs needs a reader and an actuator")
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("core: tdvfs: non-positive sample period")
	}
	cfg = cfg.withDefaults()
	pol, err := NewThresholdPolicy(cfg, act.NumModes())
	if err != nil {
		return nil, err
	}
	win := cfg.Window
	b, err := NewBinding(BindingConfig{
		Policy:       pol,
		Read:         read,
		SamplePeriod: cfg.SamplePeriod,
		Window:       &win,
		FailSafe:     cfg.FailSafe,
		Actuators:    []Actuator{act},
	})
	if err != nil {
		return nil, err
	}
	return &TDVFS{cfg: cfg, b: b, pol: pol, act: act}, nil
}

// Binding exposes the engine binding hosting this daemon, for
// composition into an Engine (the hybrid coordinator does this).
func (d *TDVFS) Binding() *Binding { return d.b }

// Policy exposes the hosted threshold policy.
func (d *TDVFS) Policy() *ThresholdPolicy { return d.pol }

// Downscales returns the number of scale-down decisions taken.
func (d *TDVFS) Downscales() uint64 { return d.pol.Downscales() }

// Upscales returns the number of restore decisions taken.
func (d *TDVFS) Upscales() uint64 { return d.pol.Upscales() }

// Errors returns the count of failed reads or actuations. Safe to call
// concurrently with the control loop.
func (d *TDVFS) Errors() uint64 { return d.b.Errors() }

// FailSafe reports whether the fail-safe escalation is currently
// holding the CPU at its frequency floor.
func (d *TDVFS) FailSafe() bool { return d.b.FailSafe() }

// FailSafeEvents returns a copy of the escalation/recovery event log.
func (d *TDVFS) FailSafeEvents() []FailSafeEvent { return d.b.FailSafeEvents() }

// TriggeredAt returns when the first scale-down happened and whether
// one happened at all — the coordination observable of Figure 10.
func (d *TDVFS) TriggeredAt() (time.Duration, bool) { return d.pol.TriggeredAt() }

// CurrentMode returns the physical mode currently applied (0 is the
// nominal frequency).
func (d *TDVFS) CurrentMode() int { return d.pol.CurrentMode() }

// Engaged reports whether the daemon is holding the CPU below its
// nominal frequency.
func (d *TDVFS) Engaged() bool { return d.pol.Engaged() }

// OnStep samples and decides through the hosted threshold policy.
// Implements the cluster Controller interface. Sampling cadence,
// fail-safe degradation and error accounting are the engine's (see
// Binding.OnStep).
func (d *TDVFS) OnStep(now time.Duration) { d.b.OnStep(now) }
