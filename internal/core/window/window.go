// Package window implements the paper's two-level, history-based
// temperature window (§3.2.1) and the thermal behaviour classifier built
// on it (§3.1).
//
// Level one is a small array (4 entries at a 4 Hz sample rate in the
// paper) that fills with raw samples. When it fills — one "round" — the
// controller computes Δt_L1, the difference between the sums of the
// second and first halves of the array. A large Δt_L1 flags a *sudden*
// sustained change; symmetric oscillation (*jitter*) cancels out of the
// half-sums. The round's average is then pushed into level two, a
// fixed-size FIFO (5 entries in the paper), and the array is cleared.
// Δt_L2, the difference between the FIFO's rear (newest) and front
// (oldest) averages, tracks *gradual* drift across a longer horizon.
package window

import (
	"fmt"
	"math"
)

// Config sizes the two levels.
type Config struct {
	// L1Size is the level-one array length. The paper found 4 entries
	// large enough to capture sudden changes while nullifying jitter.
	L1Size int
	// L2Size is the level-two FIFO depth (5 in the paper).
	L2Size int
}

// Default returns the paper's window sizes.
func Default() Config { return Config{L1Size: 4, L2Size: 5} }

// Window is the two-level temperature history. Not safe for concurrent
// use; the controller samples from a single loop.
type Window struct {
	cfg Config

	l1  []float64
	l1n int

	l2 []float64 // FIFO of round averages; index 0 = front (oldest)

	rounds      int
	deltaL1     float64
	prevDeltaL1 float64
	lastRange   float64 // max-min of the last completed round, for jitter detection
}

// New returns an empty window. It panics if the sizes are invalid
// (L1Size must be an even number ≥ 2 so the half-sums are balanced;
// L2Size must be ≥ 2 so Δt_L2 is meaningful).
func New(cfg Config) *Window {
	if cfg.L1Size < 2 || cfg.L1Size%2 != 0 {
		panic(fmt.Sprintf("window: L1Size %d must be even and >= 2", cfg.L1Size))
	}
	if cfg.L2Size < 2 {
		panic(fmt.Sprintf("window: L2Size %d must be >= 2", cfg.L2Size))
	}
	return &Window{
		cfg: cfg,
		l1:  make([]float64, cfg.L1Size),
		l2:  make([]float64, 0, cfg.L2Size),
	}
}

// Add feeds one temperature sample. It returns true when the sample
// completed a level-one round (so Δt_L1, Δt_L2 and Avg were just
// refreshed and a control decision is due).
func (w *Window) Add(sample float64) bool {
	w.l1[w.l1n] = sample
	w.l1n++
	if w.l1n < w.cfg.L1Size {
		return false
	}

	half := w.cfg.L1Size / 2
	var first, second, sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range w.l1 {
		sum += v
		if i < half {
			first += v
		} else {
			second += v
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	w.prevDeltaL1 = w.deltaL1
	w.deltaL1 = second - first
	w.lastRange = hi - lo
	avg := sum / float64(w.cfg.L1Size)

	if len(w.l2) == w.cfg.L2Size {
		copy(w.l2, w.l2[1:]) // dequeue front
		w.l2 = w.l2[:w.cfg.L2Size-1]
	}
	//thermlint:allow hotalloc -- l2 is preallocated to L2Size at construction and dequeues at capacity; this append never grows it
	w.l2 = append(w.l2, avg)

	w.l1n = 0 // clear level one for the next round
	w.rounds++
	return true
}

// Rounds returns the number of completed level-one rounds.
func (w *Window) Rounds() int { return w.rounds }

// DeltaL1 returns Δt_L1 from the last completed round: the second-half
// sum minus the first-half sum of the level-one array. Zero before the
// first round.
func (w *Window) DeltaL1() float64 { return w.deltaL1 }

// DeltaL2 returns Δt_L2: the rear (newest) minus the front (oldest)
// level-two average. Zero until at least two rounds have completed.
func (w *Window) DeltaL2() float64 {
	if len(w.l2) < 2 {
		return 0
	}
	return w.l2[len(w.l2)-1] - w.l2[0]
}

// L2Full reports whether the level-two FIFO holds L2Size averages, i.e.
// Δt_L2 spans the full long horizon.
func (w *Window) L2Full() bool { return len(w.l2) == w.cfg.L2Size }

// Avg returns the newest level-two entry: the average of the last
// completed round. NaN before the first round.
func (w *Window) Avg() float64 {
	if len(w.l2) == 0 {
		return math.NaN()
	}
	return w.l2[len(w.l2)-1]
}

// L2 returns a copy of the level-two FIFO, front (oldest) first.
func (w *Window) L2() []float64 { return append([]float64(nil), w.l2...) }

// AllL2Above reports whether the FIFO is full and every entry exceeds
// t — the paper's "average temperature is consistently above threshold"
// condition that arms tDVFS.
func (w *Window) AllL2Above(t float64) bool {
	if !w.L2Full() {
		return false
	}
	for _, v := range w.l2 {
		if v <= t {
			return false
		}
	}
	return true
}

// AllL2Below reports whether the FIFO is full and every entry is under
// t — the "consistently below" condition that lets tDVFS restore the
// nominal frequency.
func (w *Window) AllL2Below(t float64) bool {
	if !w.L2Full() {
		return false
	}
	for _, v := range w.l2 {
		if v >= t {
			return false
		}
	}
	return true
}

// PredictNext forecasts the next round's average temperature using the
// paper's assumption that "temperature will change with the same rate
// for the next round of sampling": the last round's average plus the
// short-horizon rate when one is visible, falling back to the
// long-horizon rate for gradual drift. Δt_L1 is a difference of
// half-sums: L1Size/2 samples each, whose centres sit L1Size/2 samples
// apart, so Δt_L1 = rate_per_sample·L1Size²/4 and the per-round rate is
// 4·Δt_L1/L1Size (for the paper's 4-entry window, exactly Δt_L1).
// Δt_L2 spans L2Size−1 rounds. It returns NaN before the first round
// completes.
func (w *Window) PredictNext() float64 {
	if len(w.l2) == 0 {
		return math.NaN()
	}
	rate := 4 * w.deltaL1 / float64(w.cfg.L1Size)
	if rate == 0 && len(w.l2) >= 2 {
		rate = w.DeltaL2() / float64(len(w.l2)-1)
	}
	return w.Avg() + rate
}

// Reset clears both levels.
func (w *Window) Reset() {
	w.l1n = 0
	w.l2 = w.l2[:0]
	w.rounds = 0
	w.deltaL1 = 0
	w.prevDeltaL1 = 0
	w.lastRange = 0
}

// Behavior is a thermal behaviour type from the paper's §3.1 taxonomy.
type Behavior int

// The four behaviours. Steady is the implicit fourth case: no sustained
// or oscillatory activity.
const (
	Steady  Behavior = iota
	Sudden           // Type I: drastic sustained change within one round
	Gradual          // Type II: steady drift across the level-two horizon
	Jitter           // Type III: oscillation with no sustained trend
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Sudden:
		return "sudden"
	case Gradual:
		return "gradual"
	case Jitter:
		return "jitter"
	default:
		return "steady"
	}
}

// ClassifyConfig holds the classification thresholds, in the same units
// as the samples (°C for temperature).
type ClassifyConfig struct {
	// SuddenDelta is the |Δt_L1| at or above which a round is Sudden.
	SuddenDelta float64
	// GradualDelta is the |Δt_L2| at or above which the long horizon is
	// Gradual.
	GradualDelta float64
	// JitterRange is the intra-round (max-min) spread at or above which
	// a trendless round is Jitter rather than Steady.
	JitterRange float64
}

// DefaultClassify returns thresholds tuned for the repository's sensor
// model (0.25 °C quantum, 0.15 °C noise): 0.6 °C of half-sum difference
// within one second (≈1.8σ of the noise floor) flags sudden change, and
// half a degree of drift across the five-second horizon flags gradual.
func DefaultClassify() ClassifyConfig {
	return ClassifyConfig{SuddenDelta: 0.6, GradualDelta: 0.5, JitterRange: 0.9}
}

// Classify labels the last completed round.
//
// A large |Δt_L1| alone cannot separate Type I from Type III: the first
// spike of an oscillation looks exactly like a sudden onset. The paper
// distinguishes them by the *lack of sustained change following the
// spike*, so the classifier also consults the previous round: a large
// Δt_L1 whose sign flipped against an equally large previous delta is
// jitter, not a new sudden event.
func (w *Window) Classify(cfg ClassifyConfig) Behavior {
	if math.Abs(w.deltaL1) >= cfg.SuddenDelta {
		if w.deltaL1*w.prevDeltaL1 < 0 && math.Abs(w.prevDeltaL1) >= cfg.SuddenDelta/2 {
			return Jitter
		}
		return Sudden
	}
	if w.L2Full() && math.Abs(w.DeltaL2()) >= cfg.GradualDelta {
		return Gradual
	}
	if w.lastRange >= cfg.JitterRange {
		return Jitter
	}
	return Steady
}
