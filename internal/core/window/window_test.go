package window

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	for _, cfg := range []Config{{L1Size: 0, L2Size: 5}, {L1Size: 3, L2Size: 5}, {L1Size: 4, L2Size: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v): expected panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestRoundCompletion(t *testing.T) {
	w := New(Default())
	for i := 0; i < 3; i++ {
		if w.Add(40) {
			t.Fatalf("round complete after %d samples", i+1)
		}
	}
	if !w.Add(40) {
		t.Fatal("round not complete after 4 samples")
	}
	if w.Rounds() != 1 {
		t.Errorf("Rounds = %d", w.Rounds())
	}
}

func TestDeltaL1HalfSums(t *testing.T) {
	w := New(Default())
	for _, v := range []float64{40, 41, 43, 44} {
		w.Add(v)
	}
	// (43+44) - (40+41) = 6
	if got := w.DeltaL1(); got != 6 {
		t.Errorf("DeltaL1 = %v, want 6", got)
	}
	if got := w.Avg(); got != 42 {
		t.Errorf("Avg = %v, want 42", got)
	}
}

func TestDeltaL1JitterCancels(t *testing.T) {
	// Symmetric oscillation: half-sums are equal, Δt_L1 = 0. This is
	// the mechanism that makes the controller ignore Type III jitter.
	w := New(Default())
	for _, v := range []float64{40, 44, 40, 44} {
		w.Add(v)
	}
	if got := w.DeltaL1(); got != 0 {
		t.Errorf("DeltaL1 for jitter = %v, want 0", got)
	}
}

func TestL1ClearedBetweenRounds(t *testing.T) {
	w := New(Default())
	for _, v := range []float64{40, 40, 50, 50} {
		w.Add(v) // ΔL1 = 20
	}
	for _, v := range []float64{50, 50, 50, 50} {
		w.Add(v)
	}
	if got := w.DeltaL1(); got != 0 {
		t.Errorf("DeltaL1 after flat round = %v, want 0 (L1 cleared)", got)
	}
}

func TestDeltaL2FrontToRear(t *testing.T) {
	w := New(Config{L1Size: 2, L2Size: 3})
	feed := func(avg float64) {
		w.Add(avg)
		w.Add(avg)
	}
	feed(40)
	if w.DeltaL2() != 0 {
		t.Error("DeltaL2 with one entry should be 0")
	}
	feed(42)
	if got := w.DeltaL2(); got != 2 {
		t.Errorf("DeltaL2 = %v, want 2", got)
	}
	feed(44)
	if got := w.DeltaL2(); got != 4 {
		t.Errorf("DeltaL2 = %v, want 4 (44-40)", got)
	}
	if !w.L2Full() {
		t.Error("L2 should be full after 3 rounds")
	}
	feed(46) // evicts 40
	if got := w.DeltaL2(); got != 4 {
		t.Errorf("DeltaL2 after eviction = %v, want 4 (46-42)", got)
	}
}

func TestAvgBeforeFirstRound(t *testing.T) {
	w := New(Default())
	if !math.IsNaN(w.Avg()) {
		t.Error("Avg before any round should be NaN")
	}
}

func TestL2Copy(t *testing.T) {
	w := New(Config{L1Size: 2, L2Size: 3})
	w.Add(40)
	w.Add(40)
	got := w.L2()
	got[0] = 999
	if w.L2()[0] == 999 {
		t.Error("L2 returned internal storage")
	}
}

func TestAllL2AboveBelow(t *testing.T) {
	w := New(Config{L1Size: 2, L2Size: 2})
	w.Add(55)
	w.Add(55)
	if w.AllL2Above(51) {
		t.Error("AllL2Above true before FIFO full")
	}
	w.Add(56)
	w.Add(56)
	if !w.AllL2Above(51) {
		t.Error("AllL2Above false with entries 55, 56 > 51")
	}
	if w.AllL2Below(51) {
		t.Error("AllL2Below true with hot entries")
	}
	w.Add(45)
	w.Add(45)
	if w.AllL2Above(51) {
		t.Error("AllL2Above true with a 45 entry")
	}
	w.Add(44)
	w.Add(44)
	if !w.AllL2Below(51) {
		t.Error("AllL2Below false with entries 45, 44 < 51")
	}
}

func TestReset(t *testing.T) {
	w := New(Default())
	for i := 0; i < 8; i++ {
		w.Add(float64(40 + i))
	}
	w.Reset()
	if w.Rounds() != 0 || w.DeltaL1() != 0 || w.DeltaL2() != 0 || w.L2Full() {
		t.Error("Reset did not clear state")
	}
}

func TestClassifySudden(t *testing.T) {
	w := New(Default())
	for _, v := range []float64{40, 40, 46, 46} {
		w.Add(v)
	}
	if got := w.Classify(DefaultClassify()); got != Sudden {
		t.Errorf("Classify = %v, want sudden", got)
	}
}

func TestClassifyJitter(t *testing.T) {
	w := New(Default())
	for _, v := range []float64{40, 42, 40, 42} {
		w.Add(v)
	}
	if got := w.Classify(DefaultClassify()); got != Jitter {
		t.Errorf("Classify = %v, want jitter", got)
	}
}

func TestClassifyGradual(t *testing.T) {
	w := New(Default())
	// Slow drift: +0.1 °C per sample. Per round Δt_L1 = 0.4 (below the
	// sudden threshold), but over 5 rounds the L2 spread is 1.6 °C.
	v := 40.0
	for r := 0; r < 5; r++ {
		for i := 0; i < 4; i++ {
			w.Add(v)
			v += 0.1
		}
	}
	if got := w.Classify(DefaultClassify()); got != Gradual {
		t.Errorf("Classify = %v, want gradual (ΔL1=%v ΔL2=%v)", got, w.DeltaL1(), w.DeltaL2())
	}
}

func TestClassifySteady(t *testing.T) {
	w := New(Default())
	for r := 0; r < 6; r++ {
		for i := 0; i < 4; i++ {
			w.Add(45.25)
		}
	}
	if got := w.Classify(DefaultClassify()); got != Steady {
		t.Errorf("Classify = %v, want steady", got)
	}
}

func TestPredictNextBeforeFirstRound(t *testing.T) {
	w := New(Default())
	if !math.IsNaN(w.PredictNext()) {
		t.Error("prediction before any round should be NaN")
	}
}

func TestPredictNextLinearRamp(t *testing.T) {
	// Perfectly linear +0.5 °C per sample: the next round's average is
	// exactly the last average plus 2 °C (4 samples ahead).
	w := New(Default())
	v := 40.0
	var predicted float64
	for r := 0; r < 3; r++ {
		for i := 0; i < 4; i++ {
			w.Add(v)
			v += 0.5
		}
		if r == 1 {
			predicted = w.PredictNext()
		}
	}
	actual := w.Avg() // third round's average
	if math.Abs(predicted-actual) > 1e-9 {
		t.Errorf("linear ramp: predicted %v, actual next average %v", predicted, actual)
	}
}

func TestPredictNextFlat(t *testing.T) {
	w := New(Default())
	for i := 0; i < 8; i++ {
		w.Add(45)
	}
	if got := w.PredictNext(); got != 45 {
		t.Errorf("flat prediction = %v, want 45", got)
	}
}

func TestPredictNextFallsBackToL2(t *testing.T) {
	// A drift too slow for Δt_L1 (constant within each round, +0.4 °C
	// between rounds) must still be predicted via the level-two rate.
	w := New(Default())
	base := 40.0
	for r := 0; r < 5; r++ {
		for i := 0; i < 4; i++ {
			w.Add(base)
		}
		base += 0.4
	}
	got := w.PredictNext()
	want := w.Avg() + 0.4
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("L2 fallback prediction = %v, want %v", got, want)
	}
}

// TestPredictionBeatsPersistenceOnTrends quantifies the paper's
// prediction claim on a realistic trajectory: an exponential approach
// to equilibrium (what a thermal RC step looks like). The window
// forecast must have lower error than the naive "next = current"
// persistence forecast.
func TestPredictionBeatsPersistenceOnTrends(t *testing.T) {
	w := New(Default())
	temp := func(tSec float64) float64 { // 40 → 60 °C, tau 30 s
		return 60 - 20*math.Exp(-tSec/30)
	}
	var predErr, persistErr float64
	var n int
	var lastPred, lastAvg float64
	have := false
	for s := 0; s < 480; s++ { // 120 s at 4 Hz
		if w.Add(temp(float64(s) * 0.25)) {
			if have {
				predErr += math.Abs(w.Avg() - lastPred)
				persistErr += math.Abs(w.Avg() - lastAvg)
				n++
			}
			lastPred = w.PredictNext()
			lastAvg = w.Avg()
			have = true
		}
	}
	if n < 100 {
		t.Fatalf("only %d comparisons", n)
	}
	if predErr >= persistErr {
		t.Errorf("window forecast MAE %.4f not below persistence MAE %.4f",
			predErr/float64(n), persistErr/float64(n))
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{Steady: "steady", Sudden: "sudden", Gradual: "gradual", Jitter: "jitter"} {
		if b.String() != want {
			t.Errorf("%d.String() = %q", b, b.String())
		}
	}
}

func TestDeltaL1InvariantUnderConstantOffset(t *testing.T) {
	// Adding a constant to every sample must not change either delta:
	// the window reacts to variation, not to absolute level.
	if err := quick.Check(func(a, b, c, d float64, off float64) bool {
		if !finite(a) || !finite(b) || !finite(c) || !finite(d) || !finite(off) {
			return true
		}
		w1 := New(Default())
		w2 := New(Default())
		for _, v := range []float64{a, b, c, d} {
			w1.Add(v)
			w2.Add(v + off)
		}
		return math.Abs(w1.DeltaL1()-w2.DeltaL1()) < 1e-6*(1+math.Abs(w1.DeltaL1()))
	}, nil); err != nil {
		t.Error(err)
	}
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9
}

func BenchmarkAdd(b *testing.B) {
	w := New(Default())
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 10))
	}
}
