package core

import (
	"math"

	"thermctl/internal/core/ctlarray"
	"thermctl/internal/metrics"
)

// CtlArrayPolicy is the paper's §3.2 decision law as an engine policy:
// per actuator, a thermal control array filled from the policy
// parameter Pp, an index updated by the two-level window's predicted
// variation (Δt_L1, falling back to Δt_L2), and an anti-windup lead
// band around the absolute-temperature anchor. It is the policy behind
// the dynamic fan controller facade — and, because the array maps any
// ordered mode set, the same policy drives DVFS, ACPI throttling and
// processor sleep states (cstates.Actuator) unchanged.
type CtlArrayPolicy struct {
	pp       int
	tminC    float64
	tmaxC    float64
	maxLeadC float64
	l2Size   int

	slots     []*ctlSlot
	anchor    bool
	holdFloor bool

	mt ctlArrayMetrics
}

// ctlArrayMetrics bundles the policy-specific instrument handles (the
// engine-generic ones live on the binding).
type ctlArrayMetrics struct {
	// l2Fallbacks counts rounds where the short-horizon Δt_L1 predictor
	// produced no index move and the long-horizon Δt_L2 predictor was
	// consulted instead.
	l2Fallbacks *metrics.Counter
	// holdFloor is 1 while downward index moves are suppressed by the
	// hybrid coordinator.
	holdFloor *metrics.Gauge
}

// ctlSlot is one actuator's array state: the Pp-filled control array,
// the index-update coefficient c = (N-1)/(Tmax-Tmin), and the current
// index.
type ctlSlot struct {
	arr  *ctlarray.Array
	coef float64
	idx  int
	// l2Cooldown throttles level-two (gradual) corrections so a
	// sustained drift is not integrated once per round across the whole
	// FIFO span.
	l2Cooldown int
}

// NewCtlArrayPolicy builds the policy over the given actuator bindings.
// Range validation on cfg is the caller's job (NewController performs
// it); this constructor only rejects array-fill failures.
func NewCtlArrayPolicy(cfg Config, bindings ...ActuatorBinding) (*CtlArrayPolicy, error) {
	p := &CtlArrayPolicy{
		pp:       cfg.Pp,
		tminC:    cfg.TminC,
		tmaxC:    cfg.TmaxC,
		maxLeadC: cfg.MaxLeadC,
		l2Size:   cfg.Window.L2Size,
	}
	for _, b := range bindings {
		m := b.Actuator.NumModes()
		n := b.N
		if n == 0 {
			n = m
			if n < 10 {
				n = 2 * m
			}
		}
		arr, err := ctlarray.New(n, m, cfg.Pp)
		if err != nil {
			return nil, err
		}
		p.slots = append(p.slots, &ctlSlot{
			arr:  arr,
			coef: float64(n-1) / (cfg.TmaxC - cfg.TminC),
		})
	}
	return p, nil
}

// Name implements Policy.
func (p *CtlArrayPolicy) Name() string { return "ctlarray" }

// Pp returns the policy parameter.
func (p *CtlArrayPolicy) Pp() int { return p.pp }

// Index returns the current control-array index of actuator i.
func (p *CtlArrayPolicy) Index(i int) int { return p.slots[i].idx }

// Mode returns the physical mode actuator i's index selects.
func (p *CtlArrayPolicy) Mode(i int) int { return p.slots[i].arr.Mode(p.slots[i].idx) }

// HoldFloor reports whether downward index moves are suppressed.
func (p *CtlArrayPolicy) HoldFloor() bool { return p.holdFloor }

// SetHoldFloor, while set, blocks index *decreases* (cooling
// reductions); increases stay allowed. The Hybrid coordinator uses it
// to stop the out-of-band knob from relaxing while the in-band knob is
// engaged.
func (p *CtlArrayPolicy) SetHoldFloor(hold bool) {
	p.holdFloor = hold
	p.mt.holdFloor.SetBool(hold)
}

// Decide implements Policy. The first completed round anchors each
// actuator's index to the absolute temperature, so a controller started
// on an already hot machine begins from a proportionate mode; after
// that each round runs the per-actuator index update.
func (p *CtlArrayPolicy) Decide(tx *Txn) {
	if !p.anchor {
		p.anchor = true
		avg := tx.Window().Avg()
		for i, s := range p.slots {
			s.idx = s.arr.Clamp(int(math.Round(s.coef * (avg - p.tminC))))
			tx.Apply(i, s.arr.Mode(s.idx))
		}
		return
	}
	for i := range p.slots {
		p.decideSlot(tx, i)
	}
}

// decideSlot performs the paper's index update for one actuator: try
// i + c·Δt_L1; if that does not change the index, try i + c·Δt_L2
// (throttled to once per FIFO span so sustained drift is not multiply
// counted). The result is then held inside the anti-windup lead band
// around the absolute anchor c·(T−Tmin).
func (p *CtlArrayPolicy) decideSlot(tx *Txn, i int) {
	s := p.slots[i]
	win := tx.Window()
	if s.l2Cooldown > 0 {
		s.l2Cooldown--
	}
	di := int(math.Round(s.coef * win.DeltaL1()))
	usedL2 := false
	if di == 0 && s.l2Cooldown == 0 && win.L2Full() {
		p.mt.l2Fallbacks.Inc()
		di = int(math.Round(s.coef * win.DeltaL2()))
		usedL2 = di != 0
	}
	if di < 0 && p.holdFloor {
		di = 0
	}
	target := s.idx + di

	// Anti-windup: the index may lead the static anchor by at most
	// MaxLeadC degrees (proactivity) and must not lag it by more
	// (reactivity floor). Downward corrections are suppressed while
	// the hybrid holds the fan floor.
	center := s.coef * (win.Avg() - p.tminC)
	lead := s.coef * p.maxLeadC
	if hi := int(math.Floor(center + lead)); target > hi && !(p.holdFloor && hi < s.idx) {
		target = hi
	}
	if lo := int(math.Ceil(center - lead)); target < lo {
		target = lo
	}

	target = s.arr.Clamp(target)
	if target == s.idx {
		return
	}
	s.idx = target
	if usedL2 {
		s.l2Cooldown = p.l2Size
	}
	tx.Apply(i, s.arr.Mode(s.idx))
}

// OnEscalate implements EscalatePolicy: every index is pinned to the
// array's end, whose cell the Pp fill guarantees to be the most
// effective mode.
func (p *CtlArrayPolicy) OnEscalate() {
	for _, s := range p.slots {
		s.idx = s.arr.Len() - 1
	}
}
