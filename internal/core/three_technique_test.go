package core

import (
	"testing"
	"time"

	"thermctl/internal/acpi"
	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// These tests exercise the paper's central abstraction claim: the
// thermal control array unifies *any* set of techniques — here all
// three it names (fan speed, CPU frequency, ACPI throttling) under one
// controller and one Pp.

func TestUnifiedControllerOverThreeTechniques(t *testing.T) {
	n, err := node.New(node.DefaultConfig("three", 41))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	read := SysfsTemp(n.FS, n.Hwmon.TempInput)
	fanAct := NewFanActuator(&SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)
	dvfsAct, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	throttleAct := acpi.NewActuator(n.FS, n.ACPI)

	ctl, err := NewController(DefaultConfig(50), read,
		ActuatorBinding{Actuator: fanAct},
		ActuatorBinding{Actuator: dvfsAct, N: 10},
		ActuatorBinding{Actuator: throttleAct, N: 16},
	)
	if err != nil {
		t.Fatal(err)
	}

	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 1200; i++ {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	// All three knobs respond to the same window and policy: under
	// sustained load the fan spins up, and the in-band knobs engage
	// proportionally to the same index dynamics.
	if n.Fan.Duty() < 20 {
		t.Errorf("fan did not engage: %.1f%%", n.Fan.Duty())
	}
	if ctl.Errors() != 0 {
		t.Errorf("controller errors: %d", ctl.Errors())
	}
	// The controller drove the temperature toward balance: well below
	// the uncontrolled ≈62 °C of cpu-burn at boot duty.
	if got := n.TrueDieC(); got > 56 {
		t.Errorf("three-technique control settled at %.1f °C", got)
	}
}

// TestThrottleOnlyCooling drives a fan-failed box with the throttle
// actuator alone: the unified controller must still bound the
// temperature using nothing but clock modulation.
func TestThrottleOnlyCooling(t *testing.T) {
	n, err := node.New(node.DefaultConfig("throttle-only", 43))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	n.Fan.SetFailed(true)

	ctl, err := NewController(DefaultConfig(25),
		SysfsTemp(n.FS, n.Hwmon.TempInput),
		ActuatorBinding{Actuator: acpi.NewActuator(n.FS, n.ACPI), N: 16})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 2400; i++ {
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	if n.CPU.Throttle() >= 1 {
		t.Fatal("throttle never engaged on a fan-failed box")
	}
	// Uncontrolled, a dead fan under cpu-burn runs away well past 70;
	// throttling must hold it meaningfully below that.
	if got := n.TrueDieC(); got > 66 {
		t.Errorf("throttle-only control let the die reach %.1f °C", got)
	}
}

// TestCStatesCutHeatOnlyWhenIdle shows the sleep-state technique's
// asymmetry: deep C-states cool a communication-heavy (mostly idle)
// workload for free, and do nothing for cpu-burn — the per-technique
// effectiveness difference the unified array is built to express.
func TestCStatesCutHeatOnlyWhenIdle(t *testing.T) {
	run := func(util float64, maxState int64) float64 {
		n, err := node.New(node.DefaultConfig("cstates", 59))
		if err != nil {
			t.Fatal(err)
		}
		n.Settle(0)
		if err := n.FS.WriteInt(n.CStates.MaxState, maxState); err != nil {
			t.Fatal(err)
		}
		n.SetGenerator(workload.Constant(util))
		for i := 0; i < 1600; i++ {
			n.Step(250 * time.Millisecond)
		}
		return n.TrueDieC()
	}

	// Mostly idle (comm-wait shaped): C3 is clearly cooler than C0.
	idleC0 := run(0.15, 0)
	idleC3 := run(0.15, 3)
	if idleC3 >= idleC0-0.3 {
		t.Errorf("C3 on an idle-heavy load: %.2f °C vs C0 %.2f — no benefit", idleC3, idleC0)
	}
	// Fully busy: nothing to gate.
	busyC0 := run(1.0, 0)
	busyC3 := run(1.0, 3)
	if d := busyC3 - busyC0; d < -0.3 || d > 0.3 {
		t.Errorf("C-state moved busy temperature by %.2f °C", d)
	}
}

// TestDVFSBeatsThrottlePerLostCycle quantifies why the effectiveness
// ordering matters: for a comparable throughput cut, DVFS (which drops
// the voltage) removes more heat than clock throttling (which does
// not).
func TestDVFSBeatsThrottlePerLostCycle(t *testing.T) {
	run := func(configure func(n *node.Node)) (tempC, throughput float64) {
		n, err := node.New(node.DefaultConfig("eff", 47))
		if err != nil {
			t.Fatal(err)
		}
		n.Settle(0)
		port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		if err := port.SetDutyPercent(50); err != nil {
			t.Fatal(err)
		}
		configure(n)
		n.SetGenerator(workload.Constant(1))
		for i := 0; i < 2400; i++ {
			n.Step(250 * time.Millisecond)
		}
		return n.TrueDieC(), n.CPU.Work() / n.Elapsed().Seconds()
	}

	// DVFS to 1.8 GHz: 75% of nominal cycles, with a voltage drop.
	dvfsTemp, dvfsRate := run(func(n *node.Node) { n.CPU.SetFreqGHz(1.8) })
	// Throttle T2: 75% of cycles delivered, full voltage.
	thrTemp, thrRate := run(func(n *node.Node) { n.CPU.SetThrottle(0.75) })

	if diff := dvfsRate/thrRate - 1; diff > 0.02 || diff < -0.02 {
		t.Fatalf("throughputs not comparable: dvfs %.3f vs throttle %.3f GC/s", dvfsRate, thrRate)
	}
	if dvfsTemp >= thrTemp {
		t.Errorf("DVFS at %.2f °C not cooler than throttle at %.2f °C for equal throughput",
			dvfsTemp, thrTemp)
	}
	if thrTemp-dvfsTemp < 1 {
		t.Errorf("voltage advantage only %.2f °C; expected a clear margin", thrTemp-dvfsTemp)
	}
}
