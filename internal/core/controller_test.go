package core

import (
	"errors"
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/workload"
)

// fakeActuator records applied modes.
type fakeActuator struct {
	modes   int
	applied []int
	fail    bool
}

func (f *fakeActuator) Name() string  { return "fake" }
func (f *fakeActuator) NumModes() int { return f.modes }
func (f *fakeActuator) Apply(m int) error {
	if f.fail {
		return errors.New("apply failed")
	}
	f.applied = append(f.applied, m)
	return nil
}
func (f *fakeActuator) Current() (int, error) {
	if len(f.applied) == 0 {
		return 0, nil
	}
	return f.applied[len(f.applied)-1], nil
}

// scriptedTemp replays a temperature script, one value per read.
type scriptedTemp struct {
	vals []float64
	i    int
}

func (s *scriptedTemp) read() (float64, error) {
	if s.i < len(s.vals) {
		s.i++
	}
	return s.vals[minInt(s.i, len(s.vals))-1], nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// drive feeds the controller n sample periods.
func drive(c *Controller, n int) {
	period := 250 * time.Millisecond
	for i := 1; i <= n; i++ {
		c.OnStep(time.Duration(i) * period)
	}
}

func constTemp(v float64) TempReader {
	return func() (float64, error) { return v, nil }
}

func TestNewControllerValidation(t *testing.T) {
	fa := &fakeActuator{modes: 100}
	if _, err := NewController(DefaultConfig(50), nil, ActuatorBinding{Actuator: fa}); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewController(DefaultConfig(50), constTemp(40)); err == nil {
		t.Error("no actuators accepted")
	}
	bad := DefaultConfig(50)
	bad.TmaxC = bad.TminC
	if _, err := NewController(bad, constTemp(40), ActuatorBinding{Actuator: fa}); err == nil {
		t.Error("Tmax==Tmin accepted")
	}
	bad2 := DefaultConfig(50)
	bad2.SamplePeriod = 0
	if _, err := NewController(bad2, constTemp(40), ActuatorBinding{Actuator: fa}); err == nil {
		t.Error("zero sample period accepted")
	}
	bad3 := DefaultConfig(0)
	if _, err := NewController(bad3, constTemp(40), ActuatorBinding{Actuator: fa}); err == nil {
		t.Error("Pp=0 accepted")
	}
}

func TestAnchorOnFirstRound(t *testing.T) {
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(100), constTemp(60), ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 4) // one full round
	if len(fa.applied) != 1 {
		t.Fatalf("applied %v, want one anchor application", fa.applied)
	}
	// At 60 °C with Tmin 38, Tmax 82, N=100: index ≈ 2.25·22 ≈ 50.
	if idx := c.Index(0); idx < 45 || idx < 1 || idx > 55 {
		t.Errorf("anchor index = %d, want ≈50", idx)
	}
}

func TestRisingTempIncreasesMode(t *testing.T) {
	// +1 °C per sample: strongly rising.
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 40 + float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 16) // 4 rounds
	if len(fa.applied) < 2 {
		t.Fatalf("controller never reacted: %v", fa.applied)
	}
	for i := 1; i < len(fa.applied); i++ {
		if fa.applied[i] < fa.applied[i-1] {
			t.Fatalf("mode sequence not non-decreasing under rising temp: %v", fa.applied)
		}
	}
	if last := fa.applied[len(fa.applied)-1]; last <= fa.applied[0] {
		t.Errorf("mode did not increase: %v", fa.applied)
	}
}

func TestFallingTempDecreasesMode(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 70 - float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 24)
	if len(fa.applied) < 2 {
		t.Fatalf("controller never reacted: %v", fa.applied)
	}
	first, last := fa.applied[1], fa.applied[len(fa.applied)-1]
	if last >= first {
		t.Errorf("mode did not decrease under falling temp: %v", fa.applied)
	}
}

func TestJitterDoesNotMoveMode(t *testing.T) {
	// Per-sample oscillation ±2 °C with zero trend: half-sums cancel,
	// L2 averages equal — the controller must hold its mode. This is
	// the paper's Type III immunity (Figure 5 marker ①).
	vals := make([]float64, 100)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = 48
		} else {
			vals[i] = 52
		}
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 100)
	if len(fa.applied) != 1 { // only the anchor
		t.Errorf("controller reacted to jitter: applied %v", fa.applied)
	}
}

func TestGradualDriftUsesLevelTwo(t *testing.T) {
	// +0.05 °C per sample: Δt_L1 per round = 0.2 °C → c·Δ ≈ 0.45 → 0
	// index change. Only the level-two horizon (ΔL2 ≈ 0.8 over 5
	// rounds → c·Δ ≈ 1.8) can catch it.
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = 42 + 0.05*float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), s.read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 400)
	if len(fa.applied) < 3 {
		t.Errorf("gradual drift not tracked: applied %v", fa.applied)
	}
	last := fa.applied[len(fa.applied)-1]
	if last < fa.applied[0]+5 {
		t.Errorf("mode rose only from %d to %d over a 20 °C drift", fa.applied[0], last)
	}
}

func TestMultipleActuatorsShareOneWindow(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 40 + float64(i)
	}
	s := &scriptedTemp{vals: vals}
	fan := &fakeActuator{modes: 100}
	dvfs := &fakeActuator{modes: 5}
	c, err := NewController(DefaultConfig(50), s.read,
		ActuatorBinding{Actuator: fan}, ActuatorBinding{Actuator: dvfs, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 16)
	if len(fan.applied) == 0 || len(dvfs.applied) == 0 {
		t.Errorf("both actuators should move: fan=%v dvfs=%v", fan.applied, dvfs.applied)
	}
}

func TestSmallerPpAppliesMoreEffectiveModes(t *testing.T) {
	run := func(pp int) int {
		// Moderate ramp (40→55 °C) so neither policy's index saturates
		// at the top of the array.
		vals := make([]float64, 60)
		for i := range vals {
			vals[i] = 40 + 0.25*float64(i)
		}
		s := &scriptedTemp{vals: vals}
		fa := &fakeActuator{modes: 100}
		c, err := NewController(DefaultConfig(pp), s.read, ActuatorBinding{Actuator: fa})
		if err != nil {
			t.Fatal(err)
		}
		drive(c, 60)
		return fa.applied[len(fa.applied)-1]
	}
	aggressive := run(25)
	weak := run(75)
	if aggressive <= weak {
		t.Errorf("Pp=25 final mode %d not above Pp=75 final mode %d", aggressive, weak)
	}
}

func TestSensorErrorCounted(t *testing.T) {
	failing := func() (float64, error) { return 0, errors.New("i2c fault") }
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), failing, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 7)
	if c.Errors() != 7 {
		t.Errorf("Errors = %d, want 7", c.Errors())
	}
	if len(fa.applied) != 0 {
		t.Error("actuator moved before the escalation threshold")
	}
	c.OnStep(8 * 250 * time.Millisecond)
	if !c.FailSafe() {
		t.Error("8 consecutive failed reads did not engage the fail-safe")
	}
	if len(fa.applied) != 1 || fa.applied[0] != fa.modes-1 {
		t.Errorf("escalation applied %v, want single most-effective mode %d", fa.applied, fa.modes-1)
	}
}

func TestActuatorErrorCounted(t *testing.T) {
	fa := &fakeActuator{modes: 100, fail: true}
	c, err := NewController(DefaultConfig(50), constTemp(60), ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 4)
	if c.Errors() == 0 {
		t.Error("failed Apply not counted")
	}
}

func TestSamplingHonorsPeriod(t *testing.T) {
	reads := 0
	read := func() (float64, error) { reads++; return 45, nil }
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), read, ActuatorBinding{Actuator: fa})
	if err != nil {
		t.Fatal(err)
	}
	// Step every 50 ms for 2 s: 40 calls, but period is 250 ms → 8 reads.
	for i := 1; i <= 40; i++ {
		c.OnStep(time.Duration(i) * 50 * time.Millisecond)
	}
	if reads != 8 {
		t.Errorf("reads = %d, want 8 (4 Hz sampling)", reads)
	}
}

// TestEndToEndFanControlOnNode closes the loop on a real simulated node:
// cpu-burn heats the die, the unified controller spins the fan up, and
// the temperature stabilizes well below what the same load produces at
// the initial low duty.
func TestEndToEndFanControlOnNode(t *testing.T) {
	n, err := node.New(node.DefaultConfig("e2e", 5))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	ctl, err := NewController(
		DefaultConfig(50),
		SysfsTemp(n.FS, n.Hwmon.TempInput),
		ActuatorBinding{Actuator: NewFanActuator(&SysfsFanPort{FS: n.FS, Chip: n.Hwmon}, 100)},
	)
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 1200; i++ { // 5 minutes
		n.Step(dt)
		ctl.OnStep(n.Elapsed())
	}
	finalTemp := n.TrueDieC()
	finalDuty := n.Fan.Duty()
	if finalDuty < 20 {
		t.Errorf("controller left the fan at %v%% under cpu-burn", finalDuty)
	}
	// Without control the same load at 10% duty settles near 62 °C;
	// the controller should do meaningfully better.
	if finalTemp > 58 {
		t.Errorf("controlled temperature %v °C, want < 58", finalTemp)
	}
	if ctl.Errors() != 0 {
		t.Errorf("controller errors: %d", ctl.Errors())
	}
}

func BenchmarkControllerRound(b *testing.B) {
	fa := &fakeActuator{modes: 100}
	c, err := NewController(DefaultConfig(50), constTemp(50), ActuatorBinding{Actuator: fa})
	if err != nil {
		b.Fatal(err)
	}
	period := 250 * time.Millisecond
	for i := 1; i <= b.N; i++ {
		c.OnStep(time.Duration(i) * period)
	}
}
