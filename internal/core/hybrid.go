package core

import (
	"time"

	"thermctl/internal/metrics"
)

// Hybrid is the unified in-band + out-of-band controller of the paper's
// §4.4: one dynamic fan controller and one tDVFS daemon driven by the
// same policy parameter, with explicit coordination between them.
//
// The coordination rule closes a feedback fight the two loops otherwise
// develop: after tDVFS scales the frequency down, the die cools, the
// fan controller sees falling temperature and relaxes the duty cycle,
// the heat returns, and tDVFS re-triggers one step deeper — a staircase
// into the lowest P-state that squanders performance to save fan power.
// Under a unified controller the out-of-band knob must not relax while
// the in-band knob is paying performance for the same degrees, so while
// tDVFS is engaged (running below the nominal frequency) the fan
// controller's index is held against downward moves. Upward fan moves
// remain allowed: more out-of-band cooling is exactly what lets tDVFS
// restore the nominal frequency sooner.
type Hybrid struct {
	// Fan is the dynamic fan controller (out-of-band knob).
	Fan *Controller
	// DVFS is the tDVFS daemon (in-band knob).
	DVFS *TDVFS

	// holdSteps is the optional nil-safe coordination counter (see
	// InstrumentMetrics in metrics.go).
	holdSteps *metrics.Counter
}

// NewHybrid couples the two controllers.
func NewHybrid(fan *Controller, dvfs *TDVFS) *Hybrid {
	return &Hybrid{Fan: fan, DVFS: dvfs}
}

// OnStep implements the cluster Controller interface: the DVFS daemon
// decides first, then the fan controller runs with its floor held if
// the in-band knob is engaged.
func (h *Hybrid) OnStep(now time.Duration) {
	h.DVFS.OnStep(now)
	engaged := h.DVFS.Engaged()
	if engaged {
		h.holdSteps.Inc()
	}
	h.Fan.SetHoldFloor(engaged)
	h.Fan.OnStep(now)
}
