package core

import (
	"fmt"
	"sort"
	"time"

	"thermctl/internal/metrics"
)

// Hybrid is the unified in-band + out-of-band controller of the paper's
// §4.4: one dynamic fan controller and one tDVFS daemon driven by the
// same policy parameter, with explicit coordination between them.
//
// The coordination rule closes a feedback fight the two loops otherwise
// develop: after tDVFS scales the frequency down, the die cools, the
// fan controller sees falling temperature and relaxes the duty cycle,
// the heat returns, and tDVFS re-triggers one step deeper — a staircase
// into the lowest P-state that squanders performance to save fan power.
// Under a unified controller the out-of-band knob must not relax while
// the in-band knob is paying performance for the same degrees, so while
// tDVFS is engaged (running below the nominal frequency) the fan
// controller's index is held against downward moves. Upward fan moves
// remain allowed: more out-of-band cooling is exactly what lets tDVFS
// restore the nominal frequency sooner.
//
// Since the control-plane unification the coordination is expressed as
// an Engine of two lanes — the tDVFS binding first, then the fan
// binding behind a pre-step hook that transfers the engagement state —
// so "coupled controllers" is ordering plus one hook, not a bespoke
// loop.
type Hybrid struct {
	// Fan is the dynamic fan controller (out-of-band knob).
	Fan *Controller
	// DVFS is the tDVFS daemon (in-band knob).
	DVFS *TDVFS

	eng *Engine

	// holdSteps is the optional nil-safe coordination counter (see
	// InstrumentMetrics in metrics.go).
	holdSteps *metrics.Counter
}

// NewHybrid couples the two controllers.
func NewHybrid(fan *Controller, dvfs *TDVFS) *Hybrid {
	h := &Hybrid{Fan: fan, DVFS: dvfs, eng: NewEngine()}
	h.eng.Attach(dvfs.Binding(), nil)
	h.eng.Attach(fan.Binding(), func(time.Duration) {
		engaged := dvfs.Engaged()
		if engaged {
			h.holdSteps.Inc()
		}
		fan.SetHoldFloor(engaged)
	})
	return h
}

// Engine exposes the two-lane engine hosting the coupled controllers.
func (h *Hybrid) Engine() *Engine { return h.eng }

// OnStep implements the cluster Controller interface: the DVFS daemon
// decides first, then the fan controller runs with its floor held if
// the in-band knob is engaged.
func (h *Hybrid) OnStep(now time.Duration) { h.eng.OnStep(now) }

// Errors returns the combined error count of both lanes. Safe to call
// concurrently with the control loop.
func (h *Hybrid) Errors() uint64 { return h.eng.Errors() }

// FailSafe reports whether either lane's fail-safe escalation is
// currently engaged.
func (h *Hybrid) FailSafe() bool { return h.Fan.FailSafe() || h.DVFS.FailSafe() }

// HybridFailSafeEvent is one lane's fail-safe edge in the merged log.
type HybridFailSafeEvent struct {
	// Lane names the controller that produced the event: "fan" or
	// "dvfs".
	Lane string
	FailSafeEvent
}

// FailSafeEvents returns both lanes' escalation/recovery logs merged
// into one timeline (stable-sorted by time, fan before dvfs on ties
// only insofar as lane order preserves it).
func (h *Hybrid) FailSafeEvents() []HybridFailSafeEvent {
	var out []HybridFailSafeEvent
	for _, ev := range h.Fan.FailSafeEvents() {
		out = append(out, HybridFailSafeEvent{Lane: "fan", FailSafeEvent: ev})
	}
	for _, ev := range h.DVFS.FailSafeEvents() {
		out = append(out, HybridFailSafeEvent{Lane: "dvfs", FailSafeEvent: ev})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// HybridStatus is a point-in-time observability snapshot covering both
// lanes plus the coordination state, so daemons and reports need not
// reach into the individual controllers.
type HybridStatus struct {
	// Fan is the fan lane's full snapshot.
	Fan Status
	// DVFSMode is the in-band lane's current physical mode (0 =
	// nominal frequency); Engaged mirrors DVFSMode > 0.
	DVFSMode int
	Engaged  bool
	// Downscales/Upscales count the in-band lane's decisions.
	Downscales, Upscales uint64
	// Errors is the combined error count; FailSafe is true if either
	// lane is escalated.
	Errors   uint64
	FailSafe bool
}

// Status returns the aggregated snapshot.
func (h *Hybrid) Status() HybridStatus {
	return HybridStatus{
		Fan:        h.Fan.Status(),
		DVFSMode:   h.DVFS.CurrentMode(),
		Engaged:    h.DVFS.Engaged(),
		Downscales: h.DVFS.Downscales(),
		Upscales:   h.DVFS.Upscales(),
		Errors:     h.Errors(),
		FailSafe:   h.FailSafe(),
	}
}

// String renders the snapshot as a single log line.
func (s HybridStatus) String() string {
	out := s.Fan.String()
	out += fmt.Sprintf(" dvfs[mode=%d engaged=%v down=%d up=%d]",
		s.DVFSMode, s.Engaged, s.Downscales, s.Upscales)
	out += fmt.Sprintf(" total-errs=%d", s.Errors)
	if s.FailSafe {
		out += " FAILSAFE"
	}
	return out
}
