package core

import (
	"time"

	"thermctl/internal/faults"
)

// FailSafeConfig parameterizes the degradation policy shared by the
// unified controller and the tDVFS daemon: a controller that cannot see
// (failed reads) or cannot act (failed actuations) for EscalateErrors
// consecutive samples escalates every actuator to its most effective
// mode — fan to maximum duty, DVFS to the frequency floor — because
// cooking the die silently is the one failure mode thermal control must
// never have. Control resumes after RecoverSamples consecutive clean
// samples, mirroring the fan watchdog's stall/recover hysteresis.
type FailSafeConfig struct {
	// EscalateErrors is the consecutive-failure count that triggers the
	// escalation. At the 250 ms sample period the default 8 reacts
	// within 2 s. Zero selects the default.
	EscalateErrors int
	// RecoverSamples is the consecutive clean-sample count that releases
	// the escalation (default 4, i.e. 1 s of good data). Zero selects
	// the default.
	RecoverSamples int
	// Disable turns the policy off, restoring the historical
	// count-and-skip behaviour. For experiments only.
	Disable bool
}

// DefaultFailSafeConfig returns the default escalation thresholds.
func DefaultFailSafeConfig() FailSafeConfig {
	return FailSafeConfig{EscalateErrors: 8, RecoverSamples: 4}
}

// withDefaults fills zero fields.
func (f FailSafeConfig) withDefaults() FailSafeConfig {
	if f.EscalateErrors == 0 {
		f.EscalateErrors = 8
	}
	if f.RecoverSamples == 0 {
		f.RecoverSamples = 4
	}
	return f
}

// FailSafeEvent records one fail-safe edge, in the style of the fan
// watchdog's event log.
type FailSafeEvent struct {
	// At is the simulation time of the transition.
	At time.Duration
	// Engaged is true for an escalation, false for a recovery.
	Engaged bool
}

// RetryActuator wraps an Actuator so every Apply runs under a
// faults.Retrier: bounded attempts with jittered backoff absorb
// transient bus faults before the controller ever counts an error.
// Build the Retrier with a nil sleep function when the actuator is
// driven from OnStep-reachable code (the control loop must not wait on
// the wall clock).
type RetryActuator struct {
	Inner Actuator
	R     *faults.Retrier
}

// Name implements Actuator.
func (ra *RetryActuator) Name() string { return ra.Inner.Name() }

// NumModes implements Actuator.
func (ra *RetryActuator) NumModes() int { return ra.Inner.NumModes() }

// Apply implements Actuator, retrying the inner Apply under the policy.
// It drives the retrier's closure-free Attempt loop: a Do closure would
// allocate on every actuation in Step-reachable code.
func (ra *RetryActuator) Apply(m int) error {
	var err error
	for a := ra.R.Begin(); a.Next(&err); {
		err = ra.Inner.Apply(m)
	}
	return err
}

// Current implements Actuator.
func (ra *RetryActuator) Current() (int, error) { return ra.Inner.Current() }

// RetryFreqPort wraps a FreqPort so SetKHz runs under a faults.Retrier —
// the DVFS counterpart of RetryActuator, for wiring points that build a
// concrete DVFSActuator (NewTDVFS takes one, not the Actuator
// interface). Reads are passed through untouched: a failed read is a
// signal the controller's consecutive-error escalation must see.
type RetryFreqPort struct {
	Port FreqPort
	R    *faults.Retrier
}

// AvailableKHz implements FreqPort.
func (rp *RetryFreqPort) AvailableKHz() ([]int64, error) { return rp.Port.AvailableKHz() }

// SetKHz implements FreqPort, retrying the write under the policy with
// the closure-free Attempt loop (see RetryActuator.Apply).
func (rp *RetryFreqPort) SetKHz(f int64) error {
	var err error
	for a := rp.R.Begin(); a.Next(&err); {
		err = rp.Port.SetKHz(f)
	}
	return err
}

// CurrentKHz implements FreqPort.
func (rp *RetryFreqPort) CurrentKHz() (int64, error) { return rp.Port.CurrentKHz() }
