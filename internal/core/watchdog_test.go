package core

import (
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func newWatchdogRig(t *testing.T) (*node.Node, *Watchdog) {
	t.Helper()
	n, err := node.New(node.DefaultConfig("wd", 121))
	if err != nil {
		t.Fatal(err)
	}
	n.Settle(0)
	act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	rpm := func() (float64, error) {
		v, err := n.FS.ReadInt(n.Hwmon.FanInput)
		return float64(v), err
	}
	w, err := NewWatchdog(DefaultWatchdogConfig(), rpm, act)
	if err != nil {
		t.Fatal(err)
	}
	return n, w
}

func TestWatchdogValidation(t *testing.T) {
	_, act := newDVFSRig(t)
	if _, err := NewWatchdog(DefaultWatchdogConfig(), nil, act); err == nil {
		t.Error("nil reader accepted")
	}
	bad := DefaultWatchdogConfig()
	bad.SamplePeriod = 0
	if _, err := NewWatchdog(bad, func() (float64, error) { return 0, nil }, act); err == nil {
		t.Error("zero period accepted")
	}
}

func TestWatchdogDeclaresFailureAndDownclocks(t *testing.T) {
	n, w := newWatchdogRig(t)
	// Fan running: pin it at 50% through sysfs.
	port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	if err := port.SetDutyPercent(50); err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	run := func(steps int) {
		for i := 0; i < steps; i++ {
			n.Step(dt)
			w.OnStep(n.Elapsed())
		}
	}
	run(40) // 10 s healthy
	if w.Emergency() {
		t.Fatal("emergency with a healthy fan")
	}
	failAt := n.Elapsed()
	n.Fan.SetFailed(true)
	run(60) // 15 s: spin-down + 3 stalled samples well past
	if !w.Emergency() {
		t.Fatal("failure never declared")
	}
	if n.CPU.FreqGHz() != 1.0 {
		t.Errorf("frequency %.1f GHz during emergency, want 1.0", n.CPU.FreqGHz())
	}
	evs := w.Events()
	if len(evs) != 1 || !evs[0].Failure {
		t.Fatalf("events: %+v", evs)
	}
	// Detection latency: spin-down (~2 s) + 3 samples ≈ ≤10 s — far
	// faster than the ~40+ s a temperature threshold needs.
	if latency := evs[0].At - failAt; latency > 10*time.Second {
		t.Errorf("detection latency %v, want ≤10 s", latency)
	}
}

func TestWatchdogRecovers(t *testing.T) {
	n, w := newWatchdogRig(t)
	port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	_ = port.SetDutyPercent(50)
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	run := func(steps int) {
		for i := 0; i < steps; i++ {
			n.Step(dt)
			w.OnStep(n.Elapsed())
		}
	}
	run(20)
	n.Fan.SetFailed(true)
	run(60)
	if !w.Emergency() {
		t.Fatal("setup: failure not declared")
	}
	n.Fan.SetFailed(false)
	run(60)
	if w.Emergency() {
		t.Fatal("emergency not cleared after fan recovery")
	}
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("frequency %.1f GHz after recovery, want 2.4", n.CPU.FreqGHz())
	}
	evs := w.Events()
	if len(evs) != 2 || evs[1].Failure {
		t.Fatalf("events: %+v", evs)
	}
}

func TestWatchdogIgnoresBriefStall(t *testing.T) {
	n, w := newWatchdogRig(t)
	port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	_ = port.SetDutyPercent(50)
	dt := 250 * time.Millisecond
	run := func(steps int) {
		for i := 0; i < steps; i++ {
			n.Step(dt)
			w.OnStep(n.Elapsed())
		}
	}
	run(20)
	// A 2-second glitch (shorter than StallSamples at 1 s cadence plus
	// spin-down) must not trip: the tach only falls below 100 RPM well
	// after the rotor coasts down, which takes seconds itself.
	n.Fan.SetFailed(true)
	run(8) // 2 s
	n.Fan.SetFailed(false)
	run(60)
	if w.Emergency() {
		t.Error("brief stall declared an emergency")
	}
	if len(w.Events()) != 0 {
		t.Errorf("events logged for a brief stall: %+v", w.Events())
	}
}

func TestWatchdogBeatsThermalResponse(t *testing.T) {
	// Head-to-head: fan dies under cpu-burn. The watchdog-protected
	// node peaks cooler than an identical node protected by tDVFS
	// alone, because it reacts to the cause instead of the symptom.
	peak := func(useWatchdog bool) float64 {
		n, err := node.New(node.DefaultConfig("race", 127))
		if err != nil {
			t.Fatal(err)
		}
		n.Settle(0)
		port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
		_ = port.SetDutyPercent(60)
		act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
		if err != nil {
			t.Fatal(err)
		}
		var ctl interface{ OnStep(time.Duration) }
		if useWatchdog {
			rpm := func() (float64, error) {
				v, err := n.FS.ReadInt(n.Hwmon.FanInput)
				return float64(v), err
			}
			ctl, err = NewWatchdog(DefaultWatchdogConfig(), rpm, act)
		} else {
			ctl, err = NewTDVFS(DefaultTDVFSConfig(50), SysfsTemp(n.FS, n.Hwmon.TempInput), act)
		}
		if err != nil {
			t.Fatal(err)
		}
		n.SetGenerator(workload.NewCPUBurn(nil))
		dt := 250 * time.Millisecond
		hottest := 0.0
		for i := 0; i < 2400; i++ { // 10 min
			n.Step(dt)
			ctl.OnStep(n.Elapsed())
			if n.Elapsed() == 90*time.Second {
				n.Fan.SetFailed(true)
			}
			if v := n.TrueDieC(); v > hottest {
				hottest = v
			}
		}
		return hottest
	}
	wd := peak(true)
	td := peak(false)
	if wd >= td {
		t.Errorf("watchdog peak %.2f °C not below tDVFS peak %.2f °C", wd, td)
	}
}
