package core

import (
	"fmt"
	"time"
)

// WatchdogConfig parameterizes the fan-failure watchdog.
type WatchdogConfig struct {
	// SamplePeriod is how often the tach is polled (default 1 s).
	SamplePeriod time.Duration
	// StallRPM is the reading at or below which the fan counts as not
	// spinning (default 100 RPM — tachometers read ~0 on a seized
	// rotor).
	StallRPM float64
	// StallSamples is how many consecutive stalled readings declare a
	// failure (default 3; a fan takes ~1 s to spin up from rest, so a
	// single zero can be a restart, not a failure).
	StallSamples int
	// RecoverSamples is how many consecutive healthy readings end the
	// emergency (default 5).
	RecoverSamples int
}

// DefaultWatchdogConfig returns the default thresholds.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		SamplePeriod:   time.Second,
		StallRPM:       100,
		StallSamples:   3,
		RecoverSamples: 5,
	}
}

// RPMReader supplies the fan speed (e.g. the hwmon fan1_input file or
// an IPMI fan sensor).
type RPMReader func() (float64, error)

// WatchdogEvent records one state change.
type WatchdogEvent struct {
	At      time.Duration
	Failure bool // true = failure declared, false = recovery
}

// Watchdog detects a seized CPU fan from its tachometer and responds
// in-band *immediately* — it forces the most effective DVFS mode the
// moment the rotor is confirmed stopped, instead of waiting for the die
// to heat through a temperature threshold. This is the fault-driven
// counterpart of tDVFS (the paper's related work, Choi et al., pairs
// DVFS with fan failure exactly this way): on a dead fan, every second
// at full power costs ~1 °C, so reacting to the cause beats reacting to
// the symptom. When the fan recovers, the nominal frequency is
// restored.
type Watchdog struct {
	cfg  WatchdogConfig
	rpm  RPMReader
	act  *DVFSActuator
	next time.Duration

	stalled   int
	healthy   int
	emergency bool
	events    []WatchdogEvent
	errs      uint64

	// mt holds the optional metric handles (see InstrumentMetrics in
	// metrics.go); every handle is nil-safe.
	mt watchdogMetrics
}

// NewWatchdog builds the watchdog over a tach reader and the DVFS
// actuator it commands during an emergency.
func NewWatchdog(cfg WatchdogConfig, rpm RPMReader, act *DVFSActuator) (*Watchdog, error) {
	if rpm == nil || act == nil {
		return nil, fmt.Errorf("core: watchdog needs a tach reader and an actuator")
	}
	if cfg.SamplePeriod <= 0 {
		return nil, fmt.Errorf("core: watchdog: non-positive sample period")
	}
	if cfg.StallSamples <= 0 {
		cfg.StallSamples = 3
	}
	if cfg.RecoverSamples <= 0 {
		cfg.RecoverSamples = 5
	}
	return &Watchdog{cfg: cfg, rpm: rpm, act: act, next: cfg.SamplePeriod}, nil
}

// Emergency reports whether a fan failure is currently declared.
func (w *Watchdog) Emergency() bool { return w.emergency }

// Events returns the state-change log.
func (w *Watchdog) Events() []WatchdogEvent {
	return append([]WatchdogEvent(nil), w.events...)
}

// Errors returns the failed-read count.
func (w *Watchdog) Errors() uint64 { return w.errs }

// OnStep implements the cluster Controller interface.
func (w *Watchdog) OnStep(now time.Duration) {
	if now < w.next {
		return
	}
	w.next += w.cfg.SamplePeriod
	rpm, err := w.rpm()
	if err != nil {
		w.errs++
		w.mt.errors.Inc()
		return
	}
	if rpm <= w.cfg.StallRPM {
		w.stalled++
		w.healthy = 0
	} else {
		w.healthy++
		w.stalled = 0
	}

	switch {
	case !w.emergency && w.stalled >= w.cfg.StallSamples:
		// Confirmed seizure: drop to the most effective (lowest
		// frequency) mode right now.
		if err := w.act.Apply(w.act.NumModes() - 1); err != nil {
			w.errs++
			w.mt.errors.Inc()
			return
		}
		w.emergency = true
		w.mt.failures.Inc()
		w.mt.emergency.SetBool(true)
		//thermlint:allow hotalloc -- seizure confirmations are rare transitions; the event log is the audit trail
		w.events = append(w.events, WatchdogEvent{At: now, Failure: true})
	case w.emergency && w.healthy >= w.cfg.RecoverSamples:
		if err := w.act.Apply(0); err != nil {
			w.errs++
			w.mt.errors.Inc()
			return
		}
		w.emergency = false
		w.mt.recoveries.Inc()
		w.mt.emergency.SetBool(false)
		//thermlint:allow hotalloc -- recoveries are rare transitions; the event log is the audit trail
		w.events = append(w.events, WatchdogEvent{At: now, Failure: false})
	}
}
