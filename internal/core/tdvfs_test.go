package core

import (
	"testing"
	"time"

	"thermctl/internal/node"
	"thermctl/internal/workload"
)

func newDVFSRig(t *testing.T) (*node.Node, *DVFSActuator) {
	t.Helper()
	n, err := node.New(node.DefaultConfig("tdvfs", 3))
	if err != nil {
		t.Fatal(err)
	}
	act, err := NewDVFSActuator(&SysfsFreqPort{FS: n.FS, Paths: n.Cpufreq})
	if err != nil {
		t.Fatal(err)
	}
	return n, act
}

func driveTDVFS(d *TDVFS, samples int, temp func(i int) float64) {
	period := 250 * time.Millisecond
	for i := 1; i <= samples; i++ {
		d.OnStep(time.Duration(i) * period)
	}
	_ = temp
}

func TestTDVFSValidation(t *testing.T) {
	_, act := newDVFSRig(t)
	if _, err := NewTDVFS(DefaultTDVFSConfig(50), nil, act); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewTDVFS(DefaultTDVFSConfig(50), constTemp(40), nil); err == nil {
		t.Error("nil actuator accepted")
	}
	bad := DefaultTDVFSConfig(50)
	bad.SamplePeriod = 0
	if _, err := NewTDVFS(bad, constTemp(40), act); err == nil {
		t.Error("zero period accepted")
	}
}

func TestTDVFSStaysAtNominalBelowThreshold(t *testing.T) {
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(50), constTemp(48), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 200, nil)
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("frequency %v GHz with temp below threshold, want 2.4", n.CPU.FreqGHz())
	}
	if d.Downscales() != 0 {
		t.Errorf("Downscales = %d", d.Downscales())
	}
}

// risingTemp returns a reader climbing ratePerSample °C per read from
// start, capped at cap.
func risingTemp(start, ratePerSample, cap float64) TempReader {
	i := 0
	return func() (float64, error) {
		v := start + ratePerSample*float64(i)
		i++
		if v > cap {
			v = cap
		}
		return v, nil
	}
}

func TestTDVFSScalesDownOnRisingAboveThreshold(t *testing.T) {
	n, act := newDVFSRig(t)
	// Climb 0.1 °C per sample from 50: above threshold and rising.
	d, err := NewTDVFS(DefaultTDVFSConfig(50), risingTemp(50, 0.1, 58), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 60, nil)
	if n.CPU.FreqGHz() != 2.2 {
		t.Errorf("frequency %v GHz, want 2.2 after one Pp=50 scale-down", n.CPU.FreqGHz())
	}
	if d.Downscales() != 1 {
		t.Errorf("Downscales = %d, want 1 (cooldown must hold further changes)", d.Downscales())
	}
	if _, trig := d.TriggeredAt(); !trig {
		t.Error("TriggeredAt not set")
	}
}

func TestTDVFSHoldsWhenStableAboveThreshold(t *testing.T) {
	// The Figure 9 behaviour: temperature steady at 54 °C — above the
	// 51 °C threshold but not rising and below the emergency margin —
	// must NOT trigger further scaling. tDVFS stops the rise; it does
	// not chase the threshold at any performance cost.
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(50), constTemp(54), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 400, nil)
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("stable-above-threshold moved frequency to %v GHz", n.CPU.FreqGHz())
	}
	if d.Downscales() != 0 {
		t.Errorf("Downscales = %d, want 0", d.Downscales())
	}
}

func TestTDVFSEmergencyBackstop(t *testing.T) {
	// Consistently above threshold+margin scales down even with a flat
	// trend: a creeping rise must not reach the hardware throttle
	// point.
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(50), constTemp(60), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 60, nil)
	if n.CPU.FreqGHz() >= 2.4 {
		t.Errorf("emergency backstop did not fire at 60 °C: %v GHz", n.CPU.FreqGHz())
	}
}

func TestTDVFSPp25JumpsTwoStates(t *testing.T) {
	// Paper Figure 10 ①: with Pp=25 the first scale-down goes
	// 2.4 → 2.0 GHz.
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(25), risingTemp(50, 0.1, 58), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 60, nil)
	if n.CPU.FreqGHz() != 2.0 {
		t.Errorf("Pp=25 first scale-down landed at %v GHz, want 2.0", n.CPU.FreqGHz())
	}
}

func TestTDVFSRestoresNominalDirectly(t *testing.T) {
	// Paper Figure 10 ②: scale-up returns to the original frequency in
	// one step.
	n, act := newDVFSRig(t)
	hot := true
	rise := risingTemp(50, 0.1, 58)
	read := func() (float64, error) {
		if hot {
			return rise()
		}
		return 46, nil
	}
	d, err := NewTDVFS(DefaultTDVFSConfig(25), read, act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 60, nil)
	if n.CPU.FreqGHz() != 2.0 {
		t.Fatalf("setup: frequency %v, want 2.0", n.CPU.FreqGHz())
	}
	hot = false
	period := 250 * time.Millisecond
	for i := 61; i <= 200; i++ {
		d.OnStep(time.Duration(i) * period)
	}
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("after cooling, frequency %v GHz, want direct restore to 2.4", n.CPU.FreqGHz())
	}
	if d.Upscales() != 1 {
		t.Errorf("Upscales = %d, want 1", d.Upscales())
	}
}

func TestTDVFSIgnoresShortSpikes(t *testing.T) {
	// A 2-second spike above threshold must not trigger: the level-two
	// FIFO requires 5 consecutive seconds above. This is the red-circle
	// behaviour in the paper's Figure 8.
	i := 0
	read := func() (float64, error) {
		i++
		// Samples 40..48 (2 s) are hot; everything else cool.
		if i >= 40 && i < 48 {
			return 55, nil
		}
		return 47, nil
	}
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(50), read, act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 200, nil)
	if n.CPU.FreqGHz() != 2.4 {
		t.Errorf("short spike triggered tDVFS: frequency %v", n.CPU.FreqGHz())
	}
	if d.Downscales() != 0 {
		t.Errorf("Downscales = %d, want 0", d.Downscales())
	}
}

func TestTDVFSHysteresisPreventsChatter(t *testing.T) {
	// Temperature settles between threshold-hysteresis and threshold:
	// after a scale-down it must NOT bounce back up.
	hot := true
	rise := risingTemp(50, 0.1, 58)
	read := func() (float64, error) {
		if hot {
			return rise()
		}
		return 49.5, nil // below threshold 51, above threshold-hyst 48
	}
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(50), read, act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 60, nil)
	if n.CPU.FreqGHz() != 2.2 {
		t.Fatalf("setup failed: %v GHz", n.CPU.FreqGHz())
	}
	hot = false
	period := 250 * time.Millisecond
	for i := 61; i <= 260; i++ {
		d.OnStep(time.Duration(i) * period)
	}
	if n.CPU.FreqGHz() != 2.2 {
		t.Errorf("frequency chattered to %v GHz inside the hysteresis band", n.CPU.FreqGHz())
	}
	if d.Upscales() != 0 {
		t.Errorf("Upscales = %d, want 0", d.Upscales())
	}
}

func TestTDVFSExtremePolicyJumpsToLowestDirectly(t *testing.T) {
	// Pp at the aggressive extreme fills the whole array with the most
	// effective mode (Eq. 1 with np=1). One trigger must jump straight
	// from 2.4 to 1.0 GHz — not conclude it has nothing to do.
	n, act := newDVFSRig(t)
	d, err := NewTDVFS(DefaultTDVFSConfig(1), risingTemp(50, 0.1, 58), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 80, nil)
	if n.CPU.FreqGHz() != 1.0 {
		t.Errorf("Pp=1 scale-down landed at %v GHz, want direct 1.0", n.CPU.FreqGHz())
	}
	if !d.Engaged() {
		t.Error("daemon not Engaged after scaling")
	}
	if d.CurrentMode() != 4 {
		t.Errorf("CurrentMode = %d, want 4", d.CurrentMode())
	}
}

func TestTDVFSWalksDownToLowestMode(t *testing.T) {
	n, act := newDVFSRig(t)
	cfg := DefaultTDVFSConfig(50)
	cfg.CooldownRounds = 5
	d, err := NewTDVFS(cfg, constTemp(60), act)
	if err != nil {
		t.Fatal(err)
	}
	driveTDVFS(d, 800, nil)
	if n.CPU.FreqGHz() != 1.0 {
		t.Errorf("persistently hot: frequency %v GHz, want 1.0 (walked to bottom)", n.CPU.FreqGHz())
	}
	// Once at the bottom, no more transitions accumulate.
	before := n.CPU.Transitions()
	driveTDVFS(d, 100, nil)
	if n.CPU.Transitions() != before {
		t.Error("transitions kept accumulating at the lowest mode")
	}
}

// TestTDVFSEndToEndStabilizesHotNode reproduces the Figure 9 situation
// on one node: a weak fan (25% duty) cannot hold cpu-burn below the
// threshold, so tDVFS must step in and stabilize the temperature.
func TestTDVFSEndToEndStabilizesHotNode(t *testing.T) {
	n, act := newDVFSRig(t)
	n.Settle(0)
	// Pin the fan at 25% duty (weak cooling).
	port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	if err := port.SetDutyPercent(25); err != nil {
		t.Fatal(err)
	}
	d, err := NewTDVFS(DefaultTDVFSConfig(50), SysfsTemp(n.FS, n.Hwmon.TempInput), act)
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(workload.NewCPUBurn(nil))
	dt := 250 * time.Millisecond
	for i := 0; i < 2400; i++ { // 10 minutes
		n.Step(dt)
		d.OnStep(n.Elapsed())
	}
	if d.Downscales() == 0 {
		t.Fatal("tDVFS never triggered on a hot node")
	}
	if n.CPU.FreqGHz() >= 2.4 {
		t.Errorf("frequency still %v GHz", n.CPU.FreqGHz())
	}
	// The die must end close to (or below) the threshold region rather
	// than running away.
	if got := n.TrueDieC(); got > 56 {
		t.Errorf("final temperature %v °C, want stabilized near threshold", got)
	}
	if n.CPU.Transitions() > 8 {
		t.Errorf("tDVFS made %d transitions, want few (paper: 2-3)", n.CPU.Transitions())
	}
}
