package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"thermctl/internal/core/window"
	"thermctl/internal/metrics"
)

// This file is the control engine: the one sample → two-level window →
// decide → apply pipeline every controller in this repository runs on.
// The paper's claim is that thermal control is *one* loop — a
// temperature stream, a history window, a decision law, and any set of
// actuators — and the engine makes that literal: sampling cadence,
// fail-safe escalation, retry bookkeeping, error counting and the
// generic metrics hooks live here exactly once, while the decision law
// is a pluggable Policy. The dynamic fan controller, the tDVFS daemon,
// the baseline controllers and the hybrid coordinator are all thin
// facades over Binding/Engine (see controller.go, tdvfs.go, hybrid.go
// and internal/baseline).

// Policy is the pluggable decision layer of the control engine: the
// strategy that turns the binding's window/sample state into actuator
// commands. Decide is invoked once per completed history-window round
// (or once per sample for windowless bindings), never while the
// fail-safe holds. Policies issue every actuation through the
// transaction so the engine's shared error accounting sees it.
//
// A policy may additionally implement EscalatePolicy,
// FailSafeApplyPolicy or ReleasePolicy to observe the engine's
// fail-safe edges.
type Policy interface {
	// Name identifies the policy in logs and scenario specs.
	Name() string
	// Decide runs one control decision against tx.
	Decide(tx *Txn)
}

// EscalatePolicy is an optional Policy extension: OnEscalate fires once
// when the engine's fail-safe engages, letting the policy reposition
// its internal state (the ctlarray policy pins every index to the
// array's end).
type EscalatePolicy interface {
	OnEscalate()
}

// FailSafeApplyPolicy is an optional Policy extension: OnFailSafeApplied
// fires when an escalated actuation lands, with the slot and the mode
// applied (the threshold policy records the frequency floor as its
// current mode so Engaged() holds throughout).
type FailSafeApplyPolicy interface {
	OnFailSafeApplied(slot, mode int)
}

// ReleasePolicy is an optional Policy extension: OnRelease fires once
// when the fail-safe releases (the threshold policy re-arms its
// decision cooldown).
type ReleasePolicy interface {
	OnRelease()
}

// DutyApplier is the continuous-command escape hatch for actuators
// whose policy computes a physical setting directly instead of a
// discrete mode (the static fan map emits a duty in percent). Discrete
// modes remain the unified representation; Txn.ApplyDuty routes
// through this interface with the same error accounting as Txn.Apply.
type DutyApplier interface {
	ApplyDuty(pct float64) error
}

// FanDutyActuator adapts a FanPort as a single-mode actuator with a
// continuous duty command: Apply(0) pins Pinned percent (the constant
// baseline), ApplyDuty commands an arbitrary duty (the static map).
type FanDutyActuator struct {
	Port   FanPort
	Pinned float64
}

// Name implements Actuator.
func (f *FanDutyActuator) Name() string { return "fan" }

// NumModes implements Actuator.
func (f *FanDutyActuator) NumModes() int { return 1 }

// Apply implements Actuator.
func (f *FanDutyActuator) Apply(int) error { return f.Port.SetDutyPercent(f.Pinned) }

// Current implements Actuator.
func (f *FanDutyActuator) Current() (int, error) { return 0, nil }

// ApplyDuty implements DutyApplier.
func (f *FanDutyActuator) ApplyDuty(pct float64) error { return f.Port.SetDutyPercent(pct) }

// bindingMetrics bundles the engine-generic instrument handles. Every
// handle is nil-safe; facades install their legacy metric names at
// wiring time (see metrics.go), so an uninstrumented binding pays one
// predictable branch per event.
type bindingMetrics struct {
	// rounds counts completed history-window rounds (one decision
	// opportunity each).
	rounds *metrics.Counter
	// modeTransitions counts applied actuator mode changes.
	modeTransitions *metrics.Counter
	// errors counts failed sensor reads and actuations.
	errors *metrics.Counter
	// escalations/recoveries count fail-safe edges; failSafe is 1 while
	// the escalation holds the actuators at their most effective mode.
	escalations *metrics.Counter
	recoveries  *metrics.Counter
	failSafe    *metrics.Gauge
}

// slot is one actuator bound into a Binding, with the engine-owned
// bookkeeping that used to be copied into every controller: applied
// move count and the fail-safe retry flag.
type slot struct {
	act   Actuator
	moves uint64
	// fsRetry marks a fail-safe escalation whose Apply has not yet
	// succeeded; it is retried on every subsequent sample.
	fsRetry bool
}

// BindingConfig assembles one Binding.
type BindingConfig struct {
	// Policy is the decision law. Required.
	Policy Policy
	// Read samples the temperature. A nil reader skips the engine's
	// sampling stage entirely (the policy gathers its own inputs, like
	// the utilization-driven cpuspeed baseline); the fail-safe pipeline
	// is then inert because it re-qualifies on read outcomes.
	Read TempReader
	// SamplePeriod is the sampling cadence; zero decides on every step
	// (the constant-fan baseline pins its duty from the first step).
	SamplePeriod time.Duration
	// Window, when non-nil, sizes the two-level history; Decide then
	// fires once per completed round. Nil decides on every sample.
	Window *window.Config
	// FailSafe parameterizes the consecutive-error escalation; zero
	// fields take the defaults, Disable opts out (the baselines keep
	// their historical count-and-skip behaviour).
	FailSafe FailSafeConfig
	// Actuators are the bound techniques, in slot order.
	Actuators []Actuator
}

// Binding is one policy bound to its actuators on the engine pipeline.
// It implements the cluster Controller interface via OnStep.
type Binding struct {
	pol    Policy
	read   TempReader
	period time.Duration
	win    *window.Window
	fs     FailSafeConfig
	slots  []*slot
	next   time.Duration

	// errs is atomic: daemons read Errors() from their -listen
	// goroutines while OnStep writes from the control loop.
	errs atomic.Uint64

	// fail-safe degradation state (see FailSafeConfig). Read and
	// actuation failures are counted separately: reads fail once per
	// sample, actuations only when a decision moves a mode, and a run
	// of either kind must escalate.
	consecReadErrs  int
	consecApplyErrs int
	cleanSamples    int
	failSafe        bool
	fsEvents        []FailSafeEvent

	// tx is the per-round decision transaction, hosted here so handing
	// it to Policy.Decide (an interface call) does not force a heap
	// allocation every sampled round.
	tx Txn

	mt bindingMetrics
}

// NewBinding builds a binding. The policy is required; everything else
// degrades gracefully (see BindingConfig).
func NewBinding(cfg BindingConfig) (*Binding, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("core: binding needs a policy")
	}
	b := &Binding{
		pol:    cfg.Policy,
		read:   cfg.Read,
		period: cfg.SamplePeriod,
		fs:     cfg.FailSafe.withDefaults(),
	}
	if cfg.Window != nil {
		b.win = window.New(*cfg.Window)
	}
	if b.period > 0 {
		b.next = b.period
	}
	for _, a := range cfg.Actuators {
		b.slots = append(b.slots, &slot{act: a})
	}
	return b, nil
}

// Policy returns the bound decision law.
func (b *Binding) Policy() Policy { return b.pol }

// Window exposes the binding's history window (read-only use:
// classification, diagnostics). Nil for windowless bindings.
func (b *Binding) Window() *window.Window { return b.win }

// Errors returns the count of failed sensor reads or actuations. Safe
// to call concurrently with the control loop.
func (b *Binding) Errors() uint64 { return b.errs.Load() }

// FailSafe reports whether the fail-safe escalation is currently
// holding every actuator at its most effective mode.
func (b *Binding) FailSafe() bool { return b.failSafe }

// FailSafeEvents returns a copy of the escalation/recovery event log.
func (b *Binding) FailSafeEvents() []FailSafeEvent {
	out := make([]FailSafeEvent, len(b.fsEvents))
	copy(out, b.fsEvents)
	return out
}

// Moves returns the number of mode changes applied through slot i.
func (b *Binding) Moves(i int) uint64 { return b.slots[i].moves }

// Actuator returns the actuator bound at slot i.
func (b *Binding) Actuator(i int) Actuator { return b.slots[i].act }

// Slots returns the number of bound actuators.
func (b *Binding) Slots() int { return len(b.slots) }

// OnStep runs the engine pipeline once: gate on the sampling cadence,
// read, maintain the fail-safe state machine, feed the history window,
// and hand completed rounds to the policy. Implements the cluster
// Controller interface.
//
// Error handling is the fail-safe degradation policy: a failed read (or
// actuation) is counted, and EscalateErrors consecutive failures drive
// every actuator to its most effective mode — a blind controller must
// cool maximally, not skip rounds while the die cooks. The escalation
// releases after RecoverSamples consecutive clean samples, after which
// the window has fresh data and normal control resumes.
func (b *Binding) OnStep(now time.Duration) {
	if b.period > 0 {
		if now < b.next {
			return
		}
		b.next += b.period
	}
	b.tx = Txn{b: b, now: now, sample: math.NaN()}
	if b.read != nil {
		t, err := b.read()
		if err != nil {
			b.errs.Add(1)
			b.mt.errors.Inc()
			b.cleanSamples = 0
			b.consecReadErrs++
			if b.consecReadErrs >= b.fs.EscalateErrors {
				b.escalate(now)
			}
			if b.failSafe {
				b.applyFailSafe()
			}
			return
		}
		b.consecReadErrs = 0
		b.tx.sample = t
		if b.failSafe {
			// Hold the escalated modes while re-qualifying the sensor;
			// keep the window warm so control resumes from fresh
			// history.
			b.applyFailSafe()
			b.cleanSamples++
			if b.cleanSamples >= b.fs.RecoverSamples && !b.fsPending() {
				b.release(now)
			}
			if b.win != nil {
				b.win.Add(t)
			}
			return
		}
		if b.win != nil {
			if !b.win.Add(t) {
				return
			}
			b.mt.rounds.Inc()
		}
	}
	b.pol.Decide(&b.tx)
}

// escalate enters the fail-safe hold: every actuator is driven to its
// most effective mode until the escalation releases.
func (b *Binding) escalate(now time.Duration) {
	if b.failSafe || b.fs.Disable {
		return
	}
	b.failSafe = true
	b.cleanSamples = 0
	//thermlint:allow hotalloc -- escalations are rare fault transitions, not per-round work; the log is the audit trail
	b.fsEvents = append(b.fsEvents, FailSafeEvent{At: now, Engaged: true})
	b.mt.escalations.Inc()
	b.mt.failSafe.SetBool(true)
	for _, s := range b.slots {
		s.fsRetry = true
	}
	if p, ok := b.pol.(EscalatePolicy); ok {
		p.OnEscalate()
	}
}

// fsPending reports whether any escalated Apply has not landed yet.
func (b *Binding) fsPending() bool {
	for _, s := range b.slots {
		if s.fsRetry {
			return true
		}
	}
	return false
}

// applyFailSafe drives every actuator whose escalation has not stuck
// yet to its most effective mode, retrying on later samples until the
// write lands (the bus may be failing too). The most effective mode is
// NumModes()-1 by the Actuator ordering contract — and the ctlarray
// fill guarantees the array's last cell maps to it, so the generic
// target and the array-indexed one coincide.
func (b *Binding) applyFailSafe() {
	for i, s := range b.slots {
		if !s.fsRetry {
			continue
		}
		mode := s.act.NumModes() - 1
		if err := s.act.Apply(mode); err != nil {
			b.errs.Add(1)
			b.mt.errors.Inc()
			continue
		}
		s.fsRetry = false
		s.moves++
		b.mt.modeTransitions.Inc()
		if p, ok := b.pol.(FailSafeApplyPolicy); ok {
			p.OnFailSafeApplied(i, mode)
		}
	}
}

// release ends the fail-safe hold; the policy's own dynamics pull the
// actuators back to proportionate modes on the following rounds.
func (b *Binding) release(now time.Duration) {
	b.failSafe = false
	b.cleanSamples = 0
	b.consecApplyErrs = 0
	//thermlint:allow hotalloc -- recoveries are rare fault transitions, not per-round work; the log is the audit trail
	b.fsEvents = append(b.fsEvents, FailSafeEvent{At: now, Engaged: false})
	b.mt.recoveries.Inc()
	b.mt.failSafe.SetBool(false)
	if p, ok := b.pol.(ReleasePolicy); ok {
		p.OnRelease()
	}
}

// applyErr records a failed actuation and escalates on a run of them.
func (b *Binding) applyErr(now time.Duration) {
	b.errs.Add(1)
	b.mt.errors.Inc()
	b.consecApplyErrs++
	if b.consecApplyErrs >= b.fs.EscalateErrors {
		b.escalate(now)
	}
}

// Txn is one decision transaction: the policy's window into the
// engine's state for the current round, and the only path through
// which it may actuate — every Apply funnels into the binding's shared
// error accounting, so no policy can forget to count a failure or to
// feed the fail-safe escalation.
type Txn struct {
	b      *Binding
	now    time.Duration
	sample float64
}

// Now returns the simulation time of the step being decided.
func (tx *Txn) Now() time.Duration { return tx.now }

// Sample returns the temperature sample that completed this round (NaN
// for bindings without a reader).
func (tx *Txn) Sample() float64 { return tx.sample }

// Window returns the binding's history window (nil for windowless
// bindings).
func (tx *Txn) Window() *window.Window { return tx.b.win }

// Apply commands the actuator at slot to physical mode m under the
// engine's shared error accounting: a failure counts toward the
// consecutive-actuation-error escalation, a success resets that run
// and records the move. Reports whether the actuation landed.
func (tx *Txn) Apply(slot, mode int) bool {
	s := tx.b.slots[slot]
	if err := s.act.Apply(mode); err != nil {
		tx.b.applyErr(tx.now)
		return false
	}
	tx.b.consecApplyErrs = 0
	s.moves++
	tx.b.mt.modeTransitions.Inc()
	return true
}

// ApplyDuty commands the actuator at slot with a continuous duty
// percentage through its DutyApplier interface, under the same error
// accounting as Apply. The actuator must implement DutyApplier; a
// binding wired otherwise is a programming error.
func (tx *Txn) ApplyDuty(slot int, pct float64) bool {
	s := tx.b.slots[slot]
	da, ok := s.act.(DutyApplier)
	if !ok {
		panic(fmt.Sprintf("core: actuator %s does not implement DutyApplier", s.act.Name()))
	}
	if err := da.ApplyDuty(pct); err != nil {
		tx.b.applyErr(tx.now)
		return false
	}
	tx.b.consecApplyErrs = 0
	s.moves++
	tx.b.mt.modeTransitions.Inc()
	return true
}

// CountError records a policy-internal failure (e.g. a utilization
// read) in the binding's shared error counter, without feeding the
// consecutive-error escalation.
func (tx *Txn) CountError() {
	tx.b.errs.Add(1)
	tx.b.mt.errors.Inc()
}

// lane is one binding inside an engine, with an optional coordination
// hook that runs just before the binding's step.
type lane struct {
	b   *Binding
	pre func(now time.Duration)
}

// Engine steps an ordered set of bindings as one control plane. The
// hybrid coordinator is an engine of two lanes — the threshold (tDVFS)
// binding first, then the ctlarray (fan) binding with a pre-step hook
// that holds the fan floor while the in-band knob is engaged. Any
// number of lanes compose the same way; ordering is attachment order.
type Engine struct {
	lanes []lane
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// Attach appends a binding, with an optional pre-step coordination
// hook (nil for none). Wiring time only.
func (e *Engine) Attach(b *Binding, pre func(now time.Duration)) {
	e.lanes = append(e.lanes, lane{b: b, pre: pre})
}

// Bindings returns the attached bindings in step order.
func (e *Engine) Bindings() []*Binding {
	out := make([]*Binding, len(e.lanes))
	for i, l := range e.lanes {
		out[i] = l.b
	}
	return out
}

// Errors sums the error counts of every attached binding. Safe to call
// concurrently with the control loop.
func (e *Engine) Errors() uint64 {
	var n uint64
	for _, l := range e.lanes {
		n += l.b.Errors()
	}
	return n
}

// OnStep steps every lane in order. Implements the cluster Controller
// interface.
func (e *Engine) OnStep(now time.Duration) {
	for _, l := range e.lanes {
		if l.pre != nil {
			l.pre(now)
		}
		l.b.OnStep(now)
	}
}
