package core

import (
	"testing"
	"time"

	"thermctl/internal/metrics"
	"thermctl/internal/workload"
)

// snapValue returns the value of the named counter/gauge sample,
// failing the test when absent.
func snapValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("no sample %q in snapshot", name)
	return 0
}

func TestHybridInstrumentMetrics(t *testing.T) {
	n, h := newHybridRig(t, 50, 30) // weak fan cap so DVFS engages
	reg := metrics.NewRegistry()
	h.InstrumentMetrics(reg)
	n.SetGenerator(workload.NewCPUBurn(nil))
	runHybrid(n, h, 10*time.Minute)

	rounds := snapValue(t, reg, "thermctl_controller_rounds_total")
	if rounds == 0 {
		t.Error("controller rounds counter never incremented")
	}
	if got := snapValue(t, reg, "thermctl_controller_mode_transitions_total"); got == 0 {
		t.Error("mode-transition counter never incremented under cpu-burn")
	}
	if h.DVFS.Engaged() {
		if got := snapValue(t, reg, "thermctl_tdvfs_downscales_total"); got == 0 {
			t.Error("tdvfs engaged but downscale counter is zero")
		}
		if got := snapValue(t, reg, "thermctl_tdvfs_engaged"); got != 1 {
			t.Errorf("engaged gauge = %v while DVFS engaged", got)
		}
		if got := snapValue(t, reg, "thermctl_hybrid_hold_steps_total"); got == 0 {
			t.Error("hold-steps counter is zero while DVFS engaged")
		}
		if got := snapValue(t, reg, "thermctl_controller_hold_floor"); got != 1 {
			t.Errorf("hold-floor gauge = %v while DVFS engaged", got)
		}
	}
	// Counter values must agree with the controller's own bookkeeping.
	if moves := float64(h.Fan.Moves(0)); moves != snapValue(t, reg, "thermctl_controller_mode_transitions_total") {
		t.Errorf("mode-transition counter = %v, want Moves(0) = %v",
			snapValue(t, reg, "thermctl_controller_mode_transitions_total"), moves)
	}
}

func TestWatchdogInstrumentMetrics(t *testing.T) {
	n, w := newWatchdogRig(t)
	reg := metrics.NewRegistry()
	w.InstrumentMetrics(reg)
	port := &SysfsFanPort{FS: n.FS, Chip: n.Hwmon}
	if err := port.SetDutyPercent(50); err != nil {
		t.Fatal(err)
	}
	dt := 250 * time.Millisecond
	run := func(d time.Duration) {
		deadline := n.Elapsed() + d
		for n.Elapsed() < deadline {
			n.Step(dt)
			w.OnStep(n.Elapsed())
		}
	}

	run(10 * time.Second)
	if got := snapValue(t, reg, "thermctl_watchdog_failures_total"); got != 0 {
		t.Fatalf("failures counter = %v before any failure", got)
	}
	n.Fan.SetFailed(true)
	run(15 * time.Second)
	if got := snapValue(t, reg, "thermctl_watchdog_failures_total"); got != 1 {
		t.Errorf("failures counter = %v after seized rotor, want 1", got)
	}
	if got := snapValue(t, reg, "thermctl_watchdog_emergency"); got != 1 {
		t.Errorf("emergency gauge = %v during failure, want 1", got)
	}
	n.Fan.SetFailed(false)
	run(20 * time.Second)
	if got := snapValue(t, reg, "thermctl_watchdog_recoveries_total"); got != 1 {
		t.Errorf("recoveries counter = %v after recovery, want 1", got)
	}
	if got := snapValue(t, reg, "thermctl_watchdog_emergency"); got != 0 {
		t.Errorf("emergency gauge = %v after recovery, want 0", got)
	}
}
